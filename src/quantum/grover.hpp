// Grover's search algorithm, simulated exactly (paper Section 4.1).
//
// Two drivers are provided:
//   * search_known_count -- the textbook fixed-iteration schedule
//     k = floor(pi/4 * sqrt(N/M)) when the number of solutions M is known;
//   * search_bbht -- Boyer-Brassard-Hoyer-Tapp exponential schedule for an
//     unknown number of solutions, which is what the paper's algorithms
//     need (a node does not know how many blocks w contain a witness).
// Both return the measured element (classically verified against the
// oracle), the number of Grover iterations executed, and the number of
// oracle invocations -- the quantity the distributed layer converts into
// rounds.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "quantum/statevector.hpp"

namespace qclique {

class Rng;

/// Oracle predicate over [0, dim).
using Oracle = std::function<bool(std::size_t)>;

/// Outcome of one Grover search.
struct GroverResult {
  /// Verified solution, or nullopt when the search concluded "no solution".
  std::optional<std::size_t> found;
  /// Total Grover iterations executed (across BBHT stages if applicable).
  std::uint64_t iterations = 0;
  /// Oracle invocations: one per iteration plus one classical verification
  /// per measurement.
  std::uint64_t oracle_calls = 0;
  /// Number of measurements performed (BBHT stages).
  std::uint64_t measurements = 0;
};

/// floor(pi/4 * sqrt(dim / solutions)); 0 when solutions >= dim/2 (measuring
/// the uniform state already succeeds with probability >= 1/2).
std::uint64_t grover_optimal_iterations(std::size_t dim, std::size_t solutions);

/// Success probability of measuring a solution after `k` iterations on a
/// dim-sized domain with `solutions` marked elements (closed form
/// sin^2((2k+1) * theta), theta = asin(sqrt(M/N))).
double grover_success_probability(std::size_t dim, std::size_t solutions,
                                  std::uint64_t k);

/// Fixed-schedule Grover with known solution count. Requires solutions >= 1.
GroverResult search_known_count(std::size_t dim, std::size_t solutions,
                                const Oracle& oracle, Rng& rng);

/// BBHT search with unknown solution count. Performs exponentially growing
/// random iteration counts; concludes "no solution" after the total
/// iteration budget exceeds `cutoff_factor * sqrt(dim)` without a verified
/// hit (error probability exponentially small in cutoff_factor; the
/// default matches the paper's w.h.p. regime at the cost of a constant).
GroverResult search_bbht(std::size_t dim, const Oracle& oracle, Rng& rng,
                         double cutoff_factor = 9.0);

// --- Analytic fast path (known marked set) ---------------------------------
//
// When the caller holds the marked set itself (the simulator's algorithms
// construct SearchInstances from their semantic oracles), evolving an
// O(dim) StateVector per attempt is pure overhead: from the uniform start
// the state never leaves the 2D invariant subspace spanned by the uniform
// superpositions of marked and unmarked elements, so the measurement
// distribution after k iterations is closed-form. These overloads sample
// it directly — O(log M) per attempt instead of O(dim) per iteration —
// and are distribution-identical to the circuit simulation above, which
// stays as the conformance oracle (tests/quantum/grover_analytic_test).

/// Samples a measurement outcome of a k-iteration Grover run from the
/// uniform start: a uniformly random marked element with probability
/// sin^2((2k+1) theta), else a uniformly random unmarked element — exactly
/// the Born distribution of the simulated circuit. `solutions` must be
/// sorted ascending, distinct, and within [0, dim); an empty set means the
/// state never moves off uniform.
std::size_t sample_grover_outcome(std::size_t dim,
                                  const std::vector<std::size_t>& solutions,
                                  std::uint64_t k, Rng& rng);

/// Analytic `search_known_count`: same schedule, attempt accounting, and
/// outcome distribution, no state vector. Requires a non-empty marked set.
GroverResult search_known_count(std::size_t dim,
                                const std::vector<std::size_t>& solutions,
                                Rng& rng);

/// Analytic `search_bbht`: same BBHT schedule and accounting, outcomes
/// sampled from the invariant-subspace distribution.
GroverResult search_bbht(std::size_t dim,
                         const std::vector<std::size_t>& solutions, Rng& rng,
                         double cutoff_factor = 9.0);

}  // namespace qclique
