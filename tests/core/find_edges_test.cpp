// Tests for FindEdges (Proposition 1): exactness on random and planted
// instances, the sampling loop's behavior, and abort-retry handling.
#include "core/find_edges.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/triangles.hpp"

namespace qclique {
namespace {

class FindEdgesSizes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FindEdgesSizes, MatchesBruteForce) {
  const std::uint32_t n = GetParam();
  Rng rng(3000 + n);
  const auto g = random_weighted_graph(n, 0.5, -6, 10, rng);
  FindEdgesOptions opt;
  const auto res = find_edges(g, opt, rng);
  EXPECT_EQ(res.hot_pairs, edges_in_negative_triangles(g));
  EXPECT_GE(res.compute_pairs_calls, 1u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FindEdgesSizes,
                         ::testing::Values(4u, 9u, 16u, 25u, 36u, 49u));

TEST(FindEdges, PlantedTrianglesRecovered) {
  Rng rng(1);
  std::vector<VertexPair> planted;
  const auto g = planted_negative_triangles(30, 5, rng, &planted);
  FindEdgesOptions opt;
  const auto res = find_edges(g, opt, rng);
  EXPECT_EQ(res.hot_pairs, planted);
}

TEST(FindEdges, EmptyAndAllPositiveGraphs) {
  Rng rng(2);
  const WeightedGraph empty(12);
  FindEdgesOptions opt;
  EXPECT_TRUE(find_edges(empty, opt, rng).hot_pairs.empty());
  const auto pos = random_weighted_graph(16, 0.6, 1, 10, rng);
  EXPECT_TRUE(find_edges(pos, opt, rng).hot_pairs.empty());
}

TEST(FindEdges, DenseNegativeClique) {
  // Every pair hot: the extreme case with Gamma(u,v) = n - 2 everywhere
  // (promise violated in spirit; Prop 1's sampling loop is exactly what
  // handles such instances at scale).
  const std::uint32_t n = 20;
  WeightedGraph g(n);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) g.set_edge(u, v, -1);
  }
  Rng rng(3);
  FindEdgesOptions opt;
  const auto res = find_edges(g, opt, rng);
  EXPECT_EQ(res.hot_pairs.size(), static_cast<std::size_t>(n) * (n - 1) / 2);
}

TEST(FindEdges, LoopIterationsMatchPaperSchedule) {
  // The while loop runs while prop1_sample * 2^i * log n <= n. With paper
  // constants and small n it never runs; shrink the constant to see it.
  Rng rng(4);
  const std::uint32_t n = 36;
  const auto g = random_weighted_graph(n, 0.5, -5, 10, rng);
  FindEdgesOptions opt;
  EXPECT_EQ(find_edges(g, opt, rng).loop_iterations, 0u);  // 60*6 > 36

  FindEdgesOptions opt2;
  opt2.compute_pairs.constants.prop1_sample = 1.0;  // 2^i * 6 <= 36: i=0,1,2
  const auto res2 = find_edges(g, opt2, rng);
  EXPECT_EQ(res2.loop_iterations, 3u);
  EXPECT_EQ(res2.hot_pairs, edges_in_negative_triangles(g));
}

TEST(FindEdges, ClassicalVariantMatches) {
  Rng rng(5);
  const auto g = random_weighted_graph(30, 0.5, -7, 9, rng);
  FindEdgesOptions opt;
  opt.compute_pairs.use_quantum = false;
  const auto res = find_edges(g, opt, rng);
  EXPECT_EQ(res.hot_pairs, edges_in_negative_triangles(g));
}

TEST(FindEdges, AbortRetryExhaustionThrows) {
  Rng rng(6);
  const auto g = random_weighted_graph(16, 0.5, -4, 8, rng);
  FindEdgesOptions opt;
  opt.compute_pairs.constants.balance_threshold = 1e-12;  // always abort
  opt.max_abort_retries = 2;
  EXPECT_THROW(find_edges(g, opt, rng), SimulationError);
}

TEST(FindEdges, RoundsAccumulateAcrossCalls) {
  Rng rng(7);
  const auto g = random_weighted_graph(25, 0.5, -6, 9, rng);
  FindEdgesOptions opt;
  opt.compute_pairs.constants.prop1_sample = 1.0;  // force loop iterations
  const auto res = find_edges(g, opt, rng);
  EXPECT_GE(res.compute_pairs_calls, res.loop_iterations + 1);
  EXPECT_GT(res.rounds, 0u);
  EXPECT_EQ(res.rounds, res.ledger.total_rounds());
}

TEST(FindEdges, SoundnessUnderSampling) {
  // Whatever the sampling does, reported pairs are always truly hot
  // (G' is a subgraph of G).
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(100 + seed);
    const auto g = random_weighted_graph(32, 0.4, -9, 6, rng);
    FindEdgesOptions opt;
    opt.compute_pairs.constants.prop1_sample = 0.5;
    const auto res = find_edges(g, opt, rng);
    for (const auto& pr : res.hot_pairs) {
      EXPECT_GT(gamma(g, pr.a, pr.b), 0u) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace qclique
