// Immutable, versioned serving snapshots of solved APSP runs.
//
// The solve side of the repo produces ApspReports; the serve side answers
// s-t distance/path queries against them at traffic rates. The bridge is
// the ApspSnapshot: a frozen copy of one solved run's distance matrix
// (plus, optionally, the witness successor matrix of core/paths.hpp for
// path reconstruction) with self-describing metadata. Snapshots are
// immutable after publication -- the SnapshotStore hands out
// shared_ptr<const ApspSnapshot> pins, so readers race with publishers
// only on the pointer swap, never on the data, and a pinned snapshot keeps
// answering bit-identically however many publishes happen behind it.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "api/solver.hpp"
#include "matrix/dist_matrix.hpp"

namespace qclique {

/// Self-describing provenance of one snapshot: the scenario coordinates of
/// the solve that produced it (the same stamps ApspReport carries) plus the
/// serving version assigned at publish time.
struct SnapshotMetadata {
  /// Monotone publication stamp assigned by SnapshotStore::publish;
  /// 0 = never published. Cache keys include it, so answers computed
  /// against different publishes can never be confused.
  std::uint64_t version = 0;
  std::string solver;    // backend that produced the distances
  std::string topology;  // transport the solve was measured on
  std::string kernel;    // min-plus kernel the solve was configured with
  std::string family;    // graph family of the input ("" = ad-hoc)
  std::string label;     // free-form tag (scenario label, graph id)
  std::uint32_t n = 0;   // vertex count
  std::uint64_t rounds = 0;        // simulated rounds of the solve
  double solve_wall_ms = 0.0;      // wall time of the solve call
  bool has_paths = false;          // successor matrix present
  /// Backend counters copied from the report (uniform keys; see
  /// ApspSolver::solve), plus "path_rounds" when successors were built.
  std::map<std::string, std::uint64_t> metrics;

  /// Machine-readable export (single JSON object), the serving analogue of
  /// ApspReport::to_json.
  std::string to_json() const;
};

/// One frozen APSP solution. Every accessor is const and the class holds no
/// synchronization: immutability is the concurrency story, enforced by the
/// const-only pins the SnapshotStore hands out.
class ApspSnapshot {
 public:
  /// Wraps a solved report (distances + stamps are copied; the report stays
  /// usable). `successor` is the witness matrix of core/paths.hpp -- n*n
  /// entries, UINT32_MAX for "no next hop" -- or empty for distance-only
  /// snapshots.
  explicit ApspSnapshot(const ApspReport& report,
                        std::vector<std::uint32_t> successor = {},
                        std::string label = {});

  /// A snapshot from raw parts (tests; callers without a full report).
  ApspSnapshot(DistMatrix distances, SnapshotMetadata meta,
               std::vector<std::uint32_t> successor = {});

  std::uint32_t size() const { return dist_.size(); }

  const SnapshotMetadata& metadata() const { return meta_; }

  /// The publication stamp (0 until published; see SnapshotMetadata).
  std::uint64_t version() const { return meta_.version; }

  /// Unchecked hot-path lookup: d(u, v) straight off the flat matrix.
  std::int64_t distance(std::uint32_t u, std::uint32_t v) const {
    return dist_.at(u, v);
  }

  /// Zero-copy row view (batch readers sweep rows without index math).
  std::span<const std::int64_t> row(std::uint32_t u) const {
    return dist_.row_span(u);
  }

  const DistMatrix& distances() const { return dist_; }

  /// True when the snapshot carries a successor matrix and can realize
  /// paths, not just distances.
  bool has_paths() const { return !successor_.empty(); }

  /// Next hop on a shortest u->v path; UINT32_MAX when v is unreachable
  /// from u or u == v. Requires has_paths().
  std::uint32_t successor(std::uint32_t u, std::uint32_t v) const {
    return successor_[static_cast<std::size_t>(u) * size() + v];
  }

  /// Realizes the shortest u->v path by successor chasing: {u} when
  /// u == v, empty when unreachable. Requires has_paths(); throws
  /// SimulationError on out-of-range endpoints or an inconsistent
  /// successor chain (cycle longer than n).
  std::vector<std::uint32_t> path(std::uint32_t u, std::uint32_t v) const;

  /// One JSON object: the metadata export (the matrix itself is served,
  /// not exported).
  std::string to_json() const { return meta_.to_json(); }

 private:
  friend class SnapshotStore;  // stamps meta_.version at publish time

  DistMatrix dist_;
  std::vector<std::uint32_t> successor_;  // n*n or empty
  SnapshotMetadata meta_;
};

}  // namespace qclique
