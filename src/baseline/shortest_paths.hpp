// Centralized shortest-path oracles.
//
// These are the correctness references for every distributed APSP
// implementation in the repository: Floyd-Warshall (general weights),
// Bellman-Ford (single source, negative-cycle detection), Dijkstra
// (non-negative weights), and Johnson (reweighting + Dijkstra, the fastest
// exact oracle for sparse graphs). They run locally and charge no rounds.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"
#include "matrix/dist_matrix.hpp"

namespace qclique {

/// Floyd-Warshall all-pairs distances. Returns nullopt if the graph has a
/// negative cycle (detected by a negative diagonal entry).
std::optional<DistMatrix> floyd_warshall(const Digraph& g);

/// Bellman-Ford distances from `source`; nullopt on a negative cycle
/// reachable from the source.
std::optional<std::vector<std::int64_t>> bellman_ford(const Digraph& g,
                                                      std::uint32_t source);

/// Dijkstra distances from `source`. Requires all arc weights >= 0
/// (throws SimulationError otherwise).
std::vector<std::int64_t> dijkstra(const Digraph& g, std::uint32_t source);

/// Reusable single-source Dijkstra state for multi-source sweeps: the dist /
/// settled arrays and the heap's backing storage persist across run() calls
/// (restored via a touched-vertex list), and the non-negative-weight
/// validation runs once per bind() instead of once per source. run() writes
/// the same distances dijkstra() returns — an n-source sweep through one
/// workspace is allocation-free after the first source.
class DijkstraWorkspace {
 public:
  /// Validates arc weights (throws SimulationError on a negative one) and
  /// sizes the scratch for g. A workspace may be re-bound at any time.
  void bind(const Digraph& g);

  /// Distances from `source` into out[0..n). Requires a prior bind(g).
  void run(const Digraph& g, std::uint32_t source, std::int64_t* out);

 private:
  std::vector<std::int64_t> dist_;  // resting value: kPlusInf everywhere
  std::vector<char> settled_;       // resting value: 0 everywhere
  std::vector<std::uint32_t> touched_;
  std::vector<std::pair<std::int64_t, std::uint32_t>> heap_;
};

/// Johnson's algorithm: Bellman-Ford reweighting followed by n Dijkstra
/// runs. Returns nullopt on a negative cycle.
std::optional<DistMatrix> johnson(const Digraph& g);

/// Reconstructs one shortest path from `u` to `v` given the distance matrix
/// and the input graph (greedy edge relaxation walk). Empty when v is
/// unreachable; {u} when u == v.
std::vector<std::uint32_t> reconstruct_path(const Digraph& g, const DistMatrix& dist,
                                            std::uint32_t u, std::uint32_t v);

}  // namespace qclique
