// How a batch of independent jobs gets scheduled onto workers.
//
// BatchRunner used to bury its worker loop inside run_with_workers; this
// layer extracts it behind an Executor interface with two implementations:
//
//  - ThreadExecutor: in-process fan-out on the persistent TaskPool
//    (common/task_pool.hpp) — jobs are claimed one at a time by up to N
//    pool participants, replacing the old spawn-N-threads-per-batch loop
//    (N == 1 still degenerates to a plain sequential loop on the calling
//    thread).
//  - ProcessExecutor: forks N worker processes. Worker w owns the jobs
//    with index i ≡ w (mod N) — a static assignment, so when a worker
//    dies mid-batch the parent knows exactly which jobs went down with it.
//    Each worker streams one schema-versioned JSON line per finished job
//    back over its pipe (docs/EXECUTION.md describes the envelope; the
//    payload codec lives in exec/wire.hpp), and the parent decodes lines
//    as they arrive, multiplexing all pipes with poll(). A worker that
//    exits without reporting all of its jobs — crash, abort, kill — fails
//    exactly those jobs with the exit status in the message; the batch
//    never hangs and never loses the other workers' results.
//
// Executors know nothing about jobs — they drive an ExecJobHooks, whose
// owner (BatchRunner) keeps the results array. Because results land by job
// index and every job runs under a context forked by that index, the
// merged output is identical whatever the executor, worker count, or
// completion order: that is the contract the out-of-core CI gate checks
// byte-for-byte.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace qclique {

/// Callbacks an Executor drives. One hooks object spans one batch; methods
/// are called with job indices in [0, job_count).
///
/// Call schedule by executor:
///  - ThreadExecutor: run(i) then complete(i), both on the worker thread
///    that claimed job i. encode/release/decode are never called.
///  - ProcessExecutor: the worker process calls run(i), encode(i),
///    release(i); the parent calls decode(i, payload) then complete(i) as
///    each line arrives, or fail(i, ...) for jobs lost to worker death.
///
/// run() must capture job errors into the result itself (a throwing job
/// must not escape); decode() may throw on malformed payloads — the
/// executor converts that into fail(i).
class ExecJobHooks {
 public:
  virtual ~ExecJobHooks() = default;

  /// Executes job i and stores its result (including any caught error).
  virtual void run(std::size_t i) = 0;

  /// Result i is final in this process (after run in thread mode, after
  /// decode in process mode). The paging hook: BatchRunner spills each
  /// finished report's distances here when a memory budget is set.
  virtual void complete(std::size_t i) {}

  /// Worker side: serializes result i as a single-line wire payload.
  virtual std::string encode(std::size_t i) = 0;

  /// Worker side: result i has been written to the pipe; drop it. Workers
  /// hold at most one finished result at a time, which is what keeps a
  /// process-mode batch's per-worker footprint flat however many jobs the
  /// batch has.
  virtual void release(std::size_t i) {}

  /// Parent side: installs the decoded payload as result i.
  virtual void decode(std::size_t i, std::string_view payload) = 0;

  /// Parent side: job i produced no result (worker died before reporting
  /// it, or its payload was malformed). Must record a failed result.
  virtual void fail(std::size_t i, const std::string& message) = 0;
};

/// Schedules `job_count` jobs onto workers via `hooks`. Implementations
/// guarantee every index in [0, job_count) sees exactly one of
/// {run+complete, decode+complete, fail} from the caller's point of view.
class Executor {
 public:
  virtual ~Executor() = default;
  virtual void execute(std::size_t job_count, ExecJobHooks& hooks) const = 0;
};

class TaskPool;

/// The in-process executor, running jobs on the persistent TaskPool
/// (null = the process-wide TaskPool::instance(); BatchRunner passes the
/// ExecutionContext's fork-shared pool). Behavior-identical to the old
/// spawn-per-call thread pool: workers <= 1 runs jobs sequentially on the
/// calling thread; otherwise up to `workers` pool participants drain the
/// job ids one at a time.
class ThreadExecutor final : public Executor {
 public:
  explicit ThreadExecutor(unsigned workers, TaskPool* pool = nullptr)
      : workers_(workers), pool_(pool) {}
  void execute(std::size_t job_count, ExecJobHooks& hooks) const override;

 private:
  unsigned workers_;
  TaskPool* pool_;
};

/// Forks `workers` processes and merges their streamed results. POSIX
/// only; constructing one on a platform without fork() throws at
/// execute(). The calling process must be quiescent (no live worker
/// threads) when execute() runs — BatchRunner guarantees this by never
/// nesting executors.
class ProcessExecutor final : public Executor {
 public:
  explicit ProcessExecutor(unsigned workers) : workers_(workers) {}
  void execute(std::size_t job_count, ExecJobHooks& hooks) const override;

 private:
  unsigned workers_;
};

}  // namespace qclique
