#include "core/apsp.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qclique {

QuantumApspResult quantum_apsp(const Digraph& g, const QuantumApspOptions& options,
                               Rng& rng) {
  const std::uint32_t n = g.size();
  QuantumApspResult res(n);
  DistMatrix acc = g.to_dist_matrix();
  if (n <= 1) {
    res.distances = acc;
    return res;
  }

  std::uint64_t covered = 1;
  while (covered < static_cast<std::uint64_t>(n - 1)) {
    Rng child = rng.split();
    TriangleProductResult prod =
        distance_product_via_triangles(acc, acc, options.product, child);
    acc = std::move(prod.product);
    res.ledger.absorb(prod.ledger);
    res.find_edges_calls += prod.find_edges_calls;
    ++res.products;
    covered *= 2;
  }

  if (options.check_negative_cycles) {
    for (std::uint32_t i = 0; i < n; ++i) {
      QCLIQUE_CHECK(acc.at(i, i) >= 0, "quantum_apsp: negative cycle in input");
    }
  }
  res.distances = std::move(acc);
  res.rounds = res.ledger.total_rounds();
  return res;
}

}  // namespace qclique
