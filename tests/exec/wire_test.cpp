// Tests for the process-worker wire codec: exact BatchResult/StreamResult
// round-trips (doubles bit-for-bit, ledgers phase-for-phase) and strict
// rejection of malformed payloads.
#include "exec/wire.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/math.hpp"

namespace qclique {
namespace {

BatchResult sample_result() {
  BatchResult r;
  r.job_index = 7;
  r.solver = "quantum";
  r.family = "gnp";
  r.label = "weird \"label\"\nwith\tescapes\x01";
  r.ok = true;
  ApspReport report(3);
  report.solver = "quantum";
  report.topology = "clique";
  report.kernel = "blocked";
  report.family = "gnp";
  report.rounds = 123;
  report.wall_ms = 0.1;  // not exactly representable: bit-exactness matters
  report.metrics["products"] = 42;
  report.metrics["distances_fnv"] = 0xdeadbeefcafef00dULL;
  PhaseProfiler::Timing t;
  t.wall_ms = 1.0 / 3.0;
  t.calls = 5;
  t.messages = 99;
  report.profile["find_edges"] = t;
  report.ledger.charge("find_edges", 10, 200);
  report.ledger.charge_quantum("grover", 3, 7);
  report.distances.set(0, 0, 0);
  report.distances.set(0, 1, -5);
  report.distances.set(0, 2, kPlusInf);
  report.distances.set(1, 0, kMinusInf);
  report.distances.set(1, 1, 0);
  report.distances.set(1, 2, 17);
  report.distances.set(2, 0, 1);
  report.distances.set(2, 1, 2);
  report.distances.set(2, 2, 0);
  r.report = std::move(report);
  return r;
}

TEST(ExecWire, BatchResultRoundTripsExactly) {
  const BatchResult original = sample_result();
  const BatchResult back = decode_batch_result(encode_batch_result(original));

  EXPECT_EQ(back.job_index, original.job_index);
  EXPECT_EQ(back.solver, original.solver);
  EXPECT_EQ(back.family, original.family);
  EXPECT_EQ(back.label, original.label);
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.error, "");
  ASSERT_TRUE(back.report.has_value());

  const ApspReport& a = *original.report;
  const ApspReport& b = *back.report;
  EXPECT_EQ(b.solver, a.solver);
  EXPECT_EQ(b.topology, a.topology);
  EXPECT_EQ(b.kernel, a.kernel);
  EXPECT_EQ(b.family, a.family);
  EXPECT_EQ(b.n, a.n);
  EXPECT_EQ(b.rounds, a.rounds);
  // Bit-exact, not "close": the whole point of shipping raw IEEE bits.
  EXPECT_EQ(std::bit_cast<std::uint64_t>(b.wall_ms),
            std::bit_cast<std::uint64_t>(a.wall_ms));
  EXPECT_EQ(b.metrics, a.metrics);
  ASSERT_EQ(b.profile.size(), a.profile.size());
  for (const auto& [phase, timing] : a.profile) {
    const auto it = b.profile.find(phase);
    ASSERT_NE(it, b.profile.end()) << phase;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(it->second.wall_ms),
              std::bit_cast<std::uint64_t>(timing.wall_ms));
    EXPECT_EQ(it->second.calls, timing.calls);
    EXPECT_EQ(it->second.messages, timing.messages);
  }
  EXPECT_EQ(b.distances, a.distances);
  EXPECT_EQ(b.ledger.total_rounds(), a.ledger.total_rounds());
  EXPECT_EQ(b.ledger.total_messages(), a.ledger.total_messages());
  EXPECT_EQ(b.ledger.total_oracle_calls(), a.ledger.total_oracle_calls());
  ASSERT_EQ(b.ledger.phases().size(), a.ledger.phases().size());
  for (const auto& [phase, stats] : a.ledger.phases()) {
    const auto it = b.ledger.phases().find(phase);
    ASSERT_NE(it, b.ledger.phases().end()) << phase;
    EXPECT_EQ(it->second.rounds, stats.rounds);
    EXPECT_EQ(it->second.messages, stats.messages);
    EXPECT_EQ(it->second.quantum_oracle_calls, stats.quantum_oracle_calls);
  }
  // And the encodings themselves agree, so re-encoding is stable.
  EXPECT_EQ(encode_batch_result(back), encode_batch_result(original));
}

TEST(ExecWire, FailedBatchResultRoundTripsWithoutReport) {
  BatchResult r;
  r.job_index = 3;
  r.solver = "dijkstra";
  r.family = "";
  r.label = "cell";
  r.ok = false;
  r.error = "solver 'dijkstra' requires non-negative weights";
  const BatchResult back = decode_batch_result(encode_batch_result(r));
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.error, r.error);
  EXPECT_FALSE(back.report.has_value());
}

TEST(ExecWire, StreamResultRoundTripsExactly) {
  StreamResult r;
  r.job_index = 11;
  r.family = "torus";
  r.stream = "churn";
  r.solver = "dynamic-dijkstra";
  r.ok = true;
  r.n = 25;
  r.batches = 8;
  r.updates = 128;
  r.changed_arcs = 100;
  r.affected_sources = 77;
  r.exact = false;
  r.published_versions = 9;
  r.wall_ms = 2.5000000000000004;
  const StreamResult back = decode_stream_result(encode_stream_result(r));
  EXPECT_EQ(back.job_index, r.job_index);
  EXPECT_EQ(back.family, r.family);
  EXPECT_EQ(back.stream, r.stream);
  EXPECT_EQ(back.solver, r.solver);
  EXPECT_EQ(back.ok, r.ok);
  EXPECT_EQ(back.n, r.n);
  EXPECT_EQ(back.batches, r.batches);
  EXPECT_EQ(back.updates, r.updates);
  EXPECT_EQ(back.changed_arcs, r.changed_arcs);
  EXPECT_EQ(back.affected_sources, r.affected_sources);
  EXPECT_EQ(back.exact, r.exact);
  EXPECT_EQ(back.published_versions, r.published_versions);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.wall_ms),
            std::bit_cast<std::uint64_t>(r.wall_ms));
}

TEST(ExecWire, MalformedPayloadsAreRejected) {
  const std::string good = encode_batch_result(sample_result());
  // Truncation anywhere must throw, never half-parse.
  EXPECT_THROW(decode_batch_result(""), SimulationError);
  EXPECT_THROW(decode_batch_result(good.substr(0, good.size() / 2)),
               SimulationError);
  EXPECT_THROW(decode_batch_result(good.substr(0, good.size() - 1)),
               SimulationError);
  // Trailing garbage is rejected too.
  EXPECT_THROW(decode_batch_result(good + "x"), SimulationError);
  // Wrong schema version.
  std::string wrong = good;
  wrong.replace(wrong.find("{\"v\":"), 6, "{\"v\":9");
  EXPECT_THROW(decode_batch_result(wrong), SimulationError);
  // A flipped structural character misaligns the strict reader.
  std::string flipped = good;
  flipped[flipped.find("\"ok\":")] = 'x';
  EXPECT_THROW(decode_batch_result(flipped), SimulationError);
  EXPECT_THROW(decode_stream_result("{\"v\":1,\"job\":0}"), SimulationError);
}

}  // namespace
}  // namespace qclique
