// Quantum distributed APSP (Theorem 1) -- the pipeline implementation.
//
// The full reduction chain of the paper:
//   APSP  --Prop 3-->  O(log n) distance products (repeated squaring)
//         --Prop 2-->  O(log M) FindEdges calls per product (binary search
//                      over the tripartite gadget)
//         --Prop 1-->  O(log n) FindEdgesWithPromise calls per FindEdges
//         --Thm 2--->  ComputePairs with O~(n^{1/4})-round quantum searches.
// Round complexity: O~(n^{1/4} log W). Setting `use_quantum = false` (via
// ComputePairsOptions) runs the identical pipeline over the classical
// O(sqrt n) search, giving the like-for-like comparison the paper draws
// against [4]'s O~(n^{1/3}).
//
// `quantum_apsp` below is the pipeline's internal entry point. Harnesses
// should not call it directly: the public surface is the unified solver API
// in api/ -- `SolverRegistry::instance().get("quantum")` (or
// "classical-search") wraps this function behind the abstract `ApspSolver`
// interface, runs it under an `ExecutionContext`, and returns a uniform
// `ApspReport` comparable across every backend (see docs/API.md). The only
// production caller of this function is the adapter in api/backends.cpp.
#pragma once

#include <cstdint>
#include <optional>

#include "core/distance_product.hpp"
#include "graph/digraph.hpp"

namespace qclique {

/// Knobs for the APSP pipeline.
struct QuantumApspOptions {
  DistanceProductOptions product;
  /// Verify no negative cycle (negative diagonal) and throw if found.
  bool check_negative_cycles = true;

  /// Communication model for every network the pipeline builds, however
  /// deep (aliases the nested ComputePairs transport knob so callers can
  /// set the topology in one place).
  TransportOptions& transport() { return product.find_edges.compute_pairs.transport; }
  const TransportOptions& transport() const {
    return product.find_edges.compute_pairs.transport;
  }
};

/// Result of the pipeline.
struct QuantumApspResult {
  DistMatrix distances;
  std::uint64_t rounds = 0;
  std::uint64_t products = 0;
  std::uint64_t find_edges_calls = 0;
  RoundLedger ledger;

  explicit QuantumApspResult(std::uint32_t n) : distances(n) {}
};

/// Solves APSP on g (directed, integer weights, no negative cycles) through
/// the full quantum reduction pipeline.
QuantumApspResult quantum_apsp(const Digraph& g, const QuantumApspOptions& options,
                               Rng& rng);

}  // namespace qclique
