// Distance product via negative-triangle detection: the Vassilevska
// Williams-Williams reduction (Proposition 2).
//
// To compute C = A * B (min-plus) for matrices with entries in
// {-M..M} u {+inf}, maintain per-entry binary-search brackets over the
// achievable range [-2M, 2M+1]; each refinement step materializes the guess
// matrix D, builds the tripartite gadget graph on 3n vertices (f(i,k) =
// A[i,k], f(j,k) = B[k,j], f(i,j) = -D[i,j]), and runs FindEdges: the pair
// {i, j} lies in a negative triangle exactly when C[i,j] < D[i,j]
// (Inequality (1)). O(log M) FindEdges calls resolve every entry.
#pragma once

#include <cstdint>

#include "congest/round_ledger.hpp"
#include "core/find_edges.hpp"
#include "matrix/dist_matrix.hpp"

namespace qclique {

/// Knobs for the reduction.
struct DistanceProductOptions {
  FindEdgesOptions find_edges;
};

/// Result of a distance product computed through the reduction.
struct TriangleProductResult {
  DistMatrix product;
  std::uint64_t rounds = 0;
  std::uint64_t find_edges_calls = 0;
  RoundLedger ledger;

  explicit TriangleProductResult(std::uint32_t n) : product(n) {}
};

/// Computes A * B through the Proposition 2 reduction. Entries of A and B
/// must be finite in [-M, M] or +inf; -inf is rejected.
TriangleProductResult distance_product_via_triangles(
    const DistMatrix& a, const DistMatrix& b, const DistanceProductOptions& options,
    Rng& rng);

}  // namespace qclique
