// Experiment E14: the full backend matrix through the unified API.
//
// BatchRunner fans every registered ApspSolver out over a sweep of graphs
// (sizes x weight scales), on parallel workers, and reports rounds, oracle
// calls, and wall time per backend -- the one-table summary of the paper's
// comparison plus the centralized reference oracles. Also demonstrates the
// API's determinism contract: the whole sweep is re-run with a single
// worker and must produce bit-identical distance matrices.
#include <iostream>

#include "api/batch_runner.hpp"
#include "common/table.hpp"
#include "graph/families.hpp"

int main() {
  using namespace qclique;
  std::cout << "E14: backend matrix (all registered solvers, BatchRunner fan-out)\n";

  SolverRegistry& registry = SolverRegistry::instance();
  std::cout << "Backends: ";
  for (const auto& name : registry.names()) std::cout << name << " ";
  std::cout << "\n\n";

  Table table({"n", "W", "solver", "rounds", "msgs", "wall ms", "agrees"});
  bool all_agree = true;
  bool deterministic = true;

  for (const std::uint32_t n : {8u, 12u, 16u}) {
    for (const std::int64_t w : {8ll, 64ll}) {
      Rng rng(42 + n + static_cast<std::uint64_t>(w));
      const auto g = make_family_graph("gnp", family_config(n, 0.5, -w / 2, w), rng);

      ExecutionContext base(7000 + n);
      const BatchRunner runner(registry, base);
      const auto parallel_results = runner.run_all(g);

      // Determinism: same base context, one worker -> identical reports.
      ExecutionContext serial_base(7000 + n);
      serial_base.set_num_threads(1);
      const BatchRunner serial_runner(registry, serial_base);
      const auto serial_results = serial_runner.run_all(g);

      const DistMatrix* reference = nullptr;
      for (std::size_t i = 0; i < parallel_results.size(); ++i) {
        const auto& r = parallel_results[i];
        if (!r.ok) {
          table.add_row({Table::fmt(static_cast<std::uint64_t>(n)), Table::fmt(w),
                         r.solver, "ERROR", "-", "-", "-"});
          all_agree = false;
          continue;
        }
        if (reference == nullptr) reference = &r.report->distances;
        const bool agrees = r.report->distances == *reference;
        all_agree = all_agree && agrees;
        deterministic = deterministic && serial_results[i].ok &&
                        serial_results[i].report->distances == r.report->distances &&
                        serial_results[i].report->rounds == r.report->rounds;
        table.add_row({Table::fmt(static_cast<std::uint64_t>(n)), Table::fmt(w),
                       r.solver, Table::fmt(r.report->rounds),
                       Table::fmt(r.report->ledger.total_messages()),
                       Table::fmt(r.report->wall_ms, 2), agrees ? "yes" : "NO"});
      }
    }
  }

  table.print("All backends x all graphs");

  // ---- Topology axis (bench_transport's sibling table): the distributed
  // backends re-run on every registered topology. Distances must not depend
  // on the communication model -- only rounds do. Sparse topologies reject
  // some runs structurally (e.g. a disconnected communication graph has no
  // route); those rows report the error instead of failing the bench.
  Table topo_table({"topology", "solver", "rounds", "msgs", "wall ms", "agrees"});
  bool topo_agree = true;
  {
    const std::uint32_t n = 10;
    Rng rng(99);
    const auto g = make_family_graph("gnp", family_config(n, 0.6, -4, 16), rng);
    ExecutionContext oracle_ctx(1);
    const DistMatrix reference =
        registry.get("floyd-warshall").solve(g, oracle_ctx).distances;
    for (const auto& topology : TopologyRegistry::instance().names()) {
      for (const std::string solver : {"quantum", "classical-search", "semiring"}) {
        ExecutionContext ctx(8100 + n);
        ctx.set_topology(topology);
        try {
          const ApspReport report = registry.get(solver).solve(g, ctx);
          const bool agrees = report.distances == reference;
          topo_agree = topo_agree && agrees;
          topo_table.add_row({topology, solver, Table::fmt(report.rounds),
                              Table::fmt(report.ledger.total_messages()),
                              Table::fmt(report.wall_ms, 2),
                              agrees ? "yes" : "NO"});
        } catch (const std::exception& e) {
          topo_table.add_row({topology, solver, "-", "-", "-",
                              std::string("rejected: ") + e.what()});
        }
      }
    }
  }
  topo_table.print("Distributed backends x topologies (n=10)");

  // ---- Kernel axis (the engine's sibling table): the kernel-dependent
  // backends re-run on every registered min-plus kernel through
  // BatchRunner::run_kernels. Distances must not depend on the kernel --
  // only wall time does (docs/KERNELS.md) -- and every report is stamped
  // with the kernel it ran on. One JSON record per run is printed next to
  // the table (the ledger-export sibling for bench artifacts).
  Table kernel_table({"kernel", "solver", "rounds", "wall ms", "agrees"});
  bool kernel_agree = true;
  std::string kernel_json = "[";
  {
    const std::uint32_t n = 14;
    Rng rng(123);
    const auto g = make_family_graph("gnp", family_config(n, 0.5, -6, 24), rng);
    ExecutionContext oracle_ctx(1);
    const DistMatrix reference =
        registry.get("floyd-warshall").solve(g, oracle_ctx).distances;
    bool first = true;
    for (const std::string solver : {"dense-squaring", "semiring"}) {
      ExecutionContext base(9200 + n);
      const BatchRunner runner(registry, base);
      for (const auto& r : runner.run_kernels(g, solver)) {
        if (!r.ok) {
          kernel_table.add_row({r.label, solver, "-", "-",
                                std::string("rejected: ") + r.error});
          kernel_agree = false;
          continue;
        }
        const bool agrees =
            r.report->distances == reference && r.report->kernel == r.label;
        kernel_agree = kernel_agree && agrees;
        kernel_table.add_row({r.label, solver, Table::fmt(r.report->rounds),
                              Table::fmt(r.report->wall_ms, 2),
                              agrees ? "yes" : "NO"});
        kernel_json += (first ? "" : ",") + r.report->to_json();
        first = false;
      }
    }
    kernel_json += "]";
  }
  kernel_table.print("Backends x kernels (n=14)");
  std::cout << "\nkernel_matrix_json: " << kernel_json << "\n";

  std::cout << "\nCross-backend agreement: " << (all_agree ? "yes" : "NO")
            << "\nParallel == serial determinism: " << (deterministic ? "yes" : "NO")
            << "\nCross-topology agreement: " << (topo_agree ? "yes" : "NO")
            << "\nCross-kernel agreement: " << (kernel_agree ? "yes" : "NO") << "\n";
  return all_agree && deterministic && topo_agree && kernel_agree ? 0 : 1;
}
