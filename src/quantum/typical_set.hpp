// The typical-input set Upsilon_beta(m, X) of paper Section 4.2.
//
// Upsilon_beta(m, X) is the set of tuples (x_1, ..., x_m) in X^m in which no
// element of X appears more than beta times. The paper's Theorem 3 shows
// that multiple distributed Grover searches may use an evaluation procedure
// that is only correct on Upsilon_beta -- the congestion-free inputs --
// because the joint superposition keeps almost all its mass there (Lemma 5).
// This header provides membership tests, frequency profiles, and the
// Lemma 5 bound, used both by the algorithms (load-balancing thresholds)
// and by the audit machinery that validates the assumption empirically.
#pragma once

#include <cstdint>
#include <vector>

namespace qclique {

/// Frequency profile of a tuple over domain [0, dim).
struct FrequencyProfile {
  std::vector<std::uint32_t> counts;  // counts[x] = multiplicity of x
  std::uint32_t max_frequency = 0;

  /// True iff every element's multiplicity is <= beta, i.e. the tuple lies
  /// in Upsilon_beta(m, X).
  bool within(double beta) const { return max_frequency <= beta; }
};

/// Computes the frequency profile of `tuple` over domain [0, dim).
FrequencyProfile frequency_profile(const std::vector<std::size_t>& tuple,
                                   std::size_t dim);

/// Membership test: tuple in Upsilon_beta(m, X)?
bool in_typical_set(const std::vector<std::size_t>& tuple, std::size_t dim,
                    double beta);

/// The Lemma 5 bound on the atypical mass of any state in H_m:
///   || Pi_m |phi> ||^2 < |X| * exp(-2m / (9 |X|)).
/// Returned uncapped; values >= 1 mean the bound is vacuous at these sizes.
double lemma5_atypical_mass_bound(std::size_t dim, std::size_t m);

/// The paper's Theorem 3 preconditions for domain size `dim`, search count
/// `m`, and threshold `beta`: |X| < m / (36 log m) and beta > 8 m / |X|.
bool theorem3_preconditions_hold(std::size_t dim, std::size_t m, double beta);

}  // namespace qclique
