// Classical CONGEST-CLIQUE APSP baseline: repeated min-plus squaring with
// the O~(n^{1/3})-round semiring distance product (Censor-Hillel et al.).
// Total: O~(n^{1/3} log n) rounds -- the bound the paper's quantum
// algorithm beats. All rounds are measured through the network simulator.
#pragma once

#include <cstdint>

#include "congest/round_ledger.hpp"
#include "congest/transport.hpp"
#include "graph/digraph.hpp"
#include "matrix/dist_matrix.hpp"
#include "matrix/kernels.hpp"

namespace qclique {

/// Result of a distributed APSP computation.
struct ApspResult {
  DistMatrix distances;
  std::uint64_t rounds = 0;
  std::uint64_t products = 0;  // semiring distance products run
  RoundLedger ledger;          // phase breakdown

  explicit ApspResult(std::uint32_t n) : distances(n) {}
};

/// Runs the classical baseline APSP on a fresh simulated network of
/// g.size() nodes built from `transport` (topology + NetworkConfig; for
/// graph-induced "congest" links the digraph's arcs, symmetrized, become
/// the communication graph): A_G is raised to the (n-1)-th min-plus power
/// via repeated squaring, each product running the distributed semiring
/// algorithm; the cube nodes' local block products run on the selected
/// min-plus kernel. Precondition: no negative cycles (checked against the
/// diagonal; throws SimulationError if violated).
ApspResult classical_apsp(const Digraph& g, const TransportOptions& transport = {},
                          const KernelOptions& kernel = {});

/// Back-compat convenience: clique topology with `net_config`.
ApspResult classical_apsp(const Digraph& g, const NetworkConfig& net_config);

}  // namespace qclique
