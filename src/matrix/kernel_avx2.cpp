// The AVX2 tier: 4 x i64 lanes over the clean-tile inner loop.
//
// Compiled with -mavx2 (CMake adds the flag to this TU only, so the rest
// of the library stays portable); when the toolchain cannot target AVX2
// the stub below forwards to the scalar band and reports compiled() =
// false, which removes the tier from runtime dispatch.
//
// The vector body computes exactly what clean_row_scalar computes:
//   v      = max(aik + b[j], kMinusInf)        (the lower saturation clamp)
//   c[j]   = min(c[j], v)                      (strict-improvement min)
//   w[j]   = k on strict improvement           (witness, optional)
// AVX2 has no packed 64-bit min, so both min and max are a signed compare
// (vpcmpgtq) feeding a byte blend (vpblendvb). The upper clamp is free for
// the same reason as in the scalar path: on a sentinel-free tile a sum
// that would saturate to +inf can never beat a stored c entry. Witness
// updates extract the 4-bit improvement mask (vmovmskpd) and write k on
// set lanes -- k is scalar within the loop, so the smallest-k tie-break is
// inherited from the traversal order, not re-derived per lane.
#include "matrix/kernel_band.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace qclique::detail {

namespace {

inline void clean_row_avx2(std::int64_t aik, const std::int64_t* brow,
                           std::int64_t* crow, std::uint32_t* wrow,
                           std::uint32_t jj, std::uint32_t jh, std::uint32_t k) {
  const __m256i vaik = _mm256_set1_epi64x(aik);
  const __m256i vminf = _mm256_set1_epi64x(kMinusInf);
  std::uint32_t j = jj;
  if (wrow == nullptr) {
    for (; j + 4 <= jh; j += 4) {
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(brow + j));
      const __m256i s = _mm256_add_epi64(vaik, vb);
      // v = max(s, -inf): keep s only where s > -inf.
      const __m256i gt = _mm256_cmpgt_epi64(s, vminf);
      const __m256i v = _mm256_blendv_epi8(vminf, s, gt);
      const __m256i vc =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(crow + j));
      // c = min(c, v): keep v only where c > v (strict improvement).
      const __m256i imp = _mm256_cmpgt_epi64(vc, v);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + j),
                          _mm256_blendv_epi8(vc, v, imp));
    }
  } else {
    for (; j + 4 <= jh; j += 4) {
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(brow + j));
      const __m256i s = _mm256_add_epi64(vaik, vb);
      const __m256i gt = _mm256_cmpgt_epi64(s, vminf);
      const __m256i v = _mm256_blendv_epi8(vminf, s, gt);
      const __m256i vc =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(crow + j));
      const __m256i imp = _mm256_cmpgt_epi64(vc, v);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + j),
                          _mm256_blendv_epi8(vc, v, imp));
      const int m = _mm256_movemask_pd(_mm256_castsi256_pd(imp));
      if (m != 0) {
        if (m & 1) wrow[j] = k;
        if (m & 2) wrow[j + 1] = k;
        if (m & 4) wrow[j + 2] = k;
        if (m & 8) wrow[j + 3] = k;
      }
    }
  }
  clean_row_scalar(aik, brow, crow, wrow, j, jh, k);
}

}  // namespace

void simd_band_avx2(const std::int64_t* a, const std::int64_t* b, std::int64_t* c,
                    std::uint32_t rows, std::uint32_t inner, std::uint32_t cols,
                    std::uint32_t bs, const std::uint8_t* clean,
                    std::uint32_t* witness) {
  banded_tiles(a, b, c, rows, inner, cols, bs, clean, witness, clean_row_avx2);
}

bool kernel_band_avx2_compiled() { return true; }

}  // namespace qclique::detail

#else  // !__AVX2__

namespace qclique::detail {

void simd_band_avx2(const std::int64_t* a, const std::int64_t* b, std::int64_t* c,
                    std::uint32_t rows, std::uint32_t inner, std::uint32_t cols,
                    std::uint32_t bs, const std::uint8_t* clean,
                    std::uint32_t* witness) {
  blocked_band(a, b, c, rows, inner, cols, bs, clean, witness);
}

bool kernel_band_avx2_compiled() { return false; }

}  // namespace qclique::detail

#endif
