#include "core/sssp.hpp"

#include "common/error.hpp"

namespace qclique {

SsspResult quantum_sssp(const Digraph& g, std::uint32_t source,
                        const QuantumApspOptions& options, Rng& rng) {
  QCLIQUE_CHECK(source < g.size(), "sssp source out of range");
  const QuantumApspResult apsp = quantum_apsp(g, options, rng);
  SsspResult res;
  res.distances = apsp.distances.row(source);
  res.rounds = apsp.rounds;
  res.ledger = apsp.ledger;
  return res;
}

}  // namespace qclique
