// Tests for the distributed O~(n^{1/3})-round semiring distance product and
// the classical APSP pipeline built on it.
#include "baseline/semiring_product.hpp"

#include <gtest/gtest.h>

#include "baseline/classical_apsp.hpp"
#include "baseline/shortest_paths.hpp"
#include "common/rng.hpp"
#include "congest/network.hpp"
#include "common/stats.hpp"
#include "graph/generators.hpp"
#include "matrix/min_plus.hpp"

namespace qclique {
namespace {

DistMatrix random_matrix(std::uint32_t n, std::int64_t lo, std::int64_t hi,
                         double inf_prob, Rng& rng) {
  DistMatrix m(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      if (!rng.bernoulli(inf_prob)) m.set(i, j, rng.uniform_i64(lo, hi));
    }
  }
  return m;
}

class SemiringProductSizes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SemiringProductSizes, MatchesNaiveProduct) {
  const std::uint32_t n = GetParam();
  Rng rng(100 + n);
  CliqueNetwork net(n);
  const auto a = random_matrix(n, -9, 9, 0.2, rng);
  const auto b = random_matrix(n, -9, 9, 0.2, rng);
  const auto res = semiring_distance_product(net, a, b);
  const auto want = distance_product_naive(a, b);
  EXPECT_EQ(res.product, want) << res.product.first_difference(want);
  EXPECT_GT(res.rounds, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SemiringProductSizes,
                         ::testing::Values(2u, 3u, 5u, 8u, 13u, 16u, 27u, 32u));

TEST(SemiringProduct, AllInfMatrices) {
  CliqueNetwork net(6);
  DistMatrix a(6), b(6);
  const auto res = semiring_distance_product(net, a, b);
  EXPECT_EQ(res.product, DistMatrix(6));
}

TEST(SemiringProduct, IdentityNeutral) {
  Rng rng(7);
  const std::uint32_t n = 9;
  CliqueNetwork net(n);
  const auto a = random_matrix(n, -5, 5, 0.3, rng);
  const auto res = semiring_distance_product(net, a, DistMatrix::identity(n));
  EXPECT_EQ(res.product, a);
}

TEST(SemiringProduct, RoundsScaleSubLinearly) {
  // The cube algorithm's rounds grow like n^{1/3} (up to log factors from
  // payload chunking). Check the fitted exponent stays well below the
  // trivial 1.0 (broadcast-everything) and above 0.
  Rng rng(8);
  std::vector<double> ns, rounds;
  for (std::uint32_t n : {8u, 16u, 32u, 64u}) {
    CliqueNetwork net(n);
    const auto a = random_matrix(n, -9, 9, 0.1, rng);
    const auto b = random_matrix(n, -9, 9, 0.1, rng);
    const auto res = semiring_distance_product(net, a, b);
    ns.push_back(n);
    rounds.push_back(static_cast<double>(res.rounds));
  }
  const auto fit = fit_power_law(ns, rounds);
  EXPECT_LT(fit.slope, 0.85);
  EXPECT_GT(fit.slope, 0.05);
}

TEST(ClassicalApsp, MatchesFloydWarshall) {
  Rng rng(9);
  for (std::uint32_t n : {4u, 9u, 16u}) {
    const auto g = random_digraph(n, 0.45, -4, 9, rng);
    const auto fw = floyd_warshall(g);
    ASSERT_TRUE(fw.has_value());
    const auto res = classical_apsp(g);
    EXPECT_EQ(res.distances, *fw) << res.distances.first_difference(*fw);
    EXPECT_GT(res.rounds, 0u);
  }
}

TEST(ClassicalApsp, SingleVertex) {
  Digraph g(1);
  const auto res = classical_apsp(g);
  EXPECT_EQ(res.distances.at(0, 0), 0);
}

TEST(ClassicalApsp, LedgerHasSemiringPhases) {
  Rng rng(10);
  const auto g = random_digraph(8, 0.5, 0, 5, rng, false);
  const auto res = classical_apsp(g);
  EXPECT_GT(res.ledger.phase_rounds("semiring/distribute"), 0u);
  EXPECT_GT(res.ledger.phase_rounds("semiring/combine"), 0u);
}

}  // namespace
}  // namespace qclique
