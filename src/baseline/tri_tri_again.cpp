#include "baseline/tri_tri_again.hpp"

#include <algorithm>
#include <memory>
#include <set>

#include "common/error.hpp"
#include "common/math.hpp"
#include "congest/lenzen.hpp"

namespace qclique {

TriangleListingResult tri_tri_again_find_edges(const WeightedGraph& g,
                                               const TransportOptions& transport,
                                               const KernelOptions& kernel) {
  const std::uint32_t n = g.size();
  const MinPlusKernel& prune_kernel = kernel.resolve();
  TriangleListingResult res;
  const std::uint32_t net_n = std::max<std::uint32_t>(n, 2);
  const std::unique_ptr<Network> net_ptr = make_network_for(
      net_n, transport, [&g] { return g.adjacency_lists(); });
  Network& net = *net_ptr;
  const std::uint64_t rounds_before = net.ledger().total_rounds();

  const std::uint32_t q = static_cast<std::uint32_t>(iroot3_ceil(n));
  const BlockPartition blocks(n, q);

  // Assign group triples (g1 <= g2 <= g3) round-robin to nodes. There are
  // C(q+2, 3) <= n such triples (q = n^{1/3}), so most nodes get at most
  // one; the modulo keeps correctness if rounding makes a few nodes serve
  // two, and route() charges the true congestion either way.
  struct Triple {
    std::uint32_t a, b, c;
    NodeId node;
  };
  std::vector<Triple> triples;
  {
    std::uint32_t next = 0;
    for (std::uint32_t a = 0; a < q; ++a) {
      for (std::uint32_t b = a; b < q; ++b) {
        for (std::uint32_t c = b; c < q; ++c) {
          triples.push_back(Triple{a, b, c, static_cast<NodeId>(next % n)});
          ++next;
        }
      }
    }
  }

  // Phase 1: each node v owns row v of the weight matrix and ships, for
  // every triple that needs it, the weights between the triple's groups.
  // Payload: tag 1, fields [u, v, w(u,v)] for u < v.
  const std::size_t budget = net.config().fields_per_message;
  QCLIQUE_CHECK(budget >= 3, "tri_tri_again needs >= 3 fields per message");
  MessageBatch batch;  // flat struct-of-arrays batch, one shared arena
  auto emit_bipartite = [&](std::uint32_t blk_u, std::uint32_t blk_v, NodeId dst) {
    for (std::uint64_t u = blocks.block_begin(blk_u); u < blocks.block_end(blk_u);
         ++u) {
      for (std::uint64_t v = blocks.block_begin(blk_v); v < blocks.block_end(blk_v);
           ++v) {
        if (v <= u && blk_u == blk_v) continue;  // each intra-pair once
        const auto uu = static_cast<std::uint32_t>(u);
        const auto vv = static_cast<std::uint32_t>(v);
        if (!g.has_edge(uu, vv)) continue;
        // Row owner uu sends its incident edge [u, v, w(u, v)].
        if (static_cast<NodeId>(uu) == dst) {
          net.deposit(Message{dst, dst, Payload::make(1, {uu, vv, g.weight(uu, vv)})});
        } else {
          batch.add(static_cast<NodeId>(uu), dst, 1);
          batch.field(uu);
          batch.field(vv);
          batch.field(g.weight(uu, vv));
        }
      }
    }
  };
  for (const Triple& t : triples) {
    // The distinct group pairs among {(a,b), (a,c), (b,c)}.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs{
        {t.a, t.b}, {t.a, t.c}, {t.b, t.c}};
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    for (const auto& [x, y] : pairs) emit_bipartite(x, y, t.node);
  }
  route(net, batch, "tri3/distribute");

  // Phase 2: each triple lists its negative triangles locally and reports
  // the hot pairs to the pair's lower endpoint (tag 2: [u, v]).
  std::set<std::pair<std::uint32_t, std::uint32_t>> local_hot;
  for (const Triple& t : triples) {
    // Rebuild the local weight view for this triple from the node's inbox.
    const NodeId node = t.node;
    std::vector<std::pair<VertexPair, std::int64_t>> edges;
    for (const Message& m : net.inbox(node)) {
      if (m.payload.tag != 1) continue;
      const auto u = static_cast<std::uint32_t>(m.payload.at(0));
      const auto v = static_cast<std::uint32_t>(m.payload.at(1));
      const auto in_triple = [&](std::uint32_t x) {
        const std::uint64_t b = blocks.block_of(x);
        return b == t.a || b == t.b || b == t.c;
      };
      if (in_triple(u) && in_triple(v)) {
        edges.emplace_back(VertexPair{u, v}, m.payload.at(2));
      }
    }
    // Local adjacency for this triple (small: <= 3 n^{2/3} vertices).
    std::vector<std::uint32_t> verts;
    for (std::uint32_t blk : {t.a, t.b, t.c}) {
      for (std::uint64_t x = blocks.block_begin(blk); x < blocks.block_end(blk); ++x) {
        verts.push_back(static_cast<std::uint32_t>(x));
      }
    }
    std::sort(verts.begin(), verts.end());
    verts.erase(std::unique(verts.begin(), verts.end()), verts.end());
    std::vector<std::uint32_t> pos(n, UINT32_MAX);
    for (std::uint32_t i = 0; i < verts.size(); ++i) pos[verts[i]] = i;
    const std::uint32_t ln = static_cast<std::uint32_t>(verts.size());
    std::vector<std::int64_t> w(static_cast<std::size_t>(ln) * ln, kPlusInf);
    for (const auto& [e, wt] : edges) {
      const std::uint32_t pu = pos[e.a], pv = pos[e.b];
      w[static_cast<std::size_t>(pu) * ln + pv] = wt;
      w[static_cast<std::size_t>(pv) * ln + pu] = wt;
    }
    // Pruning oracle: the min-plus square of the local view. p[i][j] is the
    // cheapest two-hop i -> k -> j detour over *any* local k, so a pair with
    // w(i,j) + p(i,j) >= 0 closes no negative triangle and its enumeration
    // loop can be skipped wholesale (free in the round model -- this is
    // node-local computation; the kernel only changes wall time).
    std::vector<std::int64_t> p(static_cast<std::size_t>(ln) * ln);
    prune_kernel.run(w.data(), w.data(), p.data(), ln, ln, ln, kernel.config,
                     /*witness=*/nullptr);
    // List triangles with one vertex in each group slot. A triangle whose
    // vertices span groups {ga, gb, gc} is listed by exactly that sorted
    // triple, so counting is exact (no double counting across triples).
    for (std::uint32_t i = 0; i < ln; ++i) {
      for (std::uint32_t j = i + 1; j < ln; ++j) {
        const std::int64_t wij = w[static_cast<std::size_t>(i) * ln + j];
        if (is_plus_inf(wij)) continue;
        if (sat_add(wij, p[static_cast<std::size_t>(i) * ln + j]) >= 0) continue;
        for (std::uint32_t k = j + 1; k < ln; ++k) {
          const std::int64_t wik = w[static_cast<std::size_t>(i) * ln + k];
          if (is_plus_inf(wik)) continue;
          const std::int64_t wjk = w[static_cast<std::size_t>(j) * ln + k];
          if (is_plus_inf(wjk)) continue;
          if (sat_add(sat_add(wij, wik), wjk) >= 0) continue;
          // Check group multiset matches the triple exactly.
          std::uint32_t bs[3] = {
              static_cast<std::uint32_t>(blocks.block_of(verts[i])),
              static_cast<std::uint32_t>(blocks.block_of(verts[j])),
              static_cast<std::uint32_t>(blocks.block_of(verts[k]))};
          std::sort(bs, bs + 3);
          if (bs[0] != t.a || bs[1] != t.b || bs[2] != t.c) continue;
          ++res.negative_triangles;
          local_hot.insert({std::min(verts[i], verts[j]), std::max(verts[i], verts[j])});
          local_hot.insert({std::min(verts[i], verts[k]), std::max(verts[i], verts[k])});
          local_hot.insert({std::min(verts[j], verts[k]), std::max(verts[j], verts[k])});
        }
      }
    }
  }
  // Phase 3: report hot pairs to their endpoints. Each pair is one message
  // [u, v] to node min(u, v); loads are <= n per destination in batches.
  // The reported pairs are read from `local_hot` below, never from the
  // inboxes (the next statement clears them), so the report batch routes
  // counts-only.
  LinkCounts report(net.size());
  // (The listing nodes would send these; we attribute each pair to the node
  // of the triple that found it -- for round accounting the worst case is
  // what matters, and route() measures it.)
  for (const auto& [u, v] : local_hot) {
    // Deduplicated set: a single send per hot pair from the finder node.
    NodeId src = static_cast<NodeId>(v % net.size());
    const NodeId dst = static_cast<NodeId>(u);
    if (src == dst) src = static_cast<NodeId>((u + 1) % net.size());
    report.add(src, dst);
  }
  route_counts(net, report, "tri3/report");
  net.clear_inboxes();

  res.hot_pairs.reserve(local_hot.size());
  for (const auto& [u, v] : local_hot) res.hot_pairs.emplace_back(u, v);
  std::sort(res.hot_pairs.begin(), res.hot_pairs.end());
  res.rounds = net.ledger().total_rounds() - rounds_before;
  return res;
}

}  // namespace qclique
