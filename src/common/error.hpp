// Error types and checking macros used throughout the qclique libraries.
//
// Simulation code distinguishes three failure classes:
//   * ProtocolAbort   -- a *modeled* abort that the paper's algorithms may
//                        take deliberately (e.g. Algorithm IdentifyClass
//                        aborts when some |Lambda(u)| > 20 log n). These are
//                        part of normal operation; callers retry or report.
//   * BandwidthError  -- a protocol attempted to exceed the CONGEST-CLIQUE
//                        per-round bandwidth. Always a bug in protocol code,
//                        never expected at runtime.
//   * SimulationError -- any other violated invariant of the simulator.
#pragma once

#include <stdexcept>
#include <string>

namespace qclique {

/// Base class for all qclique errors.
class SimulationError : public std::runtime_error {
 public:
  explicit SimulationError(const std::string& what) : std::runtime_error(what) {}
};

/// A deliberate, modeled protocol abort (low-probability event analyzed by
/// the paper, e.g. a Chernoff-bound tail). Callers are expected to catch
/// this and retry with fresh randomness.
class ProtocolAbort : public SimulationError {
 public:
  explicit ProtocolAbort(const std::string& what) : SimulationError(what) {}
};

/// A protocol tried to send more data in one round than the model allows.
class BandwidthError : public SimulationError {
 public:
  explicit BandwidthError(const std::string& what) : SimulationError(what) {}
};

}  // namespace qclique

/// Invariant check that throws qclique::SimulationError. Enabled in all build
/// types: the simulator is the instrument, so silent corruption is worse than
/// the branch cost.
#define QCLIQUE_CHECK(cond, msg)                                      \
  do {                                                                \
    if (!(cond)) {                                                    \
      throw ::qclique::SimulationError(std::string("QCLIQUE_CHECK failed: ") + \
                                       #cond + " -- " + (msg));       \
    }                                                                 \
  } while (0)

#define QCLIQUE_BANDWIDTH_CHECK(cond, msg)                            \
  do {                                                                \
    if (!(cond)) {                                                    \
      throw ::qclique::BandwidthError(std::string("bandwidth violation: ") + \
                                      (msg));                         \
    }                                                                 \
  } while (0)
