// "Tri, Tri Again" (Dolev, Lenzen, Peled 2012): deterministic triangle
// listing in O~(n^{1/3}) rounds in the CONGEST-CLIQUE.
//
// The vertex set is split into q = ceil(n^{1/3}) groups; each node is
// assigned one group triple (g1, g2, g3) and gathers the three bipartite
// edge sets between its groups (each at most (n/q)^2 = n^{4/3} weights, so
// O~(n^{1/3}) rounds by Lemma 1 routing). The node then lists every
// triangle spanned by its triple locally. The algorithm is combinatorial,
// so -- unlike the algebraic triangle detectors -- it works unchanged for
// *negative* triangle listing, which is why the paper cites it as the
// classical way to solve FindEdges in O~(n^{1/3}) rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/transport.hpp"
#include "graph/weighted_graph.hpp"
#include "matrix/kernels.hpp"

namespace qclique {

/// Result of the distributed listing.
struct TriangleListingResult {
  /// All pairs involved in at least one negative triangle (sorted, unique).
  std::vector<VertexPair> hot_pairs;
  /// Total negative triangles found (each counted once).
  std::uint64_t negative_triangles = 0;
  std::uint64_t rounds = 0;
};

/// Runs the listing on a fresh simulated network of g.size() nodes (built
/// from `transport`; graph-induced links for "congest") and returns the
/// negative-triangle census -- the classical FindEdges solver. Each triple
/// node first runs a min-plus square of its local weight view on the
/// selected kernel and uses it to prune pairs that cannot close a negative
/// triangle, then enumerates exactly (counts are unchanged by the kernel
/// choice).
TriangleListingResult tri_tri_again_find_edges(const WeightedGraph& g,
                                               const TransportOptions& transport = {},
                                               const KernelOptions& kernel = {});

}  // namespace qclique
