#include "serve/query_server.hpp"

#include <algorithm>
#include <mutex>

#include "common/error.hpp"
#include "common/rng.hpp"  // splitmix64

namespace qclique {
namespace {

/// Slot key for "empty": (UINT32_MAX, UINT32_MAX) is never a valid pair
/// because queries are bounds-checked against n < UINT32_MAX.
constexpr std::uint64_t kEmptySlot = ~std::uint64_t{0};

std::uint64_t next_pow2(std::uint64_t x) {
  std::uint64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

struct QueryServer::Shard {
  std::mutex mu;
  std::uint64_t set_mask = 0;  // sets - 1 (power of two)
  std::uint32_t ways = 1;
  std::uint64_t clock = 0;  // LRU tick source, bumped per touch
  // Flat parallel arrays, sets * ways slots: slot = set * ways + way.
  std::vector<std::uint64_t> keys;      // packed (u << 32 | v); kEmptySlot
  std::vector<std::uint64_t> versions;  // snapshot version of the entry
  std::vector<std::uint64_t> ticks;     // last-touch stamp (LRU victim = min)
  std::vector<PathAnswer> values;

  Shard(std::uint64_t sets, std::uint32_t ways_)
      : set_mask(sets - 1),
        ways(ways_),
        keys(sets * ways_, kEmptySlot),
        versions(sets * ways_, 0),
        ticks(sets * ways_, 0),
        values(sets * ways_) {}
};

QueryServer::QueryServer(const SnapshotStore& store,
                         QueryServerOptions options)
    : store_(store), options_(options) {
  const std::uint32_t shards = static_cast<std::uint32_t>(
      next_pow2(std::max<std::uint32_t>(1, options_.cache_shards)));
  shard_mask_ = shards - 1;
  const std::uint32_t ways = std::max<std::uint32_t>(1, options_.cache_ways);
  const std::uint64_t per_shard = std::max<std::uint64_t>(
      1, (std::max<std::size_t>(1, options_.cache_capacity) + shards - 1) /
             shards);
  const std::uint64_t sets = next_pow2((per_shard + ways - 1) / ways);
  shards_.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(sets, ways));
  }
}

QueryServer::~QueryServer() = default;

const ApspSnapshot& QueryServer::Session::refreshed() {
  const ApspSnapshot* before = pin_.pinned();
  const ApspSnapshot* snap = pin_.refresh();
  QCLIQUE_CHECK(snap != nullptr, "query against an empty SnapshotStore");
  if (snap != before) ++local_.repins;
  return *snap;
}

const ApspSnapshot& QueryServer::Session::snapshot() { return refreshed(); }

std::int64_t QueryServer::Session::distance(std::uint32_t u, std::uint32_t v) {
  const ApspSnapshot& snap = refreshed();
  QCLIQUE_CHECK(u < snap.size() && v < snap.size(),
                "distance query endpoint out of range");
  ++local_.distance_queries;
  return snap.distance(u, v);
}

void QueryServer::Session::distance_batch(std::span<const PairQuery> queries,
                                          std::span<std::int64_t> out) {
  QCLIQUE_CHECK(queries.size() == out.size(),
                "batch output span size mismatch");
  if (queries.empty()) return;
  const ApspSnapshot& snap = refreshed();
  const std::uint32_t n = snap.size();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const PairQuery q = queries[i];
    QCLIQUE_CHECK(q.u < n && q.v < n, "batch query endpoint out of range");
    out[i] = snap.distance(q.u, q.v);
  }
  local_.batch_entries += queries.size();
}

std::vector<std::int64_t> QueryServer::Session::distance_batch(
    std::span<const PairQuery> queries) {
  std::vector<std::int64_t> out(queries.size());
  distance_batch(queries, out);
  return out;
}

PathAnswer QueryServer::Session::path(std::uint32_t u, std::uint32_t v) {
  const ApspSnapshot& snap = refreshed();
  QCLIQUE_CHECK(u < snap.size() && v < snap.size(),
                "path query endpoint out of range");
  QCLIQUE_CHECK(snap.has_paths(),
                "path query against a distance-only snapshot");
  ++local_.path_queries;
  return server_->cached_path(snap, u, v, local_);
}

void QueryServer::Session::flush_stats() {
  if (server_ == nullptr) return;
  constexpr auto relaxed = std::memory_order_relaxed;
  server_->distance_queries_.fetch_add(local_.distance_queries, relaxed);
  server_->batch_entries_.fetch_add(local_.batch_entries, relaxed);
  server_->path_queries_.fetch_add(local_.path_queries, relaxed);
  server_->cache_hits_.fetch_add(local_.cache_hits, relaxed);
  server_->cache_misses_.fetch_add(local_.cache_misses, relaxed);
  server_->repins_.fetch_add(local_.repins, relaxed);
  local_ = QueryServerStats{};
}

PathAnswer QueryServer::cached_path(const ApspSnapshot& snap, std::uint32_t u,
                                    std::uint32_t v,
                                    QueryServerStats& local) {
  const std::uint64_t pair = (static_cast<std::uint64_t>(u) << 32) | v;
  // One splitmix64 step over (pair, version) spreads both the shard and
  // the set choice; the version in the key makes cross-publish collisions
  // impossible, not just unlikely.
  std::uint64_t h = pair ^ (snap.version() * 0x9e3779b97f4a7c15ULL);
  h = splitmix64(h);
  Shard& shard = *shards_[h & shard_mask_];
  const std::uint64_t set = (h >> 16) & shard.set_mask;
  const std::size_t base = static_cast<std::size_t>(set) * shard.ways;

  {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (std::uint32_t w = 0; w < shard.ways; ++w) {
      const std::size_t slot = base + w;
      if (shard.keys[slot] == pair &&
          shard.versions[slot] == snap.version()) {
        shard.ticks[slot] = ++shard.clock;
        ++local.cache_hits;
        return shard.values[slot];
      }
    }
  }

  // Miss: realize outside the lock (successor chasing can be long), then
  // insert over the set's LRU way. Two threads racing on the same pair
  // realize it twice and insert identical answers -- wasted work, never a
  // wrong answer.
  ++local.cache_misses;
  PathAnswer answer{snap.distance(u, v), snap.path(u, v)};
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    std::size_t victim = base;
    for (std::uint32_t w = 0; w < shard.ways; ++w) {
      const std::size_t slot = base + w;
      if (shard.keys[slot] == kEmptySlot) {
        victim = slot;
        break;
      }
      if (shard.ticks[slot] < shard.ticks[victim]) victim = slot;
    }
    shard.keys[victim] = pair;
    shard.versions[victim] = snap.version();
    shard.ticks[victim] = ++shard.clock;
    shard.values[victim] = answer;
  }
  return answer;
}

QueryServerStats QueryServer::stats() const {
  constexpr auto relaxed = std::memory_order_relaxed;
  QueryServerStats s;
  s.distance_queries = distance_queries_.load(relaxed);
  s.batch_entries = batch_entries_.load(relaxed);
  s.path_queries = path_queries_.load(relaxed);
  s.cache_hits = cache_hits_.load(relaxed);
  s.cache_misses = cache_misses_.load(relaxed);
  s.repins = repins_.load(relaxed);
  return s;
}

}  // namespace qclique
