#include "api/batch_runner.hpp"

#include <atomic>
#include <thread>

#include "common/error.hpp"

namespace qclique {

std::vector<BatchResult> BatchRunner::run(const std::vector<BatchJob>& jobs) const {
  unsigned workers = base_.num_threads();
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, jobs.size() > 0 ? jobs.size() : 1));
  return run_with_workers(jobs, workers);
}

std::vector<BatchResult> BatchRunner::run_with_workers(
    const std::vector<BatchJob>& jobs, unsigned workers) const {
  std::vector<BatchResult> results(jobs.size());

  const auto run_one = [&](std::size_t i) {
    BatchResult& out = results[i];
    out.job_index = i;
    out.solver = jobs[i].solver;
    out.label = jobs[i].label;
    try {
      QCLIQUE_CHECK(jobs[i].graph != nullptr, "batch job without a graph");
      const ApspSolver& solver = registry_.get(jobs[i].solver);
      // Fork by job index so results do not depend on worker scheduling,
      // and mix the job's salt so callers can vary randomness per job.
      ExecutionContext ctx =
          base_.fork(static_cast<std::uint64_t>(i) * 0x100000001b3ULL +
                     jobs[i].seed_salt);
      if (!jobs[i].kernel.empty()) ctx.set_kernel(jobs[i].kernel);
      // A fanned-out batch already saturates the machine with one worker
      // per hardware thread; letting every job's "parallel" kernel spawn
      // its own full thread pool on top would oversubscribe quadratically.
      // Serialize the kernels instead -- results are identical by the
      // kernel contract, only wall time changes.
      if (workers > 1) ctx.kernel_options().config.num_threads = 1;
      out.report = solver.solve(*jobs[i].graph, ctx);
      out.ok = true;
    } catch (const std::exception& e) {
      out.ok = false;
      out.error = e.what();
    }
  };

  if (workers <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) run_one(i);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < jobs.size();
             i = next.fetch_add(1)) {
          run_one(i);
        }
      });
    }
    for (auto& t : pool) t.join();
  }

  // Workers have joined: aggregate per-job costs single-threaded.
  for (const BatchResult& r : results) {
    if (r.ok) batch_ledger_.absorb(r.report->ledger);
  }
  return results;
}

std::vector<BatchResult> BatchRunner::run_all(const Digraph& g,
                                              std::vector<std::string> solvers) const {
  if (solvers.empty()) {
    const bool negative = g.has_negative_arc();
    for (const std::string& name : registry_.names()) {
      if (negative && !registry_.get(name).capabilities().negative_weights) continue;
      solvers.push_back(name);
    }
  }
  const auto shared = std::make_shared<const Digraph>(g);
  std::vector<BatchJob> jobs;
  jobs.reserve(solvers.size());
  for (const std::string& name : solvers) {
    jobs.push_back(BatchJob{.graph = shared, .solver = name, .kernel = "",
                            .seed_salt = 0, .label = name});
  }
  return run(jobs);
}

std::vector<BatchResult> BatchRunner::run_kernels(const Digraph& g,
                                                  const std::string& solver,
                                                  std::vector<std::string> kernels) const {
  if (kernels.empty()) kernels = KernelRegistry::instance().names();
  const auto shared = std::make_shared<const Digraph>(g);
  std::vector<BatchJob> jobs;
  jobs.reserve(kernels.size());
  for (const std::string& name : kernels) {
    jobs.push_back(BatchJob{.graph = shared, .solver = solver, .kernel = name,
                            .seed_salt = 0, .label = name});
  }
  // One batch worker: this sweep exists to compare kernel wall times, so
  // each job must own the whole machine (a parallel batch would both skew
  // the timings and trip run()'s kernel-thread cap, silently benchmarking
  // "parallel" as "blocked").
  return run_with_workers(jobs, 1);
}

}  // namespace qclique
