// Witness-path round trip across every registered graph family: each
// served path re-costs against the graph's own arcs to exactly the
// snapshot distance (satellite: paths are proofs, not just node lists).
#include <gtest/gtest.h>

#include "api/registry.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "graph/families.hpp"
#include "serve/query_server.hpp"
#include "serve/snapshot.hpp"
#include "serve/snapshot_store.hpp"

namespace qclique {
namespace {

class ServePathRoundtrip : public ::testing::TestWithParam<std::string> {};

TEST_P(ServePathRoundtrip, EveryPairRecostsToSnapshotDistance) {
  const std::string family = GetParam();
  Rng rng(0x5e77e0);
  const FamilyConfig cfg = family_config(12, 0.5, -3, 9);
  const Digraph g = make_family_graph(family, cfg, rng);

  ExecutionContext ctx(17);
  ctx.set_family(family);
  const auto snap = SolverRegistry::instance().get("floyd-warshall").serve(
      g, ctx, {.with_paths = true, .label = family});
  ASSERT_TRUE(snap->has_paths());
  EXPECT_EQ(snap->metadata().family, family);

  QueryServer server(ctx.serve());
  auto session = server.session();
  const std::uint32_t n = g.size();
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = 0; v < n; ++v) {
      const PathAnswer a = session.path(u, v);
      ASSERT_EQ(a.distance, snap->distance(u, v)) << family << " " << u
                                                  << "->" << v;
      if (u == v) {
        EXPECT_EQ(a.nodes, std::vector<std::uint32_t>{u});
        EXPECT_EQ(a.distance, 0);
        continue;
      }
      if (is_plus_inf(a.distance)) {
        EXPECT_TRUE(a.nodes.empty()) << family << " " << u << "->" << v;
        continue;
      }
      // Re-cost the walk against the graph itself: every hop must be a
      // real arc and the weights must sum to the claimed distance.
      ASSERT_GE(a.nodes.size(), 2u) << family << " " << u << "->" << v;
      ASSERT_EQ(a.nodes.front(), u);
      ASSERT_EQ(a.nodes.back(), v);
      std::int64_t cost = 0;
      for (std::size_t i = 0; i + 1 < a.nodes.size(); ++i) {
        ASSERT_TRUE(g.has_arc(a.nodes[i], a.nodes[i + 1]))
            << family << ": hop " << a.nodes[i] << "->" << a.nodes[i + 1]
            << " is not an arc";
        cost += g.weight(a.nodes[i], a.nodes[i + 1]);
      }
      EXPECT_EQ(cost, a.distance) << family << " " << u << "->" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, ServePathRoundtrip,
    ::testing::ValuesIn(GraphFamilyRegistry::instance().names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace qclique
