// The distance-query serving layer: single, batch, and path queries
// against published snapshots.
//
// One QueryServer fronts one SnapshotStore. Reader threads obtain a
// Session (one per thread -- sessions are cheap, unsynchronized handles)
// and issue queries through it:
//
//   * distance(u, v)        -- one s-t distance, straight off the pinned
//                              snapshot's flat matrix; no locks, no cache
//                              (the matrix *is* the flat table).
//   * distance_batch(...)   -- many pairs against one pin: the session
//                              refreshes once, then runs a tight lookup
//                              loop.
//   * path(u, v)            -- distance plus the realized shortest path.
//                              Successor chasing costs O(path length), so
//                              answers go through a sharded hot-pair cache:
//                              set-associative LRU over flat parallel
//                              arrays (the descendant of PR 5's sorted
//                              flat-table idiom -- no node-based maps, no
//                              rehashing, one mutex per shard touched only
//                              by path queries).
//
// Freshness: every query answers against the latest published snapshot as
// of its start (the session re-pins via SnapshotPin::refresh, a single
// atomic load in steady state). A batch answers entirely against one
// snapshot. Cache entries are keyed by (version, u, v), so a republish
// never serves stale paths -- old-version entries age out by LRU.
//
// Stats: sessions tally locally and flush into the server's atomic
// counters on destruction (or flush_stats()), keeping the per-query hot
// path free of shared-cacheline traffic.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "serve/snapshot_store.hpp"

namespace qclique {

/// One s-t query. Plain aggregate so workloads are flat arrays.
struct PairQuery {
  std::uint32_t u = 0;
  std::uint32_t v = 0;

  friend bool operator==(const PairQuery&, const PairQuery&) = default;
};

/// A path query's answer: the distance and the realized node sequence
/// ({u} when u == v, empty when v is unreachable from u).
struct PathAnswer {
  std::int64_t distance = 0;
  std::vector<std::uint32_t> nodes;

  friend bool operator==(const PathAnswer&, const PathAnswer&) = default;
};

struct QueryServerOptions {
  /// Total cached path answers across all shards (rounded up so every
  /// shard holds at least one full set of `cache_ways`).
  std::size_t cache_capacity = 1u << 14;
  /// Cache shards (rounded up to a power of two). More shards = less
  /// mutex contention between path-querying threads.
  std::uint32_t cache_shards = 8;
  /// Set associativity: ways probed per lookup, LRU within the set.
  std::uint32_t cache_ways = 4;
};

/// Aggregate counters since construction (see header comment for the
/// session-local tally discipline).
struct QueryServerStats {
  std::uint64_t distance_queries = 0;  // single-pair lookups
  std::uint64_t batch_entries = 0;     // pairs answered through batches
  std::uint64_t path_queries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t repins = 0;  // snapshot re-acquisitions after a publish
};

class QueryServer {
 public:
  explicit QueryServer(const SnapshotStore& store,
                       QueryServerOptions options = {});
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// One reader's handle: pins snapshots, tallies stats. Create one per
  /// thread; a Session must not outlive its QueryServer.
  class Session {
   public:
    explicit Session(QueryServer& server)
        : server_(&server), pin_(server.store_) {}
    ~Session() { flush_stats(); }

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;
    /// Movable so `server.session()` composes; the moved-from session is
    /// disarmed (flushes nothing on destruction).
    Session(Session&& other) noexcept
        : server_(other.server_), pin_(other.pin_), local_(other.local_) {
      other.server_ = nullptr;
      other.local_ = QueryServerStats{};
    }

    /// d(u, v) off the latest snapshot. Throws SimulationError when the
    /// store is empty or an endpoint is out of range.
    std::int64_t distance(std::uint32_t u, std::uint32_t v);

    /// Answers every query in `queries` against one pin, in order, into
    /// `out` (must be the same length).
    void distance_batch(std::span<const PairQuery> queries,
                        std::span<std::int64_t> out);

    /// Convenience allocating form.
    std::vector<std::int64_t> distance_batch(
        std::span<const PairQuery> queries);

    /// The shortest u->v path and its distance, through the hot-pair
    /// cache. Requires the pinned snapshot to carry paths.
    PathAnswer path(std::uint32_t u, std::uint32_t v);

    /// Re-pins to the latest snapshot and returns it (throws when the
    /// store is empty). The pin used by every subsequent query until a
    /// newer publish lands.
    const ApspSnapshot& snapshot();

    /// What the last query answered against (no re-pin; null before the
    /// first query). Stress tests verify answers against exactly this.
    const ApspSnapshot* pinned() const { return pin_.pinned(); }

    /// Shares the current pin so it can outlive the session.
    const std::shared_ptr<const ApspSnapshot>& pinned_ref() const {
      return pin_.pinned_ref();
    }

    /// Adds this session's tallies into the server counters and zeroes
    /// them (also runs on destruction).
    void flush_stats();

   private:
    const ApspSnapshot& refreshed();

    QueryServer* server_;
    SnapshotPin pin_;
    QueryServerStats local_;
  };

  Session session() { return Session(*this); }

  /// Counter totals: everything flushed by sessions so far. Sessions still
  /// alive hold unflushed tallies.
  QueryServerStats stats() const;

  const SnapshotStore& store() const { return store_; }
  const QueryServerOptions& options() const { return options_; }

 private:
  friend class Session;

  /// One cache shard: `sets` x `ways` slots in flat parallel arrays,
  /// LRU-within-set by tick stamp. Guarded by its own mutex (path queries
  /// only; the distance path never touches a shard).
  struct Shard;

  /// Cache lookup; on miss realizes the path from `snap` and inserts.
  PathAnswer cached_path(const ApspSnapshot& snap, std::uint32_t u,
                         std::uint32_t v, QueryServerStats& local);

  const SnapshotStore& store_;
  QueryServerOptions options_;
  std::uint32_t shard_mask_ = 0;  // shards - 1 (power of two)
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> distance_queries_{0};
  std::atomic<std::uint64_t> batch_entries_{0};
  std::atomic<std::uint64_t> path_queries_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> repins_{0};
};

}  // namespace qclique
