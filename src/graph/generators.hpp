// Workload generators for tests, examples, and the benchmark harness.
//
// The key construction is `tripartite_gadget`, the Vassilevska Williams -
// Williams reduction (paper Proposition 2): from matrices A, B and a guess
// matrix D, build the tripartite graph on I | J | K in which {i, j} lies in a
// negative triangle iff min_k { A[i,k] + B[k,j] } < D[i,j].
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/weighted_graph.hpp"

namespace qclique {

class Rng;
class DistMatrix;

/// Negative-cycle-free arc-weight sampler: draws w(u, v) = c(u, v) + p(u) -
/// p(v) with per-arc base costs c >= 0 and a random vertex potential p, so
/// negative arcs are possible but every cycle weight telescopes to the sum
/// of the c's >= 0. Potentials and base-cost intervals are sized so every
/// sampled weight lands in [wmin, wmax] exactly (no clamping). Requires
/// wmax >= 0 when wmin < 0 (an all-negative range would force a negative
/// cycle on any cycle). Shared by `random_digraph` and the directed graph
/// families (graph/families.hpp).
class PotentialWeights {
 public:
  PotentialWeights(std::uint32_t n, std::int64_t wmin, std::int64_t wmax, Rng& rng);

  /// Weight for arc (u, v), uniform over the in-range base costs.
  std::int64_t sample(std::uint32_t u, std::uint32_t v, Rng& rng) const;

 private:
  std::int64_t wmin_;
  std::int64_t wmax_;
  std::vector<std::int64_t> pot_;
};

/// Random directed graph with arc probability `density` and weights uniform
/// in [wmin, wmax]. When `no_negative_cycles` is set, weights are produced
/// through `PotentialWeights` (w(u,v) = c(u,v) + p(u) - p(v) with
/// c(u,v) >= 0), which permits negative arcs but makes every cycle
/// non-negative -- the precondition of the APSP reduction -- while keeping
/// every weight inside [wmin, wmax].
Digraph random_digraph(std::uint32_t n, double density, std::int64_t wmin,
                       std::int64_t wmax, Rng& rng, bool no_negative_cycles = true);

/// Random undirected weighted graph with edge probability `density` and
/// weights uniform in [wmin, wmax].
WeightedGraph random_weighted_graph(std::uint32_t n, double density,
                                    std::int64_t wmin, std::int64_t wmax, Rng& rng);

/// A graph with heavy positive background edges plus `planted` triangles of
/// strongly negative total weight. Returns the graph; `out_pairs` (optional)
/// receives the pairs guaranteed to be in a negative triangle. Useful for
/// FindEdges tests where ground truth must be nonempty and controlled.
WeightedGraph planted_negative_triangles(std::uint32_t n, std::uint32_t planted,
                                         Rng& rng,
                                         std::vector<VertexPair>* out_pairs = nullptr);

/// The Proposition 2 gadget: vertices [0,n) = I, [n,2n) = J, [2n,3n) = K;
///   f(i, k) = A[i-ish, k],  f(j, k) = B[k, j-ish],  f(i, j) = -D[i, j].
/// Entries of A, B, D that are +inf produce absent edges. The pair {i, j}
/// lies in a negative triangle iff min_k { A[i,k] + B[k,j] } < D[i,j].
WeightedGraph tripartite_gadget(const DistMatrix& a, const DistMatrix& b,
                                const DistMatrix& d);

/// Decodes a tripartite-gadget vertex id back to (part, index) with
/// part 0 = I, 1 = J, 2 = K.
std::pair<int, std::uint32_t> tripartite_decode(std::uint32_t vertex, std::uint32_t n);

}  // namespace qclique
