// Tests for the statistics toolkit, including the power-law fitter the
// benches use to extract scaling exponents.
#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qclique {
namespace {

TEST(OnlineStats, MeanVarianceMinMax) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(OnlineStats, SingleSample) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, EmptyMinThrows) {
  OnlineStats s;
  EXPECT_THROW(s.min(), SimulationError);
}

TEST(LinearFitTest, ExactLine) {
  const auto fit = fit_linear({1, 2, 3, 4}, {3, 5, 7, 9});
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFitTest, NoisyLineRecoversSlope) {
  Rng rng(17);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    const double x = static_cast<double>(i);
    xs.push_back(x);
    ys.push_back(0.5 * x + 10 + (rng.uniform_double() - 0.5));
  }
  const auto fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 0.5, 0.01);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(LinearFitTest, RejectsDegenerateInput) {
  EXPECT_THROW(fit_linear({1.0}, {2.0}), SimulationError);
  EXPECT_THROW(fit_linear({1, 1, 1}, {1, 2, 3}), SimulationError);
  EXPECT_THROW(fit_linear({1, 2}, {1, 2, 3}), SimulationError);
}

TEST(PowerLawFit, RecoversExponent) {
  // y = 3 * x^0.25 -- the shape of the paper's Theorem 2 bound.
  std::vector<double> xs, ys;
  for (double x : {16.0, 32.0, 64.0, 128.0, 256.0, 512.0}) {
    xs.push_back(x);
    ys.push_back(3.0 * std::pow(x, 0.25));
  }
  const auto fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.slope, 0.25, 1e-9);
  EXPECT_NEAR(std::exp(fit.intercept), 3.0, 1e-9);
}

TEST(PowerLawFit, RejectsNonPositive) {
  EXPECT_THROW(fit_power_law({1, 2}, {0, 1}), SimulationError);
  EXPECT_THROW(fit_power_law({-1, 2}, {1, 1}), SimulationError);
}

TEST(HistogramTest, BucketsAndQuantiles) {
  Histogram h(0, 10, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  EXPECT_EQ(h.total(), 100u);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.buckets()[b], 10u);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.01);
  EXPECT_NEAR(h.quantile(1.0), 10.0, 1e-9);
}

TEST(HistogramTest, ClampsOutOfRange) {
  Histogram h(0, 1, 4);
  h.add(-5);
  h.add(42);
  EXPECT_EQ(h.buckets().front(), 1u);
  EXPECT_EQ(h.buckets().back(), 1u);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1, 1, 4), SimulationError);
  EXPECT_THROW(Histogram(0, 1, 0), SimulationError);
}

}  // namespace
}  // namespace qclique
