#include "core/partitions.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qclique {

namespace {
std::uint64_t clampu(std::uint64_t v, std::uint64_t lo, std::uint64_t hi) {
  return std::max(lo, std::min(v, hi));
}
}  // namespace

Partitions::Partitions(std::uint32_t n)
    : n_(n),
      vblocks_(n, clampu(iroot4_ceil(n), 1, n)),
      wblocks_(n, clampu(isqrt_ceil(n), 1, n)) {
  QCLIQUE_CHECK(n >= 1, "Partitions requires n >= 1");
}

std::vector<std::uint32_t> Partitions::vblock_vertices(std::uint32_t ub) const {
  QCLIQUE_CHECK(ub < num_vblocks(), "V-block index out of range");
  std::vector<std::uint32_t> out;
  for (std::uint64_t v = vblocks_.block_begin(ub); v < vblocks_.block_end(ub); ++v) {
    out.push_back(static_cast<std::uint32_t>(v));
  }
  return out;
}

std::vector<std::uint32_t> Partitions::wblock_vertices(std::uint32_t wb) const {
  QCLIQUE_CHECK(wb < num_wblocks(), "W-block index out of range");
  std::vector<std::uint32_t> out;
  for (std::uint64_t v = wblocks_.block_begin(wb); v < wblocks_.block_end(wb); ++v) {
    out.push_back(static_cast<std::uint32_t>(v));
  }
  return out;
}

NodeId Partitions::t_node(std::uint32_t ub, std::uint32_t vb, std::uint32_t wb) const {
  QCLIQUE_CHECK(ub < num_vblocks() && vb < num_vblocks() && wb < num_wblocks(),
                "t_node label out of range");
  const std::uint64_t idx =
      (static_cast<std::uint64_t>(ub) * num_vblocks() + vb) * num_wblocks() + wb;
  return static_cast<NodeId>(idx % n_);
}

NodeId Partitions::x_node(std::uint32_t ub, std::uint32_t vb, std::uint32_t x) const {
  QCLIQUE_CHECK(ub < num_vblocks() && vb < num_vblocks() && x < num_wblocks(),
                "x_node label out of range");
  const std::uint64_t idx =
      (static_cast<std::uint64_t>(ub) * num_vblocks() + vb) * num_wblocks() + x;
  // Offset by one half so the two labelings do not collapse onto the same
  // physical nodes (both are bijections-modulo-n either way).
  return static_cast<NodeId>((idx + n_ / 2) % n_);
}

NodeId Partitions::dup_node(std::uint32_t ub, std::uint32_t vb, std::uint32_t wb,
                            std::uint32_t y, std::uint32_t dup) const {
  QCLIQUE_CHECK(dup >= 1 && y < dup, "dup_node duplicate index out of range");
  const std::uint64_t base =
      ((static_cast<std::uint64_t>(ub) * num_vblocks() + vb) * num_wblocks() + wb);
  return static_cast<NodeId>((base * dup + y) % n_);
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> Partitions::block_pairs(
    std::uint32_t ub, std::uint32_t vb) const {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  const auto us = vblock_vertices(ub);
  const auto vs = vblock_vertices(vb);
  for (std::uint32_t u : us) {
    for (std::uint32_t v : vs) {
      if (ub == vb) {
        if (u < v) out.emplace_back(u, v);
      } else if (u != v) {
        out.emplace_back(u, v);
      }
    }
  }
  return out;
}

}  // namespace qclique
