// EdgeUpdate / UpdateBatch semantics: apply upserts and deletes, batch
// collapsing to net per-arc changes, validation, export.
#include "stream/update.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/math.hpp"

namespace qclique {
namespace {

Digraph triangle() {
  Digraph g(4);
  g.set_arc(0, 1, 2);
  g.set_arc(1, 2, 3);
  g.set_arc(2, 0, 4);
  return g;
}

TEST(StreamUpdate, KindNames) {
  EXPECT_EQ(update_kind_name(UpdateKind::kInsert), "insert");
  EXPECT_EQ(update_kind_name(UpdateKind::kDelete), "delete");
  EXPECT_EQ(update_kind_name(UpdateKind::kReweight), "reweight");
}

TEST(StreamUpdate, InsertAndReweightUpsert) {
  Digraph g = triangle();
  // Insert a fresh arc.
  EXPECT_TRUE(apply_update(g, {UpdateKind::kInsert, 0, 3, 7}));
  EXPECT_EQ(g.weight(0, 3), 7);
  // Insert over an existing arc behaves as reweight (upsert).
  EXPECT_TRUE(apply_update(g, {UpdateKind::kInsert, 0, 1, 9}));
  EXPECT_EQ(g.weight(0, 1), 9);
  // Reweight onto an absent arc creates it (upsert the other way).
  EXPECT_TRUE(apply_update(g, {UpdateKind::kReweight, 3, 1, 5}));
  EXPECT_EQ(g.weight(3, 1), 5);
  // Reweight to the current weight changes nothing.
  EXPECT_FALSE(apply_update(g, {UpdateKind::kReweight, 0, 1, 9}));
}

TEST(StreamUpdate, DeleteSemantics) {
  Digraph g = triangle();
  EXPECT_TRUE(apply_update(g, {UpdateKind::kDelete, 0, 1, 0}));
  EXPECT_FALSE(g.has_arc(0, 1));
  // Deleting an absent arc is a no-op, not an error.
  EXPECT_FALSE(apply_update(g, {UpdateKind::kDelete, 0, 1, 0}));
  EXPECT_EQ(g.num_arcs(), 2u);
}

TEST(StreamUpdate, ValidationRejectsBadUpdates) {
  Digraph g = triangle();
  EXPECT_THROW(apply_update(g, {UpdateKind::kInsert, 0, 4, 1}),
               SimulationError);
  EXPECT_THROW(apply_update(g, {UpdateKind::kInsert, 5, 1, 1}),
               SimulationError);
  EXPECT_THROW(apply_update(g, {UpdateKind::kInsert, 2, 2, 1}),
               SimulationError);
  EXPECT_THROW(apply_update(g, {UpdateKind::kReweight, 0, 1, kPlusInf}),
               SimulationError);
  // Delete ignores the weight field entirely.
  EXPECT_NO_THROW(apply_update(g, {UpdateKind::kDelete, 0, 1, kPlusInf}));
}

TEST(StreamUpdate, ApplyBatchInOrderCountsChanges) {
  Digraph g = triangle();
  UpdateBatch batch;
  batch.updates = {
      {UpdateKind::kReweight, 0, 1, 8},  // change
      {UpdateKind::kReweight, 0, 1, 8},  // same value: no change
      {UpdateKind::kInsert, 1, 3, 2},    // change
      {UpdateKind::kDelete, 1, 3, 0},    // change (arc just inserted)
      {UpdateKind::kDelete, 1, 3, 0},    // absent: no change
  };
  EXPECT_EQ(apply_batch(g, batch), 3u);
  EXPECT_EQ(g.weight(0, 1), 8);
  EXPECT_FALSE(g.has_arc(1, 3));
}

TEST(StreamUpdate, CanonicalChangesCollapseToNetTransitions) {
  const Digraph g = triangle();
  UpdateBatch batch;
  batch.updates = {
      {UpdateKind::kInsert, 1, 3, 2},    // fresh arc ...
      {UpdateKind::kDelete, 1, 3, 0},    // ... deleted again: identity
      {UpdateKind::kReweight, 0, 1, 5},  // reweighted twice ...
      {UpdateKind::kReweight, 0, 1, 6},  // ... net 2 -> 6
      {UpdateKind::kDelete, 2, 0, 0},    // plain delete
      {UpdateKind::kReweight, 1, 2, 3},  // back to current weight: identity
  };
  const auto changes = canonical_changes(g, batch);
  ASSERT_EQ(changes.size(), 2u);
  // First-touch order: (0,1) appeared before (2,0) among surviving arcs.
  EXPECT_EQ(changes[0], (ArcChange{0, 1, 2, 6}));
  EXPECT_EQ(changes[1], (ArcChange{2, 0, 4, kPlusInf}));
  // `before` is read from the unapplied graph, which stays untouched.
  EXPECT_EQ(g.weight(0, 1), 2);
}

TEST(StreamUpdate, CanonicalChangesInsertUsesInfBefore) {
  const Digraph g = triangle();
  UpdateBatch batch;
  batch.updates = {{UpdateKind::kInsert, 3, 0, 1}};
  const auto changes = canonical_changes(g, batch);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_TRUE(is_plus_inf(changes[0].before));
  EXPECT_EQ(changes[0].after, 1);
}

TEST(StreamUpdate, CanonicalChangesValidates) {
  const Digraph g = triangle();
  UpdateBatch batch;
  batch.updates = {{UpdateKind::kInsert, 0, 9, 1}};
  EXPECT_THROW(canonical_changes(g, batch), SimulationError);
}

TEST(StreamUpdate, BatchToJson) {
  UpdateBatch batch;
  batch.seq = 3;
  batch.stream = "uniform-reweight";
  batch.updates = {{UpdateKind::kReweight, 0, 1, 5},
                   {UpdateKind::kDelete, 1, 2, 0}};
  const std::string json = batch.to_json();
  EXPECT_NE(json.find("\"seq\":3"), std::string::npos);
  EXPECT_NE(json.find("\"stream\":\"uniform-reweight\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"reweight\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"delete\""), std::string::npos);
  // Deletes carry no weight field.
  EXPECT_EQ(json.find("\"kind\":\"delete\",\"u\":1,\"v\":2,\"w\""),
            std::string::npos);
}

}  // namespace
}  // namespace qclique
