// Experiment E6 (Proposition 2): distance product via negative triangles,
// plus the min-plus kernel engine curve.
//
// Part 1 measures the number of FindEdges calls as the entry range M grows
// (theory: ceil(log2(4M + 3)) binary-search probes), verifies the product
// against the naive oracle, and reports rounds per probe.
//
// Part 2 sweeps the kernel axis (kernel x n x threads): every registered
// min-plus kernel over growing matrix sizes, reporting wall time and the
// speedup over the "naive" oracle, and asserting that all kernels produce
// identical matrices. A JSON record of the curve is printed next to the
// table (the bench-artifact export, like bench_transport's ledger dump).
// Acceptance tracking: "parallel" (blocked + multithreaded) must beat
// "naive" by >= 3x at n >= 256.
#include <chrono>
#include <cmath>
#include <iostream>
#include <sstream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/distance_product.hpp"
#include "matrix/kernels.hpp"
#include "matrix/min_plus.hpp"

namespace {

using namespace qclique;

DistMatrix random_matrix(std::uint32_t n, std::int64_t m, double density, Rng& rng) {
  DistMatrix a(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      if (rng.bernoulli(density)) a.set(i, j, rng.uniform_i64(-m, m));
    }
  }
  return a;
}

/// Best-of-`reps` wall time for one kernel product.
double time_product_ms(const MinPlusKernel& kernel, const DistMatrix& a,
                       const DistMatrix& b, const KernelConfig& config, int reps,
                       DistMatrix* out) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    DistMatrix c = kernel.product(a, b, config);
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(stop - start).count());
    if (out != nullptr) *out = std::move(c);
  }
  return best;
}

}  // namespace

int main() {
  using namespace qclique;
  std::cout << "E6: Proposition 2 -- distance product via FindEdges\n";

  Table table({"n", "M", "FindEdges calls", "theory ceil(log2(4M+3))", "rounds",
               "correct"});
  for (const std::uint32_t n : {6u, 10u}) {
    for (const std::int64_t m : {2ll, 8ll, 64ll, 512ll, 4096ll}) {
      Rng rng(31 * n + static_cast<std::uint64_t>(m));
      DistMatrix a(n), b(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        for (std::uint32_t j = 0; j < n; ++j) {
          if (rng.bernoulli(0.85)) a.set(i, j, rng.uniform_i64(-m, m));
          if (rng.bernoulli(0.85)) b.set(i, j, rng.uniform_i64(-m, m));
        }
      }
      DistanceProductOptions opt;
      Rng prng = rng.split();
      const auto res = distance_product_via_triangles(a, b, opt, prng);
      const auto theory = static_cast<std::uint64_t>(
          std::ceil(std::log2(4.0 * static_cast<double>(m) + 3.0)));
      table.add_row({Table::fmt(static_cast<std::uint64_t>(n)), Table::fmt(m),
                     Table::fmt(res.find_edges_calls), Table::fmt(theory),
                     Table::fmt(res.rounds),
                     res.product == distance_product_naive(a, b) ? "yes" : "NO"});
    }
  }
  table.print("Distance product: binary-search depth vs M (the log M factor)");
  std::cout << "\nThe calls column tracks ceil(log2(4M+3)): this is the log W\n"
               "factor in Theorem 1's O~(n^{1/4} log W).\n";

  // ---- Kernel engine axis: kernel x n x threads. ---------------------------
  std::cout << "\nKernel engine: naive vs blocked vs parallel\n";
  KernelRegistry& kernels = KernelRegistry::instance();
  std::cout << "Kernels: ";
  for (const auto& name : kernels.names()) std::cout << name << " ";
  std::cout << "\n\n";

  Table ktable({"n", "kernel", "threads", "wall ms", "speedup vs naive", "agrees"});
  std::ostringstream json;
  json << "[";
  bool all_agree = true;
  bool json_first = true;
  double parallel_speedup_256 = 0.0;
  const MinPlusKernel& naive = kernels.get("naive");
  for (const std::uint32_t n : {64u, 128u, 256u}) {
    Rng rng(4096 + n);
    const DistMatrix a = random_matrix(n, 50, 0.9, rng);
    const DistMatrix b = random_matrix(n, 50, 0.9, rng);
    const int reps = n <= 128 ? 3 : 2;
    DistMatrix reference(n);
    const double naive_ms = time_product_ms(naive, a, b, {}, reps, &reference);
    for (const auto& name : kernels.names()) {
      const MinPlusKernel& kernel = kernels.get(name);
      // Only "parallel" reads num_threads; re-timing the others per thread
      // row would just re-run bit-identical products (naive reuses the
      // reference timing outright).
      const bool thread_sensitive = name == "parallel";
      double ms1 = naive_ms;
      bool agrees1 = true;
      for (const unsigned threads : {1u, 2u, 8u}) {
        KernelConfig config;
        config.num_threads = threads;
        DistMatrix got(n);
        double ms;
        bool agrees;
        if (name == "naive") {
          ms = naive_ms;
          agrees = true;
        } else if (!thread_sensitive && threads > 1) {
          ms = ms1;
          agrees = agrees1;
        } else {
          ms = time_product_ms(kernel, a, b, config, reps, &got);
          agrees = got == reference;
          if (threads == 1) {
            ms1 = ms;
            agrees1 = agrees;
          }
        }
        all_agree = all_agree && agrees;
        const double speedup = ms > 0 ? naive_ms / ms : 0.0;
        if (name == "parallel" && n == 256) {
          parallel_speedup_256 = std::max(parallel_speedup_256, speedup);
        }
        ktable.add_row({Table::fmt(static_cast<std::uint64_t>(n)), name,
                        Table::fmt(static_cast<std::uint64_t>(threads)),
                        Table::fmt(ms, 2), Table::fmt(speedup, 2),
                        agrees ? "yes" : "NO"});
        json << (json_first ? "" : ",") << "{\"n\":" << n << ",\"kernel\":\"" << name
             << "\",\"threads\":" << threads << ",\"wall_ms\":" << ms
             << ",\"speedup\":" << speedup << "}";
        json_first = false;
      }
    }
  }
  json << "]";
  ktable.print("Kernel x n x threads (best-of-reps wall time, one product)");
  std::cout << "\nkernel_bench_json: " << json.str() << "\n";

  const bool target_met = parallel_speedup_256 >= 3.0;
  std::cout << "\nAll kernels agree bit-for-bit: " << (all_agree ? "yes" : "NO")
            << "\nspeedup(parallel vs naive) at n=256: " << parallel_speedup_256
            << "x (target >= 3x: " << (target_met ? "yes" : "NO") << ")\n";
  return all_agree ? 0 : 1;
}
