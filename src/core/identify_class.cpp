#include "core/identify_class.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "congest/primitives.hpp"
#include "graph/triangles.hpp"

namespace qclique {

std::vector<std::uint32_t> IdentifyClassResult::t_alpha(std::uint32_t ub,
                                                        std::uint32_t vb,
                                                        std::uint32_t a,
                                                        std::uint32_t num_vblocks) const {
  std::vector<std::uint32_t> out;
  const auto& row = classes[static_cast<std::size_t>(ub) * num_vblocks + vb];
  for (std::uint32_t wb = 0; wb < row.size(); ++wb) {
    if (row[wb] == a) out.push_back(wb);
  }
  return out;
}

std::uint64_t delta_exact(const WeightedGraph& g, const Partitions& parts,
                          const std::vector<VertexPair>& s_pairs, std::uint32_t ub,
                          std::uint32_t vb, std::uint32_t wb) {
  const auto ws = parts.wblock_vertices(wb);
  std::uint64_t count = 0;
  for (const auto& [u, v] : parts.block_pairs(ub, vb)) {
    if (!std::binary_search(s_pairs.begin(), s_pairs.end(), VertexPair(u, v))) {
      continue;
    }
    for (std::uint32_t w : ws) {
      if (is_negative_triangle(g, u, v, w)) {
        ++count;
        break;
      }
    }
  }
  return count;
}

IdentifyClassResult identify_class(Network& net, const WeightedGraph& g,
                                   const Partitions& parts,
                                   const std::vector<VertexPair>& s_pairs,
                                   const Constants& constants, Rng& rng) {
  const std::uint32_t n = parts.n();
  IdentifyClassResult res;
  const std::uint64_t rounds_before = net.ledger().total_rounds();

  // --- Step 1: each node u samples Lambda(u) from its S-neighborhood. -----
  const double p = std::min(1.0, constants.identify_sample * paper_log(n) /
                                     static_cast<double>(n));
  const double abort_threshold = constants.identify_abort * paper_log(n);
  std::vector<std::vector<std::uint32_t>> lambda(n);
  // Node u's S-neighborhood: pairs {u, v} in S. (S is sorted by VertexPair.)
  for (const auto& pr : s_pairs) {
    // Sampling is directional in the paper ("each node u selects v"): both
    // endpoints get a chance, matching "R = union over u of {u} x Lambda(u)".
    if (rng.bernoulli(p)) lambda[pr.a].push_back(pr.b);
    if (rng.bernoulli(p)) lambda[pr.b].push_back(pr.a);
  }
  for (std::uint32_t u = 0; u < n; ++u) {
    if (static_cast<double>(lambda[u].size()) > abort_threshold) {
      res.aborted = true;
      res.rounds = net.ledger().total_rounds() - rounds_before;
      return res;
    }
  }

  // --- Broadcast Lambda(u) with weights: R becomes public. ----------------
  // Two fields per entry (v, f(u, v)), chunked into the per-message budget;
  // receivers attribute entries to u = src. The contents are the public R,
  // modeled globally below, so the broadcast runs payload-free through the
  // counts-only send path: the same per-link message sequence steps through
  // the same measured drain, nothing is materialized. All broadcasts are
  // enqueued before a single drain: different sources use disjoint links,
  // so the whole exchange costs max_u ceil(2|Lambda(u)| / B) rounds, not
  // the sum.
  const std::size_t budget = net.config().fields_per_message;
  for (std::uint32_t u = 0; u < n; ++u) {
    if (lambda[u].empty()) continue;
    const std::size_t fields = 2 * lambda[u].size();
    for (std::size_t base = 0; base < fields; base += budget) {
      for (NodeId v = 0; v < n; ++v) {
        if (v != u) net.send_counts(static_cast<NodeId>(u), v);
      }
    }
  }
  net.run_until_drained("identify/broadcast");

  // The public set R (every node now knows it).
  std::set<VertexPair> r_set;
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v : lambda[u]) r_set.insert(VertexPair(u, v));
  }
  res.sampled_pairs = r_set.size();

  // --- Step 2: local duvw and cuvw per triple. -----------------------------
  // Node (u, v, w) already holds f(u, w'), f(w', v) for w' in w from Step 1
  // of ComputePairs and learned R (with weights) above, so duvw is local.
  const std::uint32_t B = parts.num_vblocks();
  const std::uint32_t Wb = parts.num_wblocks();
  res.classes.assign(static_cast<std::size_t>(B) * B,
                     std::vector<std::uint32_t>(Wb, 0));
  const double base = constants.identify_class_base * paper_log(n);
  // Bucket R by (u-block, v-block); a pair whose endpoints sit in distinct
  // V-blocks belongs to both orientations, matching P(u, v) = P(v, u).
  std::vector<std::vector<VertexPair>> r_by_blocks(static_cast<std::size_t>(B) * B);
  for (const auto& pr : r_set) {
    const std::uint32_t ba = parts.vblock_of(pr.a);
    const std::uint32_t bb = parts.vblock_of(pr.b);
    r_by_blocks[static_cast<std::size_t>(ba) * B + bb].push_back(pr);
    if (ba != bb) r_by_blocks[static_cast<std::size_t>(bb) * B + ba].push_back(pr);
  }
  for (std::uint32_t ub = 0; ub < B; ++ub) {
    for (std::uint32_t vb = 0; vb < B; ++vb) {
      const auto& rpairs = r_by_blocks[static_cast<std::size_t>(ub) * B + vb];
      for (std::uint32_t wb = 0; wb < Wb; ++wb) {
        const auto ws = parts.wblock_vertices(wb);
        std::uint64_t duvw = 0;
        for (const auto& pr : rpairs) {
          for (std::uint32_t w : ws) {
            if (is_negative_triangle(g, pr.a, pr.b, w)) {
              ++duvw;
              break;
            }
          }
        }
        std::uint32_t c = 0;
        while (static_cast<double>(duvw) >= base * std::pow(2.0, c)) ++c;
        res.classes[static_cast<std::size_t>(ub) * B + vb][wb] = c;
        res.max_alpha = std::max(res.max_alpha, c);
      }
    }
  }
  res.rounds = net.ledger().total_rounds() - rounds_before;
  return res;
}

}  // namespace qclique
