// Wall-clock profiling of protocol phases.
//
// The round ledger answers "how many rounds did phase X cost in the model";
// the PhaseProfiler answers "how many wall-clock milliseconds did
// *simulating* phase X cost on this machine". Spans are keyed by the same
// phase names the ledger uses, so harnesses (bench_pipeline_profile,
// ApspReport::to_json) can report model cost and simulator cost side by
// side and locate the hot phase of the pipeline.
//
// Spans are non-reentrant: opening a span while another is active returns
// an inert span that records nothing. Routing primitives open spans at
// their entry points and also inside run_until_drained; without the guard
// a route() that drains through run_until_drained would double-count its
// wall time under the same phase.
//
// Not thread-safe: one profiler belongs to one ExecutionContext, and
// ExecutionContext::fork gives every child its own instance — the same
// single-owner discipline as Rng and RoundLedger.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace qclique {

class PhaseProfiler {
 public:
  /// Accumulated wall time of one phase across its spans.
  struct Timing {
    double wall_ms = 0.0;
    std::uint64_t calls = 0;     // spans closed under this phase
    std::uint64_t messages = 0;  // logical messages attributed to the phase
  };

  /// RAII timer: records elapsed wall time under its phase on destruction.
  /// A default-constructed (or nested) span is inert.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept { *this = std::move(other); }
    /// Closes (records) the current span, if active, before adopting
    /// `other` — assigning a fresh Span{} is how a span is ended early.
    Span& operator=(Span&& other) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span();

    /// Attributes `count` logical messages to the span's phase.
    void add_messages(std::uint64_t count) { messages_ += count; }

   private:
    friend class PhaseProfiler;
    Span(PhaseProfiler* owner, std::string phase);
    void finish();

    PhaseProfiler* owner_ = nullptr;
    std::string phase_;
    std::uint64_t messages_ = 0;
    std::chrono::steady_clock::time_point start_;
  };

  /// Opens a span for `phase`. Returns an inert span when one is already
  /// open (nested phases record nothing; see the header comment).
  Span span(const std::string& phase);

  /// Records a completed measurement directly (one call's worth).
  void record(const std::string& phase, double wall_ms, std::uint64_t messages = 0);

  const std::map<std::string, Timing>& phases() const { return phases_; }
  bool empty() const { return phases_.empty(); }
  void reset();

  /// Per-phase change between `before` (a snapshot of phases()) and the
  /// current state; phases absent from `before` are returned whole. Lets
  /// ApspSolver::solve attribute one run's wall time on a shared profiler.
  std::map<std::string, Timing> delta_since(
      const std::map<std::string, Timing>& before) const;

  /// JSON object {"phase":{"wall_ms":..,"calls":..,"messages":..},...}.
  std::string to_json() const;

 private:
  void close_span(const std::string& phase, double wall_ms, std::uint64_t messages);

  std::map<std::string, Timing> phases_;
  bool span_open_ = false;
};

/// JSON for a standalone timing map (the ApspReport `profile` export uses
/// the same schema as PhaseProfiler::to_json).
std::string profile_to_json(const std::map<std::string, PhaseProfiler::Timing>& phases);

}  // namespace qclique
