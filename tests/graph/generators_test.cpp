// Tests for the workload generators, in particular the negative-cycle-free
// digraph construction and the Vassilevska Williams-Williams tripartite
// gadget (the heart of Proposition 2).
#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/triangles.hpp"
#include "matrix/dist_matrix.hpp"
#include "matrix/min_plus.hpp"

namespace qclique {
namespace {

// Bellman-Ford negative-cycle detector over all components (adds a virtual
// source). Used only as a test oracle.
bool has_negative_cycle(const Digraph& g) {
  const std::uint32_t n = g.size();
  std::vector<std::int64_t> dist(n, 0);
  for (std::uint32_t pass = 0; pass < n; ++pass) {
    bool changed = false;
    for (std::uint32_t u = 0; u < n; ++u) {
      for (std::uint32_t v = 0; v < n; ++v) {
        if (u == v || !g.has_arc(u, v)) continue;
        const std::int64_t cand = sat_add(dist[u], g.weight(u, v));
        if (cand < dist[v]) {
          dist[v] = cand;
          changed = true;
        }
      }
    }
    if (!changed) return false;
  }
  return true;
}

TEST(RandomDigraph, RespectsWeightRangeWhenCyclic) {
  Rng rng(1);
  const auto g = random_digraph(20, 0.4, -5, 9, rng, /*no_negative_cycles=*/false);
  for (std::uint32_t u = 0; u < 20; ++u) {
    for (std::uint32_t v = 0; v < 20; ++v) {
      if (g.has_arc(u, v)) {
        EXPECT_GE(g.weight(u, v), -5);
        EXPECT_LE(g.weight(u, v), 9);
      }
    }
  }
}

// Regression: the potential trick used to clamp weights only toward wmin
// (std::max(clamped, raw) kept the raw value whenever c + p(u) - p(v)
// exceeded wmax), so no_negative_cycles graphs could carry arcs up to
// ~2*wmax. The contract is both properties at once, across seeds: every
// weight in [wmin, wmax] AND no negative cycle.
TEST(RandomDigraph, NoNegativeCycleModeRespectsWeightRange) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const auto g = random_digraph(16, 0.6, -10, 10, rng);
    for (std::uint32_t u = 0; u < 16; ++u) {
      for (std::uint32_t v = 0; v < 16; ++v) {
        if (u == v || !g.has_arc(u, v)) continue;
        EXPECT_GE(g.weight(u, v), -10) << "seed " << seed;
        EXPECT_LE(g.weight(u, v), 10) << "seed " << seed;
      }
    }
    EXPECT_FALSE(has_negative_cycle(g)) << "seed " << seed;
  }
}

TEST(RandomDigraph, NoNegativeCycleModeRespectsAsymmetricWeightRange) {
  // Asymmetric ranges stress both clamp directions of the old code.
  bool any_negative = false;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(100 + seed);
    const auto g = random_digraph(14, 0.6, -3, 12, rng);
    for (std::uint32_t u = 0; u < 14; ++u) {
      for (std::uint32_t v = 0; v < 14; ++v) {
        if (u == v || !g.has_arc(u, v)) continue;
        EXPECT_GE(g.weight(u, v), -3) << "seed " << seed;
        EXPECT_LE(g.weight(u, v), 12) << "seed " << seed;
        any_negative = any_negative || g.weight(u, v) < 0;
      }
    }
    EXPECT_FALSE(has_negative_cycle(g)) << "seed " << seed;
  }
  EXPECT_TRUE(any_negative);  // negative arcs remain reachable in the range
}

TEST(RandomDigraph, NoNegativeCycleModeRejectsAllNegativeRanges) {
  // wmax < 0 makes every cycle negative; the generator must refuse instead
  // of silently violating the promise.
  Rng rng(1);
  EXPECT_THROW(random_digraph(8, 0.5, -9, -1, rng), SimulationError);
}

TEST(RandomDigraph, NoNegativeCycleModeHolds) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    const auto g = random_digraph(16, 0.5, -10, 10, rng);
    EXPECT_FALSE(has_negative_cycle(g)) << "seed " << seed;
  }
}

TEST(RandomDigraph, ProducesSomeNegativeArcs) {
  Rng rng(3);
  const auto g = random_digraph(30, 0.5, -10, 10, rng);
  bool any_negative = false;
  for (std::uint32_t u = 0; u < 30 && !any_negative; ++u) {
    for (std::uint32_t v = 0; v < 30; ++v) {
      if (u != v && g.has_arc(u, v) && g.weight(u, v) < 0) {
        any_negative = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_negative);
}

TEST(RandomDigraph, DensityApproximatelyRespected) {
  Rng rng(4);
  const std::uint32_t n = 40;
  const auto g = random_digraph(n, 0.3, 0, 10, rng);
  const double density = static_cast<double>(g.num_arcs()) /
                         static_cast<double>(n * (n - 1));
  EXPECT_NEAR(density, 0.3, 0.06);
}

TEST(RandomWeightedGraph, SymmetricWithDensity) {
  Rng rng(5);
  const auto g = random_weighted_graph(30, 0.5, -3, 3, rng);
  const double density = static_cast<double>(g.num_edges()) /
                         static_cast<double>(30 * 29 / 2);
  EXPECT_NEAR(density, 0.5, 0.08);
}

TEST(PlantedTriangles, ExactlyPlantedPairsAreHot) {
  Rng rng(6);
  std::vector<VertexPair> planted;
  const auto g = planted_negative_triangles(24, 4, rng, &planted);
  EXPECT_EQ(planted.size(), 12u);  // 3 pairs per triangle
  EXPECT_EQ(edges_in_negative_triangles(g), planted);
  // Promise holds: every planted pair closes exactly one negative triangle.
  for (const auto& p : planted) EXPECT_EQ(gamma(g, p.a, p.b), 1u);
}

TEST(PlantedTriangles, RejectsOvercrowding) {
  Rng rng(7);
  EXPECT_THROW(planted_negative_triangles(8, 3, rng), SimulationError);
}

TEST(TripartiteGadget, NegativeTrianglesMatchDistanceProductPredicate) {
  Rng rng(8);
  const std::uint32_t n = 8;
  DistMatrix a(n), b(n), d(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      a.set(i, j, rng.uniform_i64(-6, 6));
      b.set(i, j, rng.uniform_i64(-6, 6));
      d.set(i, j, rng.uniform_i64(-12, 12));
    }
  }
  const auto g = tripartite_gadget(a, b, d);
  const auto c = distance_product_naive(a, b);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      const bool in_triangle = gamma(g, i, n + j) > 0;
      EXPECT_EQ(in_triangle, c.at(i, j) < d.at(i, j)) << i << "," << j;
    }
  }
}

TEST(TripartiteGadget, InfEntriesProduceNoEdges) {
  DistMatrix a(2), b(2), d(2);
  // All +inf: the gadget has no edges at all.
  const auto g = tripartite_gadget(a, b, d);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(TripartiteGadget, IsProperlyTripartite) {
  Rng rng(9);
  const std::uint32_t n = 5;
  DistMatrix a(n, 1), b(n, 2), d(n, 3);
  const auto g = tripartite_gadget(a, b, d);
  // No edges inside any part.
  for (int part = 0; part < 3; ++part) {
    for (std::uint32_t x = 0; x < n; ++x) {
      for (std::uint32_t y = x + 1; y < n; ++y) {
        EXPECT_FALSE(g.has_edge(part * n + x, part * n + y));
      }
    }
  }
}

TEST(TripartiteDecode, RoundTrips) {
  const std::uint32_t n = 7;
  EXPECT_EQ(tripartite_decode(3, n), (std::pair<int, std::uint32_t>{0, 3}));
  EXPECT_EQ(tripartite_decode(n + 2, n), (std::pair<int, std::uint32_t>{1, 2}));
  EXPECT_EQ(tripartite_decode(2 * n + 6, n), (std::pair<int, std::uint32_t>{2, 6}));
  EXPECT_THROW(tripartite_decode(3 * n, n), SimulationError);
}

}  // namespace
}  // namespace qclique
