// Exact state-vector simulation over an arbitrary finite search domain.
//
// Grover search (paper Section 4.1) operates on superpositions over a finite
// set X -- not necessarily of power-of-two size -- so the state vector is
// indexed directly by elements of [0, |X|) with no qubit encoding. The only
// operations the distributed search framework needs are the phase oracle
// (one sign flip per marked element) and the Grover diffusion (reflection
// about the uniform superposition); both are implemented exactly in
// O(|X|) arithmetic.
#pragma once

#include <complex>
#include <cstdint>
#include <functional>
#include <vector>

namespace qclique {

class Rng;

/// Exact complex state vector over dimension `dim`.
class StateVector {
 public:
  /// Basis state |i0>.
  explicit StateVector(std::size_t dim, std::size_t i0 = 0);

  /// |Phi_0> = uniform superposition over all of X.
  static StateVector uniform(std::size_t dim);

  std::size_t dim() const { return amps_.size(); }

  std::complex<double> amp(std::size_t i) const { return amps_[i]; }
  void set_amp(std::size_t i, std::complex<double> a) { amps_[i] = a; }

  /// Squared norm (should remain 1 under unitary evolution).
  double norm_sq() const;

  /// Rescales to unit norm; throws on the zero vector.
  void normalize();

  /// Probability of measuring basis state i.
  double probability(std::size_t i) const;

  /// Total probability mass on elements satisfying `pred`.
  double probability_of(const std::function<bool(std::size_t)>& pred) const;

  /// Samples a basis state from the Born distribution. Never returns a
  /// basis state of probability zero (see measure_at).
  std::size_t measure(Rng& rng) const;

  /// Deterministic quantile form of `measure`: returns the basis state the
  /// cumulative Born distribution selects at mass `u` (measure draws
  /// u = uniform * norm_sq()). Zero-amplitude states are skipped -- a `u`
  /// landing exactly on a cumulative boundary selects the next state with
  /// nonzero probability -- and u >= norm_sq() lands on the last supported
  /// state. Exposed so the boundary behavior is testable without steering
  /// an Rng onto exact floating-point values.
  std::size_t measure_at(double u) const;

  /// Phase oracle: amp[i] *= -1 for every i with marked(i).
  void apply_phase_oracle(const std::function<bool(std::size_t)>& marked);

  /// Grover diffusion: reflection about the uniform superposition,
  /// amp -> 2 * mean - amp.
  void apply_diffusion();

  /// One full Grover iterate G = D . O_f.
  void apply_grover_iteration(const std::function<bool(std::size_t)>& marked);

  /// |<this|other>|^2 (states must have equal dimension).
  double fidelity(const StateVector& other) const;

  /// L2 distance || this - other ||.
  double l2_distance(const StateVector& other) const;

 private:
  std::vector<std::complex<double>> amps_;
};

}  // namespace qclique
