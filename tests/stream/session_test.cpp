// StreamSession: batch -> repair -> publish. Versions advance per batch,
// pinned snapshots stay bit-identical behind republishes, fresh readers
// see every applied batch, metadata is self-describing, and run_streams
// drives the whole matrix through the shared store.
#include "stream/session.hpp"

#include <gtest/gtest.h>

#include "api/batch_runner.hpp"
#include "common/error.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "graph/families.hpp"
#include "serve/query_server.hpp"
#include "serve/snapshot_store.hpp"
#include "stream/generators.hpp"

namespace qclique {
namespace {

Digraph start_graph(std::uint32_t n = 16, std::uint64_t seed = 11) {
  Rng rng(seed);
  return make_family_graph("gnp", family_config(n, 0.35, 1, 9), rng);
}

TEST(StreamSession, ConstructorPublishesVersionOne) {
  ExecutionContext ctx(4);
  ctx.set_family("gnp");
  StreamSessionOptions options;
  options.label = "session-test";
  StreamSession session(start_graph(), ctx, options);
  ASSERT_NE(session.current(), nullptr);
  EXPECT_EQ(session.current()->version(), 1u);
  EXPECT_EQ(ctx.serve().version(), 1u);
  const SnapshotMetadata& meta = session.current()->metadata();
  EXPECT_EQ(meta.solver, "incremental");
  EXPECT_EQ(meta.family, "gnp");
  EXPECT_EQ(meta.label, "session-test");
  EXPECT_TRUE(meta.has_paths);
  EXPECT_EQ(meta.metrics.at("batches"), 0u);
  EXPECT_EQ(session.batches_applied(), 0u);
}

TEST(StreamSession, ApplyPublishesMonotoneVersions) {
  ExecutionContext ctx(8);
  const Digraph g = start_graph();
  StreamSession session(g, ctx);
  StreamConfig config;
  config.batches = 4;
  config.batch_size = 6;
  Rng rng(3);
  const auto batches = make_update_stream("uniform-reweight", g, config, rng);
  std::uint64_t expected = 1;
  for (const auto& batch : batches) {
    const auto snap = session.apply(batch);
    EXPECT_EQ(snap->version(), ++expected);
    EXPECT_EQ(snap->metadata().metrics.at("batches"),
              session.batches_applied());
    EXPECT_EQ(snap.get(), session.current().get());
  }
  EXPECT_EQ(session.batches_applied(), 4u);
  EXPECT_EQ(ctx.serve().version(), 5u);
}

TEST(StreamSession, PinnedSnapshotSurvivesRepublish) {
  ExecutionContext ctx(15);
  const Digraph g = start_graph(14, 21);
  StreamSession session(g, ctx);
  // Pin version 1 and keep an independent copy of its answers.
  const std::shared_ptr<const ApspSnapshot> pinned = session.current();
  const DistMatrix before = pinned->distances();

  UpdateBatch batch;
  batch.updates = {{UpdateKind::kInsert, 0, 13, 1}};  // a shortcut arc
  session.apply(batch);

  // The pinned snapshot still answers bit-identically to publish time ...
  EXPECT_EQ(pinned->version(), 1u);
  EXPECT_EQ(pinned->distances(), before);
  // ... while the store's current snapshot reflects the batch.
  const auto fresh = ctx.serve().current();
  EXPECT_EQ(fresh->version(), 2u);
  EXPECT_LE(fresh->distance(0, 13), 1);
  EXPECT_EQ(fresh->distances(), session.solver().distances());
}

TEST(StreamSession, FreshReadersSeeEachBatchPinnedReadersDoNot) {
  ExecutionContext ctx(42);
  const Digraph g = start_graph(12, 33);
  StreamSession writer(g, ctx);
  QueryServer server(ctx.serve());

  // A pinned reader: holds the version-1 snapshot object itself.
  auto reader = server.session();
  (void)reader.snapshot();  // pin now, at version 1
  const auto pinned = reader.pinned_ref();
  ASSERT_EQ(pinned->version(), 1u);

  StreamConfig config;
  config.batches = 3;
  config.batch_size = 4;
  Rng rng(9);
  for (const auto& batch :
       make_update_stream("growth-insert", g, config, rng)) {
    writer.apply(batch);
    // A fresh session always answers against the newest version.
    auto fresh = server.session();
    fresh.snapshot();
    EXPECT_EQ(fresh.pinned()->version(), writer.current()->version());
    for (std::uint32_t v = 1; v < g.size(); ++v) {
      EXPECT_EQ(fresh.distance(0, v), writer.solver().distances().at(0, v));
    }
  }
  // The pinned reader's snapshot never moved.
  EXPECT_EQ(pinned->version(), 1u);
  const DistMatrix& original = pinned->distances();
  ExecutionContext oracle_ctx(42);
  auto oracle = make_dynamic_solver("recompute");
  oracle->reset(g, oracle_ctx);
  EXPECT_EQ(original, oracle->distances());
}

TEST(StreamSession, ServedPathsRecostAgainstServedGraph) {
  ExecutionContext ctx(6);
  const Digraph g = start_graph(15, 44);
  StreamSession session(g, ctx);
  StreamConfig config;
  config.batches = 4;
  config.batch_size = 8;
  Rng rng(12);
  for (const auto& batch : make_update_stream("hub-delete", g, config, rng)) {
    const auto snap = session.apply(batch);
    const Digraph& cur = session.solver().graph();
    for (std::uint32_t u = 0; u < cur.size(); ++u) {
      for (std::uint32_t v = 0; v < cur.size(); ++v) {
        if (u == v || is_plus_inf(snap->distance(u, v))) continue;
        const auto path = snap->path(u, v);
        ASSERT_GE(path.size(), 2u);
        std::int64_t cost = 0;
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
          ASSERT_TRUE(cur.has_arc(path[i], path[i + 1]));
          cost += cur.weight(path[i], path[i + 1]);
        }
        EXPECT_EQ(cost, snap->distance(u, v)) << u << "->" << v;
      }
    }
  }
}

TEST(StreamSession, InvalidBatchPublishesNothing) {
  ExecutionContext ctx(13);
  StreamSession session(start_graph(10, 2), ctx);
  UpdateBatch bad;
  bad.updates = {{UpdateKind::kInsert, 0, 99, 1}};
  EXPECT_THROW(session.apply(bad), SimulationError);
  EXPECT_EQ(ctx.serve().version(), 1u);
  EXPECT_EQ(session.batches_applied(), 0u);
}

TEST(StreamSession, RunStreamsCoversTheMatrixExactly) {
  ExecutionContext base(77);
  base.set_num_threads(2);
  BatchRunner runner(SolverRegistry::instance(), base);
  StreamScenarioSpec spec;
  spec.families = {"gnp", "power-law", "clustered"};
  spec.streams = {};  // all registered: uniform-reweight, hub-delete, growth-insert
  spec.solvers = {};  // all registered: incremental, recompute
  spec.config = family_config(14, 0.3, 1, 9);
  spec.batches = 3;
  spec.batch_size = 5;
  const auto results = runner.run_streams(spec);
  ASSERT_EQ(results.size(),
            3u * UpdateStreamRegistry::instance().size() *
                DynamicSolverRegistry::instance().size());
  std::uint64_t expected_versions = 0;
  for (const auto& r : results) {
    EXPECT_TRUE(r.ok) << r.family << "/" << r.stream << "/" << r.solver
                      << ": " << r.error;
    EXPECT_TRUE(r.exact) << r.family << "/" << r.stream << "/" << r.solver;
    EXPECT_EQ(r.batches, 3u);
    EXPECT_EQ(r.published_versions, 4u);  // initial + one per batch
    EXPECT_EQ(r.n, 14u);
    expected_versions += r.published_versions;
  }
  // Every job published into the base context's shared store.
  EXPECT_EQ(runner.base_context().serve().version(), expected_versions);

  const std::string json = stream_scenarios_to_json(results);
  EXPECT_NE(json.find("\"stream\":\"hub-delete\""), std::string::npos);
  EXPECT_NE(json.find("\"solver\":\"incremental\""), std::string::npos);
  EXPECT_NE(json.find("\"exact\":true"), std::string::npos);
  EXPECT_EQ(json.find("\"exact\":false"), std::string::npos);
}

TEST(StreamSession, RunStreamsRejectsNegativeFamilyWeights) {
  BatchRunner runner;
  StreamScenarioSpec spec;
  spec.config = family_config(10, 0.3, -2, 5);
  EXPECT_THROW(runner.run_streams(spec), SimulationError);
}

TEST(StreamSession, RunStreamsDeterministicAcrossWorkerCounts) {
  StreamScenarioSpec spec;
  spec.families = {"gnp", "grid"};
  spec.streams = {"uniform-reweight", "hub-delete"};
  spec.solvers = {"incremental"};
  spec.config = family_config(12, 0.4, 1, 7);
  spec.batches = 2;
  spec.batch_size = 4;
  ExecutionContext serial_base(5);
  serial_base.set_num_threads(1);
  ExecutionContext parallel_base(5);
  parallel_base.set_num_threads(4);
  const auto serial =
      BatchRunner(SolverRegistry::instance(), serial_base).run_streams(spec);
  const auto parallel =
      BatchRunner(SolverRegistry::instance(), parallel_base).run_streams(spec);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].family, parallel[i].family);
    EXPECT_EQ(serial[i].stream, parallel[i].stream);
    EXPECT_EQ(serial[i].updates, parallel[i].updates);
    EXPECT_EQ(serial[i].changed_arcs, parallel[i].changed_arcs);
    EXPECT_EQ(serial[i].affected_sources, parallel[i].affected_sources);
    EXPECT_TRUE(serial[i].exact);
    EXPECT_TRUE(parallel[i].exact);
  }
}

}  // namespace
}  // namespace qclique
