// Workload generation: determinism, bounds, skew, locality, and the
// family-aware block sizing.
#include "serve/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"

namespace qclique {
namespace {

void expect_valid(const std::vector<PairQuery>& qs, std::uint32_t n) {
  for (const PairQuery& q : qs) {
    ASSERT_LT(q.u, n);
    ASSERT_LT(q.v, n);
    ASSERT_NE(q.u, q.v);
  }
}

TEST(ServeWorkload, DeterministicAndInBoundsForEveryMix) {
  for (const QueryMix mix :
       {QueryMix::kUniform, QueryMix::kZipf, QueryMix::kLocality}) {
    WorkloadOptions o;
    o.n = 23;
    o.count = 5000;
    o.mix = mix;
    Rng r1(42), r2(42), r3(43);
    const auto a = make_workload(o, r1);
    const auto b = make_workload(o, r2);
    const auto c = make_workload(o, r3);
    ASSERT_EQ(a.size(), o.count);
    expect_valid(a, o.n);
    EXPECT_EQ(a, b) << query_mix_name(mix) << ": same seed, same stream";
    EXPECT_NE(a, c) << query_mix_name(mix) << ": seeds must matter";
  }
}

TEST(ServeWorkload, ZipfConcentratesMassOnHotPairs) {
  WorkloadOptions o;
  o.n = 64;
  o.count = 20000;
  o.mix = QueryMix::kZipf;
  o.hot_pairs = 64;
  o.zipf_exponent = 1.2;
  Rng rng(7);
  const auto qs = make_workload(o, rng);

  std::map<std::uint64_t, std::uint64_t> freq;
  for (const PairQuery& q : qs) {
    ++freq[(static_cast<std::uint64_t>(q.u) << 32) | q.v];
  }
  // The support is capped and the top rank dominates: far fewer distinct
  // pairs than queries, and the hottest pair far above the uniform share.
  EXPECT_LE(freq.size(), static_cast<std::size_t>(o.hot_pairs));
  std::uint64_t top = 0;
  for (const auto& [pair, count] : freq) top = std::max(top, count);
  EXPECT_GT(top, o.count / o.hot_pairs * 5);
}

TEST(ServeWorkload, ZipfSupportClampedToPairSpace) {
  WorkloadOptions o;
  o.n = 4;  // only 12 ordered off-diagonal pairs
  o.count = 1000;
  o.mix = QueryMix::kZipf;
  o.hot_pairs = 10000;
  Rng rng(8);
  const auto qs = make_workload(o, rng);
  expect_valid(qs, o.n);
}

TEST(ServeWorkload, LocalityKeepsTargetsInBlock) {
  WorkloadOptions o;
  o.n = 64;
  o.count = 20000;
  o.mix = QueryMix::kLocality;
  o.locality = 0.9;
  o.block = 8;
  Rng rng(9);
  const auto qs = make_workload(o, rng);
  expect_valid(qs, o.n);
  std::size_t in_block = 0;
  for (const PairQuery& q : qs) {
    if (q.u / o.block == q.v / o.block) ++in_block;
  }
  const double frac = static_cast<double>(in_block) / qs.size();
  // 90% targeted locally plus ~1.6% of the global draws landing in-block.
  EXPECT_GT(frac, 0.85);
  EXPECT_LT(frac, 0.97);
}

TEST(ServeWorkload, FamilyAwareBlockSizes) {
  FamilyConfig cfg;
  cfg.n = 24;
  cfg.clusters = 4;
  cfg.layers = 6;
  EXPECT_EQ(workload_for_family("clustered", cfg, QueryMix::kLocality, 10).block,
            6u);
  EXPECT_EQ(
      workload_for_family("ring-of-cliques", cfg, QueryMix::kLocality, 10).block,
      6u);
  EXPECT_EQ(
      workload_for_family("layered-dag", cfg, QueryMix::kLocality, 10).block,
      4u);
  // 24 = 4 x 6: rows = largest divisor <= sqrt(24) = 4, one row = 6 cells.
  EXPECT_EQ(workload_for_family("grid", cfg, QueryMix::kLocality, 10).block, 6u);
  EXPECT_EQ(workload_for_family("torus", cfg, QueryMix::kLocality, 10).block, 6u);
  // No structural block: 0 = the sqrt(n) default inside make_workload.
  EXPECT_EQ(workload_for_family("gnp", cfg, QueryMix::kLocality, 10).block, 0u);

  const WorkloadOptions o =
      workload_for_family("clustered", cfg, QueryMix::kLocality, 10);
  EXPECT_EQ(o.n, cfg.n);
  EXPECT_EQ(o.count, 10u);
  EXPECT_EQ(o.mix, QueryMix::kLocality);
}

TEST(ServeWorkload, Validation) {
  WorkloadOptions o;
  o.n = 1;
  o.count = 1;
  Rng rng(1);
  EXPECT_THROW(make_workload(o, rng), SimulationError);

  o.n = 8;
  o.mix = QueryMix::kZipf;
  o.zipf_exponent = 0.0;
  EXPECT_THROW(make_workload(o, rng), SimulationError);
}

TEST(ServeWorkload, MixNames) {
  EXPECT_EQ(query_mix_name(QueryMix::kUniform), "uniform");
  EXPECT_EQ(query_mix_name(QueryMix::kZipf), "zipf");
  EXPECT_EQ(query_mix_name(QueryMix::kLocality), "locality");
}

}  // namespace
}  // namespace qclique
