// Tests for BatchRunner: parallel fan-out over the registry, per-job error
// isolation, and schedule-independent determinism.
#include "api/batch_runner.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace qclique {
namespace {

Digraph test_graph(std::uint32_t n, std::uint64_t seed) {
  Rng rng(seed);
  return random_digraph(n, 0.5, -4, 9, rng);
}

TEST(BatchRunner, RunAllFansOutAtLeastFourBackendsWithIdenticalDistances) {
  const Digraph g = test_graph(9, 21);
  const BatchRunner runner(SolverRegistry::instance(), ExecutionContext(3));
  const auto results = runner.run_all(g);
  ASSERT_GE(results.size(), 4u);

  std::size_t ok = 0;
  std::uint64_t summed_rounds = 0;
  const DistMatrix* reference = nullptr;
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok) << r.solver << ": " << r.error;
    ASSERT_TRUE(r.report.has_value());
    ++ok;
    summed_rounds += r.report->ledger.total_rounds();
    if (reference == nullptr) {
      reference = &r.report->distances;
    } else {
      EXPECT_EQ(r.report->distances, *reference) << r.solver;
    }
  }
  EXPECT_GE(ok, 4u);
  // The runner's aggregate ledger matches the per-job ledgers.
  EXPECT_EQ(runner.batch_ledger().total_rounds(), summed_rounds);
  EXPECT_GT(summed_rounds, 0u);  // distributed backends charged rounds
}

TEST(BatchRunner, SkipsNonNegativeOnlyBackendsOnNegativeGraphs) {
  const Digraph g = test_graph(8, 22);  // has negative arcs
  const BatchRunner runner;
  const auto results = runner.run_all(g);
  for (const auto& r : results) EXPECT_NE(r.solver, "dijkstra");

  Rng rng(23);
  const Digraph gp = random_digraph(8, 0.5, 0, 9, rng);  // non-negative
  const auto results_p = runner.run_all(gp);
  bool saw_dijkstra = false;
  for (const auto& r : results_p) saw_dijkstra = saw_dijkstra || r.solver == "dijkstra";
  EXPECT_TRUE(saw_dijkstra);
}

TEST(BatchRunner, ResultsInJobOrderRegardlessOfThreads) {
  const auto g = std::make_shared<const Digraph>(test_graph(8, 24));
  std::vector<BatchJob> jobs;
  const std::vector<std::string> names = {"semiring", "floyd-warshall",
                                          "dense-squaring", "johnson",
                                          "bellman-ford", "semiring"};
  for (const auto& name : names) {
    jobs.push_back(BatchJob{.graph = g, .solver = name, .kernel = "",
                            .topology = "", .family = "", .seed_salt = 0,
                            .label = "job-" + name});
  }

  ExecutionContext parallel_base(7);
  parallel_base.set_num_threads(4);
  ExecutionContext serial_base(7);
  serial_base.set_num_threads(1);

  const auto parallel = BatchRunner(SolverRegistry::instance(), parallel_base).run(jobs);
  const auto serial = BatchRunner(SolverRegistry::instance(), serial_base).run(jobs);
  ASSERT_EQ(parallel.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(parallel[i].job_index, i);
    EXPECT_EQ(parallel[i].solver, names[i]);
    EXPECT_EQ(parallel[i].label, "job-" + names[i]);
    ASSERT_TRUE(parallel[i].ok && serial[i].ok);
    EXPECT_EQ(parallel[i].report->distances, serial[i].report->distances);
    EXPECT_EQ(parallel[i].report->rounds, serial[i].report->rounds);
    EXPECT_EQ(parallel[i].report->metrics, serial[i].report->metrics);
  }
}

TEST(BatchRunner, FailingJobIsIsolated) {
  const auto g = std::make_shared<const Digraph>(test_graph(8, 25));
  std::vector<BatchJob> jobs;
  jobs.push_back(BatchJob{.graph = g, .solver = "semiring", .kernel = "",
                          .topology = "", .family = "", .seed_salt = 0,
                          .label = ""});
  jobs.push_back(BatchJob{.graph = g, .solver = "no-such-backend", .kernel = "",
                          .topology = "", .family = "", .seed_salt = 0,
                          .label = ""});
  jobs.push_back(BatchJob{.graph = g, .solver = "dijkstra",  // negative arcs
                          .kernel = "", .topology = "", .family = "",
                          .seed_salt = 0, .label = ""});
  jobs.push_back(BatchJob{.graph = g, .solver = "floyd-warshall", .kernel = "",
                          .topology = "", .family = "", .seed_salt = 0,
                          .label = ""});

  const auto results = BatchRunner().run(jobs);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_FALSE(results[1].ok);
  EXPECT_NE(results[1].error.find("no-such-backend"), std::string::npos);
  EXPECT_FALSE(results[2].ok);
  EXPECT_NE(results[2].error.find("non-negative"), std::string::npos);
  EXPECT_TRUE(results[3].ok);
  EXPECT_EQ(results[0].report->distances, results[3].report->distances);
}

TEST(BatchRunner, EmptyBatchIsEmpty) {
  EXPECT_TRUE(BatchRunner().run({}).empty());
}

// The kernel axis: run_kernels sweeps one backend over every registered
// min-plus kernel; by the kernel contract the distances are identical and
// each report is stamped with the kernel it ran on.
TEST(BatchRunner, RunKernelsSweepsEveryRegisteredKernel) {
  const Digraph g = test_graph(9, 26);
  const BatchRunner runner(SolverRegistry::instance(), ExecutionContext(5));
  const auto results = runner.run_kernels(g, "dense-squaring");
  const auto names = KernelRegistry::instance().names();
  ASSERT_EQ(results.size(), names.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok) << results[i].error;
    EXPECT_EQ(results[i].label, names[i]);
    EXPECT_EQ(results[i].report->kernel, names[i]);
    EXPECT_EQ(results[i].report->distances, results[0].report->distances)
        << names[i];
  }
}

TEST(BatchRunner, JobKernelOverridesTheBaseContext) {
  const auto g = std::make_shared<const Digraph>(test_graph(8, 27));
  ExecutionContext base(6);
  base.set_kernel("naive");
  std::vector<BatchJob> jobs;
  jobs.push_back(BatchJob{.graph = g, .solver = "semiring", .kernel = "",
                          .topology = "", .family = "", .seed_salt = 0,
                          .label = "inherit"});
  jobs.push_back(BatchJob{.graph = g, .solver = "semiring", .kernel = "parallel",
                          .topology = "", .family = "", .seed_salt = 0,
                          .label = "override"});
  jobs.push_back(BatchJob{.graph = g, .solver = "semiring", .kernel = "no-such-kernel",
                          .topology = "", .family = "", .seed_salt = 0,
                          .label = "bad"});
  const auto results = BatchRunner(SolverRegistry::instance(), base).run(jobs);
  ASSERT_TRUE(results[0].ok && results[1].ok);
  EXPECT_EQ(results[0].report->kernel, "naive");
  EXPECT_EQ(results[1].report->kernel, "parallel");
  EXPECT_EQ(results[0].report->distances, results[1].report->distances);
  EXPECT_FALSE(results[2].ok);  // unknown kernels fail the job, not the batch
  EXPECT_NE(results[2].error.find("no-such-kernel"), std::string::npos);
}

// The topology override: jobs may pin a transport per job, mirroring the
// kernel override one axis over.
TEST(BatchRunner, JobTopologyOverridesTheBaseContext) {
  const auto g = std::make_shared<const Digraph>(test_graph(8, 28));
  std::vector<BatchJob> jobs;
  jobs.push_back(BatchJob{.graph = g, .solver = "semiring", .kernel = "",
                          .topology = "", .family = "", .seed_salt = 0,
                          .label = "inherit"});
  jobs.push_back(BatchJob{.graph = g, .solver = "semiring", .kernel = "",
                          .topology = "bounded-degree", .family = "",
                          .seed_salt = 0, .label = "override"});
  jobs.push_back(BatchJob{.graph = g, .solver = "semiring", .kernel = "",
                          .topology = "no-such-topology", .family = "",
                          .seed_salt = 0, .label = "bad"});
  const auto results = BatchRunner().run(jobs);
  ASSERT_TRUE(results[0].ok && results[1].ok);
  EXPECT_EQ(results[0].report->topology, "clique");
  EXPECT_EQ(results[1].report->topology, "bounded-degree");
  EXPECT_EQ(results[0].report->distances, results[1].report->distances);
  // The overlay relays messages, so the same protocol costs more rounds.
  EXPECT_GT(results[1].report->rounds, results[0].report->rounds);
  EXPECT_FALSE(results[2].ok);
  EXPECT_NE(results[2].error.find("no-such-topology"), std::string::npos);
}

// The scenario matrix: families x solvers x topologies x kernels, with
// per-scenario agreement and family stamps on every report.
TEST(BatchRunner, RunScenariosCoversTheGridWithFamilyStamps) {
  ScenarioSpec spec;
  spec.families = {"gnp", "grid"};
  spec.solvers = {"semiring", "floyd-warshall"};
  spec.topologies = {"clique", "bounded-degree"};
  spec.kernels = {"naive", "blocked"};
  spec.config.n = 10;
  const BatchRunner runner(SolverRegistry::instance(), ExecutionContext(9));
  const auto results = runner.run_scenarios(spec);

  // Per family: semiring (distributed) runs on 2 topologies x 2 kernels,
  // floyd-warshall (centralized) on the first topology x 2 kernels.
  ASSERT_EQ(results.size(), 2u * (4u + 2u));
  const DistMatrix* reference = nullptr;
  std::string current_family;
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok) << r.label << ": " << r.error;
    EXPECT_FALSE(r.family.empty());
    EXPECT_EQ(r.report->family, r.family);
    EXPECT_EQ(r.label.find(r.family + "/" + r.solver), 0u) << r.label;
    if (r.family != current_family) {
      current_family = r.family;
      reference = &r.report->distances;
    }
    EXPECT_EQ(r.report->distances, *reference) << r.label;
  }
}

TEST(BatchRunner, RunScenariosDefaultsSweepEveryRegisteredFamily) {
  ScenarioSpec spec;
  spec.solvers = {"floyd-warshall"};
  spec.topologies = {"clique"};
  spec.kernels = {"blocked"};
  spec.config.n = 12;
  const BatchRunner runner;
  const auto results = runner.run_scenarios(spec);
  const auto families = GraphFamilyRegistry::instance().names();
  ASSERT_EQ(results.size(), families.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok) << results[i].label << ": " << results[i].error;
    EXPECT_EQ(results[i].family, families[i]);
    EXPECT_EQ(results[i].report->n, 12u);
  }
}

TEST(BatchRunner, RunScenariosIsDeterministic) {
  ScenarioSpec spec;
  spec.families = {"clustered", "lambda-skew"};
  spec.solvers = {"semiring"};
  spec.topologies = {"clique"};
  spec.kernels = {"blocked"};
  spec.config.n = 9;
  const BatchRunner a(SolverRegistry::instance(), ExecutionContext(4));
  const BatchRunner b(SolverRegistry::instance(), ExecutionContext(4));
  const auto ra = a.run_scenarios(spec);
  const auto rb = b.run_scenarios(spec);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    ASSERT_TRUE(ra[i].ok && rb[i].ok);
    EXPECT_EQ(ra[i].report->distances, rb[i].report->distances);
    EXPECT_EQ(ra[i].report->rounds, rb[i].report->rounds);
  }
}

TEST(BatchRunner, ScenariosToJsonInlinesReportsAndErrors) {
  const auto g = std::make_shared<const Digraph>(test_graph(8, 29));
  std::vector<BatchJob> jobs;
  jobs.push_back(BatchJob{.graph = g, .solver = "floyd-warshall", .kernel = "",
                          .topology = "", .family = "gnp", .seed_salt = 0,
                          .label = "gnp/floyd-warshall"});
  jobs.push_back(BatchJob{.graph = g, .solver = "no-such-backend", .kernel = "",
                          .topology = "", .family = "gnp", .seed_salt = 0,
                          .label = "gnp/no-such-backend"});
  const auto results = BatchRunner().run(jobs);
  const std::string json = scenarios_to_json(results);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"family\":\"gnp\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(json.find("\"report\":{\"solver\":\"floyd-warshall\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(json.find("\"error\":"), std::string::npos);
}

}  // namespace
}  // namespace qclique
