#include "stream/update.hpp"

#include <sstream>
#include <unordered_map>

#include "common/error.hpp"
#include "common/math.hpp"
#include "congest/round_ledger.hpp"

namespace qclique {

std::string update_kind_name(UpdateKind kind) {
  switch (kind) {
    case UpdateKind::kInsert:
      return "insert";
    case UpdateKind::kDelete:
      return "delete";
    case UpdateKind::kReweight:
      return "reweight";
  }
  return "unknown";
}

void validate_update(const EdgeUpdate& update, std::uint32_t n) {
  QCLIQUE_CHECK(update.u < n && update.v < n,
                "update endpoint out of range for graph of size " +
                    std::to_string(n));
  QCLIQUE_CHECK(update.u != update.v, "update targets a self-loop");
  if (update.kind != UpdateKind::kDelete) {
    QCLIQUE_CHECK(!is_plus_inf(update.w) && update.w < kPlusInf &&
                      update.w > -kPlusInf,
                  "insert/reweight weight must be finite");
  }
}

bool apply_update(Digraph& g, const EdgeUpdate& update) {
  validate_update(update, g.size());
  if (update.kind == UpdateKind::kDelete) {
    if (!g.has_arc(update.u, update.v)) return false;
    g.remove_arc(update.u, update.v);
    return true;
  }
  if (g.has_arc(update.u, update.v) &&
      g.weight(update.u, update.v) == update.w) {
    return false;
  }
  g.set_arc(update.u, update.v, update.w);
  return true;
}

std::size_t apply_batch(Digraph& g, const UpdateBatch& batch) {
  std::size_t changed = 0;
  for (const EdgeUpdate& update : batch.updates) {
    if (apply_update(g, update)) ++changed;
  }
  return changed;
}

std::vector<ArcChange> canonical_changes(const Digraph& g,
                                         const UpdateBatch& batch) {
  const std::uint32_t n = g.size();
  // Arc -> index into `changes`, keyed by the flattened (u, v) pair.
  std::unordered_map<std::uint64_t, std::size_t> slot;
  std::vector<ArcChange> changes;
  slot.reserve(batch.updates.size());
  changes.reserve(batch.updates.size());
  for (const EdgeUpdate& update : batch.updates) {
    validate_update(update, n);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(update.u) << 32) | update.v;
    const std::int64_t after =
        update.kind == UpdateKind::kDelete ? kPlusInf : update.w;
    auto [it, inserted] = slot.try_emplace(key, changes.size());
    if (inserted) {
      changes.push_back(
          {update.u, update.v, g.weight(update.u, update.v), after});
    } else {
      changes[it->second].after = after;
    }
  }
  std::size_t kept = 0;
  for (const ArcChange& change : changes) {
    if (change.before != change.after) changes[kept++] = change;
  }
  changes.resize(kept);
  return changes;
}

std::string UpdateBatch::to_json() const {
  std::ostringstream out;
  out << "{\"seq\":" << seq << ",\"stream\":" << json_quote(stream)
      << ",\"updates\":[";
  for (std::size_t i = 0; i < updates.size(); ++i) {
    const EdgeUpdate& u = updates[i];
    if (i > 0) out << ',';
    out << "{\"kind\":" << json_quote(update_kind_name(u.kind))
        << ",\"u\":" << u.u << ",\"v\":" << u.v;
    if (u.kind != UpdateKind::kDelete) out << ",\"w\":" << u.w;
    out << '}';
  }
  out << "]}";
  return out.str();
}

}  // namespace qclique
