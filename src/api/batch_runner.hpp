// Many (graph, solver) jobs, one facade.
//
// BatchRunner is the harness layer on top of the SolverRegistry: hand it a
// list of jobs and it executes them — across worker threads when asked —
// returning one BatchResult per job in input order. Determinism is
// schedule-independent: each job runs under a context forked from the base
// context by job index, so thread count and completion order never change
// any report. Solvers are stateless and every job owns its context, which
// is what makes the fan-out safe.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "graph/families.hpp"

namespace qclique {

/// One unit of work: solve APSP on `graph` with backend `solver`. The
/// graph is shared, not copied — many jobs (e.g. one per backend) can
/// reference one instance; solvers only read it.
struct BatchJob {
  std::shared_ptr<const Digraph> graph;
  std::string solver;
  /// Min-plus kernel for this job (KernelRegistry key); empty = inherit the
  /// base context's kernel. This is how harnesses sweep kernels the same
  /// way they sweep backends.
  std::string kernel;
  /// Transport topology for this job (TopologyRegistry key); empty =
  /// inherit the base context's topology. The fourth per-job scenario
  /// override next to solver and kernel.
  std::string topology;
  /// Graph family the job's input was drawn from (GraphFamilyRegistry
  /// key); purely descriptive -- the graph is already generated -- but
  /// echoed into the result and stamped onto the report so scenario grids
  /// stay self-describing. Empty = ad-hoc input.
  std::string family;
  /// Extra salt mixed into the forked context seed (jobs that should see
  /// different randomness with everything else equal).
  std::uint64_t seed_salt = 0;
  /// Free-form tag echoed into the result (scenario name, sweep point).
  std::string label;
};

/// Outcome of one job. `report` is set iff `ok`; otherwise `error` holds
/// the exception message (a failing job never aborts the batch).
struct BatchResult {
  std::size_t job_index = 0;
  std::string solver;
  std::string family;  // the job's graph family ("" = ad-hoc input)
  std::string label;
  bool ok = false;
  std::string error;
  std::optional<ApspReport> report;
};

/// Declarative scenario sweep: the cross product of graph families x
/// solver backends x transport topologies x min-plus kernels, the
/// four registry axes in one spec. Empty axis lists mean "every
/// registered name" (solvers additionally skip backends whose
/// capabilities reject a family's weights, like run_all).
struct ScenarioSpec {
  std::vector<std::string> families;    // GraphFamilyRegistry keys
  std::vector<std::string> solvers;     // SolverRegistry keys
  std::vector<std::string> topologies;  // TopologyRegistry keys
  std::vector<std::string> kernels;     // KernelRegistry keys
  /// Generation knobs shared by every family in the sweep.
  FamilyConfig config;
  /// Family graphs are drawn from (graph_seed, family name), so adding or
  /// reordering families never changes another family's graph.
  std::uint64_t graph_seed = 1;
};

class BatchRunner {
 public:
  /// Runs against `registry`, deriving each job's ExecutionContext from
  /// `base` (fork by job index + seed_salt). The registry and base context
  /// must outlive the runner.
  explicit BatchRunner(const SolverRegistry& registry = SolverRegistry::instance(),
                       ExecutionContext base = ExecutionContext())
      : registry_(registry), base_(base) {}

  /// Executes all jobs on `base.num_threads()` workers (0 = one per
  /// hardware thread; the worker count is also capped by the job count).
  /// Results are in job order regardless of scheduling. When more than one
  /// worker runs, each job's min-plus kernel is forced to a single thread
  /// -- the batch already saturates the machine, and kernel results are
  /// thread-count independent by the kernel contract.
  std::vector<BatchResult> run(const std::vector<BatchJob>& jobs) const;

  /// Convenience: one graph, many backends. Builds one job per name in
  /// `solvers` (all registered backends when empty, skipping those whose
  /// capabilities reject g's weights) and runs them. The graph is copied
  /// once and shared by every job.
  std::vector<BatchResult> run_all(const Digraph& g,
                                   std::vector<std::string> solvers = {}) const;

  /// Convenience: one graph, one backend, many kernels. Builds one job per
  /// name in `kernels` (all registered kernels when empty) and runs them;
  /// job labels are the kernel names. By the kernel contract every result's
  /// distance matrix is identical -- only wall time varies. Jobs run on a
  /// single batch worker so each kernel (including "parallel" with its full
  /// thread pool) gets the machine to itself and the wall times compare.
  std::vector<BatchResult> run_kernels(const Digraph& g, const std::string& solver,
                                       std::vector<std::string> kernels = {}) const;

  /// The full scenario matrix: generates one graph per family in
  /// `spec` (keyed by spec.graph_seed and the family name), then runs
  /// every (family, solver, topology, kernel) combination as one job.
  /// Centralized backends (capabilities().distributed == false) run on the
  /// first topology only -- the communication model cannot affect them, so
  /// the extra rows would only duplicate results. Each result carries its
  /// family, and each successful report is stamped with it
  /// (ApspReport::family, exported by to_json). Per scenario, every
  /// backend must produce identical distances -- graph structure, like the
  /// topology and the kernel, changes what runs cost, never what they
  /// compute.
  std::vector<BatchResult> run_scenarios(const ScenarioSpec& spec) const;

  const ExecutionContext& base_context() const { return base_; }

  /// Aggregate ledger over every successful job this runner has executed.
  /// (Jobs run on forked contexts, so `base_context().ledger()` stays
  /// empty; per-job costs are absorbed here after each `run`.)
  const RoundLedger& batch_ledger() const { return batch_ledger_; }

 private:
  /// `run` with an explicit worker count (run_kernels pins it to 1).
  std::vector<BatchResult> run_with_workers(const std::vector<BatchJob>& jobs,
                                            unsigned workers) const;

  const SolverRegistry& registry_;
  ExecutionContext base_;
  mutable RoundLedger batch_ledger_;
};

/// One JSON array over a batch: successful jobs inline the full
/// ApspReport::to_json (family stamp included) under "report"; failed jobs
/// carry their scenario coordinates and the error message. The export
/// format of bench_scenario_matrix and the CI scenario artifact.
std::string scenarios_to_json(const std::vector<BatchResult>& results);

class SnapshotStore;
class ApspSnapshot;

/// Publishes every successful result's report into `store` as a versioned
/// ApspSnapshot, in job order (so the store's final current snapshot is the
/// last successful job's). Labels carry over into the snapshot metadata.
/// Returns one pin per result, nullptr for failed jobs. Reports publish
/// distance-only snapshots -- results do not carry their input graphs, so
/// witness paths are the province of ApspSolver::serve.
std::vector<std::shared_ptr<const ApspSnapshot>> publish_scenarios(
    const std::vector<BatchResult>& results, SnapshotStore& store);

}  // namespace qclique
