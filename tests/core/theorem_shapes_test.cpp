// Shape regression guards: cheap statistical assertions that pin the
// scaling behavior the benches report, so a refactor that silently breaks
// the round accounting (e.g. re-introducing sum-over-groups accounting, or
// losing the lockstep sharing of joint evaluations) fails CI rather than
// only skewing EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/compute_pairs.hpp"
#include "graph/generators.hpp"

namespace qclique {
namespace {

std::vector<VertexPair> all_pairs(std::uint32_t n) {
  std::vector<VertexPair> s;
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) s.emplace_back(u, v);
  }
  return s;
}

ComputePairsResult run(std::uint32_t n, bool quantum, double lambda_override) {
  Rng rng(40000 + n + (quantum ? 1 : 0));
  const auto g = random_weighted_graph(n, 0.4, -6, 10, rng);
  ComputePairsOptions opt;
  opt.use_quantum = quantum;
  if (lambda_override > 0) opt.constants.lambda_sample = lambda_override;
  Rng child = rng.split();
  return compute_pairs(g, all_pairs(n), opt, child);
}

TEST(TheoremShapes, QuantumOracleCallsGrowSlowerThanClassicalEvals) {
  // Theorem 2's core: ~n^{1/4} quantum calls vs ~n^{1/2} classical domain
  // evaluations. Guard the fitted-exponent ordering over a fast sweep.
  std::vector<double> ns, qc, cc;
  for (const std::uint32_t n : {36u, 81u, 144u, 225u}) {
    const auto q = run(n, true, 6.0 / paper_log(n));
    const auto c = run(n, false, 6.0 / paper_log(n));
    ns.push_back(n);
    qc.push_back(static_cast<double>(
        std::max<std::uint64_t>(1, q.ledger.total_oracle_calls())));
    cc.push_back(static_cast<double>(
        std::max<std::uint64_t>(1, c.ledger.total_oracle_calls())));
  }
  const auto qfit = fit_power_law(ns, qc);
  const auto cfit = fit_power_law(ns, cc);
  EXPECT_LT(qfit.slope, cfit.slope) << "quantum must scale strictly slower";
  EXPECT_LT(qfit.slope, 0.85);
  EXPECT_GT(cfit.slope, 0.4);
}

TEST(TheoremShapes, SearchRoundsChargeMaxNotSumOverGroups) {
  // With B^2 > 1 block-pair groups running in parallel, per-alpha search
  // rounds must be far below the sum of per-group costs. Proxy: total
  // search rounds / oracle calls gives the per-call round factor, which
  // must stay within a small multiple of one evaluation's cost (it would
  // be ~B^2 x larger under sum-accounting).
  const auto q = run(100, true, 0);
  ASSERT_FALSE(q.aborted);
  std::uint64_t search = 0;
  for (const auto& [name, st] : q.ledger.phases()) {
    if (name.starts_with("search/")) search += st.rounds;
  }
  const std::uint64_t calls = q.ledger.total_oracle_calls();
  ASSERT_GT(calls, 0u);
  const double per_call = static_cast<double>(search) / static_cast<double>(calls);
  // One evaluation at n=100 in the saturated regime costs ~2-40 rounds;
  // sum-accounting across ~16 groups would push this past 300.
  EXPECT_LT(per_call, 200.0);
}

TEST(TheoremShapes, SetupPhasesStayPolylog) {
  // step1/step2/identify are O~(1)-to-polylog phases; they must not grow
  // like the search phases.
  std::vector<double> ns, setup;
  for (const std::uint32_t n : {49u, 100u, 196u, 324u}) {
    const auto q = run(n, false, 0);
    std::uint64_t s = q.ledger.phase_rounds("step1/load") +
                      q.ledger.phase_rounds("step2/load") +
                      q.ledger.phase_rounds("identify/broadcast");
    ns.push_back(n);
    setup.push_back(static_cast<double>(std::max<std::uint64_t>(1, s)));
  }
  const auto fit = fit_power_law(ns, setup);
  // Saturated-sampling regime inflates this toward ~sqrt(n); anything near
  // linear signals a lost parallelism bug.
  EXPECT_LT(fit.slope, 0.95);
}

TEST(TheoremShapes, ClassicalEvalsTrackDomainSize) {
  // The classical scan evaluates each W-block once per alpha: calls per
  // run are bounded by (#alpha values) * sqrt(n)-ish.
  for (const std::uint32_t n : {64u, 144u}) {
    const auto c = run(n, false, 0);
    ASSERT_FALSE(c.aborted);
    const std::uint64_t wb = isqrt_ceil(n);
    EXPECT_LE(c.ledger.total_oracle_calls(), (c.max_alpha + 1) * wb + wb);
  }
}

}  // namespace
}  // namespace qclique
