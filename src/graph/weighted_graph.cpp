#include "graph/weighted_graph.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qclique {

WeightedGraph::WeightedGraph(std::uint32_t n)
    : n_(n), w_(static_cast<std::size_t>(n) * n, kPlusInf) {
  QCLIQUE_CHECK(n >= 1, "WeightedGraph needs at least one vertex");
}

bool WeightedGraph::has_edge(std::uint32_t u, std::uint32_t v) const {
  QCLIQUE_CHECK(u < n_ && v < n_, "vertex out of range");
  if (u == v) return false;
  return !is_plus_inf(w_[idx(u, v)]);
}

std::int64_t WeightedGraph::weight(std::uint32_t u, std::uint32_t v) const {
  QCLIQUE_CHECK(u < n_ && v < n_, "vertex out of range");
  if (u == v) return kPlusInf;
  return w_[idx(u, v)];
}

const std::int64_t* WeightedGraph::row_ptr(std::uint32_t u) const {
  QCLIQUE_CHECK(u < n_, "vertex out of range");
  // The diagonal entry is kPlusInf by construction (no self-loops), so the
  // raw row agrees with weight(u, .) entry for entry.
  return w_.data() + idx(u, 0);
}

void WeightedGraph::set_edge(std::uint32_t u, std::uint32_t v, std::int64_t w) {
  QCLIQUE_CHECK(u < n_ && v < n_, "vertex out of range");
  QCLIQUE_CHECK(u != v, "no self-loops");
  QCLIQUE_CHECK(!is_plus_inf(w), "use remove_edge to delete an edge");
  if (is_plus_inf(w_[idx(u, v)])) ++num_edges_;
  w_[idx(u, v)] = w;
  w_[idx(v, u)] = w;
}

void WeightedGraph::remove_edge(std::uint32_t u, std::uint32_t v) {
  QCLIQUE_CHECK(u < n_ && v < n_, "vertex out of range");
  if (u == v) return;
  if (!is_plus_inf(w_[idx(u, v)])) --num_edges_;
  w_[idx(u, v)] = kPlusInf;
  w_[idx(v, u)] = kPlusInf;
}

std::vector<std::pair<VertexPair, std::int64_t>> WeightedGraph::edges() const {
  std::vector<std::pair<VertexPair, std::int64_t>> out;
  out.reserve(num_edges_);
  for (std::uint32_t u = 0; u < n_; ++u) {
    for (std::uint32_t v = u + 1; v < n_; ++v) {
      if (!is_plus_inf(w_[idx(u, v)])) {
        out.emplace_back(VertexPair{u, v}, w_[idx(u, v)]);
      }
    }
  }
  return out;
}

std::vector<std::uint32_t> WeightedGraph::neighbors(std::uint32_t u) const {
  QCLIQUE_CHECK(u < n_, "vertex out of range");
  std::vector<std::uint32_t> out;
  for (std::uint32_t v = 0; v < n_; ++v) {
    if (v != u && !is_plus_inf(w_[idx(u, v)])) out.push_back(v);
  }
  return out;
}

std::vector<std::vector<std::uint32_t>> WeightedGraph::adjacency_lists() const {
  std::vector<std::vector<std::uint32_t>> adj(n_);
  for (std::uint32_t u = 0; u < n_; ++u) adj[u] = neighbors(u);
  return adj;
}

WeightedGraph WeightedGraph::sample_edges(double p, Rng& rng) const {
  WeightedGraph g(n_);
  for (std::uint32_t u = 0; u < n_; ++u) {
    for (std::uint32_t v = u + 1; v < n_; ++v) {
      if (!is_plus_inf(w_[idx(u, v)]) && rng.bernoulli(p)) {
        g.set_edge(u, v, w_[idx(u, v)]);
      }
    }
  }
  return g;
}

}  // namespace qclique
