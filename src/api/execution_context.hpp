// Execution environment shared by every solver backend.
//
// An ExecutionContext bundles everything a solver run needs besides the
// input graph: the deterministic RNG stream, the transport options that
// select and configure the simulated communication topology, the ledger
// that accumulates round costs across runs, and the parallelism knobs
// harnesses use when fanning out jobs. One context = one reproducible
// stream of work: constructing two contexts from the same seed and
// replaying the same calls yields bit-identical results, which is what
// makes cross-backend comparisons and CI regression checks meaningful.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "congest/round_ledger.hpp"
#include "congest/transport.hpp"
#include "matrix/kernels.hpp"

namespace qclique {

class KernelAutotuner;
class PageStore;
class SnapshotStore;
class TaskPool;

/// Default seed used when callers do not care about the stream identity.
inline constexpr std::uint64_t kDefaultExecutionSeed = 0x51c1197eULL;

/// Owns the per-run mutable state (Rng, RoundLedger) plus the static knobs
/// (TransportOptions, thread count) that solvers and harnesses read.
class ExecutionContext {
 public:
  /// Out of line: the constructor builds the context's SnapshotStore, which
  /// the serve layer defines on top of this header (serve/snapshot_store.hpp
  /// includes api/solver.hpp includes this file).
  explicit ExecutionContext(std::uint64_t seed = kDefaultExecutionSeed);

  /// The seed this context (or fork) was created from.
  std::uint64_t seed() const { return seed_; }

  /// The context's RNG stream. Solvers draw all randomness from here (or
  /// from `rng().split()` children), never from global state.
  Rng& rng() { return rng_; }

  /// Transport scenario applied to every network a solver builds under
  /// this context: the topology (TopologyRegistry key), the NetworkConfig
  /// (per-message field budget, strict-payload policy), and the
  /// per-topology parameters (degree cap, explicit link set, traffic
  /// instrumentation).
  TransportOptions& transport() { return transport_; }
  const TransportOptions& transport() const { return transport_; }

  /// The transport's topology name ("clique" by default).
  const std::string& topology() const { return transport_.topology; }
  void set_topology(std::string name) { transport_.topology = std::move(name); }

  /// The NetworkConfig inside the transport options (kept as a named
  /// accessor because most callers only tune the bandwidth model).
  NetworkConfig& network_config() { return transport_.config; }
  const NetworkConfig& network_config() const { return transport_.config; }

  /// Builds an n-node network for this context's transport options through
  /// the TopologyRegistry.
  std::unique_ptr<Network> make_network(std::uint32_t n) const {
    return qclique::make_network(n, transport_);
  }

  /// Min-plus kernel applied to every dense distance product a solver (or
  /// a protocol's local computation) runs under this context: the
  /// KernelRegistry key plus its tuning config. The kernel is the third
  /// scenario axis next to the backend and the topology; by the kernel
  /// contract it changes what runs cost in wall time, never what they
  /// compute.
  KernelOptions& kernel_options() { return kernel_; }
  const KernelOptions& kernel_options() const { return kernel_; }

  /// The kernel's registry name ("blocked" by default).
  const std::string& kernel() const { return kernel_.name; }
  void set_kernel(std::string name) { kernel_.name = std::move(name); }

  /// Graph family the context's inputs are drawn from (GraphFamilyRegistry
  /// key; "" = ad-hoc input). Purely descriptive, like the topology stamp:
  /// ApspSolver::solve copies it into every report so family metadata
  /// round-trips for every backend -- centralized oracles included -- not
  /// just for jobs that pass through BatchRunner.
  const std::string& family() const { return family_; }
  void set_family(std::string name) { family_ = std::move(name); }

  /// The context's serving surface: solvers publish snapshots here
  /// (ApspSolver::serve) and QueryServers read from it. Forked contexts
  /// share the parent's store -- the store is internally synchronized, so
  /// batch jobs on worker threads publish into one place and a single
  /// serving fleet sees every scenario.
  SnapshotStore& serve() { return *store_; }
  const SnapshotStore& serve() const { return *store_; }

  /// Resolves the selected kernel through the KernelRegistry (throws
  /// SimulationError naming the known kernels on a miss).
  const MinPlusKernel& min_plus_kernel() const { return kernel_.resolve(); }

  /// The context's kernel autotuner: the winner cache the "auto" kernel
  /// consults for products run under this context (kernel_options().config
  /// points at it). Shared across fork() like the snapshot store -- the
  /// tuner is internally synchronized, so a batch sweep tunes each product
  /// shape once for all workers.
  KernelAutotuner& autotuner() { return *autotuner_; }
  const KernelAutotuner& autotuner() const { return *autotuner_; }

  /// The context's worker pool (common/task_pool.hpp): the persistent
  /// threads every parallel surface under this context runs on — kernel
  /// row bands (kernel_options().config points at it), ThreadExecutor
  /// batch fan-out, and the incremental dynamic solver's parallel repair.
  /// Shared across fork() like the autotuner: one set of parked workers
  /// serves the whole batch instead of every job spawning its own.
  /// Sized by QCLIQUE_THREADS / hardware_concurrency at construction;
  /// num_threads() caps how much of it any one region may use. Const for
  /// the same reason page_store() is: internally synchronized
  /// infrastructure, usable by const context holders.
  TaskPool& task_pool() const { return *task_pool_; }

  /// Replaces the context's pool (tests pinning pool sizes; embedders
  /// sharing one pool across unrelated contexts). Forks made afterwards
  /// share the new pool. Results never depend on the pool installed.
  void set_task_pool(std::shared_ptr<TaskPool> pool);

  /// The context's out-of-core page cache (exec/page_store.hpp): batch
  /// harnesses adopt finished distance matrices here so a scenario sweep's
  /// resident set stays under the in-core byte budget (seeded from
  /// QCLIQUE_MEMORY_BUDGET at construction; 0 = unbounded, nothing pages).
  /// Shared across fork() like the snapshot store and the autotuner — the
  /// store is internally synchronized, so all batch workers page through
  /// one budget.
  /// Const like serve()'s store is shared: the page store is internally
  /// synchronized batch infrastructure, so even const context holders
  /// (harnesses fanning out jobs) may adopt matrices and retune budgets.
  PageStore& page_store() const { return *page_store_; }

  /// Whether batch harnesses should fan jobs out across worker *processes*
  /// (exec ProcessExecutor) instead of threads. Results are identical by
  /// the executor contract; processes add isolation (a crashing job cannot
  /// take the harness down) at fork + serialization cost.
  bool process_workers() const { return process_workers_; }
  void set_process_workers(bool v) { process_workers_ = v; }

  /// Wall-clock profiler shared with every network this context builds
  /// (TransportOptions carries it into make_network): routing primitives
  /// record per-phase spans keyed by ledger phase, and ApspSolver::solve
  /// attributes each run's delta to its ApspReport. Accumulates across
  /// runs like the ledger; not thread-safe — forks get their own.
  PhaseProfiler& profiler() { return *profiler_; }
  const PhaseProfiler& profiler() const { return *profiler_; }

  /// Ledger accumulating the cost of every solve run executed directly on
  /// this context. Individual runs also report their own per-run ledger in
  /// ApspReport; batch jobs run on forked contexts, so their aggregate is
  /// BatchRunner::batch_ledger(), not this.
  RoundLedger& ledger() { return ledger_; }
  const RoundLedger& ledger() const { return ledger_; }

  /// Worker threads a batch harness may use. 0 = one per hardware thread.
  unsigned num_threads() const { return num_threads_; }
  void set_num_threads(unsigned n) { num_threads_ = n; }

  /// Whether solvers must verify the no-negative-cycle precondition and
  /// throw SimulationError when it is violated.
  bool check_negative_cycles() const { return check_negative_cycles_; }
  void set_check_negative_cycles(bool v) { check_negative_cycles_ = v; }

  /// Derives an independent context: same configuration, RNG stream keyed
  /// by (seed, salt) only. Forking by job index gives batch runners
  /// schedule-independent determinism — the child stream does not depend
  /// on how much randomness the parent has consumed.
  ExecutionContext fork(std::uint64_t salt) const {
    std::uint64_t s = seed_ ^ (0x9e3779b97f4a7c15ULL + salt);
    ExecutionContext child(splitmix64(s));
    child.transport_ = transport_;
    // The profiler is per-context state like the Rng, not configuration:
    // forked jobs may run on worker threads, so each child records into
    // its own instance.
    child.transport_.profiler = child.profiler_;
    child.kernel_ = kernel_;
    child.family_ = family_;
    // The autotuner is shared like the store: internally synchronized, and
    // sharing is what makes a batch sweep tune each shape exactly once.
    child.autotuner_ = autotuner_;
    child.kernel_.config.autotuner = child.autotuner_.get();
    // The snapshot store is shared, not forked: it is the one piece of
    // context state that is internally synchronized, and sharing it is
    // what lets a batch publish per-scenario snapshots into one surface.
    child.store_ = store_;
    // The page store is shared for the same reason: one in-core budget
    // must bound the whole batch, not each job separately.
    child.page_store_ = page_store_;
    // One pool of parked workers serves every job of a batch; the pool's
    // chunk assignment is deterministic, so sharing cannot leak schedule
    // into results.
    child.task_pool_ = task_pool_;
    child.kernel_.config.task_pool = child.task_pool_.get();
    child.num_threads_ = num_threads_;
    child.process_workers_ = process_workers_;
    child.check_negative_cycles_ = check_negative_cycles_;
    return child;
  }

 private:
  std::uint64_t seed_;
  Rng rng_;
  TransportOptions transport_;
  KernelOptions kernel_;
  std::string family_;
  RoundLedger ledger_;
  std::shared_ptr<PhaseProfiler> profiler_;
  std::shared_ptr<KernelAutotuner> autotuner_;
  std::shared_ptr<SnapshotStore> store_;
  std::shared_ptr<PageStore> page_store_;
  std::shared_ptr<TaskPool> task_pool_;
  unsigned num_threads_ = 0;
  bool process_workers_ = false;
  bool check_negative_cycles_ = true;
};

}  // namespace qclique
