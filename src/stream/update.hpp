// Edge-update streams: the mutation language of the dynamic-graph
// subsystem.
//
// Every workload so far was static -- a graph is generated once and solved
// once. The stream subsystem makes "the graph changed" a first-class event:
// an EdgeUpdate inserts, deletes, or reweights one arc, an UpdateBatch
// groups the updates that land together (the unit dynamic solvers repair
// after and StreamSession publishes behind), and generators
// (stream/generators.hpp) draw deterministic update sequences over any
// registered graph family. The batch, not the single update, is the
// granularity of the whole subsystem -- exactly the shape of stinger-style
// streaming graph maintenance, where updates are buffered and incremental
// algorithms amortize their repair work over the buffer.
//
// Apply semantics (apply_batch): updates apply in order; insert and
// reweight both upsert the arc (so replaying a stream is idempotent in
// structure), delete removes it (a no-op when absent). Dynamic solvers
// never look at individual updates: they classify against the *net*
// per-arc weight transitions of a batch (canonical_changes), so an arc
// inserted and deleted inside one batch costs nothing to repair.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace qclique {

enum class UpdateKind : std::uint8_t { kInsert, kDelete, kReweight };

/// Registry-style name of an update kind ("insert", "delete", "reweight").
std::string update_kind_name(UpdateKind kind);

/// One arc mutation. `w` is the new weight for kInsert / kReweight and
/// ignored for kDelete.
struct EdgeUpdate {
  UpdateKind kind = UpdateKind::kReweight;
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  std::int64_t w = 0;

  friend bool operator==(const EdgeUpdate&, const EdgeUpdate&) = default;
};

/// The updates that land together between two published snapshot versions.
struct UpdateBatch {
  /// Position in the stream (0-based); stamped by generators, echoed into
  /// snapshot metadata by StreamSession.
  std::uint64_t seq = 0;
  /// Generator the batch was drawn from (UpdateStreamRegistry key; "" =
  /// ad-hoc batch).
  std::string stream;
  std::vector<EdgeUpdate> updates;

  std::size_t size() const { return updates.size(); }

  /// Machine-readable export (single JSON object).
  std::string to_json() const;
};

/// Validates one update against `n` vertices: endpoints in range, no
/// self-loop, and a finite weight for insert / reweight. Throws
/// SimulationError on violation.
void validate_update(const EdgeUpdate& update, std::uint32_t n);

/// Applies one update to g (see header comment for semantics). Returns
/// true when the graph actually changed (a delete of an absent arc or a
/// reweight to the current weight returns false).
bool apply_update(Digraph& g, const EdgeUpdate& update);

/// Applies a batch in order; returns how many updates changed the graph.
std::size_t apply_batch(Digraph& g, const UpdateBatch& batch);

/// The net weight transition of one arc across a whole batch, as min-plus
/// values: kPlusInf means "absent" on either side, so an insert is
/// (+inf -> w), a delete is (w -> +inf), and a reweight is (w -> w').
struct ArcChange {
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  std::int64_t before = 0;
  std::int64_t after = 0;

  friend bool operator==(const ArcChange&, const ArcChange&) = default;
};

/// Collapses `batch` into net per-arc transitions against the *unapplied*
/// graph g: `before` is the arc's weight in g, `after` its weight once the
/// whole batch has been applied. Arcs whose net transition is the identity
/// (insert-then-delete, reweight back to the same value) are dropped.
/// Order follows each arc's first appearance in the batch. Validates every
/// update against g.size().
std::vector<ArcChange> canonical_changes(const Digraph& g,
                                         const UpdateBatch& batch);

}  // namespace qclique
