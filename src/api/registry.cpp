#include "api/registry.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qclique {

SolverRegistry& SolverRegistry::instance() {
  // Builtins are registered lazily here rather than via static-initializer
  // self-registration: the library is linked statically, and nothing would
  // anchor a registrar translation unit against linker dead-stripping.
  static SolverRegistry* global = [] {
    auto* r = new SolverRegistry();
    register_builtin_solvers(*r);
    return r;
  }();
  return *global;
}

void SolverRegistry::add(std::unique_ptr<ApspSolver> solver) {
  QCLIQUE_CHECK(solver != nullptr, "registry: null solver");
  const std::string name = solver->name();
  QCLIQUE_CHECK(!name.empty(), "registry: solver with empty name");
  std::lock_guard<std::mutex> lock(mu_);
  const auto pos = std::lower_bound(
      solvers_.begin(), solvers_.end(), name,
      [](const auto& s, const std::string& key) { return s->name() < key; });
  QCLIQUE_CHECK(pos == solvers_.end() || (*pos)->name() != name,
                "registry: duplicate solver name '" + name + "'");
  solvers_.insert(pos, std::move(solver));
}

bool SolverRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::any_of(solvers_.begin(), solvers_.end(),
                     [&](const auto& s) { return s->name() == name; });
}

const ApspSolver& SolverRegistry::get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& s : solvers_) {
    if (s->name() == name) return *s;
  }
  std::string known;
  for (const auto& s : solvers_) {
    if (!known.empty()) known += ", ";
    known += s->name();
  }
  throw SimulationError("registry: unknown solver '" + name +
                        "' (known: " + known + ")");
}

std::vector<std::string> SolverRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(solvers_.size());
  for (const auto& s : solvers_) out.push_back(s->name());
  return out;
}

std::size_t SolverRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return solvers_.size();
}

}  // namespace qclique
