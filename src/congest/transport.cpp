#include "congest/transport.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

#include "congest/network.hpp"

namespace qclique {

// ----------------------------------------------------------- TrafficMatrix --

TrafficMatrix::TrafficMatrix(std::uint32_t n)
    : n_(n), loads_(static_cast<std::size_t>(n) * n, 0) {}

void TrafficMatrix::record(NodeId src, NodeId dst) {
  ++loads_[static_cast<std::size_t>(src) * n_ + dst];
  ++total_;
}

void TrafficMatrix::record_deposit(NodeId src, NodeId dst) {
  ++loads_[static_cast<std::size_t>(src) * n_ + dst];
  ++total_;
  ++deposits_;
}

void TrafficMatrix::record_deposits(NodeId src, NodeId dst, std::uint64_t count) {
  loads_[static_cast<std::size_t>(src) * n_ + dst] += count;
  total_ += count;
  deposits_ += count;
}

std::uint64_t TrafficMatrix::load(NodeId src, NodeId dst) const {
  QCLIQUE_CHECK(src < n_ && dst < n_, "TrafficMatrix::load endpoint out of range");
  return loads_[static_cast<std::size_t>(src) * n_ + dst];
}

std::uint64_t TrafficMatrix::max_load() const {
  std::uint64_t m = 0;
  for (std::uint64_t l : loads_) m = std::max(m, l);
  return m;
}

std::uint64_t TrafficMatrix::links_used() const {
  std::uint64_t used = 0;
  for (std::uint64_t l : loads_) used += (l > 0) ? 1 : 0;
  return used;
}

std::string TrafficMatrix::to_json() const {
  // Find the heaviest link for the export; the full matrix would be n^2
  // numbers, which harnesses that want it can read through load().
  std::uint64_t best = 0;
  std::uint32_t bs = 0, bd = 0;
  for (std::uint32_t s = 0; s < n_; ++s) {
    for (std::uint32_t d = 0; d < n_; ++d) {
      const std::uint64_t l = loads_[static_cast<std::size_t>(s) * n_ + d];
      if (l > best) {
        best = l;
        bs = s;
        bd = d;
      }
    }
  }
  std::ostringstream out;
  out << "{\"n\":" << n_ << ",\"total_messages\":" << total_
      << ",\"deposits\":" << deposits_ << ",\"links_used\":" << links_used()
      << ",\"max_link_load\":" << best << ",\"max_link\":[" << bs << "," << bd
      << "]}";
  return out.str();
}

// ----------------------------------------------------------------- Network --

Network::Network(std::uint32_t n, NetworkConfig config)
    : n_(n), config_(config), inboxes_(n) {
  QCLIQUE_CHECK(n >= 2, "a network needs at least two nodes");
  QCLIQUE_CHECK(config_.fields_per_message >= 1 &&
                    config_.fields_per_message <= kMaxPayloadFields,
                "fields_per_message out of range");
}

void Network::send(NodeId src, NodeId dst, Payload payload) {
  // Validate before touching any queue state: out-of-range ids or a
  // self-message must surface as a typed error, never as UB or a partial
  // enqueue of split chunks.
  QCLIQUE_CHECK(src < n_ && dst < n_, "send endpoint out of range");
  QCLIQUE_CHECK(src != dst, "a node does not message itself in the model");
  if (payload.size > config_.fields_per_message) {
    QCLIQUE_BANDWIDTH_CHECK(!config_.strict_payload,
                            "payload exceeds per-message field budget");
    // Non-strict mode: split into budget-sized chunks, preserving order.
    Payload chunk;
    chunk.tag = payload.tag;
    for (std::size_t i = 0; i < payload.size; ++i) {
      chunk.push(payload.fields[i]);
      if (chunk.size == config_.fields_per_message) {
        enqueue(src, dst, chunk);
        ++pending_;
        chunk.size = 0;
      }
    }
    if (chunk.size > 0) {
      enqueue(src, dst, chunk);
      ++pending_;
    }
    return;
  }
  enqueue(src, dst, payload);
  ++pending_;
}

void Network::send_counts(NodeId src, NodeId dst, std::uint64_t count) {
  QCLIQUE_CHECK(src < n_ && dst < n_, "send endpoint out of range");
  QCLIQUE_CHECK(src != dst, "a node does not message itself in the model");
  Payload phantom;
  phantom.tag = kPhantomTag;
  for (std::uint64_t i = 0; i < count; ++i) {
    enqueue(src, dst, phantom);
    ++pending_;
  }
}

std::uint64_t Network::run_until_drained(const std::string& phase) {
  PhaseProfiler::Span span = profile_phase(phase);
  span.add_messages(pending_);
  std::uint64_t steps = 0;
  while (pending_ > 0) {
    step(phase);
    ++steps;
  }
  return steps;
}

std::vector<Message>& Network::inbox(NodeId v) {
  QCLIQUE_CHECK(v < n_, "inbox index out of range");
  return inboxes_[v];
}

const std::vector<Message>& Network::inbox(NodeId v) const {
  QCLIQUE_CHECK(v < n_, "inbox index out of range");
  return inboxes_[v];
}

void Network::clear_inboxes() {
  for (auto& box : inboxes_) box.clear();
}

void Network::deposit(const Message& m) {
  QCLIQUE_CHECK(m.src < n_ && m.dst < n_, "deposit endpoint out of range");
  if (traffic_) traffic_->record_deposit(m.src, m.dst);
  inboxes_[m.dst].push_back(m);
}

void Network::deposit_counts(NodeId src, NodeId dst, std::uint64_t count) {
  QCLIQUE_CHECK(src < n_ && dst < n_, "deposit endpoint out of range");
  if (traffic_) traffic_->record_deposits(src, dst, count);
}

void Network::enable_traffic_matrix() {
  if (!traffic_) traffic_ = std::make_unique<TrafficMatrix>(n_);
}

// ---------------------------------------------------- general CONGEST ------

namespace {

/// Sparse topology: physical links only along a communication graph;
/// messages between non-adjacent nodes are relayed hop-by-hop on
/// precomputed shortest (BFS) paths, one message per directed edge per
/// round. Also serves "bounded-degree" (the overlay is just a particular
/// communication graph).
class SparseNetwork final : public Network {
 public:
  SparseNetwork(std::uint32_t n, NetworkConfig config, std::string name,
                const std::vector<std::vector<NodeId>>& links)
      : Network(n, config),
        name_(std::move(name)),
        adj_(n),
        next_hop_(static_cast<std::size_t>(n) * n, kNoRoute),
        edge_stamp_(static_cast<std::size_t>(n) * n, 0) {
    QCLIQUE_CHECK(links.size() == n, "topology links: one adjacency row per node");
    // Symmetrize and sort: CONGEST links are bidirectional and routing must
    // be deterministic.
    for (std::uint32_t u = 0; u < n; ++u) {
      for (NodeId v : links[u]) {
        QCLIQUE_CHECK(v < n, "topology links: neighbor out of range");
        if (v == u) continue;
        adj_[u].push_back(v);
        adj_[v].push_back(static_cast<NodeId>(u));
      }
    }
    for (auto& row : adj_) {
      std::sort(row.begin(), row.end());
      row.erase(std::unique(row.begin(), row.end()), row.end());
      max_degree_ = std::max<std::uint32_t>(
          max_degree_, static_cast<std::uint32_t>(row.size()));
    }
    build_next_hops();
  }

  std::string topology() const override { return name_; }

  TransportCapabilities capabilities() const override {
    return {.fully_connected = false,
            .lemma1_routing = false,
            .max_degree = max_degree_};
  }

  void step(const std::string& phase) override {
    ++rounds_;
    std::uint64_t delivered = 0;
    next_flight_.clear();
    next_flight_.reserve(flight_.size());
    for (Flight& f : flight_) {
      const NodeId hop = next_hop_[static_cast<std::size_t>(f.cur) * n_ + f.dst];
      const std::size_t edge = static_cast<std::size_t>(f.cur) * n_ + hop;
      if (edge_stamp_[edge] == rounds_) {
        // This directed edge already carried its message this round.
        next_flight_.push_back(std::move(f));
        continue;
      }
      edge_stamp_[edge] = rounds_;
      record_traffic(f.cur, hop);
      f.cur = hop;
      if (f.cur == f.dst) {
        deliver_to_inbox(Message{f.origin, f.dst, f.payload});
        ++delivered;
        --pending_;
      } else {
        next_flight_.push_back(std::move(f));
      }
    }
    flight_.swap(next_flight_);
    ledger_.charge(phase, 1, delivered);
  }

  std::uint64_t max_link_load() const override {
    // Heaviest next-hop queue right now (a lower bound on the drain cost:
    // messages re-contend for every later edge of their paths).
    std::vector<std::uint32_t> count(static_cast<std::size_t>(n_) * n_, 0);
    std::uint64_t m = 0;
    for (const Flight& f : flight_) {
      const NodeId hop = next_hop_[static_cast<std::size_t>(f.cur) * n_ + f.dst];
      m = std::max<std::uint64_t>(
          m, ++count[static_cast<std::size_t>(f.cur) * n_ + hop]);
    }
    return m;
  }

 protected:
  void enqueue(NodeId src, NodeId dst, const Payload& payload) override {
    QCLIQUE_CHECK(next_hop_[static_cast<std::size_t>(src) * n_ + dst] != kNoRoute,
                  "no route between endpoints in this topology");
    flight_.push_back(Flight{src, dst, src, payload});
  }

 private:
  static constexpr NodeId kNoRoute = static_cast<NodeId>(-1);

  struct Flight {
    NodeId origin;
    NodeId dst;
    NodeId cur;
    Payload payload;
  };

  /// BFS from every destination: next_hop_[u * n + dst] is u's neighbor on
  /// a shortest path toward dst (deterministic: adjacency is sorted).
  void build_next_hops() {
    std::vector<std::uint32_t> dist(n_);
    std::queue<NodeId> frontier;
    for (std::uint32_t dst = 0; dst < n_; ++dst) {
      std::fill(dist.begin(), dist.end(), kUnreached);
      dist[dst] = 0;
      next_hop_[static_cast<std::size_t>(dst) * n_ + dst] = dst;
      frontier.push(static_cast<NodeId>(dst));
      while (!frontier.empty()) {
        const NodeId v = frontier.front();
        frontier.pop();
        for (NodeId u : adj_[v]) {
          if (dist[u] != kUnreached) continue;
          dist[u] = dist[v] + 1;
          // u's first hop toward dst is v (v is one step closer).
          next_hop_[static_cast<std::size_t>(u) * n_ + dst] = v;
          frontier.push(u);
        }
      }
    }
  }

  static constexpr std::uint32_t kUnreached = static_cast<std::uint32_t>(-1);

  std::string name_;
  std::vector<std::vector<NodeId>> adj_;
  std::vector<NodeId> next_hop_;        // indexed cur * n + dst
  std::vector<std::uint64_t> edge_stamp_;  // last round each edge delivered
  std::vector<Flight> flight_, next_flight_;
  std::uint32_t max_degree_ = 0;
};

/// Default communication graph for "congest" when the caller supplies none:
/// a ring (the sparsest connected topology, the worst case for congestion).
std::vector<std::vector<NodeId>> ring_links(std::uint32_t n) {
  std::vector<std::vector<NodeId>> links(n);
  for (std::uint32_t u = 0; u < n; ++u) {
    links[u].push_back(static_cast<NodeId>((u + 1) % n));
  }
  return links;
}

/// Deterministic degree-capped overlay: ring + power-of-two chords
/// (i -> i + 2^k), a Chord-style graph with diameter O(n / 2^(cap/2)) that
/// stays connected for any cap >= 2.
std::vector<std::vector<NodeId>> overlay_links(std::uint32_t n, std::uint32_t cap) {
  QCLIQUE_CHECK(cap >= 2, "bounded-degree topology needs degree_cap >= 2");
  std::vector<std::vector<NodeId>> links(n);
  // Ring first (2 of the degree budget), then chords while every endpoint
  // stays under the cap. Chord i -> i + 2^k adds one to both endpoints'
  // degrees, so the per-node chord budget is (cap - 2) / 2 on each side.
  for (std::uint32_t u = 0; u < n; ++u) {
    links[u].push_back(static_cast<NodeId>((u + 1) % n));
  }
  const std::uint32_t chords_per_node = (cap - 2) / 2;
  for (std::uint32_t k = 1; k <= chords_per_node; ++k) {
    const std::uint64_t span = 1ull << k;
    if (span >= n) break;
    for (std::uint32_t u = 0; u < n; ++u) {
      links[u].push_back(static_cast<NodeId>((u + span) % n));
    }
  }
  return links;
}

}  // namespace

// --------------------------------------------------------- TopologyRegistry --

TopologyRegistry& TopologyRegistry::instance() {
  static TopologyRegistry* registry = [] {
    auto* r = new TopologyRegistry();
    register_builtin_topologies(*r);
    return r;
  }();
  return *registry;
}

void TopologyRegistry::add(TopologyInfo info) {
  QCLIQUE_CHECK(!info.name.empty(), "topology name must be non-empty");
  QCLIQUE_CHECK(info.factory != nullptr, "topology factory must be non-null");
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::lower_bound(
      topologies_.begin(), topologies_.end(), info.name,
      [](const TopologyInfo& t, const std::string& name) { return t.name < name; });
  QCLIQUE_CHECK(it == topologies_.end() || it->name != info.name,
                "duplicate topology name: " + info.name);
  topologies_.insert(it, std::move(info));
}

bool TopologyRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::lower_bound(
      topologies_.begin(), topologies_.end(), name,
      [](const TopologyInfo& t, const std::string& n) { return t.name < n; });
  return it != topologies_.end() && it->name == name;
}

const TopologyInfo& TopologyRegistry::get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::lower_bound(
      topologies_.begin(), topologies_.end(), name,
      [](const TopologyInfo& t, const std::string& n) { return t.name < n; });
  if (it == topologies_.end() || it->name != name) {
    std::string known;
    for (const auto& t : topologies_) {
      if (!known.empty()) known += ", ";
      known += t.name;
    }
    throw SimulationError("unknown topology \"" + name + "\" (known: " + known + ")");
  }
  return *it;
}

std::vector<std::string> TopologyRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(topologies_.size());
  for (const auto& t : topologies_) out.push_back(t.name);
  return out;
}

std::size_t TopologyRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return topologies_.size();
}

void register_builtin_topologies(TopologyRegistry& registry) {
  registry.add(TopologyInfo{
      "clique",
      "CONGEST-CLIQUE: all ordered pairs linked, Lemma 1 routing valid",
      [](std::uint32_t n, const TransportOptions& options) -> std::unique_ptr<Network> {
        return std::make_unique<CliqueNetwork>(n, options.config);
      }});
  registry.add(TopologyInfo{
      "congest",
      "general CONGEST: links along a communication graph, hop-by-hop relay",
      [](std::uint32_t n, const TransportOptions& options) -> std::unique_ptr<Network> {
        if (options.links) {
          return std::make_unique<SparseNetwork>(n, options.config, "congest",
                                                 *options.links);
        }
        return std::make_unique<SparseNetwork>(n, options.config, "congest",
                                               ring_links(n));
      },
      /*graph_induced_links=*/true});
  registry.add(TopologyInfo{
      "bounded-degree",
      "clique API over a degree-capped ring+chords overlay",
      [](std::uint32_t n, const TransportOptions& options) -> std::unique_ptr<Network> {
        return std::make_unique<SparseNetwork>(
            n, options.config, "bounded-degree",
            overlay_links(n, options.degree_cap));
      }});
}

std::unique_ptr<Network> make_network(std::uint32_t n,
                                      const TransportOptions& options) {
  std::unique_ptr<Network> net =
      TopologyRegistry::instance().get(options.topology).factory(n, options);
  if (options.record_traffic) net->enable_traffic_matrix();
  if (options.profiler) net->install_profiler(options.profiler);
  return net;
}

TransportOptions with_links(const TransportOptions& options,
                            std::vector<std::vector<NodeId>> adjacency) {
  TransportOptions out = options;
  out.links = std::make_shared<const std::vector<std::vector<NodeId>>>(
      std::move(adjacency));
  return out;
}

bool wants_graph_links(const TransportOptions& options) {
  if (options.links) return false;
  const TopologyRegistry& registry = TopologyRegistry::instance();
  return registry.contains(options.topology) &&
         registry.get(options.topology).graph_induced_links;
}

std::unique_ptr<Network> make_network_for(
    std::uint32_t n, const TransportOptions& options,
    const std::function<std::vector<std::vector<NodeId>>()>& derive_links) {
  if (wants_graph_links(options)) {
    std::vector<std::vector<NodeId>> adjacency = derive_links();
    adjacency.resize(n);  // pad when the network is larger than the graph
    return make_network(n, with_links(options, std::move(adjacency)));
  }
  return make_network(n, options);
}

}  // namespace qclique
