// The AVX-512 tier: 8 x i64 lanes over the clean-tile inner loop.
//
// Compiled with -mavx512f (this TU only); the stub branch keeps the symbol
// linkable and the tier out of dispatch when the toolchain cannot target
// AVX-512. Unlike AVX2, AVX512F has native packed 64-bit min/max
// (vpminsq/vpmaxsq), so the no-witness body is clamp + min with no
// compare/blend pairs; the witness body still needs the improvement mask,
// which compare-into-mask (vpcmpq -> __mmask8) gives directly.
#include "matrix/kernel_band.hpp"

#if defined(__AVX512F__)

#include <immintrin.h>

namespace qclique::detail {

namespace {

inline void clean_row_avx512(std::int64_t aik, const std::int64_t* brow,
                             std::int64_t* crow, std::uint32_t* wrow,
                             std::uint32_t jj, std::uint32_t jh, std::uint32_t k) {
  const __m512i vaik = _mm512_set1_epi64(aik);
  const __m512i vminf = _mm512_set1_epi64(kMinusInf);
  std::uint32_t j = jj;
  if (wrow == nullptr) {
    for (; j + 8 <= jh; j += 8) {
      const __m512i vb = _mm512_loadu_si512(brow + j);
      const __m512i v = _mm512_max_epi64(_mm512_add_epi64(vaik, vb), vminf);
      const __m512i vc = _mm512_loadu_si512(crow + j);
      _mm512_storeu_si512(crow + j, _mm512_min_epi64(vc, v));
    }
  } else {
    for (; j + 8 <= jh; j += 8) {
      const __m512i vb = _mm512_loadu_si512(brow + j);
      const __m512i v = _mm512_max_epi64(_mm512_add_epi64(vaik, vb), vminf);
      const __m512i vc = _mm512_loadu_si512(crow + j);
      // Strict improvement per lane: v < c.
      const __mmask8 imp = _mm512_cmplt_epi64_mask(v, vc);
      _mm512_storeu_si512(crow + j, _mm512_mask_blend_epi64(imp, vc, v));
      if (imp != 0) {
        for (unsigned lane = 0; lane < 8; ++lane) {
          if (imp & (1u << lane)) wrow[j + lane] = k;
        }
      }
    }
  }
  clean_row_scalar(aik, brow, crow, wrow, j, jh, k);
}

}  // namespace

void simd_band_avx512(const std::int64_t* a, const std::int64_t* b, std::int64_t* c,
                      std::uint32_t rows, std::uint32_t inner, std::uint32_t cols,
                      std::uint32_t bs, const std::uint8_t* clean,
                      std::uint32_t* witness) {
  banded_tiles(a, b, c, rows, inner, cols, bs, clean, witness, clean_row_avx512);
}

bool kernel_band_avx512_compiled() { return true; }

}  // namespace qclique::detail

#else  // !__AVX512F__

namespace qclique::detail {

void simd_band_avx512(const std::int64_t* a, const std::int64_t* b, std::int64_t* c,
                      std::uint32_t rows, std::uint32_t inner, std::uint32_t cols,
                      std::uint32_t bs, const std::uint8_t* clean,
                      std::uint32_t* witness) {
  blocked_band(a, b, c, rows, inner, cols, bs, clean, witness);
}

bool kernel_band_avx512_compiled() { return false; }

}  // namespace qclique::detail

#endif
