// Success-probability amplification by independent repetition.
//
// Grover/BBHT searches succeed with constant probability per run; the
// paper's algorithms quote "with high probability" results obtained by
// repeating a logarithmic number of times (e.g. below Theorem 3, and the
// footnote in Section 4.1 about dummy solutions). This wrapper runs a
// search up to `max_repetitions` times, returning on the first verified
// hit, and exposes the failure-probability arithmetic used to size the
// repetition count.
#pragma once

#include <cstdint>

#include "quantum/distributed_search.hpp"

namespace qclique {

/// Repetitions needed to push a per-run failure probability `p_fail` below
/// `target`: ceil(log(target) / log(p_fail)). At least 1.
std::uint32_t repetitions_for_target(double p_fail, double target);

/// Result of an amplified search.
struct AmplifiedSearchResult {
  GroverResult grover;           // last run (the successful one if any)
  std::uint32_t repetitions = 0; // runs executed
  std::uint64_t rounds_charged = 0;
};

/// Runs `distributed_search` up to `max_repetitions` times with independent
/// randomness, stopping at the first verified solution. All runs are
/// charged. A search that truly has no solution pays every repetition --
/// callers that expect frequent empty searches should keep the count low
/// (the paper's algorithms tolerate one-sided error here).
AmplifiedSearchResult amplified_search(std::size_t dim, const Oracle& oracle,
                                       const DistributedSearchCost& cost,
                                       std::uint32_t max_repetitions,
                                       RoundLedger& ledger, const std::string& phase,
                                       Rng& rng);

}  // namespace qclique
