// Tests for the CONGEST-CLIQUE network simulator: bandwidth enforcement,
// round measurement from real congestion, and ledger accounting.
#include "congest/network.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace qclique {
namespace {

TEST(CliqueNetwork, SingleMessageTakesOneRound) {
  CliqueNetwork net(4);
  net.send(0, 1, Payload::make(7, {42}));
  EXPECT_EQ(net.run_until_drained("p"), 1u);
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.inbox(1)[0].src, 0u);
  EXPECT_EQ(net.inbox(1)[0].payload.tag, 7u);
  EXPECT_EQ(net.inbox(1)[0].payload.at(0), 42);
}

TEST(CliqueNetwork, ParallelLinksDeliverSimultaneously) {
  // n-1 messages from distinct sources to distinct destinations: one round.
  CliqueNetwork net(8);
  for (NodeId v = 1; v < 8; ++v) net.send(v, v - 1, Payload::make(0, {v}));
  EXPECT_EQ(net.run_until_drained("p"), 1u);
}

TEST(CliqueNetwork, CongestedLinkCostsItsQueueLength) {
  CliqueNetwork net(4);
  for (int i = 0; i < 5; ++i) net.send(2, 3, Payload::make(0, {i}));
  EXPECT_EQ(net.max_link_load(), 5u);
  EXPECT_EQ(net.run_until_drained("p"), 5u);
  EXPECT_EQ(net.inbox(3).size(), 5u);
  // FIFO per link.
  for (int i = 0; i < 5; ++i) EXPECT_EQ(net.inbox(3)[i].payload.at(0), i);
}

TEST(CliqueNetwork, MixedLoadCostsMaxLinkLoad) {
  CliqueNetwork net(4);
  // Link (0,1): 3 msgs. Link (2,3): 1 msg. Total rounds = 3.
  for (int i = 0; i < 3; ++i) net.send(0, 1, Payload::make(0, {i}));
  net.send(2, 3, Payload::make(0, {9}));
  EXPECT_EQ(net.run_until_drained("p"), 3u);
}

TEST(CliqueNetwork, OneNodeFanOutIsOneRound) {
  // In the clique a node can message all others simultaneously.
  CliqueNetwork net(16);
  for (NodeId v = 1; v < 16; ++v) net.send(0, v, Payload::make(0, {v}));
  EXPECT_EQ(net.run_until_drained("p"), 1u);
}

TEST(CliqueNetwork, StrictPayloadThrowsOnOverflow) {
  CliqueNetwork net(4, NetworkConfig{.fields_per_message = 2, .strict_payload = true});
  Payload p = Payload::make(0, {1, 2, 3});
  EXPECT_THROW(net.send(0, 1, p), BandwidthError);
}

TEST(CliqueNetwork, NonStrictPayloadSplitsAcrossRounds) {
  CliqueNetwork net(4, NetworkConfig{.fields_per_message = 2, .strict_payload = false});
  net.send(0, 1, Payload::make(5, {1, 2, 3, 4, 5}));
  // 5 fields at 2/message -> 3 messages -> 3 rounds on one link.
  EXPECT_EQ(net.run_until_drained("p"), 3u);
  ASSERT_EQ(net.inbox(1).size(), 3u);
  EXPECT_EQ(net.inbox(1)[2].payload.at(0), 5);
}

TEST(CliqueNetwork, SplitPreservesEveryFieldTagAndOrder) {
  // Regression: the non-strict split must deliver every field exactly once,
  // in order, with the original tag on each chunk.
  CliqueNetwork net(4, NetworkConfig{.fields_per_message = 2, .strict_payload = false});
  net.send(0, 1, Payload::make(9, {10, 11, 12, 13, 14}));
  net.run_until_drained("p");
  std::vector<std::int64_t> fields;
  for (const Message& m : net.inbox(1)) {
    EXPECT_EQ(m.payload.tag, 9u);
    EXPECT_LE(m.payload.size, 2u);
    for (std::size_t i = 0; i < m.payload.size; ++i) fields.push_back(m.payload.at(i));
  }
  EXPECT_EQ(fields, (std::vector<std::int64_t>{10, 11, 12, 13, 14}));
}

TEST(CliqueNetwork, SplitOnExactMultipleProducesNoEmptyChunk) {
  // 4 fields at 2/message: exactly 2 full chunks, no trailing empty one.
  CliqueNetwork net(4, NetworkConfig{.fields_per_message = 2, .strict_payload = false});
  net.send(0, 1, Payload::make(3, {1, 2, 3, 4}));
  EXPECT_EQ(net.pending_messages(), 2u);
  EXPECT_EQ(net.run_until_drained("p"), 2u);
  ASSERT_EQ(net.inbox(1).size(), 2u);
  EXPECT_EQ(net.inbox(1)[0].payload.size, 2u);
  EXPECT_EQ(net.inbox(1)[1].payload.size, 2u);
}

TEST(CliqueNetwork, SplitChargesOneMessagePerChunkOnTheLedger) {
  // The round/message accounting must see the chunks, not the logical send:
  // a max-capacity payload over a width-1 budget is 6 link messages.
  CliqueNetwork net(4, NetworkConfig{.fields_per_message = 1, .strict_payload = false});
  net.send(0, 1, Payload::make(0, {1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(net.max_link_load(), 6u);
  EXPECT_EQ(net.run_until_drained("p"), 6u);
  EXPECT_EQ(net.ledger().total_messages(), 6u);
  EXPECT_EQ(net.ledger().phase_rounds("p"), 6u);
}

TEST(CliqueNetwork, SplitKeepsPerLinkFifoWithLaterSends) {
  // A follow-up send on the same link must drain after all chunks of the
  // earlier oversized payload.
  CliqueNetwork net(4, NetworkConfig{.fields_per_message = 2, .strict_payload = false});
  net.send(0, 1, Payload::make(1, {1, 2, 3}));  // chunks {1,2} {3}
  net.send(0, 1, Payload::make(2, {7}));
  net.run_until_drained("p");
  ASSERT_EQ(net.inbox(1).size(), 3u);
  EXPECT_EQ(net.inbox(1)[0].payload.tag, 1u);
  EXPECT_EQ(net.inbox(1)[1].payload.tag, 1u);
  EXPECT_EQ(net.inbox(1)[1].payload.at(0), 3);
  EXPECT_EQ(net.inbox(1)[2].payload.tag, 2u);
}

TEST(CliqueNetwork, FittingPayloadNeverSplitsInNonStrictMode) {
  CliqueNetwork net(4, NetworkConfig{.fields_per_message = 4, .strict_payload = false});
  net.send(0, 1, Payload::make(0, {1, 2, 3, 4}));
  EXPECT_EQ(net.pending_messages(), 1u);
  EXPECT_EQ(net.run_until_drained("p"), 1u);
}

TEST(CliqueNetwork, SelfMessageRejected) {
  CliqueNetwork net(4);
  EXPECT_THROW(net.send(2, 2, Payload::make(0, {1})), SimulationError);
}

TEST(CliqueNetwork, OutOfRangeEndpointsRejected) {
  CliqueNetwork net(4);
  EXPECT_THROW(net.send(0, 4, Payload::make(0, {1})), SimulationError);
  EXPECT_THROW(net.send(5, 1, Payload::make(0, {1})), SimulationError);
}

TEST(CliqueNetwork, SendValidationRegressions) {
  // Regression (PR 2): endpoint validation must be a typed SimulationError
  // raised before *any* queue state changes -- never an out-of-bounds index
  // into the link structures, and never a partial enqueue.
  CliqueNetwork net(4);
  // Extreme ids would index far outside any n*n structure if unvalidated.
  const NodeId huge = std::numeric_limits<NodeId>::max();
  EXPECT_THROW(net.send(huge, 1, Payload::make(0, {1})), SimulationError);
  EXPECT_THROW(net.send(1, huge, Payload::make(0, {1})), SimulationError);
  EXPECT_THROW(net.send(huge, huge, Payload::make(0, {1})), SimulationError);
  EXPECT_EQ(net.pending_messages(), 0u);
  EXPECT_EQ(net.run_until_drained("p"), 0u);
  EXPECT_EQ(net.ledger().total_rounds(), 0u);

  // A self-message keeps rejecting even when the payload would need a
  // non-strict split (validation happens before the split loop).
  CliqueNetwork loose(4, NetworkConfig{.fields_per_message = 1, .strict_payload = false});
  EXPECT_THROW(loose.send(3, 3, Payload::make(0, {1, 2, 3})), SimulationError);
  EXPECT_THROW(loose.send(0, 7, Payload::make(0, {1, 2, 3})), SimulationError);
  EXPECT_EQ(loose.pending_messages(), 0u);

  // The inbox/deposit surfaces validate the same way.
  EXPECT_THROW(net.inbox(4), SimulationError);
  EXPECT_THROW(net.deposit(Message{0, 4, Payload::make(0, {1})}), SimulationError);
  EXPECT_THROW(net.deposit(Message{huge, 0, Payload::make(0, {1})}), SimulationError);

  // After all the rejected calls the network still works normally.
  net.send(0, 1, Payload::make(0, {9}));
  EXPECT_EQ(net.run_until_drained("p"), 1u);
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.inbox(1)[0].payload.at(0), 9);
}

TEST(CliqueNetwork, LedgerTracksPhases) {
  CliqueNetwork net(4);
  net.send(0, 1, Payload::make(0, {1}));
  net.run_until_drained("alpha");
  net.send(0, 1, Payload::make(0, {1}));
  net.send(0, 1, Payload::make(0, {2}));
  net.run_until_drained("beta");
  EXPECT_EQ(net.ledger().phase_rounds("alpha"), 1u);
  EXPECT_EQ(net.ledger().phase_rounds("beta"), 2u);
  EXPECT_EQ(net.ledger().total_rounds(), 3u);
  EXPECT_EQ(net.ledger().total_messages(), 3u);
}

TEST(CliqueNetwork, ClearInboxes) {
  CliqueNetwork net(4);
  net.send(0, 1, Payload::make(0, {1}));
  net.run_until_drained("p");
  net.clear_inboxes();
  EXPECT_TRUE(net.inbox(1).empty());
}

TEST(CliqueNetwork, DrainOnEmptyIsZeroRounds) {
  CliqueNetwork net(4);
  EXPECT_EQ(net.run_until_drained("p"), 0u);
  EXPECT_EQ(net.rounds(), 0u);
}

TEST(PayloadTest, CapacityEnforced) {
  Payload p;
  for (std::size_t i = 0; i < kMaxPayloadFields; ++i) p.push(1);
  EXPECT_THROW(p.push(1), SimulationError);
  EXPECT_THROW(p.at(kMaxPayloadFields), SimulationError);
}

TEST(RoundLedgerTest, AbsorbMergesPhases) {
  RoundLedger a, b;
  a.charge("x", 3, 10);
  b.charge("x", 2, 5);
  b.charge_quantum("q", 7, 2);
  a.absorb(b);
  EXPECT_EQ(a.phase_rounds("x"), 5u);
  EXPECT_EQ(a.phase_rounds("q"), 7u);
  EXPECT_EQ(a.total_rounds(), 12u);
  EXPECT_EQ(a.total_oracle_calls(), 2u);
}

TEST(RoundLedgerTest, ResetClearsEverything) {
  RoundLedger a;
  a.charge("x", 3);
  a.reset();
  EXPECT_EQ(a.total_rounds(), 0u);
  EXPECT_TRUE(a.phases().empty());
}

}  // namespace
}  // namespace qclique
