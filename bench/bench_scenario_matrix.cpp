// Experiment E15: the full scenario matrix -- graph family x solver
// backend x transport topology x min-plus kernel, the four registry axes
// crossed in one BatchRunner::run_scenarios sweep.
//
//   $ ./bench_scenario_matrix [n] [json-path]
//
// Every registered graph family is generated once at size n and pushed
// through the distributed backends on every registered topology (and the
// centralized reference on the first), across two kernels. Per scenario,
// all successful runs must agree exactly with the floyd-warshall oracle on
// that family's graph: graph structure, like the topology and the kernel,
// changes what runs *cost*, never what they *compute*. Sparse topologies
// may reject structurally incompatible inputs (a disconnected clustered
// graph has no congest route); those scenarios report the rejection
// instead of failing the bench. The full grid is exported as one JSON
// array (scenarios_to_json) -- the artifact CI uploads.
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "api/batch_runner.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace qclique;
  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 12;
  const std::string json_path = argc > 2 ? argv[2] : "";
  std::cout << "E15: scenario matrix (family x backend x topology x kernel), n = "
            << n << "\n\n";

  SolverRegistry& registry = SolverRegistry::instance();
  ScenarioSpec spec;
  spec.solvers = {"quantum", "semiring", "floyd-warshall"};
  spec.kernels = {"naive", "blocked"};
  spec.config.n = n;
  spec.config.wmin = -4;
  spec.config.wmax = 9;
  spec.graph_seed = 71;

  const BatchRunner runner(registry, ExecutionContext(4200 + n));
  const auto results = runner.run_scenarios(spec);

  // Per family: the oracle's distances on that family's graph are the
  // reference every successful scenario must reproduce.
  Table table({"family", "scenarios", "ok", "rejected", "rounds min..max",
               "agree"});
  bool all_agree = true;
  std::size_t i = 0;
  while (i < results.size()) {
    const std::string family = results[i].family;
    const DistMatrix* reference = nullptr;
    std::size_t total = 0, ok = 0, rejected = 0;
    std::uint64_t rmin = ~0ull, rmax = 0;
    bool agree = true;
    for (; i < results.size() && results[i].family == family; ++i) {
      const auto& r = results[i];
      ++total;
      if (!r.ok) {
        ++rejected;
        continue;
      }
      ++ok;
      if (r.solver == "floyd-warshall" && reference == nullptr) {
        reference = &r.report->distances;
      }
      rmin = std::min(rmin, r.report->rounds);
      rmax = std::max(rmax, r.report->rounds);
    }
    // Second pass over this family's slice for agreement with the oracle.
    for (std::size_t j = i - total; j < i; ++j) {
      const auto& r = results[j];
      if (!r.ok || reference == nullptr) continue;
      agree = agree && r.report->distances == *reference;
    }
    agree = agree && reference != nullptr && ok > 0;
    all_agree = all_agree && agree;
    table.add_row({family, Table::fmt(static_cast<std::uint64_t>(total)),
                   Table::fmt(static_cast<std::uint64_t>(ok)),
                   Table::fmt(static_cast<std::uint64_t>(rejected)),
                   Table::fmt(rmin > rmax ? 0 : rmin) + ".." + Table::fmt(rmax),
                   agree ? "yes" : "NO"});
  }
  table.print("Scenario matrix: per-family cross-backend agreement");

  // Self-describing envelope around the scenario array so bench_diff (and
  // any future parser) can key on "bench" / "schema_version".
  const std::string json = "{\"bench\":\"scenario_matrix\",\"schema_version\":1,"
                           "\"n\":" + std::to_string(n) +
                           ",\"scenarios\":" + scenarios_to_json(results) + "}";
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json << "\n";
    std::cout << "\nscenario_matrix_json written to " << json_path << " ("
              << results.size() << " scenarios)\n";
  } else {
    std::cout << "\nscenario_matrix_json: " << json << "\n";
  }

  std::cout << "\nPer-scenario agreement across the whole grid: "
            << (all_agree ? "yes" : "NO") << "\n";
  return all_agree ? 0 : 1;
}
