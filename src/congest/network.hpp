// The CONGEST-CLIQUE transport: the default (and the paper's) topology.
//
// The simulator runs n logical nodes over a fully connected topology. Time
// advances in synchronous rounds; in one round each *ordered* pair (u, v)
// may carry one message of at most `fields_per_message` fields (our model of
// O(log n) bits; see message.hpp). Protocol code follows the
// queue-then-drain discipline of the abstract Network interface
// (congest/transport.hpp): enqueue with `send`, measure with
// `run_until_drained`, read inboxes, compute locally.
//
// This measures congestion genuinely: a phase whose worst link carries k
// messages costs exactly k rounds, matching the model's definition.
//
// Internals: pending messages live in a flat round-bucketed arena -- one
// contiguous vector per future delivery round, with per-link counters for
// the congestion accounting -- instead of an n^2 array of per-link deques.
// Because each link delivers exactly one message per round in FIFO order, a
// message's delivery round is known at send time (the link's current queue
// depth), so `send` appends to exactly one bucket and `step` delivers one
// whole bucket with a single linear pass; no message is ever touched in
// between. This makes all-to-all drains cache-friendly at scale
// (bench/bench_transport.cpp measures the difference against the old
// deque layout) and max_link_load O(1).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "congest/message.hpp"
#include "congest/round_ledger.hpp"
#include "congest/transport.hpp"

namespace qclique {

/// The simulated fully connected network.
class CliqueNetwork final : public Network {
 public:
  explicit CliqueNetwork(std::uint32_t n, NetworkConfig config = {});

  std::string topology() const override { return "clique"; }

  TransportCapabilities capabilities() const override {
    return {.fully_connected = true, .lemma1_routing = true, .max_degree = n_ - 1};
  }

  /// Advances one synchronous round: every link with queued messages
  /// delivers exactly one into the destination inbox. Charges one round to
  /// `phase` on the ledger.
  void step(const std::string& phase) override;

  /// Largest queue length over all links; the next drain will take exactly
  /// this many rounds.
  std::uint64_t max_link_load() const override;

 protected:
  void enqueue(NodeId src, NodeId dst, const Payload& payload) override;

 private:
  std::size_t link_index(NodeId src, NodeId dst) const {
    return static_cast<std::size_t>(src) * n_ + dst;
  }

  /// One queued message in the arena.
  struct QueuedMessage {
    std::uint32_t link;  // src * n + dst
    Payload payload;
  };

  /// Invariant: buckets_[k] holds, in send order, exactly the (k+1)-th
  /// pending message of every link whose queue is deeper than k. Every
  /// link's front message is in buckets_[0], so one `step` = deliver
  /// buckets_.front() and pop it (every other message moves one round
  /// closer without being touched), and buckets_.size() is the exact
  /// max link load.
  std::deque<std::vector<QueuedMessage>> buckets_;
  std::vector<std::vector<QueuedMessage>> bucket_pool_;  // recycled storage
  std::vector<std::uint32_t> link_load_;  // queued messages per link
};

}  // namespace qclique
