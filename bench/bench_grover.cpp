// Experiment E4 (Section 4.1): the distributed Grover search framework.
//
// Verifies the two ingredients Theorem 2 inherits from Le Gall-Magniez:
//   * oracle calls scale ~sqrt(|X|) (fixed-schedule and BBHT), and
//   * the success probability at the optimal iteration count is high.
// Also reports the closed-form-vs-statevector cross-check error, which is
// the evidence that the fast analytic path used by multi_search is exact.
#include <cmath>
#include <iostream>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "quantum/grover.hpp"
#include "quantum/statevector.hpp"

int main() {
  using namespace qclique;
  Rng rng(4);
  std::cout << "E4: Grover search scaling and exactness\n";

  Table table({"|X|", "#solutions", "optimal k", "success@k", "BBHT mean calls",
               "BBHT found%"});
  std::vector<double> dims, calls;
  for (const std::size_t dim : {64u, 256u, 1024u, 4096u, 16384u}) {
    for (const std::size_t m : {1u, 4u}) {
      const std::uint64_t k = grover_optimal_iterations(dim, m);
      const double p = grover_success_probability(dim, m, k);
      OnlineStats bbht;
      int found = 0;
      const int trials = 30;
      for (int t = 0; t < trials; ++t) {
        const auto res = search_bbht(
            dim, [dim, m](std::size_t x) { return x % (dim / m) == 0; }, rng);
        bbht.add(static_cast<double>(res.oracle_calls));
        found += res.found.has_value();
      }
      table.add_row({Table::fmt(static_cast<std::uint64_t>(dim)),
                     Table::fmt(static_cast<std::uint64_t>(m)), Table::fmt(k),
                     Table::fmt(p, 4), Table::fmt(bbht.mean(), 1),
                     Table::fmt(100.0 * found / trials, 1) + "%"});
      if (m == 1) {
        dims.push_back(static_cast<double>(dim));
        calls.push_back(bbht.mean());
      }
    }
  }
  table.print("Grover: iteration schedules and success rates");

  const auto fit = fit_power_law(dims, calls);
  std::cout << "\nBBHT oracle calls ~ |X|^" << fit.slope << " (r^2 " << fit.r_squared
            << "; theory: 0.5)\n";

  // Cross-check the analytic form against the exact statevector.
  double max_err = 0;
  const std::size_t dim = 101;
  const std::vector<std::size_t> marked{7, 55, 90};
  StateVector psi = StateVector::uniform(dim);
  const auto oracle = [&](std::size_t i) {
    return std::find(marked.begin(), marked.end(), i) != marked.end();
  };
  for (std::uint64_t k = 0; k <= 20; ++k) {
    max_err = std::max(max_err,
                       std::abs(psi.probability_of(oracle) -
                                grover_success_probability(dim, marked.size(), k)));
    psi.apply_grover_iteration(oracle);
  }
  std::cout << "Closed-form vs statevector max |error| over 20 iterations: "
            << max_err << " (exactness of the analytic multi-search path)\n";
  return 0;
}
