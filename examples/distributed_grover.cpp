// Distributed Grover search (paper Section 4.1) as a standalone demo.
//
//   $ ./example_distributed_grover
//
// A leader node searches a domain X for a marked element where each oracle
// evaluation is an r-round distributed procedure. The demo contrasts the
// classical brute-force cost r * |X| with the measured quantum cost
// O~(r * sqrt(|X|)), and shows the multiple-search generalization
// (Section 4.2) where m searches share each joint evaluation.
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "quantum/multi_search.hpp"

int main() {
  using namespace qclique;
  Rng rng(99);

  std::cout << "Single search: find the one marked element of X.\n";
  Table single({"|X|", "r (rounds/eval)", "classical rounds (r*|X|)",
                "quantum rounds (measured)", "found"});
  for (std::size_t dim : {64u, 256u, 1024u, 4096u}) {
    const DistributedSearchCost cost{.eval_rounds_per_call = 5,
                                     .compute_uncompute_factor = 2};
    RoundLedger ledger;
    const std::size_t target = dim / 3;
    const auto res = distributed_search(
        dim, [target](std::size_t x) { return x == target; }, cost, ledger,
        "grover", rng);
    single.add_row({Table::fmt(static_cast<std::uint64_t>(dim)), "5",
                    Table::fmt(static_cast<std::uint64_t>(5 * dim)),
                    Table::fmt(res.rounds_charged),
                    res.grover.found ? "yes" : "no"});
  }
  single.print("Distributed Grover search");

  std::cout << "\nMultiple searches: m searches, one joint evaluation per "
               "iteration (Section 4.2).\n";
  Table multi({"m", "|X|", "joint oracle calls", "rounds", "found/m"});
  for (std::size_t m : {1u, 8u, 64u, 512u}) {
    const std::size_t dim = 256;
    std::vector<SearchInstance> searches(m);
    for (std::size_t i = 0; i < m; ++i) searches[i].solutions = {(i * 37) % dim};
    RoundLedger ledger;
    const auto res =
        multi_search(dim, searches, DistributedSearchCost{.eval_rounds_per_call = 5},
                     MultiSearchOptions{}, ledger, "multi", rng);
    multi.add_row({Table::fmt(static_cast<std::uint64_t>(m)),
                   Table::fmt(static_cast<std::uint64_t>(dim)),
                   Table::fmt(res.joint_oracle_calls), Table::fmt(res.rounds_charged),
                   Table::fmt(static_cast<std::uint64_t>(res.num_found())) + "/" +
                       Table::fmt(static_cast<std::uint64_t>(m))});
  }
  multi.print("Lockstep multiple searches");
  std::cout << "\nNote how the rounds column is flat in m: that parallelism --\n"
               "without congestion -- is exactly what Theorem 3's typical-input\n"
               "machinery buys the APSP algorithm.\n";
  return 0;
}
