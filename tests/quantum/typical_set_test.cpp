// Tests for Upsilon_beta membership, frequency profiles, and the Lemma 5
// bound arithmetic.
#include "quantum/typical_set.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace qclique {
namespace {

TEST(FrequencyProfileTest, CountsMultiplicities) {
  const auto p = frequency_profile({0, 1, 1, 2, 1}, 4);
  EXPECT_EQ(p.counts[0], 1u);
  EXPECT_EQ(p.counts[1], 3u);
  EXPECT_EQ(p.counts[2], 1u);
  EXPECT_EQ(p.counts[3], 0u);
  EXPECT_EQ(p.max_frequency, 3u);
}

TEST(FrequencyProfileTest, EmptyTuple) {
  const auto p = frequency_profile({}, 3);
  EXPECT_EQ(p.max_frequency, 0u);
  EXPECT_TRUE(p.within(0.0));
}

TEST(FrequencyProfileTest, RejectsOutOfDomain) {
  EXPECT_THROW(frequency_profile({3}, 3), SimulationError);
}

TEST(TypicalSetTest, MembershipBoundary) {
  // Tuple with max frequency 3.
  const std::vector<std::size_t> t{0, 0, 0, 1, 2};
  EXPECT_TRUE(in_typical_set(t, 3, 3.0));
  EXPECT_TRUE(in_typical_set(t, 3, 3.5));
  EXPECT_FALSE(in_typical_set(t, 3, 2.9));
}

TEST(TypicalSetTest, UniformishTupleIsTypical) {
  std::vector<std::size_t> t;
  for (std::size_t i = 0; i < 100; ++i) t.push_back(i % 10);
  // Every frequency is exactly 10 = m/|X|; beta slightly above passes.
  EXPECT_TRUE(in_typical_set(t, 10, 10.0));
  EXPECT_FALSE(in_typical_set(t, 10, 9.0));
}

TEST(Lemma5Bound, FormulaMatches) {
  // |X| * exp(-2m / (9|X|)).
  EXPECT_NEAR(lemma5_atypical_mass_bound(2, 18), 2.0 * std::exp(-2.0), 1e-12);
  EXPECT_NEAR(lemma5_atypical_mass_bound(4, 36), 4.0 * std::exp(-2.0), 1e-12);
}

TEST(Lemma5Bound, DecreasesInM) {
  double prev = lemma5_atypical_mass_bound(8, 8);
  for (std::size_t m = 16; m <= 512; m *= 2) {
    const double b = lemma5_atypical_mass_bound(8, m);
    EXPECT_LT(b, prev);
    prev = b;
  }
}

TEST(Lemma5Bound, NontrivialRegime) {
  // For m >> |X| log |X| the bound drops below 1 (meaningful); the paper's
  // regime m = Theta(n log n), |X| <= sqrt(n) is deep inside it.
  EXPECT_LT(lemma5_atypical_mass_bound(2, 16), 1.0);
  EXPECT_LT(lemma5_atypical_mass_bound(16, 1024), 2e-5);
}

TEST(Theorem3Preconditions, PaperRegimeHolds) {
  // |X| = sqrt(n), m = 100 n log n at n = 2^12: |X| = 64,
  // m = 100 * 4096 * 12 ~ 4.9M, m / (36 log m) ~ 4.9M / (36 * 22.2) ~ 6146
  // > 64, and beta = 8m/|X| + 1 satisfies the beta condition.
  const std::size_t dim = 64;
  const std::size_t m = 100ull * 4096 * 12;
  const double beta = 8.0 * m / dim + 1;
  EXPECT_TRUE(theorem3_preconditions_hold(dim, m, beta));
}

TEST(Theorem3Preconditions, FailsWhenDomainTooLarge) {
  EXPECT_FALSE(theorem3_preconditions_hold(64, 70, 100.0));
}

TEST(Theorem3Preconditions, FailsWhenBetaTooSmall) {
  const std::size_t dim = 4;
  const std::size_t m = 100000;
  EXPECT_FALSE(theorem3_preconditions_hold(dim, m, 8.0 * m / dim - 1));
}

}  // namespace
}  // namespace qclique
