#include "quantum/joint_multi_search.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "quantum/typical_set.hpp"

namespace qclique {

JointMultiSearch::JointMultiSearch(const JointConfig& config,
                                   std::vector<std::vector<bool>> marked)
    : config_(config), marked_(std::move(marked)) {
  QCLIQUE_CHECK(config_.dim >= 2, "joint simulation needs |X| >= 2");
  QCLIQUE_CHECK(config_.m >= 1, "joint simulation needs m >= 1");
  QCLIQUE_CHECK(marked_.size() == config_.m, "one marked vector per register");
  for (const auto& v : marked_) {
    QCLIQUE_CHECK(v.size() == config_.dim, "marked vector size must be |X|");
  }
  // dim^m with overflow guard; callers keep this small (<= ~2^22).
  joint_dim_ = 1;
  for (std::size_t i = 0; i < config_.m; ++i) {
    QCLIQUE_CHECK(joint_dim_ <= (std::size_t{1} << 22) / config_.dim,
                  "joint dimension too large for exact simulation");
    joint_dim_ *= config_.dim;
  }

  typical_.resize(joint_dim_);
  all_marked_.resize(joint_dim_);
  ideal_phase_.resize(joint_dim_);
  garbage_phase_.resize(joint_dim_);
  std::uint64_t hash_state = 0x2545f4914f6cdd1dULL;
  std::vector<std::uint32_t> freq(config_.dim);
  for (std::size_t b = 0; b < joint_dim_; ++b) {
    std::fill(freq.begin(), freq.end(), 0);
    std::size_t rest = b;
    std::uint32_t marked_regs = 0;
    std::uint32_t max_freq = 0;
    for (std::size_t i = 0; i < config_.m; ++i) {
      const std::size_t x = rest % config_.dim;
      rest /= config_.dim;
      marked_regs += marked_[i][x] ? 1 : 0;
      max_freq = std::max(max_freq, ++freq[x]);
    }
    typical_[b] = (max_freq <= config_.beta) ? 1 : 0;
    all_marked_[b] = (marked_regs == config_.m) ? 1 : 0;
    ideal_phase_[b] = static_cast<std::uint8_t>(marked_regs & 1);
    garbage_phase_[b] = static_cast<std::uint8_t>(splitmix64(hash_state) & 1);
  }
}

std::size_t JointMultiSearch::marked_count(std::size_t basis) const {
  std::size_t rest = basis;
  std::size_t c = 0;
  for (std::size_t i = 0; i < config_.m; ++i) {
    c += marked_[i][rest % config_.dim] ? 1 : 0;
    rest /= config_.dim;
  }
  return c;
}

bool JointMultiSearch::is_typical(std::size_t basis) const {
  return typical_[basis] != 0;
}

void JointMultiSearch::apply_ideal_oracle(std::vector<std::complex<double>>& amps) const {
  for (std::size_t b = 0; b < joint_dim_; ++b) {
    if (ideal_phase_[b]) amps[b] = -amps[b];
  }
}

void JointMultiSearch::apply_truncated_oracle(
    std::vector<std::complex<double>>& amps) const {
  for (std::size_t b = 0; b < joint_dim_; ++b) {
    if (typical_[b]) {
      if (ideal_phase_[b]) amps[b] = -amps[b];
    } else {
      switch (config_.mode) {
        case TruncationMode::kErase:
          break;  // error output: no phase kickback at all
        case TruncationMode::kGarbage:
          if (garbage_phase_[b]) amps[b] = -amps[b];
          break;
      }
    }
  }
}

void JointMultiSearch::apply_diffusion_all_registers(
    std::vector<std::complex<double>>& amps) const {
  // Apply D = 2|u><u| - I independently on each register. For register i
  // with stride s, the register's dim-sized slices are
  // { base + x*s : x in [0, dim) } for every `base` whose i-th digit is 0.
  const std::size_t dim = config_.dim;
  std::size_t stride = 1;
  for (std::size_t reg = 0; reg < config_.m; ++reg) {
    const std::size_t block = stride * dim;
    for (std::size_t outer = 0; outer < joint_dim_; outer += block) {
      for (std::size_t inner = 0; inner < stride; ++inner) {
        const std::size_t base = outer + inner;
        std::complex<double> mean = 0;
        for (std::size_t x = 0; x < dim; ++x) mean += amps[base + x * stride];
        mean /= static_cast<double>(dim);
        for (std::size_t x = 0; x < dim; ++x) {
          auto& a = amps[base + x * stride];
          a = 2.0 * mean - a;
        }
      }
    }
    stride = block;
  }
}

double JointMultiSearch::success_mass(
    const std::vector<std::complex<double>>& amps) const {
  double p = 0;
  for (std::size_t b = 0; b < joint_dim_; ++b) {
    if (all_marked_[b]) p += std::norm(amps[b]);
  }
  return p;
}

double JointMultiSearch::atypical_norm(
    const std::vector<std::complex<double>>& amps) const {
  double p = 0;
  for (std::size_t b = 0; b < joint_dim_; ++b) {
    if (!typical_[b]) p += std::norm(amps[b]);
  }
  return std::sqrt(p);
}

double JointMultiSearch::uniform_atypical_mass() const {
  double atypical = 0;
  for (std::size_t b = 0; b < joint_dim_; ++b) {
    if (!typical_[b]) atypical += 1.0;
  }
  return atypical / static_cast<double>(joint_dim_);
}

JointReport JointMultiSearch::run(std::uint64_t iterations) {
  const double amp0 = 1.0 / std::sqrt(static_cast<double>(joint_dim_));
  std::vector<std::complex<double>> ideal(joint_dim_, amp0);
  std::vector<std::complex<double>> trunc(joint_dim_, amp0);

  JointReport rep;
  rep.iterations = iterations;
  // The initial state belongs to H_m; include its atypical norm in the sum
  // (the appendix telescopes from k = 0).
  double sum_atypical = atypical_norm(ideal);
  rep.max_atypical_norm = sum_atypical;

  for (std::uint64_t k = 0; k < iterations; ++k) {
    apply_ideal_oracle(ideal);
    apply_diffusion_all_registers(ideal);
    apply_truncated_oracle(trunc);
    apply_diffusion_all_registers(trunc);
    const double an = atypical_norm(ideal);
    rep.max_atypical_norm = std::max(rep.max_atypical_norm, an);
    sum_atypical += an;
  }

  rep.telescoping_bound = 2.0 * sum_atypical;
  rep.ideal_success = success_mass(ideal);
  rep.truncated_success = success_mass(trunc);
  double dev = 0;
  for (std::size_t b = 0; b < joint_dim_; ++b) dev += std::norm(ideal[b] - trunc[b]);
  rep.final_deviation = std::sqrt(dev);
  return rep;
}

}  // namespace qclique
