// Wire codec for the multi-process worker protocol.
//
// ProcessExecutor workers stream one JSON line per finished job back to the
// parent (docs/EXECUTION.md). The payload inside each line is produced and
// consumed by the codecs here: an exact round-trip of BatchResult /
// StreamResult, so a process-mode batch is indistinguishable from an
// in-process one — distances entry-for-entry, ledgers phase-for-phase, and
// doubles bit-for-bit (encoded as raw IEEE-754 bits, never as shortest
// decimal). The reader is strict: it parses only what the encoders write
// and throws SimulationError at the first deviation, so a corrupt or
// truncated pipe payload fails the job loudly instead of half-parsing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "api/batch_runner.hpp"

namespace qclique {

/// Schema version stamped into every payload ("v":2) and every protocol
/// envelope ("exec_proto":2); decoders reject anything else. v2 added the
/// report's `threads` configuration stamp.
inline constexpr int kWireVersion = 2;

/// Strict sequential reader over one wire payload. Methods consume exactly
/// the bytes the encoders emit and throw SimulationError (with byte offset
/// context) on any mismatch.
class WireReader {
 public:
  explicit WireReader(std::string_view text) : text_(text) {}

  /// Consumes `literal` exactly, or throws.
  void expect(std::string_view literal);

  /// Consumes `literal` if present; returns whether it did.
  bool try_consume(std::string_view literal);

  std::uint64_t u64();
  std::int64_t i64();

  /// A double transported as its IEEE-754 bit pattern (decimal u64).
  double f64_bits();

  /// A json_quote'd string (undoes the quoting round-trip exactly).
  std::string str();

  bool at_end() const { return pos_ == text_.size(); }
  std::size_t pos() const { return pos_; }

 private:
  [[noreturn]] void fail(const std::string& what) const;

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Formats a double as its IEEE-754 bit pattern for exact round-trips.
std::string f64_to_bits(double value);

/// One BatchResult as a single-line JSON payload (report inlined with
/// distances when present). job_index travels inside the payload and is
/// validated against the envelope on decode.
std::string encode_batch_result(const BatchResult& result);
BatchResult decode_batch_result(std::string_view payload);

/// One StreamResult as a single-line JSON payload.
std::string encode_stream_result(const StreamResult& result);
StreamResult decode_stream_result(std::string_view payload);

}  // namespace qclique
