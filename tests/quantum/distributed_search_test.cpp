// Tests for the distributed-search cost model wrapper.
#include "quantum/distributed_search.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "congest/network.hpp"

namespace qclique {
namespace {

TEST(DistributedSearch, FindsMarkedElementAndChargesLedger) {
  Rng rng(1);
  RoundLedger ledger;
  const DistributedSearchCost cost{.eval_rounds_per_call = 7,
                                   .compute_uncompute_factor = 2};
  const auto res = distributed_search(128, [](std::size_t x) { return x == 99; },
                                      cost, ledger, "ds", rng);
  ASSERT_TRUE(res.grover.found.has_value());
  EXPECT_EQ(*res.grover.found, 99u);
  EXPECT_EQ(res.rounds_charged, res.grover.oracle_calls * 14);
  EXPECT_EQ(ledger.phase_rounds("ds"), res.rounds_charged);
  EXPECT_EQ(ledger.total_oracle_calls(), res.grover.oracle_calls);
}

TEST(DistributedSearch, NoSolutionConcludesAndStillCharges) {
  Rng rng(2);
  RoundLedger ledger;
  const auto res = distributed_search(64, [](std::size_t) { return false; },
                                      DistributedSearchCost{}, ledger, "ds", rng);
  EXPECT_FALSE(res.grover.found.has_value());
  EXPECT_GT(res.rounds_charged, 0u);
}

TEST(DistributedSearch, KnownMarkedSetOverloadMatchesCostModel) {
  // The analytic fast-path overload must find only marked elements and
  // charge through the same accounting as the oracle form.
  Rng rng(7);
  RoundLedger ledger;
  const DistributedSearchCost cost{.eval_rounds_per_call = 5,
                                   .compute_uncompute_factor = 2};
  const std::vector<std::size_t> marked{17, 80};
  const auto res = distributed_search(128, marked, cost, ledger, "ds", rng);
  ASSERT_TRUE(res.grover.found.has_value());
  EXPECT_TRUE(*res.grover.found == 17u || *res.grover.found == 80u);
  EXPECT_EQ(res.rounds_charged, search_round_cost(cost, res.grover.oracle_calls));
  EXPECT_EQ(ledger.phase_rounds("ds"), res.rounds_charged);
  EXPECT_EQ(ledger.total_oracle_calls(), res.grover.oracle_calls);
}

TEST(DistributedSearch, KnownMarkedSetConcludesNoSolutionAndStillCharges) {
  Rng rng(8);
  RoundLedger ledger;
  const auto res = distributed_search(64, std::vector<std::size_t>{},
                                      DistributedSearchCost{}, ledger, "ds", rng);
  EXPECT_FALSE(res.grover.found.has_value());
  EXPECT_GT(res.rounds_charged, 0u);
  EXPECT_EQ(ledger.phase_rounds("ds"), res.rounds_charged);
}

TEST(DistributedSearch, CostModelArithmetic) {
  const DistributedSearchCost cost{.eval_rounds_per_call = 3,
                                   .compute_uncompute_factor = 2};
  EXPECT_EQ(search_round_cost(cost, 10), 60u);
  EXPECT_EQ(search_round_cost(DistributedSearchCost{}, 5), 10u);
}

TEST(DistributedSearch, QuadraticAdvantageOverBruteForce) {
  // For one marked element in |X| = 4096, the quantum cost must be far
  // below the classical r * |X| brute force.
  Rng rng(3);
  RoundLedger ledger;
  const DistributedSearchCost cost{.eval_rounds_per_call = 1,
                                   .compute_uncompute_factor = 2};
  OnlineStats rounds;
  for (int t = 0; t < 10; ++t) {
    const auto res = distributed_search(4096, [](std::size_t x) { return x == 1; },
                                        cost, ledger, "ds", rng);
    ASSERT_TRUE(res.grover.found.has_value());
    rounds.add(static_cast<double>(res.rounds_charged));
  }
  EXPECT_LT(rounds.mean(), 4096.0 / 2);  // typically ~200
}

TEST(DistributedSearch, NetworkOverloadChargesTheTransportLedger) {
  // The Network& overload and the RoundLedger& overload are the same search:
  // identical outcome and charge for identical RNG streams, with the rounds
  // landing on the transport's ledger.
  const DistributedSearchCost cost{.eval_rounds_per_call = 3,
                                   .compute_uncompute_factor = 2};
  const Oracle oracle = [](std::size_t x) { return x == 5; };

  Rng rng_net(42);
  CliqueNetwork net(4);
  const auto via_net = distributed_search(64, oracle, cost, net, "search", rng_net);

  Rng rng_ledger(42);
  RoundLedger ledger;
  const auto via_ledger =
      distributed_search(64, oracle, cost, ledger, "search", rng_ledger);

  EXPECT_EQ(via_net.rounds_charged, via_ledger.rounds_charged);
  EXPECT_EQ(via_net.grover.oracle_calls, via_ledger.grover.oracle_calls);
  EXPECT_EQ(net.ledger().phase_rounds("search"), via_net.rounds_charged);
  EXPECT_EQ(net.ledger().total_oracle_calls(), via_net.grover.oracle_calls);
}

}  // namespace
}  // namespace qclique
