#include "exec/wire.hpp"

#include <bit>
#include <charconv>
#include <sstream>

#include "common/error.hpp"

namespace qclique {

void WireReader::fail(const std::string& what) const {
  const std::size_t from = pos_ < 24 ? 0 : pos_ - 24;
  throw SimulationError("wire payload: " + what + " at byte " +
                        std::to_string(pos_) + " near '" +
                        std::string(text_.substr(from, 48)) + "'");
}

void WireReader::expect(std::string_view literal) {
  if (!try_consume(literal)) fail("expected '" + std::string(literal) + "'");
}

bool WireReader::try_consume(std::string_view literal) {
  if (text_.substr(pos_, literal.size()) != literal) return false;
  pos_ += literal.size();
  return true;
}

std::uint64_t WireReader::u64() {
  std::uint64_t value = 0;
  const char* first = text_.data() + pos_;
  const char* last = text_.data() + text_.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr == first) fail("expected unsigned integer");
  pos_ += static_cast<std::size_t>(ptr - first);
  return value;
}

std::int64_t WireReader::i64() {
  std::int64_t value = 0;
  const char* first = text_.data() + pos_;
  const char* last = text_.data() + text_.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr == first) fail("expected integer");
  pos_ += static_cast<std::size_t>(ptr - first);
  return value;
}

double WireReader::f64_bits() { return std::bit_cast<double>(u64()); }

std::string WireReader::str() {
  expect("\"");
  std::string out;
  while (pos_ < text_.size()) {
    const char c = text_[pos_++];
    if (c == '"') return out;
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (pos_ >= text_.size()) fail("dangling escape");
    const char esc = text_[pos_++];
    switch (esc) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        // json_quote only emits \u00XX for control bytes.
        if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
        unsigned code = 0;
        const auto [ptr, ec] = std::from_chars(
            text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
        if (ec != std::errc() || ptr != text_.data() + pos_ + 4 || code > 0xff) {
          fail("bad \\u escape");
        }
        pos_ += 4;
        out.push_back(static_cast<char>(code));
        break;
      }
      default: fail("unknown escape");
    }
  }
  fail("unterminated string");
}

std::string f64_to_bits(double value) {
  return std::to_string(std::bit_cast<std::uint64_t>(value));
}

namespace {

void encode_phase_stats_map(std::ostringstream& out, const RoundLedger& ledger) {
  out << "{";
  bool first = true;
  for (const auto& [phase, stats] : ledger.phases()) {
    if (!first) out << ",";
    first = false;
    out << json_quote(phase) << ":{\"rounds\":" << stats.rounds
        << ",\"messages\":" << stats.messages
        << ",\"oracle_calls\":" << stats.quantum_oracle_calls << "}";
  }
  out << "}";
}

RoundLedger decode_ledger(WireReader& r) {
  RoundLedger ledger;
  r.expect("{");
  bool first = true;
  while (!r.try_consume("}")) {
    if (!first) r.expect(",");
    first = false;
    const std::string phase = r.str();
    r.expect(":{\"rounds\":");
    const std::uint64_t rounds = r.u64();
    r.expect(",\"messages\":");
    const std::uint64_t messages = r.u64();
    r.expect(",\"oracle_calls\":");
    const std::uint64_t oracle_calls = r.u64();
    r.expect("}");
    // charge + charge_quantum reproduce the phase entry and keep the
    // ledger's totals equal to the sum over phases, the same invariant the
    // original maintained.
    ledger.charge(phase, rounds, messages);
    if (oracle_calls > 0) ledger.charge_quantum(phase, 0, oracle_calls);
  }
  return ledger;
}

void encode_report(std::ostringstream& out, const ApspReport& report) {
  out << "{\"solver\":" << json_quote(report.solver)
      << ",\"topology\":" << json_quote(report.topology)
      << ",\"kernel\":" << json_quote(report.kernel)
      << ",\"family\":" << json_quote(report.family) << ",\"n\":" << report.n
      << ",\"threads\":" << report.threads << ",\"rounds\":" << report.rounds
      << ",\"wall_ms_bits\":" << f64_to_bits(report.wall_ms) << ",\"metrics\":{";
  bool first = true;
  for (const auto& [key, value] : report.metrics) {
    if (!first) out << ",";
    first = false;
    out << json_quote(key) << ":" << value;
  }
  out << "},\"profile\":{";
  first = true;
  for (const auto& [phase, timing] : report.profile) {
    if (!first) out << ",";
    first = false;
    out << json_quote(phase)
        << ":{\"wall_ms_bits\":" << f64_to_bits(timing.wall_ms)
        << ",\"calls\":" << timing.calls << ",\"messages\":" << timing.messages
        << "}";
  }
  out << "},\"ledger\":";
  encode_phase_stats_map(out, report.ledger);
  out << ",\"distances\":[";
  const std::int64_t* data = report.distances.data();
  const std::size_t entries =
      static_cast<std::size_t>(report.distances.size()) * report.distances.size();
  for (std::size_t k = 0; k < entries; ++k) {
    if (k > 0) out << ",";
    out << data[k];
  }
  out << "]}";
}

ApspReport decode_report(WireReader& r) {
  r.expect("{\"solver\":");
  const std::string solver = r.str();
  r.expect(",\"topology\":");
  const std::string topology = r.str();
  r.expect(",\"kernel\":");
  const std::string kernel = r.str();
  r.expect(",\"family\":");
  const std::string family = r.str();
  r.expect(",\"n\":");
  const std::uint32_t n = static_cast<std::uint32_t>(r.u64());
  QCLIQUE_CHECK(n >= 1, "wire payload: report with n == 0");
  ApspReport report(n);
  report.solver = solver;
  report.topology = topology;
  report.kernel = kernel;
  report.family = family;
  r.expect(",\"threads\":");
  report.threads = static_cast<unsigned>(r.u64());
  r.expect(",\"rounds\":");
  report.rounds = r.u64();
  r.expect(",\"wall_ms_bits\":");
  report.wall_ms = r.f64_bits();
  r.expect(",\"metrics\":{");
  bool first = true;
  while (!r.try_consume("}")) {
    if (!first) r.expect(",");
    first = false;
    const std::string key = r.str();
    r.expect(":");
    report.metrics[key] = r.u64();
  }
  r.expect(",\"profile\":{");
  first = true;
  while (!r.try_consume("}")) {
    if (!first) r.expect(",");
    first = false;
    const std::string phase = r.str();
    r.expect(":{\"wall_ms_bits\":");
    PhaseProfiler::Timing timing;
    timing.wall_ms = r.f64_bits();
    r.expect(",\"calls\":");
    timing.calls = r.u64();
    r.expect(",\"messages\":");
    timing.messages = r.u64();
    r.expect("}");
    report.profile[phase] = timing;
  }
  r.expect(",\"ledger\":");
  report.ledger = decode_ledger(r);
  r.expect(",\"distances\":[");
  const std::size_t entries = static_cast<std::size_t>(n) * n;
  std::int64_t* data = report.distances.data();
  for (std::size_t k = 0; k < entries; ++k) {
    if (k > 0) r.expect(",");
    data[k] = r.i64();
  }
  r.expect("]}");
  return report;
}

}  // namespace

std::string encode_batch_result(const BatchResult& result) {
  std::ostringstream out;
  out << "{\"v\":" << kWireVersion << ",\"job\":" << result.job_index
      << ",\"solver\":" << json_quote(result.solver)
      << ",\"family\":" << json_quote(result.family)
      << ",\"label\":" << json_quote(result.label)
      << ",\"ok\":" << (result.ok ? "true" : "false")
      << ",\"error\":" << json_quote(result.error) << ",\"report\":";
  if (result.report.has_value()) {
    encode_report(out, *result.report);
  } else {
    out << "null";
  }
  out << "}";
  return out.str();
}

BatchResult decode_batch_result(std::string_view payload) {
  WireReader r(payload);
  BatchResult result;
  r.expect("{\"v\":" + std::to_string(kWireVersion) + ",\"job\":");
  result.job_index = r.u64();
  r.expect(",\"solver\":");
  result.solver = r.str();
  r.expect(",\"family\":");
  result.family = r.str();
  r.expect(",\"label\":");
  result.label = r.str();
  r.expect(",\"ok\":");
  result.ok = r.try_consume("true");
  if (!result.ok) r.expect("false");
  r.expect(",\"error\":");
  result.error = r.str();
  r.expect(",\"report\":");
  if (!r.try_consume("null")) result.report = decode_report(r);
  r.expect("}");
  QCLIQUE_CHECK(r.at_end(), "wire payload: trailing bytes after BatchResult");
  return result;
}

std::string encode_stream_result(const StreamResult& result) {
  std::ostringstream out;
  out << "{\"v\":" << kWireVersion << ",\"job\":" << result.job_index
      << ",\"family\":" << json_quote(result.family)
      << ",\"stream\":" << json_quote(result.stream)
      << ",\"solver\":" << json_quote(result.solver)
      << ",\"ok\":" << (result.ok ? "true" : "false")
      << ",\"error\":" << json_quote(result.error) << ",\"n\":" << result.n
      << ",\"batches\":" << result.batches << ",\"updates\":" << result.updates
      << ",\"changed_arcs\":" << result.changed_arcs
      << ",\"affected_sources\":" << result.affected_sources
      << ",\"exact\":" << (result.exact ? "true" : "false")
      << ",\"published_versions\":" << result.published_versions
      << ",\"wall_ms_bits\":" << f64_to_bits(result.wall_ms) << "}";
  return out.str();
}

StreamResult decode_stream_result(std::string_view payload) {
  WireReader r(payload);
  StreamResult result;
  r.expect("{\"v\":" + std::to_string(kWireVersion) + ",\"job\":");
  result.job_index = r.u64();
  r.expect(",\"family\":");
  result.family = r.str();
  r.expect(",\"stream\":");
  result.stream = r.str();
  r.expect(",\"solver\":");
  result.solver = r.str();
  r.expect(",\"ok\":");
  result.ok = r.try_consume("true");
  if (!result.ok) r.expect("false");
  r.expect(",\"error\":");
  result.error = r.str();
  r.expect(",\"n\":");
  result.n = static_cast<std::uint32_t>(r.u64());
  r.expect(",\"batches\":");
  result.batches = r.u64();
  r.expect(",\"updates\":");
  result.updates = r.u64();
  r.expect(",\"changed_arcs\":");
  result.changed_arcs = r.u64();
  r.expect(",\"affected_sources\":");
  result.affected_sources = r.u64();
  r.expect(",\"exact\":");
  result.exact = r.try_consume("true");
  if (!result.exact) r.expect("false");
  r.expect(",\"published_versions\":");
  result.published_versions = r.u64();
  r.expect(",\"wall_ms_bits\":");
  result.wall_ms = r.f64_bits();
  r.expect("}");
  QCLIQUE_CHECK(r.at_end(), "wire payload: trailing bytes after StreamResult");
  return result;
}

}  // namespace qclique
