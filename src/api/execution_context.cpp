#include "api/execution_context.hpp"

#include "serve/snapshot_store.hpp"

namespace qclique {

ExecutionContext::ExecutionContext(std::uint64_t seed)
    : seed_(seed),
      rng_(seed),
      profiler_(std::make_shared<PhaseProfiler>()),
      store_(std::make_shared<SnapshotStore>()) {
  transport_.profiler = profiler_;
}

}  // namespace qclique
