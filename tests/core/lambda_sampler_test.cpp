// Tests for the Lambda_x(u, v) partition procedure (Lemma 2): coverage,
// well-balancedness, and the abort regime under shrunken constants.
#include "core/lambda_sampler.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace qclique {
namespace {

TEST(LambdaSampler, PaperConstantsCapProbabilityAtOne) {
  // 10 log n / sqrt(n) >= 1 for all n <= ~10^6, so every pair is sampled.
  EXPECT_EQ(lambda_sample_probability(256, Constants::paper()), 1.0);
  Partitions parts(64);
  Rng rng(1);
  const auto fam = sample_lambda_family(parts, 0, 0, Constants::paper(), rng);
  const auto all = parts.block_pairs(0, 0);
  for (const auto& set : fam.sets) EXPECT_EQ(set.size(), all.size());
  EXPECT_TRUE(fam.covers);
  EXPECT_TRUE(fam.well_balanced);
}

TEST(LambdaSampler, ScaledConstantsActuallySample) {
  const Constants cst = Constants::scaled(0.05);
  const double p = lambda_sample_probability(256, cst);
  EXPECT_LT(p, 1.0);
  EXPECT_GT(p, 0.0);
  Partitions parts(256);
  Rng rng(2);
  const auto fam = sample_lambda_family(parts, 0, 1, cst, rng);
  const auto all = parts.block_pairs(0, 1);
  // Sampled sets should hold roughly p * |P(u,v)| pairs.
  double mean = 0;
  for (const auto& set : fam.sets) mean += static_cast<double>(set.size());
  mean /= static_cast<double>(fam.sets.size());
  EXPECT_NEAR(mean, p * static_cast<double>(all.size()),
              0.3 * p * static_cast<double>(all.size()) + 3.0);
}

TEST(LambdaSampler, CoverageHoldsAtPaperRates) {
  // Lemma 2(ii): with the paper's sampling rate the union covers P(u, v)
  // with probability 1 - O(1/n). At the capped rate coverage is certain;
  // with scaled constants it holds empirically for most seeds.
  Partitions parts(144);
  int covered = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    Rng rng(100 + t);
    const auto fam =
        sample_lambda_family(parts, 0, 0, Constants::scaled(0.3), rng);
    covered += fam.covers ? 1 : 0;
  }
  EXPECT_GE(covered, trials - 2);
}

TEST(LambdaSampler, WellBalancedAtPaperThreshold) {
  // Lemma 2(i): the row-load threshold 100 n^{1/4} log n is far above the
  // expected load 10 n^{1/4} log n, so imbalance is a tail event.
  Partitions parts(196);
  int balanced = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    Rng rng(t);
    const auto fam = sample_lambda_family(parts, 0, 1, Constants::paper(), rng);
    balanced += fam.well_balanced ? 1 : 0;
  }
  EXPECT_EQ(balanced, trials);
}

TEST(LambdaSampler, TinyBalanceThresholdForcesAbortRegime) {
  // A deliberately absurd threshold makes every family unbalanced -- the
  // failure-injection path ComputePairs handles by aborting.
  Constants cst = Constants::paper();
  cst.balance_threshold = 1e-6;
  Partitions parts(64);
  Rng rng(5);
  const auto fam = sample_lambda_family(parts, 0, 0, cst, rng);
  EXPECT_FALSE(fam.well_balanced);
}

TEST(LambdaSampler, MaxRowLoadReported) {
  Partitions parts(81);
  Rng rng(6);
  const auto fam = sample_lambda_family(parts, 0, 0, Constants::paper(), rng);
  EXPECT_GT(fam.max_row_load, 0u);
  EXPECT_LE(static_cast<double>(fam.max_row_load),
            lambda_balance_threshold(81, Constants::paper()));
}

TEST(LambdaSampler, SetsContainOnlyBlockPairs) {
  Partitions parts(100);
  Rng rng(7);
  const auto fam = sample_lambda_family(parts, 1, 2, Constants::scaled(0.5), rng);
  const auto all = parts.block_pairs(1, 2);
  const std::set<std::pair<std::uint32_t, std::uint32_t>> allowed(all.begin(),
                                                                  all.end());
  for (const auto& set : fam.sets) {
    for (const auto& pr : set) EXPECT_TRUE(allowed.contains(pr));
  }
}

}  // namespace
}  // namespace qclique
