// Tests for lockstep multiple quantum searches and the typicality audit.
#include "quantum/multi_search.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "congest/network.hpp"
#include "quantum/typical_set.hpp"

namespace qclique {
namespace {

SearchInstance inst(std::initializer_list<std::size_t> sols) {
  SearchInstance s;
  s.solutions.assign(sols);
  return s;
}

TEST(MultiSearch, AllSearchesFindTheirSolutions) {
  Rng rng(1);
  RoundLedger ledger;
  std::vector<SearchInstance> searches;
  const std::size_t dim = 64;
  for (std::size_t i = 0; i < 30; ++i) searches.push_back(inst({i, i + 30}));
  const auto res = multi_search(dim, searches, DistributedSearchCost{.eval_rounds_per_call = 3},
                                MultiSearchOptions{}, ledger, "ms", rng);
  EXPECT_EQ(res.num_found(), searches.size());
  for (std::size_t i = 0; i < searches.size(); ++i) {
    ASSERT_TRUE(res.found[i].has_value());
    EXPECT_TRUE(*res.found[i] == i || *res.found[i] == i + 30);
  }
}

TEST(MultiSearch, EmptySearchesConcludeNoSolution) {
  Rng rng(2);
  RoundLedger ledger;
  std::vector<SearchInstance> searches{inst({}), inst({5}), inst({})};
  const auto res = multi_search(16, searches, DistributedSearchCost{},
                                MultiSearchOptions{}, ledger, "ms", rng);
  EXPECT_FALSE(res.found[0].has_value());
  ASSERT_TRUE(res.found[1].has_value());
  EXPECT_EQ(*res.found[1], 5u);
  EXPECT_FALSE(res.found[2].has_value());
}

TEST(MultiSearch, JointCostIndependentOfSearchCount) {
  // The whole point of lockstep parallel searches: 10x more searches must
  // not cost 10x more joint oracle calls. (Schedules are random, so compare
  // with generous slack.)
  Rng rng1(3), rng2(3);
  RoundLedger l1, l2;
  std::vector<SearchInstance> few, many;
  for (std::size_t i = 0; i < 4; ++i) few.push_back(inst({i}));
  for (std::size_t i = 0; i < 40; ++i) many.push_back(inst({i % 16}));
  const auto r1 = multi_search(16, few, DistributedSearchCost{}, MultiSearchOptions{},
                               l1, "ms", rng1);
  const auto r2 = multi_search(16, many, DistributedSearchCost{}, MultiSearchOptions{},
                               l2, "ms", rng2);
  EXPECT_LE(r2.joint_oracle_calls, 4 * (r1.joint_oracle_calls + 8));
}

TEST(MultiSearch, RoundsChargedMatchCostModel) {
  Rng rng(4);
  RoundLedger ledger;
  std::vector<SearchInstance> searches{inst({1})};
  const DistributedSearchCost cost{.eval_rounds_per_call = 5,
                                   .compute_uncompute_factor = 2};
  const auto res = multi_search(32, searches, cost, MultiSearchOptions{}, ledger,
                                "ms", rng);
  EXPECT_EQ(res.rounds_charged, res.joint_oracle_calls * 10);
  EXPECT_EQ(ledger.total_rounds(), res.rounds_charged);
  EXPECT_EQ(ledger.total_oracle_calls(), res.joint_oracle_calls);
}

TEST(MultiSearch, SuccessRateIsHighOverManyRuns) {
  Rng rng(5);
  RoundLedger ledger;
  std::size_t total = 0, found = 0;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<SearchInstance> searches;
    for (std::size_t i = 0; i < 10; ++i) searches.push_back(inst({(i * 7) % 25}));
    const auto res = multi_search(25, searches, DistributedSearchCost{},
                                  MultiSearchOptions{}, ledger, "ms", rng);
    total += searches.size();
    found += res.num_found();
  }
  EXPECT_GE(static_cast<double>(found) / static_cast<double>(total), 0.97);
}

TEST(MultiSearch, TypicalityAuditRunsAndCountsViolations) {
  Rng rng(6);
  RoundLedger ledger;
  // 40 searches over a domain of 4 whose solutions all sit on element 0:
  // as searches converge, sampled tuples concentrate on 0 and must violate
  // a small beta.
  std::vector<SearchInstance> searches;
  for (std::size_t i = 0; i < 40; ++i) searches.push_back(inst({0}));
  MultiSearchOptions opt;
  opt.typicality_beta = 12.0;  // < m would eventually be violated near the end
  opt.audit_samples_per_stage = 8;
  const auto res = multi_search(4, searches, DistributedSearchCost{}, opt, ledger,
                                "ms", rng);
  EXPECT_GT(res.audit_tuples, 0u);
  EXPECT_GT(res.audit_max_frequency, 10u);  // concentration detected
}

TEST(MultiSearch, BalancedSolutionsProduceFewViolations) {
  Rng rng(7);
  RoundLedger ledger;
  // Solutions spread uniformly over the domain: typical tuples stay well
  // below beta = 8 m / |X| (the Theorem 3 threshold).
  const std::size_t dim = 16, m = 64;
  std::vector<SearchInstance> searches;
  for (std::size_t i = 0; i < m; ++i) searches.push_back(inst({i % dim}));
  MultiSearchOptions opt;
  opt.typicality_beta = 8.0 * m / dim;  // = 32
  opt.audit_samples_per_stage = 8;
  const auto res = multi_search(dim, searches, DistributedSearchCost{}, opt, ledger,
                                "ms", rng);
  EXPECT_EQ(res.audit_violations, 0u);
}

TEST(MultiSearch, RejectsUnsortedSolutions) {
  Rng rng(8);
  RoundLedger ledger;
  SearchInstance bad;
  bad.solutions = {5, 2};
  EXPECT_THROW(multi_search(8, {bad}, DistributedSearchCost{}, MultiSearchOptions{},
                            ledger, "ms", rng),
               SimulationError);
}

TEST(MultiSearch, RejectsOutOfDomainSolutions) {
  Rng rng(9);
  RoundLedger ledger;
  SearchInstance bad;
  bad.solutions = {8};
  EXPECT_THROW(multi_search(8, {bad}, DistributedSearchCost{}, MultiSearchOptions{},
                            ledger, "ms", rng),
               SimulationError);
}

TEST(MultiSearch, NetworkOverloadChargesTheTransportLedger) {
  std::vector<SearchInstance> searches{inst({3}), inst({7}), inst({})};
  const DistributedSearchCost cost{.eval_rounds_per_call = 2};

  Rng rng_net(9);
  CliqueNetwork net(4);
  const auto via_net =
      multi_search(16, searches, cost, MultiSearchOptions{}, net, "ms", rng_net);

  Rng rng_ledger(9);
  RoundLedger ledger;
  const auto via_ledger =
      multi_search(16, searches, cost, MultiSearchOptions{}, ledger, "ms", rng_ledger);

  EXPECT_EQ(via_net.rounds_charged, via_ledger.rounds_charged);
  EXPECT_EQ(via_net.joint_oracle_calls, via_ledger.joint_oracle_calls);
  EXPECT_EQ(net.ledger().phase_rounds("ms"), via_net.rounds_charged);
  EXPECT_EQ(net.ledger().total_oracle_calls(), via_net.joint_oracle_calls);
}

TEST(AnalyticProbability, MatchesGroverClosedForm) {
  EXPECT_DOUBLE_EQ(analytic_success_probability(64, 2, 3),
                   grover_success_probability(64, 2, 3));
}

}  // namespace
}  // namespace qclique
