#include "stream/session.hpp"

#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "serve/snapshot_store.hpp"

namespace qclique {

StreamSession::StreamSession(const Digraph& g, ExecutionContext& ctx,
                             StreamSessionOptions options)
    : ctx_(&ctx), options_(std::move(options)) {
  solver_ = make_dynamic_solver(options_.solver, options_.dynamic);
  const auto t0 = std::chrono::steady_clock::now();
  solver_->reset(g, ctx);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  current_ = publish(wall_ms);
}

std::shared_ptr<const ApspSnapshot> StreamSession::apply(
    const UpdateBatch& batch) {
  last_stats_ = solver_->apply(batch, *ctx_);
  ++batches_;
  total_updates_ += last_stats_.updates;
  total_affected_ += last_stats_.affected_sources;
  current_ = publish(last_stats_.wall_ms);
  return current_;
}

std::shared_ptr<const ApspSnapshot> StreamSession::publish(double wall_ms) {
  SnapshotMetadata meta;
  meta.solver = solver_->name();
  meta.topology = ctx_->topology();
  meta.kernel = ctx_->kernel();
  meta.family = ctx_->family();
  meta.label = options_.label;
  meta.n = solver_->graph().size();
  meta.rounds = 0;  // dynamic repair is centralized; no simulated rounds
  meta.solve_wall_ms = wall_ms;
  meta.has_paths = !solver_->successors().empty();
  meta.metrics["batches"] = batches_;
  meta.metrics["updates"] = total_updates_;
  meta.metrics["affected_sources"] = total_affected_;
  meta.metrics["arcs"] = solver_->graph().num_arcs();
  return ctx_->serve().publish(
      ApspSnapshot(solver_->distances(), std::move(meta),
                   solver_->successors()));
}

}  // namespace qclique
