// KernelAutotuner: per-(shape, ISA) winner cache behind the "auto" kernel.
//
// The kernel contract makes every registered kernel interchangeable bit
// for bit, which turns kernel choice into a pure performance decision --
// and the best choice genuinely varies: at tiny n the blocked band wins
// (no thread spawn, no dispatch), at large n the SIMD band wins, and the
// best tile edge and worker count depend on cache sizes and core counts
// the code cannot know statically. The autotuner makes the decision
// empirically, once per (rows, inner, cols, ISA) shape: sweep a small
// candidate grid of kernel x block_size x num_threads, time each candidate
// on the caller's actual buffers, cache the winner, and replay it for
// every later product of that shape.
//
// Determinism: tuning changes which kernel runs, never what it computes --
// the conformance suite pins every candidate to the naive oracle, so the
// "auto" kernel inherits the contract no matter which candidate wins on a
// given host. The winner itself is wall-clock-dependent by design; the
// cache can be persisted to a JSON file (QCLIQUE_AUTOTUNE_CACHE) to make
// it stable across processes on one machine.
//
// Sharing: ExecutionContext owns one KernelAutotuner shared across fork()
// children (like the SnapshotStore, it is internally synchronized), so a
// BatchRunner sweep tunes each shape once for the whole batch, not once
// per worker. Library calls that pass no context fall back to the
// process-wide instance.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "matrix/kernels.hpp"

namespace qclique {

/// One tuned product shape: the rectangular dimensions plus the ISA tier
/// that was active when the sweep ran (a plan tuned for AVX-512 bands is
/// meaningless under a forced-scalar run).
struct TuneShape {
  std::uint32_t rows = 0;
  std::uint32_t inner = 0;
  std::uint32_t cols = 0;
  KernelIsa isa = KernelIsa::scalar;

  friend auto operator<=>(const TuneShape&, const TuneShape&) = default;
};

/// One candidate (and, once swept, the cached winner): a registry kernel
/// name plus the config it is to run with. `best_ms` records the measured
/// time of the winning run (0 when the plan was loaded from a cache file
/// written by a different build -- informational only).
struct TunePlan {
  std::string kernel = "blocked";
  std::uint32_t block_size = 64;
  unsigned num_threads = 1;
  double best_ms = 0.0;

  /// The plan folded into `base`: tuned knobs replace num_threads and
  /// block_size, the caller's pool/tuner wiring survives so delegated
  /// runs execute on the same TaskPool the sweep measured.
  KernelConfig config(const KernelConfig& base = {}) const {
    KernelConfig c = base;
    c.num_threads = num_threads;
    c.block_size = block_size;
    return c;
  }
};

/// Thread-safe (shape, ISA) -> TunePlan cache with optional JSON-file
/// persistence. Measurement is delegated to the caller (the "auto" kernel
/// times real products; tests inject deterministic fake timers).
class KernelAutotuner {
 public:
  /// `cache_path` != "" loads any existing plans from that JSON file now
  /// and rewrites the file after every new sweep.
  explicit KernelAutotuner(std::string cache_path = "");

  KernelAutotuner(const KernelAutotuner&) = delete;
  KernelAutotuner& operator=(const KernelAutotuner&) = delete;

  /// Measures one candidate, returning its wall milliseconds.
  using Measure = std::function<double(const TunePlan&)>;

  /// The cached plan for `shape`, sweeping candidates(shape) through
  /// `measure` on a miss (smallest measured time wins; first in candidate
  /// order on ties, so equal measurements cannot flap the winner). The
  /// sweep runs under the cache lock: concurrent callers of the same shape
  /// block and then read the winner instead of racing duplicate sweeps.
  TunePlan plan_for(const TuneShape& shape, const Measure& measure);

  /// The cached plan, or nullopt without sweeping.
  std::optional<TunePlan> cached(const TuneShape& shape) const;

  /// Injects a plan (tests; warm-start from external knowledge).
  void set_plan(const TuneShape& shape, const TunePlan& plan);

  /// Number of cached plans / completed sweeps (sweeps excludes plans that
  /// arrived via load() or set_plan()).
  std::size_t size() const;
  std::uint64_t sweeps() const;

  void clear();

  /// Persists every cached plan to `path` (the autotuner-cache JSON format
  /// documented in docs/KERNELS.md). Returns false on I/O failure.
  bool save(const std::string& path) const;

  /// Merges plans from `path` into the cache (existing shapes keep their
  /// in-memory plan). Returns false when the file is missing/unparseable;
  /// a missing file is the normal cold-start case, not an error.
  bool load(const std::string& path);

  /// The candidate grid for a shape: "blocked" and "parallel" (scalar
  /// bands), plus "simd" when the shape's tier is a vector tier, crossed
  /// with block sizes {32, 64, 128} and worker counts {1, hardware}.
  /// Candidates never include "auto" (no recursion) or "naive" (strictly
  /// dominated by "blocked").
  static std::vector<TunePlan> candidates(const TuneShape& shape);

  /// The process-wide fallback tuner used when KernelConfig::autotuner is
  /// null; its cache path comes from QCLIQUE_AUTOTUNE_CACHE.
  static KernelAutotuner& process_instance();

 private:
  using Key = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t, int>;
  static Key key_of(const TuneShape& shape);

  bool save_locked(const std::string& path) const;

  mutable std::mutex mu_;
  std::map<Key, TunePlan> plans_;
  std::string cache_path_;
  std::uint64_t sweeps_ = 0;
};

/// The "auto" kernel: resolves a TunePlan for each call's (shape, active
/// ISA) through the KernelConfig's autotuner (process-wide instance when
/// null) and delegates to the winning kernel. Exposed as a factory so
/// register_builtin_kernels can install it without this header leaking
/// the class.
std::unique_ptr<MinPlusKernel> make_auto_kernel();

}  // namespace qclique
