// Negative-triangle census utilities (paper Definition 1).
//
// These are the centralized ground-truth oracles used by tests and by the
// local computations the paper's protocols perform on gathered data:
//   Gamma(u, v)     = #{ w : {u,v,w} is a negative triangle }
//   Delta(u,v; W)   = does some w in W close a negative triangle over {u,v}?
// A triple {u,v,w} is a negative triangle iff all three edges exist and
// f(u,v) + f(u,w) + f(v,w) < 0.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/weighted_graph.hpp"

namespace qclique {

/// True iff {u, v, w} is a negative triangle in g (u, v, w distinct).
bool is_negative_triangle(const WeightedGraph& g, std::uint32_t u, std::uint32_t v,
                          std::uint32_t w);

/// Gamma(u, v): number of vertices w closing a negative triangle over {u,v}.
std::uint32_t gamma(const WeightedGraph& g, std::uint32_t u, std::uint32_t v);

/// Gamma for every pair, as a symmetric n x n count matrix (row-major).
std::vector<std::uint32_t> gamma_all_pairs(const WeightedGraph& g);

/// Ground truth for FindEdges: all pairs {u, v} with Gamma(u, v) > 0,
/// sorted. (Pairs, not only edges: a pair in a negative triangle is an edge
/// by definition.)
std::vector<VertexPair> edges_in_negative_triangles(const WeightedGraph& g);

/// True iff some w in `candidates` closes a negative triangle over {u, v}.
/// This is the predicate each quantum search evaluates (Inequality (2)):
///   min_{w in candidates} { f(u,w) + f(w,v) } <= -f(u,v) - 1, i.e.
///   f(u,v) + f(u,w) + f(w,v) < 0.
bool exists_negative_triangle_via(const WeightedGraph& g, std::uint32_t u,
                                  std::uint32_t v,
                                  const std::vector<std::uint32_t>& candidates);

/// Total number of negative triangles in g (each counted once).
std::uint64_t count_negative_triangles(const WeightedGraph& g);

}  // namespace qclique
