// Experiment E18: dynamic APSP repair vs recompute-from-scratch.
//
// Replays every registered update stream over three graph families and
// races the two registered dynamic solvers on identical batches: the
// "incremental" affected-source repair against the "recompute" oracle that
// re-runs the static backend per batch. Batches are small-update streams
// (batch_size = max(1, n/16)), the regime the incremental solver is built
// for; both solvers maintain witness successors so the comparison covers
// everything a StreamSession would publish.
//
// The incremental replay runs once per entry of the threads axis (default
// 1/2/4; --threads=T pins a single value): one solver instance per T on
// its own TaskPool of that capacity, all fed identical batches in
// lockstep. Distances, witness successors, and the RepairStats counters
// must agree bit-for-bit across the whole axis -- the task pool's
// determinism contract made measurable -- and each T gets its own JSON
// run row.
//
//   usage: bench_dynamic_apsp [n] [json-path] [--threads=T]
//
// Triples as a conformance gate, all misses exit non-zero: (1) after every
// batch every incremental replay must be bit-identical to the recompute
// oracle; (2) at n >= 256 every (family, stream, threads) run repairs
// >= 4x faster than recompute (the bar was 5x against the original
// per-batch recompute; reusing DijkstraWorkspace across sources made the
// oracle ~1.7x faster, so the same incremental wall time now reads as a
// smaller ratio -- the bar is re-anchored, not relaxed); (3) at n >= 256,
// when the axis reaches 4
// threads and the host has >= 4 hardware threads to grant them, the
// 4-thread repair must run >= 2x faster than the 1-thread repair
// (repair_gate_armed in the JSON says whether this armed -- single-core CI
// shards measure it as informational only, like the SIMD gate). The JSON
// artifact (BENCH_dynamic_apsp.json, schema_version 2) is uploaded by CI;
// docs/STREAMING.md documents the schema.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/execution_context.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/task_pool.hpp"
#include "congest/round_ledger.hpp"
#include "graph/families.hpp"
#include "stream/dynamic_solver.hpp"
#include "stream/generators.hpp"

namespace {

/// Same (graph_seed, name) folding as BatchRunner::run_streams, so the
/// bench's inputs line up with what the scenario harness would generate.
std::uint64_t fold_name(std::uint64_t seed, const std::string& name) {
  std::uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (const char ch : name) {
    h = (h ^ static_cast<unsigned char>(ch)) * 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qclique;
  std::vector<unsigned> threads_axis{1, 2, 4};
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      const unsigned t =
          static_cast<unsigned>(std::stoul(arg.substr(sizeof("--threads=") - 1)));
      threads_axis = {std::max(1u, t)};
    } else {
      positional.push_back(arg);
    }
  }
  const std::uint32_t n =
      !positional.empty() ? static_cast<std::uint32_t>(std::stoul(positional[0]))
                          : 256;
  const std::string json_path =
      positional.size() > 1 ? positional[1] : "BENCH_dynamic_apsp.json";
  const std::uint32_t batch_size = std::max<std::uint32_t>(1, n / 16);
  const std::uint32_t num_batches = 8;
  const unsigned t_max = *std::max_element(threads_axis.begin(), threads_axis.end());
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "E18: dynamic APSP repair vs recompute (n = " << n
            << ", batches = " << num_batches << " x " << batch_size
            << ", threads axis =";
  for (const unsigned t : threads_axis) std::cout << " " << t;
  std::cout << ")\n\n";

  const std::vector<std::string> families{"gnp", "power-law", "clustered"};
  const FamilyConfig cfg = family_config(n, 0.3, 1, 9);
  const std::uint64_t graph_seed = 1800 + n;

  // One context per axis entry: its own pool of exactly T participants and
  // num_threads() = T, so the repair's parallel region is granted T slots
  // whatever QCLIQUE_THREADS says. The oracle replays on the 1-thread
  // context -- recompute_ms must not ride the pool being measured.
  std::vector<std::unique_ptr<ExecutionContext>> contexts;
  for (const unsigned t : threads_axis) {
    auto ctx = std::make_unique<ExecutionContext>(23);
    ctx->set_task_pool(std::make_shared<TaskPool>(t));
    ctx->set_num_threads(t);
    contexts.push_back(std::move(ctx));
  }
  ExecutionContext oracle_ctx(23);
  oracle_ctx.set_task_pool(std::make_shared<TaskPool>(1));
  oracle_ctx.set_num_threads(1);
  DynamicSolverOptions options;  // with_paths = true: serve-grade repair

  Table table({"family", "stream", "threads", "updates", "affected", "incr ms",
               "recomp ms", "speedup", "exact"});
  std::ostringstream json;
  json << "{\"bench\":\"dynamic_apsp\",\"schema_version\":2,\"n\":" << n
       << ",\"batches\":" << num_batches << ",\"batch_size\":" << batch_size
       << ",\"threads_axis\":[";
  for (std::size_t i = 0; i < threads_axis.size(); ++i) {
    json << (i ? "," : "") << threads_axis[i];
  }
  json << "],\"runs\":[";
  bool all_exact = true;
  bool first_run = true;
  double min_speedup = -1.0;
  double min_parallel_speedup = -1.0;

  for (const std::string& family : families) {
    Rng grng(fold_name(graph_seed, family));
    const Digraph start = make_family_graph(family, cfg, grng);
    const StreamConfig sc =
        stream_for_family(family, cfg, num_batches, batch_size);
    for (const std::string& stream : UpdateStreamRegistry::instance().names()) {
      Rng srng(fold_name(fold_name(graph_seed, family), stream));
      const auto batches = make_update_stream(stream, start, sc, srng);

      // Lockstep instances: incremental[i] replays on contexts[i]; the
      // recompute oracle replays once alongside them.
      std::vector<std::unique_ptr<DynamicApspSolver>> incremental;
      for (std::size_t i = 0; i < threads_axis.size(); ++i) {
        incremental.push_back(make_dynamic_solver("incremental", options));
        incremental.back()->reset(start, *contexts[i]);
      }
      auto recompute = make_dynamic_solver("recompute", options);
      recompute->reset(start, oracle_ctx);

      std::vector<double> incr_ms(threads_axis.size(), 0.0);
      double recomp_ms = 0.0;
      std::uint64_t updates = 0, affected = 0;
      bool exact = true;
      for (const UpdateBatch& batch : batches) {
        const RepairStats rs = recompute->apply(batch, oracle_ctx);
        recomp_ms += rs.wall_ms;
        RepairStats first_stats;
        for (std::size_t i = 0; i < threads_axis.size(); ++i) {
          const RepairStats is = incremental[i]->apply(batch, *contexts[i]);
          incr_ms[i] += is.wall_ms;
          // Identity across the axis: distances, witnesses, and the
          // deterministic RepairStats counters must not notice the pool.
          exact = exact &&
                  incremental[i]->distances() == recompute->distances();
          if (i == 0) {
            first_stats = is;
            updates += is.updates;
            affected += is.affected_sources;
          } else {
            exact = exact && is.updates == first_stats.updates &&
                    is.changed_arcs == first_stats.changed_arcs &&
                    is.affected_sources == first_stats.affected_sources &&
                    incremental[i]->successors() ==
                        incremental[0]->successors();
          }
        }
      }
      all_exact = all_exact && exact;

      for (std::size_t i = 0; i < threads_axis.size(); ++i) {
        const double speedup = incr_ms[i] > 0.0 ? recomp_ms / incr_ms[i] : 0.0;
        if (min_speedup < 0.0 || speedup < min_speedup) min_speedup = speedup;
        table.add_row({family, stream,
                       Table::fmt(static_cast<std::uint64_t>(threads_axis[i])),
                       Table::fmt(updates), Table::fmt(affected),
                       Table::fmt(incr_ms[i], 2), Table::fmt(recomp_ms, 2),
                       Table::fmt(speedup, 2), exact ? "yes" : "NO"});
        if (!first_run) json << ",";
        first_run = false;
        json << "{\"family\":" << json_quote(family)
             << ",\"stream\":" << json_quote(stream)
             << ",\"threads\":" << threads_axis[i] << ",\"updates\":" << updates
             << ",\"affected_sources\":" << affected
             << ",\"incremental_ms\":" << incr_ms[i]
             << ",\"recompute_ms\":" << recomp_ms << ",\"speedup\":"
             << (incr_ms[i] > 0.0 ? recomp_ms / incr_ms[i] : 0.0)
             << ",\"exact\":" << (exact ? "true" : "false") << "}";
      }
      if (threads_axis.size() > 1 && incr_ms.back() > 0.0) {
        const double parallel = incr_ms.front() / incr_ms.back();
        if (min_parallel_speedup < 0.0 || parallel < min_parallel_speedup) {
          min_parallel_speedup = parallel;
        }
      }
    }
  }

  // The parallel gate arms only where it can physically pass: a 4-wide
  // axis with >= 4 hardware threads behind it (mirrors the SIMD gate's
  // host-capability disarm). Elsewhere the measurement is informational.
  const bool gate_armed = n >= 256 && t_max >= 4 && hw >= 4 &&
                          threads_axis.size() > 1;
  json << "],\"min_speedup\":" << min_speedup
       << ",\"parallel_repair_speedup\":" << min_parallel_speedup
       << ",\"repair_gate_armed\":" << (gate_armed ? "true" : "false")
       << ",\"all_exact\":" << (all_exact ? "true" : "false") << "}";

  table.print("Dynamic APSP: incremental repair vs per-batch recompute");

  std::ofstream out(json_path);
  out << json.str() << "\n";
  out.close();
  std::cout << "\nwrote " << json_path << "\n";
  std::cout << "incremental exact vs recompute (and across the threads axis) "
               "after every batch: "
            << (all_exact ? "yes" : "NO") << "\n";

  bool gate_ok = true;
  if (n >= 256) {
    gate_ok = min_speedup >= 4.0;
    std::cout << "small-batch repair gate: min speedup "
              << Table::fmt(min_speedup, 2)
              << "x (target 4x): " << (gate_ok ? "PASS" : "FAIL") << "\n";
  }
  if (min_parallel_speedup >= 0.0) {
    std::cout << "parallel repair " << threads_axis.front() << "t -> " << t_max
              << "t: min " << Table::fmt(min_parallel_speedup, 2) << "x";
    if (gate_armed) {
      const bool parallel_ok = min_parallel_speedup >= 2.0;
      gate_ok = gate_ok && parallel_ok;
      std::cout << " (target 2x): " << (parallel_ok ? "PASS" : "FAIL") << "\n";
    } else {
      std::cout << " (gate disarmed: n < 256, axis < 4t, or hw "
                << hw << " < 4 threads)\n";
    }
  }
  return all_exact && gate_ok ? 0 : 1;
}
