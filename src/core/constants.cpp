#include "core/constants.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qclique {

Constants Constants::scaled(double f) {
  QCLIQUE_CHECK(f > 0, "Constants::scaled requires a positive factor");
  Constants c;
  const auto s = [f](double v) { return std::max(v * f, 0.25); };
  c.lambda_sample = s(c.lambda_sample);
  c.balance_threshold = s(c.balance_threshold);
  c.promise = s(c.promise);
  c.prop1_sample = s(c.prop1_sample);
  c.identify_sample = s(c.identify_sample);
  c.identify_abort = s(c.identify_abort);
  c.identify_class_base = s(c.identify_class_base);
  c.eval_load = s(c.eval_load);
  c.class_size = s(c.class_size);
  return c;
}

}  // namespace qclique
