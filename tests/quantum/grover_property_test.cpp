// Property tests of Grover dynamics on the exact state vector: rotation
// periodicity, unitarity, the two-dimensional invariant subspace, and the
// overshoot behavior the BBHT driver must tolerate.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "quantum/grover.hpp"
#include "quantum/statevector.hpp"

namespace qclique {
namespace {

struct GroverCase {
  std::size_t dim;
  std::size_t solutions;
};

class GroverDynamics : public ::testing::TestWithParam<GroverCase> {};

TEST_P(GroverDynamics, UnitarityAcrossManyIterations) {
  const auto& tc = GetParam();
  StateVector psi = StateVector::uniform(tc.dim);
  const auto oracle = [&](std::size_t i) { return i < tc.solutions; };
  for (int k = 0; k < 50; ++k) {
    psi.apply_grover_iteration(oracle);
    ASSERT_NEAR(psi.norm_sq(), 1.0, 1e-9) << "k=" << k;
  }
}

TEST_P(GroverDynamics, TwoDimensionalInvariantSubspace) {
  // Amplitudes stay uniform within the marked class and within the
  // unmarked class at every step.
  const auto& tc = GetParam();
  if (tc.solutions == 0 || tc.solutions >= tc.dim) GTEST_SKIP();
  StateVector psi = StateVector::uniform(tc.dim);
  const auto oracle = [&](std::size_t i) { return i < tc.solutions; };
  for (int k = 0; k < 12; ++k) {
    psi.apply_grover_iteration(oracle);
    const auto a0 = psi.amp(0);                  // marked representative
    const auto b0 = psi.amp(tc.dim - 1);         // unmarked representative
    for (std::size_t i = 0; i < tc.dim; ++i) {
      const auto want = oracle(i) ? a0 : b0;
      ASSERT_NEAR(std::abs(psi.amp(i) - want), 0.0, 1e-9) << "k=" << k << " i=" << i;
    }
  }
}

TEST_P(GroverDynamics, SinusoidWithTheRightPeriod) {
  // p(k) = sin^2((2k+1) theta): the half-period in k is pi / (2 theta).
  const auto& tc = GetParam();
  if (tc.solutions == 0 || 2 * tc.solutions >= tc.dim) GTEST_SKIP();
  const double theta = std::asin(
      std::sqrt(static_cast<double>(tc.solutions) / static_cast<double>(tc.dim)));
  const std::uint64_t half_period =
      static_cast<std::uint64_t>(std::round(M_PI / (2.0 * theta)));
  if (half_period < 3) GTEST_SKIP();
  const double p0 = grover_success_probability(tc.dim, tc.solutions, 1);
  const double p1 = grover_success_probability(tc.dim, tc.solutions, 1 + half_period);
  EXPECT_NEAR(p0, p1, 0.12);  // discrete period rounding allows slack
}

TEST_P(GroverDynamics, OvershootDecreasesSuccess) {
  // Past the optimal k the success probability falls -- the reason a wrong
  // iteration count (and hence BBHT's randomization) matters.
  const auto& tc = GetParam();
  if (tc.solutions == 0 || 8 * tc.solutions >= tc.dim) GTEST_SKIP();
  const std::uint64_t k = grover_optimal_iterations(tc.dim, tc.solutions);
  const double at_opt = grover_success_probability(tc.dim, tc.solutions, k);
  const double past = grover_success_probability(tc.dim, tc.solutions, 2 * k + 1);
  EXPECT_GT(at_opt, 0.8);
  EXPECT_LT(past, at_opt);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GroverDynamics,
                         ::testing::Values(GroverCase{16, 1}, GroverCase{64, 1},
                                           GroverCase{64, 3}, GroverCase{128, 2},
                                           GroverCase{256, 1}, GroverCase{256, 8},
                                           GroverCase{37, 5}, GroverCase{100, 10}));

TEST(GroverProperties, DiffusionPreservesUniformOnAnyDim) {
  for (std::size_t dim : {2u, 3u, 17u, 100u}) {
    StateVector s = StateVector::uniform(dim);
    StateVector before = s;
    s.apply_diffusion();
    EXPECT_NEAR(s.l2_distance(before), 0.0, 1e-12) << dim;
  }
}

TEST(GroverProperties, AllMarkedIsFixedPointOfIteration) {
  // With everything marked, O = -I and D restores: G|u> = |u> up to phase;
  // probabilities never change.
  StateVector s = StateVector::uniform(32);
  const auto oracle = [](std::size_t) { return true; };
  for (int k = 0; k < 5; ++k) {
    s.apply_grover_iteration(oracle);
    for (std::size_t i = 0; i < 32; ++i) ASSERT_NEAR(s.probability(i), 1.0 / 32, 1e-12);
  }
}

}  // namespace
}  // namespace qclique
