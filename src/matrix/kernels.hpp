// The min-plus kernel engine: pluggable distance-product implementations.
//
// Every layer of the reproduction -- the centralized oracles, the repeated
// squaring of Proposition 3, the semiring baseline's local block products,
// and the triangle-reduction pruning -- bottoms out in the same dense
// computation C[i][j] = min_k { A[i][k] + B[k][j] }. This file makes that
// computation a first-class registry axis, mirroring SolverRegistry (which
// backend) and TopologyRegistry (which communication model): harnesses pick
// a kernel by name and sweep kernels the same way they sweep backends and
// topologies. Built-ins:
//
//   * "naive"    -- the seed triple loop, kept verbatim as the conformance
//                   oracle (index arithmetic, out-of-line sat_add);
//   * "blocked"  -- cache-tiled i/k/j with a tunable block size, row-pointer
//                   access, and an inlined saturating add;
//   * "parallel" -- the blocked kernel sharded over row bands on the
//                   persistent TaskPool (the BatchRunner worker-count
//                   convention: 0 = one per hardware thread, via
//                   QCLIQUE_THREADS / hardware_concurrency);
//   * "simd"     -- hand-vectorized AVX2 / AVX-512 / NEON clean-tile loops
//                   behind a runtime CPU-feature dispatcher (KernelIsa;
//                   QCLIQUE_KERNEL_ISA forces a tier), sharded over row
//                   bands exactly like "parallel";
//   * "auto"     -- per-(shape, ISA) autotuned delegation: sweeps kernel x
//                   block size x threads once per shape, caches the winner
//                   (matrix/autotuner.hpp), and runs it.
//
// The kernel contract (docs/KERNELS.md, enforced by
// tests/matrix/kernel_conformance_test.cpp): every kernel produces results
// bit-for-bit identical to "naive" -- distances *and* witnesses -- on any
// input, including the +-inf sentinels, for every block size and every
// thread count. Each output row depends only on row i of A and all of B,
// which is what makes row-band sharding deterministic.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "matrix/dist_matrix.hpp"

namespace qclique {

class KernelAutotuner;
class TaskPool;

/// The instruction-set tiers the "simd" kernel dispatches over. "scalar"
/// is the portable blocked band and is always available; the vector tiers
/// require both compile-time toolchain support (their TUs are built with
/// per-ISA flags -- see CMakeLists.txt) and runtime CPU support.
enum class KernelIsa { scalar, avx2, avx512, neon };

/// Environment variable overriding runtime ISA dispatch ("scalar", "avx2",
/// "avx512", "neon"). Forcing an unavailable tier throws, so misconfigured
/// CI fails loudly instead of silently benchmarking the wrong tier.
inline constexpr const char* kKernelIsaEnv = "QCLIQUE_KERNEL_ISA";

/// Registry-style name of a tier ("scalar", "avx2", "avx512", "neon").
std::string kernel_isa_name(KernelIsa isa);

/// Parses a tier name; throws SimulationError naming the known tiers.
KernelIsa parse_kernel_isa(const std::string& name);

/// Whether the tier's translation unit was built with its vector
/// instructions enabled (compile-time half of dispatch).
bool kernel_isa_compiled(KernelIsa isa);

/// Whether the tier can run here: compiled in *and* the CPU reports the
/// feature at runtime. "scalar" is always available.
bool kernel_isa_available(KernelIsa isa);

/// The widest available tier (avx512 > avx2 > neon > scalar).
KernelIsa best_kernel_isa();

/// The tier the "simd" kernel will use right now: the QCLIQUE_KERNEL_ISA
/// override when set (throws SimulationError if that tier is unavailable
/// on this host), otherwise best_kernel_isa(). Read per product call, so
/// tests can force tiers between runs.
KernelIsa active_kernel_isa();

/// Per-call tuning knobs. Kernels ignore knobs they have no use for (the
/// naive oracle ignores all of them).
struct KernelConfig {
  /// Worker threads for multithreaded kernels. 0 = one per hardware thread
  /// (the BatchRunner convention). Results never depend on this value.
  unsigned num_threads = 0;
  /// Cache tile edge for blocked kernels (rows/inner/cols per tile).
  /// Results never depend on this value.
  std::uint32_t block_size = 64;
  /// Winner cache the "auto" kernel consults (null = the process-wide
  /// KernelAutotuner). ExecutionContext points this at its own fork-shared
  /// tuner; other kernels ignore it. Results never depend on this value.
  KernelAutotuner* autotuner = nullptr;
  /// Worker pool multithreaded kernels shard row bands onto (null = the
  /// process-wide TaskPool::instance()). ExecutionContext points this at
  /// its own fork-shared pool. Results never depend on this value.
  TaskPool* task_pool = nullptr;
};

/// Sentinel witness value for entries with no finite product (+inf).
inline constexpr std::uint32_t kNoWitness = 0xffffffffu;

/// One distance-product implementation. Kernels are stateless: all per-call
/// state lives in the arguments, so one instance may serve concurrent runs.
class MinPlusKernel {
 public:
  virtual ~MinPlusKernel() = default;

  /// Registry key, e.g. "blocked".
  virtual std::string name() const = 0;

  /// One-line human description (shown by harness listings).
  virtual std::string description() const = 0;

  /// C = A (x) B over square matrices. When `witness` is non-null it is
  /// resized to n*n and filled with the smallest k attaining each minimum
  /// (kNoWitness where C[i][j] = +inf) -- the witness computation is an
  /// optional kernel output, not a separate implementation.
  DistMatrix product(const DistMatrix& a, const DistMatrix& b,
                     const KernelConfig& config = {},
                     std::vector<std::uint32_t>* witness = nullptr) const;

  /// Rectangular raw-buffer form used by block-level consumers (the
  /// semiring baseline's cube-cell partials, tri_tri_again's local views):
  ///   c[i*cols + j] = min_k { a[i*inner + k] + b[k*cols + j] }
  /// for i in [0, rows), k in [0, inner), j in [0, cols). Buffers are
  /// row-major; `a` and `b` are read-only and may alias each other (a
  /// min-plus square passes the same buffer twice), but `c` must not
  /// alias either input. `c` (rows*cols) is fully overwritten, as is
  /// `witness` (rows*cols, may be null). Saturating +-inf semantics match
  /// sat_add exactly.
  virtual void run(const std::int64_t* a, const std::int64_t* b, std::int64_t* c,
                   std::uint32_t rows, std::uint32_t inner, std::uint32_t cols,
                   const KernelConfig& config,
                   std::uint32_t* witness) const = 0;
};

/// Name -> kernel registry, the third registry alongside SolverRegistry and
/// TopologyRegistry. Registration is mutex-guarded; lookups return stable
/// references valid for the registry's lifetime and are safe from
/// concurrent BatchRunner workers after setup.
class KernelRegistry {
 public:
  /// The process-wide registry, with all built-in kernels registered.
  static KernelRegistry& instance();

  /// An empty registry (tests; embedding independent registries).
  KernelRegistry() = default;

  KernelRegistry(const KernelRegistry&) = delete;
  KernelRegistry& operator=(const KernelRegistry&) = delete;

  /// Registers a kernel under kernel->name(). Throws SimulationError on a
  /// duplicate name or a null/empty-named kernel.
  void add(std::unique_ptr<MinPlusKernel> kernel);

  bool contains(const std::string& name) const;

  /// Looks up a kernel; throws SimulationError naming the known kernels
  /// when `name` is not registered.
  const MinPlusKernel& get(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<MinPlusKernel>> kernels_;  // sorted by name
};

/// Registers the built-in kernels ("naive", "blocked", "parallel", "simd",
/// "auto"). Called once by KernelRegistry::instance(); exposed so tests
/// can build private registries with the same population.
void register_builtin_kernels(KernelRegistry& registry);

/// Selection of a kernel by registry name plus its per-call config -- the
/// knob harnesses put on an ExecutionContext and thread through the
/// consumer entry points. Defaults to the production kernel; the results
/// are identical to "naive" by the kernel contract.
struct KernelOptions {
  std::string name = "blocked";
  KernelConfig config;

  /// Resolves through the process-wide registry (throws on unknown names).
  const MinPlusKernel& resolve() const { return KernelRegistry::instance().get(name); }
};

/// Convenience: A (x) B through the selected kernel.
DistMatrix min_plus_product(const DistMatrix& a, const DistMatrix& b,
                            const KernelOptions& options = {});

}  // namespace qclique
