// Tests for Lemma 1 routing: the charged cost model and the genuine stepped
// two-phase implementation, including adversarial load patterns.
#include "congest/lenzen.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "congest/network.hpp"

namespace qclique {
namespace {

std::vector<Message> all_to_one(std::uint32_t n, NodeId dst) {
  std::vector<Message> batch;
  for (NodeId v = 0; v < n; ++v) {
    if (v == dst) continue;
    batch.push_back(Message{v, dst, Payload::make(1, {v})});
  }
  return batch;
}

TEST(Route, WithinLemma1BoundChargesTwoRounds) {
  CliqueNetwork net(16);
  // Each node sends one message to node (v+1) mod n: loads are 1 <= n.
  std::vector<Message> batch;
  for (NodeId v = 0; v < 16; ++v) {
    batch.push_back(Message{v, static_cast<NodeId>((v + 1) % 16), Payload::make(0, {v})});
  }
  const RouteStats st = route(net, batch, "r");
  EXPECT_EQ(st.rounds, 2u);
  EXPECT_EQ(st.max_source_load, 1u);
  EXPECT_EQ(st.max_dest_load, 1u);
  EXPECT_EQ(net.ledger().phase_rounds("r"), 2u);
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(net.inbox(v).size(), 1u);
}

TEST(Route, FullSaturationStillTwoRounds) {
  // Every node sends n messages (one to each node incl. spread): load = n.
  const std::uint32_t n = 8;
  CliqueNetwork net(n);
  std::vector<Message> batch;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v) continue;
      batch.push_back(Message{u, v, Payload::make(0, {u, v})});
    }
  }
  const RouteStats st = route(net, batch, "r");
  EXPECT_EQ(st.rounds, 2u);  // load n-1 <= n -> one Lemma 1 batch
}

TEST(Route, OverloadedBatchChargesProportionally) {
  // One destination sinks 3n messages -> 3 Lemma 1 batches -> 6 rounds.
  const std::uint32_t n = 8;
  CliqueNetwork net(n);
  std::vector<Message> batch;
  for (int rep = 0; rep < 3; ++rep) {
    for (NodeId v = 1; v < n; ++v) {
      batch.push_back(Message{v, 0, Payload::make(0, {rep})});
    }
    // Pad so dest load is exactly 3n: add self-free fill from node 1.
  }
  for (std::uint64_t i = batch.size(); i < 3 * n; ++i) {
    batch.push_back(Message{1, 0, Payload::make(0, {0})});
  }
  const RouteStats st = route(net, batch, "r");
  EXPECT_EQ(st.max_dest_load, 3u * n);
  EXPECT_EQ(st.rounds, 6u);
}

TEST(Route, EmptyBatchIsFree) {
  CliqueNetwork net(4);
  const RouteStats st = route(net, std::vector<Message>{}, "r");
  EXPECT_EQ(st.rounds, 0u);
  EXPECT_EQ(net.ledger().total_rounds(), 0u);
}

TEST(Route, RejectsOversizedPayload) {
  CliqueNetwork net(4, NetworkConfig{.fields_per_message = 2});
  std::vector<Message> batch{Message{0, 1, Payload::make(0, {1, 2, 3})}};
  EXPECT_THROW(route(net, batch, "r"), SimulationError);
}

TEST(RouteTwoPhase, DeliversAllMessagesIntact) {
  const std::uint32_t n = 16;
  CliqueNetwork net(n);
  Rng rng(42);
  std::vector<Message> batch;
  for (NodeId v = 0; v < n; ++v) {
    for (int j = 0; j < 3; ++j) {
      const NodeId dst = static_cast<NodeId>(rng.uniform_u64(n));
      batch.push_back(Message{v, dst, Payload::make(9, {v, j})});
    }
  }
  const RouteStats st = route_two_phase(net, batch, rng, "r2");
  EXPECT_EQ(st.messages, batch.size());

  // Every (src, j) pair must arrive at its destination exactly once.
  std::map<std::pair<std::int64_t, std::int64_t>, int> want, got;
  for (const auto& m : batch) ++want[{m.payload.at(0), m.payload.at(1)}];
  for (NodeId v = 0; v < n; ++v) {
    for (const auto& m : net.inbox(v)) {
      ASSERT_EQ(m.payload.tag, 9u);
      ++got[{m.payload.at(0), m.payload.at(1)}];
    }
  }
  EXPECT_EQ(want, got);
}

TEST(RouteTwoPhase, MeasuredRoundsAreSmallForBalancedLoad) {
  const std::uint32_t n = 32;
  CliqueNetwork net(n);
  Rng rng(7);
  // Balanced permutation-like load: every node sends n/2 messages to random
  // destinations. Expected measured rounds: O(log n / log log n), and far
  // below the serial bound of n/2.
  std::vector<Message> batch;
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t j = 0; j < n / 2; ++j) {
      const NodeId dst = static_cast<NodeId>(rng.uniform_u64(n));
      batch.push_back(Message{v, dst, Payload::make(0, {v})});
    }
  }
  const RouteStats st = route_two_phase(net, batch, rng, "r2");
  EXPECT_LE(st.rounds, 24u);  // generous; typical is ~6-10
  EXPECT_GE(st.rounds, 2u);
}

TEST(RouteTwoPhase, AdversarialSingleDestination) {
  // All nodes target node 0. Dest load = n-1 <= n, so Lemma 1 would charge 2;
  // the naive two-phase scheme measures more than 2 but stays near-constant.
  const std::uint32_t n = 32;
  CliqueNetwork net(n);
  Rng rng(3);
  const RouteStats st = route_two_phase(net, all_to_one(n, 0), rng, "r2");
  EXPECT_EQ(net.inbox(0).size(), static_cast<std::size_t>(n - 1));
  EXPECT_LE(st.rounds, 16u);
}

TEST(RouteTwoPhase, HeaderRoomEnforced) {
  CliqueNetwork net(4, NetworkConfig{.fields_per_message = 2});
  Rng rng(1);
  // Payload of 2 fields + 1 header exceeds budget 2.
  std::vector<Message> batch{Message{0, 1, Payload::make(0, {1, 2})}};
  EXPECT_THROW(route_two_phase(net, batch, rng, "r2"), SimulationError);
}

}  // namespace
}  // namespace qclique
