// StreamSession: the update-stream -> serving-layer bridge.
//
// The serve layer (serve/snapshot_store.hpp) already gives a changed graph
// somewhere to go: a new immutable ApspSnapshot version behind an atomic
// swap. StreamSession closes the loop. Construct it over a starting graph
// and it solves + publishes version 1 into the context's SnapshotStore;
// every apply(batch) repairs the dynamic solver's state and publishes the
// next version. The serving concurrency story needs nothing new:
//
//   * readers pinned on version v (SnapshotPin, QueryServer::Session
//     pins) keep answering bit-identically against v however many batches
//     land behind them;
//   * fresh sessions -- and pins that refresh() -- see the latest applied
//     batch;
//   * the QueryServer path cache keys on (version, u, v), so entries
//     computed against superseded versions can never answer queries for
//     new ones: republish IS the invalidation.
//
// One StreamSession owns one dynamic solver instance and is single-writer:
// apply() calls must be externally serialized (they mutate solver state).
// Publishing is wait-free for readers, so any number of QueryServer
// sessions can run against the store concurrently with the writer.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "api/execution_context.hpp"
#include "serve/snapshot.hpp"
#include "stream/dynamic_solver.hpp"
#include "stream/update.hpp"

namespace qclique {

struct StreamSessionOptions {
  /// Dynamic solver kind (DynamicSolverRegistry key).
  std::string solver = "incremental";
  /// Knobs for the created solver instance. with_paths = true keeps served
  /// snapshots able to answer path queries across republishes.
  DynamicSolverOptions dynamic;
  /// Free-form tag stamped into every published snapshot's metadata.
  std::string label;
};

class StreamSession {
 public:
  /// Solves `g` from scratch through the configured dynamic solver and
  /// publishes the initial snapshot into ctx.serve(). The context must
  /// outlive the session.
  StreamSession(const Digraph& g, ExecutionContext& ctx,
                StreamSessionOptions options = {});

  /// Applies one batch: repairs distances / successors and publishes the
  /// result as the store's next version. Returns the published pin (its
  /// metadata carries the new version). Throws SimulationError (nothing
  /// published, solver state unchanged) on invalid updates.
  std::shared_ptr<const ApspSnapshot> apply(const UpdateBatch& batch);

  /// The session's dynamic solver state (current graph / distances).
  const DynamicApspSolver& solver() const { return *solver_; }

  /// The pin of the most recent publish (never null after construction).
  const std::shared_ptr<const ApspSnapshot>& current() const {
    return current_;
  }

  /// Batches applied so far (not counting the initial solve).
  std::uint64_t batches_applied() const { return batches_; }

  /// Stats of the most recent apply(); zeros before the first.
  const RepairStats& last_stats() const { return last_stats_; }

 private:
  std::shared_ptr<const ApspSnapshot> publish(double wall_ms);

  ExecutionContext* ctx_;
  StreamSessionOptions options_;
  std::unique_ptr<DynamicApspSolver> solver_;
  std::shared_ptr<const ApspSnapshot> current_;
  RepairStats last_stats_;
  std::uint64_t batches_ = 0;
  std::uint64_t total_updates_ = 0;
  std::uint64_t total_affected_ = 0;
};

}  // namespace qclique
