// Multi-threaded serving stress: concurrent readers vs a republishing
// writer, every answer verified for internal consistency against the
// reader's own pin. Runs under TSan in CI (zero locks on the distance
// read path is a correctness claim, not just a perf one).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "api/registry.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/paths.hpp"
#include "graph/families.hpp"
#include "serve/query_server.hpp"
#include "serve/snapshot.hpp"
#include "serve/snapshot_store.hpp"
#include "serve/workload.hpp"
#include "stream/generators.hpp"
#include "stream/session.hpp"

namespace qclique {
namespace {

/// One publishable source: the solved report plus its witness matrix,
/// so the publisher can mint fresh ApspSnapshot copies cheaply.
struct Source {
  Digraph graph;
  ApspReport report;
  std::vector<std::uint32_t> successor;
  std::string label;
};

Source make_source(std::uint64_t graph_seed, std::string label,
                   std::uint32_t n = 24) {
  Rng rng(graph_seed);
  Digraph graph = make_family_graph("gnp", family_config(n, 0.4, 1, 9), rng);
  ExecutionContext ctx(graph_seed * 31 + 7);
  ctx.set_family("gnp");
  ApspReport report =
      SolverRegistry::instance().get("floyd-warshall").solve(graph, ctx);
  std::vector<std::uint32_t> successor =
      build_successors(graph, report.distances).successor;
  return Source{std::move(graph), std::move(report), std::move(successor),
                std::move(label)};
}

TEST(ServeStress, ReadersStayConsistentAcrossRepublishes) {
  const Source g0 = make_source(1, "g0");
  const Source g1 = make_source(2, "g1");
  const std::map<std::string, const Digraph*> graphs{{"g0", &g0.graph},
                                                     {"g1", &g1.graph}};
  const std::uint32_t n = g0.graph.size();

  SnapshotStore store;
  store.publish(ApspSnapshot(g0.report, g0.successor, g0.label));
  QueryServer server(store);

  constexpr int kPublishes = 40;
  constexpr int kReaders = 4;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> issued_distance{0};
  std::atomic<std::uint64_t> issued_batch{0};
  std::atomic<std::uint64_t> issued_path{0};

  std::thread publisher([&] {
    for (int i = 0; i < kPublishes; ++i) {
      const Source& src = (i % 2 == 0) ? g1 : g0;
      store.publish(ApspSnapshot(src.report, src.successor, src.label));
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      auto session = server.session();
      Rng rng(1000 + r);
      WorkloadOptions wo;
      wo.n = n;
      wo.count = 64;
      wo.mix = QueryMix::kUniform;
      std::uint64_t iter = 0;
      // Keep querying until the publisher is done, then take one final
      // pass that must observe the final version.
      while (!done.load(std::memory_order_acquire) || iter == 0) {
        const std::vector<PairQuery> qs = make_workload(wo, rng);
        switch (iter++ % 3) {
          case 0: {
            for (const PairQuery& q : qs) {
              const std::int64_t d = session.distance(q.u, q.v);
              // The pin the query answered against is still the pin now:
              // only queries move it, and this thread owns the session.
              ASSERT_EQ(d, session.pinned()->distance(q.u, q.v));
            }
            issued_distance.fetch_add(qs.size(), std::memory_order_relaxed);
            break;
          }
          case 1: {
            const std::vector<std::int64_t> out = session.distance_batch(qs);
            const ApspSnapshot* pin = session.pinned();
            for (std::size_t i = 0; i < qs.size(); ++i) {
              ASSERT_EQ(out[i], pin->distance(qs[i].u, qs[i].v));
            }
            issued_batch.fetch_add(qs.size(), std::memory_order_relaxed);
            break;
          }
          default: {
            for (const PairQuery& q : qs) {
              const PathAnswer a = session.path(q.u, q.v);
              const ApspSnapshot* pin = session.pinned();
              ASSERT_EQ(a.distance, pin->distance(q.u, q.v));
              // Re-cost the walk against the graph the pinned snapshot
              // was solved from (label identifies it).
              const Digraph& g = *graphs.at(pin->metadata().label);
              if (q.u == q.v || is_plus_inf(a.distance)) continue;
              ASSERT_GE(a.nodes.size(), 2u);
              std::int64_t cost = 0;
              for (std::size_t i = 0; i + 1 < a.nodes.size(); ++i) {
                ASSERT_TRUE(g.has_arc(a.nodes[i], a.nodes[i + 1]));
                cost += g.weight(a.nodes[i], a.nodes[i + 1]);
              }
              ASSERT_EQ(cost, a.distance);
            }
            issued_path.fetch_add(qs.size(), std::memory_order_relaxed);
            break;
          }
        }
      }
      // The publisher has finished: the next query must pin the final
      // published version.
      (void)session.distance(0, 1);
      ASSERT_EQ(session.pinned()->version(), store.version());
    });
  }

  publisher.join();
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(store.version(), static_cast<std::uint64_t>(kPublishes) + 1);
  ASSERT_NE(store.current(), nullptr);
  EXPECT_EQ(store.current()->version(), store.version());

  // Every session flushed on destruction: the server totals must account
  // for exactly the queries the readers issued.
  const QueryServerStats stats = server.stats();
  EXPECT_EQ(stats.distance_queries,
            issued_distance.load() + kReaders);  // + final per-reader query
  EXPECT_EQ(stats.batch_entries, issued_batch.load());
  EXPECT_EQ(stats.path_queries, issued_path.load());
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.path_queries);
  EXPECT_GE(stats.repins, static_cast<std::uint64_t>(kReaders));
}

TEST(ServeStress, ConcurrentPublishersKeepVersionsMonotoneAndUnique) {
  const Source src = make_source(3, "pub", 12);
  SnapshotStore store;

  constexpr int kThreads = 4;
  constexpr int kPerThread = 10;
  std::vector<std::vector<std::uint64_t>> seen(kThreads);
  std::vector<std::thread> publishers;
  for (int t = 0; t < kThreads; ++t) {
    publishers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto pin =
            store.publish(ApspSnapshot(src.report, src.successor, src.label));
        seen[t].push_back(pin->version());
        // The visible snapshot never regresses below what this publisher
        // just installed.
        const auto current = store.current();
        ASSERT_NE(current, nullptr);
        ASSERT_GE(current->version(), pin->version());
      }
    });
  }
  for (auto& t : publishers) t.join();

  std::vector<std::uint64_t> all;
  for (const auto& s : seen) all.insert(all.end(), s.begin(), s.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], i + 1);  // versions are exactly 1..40, no gaps, no dups
  }
  EXPECT_EQ(store.version(), all.size());
  EXPECT_EQ(store.current()->version(), all.size());
}

// The stream-driven republish contract, under concurrency: a StreamSession
// writer applies update batches (one snapshot version per batch) while a
// reader pinned on version 1 keeps querying its pin and a fresh-session
// reader re-pins per pass. The pinned reader must never observe a distance
// or path from any later version; the fresh reader must always answer
// against the newest version as of its pass, with paths re-costing exactly
// on that version's graph.
TEST(ServeStress, StreamWriterNeverLeaksNewVersionsIntoPinnedReaders) {
  Rng grng(77);
  const Digraph start =
      make_family_graph("gnp", family_config(20, 0.35, 1, 9), grng);
  StreamConfig sc;
  sc.batches = 12;
  sc.batch_size = 6;
  Rng srng(13);
  const auto batches = make_update_stream("uniform-reweight", start, sc, srng);

  // graphs[v - 1] is the graph the snapshot published as version v was
  // solved from, precomputed by replaying the deterministic stream so the
  // reader threads can re-cost without racing the writer.
  std::vector<Digraph> graphs;
  graphs.push_back(start);
  {
    Digraph replay = start;
    for (const auto& b : batches) {
      apply_batch(replay, b);
      graphs.push_back(replay);
    }
  }
  const std::uint64_t last_version = batches.size() + 1;

  ExecutionContext ctx(91);
  ctx.set_family("gnp");
  StreamSession writer(start, ctx);
  QueryServer server(ctx.serve());
  const std::uint32_t n = start.size();

  const auto recost = [](const Digraph& g,
                         const std::vector<std::uint32_t>& nodes) {
    std::int64_t cost = 0;
    for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
      if (!g.has_arc(nodes[i], nodes[i + 1])) return kPlusInf;
      cost += g.weight(nodes[i], nodes[i + 1]);
    }
    return cost;
  };

  std::atomic<bool> done{false};
  std::thread writer_thread([&] {
    for (const auto& b : batches) {
      writer.apply(b);
      std::this_thread::yield();
    }
    done.store(true, std::memory_order_release);
  });

  // Reader pinned on version 1: holds the snapshot object itself, so every
  // answer must stay bit-identical to publish time however many batches
  // land behind it.
  std::thread pinned_reader([&] {
    auto session = server.session();
    (void)session.snapshot();  // pin now -- possibly already past version 1
    const std::shared_ptr<const ApspSnapshot> pin = session.pinned_ref();
    const std::uint64_t pinned_version = pin->version();
    const Digraph& pinned_graph = graphs[pinned_version - 1];
    const DistMatrix frozen = pin->distances();
    std::uint64_t iter = 0;
    while (!done.load(std::memory_order_acquire) || iter == 0) {
      ++iter;
      ASSERT_EQ(pin->version(), pinned_version);
      for (std::uint32_t u = 0; u < n; ++u) {
        for (std::uint32_t v = 0; v < n; ++v) {
          if (u == v) continue;
          // Distances never drift from the frozen copy ...
          ASSERT_EQ(pin->distance(u, v), frozen.at(u, v));
          if (is_plus_inf(frozen.at(u, v))) continue;
          // ... and served paths re-cost exactly on the pinned version's
          // graph. A path leaked from version v+1 would mis-cost here:
          // the stream reweights arcs every batch.
          ASSERT_EQ(recost(pinned_graph, pin->path(u, v)), frozen.at(u, v))
              << u << "->" << v << " @v" << pinned_version;
        }
      }
    }
  });

  // Fresh-session reader: a new Session per pass must answer against the
  // newest version as of that pass, monotonically.
  std::thread fresh_reader([&] {
    std::uint64_t seen = 0;
    std::uint64_t iter = 0;
    while (!done.load(std::memory_order_acquire) || iter == 0) {
      ++iter;
      auto session = server.session();
      PathAnswer a = session.path(0, n - 1);
      const ApspSnapshot* pin = session.pinned();
      ASSERT_NE(pin, nullptr);
      const std::uint64_t v = pin->version();
      ASSERT_GE(v, seen) << "fresh session pinned an older version";
      ASSERT_GE(v, 1u);
      ASSERT_LE(v, last_version);
      seen = v;
      ASSERT_EQ(a.distance, pin->distance(0, n - 1));
      if (!is_plus_inf(a.distance)) {
        // The cached path must belong to the pinned version's graph: the
        // cache is keyed by (version, u, v), so a republish invalidates.
        ASSERT_EQ(recost(graphs[v - 1], a.nodes), a.distance) << "@v" << v;
      }
    }
  });

  writer_thread.join();
  pinned_reader.join();
  fresh_reader.join();

  // After the writer finishes, any fresh session pins the final version
  // and serves exactly the solver's current distances.
  EXPECT_EQ(ctx.serve().version(), last_version);
  auto session = server.session();
  const ApspSnapshot& snap = session.snapshot();
  EXPECT_EQ(snap.version(), last_version);
  EXPECT_EQ(snap.distances(), writer.solver().distances());
  EXPECT_EQ(graphs.back().to_dist_matrix(),
            writer.solver().graph().to_dist_matrix());
}

}  // namespace
}  // namespace qclique
