#include "stream/dynamic_solver.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <numeric>
#include <utility>

#include "api/registry.hpp"
#include "common/error.hpp"
#include "common/math.hpp"
#include "common/task_pool.hpp"

namespace qclique {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

constexpr std::uint32_t kNoHop = std::numeric_limits<std::uint32_t>::max();

struct OutArc {
  std::uint32_t v;
  std::int64_t w;
};

std::vector<std::vector<OutArc>> build_adjacency(const Digraph& g) {
  const std::uint32_t n = g.size();
  std::vector<std::vector<OutArc>> adj(n);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = 0; v < n; ++v) {
      if (u != v && g.has_arc(u, v)) adj[u].push_back({v, g.weight(u, v)});
    }
  }
  return adj;
}

/// Reusable per-worker state for one source's Dijkstra repair: the dist /
/// first-hop working arrays, the heap's backing storage, and the list of
/// vertices touched since the last reset. Between runs the arrays are held
/// at their resting values (+inf / kNoHop) and restored by walking only
/// the touched list, so a repair over k reachable vertices costs O(k log k)
/// regardless of n -- no O(n) refill, no per-source allocations once the
/// capacities are warm.
struct RepairScratch {
  using Item = std::pair<std::int64_t, std::uint32_t>;

  std::vector<std::int64_t> dist;    // resting value: kPlusInf everywhere
  std::vector<std::uint32_t> first;  // resting value: kNoHop everywhere
  std::vector<std::uint32_t> touched;
  std::vector<Item> heap;  // storage reused across runs (capacity sticks)

  void ensure(std::uint32_t n) {
    if (dist.size() != n) {
      dist.assign(n, kPlusInf);
      first.assign(n, kNoHop);
      touched.clear();
      heap.clear();
    }
  }
};

/// Single-source Dijkstra over adjacency out-lists, writing the distance
/// row (and, when `first` is non-null, the first hop of a shortest s->v
/// path per target; kNoHop for v == s or unreachable) through `scratch`.
/// Deterministic and bit-identical to a fresh priority_queue run: a binary
/// heap always pops its comparator-minimum, strict relaxations make every
/// live (d, u) pair unique, and ties pop in vertex order.
void dijkstra_row(const std::vector<std::vector<OutArc>>& adj, std::uint32_t s,
                  RepairScratch& scratch, std::int64_t* out_dist,
                  std::uint32_t* out_first) {
  using Item = RepairScratch::Item;
  const auto n = static_cast<std::uint32_t>(adj.size());
  scratch.ensure(n);
  std::int64_t* dist = scratch.dist.data();
  std::uint32_t* first = scratch.first.data();
  auto& heap = scratch.heap;
  const auto heap_less = std::greater<Item>{};  // min-heap
  dist[s] = 0;
  scratch.touched.push_back(s);
  heap.push_back({0, s});
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), heap_less);
    const auto [d, u] = heap.back();
    heap.pop_back();
    if (d != dist[u]) continue;  // stale heap entry
    for (const OutArc& a : adj[u]) {
      const std::int64_t nd = d + a.w;
      if (nd < dist[a.v]) {
        // A vertex leaves its resting +inf exactly once: that is the
        // moment it joins the touched list for the post-run reset.
        if (is_plus_inf(dist[a.v])) scratch.touched.push_back(a.v);
        dist[a.v] = nd;
        first[a.v] = (u == s) ? a.v : first[u];
        heap.push_back({nd, a.v});
        std::push_heap(heap.begin(), heap.end(), heap_less);
      }
    }
  }
  std::copy(dist, dist + n, out_dist);
  if (out_first != nullptr) std::copy(first, first + n, out_first);
  // Restore the resting state by undoing only what this run touched.
  for (const std::uint32_t v : scratch.touched) {
    dist[v] = kPlusInf;
    first[v] = kNoHop;
  }
  scratch.touched.clear();
}

/// Hop-count successor construction for graphs with zero-weight arcs: the
/// local twin of core/paths.cpp build_successors (same strictly-decreasing
/// hop invariant, no simulated network).
std::vector<std::uint32_t> hop_successors(const Digraph& g,
                                          const DistMatrix& dist) {
  const std::uint32_t n = g.size();
  const auto adj = build_adjacency(g);
  std::vector<std::uint32_t> hops(static_cast<std::size_t>(n) * n, kNoHop);
  for (std::uint32_t v = 0; v < n; ++v)
    hops[static_cast<std::size_t>(v) * n + v] = 0;
  for (std::uint32_t sweep = 0; sweep < n; ++sweep) {
    bool changed = false;
    for (std::uint32_t u = 0; u < n; ++u) {
      for (std::uint32_t v = 0; v < n; ++v) {
        if (u == v || is_plus_inf(dist.at(u, v))) continue;
        for (const OutArc& a : adj[u]) {
          if (sat_add(a.w, dist.at(a.v, v)) != dist.at(u, v)) continue;
          const std::uint32_t hx = hops[static_cast<std::size_t>(a.v) * n + v];
          if (hx == kNoHop) continue;
          auto& hu = hops[static_cast<std::size_t>(u) * n + v];
          if (hu == kNoHop || hx + 1 < hu) {
            hu = hx + 1;
            changed = true;
          }
        }
      }
    }
    if (!changed) break;
  }
  std::vector<std::uint32_t> succ(static_cast<std::size_t>(n) * n, kNoHop);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = 0; v < n; ++v) {
      if (u == v || is_plus_inf(dist.at(u, v))) continue;
      const std::uint32_t hu = hops[static_cast<std::size_t>(u) * n + v];
      for (const OutArc& a : adj[u]) {
        if (sat_add(a.w, dist.at(a.v, v)) != dist.at(u, v)) continue;
        const std::uint32_t hx = hops[static_cast<std::size_t>(a.v) * n + v];
        if (hu != kNoHop && hx != kNoHop && hx + 1 == hu) {
          succ[static_cast<std::size_t>(u) * n + v] = a.v;
          break;
        }
      }
      QCLIQUE_CHECK(succ[static_cast<std::size_t>(u) * n + v] != kNoHop,
                    "no relaxing neighbor: dist is not the distance matrix");
    }
  }
  return succ;
}

bool has_nonpositive_arc(const Digraph& g) {
  const std::uint32_t n = g.size();
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = 0; v < n; ++v) {
      if (u != v && g.has_arc(u, v) && g.weight(u, v) <= 0) return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// "recompute": apply the batch, re-run a static backend from scratch.
// ---------------------------------------------------------------------------

class RecomputeSolver final : public DynamicApspSolver {
 public:
  explicit RecomputeSolver(DynamicSolverOptions options)
      : options_(std::move(options)) {}

  std::string name() const override { return "recompute"; }

  void reset(const Digraph& g, ExecutionContext& ctx) override {
    g_ = g;
    solve_full(ctx);
  }

  RepairStats apply(const UpdateBatch& batch, ExecutionContext& ctx) override {
    const auto t0 = Clock::now();
    RepairStats stats;
    stats.updates = batch.size();
    // Validates every update before the first mutation.
    stats.changed_arcs = canonical_changes(g_, batch).size();
    apply_batch(g_, batch);
    const auto t1 = Clock::now();
    solve_full(ctx);
    stats.affected_sources = g_.size();
    stats.repair_ms = ms_since(t1);
    stats.wall_ms = ms_since(t0);
    return stats;
  }

  const Digraph& graph() const override { return g_; }
  const DistMatrix& distances() const override { return d_; }
  const std::vector<std::uint32_t>& successors() const override {
    return succ_;
  }

 private:
  void solve_full(ExecutionContext& ctx) {
    ApspReport report =
        SolverRegistry::instance().get(options_.backend).solve(g_, ctx);
    d_ = std::move(report.distances);
    if (options_.with_paths) {
      succ_ = local_successors(g_, d_);
    } else {
      succ_.clear();
    }
  }

  DynamicSolverOptions options_;
  Digraph g_{1};
  DistMatrix d_{1};  // placeholder until reset() (DistMatrix needs n >= 1)
  std::vector<std::uint32_t> succ_;
};

// ---------------------------------------------------------------------------
// "incremental": affected-source repair (see header comment for the
// classification contract and its completeness argument).
// ---------------------------------------------------------------------------

class IncrementalSolver final : public DynamicApspSolver {
 public:
  explicit IncrementalSolver(DynamicSolverOptions options)
      : options_(std::move(options)) {}

  std::string name() const override { return "incremental"; }

  void reset(const Digraph& g, ExecutionContext& ctx) override {
    QCLIQUE_CHECK(!g.has_negative_arc(),
                  "incremental dynamic solver requires non-negative weights");
    g_ = g;
    adj_ = build_adjacency(g_);
    zero_arcs_ = 0;
    for (const auto& list : adj_) {
      for (const OutArc& a : list) {
        if (a.w == 0) ++zero_arcs_;
      }
    }
    const std::uint32_t n = g_.size();
    d_ = DistMatrix(n);
    const bool row_hops = options_.with_paths && zero_arcs_ == 0;
    succ_.assign(options_.with_paths ? static_cast<std::size_t>(n) * n : 0,
                 kNoHop);
    std::vector<std::uint32_t> sources(n);
    std::iota(sources.begin(), sources.end(), 0u);
    repair_rows(sources, row_hops, ctx);
    if (options_.with_paths && zero_arcs_ > 0) {
      succ_ = local_successors(g_, d_);
    }
  }

  RepairStats apply(const UpdateBatch& batch, ExecutionContext& ctx) override {
    const auto t0 = Clock::now();
    const std::uint32_t n = g_.size();
    RepairStats stats;
    stats.updates = batch.size();
    const std::vector<ArcChange> changes = canonical_changes(g_, batch);
    for (const ArcChange& c : changes) {
      QCLIQUE_CHECK(is_plus_inf(c.after) || c.after >= 0,
                    "incremental dynamic solver requires non-negative weights");
    }
    stats.changed_arcs = changes.size();
    if (changes.empty()) {
      stats.wall_ms = ms_since(t0);
      return stats;
    }

    // Classify every source against the OLD distances: a decreased arc
    // (u, v, w') affects s iff it would relax (d(s,u) + w' < d(s,v)); an
    // increased or deleted arc affects s iff it was tight (on some old
    // shortest s-path: d(s,u) + w == d(s,v)). Rows flagged by neither test
    // provably keep exact distances and valid successors.
    std::vector<char> affected(n, 0);
    for (std::uint32_t s = 0; s < n; ++s) {
      const std::int64_t* row = d_.row_ptr(s);
      for (const ArcChange& c : changes) {
        if (is_plus_inf(row[c.u])) continue;  // s cannot reach the arc
        if (c.after < c.before) {
          if (row[c.u] + c.after < row[c.v]) {
            affected[s] = 1;
            break;
          }
        } else {
          if (sat_add(row[c.u], c.before) == row[c.v]) {
            affected[s] = 1;
            break;
          }
        }
      }
    }
    stats.classify_ms = ms_since(t0);

    // Fold the net changes into the graph and the adjacency mirror.
    for (const ArcChange& c : changes) {
      if (!is_plus_inf(c.before) && c.before == 0) --zero_arcs_;
      if (!is_plus_inf(c.after) && c.after == 0) ++zero_arcs_;
      auto& list = adj_[c.u];
      const auto pos = std::lower_bound(
          list.begin(), list.end(), c.v,
          [](const OutArc& a, std::uint32_t key) { return a.v < key; });
      if (is_plus_inf(c.after)) {
        g_.remove_arc(c.u, c.v);
        list.erase(pos);
      } else if (pos != list.end() && pos->v == c.v) {
        g_.set_arc(c.u, c.v, c.after);
        pos->w = c.after;
      } else {
        g_.set_arc(c.u, c.v, c.after);
        list.insert(pos, {c.v, c.after});
      }
    }

    const auto t1 = Clock::now();
    const bool row_hops = options_.with_paths && zero_arcs_ == 0;
    // The repair work-list is fixed before the parallel region, in ascending
    // source order, and stats derive from the list alone — so RepairStats
    // (and the repaired rows, which are chunk-disjoint) are byte-identical
    // to a sequential repair whatever the pool size or steal order.
    std::vector<std::uint32_t> sources;
    for (std::uint32_t s = 0; s < n; ++s) {
      if (affected[s]) sources.push_back(s);
    }
    stats.affected_sources = sources.size();
    repair_rows(sources, row_hops, ctx);
    if (options_.with_paths && zero_arcs_ > 0 && stats.affected_sources > 0) {
      // Zero-weight plateaus make per-row witness choices unsafe to mix;
      // rebuild the whole matrix hop-consistently (see local_successors).
      succ_ = local_successors(g_, d_);
    }
    stats.repair_ms = ms_since(t1);
    stats.wall_ms = ms_since(t0);
    return stats;
  }

  const Digraph& graph() const override { return g_; }
  const DistMatrix& distances() const override { return d_; }
  const std::vector<std::uint32_t>& successors() const override {
    return succ_;
  }

 private:
  /// Recomputes the listed distance rows (and, when row_hops, their first-hop
  /// witness rows) on the context's task pool, capped by ctx.num_threads().
  /// One chunk per source: chunks write disjoint rows through per-slot
  /// scratch, so under TaskPool's deterministic-chunk contract the result is
  /// bit-identical to running the list sequentially.
  void repair_rows(const std::vector<std::uint32_t>& sources, bool row_hops,
                   ExecutionContext& ctx) {
    const std::uint32_t n = g_.size();
    TaskPool& pool = ctx.task_pool();
    if (scratch_.size() < pool.threads()) scratch_.resize(pool.threads());
    pool.parallel_for(
        0, sources.size(), 1,
        [&](std::size_t chunk_begin, std::size_t chunk_end, unsigned slot) {
          RepairScratch& scratch = scratch_[slot];
          for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
            const std::uint32_t s = sources[i];
            dijkstra_row(adj_, s, scratch, d_.row_ptr(s),
                         row_hops ? &succ_[static_cast<std::size_t>(s) * n]
                                  : nullptr);
          }
        },
        ctx.num_threads());
  }

  DynamicSolverOptions options_;
  Digraph g_{1};
  DistMatrix d_{1};  // placeholder until reset() (DistMatrix needs n >= 1)
  std::vector<std::uint32_t> succ_;
  std::vector<std::vector<OutArc>> adj_;  // sorted out-lists mirroring g_
  std::uint64_t zero_arcs_ = 0;           // arcs with weight exactly 0
  std::vector<RepairScratch> scratch_;    // one per task-pool slot
};

class RecomputeFactory final : public DynamicSolverFactory {
 public:
  std::string name() const override { return "recompute"; }
  std::string description() const override {
    return "applies the batch and re-runs a static backend from scratch "
           "(correctness oracle / speedup baseline)";
  }
  std::unique_ptr<DynamicApspSolver> create(
      const DynamicSolverOptions& options) const override {
    return std::make_unique<RecomputeSolver>(options);
  }
};

class IncrementalFactory final : public DynamicSolverFactory {
 public:
  std::string name() const override { return "incremental"; }
  std::string description() const override {
    return "affected-source repair: classifies net arc changes against the "
           "current distances, re-solves only flagged rows";
  }
  std::unique_ptr<DynamicApspSolver> create(
      const DynamicSolverOptions& options) const override {
    return std::make_unique<IncrementalSolver>(options);
  }
};

}  // namespace

DynamicSolverRegistry& DynamicSolverRegistry::instance() {
  // Lazily registered builtins, same reason as SolverRegistry: static
  // linking would dead-strip a self-registration TU.
  static DynamicSolverRegistry* global = [] {
    auto* r = new DynamicSolverRegistry();
    register_builtin_dynamic_solvers(*r);
    return r;
  }();
  return *global;
}

void DynamicSolverRegistry::add(std::unique_ptr<DynamicSolverFactory> factory) {
  QCLIQUE_CHECK(factory != nullptr, "dynamic registry: null factory");
  const std::string name = factory->name();
  QCLIQUE_CHECK(!name.empty(), "dynamic registry: factory with empty name");
  std::lock_guard<std::mutex> lock(mu_);
  const auto pos = std::lower_bound(
      factories_.begin(), factories_.end(), name,
      [](const auto& f, const std::string& key) { return f->name() < key; });
  QCLIQUE_CHECK(pos == factories_.end() || (*pos)->name() != name,
                "dynamic registry: duplicate factory name '" + name + "'");
  factories_.insert(pos, std::move(factory));
}

bool DynamicSolverRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::any_of(factories_.begin(), factories_.end(),
                     [&](const auto& f) { return f->name() == name; });
}

const DynamicSolverFactory& DynamicSolverRegistry::get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& f : factories_) {
    if (f->name() == name) return *f;
  }
  std::string known;
  for (const auto& f : factories_) {
    if (!known.empty()) known += ", ";
    known += f->name();
  }
  throw SimulationError("dynamic registry: unknown solver '" + name +
                        "' (known: " + known + ")");
}

std::vector<std::string> DynamicSolverRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& f : factories_) out.push_back(f->name());
  return out;
}

std::size_t DynamicSolverRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.size();
}

void register_builtin_dynamic_solvers(DynamicSolverRegistry& registry) {
  registry.add(std::make_unique<RecomputeFactory>());
  registry.add(std::make_unique<IncrementalFactory>());
}

std::unique_ptr<DynamicApspSolver> make_dynamic_solver(
    const std::string& name, const DynamicSolverOptions& options) {
  return DynamicSolverRegistry::instance().get(name).create(options);
}

std::vector<std::uint32_t> local_successors(const Digraph& g,
                                            const DistMatrix& dist) {
  const std::uint32_t n = g.size();
  QCLIQUE_CHECK(dist.size() == n, "local_successors: size mismatch");
  if (has_nonpositive_arc(g)) return hop_successors(g, dist);
  // Strictly positive weights: any tight neighbor strictly decreases the
  // remaining distance, so the chase terminates whichever tight arc each
  // row picks. Take the smallest-index one (deterministic).
  const auto adj = build_adjacency(g);
  std::vector<std::uint32_t> succ(static_cast<std::size_t>(n) * n, kNoHop);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = 0; v < n; ++v) {
      if (u == v || is_plus_inf(dist.at(u, v))) continue;
      for (const OutArc& a : adj[u]) {
        if (sat_add(a.w, dist.at(a.v, v)) == dist.at(u, v)) {
          succ[static_cast<std::size_t>(u) * n + v] = a.v;
          break;
        }
      }
      QCLIQUE_CHECK(succ[static_cast<std::size_t>(u) * n + v] != kNoHop,
                    "no relaxing neighbor: dist is not the distance matrix");
    }
  }
  return succ;
}

}  // namespace qclique
