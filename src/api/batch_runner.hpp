// Many (graph, solver) jobs, one facade.
//
// BatchRunner is the harness layer on top of the SolverRegistry: hand it a
// list of jobs and it executes them — across worker threads or worker
// processes (exec/executor.hpp) when asked — returning one BatchResult per
// job in input order. Determinism is schedule-independent: each job runs
// under a context forked from the base context by job index, so worker
// count, executor choice, and completion order never change any report.
// Solvers are stateless and every job owns its context, which is what
// makes the fan-out safe. When the context's PageStore carries an in-core
// budget, each finished report's distance matrix is paged out as it
// completes, so a whole sweep's results can exceed RAM.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "exec/page_store.hpp"
#include "graph/families.hpp"

namespace qclique {

/// One unit of work: solve APSP on `graph` with backend `solver`. The
/// graph is shared, not copied — many jobs (e.g. one per backend) can
/// reference one instance; solvers only read it.
struct BatchJob {
  std::shared_ptr<const Digraph> graph;
  std::string solver;
  /// Min-plus kernel for this job (KernelRegistry key); empty = inherit the
  /// base context's kernel. This is how harnesses sweep kernels the same
  /// way they sweep backends.
  std::string kernel;
  /// Transport topology for this job (TopologyRegistry key); empty =
  /// inherit the base context's topology. The fourth per-job scenario
  /// override next to solver and kernel.
  std::string topology;
  /// Graph family the job's input was drawn from (GraphFamilyRegistry
  /// key); purely descriptive -- the graph is already generated -- but
  /// echoed into the result and stamped onto the report so scenario grids
  /// stay self-describing. Empty = ad-hoc input.
  std::string family;
  /// Extra salt mixed into the forked context seed (jobs that should see
  /// different randomness with everything else equal).
  std::uint64_t seed_salt = 0;
  /// Per-job inner parallelism: the forked context's num_threads() and
  /// kernel thread cap (stamped into ApspReport::threads). 0 = the batch
  /// default — serialize the kernels when the batch itself fans out,
  /// inherit the base context otherwise. Results never depend on it.
  unsigned threads = 0;
  /// Free-form tag echoed into the result (scenario name, sweep point).
  std::string label;
};

/// Outcome of one job. `report` is set iff `ok`; otherwise `error` holds
/// the exception message (a failing job never aborts the batch — in
/// process mode not even a crashing one; see exec/executor.hpp).
struct BatchResult {
  std::size_t job_index = 0;
  std::string solver;
  std::string family;  // the job's graph family ("" = ad-hoc input)
  std::string label;
  bool ok = false;
  std::string error;
  std::optional<ApspReport> report;
  /// When the batch ran under an in-core memory budget, the report's
  /// distance matrix was adopted by the context's PageStore (and replaced
  /// in the report by a 1x1 placeholder); this handle pages it back on
  /// demand. Empty when nothing paged — report->distances is then live.
  PagedMatrix paged_distances;

  bool distances_paged() const { return paged_distances.valid(); }

  /// The job's distance matrix regardless of paging: materializes spilled
  /// pages when paged, otherwise copies report->distances. Only valid on
  /// successful results.
  DistMatrix distances() const;
};

/// Declarative scenario sweep: the cross product of graph families x
/// solver backends x transport topologies x min-plus kernels, the
/// four registry axes in one spec. Empty axis lists mean "every
/// registered name" (solvers additionally skip backends whose
/// capabilities reject a family's weights, like run_all).
struct ScenarioSpec {
  std::vector<std::string> families;    // GraphFamilyRegistry keys
  std::vector<std::string> solvers;     // SolverRegistry keys
  std::vector<std::string> topologies;  // TopologyRegistry keys
  std::vector<std::string> kernels;     // KernelRegistry keys
  /// Generation knobs shared by every family in the sweep.
  FamilyConfig config;
  /// Family graphs are drawn from (graph_seed, family name), so adding or
  /// reordering families never changes another family's graph.
  std::uint64_t graph_seed = 1;
  /// Batch workers for this sweep. 0 = inherit the base context's
  /// num_threads() (whose 0 in turn means QCLIQUE_THREADS, then one per
  /// hardware thread).
  unsigned workers = 0;
  /// Inner parallelism granted to every job in the sweep (BatchJob::
  /// threads): each job's context num_threads() and kernel thread cap,
  /// stamped into its report. 0 = the batch default (serialize kernels
  /// under a fanned-out sweep). Results never depend on it.
  unsigned threads = 0;
  /// Fan out across worker *processes* (exec ProcessExecutor) instead of
  /// threads. Merged results are identical by the executor contract; also
  /// on when the base context has process_workers() set.
  bool process_mode = false;
  /// In-core byte budget applied to the base context's PageStore before
  /// the sweep runs: finished distance matrices past the budget spill to
  /// disk and page back on access (BatchResult::distances). 0 = leave the
  /// store's budget alone (QCLIQUE_MEMORY_BUDGET or whatever the caller
  /// set; a store with budget 0 keeps everything in core, unpaged).
  std::size_t memory_budget = 0;
};

/// Declarative dynamic-scenario sweep: the cross product of graph
/// families x update streams x dynamic solvers (the fifth registry axis;
/// see stream/generators.hpp). Each job replays one generated update
/// stream through a StreamSession -- republishing a snapshot version per
/// batch into the base context's shared SnapshotStore -- and, when
/// `verify` is set, checks the solver's distances against a lockstep
/// "recompute" oracle after every batch.
struct StreamScenarioSpec {
  std::vector<std::string> families;  // GraphFamilyRegistry keys ([] = all)
  std::vector<std::string> streams;   // UpdateStreamRegistry keys ([] = all)
  std::vector<std::string> solvers;   // DynamicSolverRegistry keys ([] = all)
  /// Generation knobs for the starting graphs. wmin must be >= 0: dynamic
  /// solvers require non-negative weights (stream/dynamic_solver.hpp).
  FamilyConfig config;
  /// Stream shape; per-family weight ranges and hub counts are derived via
  /// stream_for_family, keeping streams family-aware like workloads.
  std::uint32_t batches = 8;
  std::uint32_t batch_size = 16;
  /// Static backend behind "recompute" (solver jobs and the verify oracle).
  std::string backend = "dijkstra";
  /// Family graphs and streams are drawn from (graph_seed, family name[,
  /// stream name]), so adding or reordering axes never changes another
  /// job's input.
  std::uint64_t graph_seed = 1;
  /// Batch workers for this sweep (0 = inherit, as in ScenarioSpec).
  unsigned workers = 0;
  /// Inner parallelism granted to every replay job: the forked context's
  /// num_threads(), which caps the incremental solver's parallel repair
  /// and the kernels. 0 = the batch default (serialize under a fanned-out
  /// sweep). Results never depend on it.
  unsigned threads = 0;
  /// Replay on worker processes instead of threads. Note: stream jobs
  /// publish snapshots as they replay, and in process mode those
  /// publications happen in the worker's address space — the parent's
  /// SnapshotStore does not see them (the StreamResult counters still
  /// round-trip exactly).
  bool process_mode = false;
  /// Maintain witness successors so published snapshots answer paths.
  bool with_paths = true;
  /// Check distances against the recompute oracle after every batch
  /// (skipped for jobs whose solver is itself "recompute").
  bool verify = true;
};

/// Outcome of one stream-replay job.
struct StreamResult {
  std::size_t job_index = 0;
  std::string family;
  std::string stream;  // UpdateStreamRegistry key
  std::string solver;  // DynamicSolverRegistry key
  bool ok = false;
  std::string error;
  std::uint32_t n = 0;
  std::uint64_t batches = 0;           // batches replayed
  std::uint64_t updates = 0;           // raw updates across all batches
  std::uint64_t changed_arcs = 0;      // net arc changes across all batches
  std::uint64_t affected_sources = 0;  // rows re-solved across all batches
  /// Distances matched the recompute oracle after every batch (true when
  /// verification was skipped).
  bool exact = true;
  std::uint64_t published_versions = 0;  // snapshots published (initial + 1/batch)
  double wall_ms = 0.0;                  // whole replay, initial solve included
};

class BatchRunner {
 public:
  /// Runs against `registry`, deriving each job's ExecutionContext from
  /// `base` (fork by job index + seed_salt). The registry and base context
  /// must outlive the runner.
  explicit BatchRunner(const SolverRegistry& registry = SolverRegistry::instance(),
                       ExecutionContext base = ExecutionContext())
      : registry_(registry), base_(base) {}

  /// Executes all jobs on `base.num_threads()` workers (0 = one per
  /// hardware thread; the worker count is also capped by the job count).
  /// Results are in job order regardless of scheduling. When more than one
  /// worker runs, each job's min-plus kernel is forced to a single thread
  /// -- the batch already saturates the machine, and kernel results are
  /// thread-count independent by the kernel contract.
  std::vector<BatchResult> run(const std::vector<BatchJob>& jobs) const;

  /// Convenience: one graph, many backends. Builds one job per name in
  /// `solvers` (all registered backends when empty, skipping those whose
  /// capabilities reject g's weights) and runs them. The graph is copied
  /// once and shared by every job.
  std::vector<BatchResult> run_all(const Digraph& g,
                                   std::vector<std::string> solvers = {}) const;

  /// Convenience: one graph, one backend, many kernels. Builds one job per
  /// name in `kernels` (all registered kernels when empty) and runs them;
  /// job labels are the kernel names. By the kernel contract every result's
  /// distance matrix is identical -- only wall time varies. Jobs run on a
  /// single batch worker so each kernel (including "parallel" with its full
  /// thread pool) gets the machine to itself and the wall times compare.
  std::vector<BatchResult> run_kernels(const Digraph& g, const std::string& solver,
                                       std::vector<std::string> kernels = {}) const;

  /// The full scenario matrix: generates one graph per family in
  /// `spec` (keyed by spec.graph_seed and the family name), then runs
  /// every (family, solver, topology, kernel) combination as one job.
  /// Centralized backends (capabilities().distributed == false) run on the
  /// first topology only -- the communication model cannot affect them, so
  /// the extra rows would only duplicate results. Each result carries its
  /// family, and each successful report is stamped with it
  /// (ApspReport::family, exported by to_json). Per scenario, every
  /// backend must produce identical distances -- graph structure, like the
  /// topology and the kernel, changes what runs cost, never what they
  /// compute.
  std::vector<BatchResult> run_scenarios(const ScenarioSpec& spec) const;

  /// The dynamic scenario matrix: generates one starting graph per family
  /// (same (graph_seed, family) keying as run_scenarios) and one update
  /// stream per (family, stream) -- shared by every solver so the axis
  /// stays comparable -- then replays every (family, stream, solver)
  /// combination as one job on the worker pool. Each job's StreamSession
  /// publishes into the base context's shared SnapshotStore (one version
  /// per batch plus the initial solve); with `spec.verify`, distances are
  /// checked against a lockstep recompute oracle after every batch and
  /// any mismatch clears the result's `exact` flag.
  std::vector<StreamResult> run_streams(const StreamScenarioSpec& spec) const;

  const ExecutionContext& base_context() const { return base_; }

  /// Aggregate ledger over every successful job this runner has executed.
  /// (Jobs run on forked contexts, so `base_context().ledger()` stays
  /// empty; per-job costs are absorbed here after each `run`.)
  const RoundLedger& batch_ledger() const { return batch_ledger_; }

 private:
  /// `run` with an explicit worker count and executor choice (run_kernels
  /// pins 1 thread worker; run_scenarios applies the spec's knobs).
  std::vector<BatchResult> run_with_workers(const std::vector<BatchJob>& jobs,
                                            unsigned workers,
                                            bool process_mode) const;

  /// Resolves a spec-level worker override against the base context and
  /// the job count (0 = inherit; result is always >= 1).
  unsigned resolve_workers(unsigned requested, std::size_t job_count) const;

  const SolverRegistry& registry_;
  ExecutionContext base_;
  mutable RoundLedger batch_ledger_;
};

/// One JSON array over a batch: successful jobs inline the full
/// ApspReport::to_json (family stamp included) under "report"; failed jobs
/// carry their scenario coordinates and the error message. The export
/// format of bench_scenario_matrix and the CI scenario artifact.
/// `include_timings = false` emits the canonical form (no wall_ms, no
/// profile): byte-identical across reruns, worker counts, and executors,
/// which is what the out-of-core CI gate diffs.
std::string scenarios_to_json(const std::vector<BatchResult>& results,
                              bool include_timings = true);

class SnapshotStore;
class ApspSnapshot;

/// Publishes every successful result's report into `store` as a versioned
/// ApspSnapshot, in job order (so the store's final current snapshot is the
/// last successful job's). Labels carry over into the snapshot metadata.
/// Returns one pin per result, nullptr for failed jobs. Reports publish
/// distance-only snapshots -- results do not carry their input graphs, so
/// witness paths are the province of ApspSolver::serve.
std::vector<std::shared_ptr<const ApspSnapshot>> publish_scenarios(
    const std::vector<BatchResult>& results, SnapshotStore& store);

/// One JSON array over a stream sweep (the export format of
/// bench_dynamic_apsp and the dynamic CI artifact).
std::string stream_scenarios_to_json(const std::vector<StreamResult>& results);

}  // namespace qclique
