// Tests for ExecutionContext: the determinism contract (same seed => same
// report, for every backend), schedule-independent forking, and ledger
// accumulation across runs.
#include "api/execution_context.hpp"

#include <gtest/gtest.h>

#include "api/registry.hpp"
#include "graph/generators.hpp"

namespace qclique {
namespace {

Digraph test_graph(std::uint32_t n, std::uint64_t seed) {
  Rng rng(seed);
  return random_digraph(n, 0.5, -4, 9, rng);
}

TEST(ExecutionContext, SameSeedSameRngStream) {
  ExecutionContext a(77), b(77);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.rng().next_u64(), b.rng().next_u64());
}

TEST(ExecutionContext, ForkIsDeterministicAndIndependentOfParentUse) {
  ExecutionContext a(5), b(5);
  // Consume randomness from one parent only: forks must still agree.
  for (int i = 0; i < 10; ++i) a.rng().next_u64();
  ExecutionContext fa = a.fork(3), fb = b.fork(3);
  EXPECT_EQ(fa.seed(), fb.seed());
  for (int i = 0; i < 20; ++i) EXPECT_EQ(fa.rng().next_u64(), fb.rng().next_u64());
  // Different salts give decorrelated streams.
  EXPECT_NE(b.fork(3).seed(), b.fork(4).seed());
}

TEST(ExecutionContext, ForkInheritsConfiguration) {
  ExecutionContext ctx(1);
  ctx.network_config().fields_per_message = 2;
  ctx.network_config().strict_payload = false;
  ctx.set_topology("bounded-degree");
  ctx.transport().degree_cap = 4;
  ctx.set_kernel("parallel");
  ctx.kernel_options().config.block_size = 32;
  ctx.set_num_threads(3);
  ctx.set_check_negative_cycles(false);
  const ExecutionContext child = ctx.fork(0);
  EXPECT_EQ(child.network_config().fields_per_message, 2u);
  EXPECT_FALSE(child.network_config().strict_payload);
  EXPECT_EQ(child.topology(), "bounded-degree");
  EXPECT_EQ(child.transport().degree_cap, 4u);
  EXPECT_EQ(child.kernel(), "parallel");
  EXPECT_EQ(child.kernel_options().config.block_size, 32u);
  EXPECT_EQ(child.num_threads(), 3u);
  EXPECT_FALSE(child.check_negative_cycles());
}

TEST(ExecutionContext, KernelKnobResolvesThroughTheKernelRegistry) {
  ExecutionContext ctx(2);
  EXPECT_EQ(ctx.kernel(), "blocked");  // the production default
  EXPECT_EQ(ctx.min_plus_kernel().name(), "blocked");
  ctx.set_kernel("naive");
  EXPECT_EQ(ctx.min_plus_kernel().name(), "naive");
  ctx.set_kernel("no-such-kernel");
  EXPECT_THROW(ctx.min_plus_kernel(), SimulationError);
}

TEST(ExecutionContext, BuildsNetworksThroughTheTopologyRegistry) {
  ExecutionContext ctx(2);
  auto clique = ctx.make_network(6);
  EXPECT_EQ(clique->topology(), "clique");
  EXPECT_TRUE(clique->capabilities().lemma1_routing);
  EXPECT_EQ(clique->config().fields_per_message,
            ctx.network_config().fields_per_message);

  ctx.set_topology("bounded-degree");
  ctx.transport().degree_cap = 4;
  ctx.network_config().fields_per_message = 3;
  auto overlay = ctx.make_network(16);
  EXPECT_EQ(overlay->topology(), "bounded-degree");
  EXPECT_LE(overlay->capabilities().max_degree, 4u);
  EXPECT_EQ(overlay->config().fields_per_message, 3u);

  ctx.set_topology("no-such-topology");
  EXPECT_THROW(ctx.make_network(4), SimulationError);
}

// The distributed backends accept any registered topology through the
// context knob and still produce oracle-exact distances: the communication
// model changes what runs *cost*, never what they *compute*.
class TopologyAxis : public ::testing::TestWithParam<std::string> {};

TEST_P(TopologyAxis, DistributedBackendsAgreeWithOracleOnEveryTopology) {
  const Digraph g = test_graph(8, 6);
  ExecutionContext oracle_ctx(1);
  const DistMatrix reference =
      SolverRegistry::instance().get("floyd-warshall").solve(g, oracle_ctx).distances;
  for (const std::string solver : {"classical-search", "semiring"}) {
    ExecutionContext ctx(321);
    ctx.set_topology(GetParam());
    const ApspReport report = SolverRegistry::instance().get(solver).solve(g, ctx);
    EXPECT_EQ(report.distances, reference) << solver << " on " << GetParam();
    EXPECT_EQ(report.topology, GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, TopologyAxis,
                         ::testing::ValuesIn(TopologyRegistry::instance().names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// The kernel-dependent backends accept any registered min-plus kernel
// through the context knob and still produce oracle-exact distances: the
// kernel changes what runs *cost* in wall time, never what they *compute*.
class KernelAxis : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelAxis, KernelBackendsAgreeWithOracleOnEveryKernel) {
  const Digraph g = test_graph(8, 7);
  ExecutionContext oracle_ctx(1);
  const DistMatrix reference =
      SolverRegistry::instance().get("floyd-warshall").solve(g, oracle_ctx).distances;
  for (const std::string solver : {"dense-squaring", "semiring"}) {
    ExecutionContext ctx(654);
    ctx.set_kernel(GetParam());
    const ApspReport report = SolverRegistry::instance().get(solver).solve(g, ctx);
    EXPECT_EQ(report.distances, reference) << solver << " on " << GetParam();
    EXPECT_EQ(report.kernel, GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelAxis,
                         ::testing::ValuesIn(KernelRegistry::instance().names()));

// Same seed => identical ApspReport, for every registered backend. This is
// the reproducibility contract benches and CI regression checks rely on.
class ContextDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(ContextDeterminism, SameSeedSameReport) {
  const std::string name = GetParam();
  const ApspSolver& solver = SolverRegistry::instance().get(name);
  const Digraph g = test_graph(9, 2);

  ExecutionContext c1(4242), c2(4242);
  const ApspReport r1 = solver.solve(g, c1);
  const ApspReport r2 = solver.solve(g, c2);

  EXPECT_EQ(r1.distances, r2.distances);
  EXPECT_EQ(r1.rounds, r2.rounds);
  EXPECT_EQ(r1.metrics, r2.metrics);
  EXPECT_EQ(r1.ledger.total_rounds(), r2.ledger.total_rounds());
  EXPECT_EQ(r1.ledger.total_messages(), r2.ledger.total_messages());
  EXPECT_EQ(r1.ledger.total_oracle_calls(), r2.ledger.total_oracle_calls());
  EXPECT_EQ(r1.solver, name);
  EXPECT_EQ(r1.n, g.size());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ContextDeterminism,
                         ::testing::Values("quantum", "classical-search",
                                           "semiring", "dense-squaring",
                                           "floyd-warshall", "johnson",
                                           "bellman-ford"));

TEST(ExecutionContext, LedgerAccumulatesAcrossRuns) {
  const Digraph g = test_graph(8, 3);
  const ApspSolver& solver = SolverRegistry::instance().get("semiring");
  ExecutionContext ctx(9);
  const ApspReport r1 = solver.solve(g, ctx);
  const std::uint64_t after_one = ctx.ledger().total_rounds();
  EXPECT_EQ(after_one, r1.ledger.total_rounds());
  solver.solve(g, ctx);
  EXPECT_EQ(ctx.ledger().total_rounds(), 2 * after_one);
}

TEST(ApspReport, JsonExportContainsSolverAndLedger) {
  const Digraph g = test_graph(8, 4);
  ExecutionContext ctx(11);
  const ApspReport r = SolverRegistry::instance().get("semiring").solve(g, ctx);
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"solver\":\"semiring\""), std::string::npos);
  EXPECT_NE(json.find("\"total_rounds\":"), std::string::npos);
  EXPECT_NE(json.find("\"products\":"), std::string::npos);
}

}  // namespace
}  // namespace qclique
