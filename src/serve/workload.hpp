// Query-workload generation for the serving layer.
//
// Serving benchmarks and stress suites need realistic streams of s-t
// queries, not just uniform pairs. Three mixes:
//
//   * kUniform  -- every ordered pair (u != v) equally likely; the
//                  cache-hostile floor.
//   * kZipf     -- traffic concentrated on a fixed set of hot pairs with
//                  Zipf(s) rank frequencies: rank r drawn with probability
//                  proportional to 1 / r^s by binary search over a
//                  precomputed cumulative table (a sorted flat table, the
//                  PR 5 read-path idiom). The hot-pair cache's best case
//                  and the throughput-acceptance workload.
//   * kLocality -- sources uniform, targets inside the source's block with
//                  probability `locality` (think: users querying within
//                  their own community/region). `workload_for_family` sizes
//                  the block from the graph family's own structure, so the
//                  mix follows the scenario axis.
//
// Workloads are materialized up front into flat PairQuery vectors: benches
// time pure serving, and identical (options, seed) pairs draw bit-identical
// streams -- the same determinism contract every generator in the repo
// honors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/families.hpp"
#include "serve/query_server.hpp"

namespace qclique {

class Rng;

enum class QueryMix { kUniform, kZipf, kLocality };

/// The registry-style name of a mix ("uniform", "zipf", "locality").
std::string query_mix_name(QueryMix mix);

struct WorkloadOptions {
  /// Vertex count of the snapshot being queried (required, >= 2: a
  /// one-vertex graph has no off-diagonal pair to ask about).
  std::uint32_t n = 0;
  /// Queries to draw.
  std::size_t count = 0;
  QueryMix mix = QueryMix::kUniform;
  /// kZipf: number of distinct hot pairs (clamped to the n * (n - 1)
  /// ordered off-diagonal pairs).
  std::uint32_t hot_pairs = 256;
  /// kZipf: skew exponent s > 0. 1.1 concentrates roughly 80% of traffic
  /// on the top fifth of hot pairs at the default support size.
  double zipf_exponent = 1.1;
  /// kLocality: probability the target lands in the source's block.
  double locality = 0.9;
  /// kLocality: block size; 0 = floor(sqrt(n)).
  std::uint32_t block = 0;
};

/// Draws `options.count` queries (u != v, both < n) deterministically from
/// `rng`. Throws SimulationError on n < 2 or a non-positive Zipf exponent.
std::vector<PairQuery> make_workload(const WorkloadOptions& options, Rng& rng);

/// Family-aware locality sizing: block = the family's natural community
/// scale (cluster size for "clustered"/"ring-of-cliques", grid row for
/// "grid"/"torus", layer for "layered-dag", sqrt(n) otherwise). Returns
/// options ready for make_workload.
WorkloadOptions workload_for_family(const std::string& family,
                                    const FamilyConfig& config, QueryMix mix,
                                    std::size_t count);

}  // namespace qclique
