// Single-source shortest paths through the quantum APSP pipeline.
//
// The paper notes that its APSP algorithm is also the best known *exact
// SSSP* algorithm in the CONGEST-CLIQUE model (no faster dedicated quantum
// SSSP is known). This wrapper runs the full pipeline and projects the
// source row, so callers that only need one source still get the
// O~(n^{1/4} log W) behavior -- and the ledger shows them what they paid.
// The communication model follows `options.transport()` like every other
// pipeline entry point: select a TopologyRegistry topology there and the
// reported rounds are measured on it.
#pragma once

#include <cstdint>
#include <vector>

#include "core/apsp.hpp"

namespace qclique {

/// Result of an SSSP computation.
struct SsspResult {
  std::vector<std::int64_t> distances;  // d(source, v) for all v
  std::uint64_t rounds = 0;
  RoundLedger ledger;
};

/// Distances from `source` via the quantum APSP pipeline.
SsspResult quantum_sssp(const Digraph& g, std::uint32_t source,
                        const QuantumApspOptions& options, Rng& rng);

}  // namespace qclique
