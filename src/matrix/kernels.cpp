#include "matrix/kernels.hpp"

#include <algorithm>
#include <thread>

#include "common/error.hpp"

namespace qclique {

namespace {

/// Sanitizes the public block_size knob into a tile edge the loops can
/// trust: at least 1, at most the largest dimension (so tile arithmetic
/// like `cols + bs - 1` and `ii += bs` cannot wrap uint32 for any
/// representable matrix).
std::uint32_t clamp_block(std::uint32_t block, std::uint32_t rows,
                          std::uint32_t inner, std::uint32_t cols) {
  const std::uint32_t dim_max = std::max({rows, inner, cols, 1u});
  return std::min(std::max<std::uint32_t>(1, block), dim_max);
}

/// clean[k * ntiles + t] = 1 when row k of B has no sentinel inside column
/// tile t (all entries strictly between kMinusInf and kPlusInf), for tiles
/// of `bs` columns. Computed once per product and shared by every row band.
std::vector<std::uint8_t> classify_b_tiles(const std::int64_t* b, std::uint32_t inner,
                                           std::uint32_t cols, std::uint32_t bs) {
  const std::uint32_t ntiles = (cols + bs - 1) / bs;
  std::vector<std::uint8_t> clean(static_cast<std::size_t>(inner) * ntiles, 1);
  for (std::uint32_t k = 0; k < inner; ++k) {
    const std::int64_t* brow = b + static_cast<std::size_t>(k) * cols;
    for (std::uint32_t t = 0; t < ntiles; ++t) {
      const std::uint32_t jh = std::min(cols, (t + 1) * bs);
      for (std::uint32_t j = t * bs; j < jh; ++j) {
        if (is_plus_inf(brow[j]) || is_minus_inf(brow[j])) {
          clean[static_cast<std::size_t>(k) * ntiles + t] = 0;
          break;
        }
      }
    }
  }
  return clean;
}

/// Tiled i/k/j block product over one row band [0, rows). Shared by the
/// "blocked" kernel (whole matrix) and each "parallel" worker (its band).
/// Witness rule matches the naive oracle: update only on strict
/// improvement while k ascends, so each entry records the smallest k
/// attaining the final minimum regardless of tiling.
///
/// The hot loop exploits two saturation facts to drop per-element sentinel
/// checks without changing a single output bit:
///   * every stored c entry lies in [kMinusInf, kPlusInf], so a sum that
///     would saturate to +inf can never pass the `s < c` test -- sums over
///     sentinel-free tiles need no upper clamp at all;
///   * the lower clamp only matters when the raw sum already beat c, so it
///     runs on the (rare) update path, not per element.
/// Tiles of B containing +-inf sentinels (per `clean`, from
/// classify_b_tiles with the same `bs`) take a careful loop that mirrors
/// sat_add case by case.
void blocked_band(const std::int64_t* a, const std::int64_t* b, std::int64_t* c,
                  std::uint32_t rows, std::uint32_t inner, std::uint32_t cols,
                  std::uint32_t bs, const std::uint8_t* clean,
                  std::uint32_t* witness) {
  std::fill(c, c + static_cast<std::size_t>(rows) * cols, kPlusInf);
  if (witness != nullptr) {
    std::fill(witness, witness + static_cast<std::size_t>(rows) * cols, kNoWitness);
  }
  const std::uint32_t ntiles = (cols + bs - 1) / bs;
  for (std::uint32_t ii = 0; ii < rows; ii += bs) {
    const std::uint32_t ih = std::min(rows, ii + bs);
    for (std::uint32_t kk = 0; kk < inner; kk += bs) {
      const std::uint32_t kh = std::min(inner, kk + bs);
      for (std::uint32_t jj = 0; jj < cols; jj += bs) {
        const std::uint32_t jh = std::min(cols, jj + bs);
        const std::uint32_t tile = jj / bs;
        for (std::uint32_t i = ii; i < ih; ++i) {
          const std::int64_t* arow = a + static_cast<std::size_t>(i) * inner;
          std::int64_t* crow = c + static_cast<std::size_t>(i) * cols;
          std::uint32_t* wrow =
              witness ? witness + static_cast<std::size_t>(i) * cols : nullptr;
          for (std::uint32_t k = kk; k < kh; ++k) {
            const std::int64_t aik = arow[k];
            if (is_plus_inf(aik)) continue;  // +inf sums never win
            const std::int64_t* brow = b + static_cast<std::size_t>(k) * cols;
            if (is_minus_inf(aik)) {
              // -inf + x = -inf unless x = +inf; -inf beats everything
              // except an already-recorded -inf.
              for (std::uint32_t j = jj; j < jh; ++j) {
                if (is_plus_inf(brow[j]) || crow[j] <= kMinusInf) continue;
                crow[j] = kMinusInf;
                if (wrow) wrow[j] = k;
              }
              continue;
            }
            if (clean[static_cast<std::size_t>(k) * ntiles + tile]) {
              // Fast path: finite aik, sentinel-free B tile. |aik|, |bkj| <
              // kPlusInf <= INT64_MAX/4, so the raw sum cannot overflow; a
              // sum >= kPlusInf loses the min on its own (every stored c is
              // <= kPlusInf), and the lower clamp commutes with the min.
              if (wrow == nullptr) {
                // Branchless min/max form the compiler can vectorize.
                for (std::uint32_t j = jj; j < jh; ++j) {
                  const std::int64_t s = aik + brow[j];
                  const std::int64_t v = s <= kMinusInf ? kMinusInf : s;
                  crow[j] = v < crow[j] ? v : crow[j];
                }
                continue;
              }
              for (std::uint32_t j = jj; j < jh; ++j) {
                const std::int64_t s = aik + brow[j];
                if (s < crow[j]) {
                  // Clamp below only on the update path (rare), re-testing
                  // so a sum under an already-stored -inf stays a no-op.
                  const std::int64_t v = s <= kMinusInf ? kMinusInf : s;
                  if (v < crow[j]) {
                    crow[j] = v;
                    wrow[j] = k;
                  }
                }
              }
              continue;
            }
            for (std::uint32_t j = jj; j < jh; ++j) {
              const std::int64_t bkj = brow[j];
              if (bkj >= kPlusInf) continue;  // s = +inf: never < crow[j]
              std::int64_t s;
              if (bkj <= kMinusInf) {
                s = kMinusInf;
              } else {
                s = aik + bkj;
                if (s >= kPlusInf) continue;  // saturates to +inf: never wins
                if (s <= kMinusInf) s = kMinusInf;
              }
              if (s < crow[j]) {
                crow[j] = s;
                if (wrow) wrow[j] = k;
              }
            }
          }
        }
      }
    }
  }
}

class NaiveKernel final : public MinPlusKernel {
 public:
  std::string name() const override { return "naive"; }

  std::string description() const override {
    return "the seed triple loop (conformance oracle, out-of-line sat_add)";
  }

  void run(const std::int64_t* a, const std::int64_t* b, std::int64_t* c,
           std::uint32_t rows, std::uint32_t inner, std::uint32_t cols,
           const KernelConfig& /*config*/, std::uint32_t* witness) const override {
    std::fill(c, c + static_cast<std::size_t>(rows) * cols, kPlusInf);
    if (witness != nullptr) {
      std::fill(witness, witness + static_cast<std::size_t>(rows) * cols, kNoWitness);
    }
    for (std::uint32_t i = 0; i < rows; ++i) {
      for (std::uint32_t k = 0; k < inner; ++k) {
        const std::int64_t aik = a[static_cast<std::size_t>(i) * inner + k];
        if (is_plus_inf(aik)) continue;
        for (std::uint32_t j = 0; j < cols; ++j) {
          const std::int64_t s = sat_add(aik, b[static_cast<std::size_t>(k) * cols + j]);
          const std::size_t e = static_cast<std::size_t>(i) * cols + j;
          if (s < c[e]) {
            c[e] = s;
            if (witness) witness[e] = k;
          }
        }
      }
    }
  }
};

class BlockedKernel final : public MinPlusKernel {
 public:
  std::string name() const override { return "blocked"; }

  std::string description() const override {
    return "cache-tiled i/k/j with row pointers and inlined saturating add";
  }

  void run(const std::int64_t* a, const std::int64_t* b, std::int64_t* c,
           std::uint32_t rows, std::uint32_t inner, std::uint32_t cols,
           const KernelConfig& config, std::uint32_t* witness) const override {
    const std::uint32_t bs = clamp_block(config.block_size, rows, inner, cols);
    const auto clean = classify_b_tiles(b, inner, cols, bs);
    blocked_band(a, b, c, rows, inner, cols, bs, clean.data(), witness);
  }
};

class ParallelKernel final : public MinPlusKernel {
 public:
  std::string name() const override { return "parallel"; }

  std::string description() const override {
    return "the blocked kernel sharded over row bands on std::thread workers";
  }

  void run(const std::int64_t* a, const std::int64_t* b, std::int64_t* c,
           std::uint32_t rows, std::uint32_t inner, std::uint32_t cols,
           const KernelConfig& config, std::uint32_t* witness) const override {
    const std::uint32_t bs = clamp_block(config.block_size, rows, inner, cols);
    const auto clean = classify_b_tiles(b, inner, cols, bs);
    unsigned workers = config.num_threads;
    if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
    workers = static_cast<unsigned>(std::min<std::uint64_t>(workers, rows));
    // Row i of C depends only on row i of A and all of B, so disjoint row
    // bands are independent: any worker count computes the same entries in
    // the same within-row order, which is the determinism contract. The
    // B-tile classification is shared read-only by every band.
    if (workers <= 1 ||
        static_cast<std::uint64_t>(rows) * inner * cols < (1u << 15)) {
      blocked_band(a, b, c, rows, inner, cols, bs, clean.data(), witness);
      return;
    }
    const BlockPartition bands(rows, workers);
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      const std::uint32_t r0 = static_cast<std::uint32_t>(bands.block_begin(w));
      const std::uint32_t r1 = static_cast<std::uint32_t>(bands.block_end(w));
      pool.emplace_back([=, &clean] {
        blocked_band(a + static_cast<std::size_t>(r0) * inner,
                     b, c + static_cast<std::size_t>(r0) * cols, r1 - r0, inner,
                     cols, bs, clean.data(),
                     witness ? witness + static_cast<std::size_t>(r0) * cols
                             : nullptr);
      });
    }
    for (auto& t : pool) t.join();
  }
};

}  // namespace

DistMatrix MinPlusKernel::product(const DistMatrix& a, const DistMatrix& b,
                                  const KernelConfig& config,
                                  std::vector<std::uint32_t>* witness) const {
  const std::uint32_t n = a.size();
  QCLIQUE_CHECK(b.size() == n, "distance product size mismatch");
  DistMatrix c(n);
  if (witness != nullptr) {
    // Size only: run() fully overwrites both outputs.
    witness->resize(static_cast<std::size_t>(n) * n);
  }
  run(a.data(), b.data(), c.data(), n, n, n, config,
      witness ? witness->data() : nullptr);
  return c;
}

KernelRegistry& KernelRegistry::instance() {
  // Builtins are registered lazily here rather than via static-initializer
  // self-registration: the library is linked statically, and nothing would
  // anchor a registrar translation unit against linker dead-stripping.
  static KernelRegistry* global = [] {
    auto* r = new KernelRegistry();
    register_builtin_kernels(*r);
    return r;
  }();
  return *global;
}

void KernelRegistry::add(std::unique_ptr<MinPlusKernel> kernel) {
  QCLIQUE_CHECK(kernel != nullptr, "kernel registry: null kernel");
  const std::string name = kernel->name();
  QCLIQUE_CHECK(!name.empty(), "kernel registry: kernel with empty name");
  std::lock_guard<std::mutex> lock(mu_);
  const auto pos = std::lower_bound(
      kernels_.begin(), kernels_.end(), name,
      [](const auto& k, const std::string& key) { return k->name() < key; });
  QCLIQUE_CHECK(pos == kernels_.end() || (*pos)->name() != name,
                "kernel registry: duplicate kernel name '" + name + "'");
  kernels_.insert(pos, std::move(kernel));
}

bool KernelRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::any_of(kernels_.begin(), kernels_.end(),
                     [&](const auto& k) { return k->name() == name; });
}

const MinPlusKernel& KernelRegistry::get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& k : kernels_) {
    if (k->name() == name) return *k;
  }
  std::string known;
  for (const auto& k : kernels_) {
    if (!known.empty()) known += ", ";
    known += k->name();
  }
  throw SimulationError("kernel registry: unknown kernel '" + name +
                        "' (known: " + known + ")");
}

std::vector<std::string> KernelRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(kernels_.size());
  for (const auto& k : kernels_) out.push_back(k->name());
  return out;
}

std::size_t KernelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return kernels_.size();
}

void register_builtin_kernels(KernelRegistry& registry) {
  registry.add(std::make_unique<NaiveKernel>());
  registry.add(std::make_unique<BlockedKernel>());
  registry.add(std::make_unique<ParallelKernel>());
}

DistMatrix min_plus_product(const DistMatrix& a, const DistMatrix& b,
                            const KernelOptions& options) {
  return options.resolve().product(a, b, options.config);
}

}  // namespace qclique
