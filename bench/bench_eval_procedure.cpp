// Experiment E11 (Figures 4-5): the evaluation procedure's load profile.
//
// Reports, per class alpha: measured rounds per joint evaluation, the
// largest list |L^k_w|, the promise threshold, the number of violating
// lists, and -- for a constants profile that activates duplication -- the
// Figure 5 step 0 cost. The flat rounds-per-evaluation column across load
// levels is the "O~(1)-round checking" the section is about.
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/evaluation.hpp"
#include "graph/families.hpp"
#include "congest/network.hpp"

int main() {
  using namespace qclique;
  std::cout << "E11: evaluation-procedure cost and load balancing (Figs 4-5)\n";

  Table table({"n", "alpha", "dup", "queries", "eval rounds", "dup rounds",
               "max |L^k_w|", "promise", "violations"});
  for (const std::uint32_t n : {64u, 144u, 256u}) {
    Rng rng(n);
    const auto g = make_family_weighted("gnp", family_config(n, 0.5, -8, 10), rng);
    Partitions parts(n);
    std::vector<std::uint32_t> t_alpha;
    for (std::uint32_t wb = 0; wb < parts.num_wblocks(); ++wb) t_alpha.push_back(wb);

    for (const std::uint32_t alpha : {0u, 4u}) {
      // class_size scaled down so alpha = 4 triggers duplication.
      Constants cst = Constants::paper();
      if (alpha > 0) cst.class_size = 1.0;
      CliqueNetwork net(n);
      EvalQuerySet qs;
      qs.queries.resize(parts.num_wblocks());
      Rng qrng = rng.split();
      std::uint64_t total_queries = 0;
      for (std::uint32_t x = 0; x < parts.num_wblocks(); ++x) {
        for (const auto& [u, v] : parts.block_pairs(0, parts.num_vblocks() > 1 ? 1 : 0)) {
          if (!g.has_edge(u, v)) continue;
          qs.queries[x].emplace_back(
              VertexPair(u, v),
              static_cast<std::uint32_t>(qrng.uniform_u64(t_alpha.size())));
          ++total_queries;
        }
      }
      const auto stats = run_evaluation(net, g, parts, 0,
                                        parts.num_vblocks() > 1 ? 1 : 0, alpha,
                                        t_alpha, qs, cst, true);
      table.add_row({Table::fmt(static_cast<std::uint64_t>(n)),
                     Table::fmt(static_cast<std::uint64_t>(alpha)),
                     Table::fmt(static_cast<std::uint64_t>(
                         duplication_factor(n, alpha, cst))),
                     Table::fmt(total_queries),
                     Table::fmt(stats.rounds - stats.duplication_rounds),
                     Table::fmt(stats.duplication_rounds),
                     Table::fmt(stats.max_list_len),
                     Table::fmt(eval_list_promise(n, alpha, cst), 0),
                     Table::fmt(stats.promise_violations)});
    }
  }
  table.print("Evaluation procedure: rounds and list loads");
  std::cout << "\nReading: evaluation rounds stay near-constant in n (the\n"
               "O~(1)-round checking claim); duplication (alpha > 0, dup > 1)\n"
               "shifts cost into a one-time step-0 broadcast; lists stay far\n"
               "below the promise threshold.\n";
  return 0;
}
