// Built-in ApspSolver backends: adapters from the unified API onto the
// concrete implementations. Besides unit tests and the pipeline-internal
// SSSP projection (core/sssp.cpp, which wraps quantum_apsp to reuse the
// full run), this file is the only caller of the per-algorithm entry
// points (quantum_apsp, classical_apsp, the centralized oracles) —
// everything else goes through the SolverRegistry.
#include <memory>

#include "api/registry.hpp"
#include "baseline/classical_apsp.hpp"
#include "baseline/shortest_paths.hpp"
#include "common/error.hpp"
#include "core/apsp.hpp"
#include "matrix/min_plus.hpp"

namespace qclique {
namespace {

// --- Theorem 1 pipeline (quantum and classical-search variants). -----------

class PipelineSolver : public ApspSolver {
 public:
  explicit PipelineSolver(bool use_quantum) : use_quantum_(use_quantum) {}

  std::string name() const override {
    return use_quantum_ ? "quantum" : "classical-search";
  }

  std::string description() const override {
    return use_quantum_
               ? "Theorem 1 pipeline with O~(n^{1/4})-round quantum searches"
               : "Theorem 1 pipeline with the classical O(sqrt n) step-3 scan";
  }

  SolverCapabilities capabilities() const override {
    return {.negative_weights = true, .distributed = true, .quantum = use_quantum_};
  }

 protected:
  ApspReport do_solve(const Digraph& g, ExecutionContext& ctx) const override {
    QuantumApspOptions options;
    options.check_negative_cycles = ctx.check_negative_cycles();
    options.product.find_edges.compute_pairs.use_quantum = use_quantum_;
    options.transport() = ctx.transport();
    const QuantumApspResult res = quantum_apsp(g, options, ctx.rng());

    ApspReport report(g.size());
    report.distances = res.distances;
    report.rounds = res.rounds;
    report.ledger = res.ledger;
    report.metrics["products"] = res.products;
    report.metrics["find_edges_calls"] = res.find_edges_calls;
    report.metrics["oracle_calls"] = res.ledger.total_oracle_calls();
    return report;
  }

 private:
  bool use_quantum_;
};

// --- Censor-Hillel semiring baseline (the paper's classical bound). --------

class SemiringSolver : public ApspSolver {
 public:
  std::string name() const override { return "semiring"; }

  std::string description() const override {
    return "repeated squaring over the O~(n^{1/3})-round semiring product";
  }

  SolverCapabilities capabilities() const override {
    return {.negative_weights = true, .distributed = true, .quantum = false};
  }

 protected:
  ApspReport do_solve(const Digraph& g, ExecutionContext& ctx) const override {
    const ApspResult res = classical_apsp(g, ctx.transport(), ctx.kernel_options());
    ApspReport report(g.size());
    report.distances = res.distances;
    report.rounds = res.rounds;
    report.ledger = res.ledger;
    report.metrics["products"] = res.products;
    return report;
  }
};

// --- Centralized oracles (rounds = 0 by definition). -----------------------

class DenseSquaringSolver : public ApspSolver {
 public:
  std::string name() const override { return "dense-squaring"; }

  std::string description() const override {
    return "centralized min-plus repeated squaring (Proposition 3 oracle)";
  }

  SolverCapabilities capabilities() const override { return {}; }

 protected:
  ApspReport do_solve(const Digraph& g, ExecutionContext& ctx) const override {
    ApspReport report(g.size());
    report.distances = apsp_by_squaring(g.to_dist_matrix(), ctx.kernel_options());
    report.metrics["products"] =
        squaring_product_count(g.size() > 1 ? g.size() - 1 : 1);
    return report;
  }
};

class FloydWarshallSolver : public ApspSolver {
 public:
  std::string name() const override { return "floyd-warshall"; }

  std::string description() const override {
    return "centralized Floyd-Warshall (general-weights reference oracle)";
  }

  SolverCapabilities capabilities() const override { return {}; }

 protected:
  ApspReport do_solve(const Digraph& g, ExecutionContext&) const override {
    const auto dist = floyd_warshall(g);
    QCLIQUE_CHECK(dist.has_value(), "floyd-warshall: negative cycle in input");
    ApspReport report(g.size());
    report.distances = *dist;
    return report;
  }
};

class JohnsonSolver : public ApspSolver {
 public:
  std::string name() const override { return "johnson"; }

  std::string description() const override {
    return "centralized Johnson (reweighting + n Dijkstra runs)";
  }

  SolverCapabilities capabilities() const override { return {}; }

 protected:
  ApspReport do_solve(const Digraph& g, ExecutionContext&) const override {
    const auto dist = johnson(g);
    QCLIQUE_CHECK(dist.has_value(), "johnson: negative cycle in input");
    ApspReport report(g.size());
    report.distances = *dist;
    return report;
  }
};

class BellmanFordSolver : public ApspSolver {
 public:
  std::string name() const override { return "bellman-ford"; }

  std::string description() const override {
    return "centralized Bellman-Ford from every source";
  }

  SolverCapabilities capabilities() const override { return {}; }

 protected:
  ApspReport do_solve(const Digraph& g, ExecutionContext&) const override {
    ApspReport report(g.size());
    for (std::uint32_t s = 0; s < g.size(); ++s) {
      const auto row = bellman_ford(g, s);
      QCLIQUE_CHECK(row.has_value(), "bellman-ford: negative cycle in input");
      for (std::uint32_t v = 0; v < g.size(); ++v) report.distances.set(s, v, (*row)[v]);
    }
    return report;
  }
};

class DijkstraSolver : public ApspSolver {
 public:
  std::string name() const override { return "dijkstra"; }

  std::string description() const override {
    return "centralized Dijkstra from every source (non-negative weights)";
  }

  SolverCapabilities capabilities() const override {
    return {.negative_weights = false, .distributed = false, .quantum = false};
  }

 protected:
  ApspReport do_solve(const Digraph& g, ExecutionContext&) const override {
    ApspReport report(g.size());
    // One workspace across the sweep: per-source heap/array allocations and
    // the per-source weight validation both drop out (bind validates once).
    DijkstraWorkspace ws;
    ws.bind(g);
    for (std::uint32_t s = 0; s < g.size(); ++s) {
      ws.run(g, s, report.distances.row_ptr(s));
    }
    return report;
  }
};

}  // namespace

void register_builtin_solvers(SolverRegistry& registry) {
  registry.add(std::make_unique<PipelineSolver>(/*use_quantum=*/true));
  registry.add(std::make_unique<PipelineSolver>(/*use_quantum=*/false));
  registry.add(std::make_unique<SemiringSolver>());
  registry.add(std::make_unique<DenseSquaringSolver>());
  registry.add(std::make_unique<FloydWarshallSolver>());
  registry.add(std::make_unique<JohnsonSolver>());
  registry.add(std::make_unique<BellmanFordSolver>());
  registry.add(std::make_unique<DijkstraSolver>());
}

}  // namespace qclique
