#include "congest/network.hpp"

#include <algorithm>

namespace qclique {

CliqueNetwork::CliqueNetwork(std::uint32_t n, NetworkConfig config)
    : n_(n),
      config_(config),
      links_(static_cast<std::size_t>(n) * n),
      inboxes_(n),
      link_busy_flag_(static_cast<std::size_t>(n) * n, 0) {
  QCLIQUE_CHECK(n >= 2, "CliqueNetwork needs at least two nodes");
  QCLIQUE_CHECK(config_.fields_per_message >= 1 &&
                    config_.fields_per_message <= kMaxPayloadFields,
                "fields_per_message out of range");
}

void CliqueNetwork::send(NodeId src, NodeId dst, Payload payload) {
  QCLIQUE_CHECK(src < n_ && dst < n_, "send endpoint out of range");
  QCLIQUE_CHECK(src != dst, "a node does not message itself in the model");
  if (payload.size > config_.fields_per_message) {
    QCLIQUE_BANDWIDTH_CHECK(!config_.strict_payload,
                            "payload exceeds per-message field budget");
    // Non-strict mode: split into budget-sized chunks, preserving order.
    Payload chunk;
    chunk.tag = payload.tag;
    for (std::size_t i = 0; i < payload.size; ++i) {
      chunk.push(payload.fields[i]);
      if (chunk.size == config_.fields_per_message) {
        send(src, dst, chunk);
        chunk.size = 0;
      }
    }
    if (chunk.size > 0) send(src, dst, chunk);
    return;
  }
  const std::size_t li = link_index(src, dst);
  links_[li].push_back(payload);
  if (!link_busy_flag_[li]) {
    link_busy_flag_[li] = 1;
    busy_links_.push_back(li);
  }
  ++pending_;
}

void CliqueNetwork::step(const std::string& phase) {
  ++rounds_;
  std::uint64_t delivered = 0;
  // Each busy link delivers exactly one message this round.
  std::vector<std::size_t> still_busy;
  still_busy.reserve(busy_links_.size());
  for (std::size_t li : busy_links_) {
    auto& q = links_[li];
    if (q.empty()) {
      link_busy_flag_[li] = 0;
      continue;
    }
    const NodeId src = static_cast<NodeId>(li / n_);
    const NodeId dst = static_cast<NodeId>(li % n_);
    inboxes_[dst].push_back(Message{src, dst, q.front()});
    q.pop_front();
    ++delivered;
    --pending_;
    if (!q.empty()) {
      still_busy.push_back(li);
    } else {
      link_busy_flag_[li] = 0;
    }
  }
  busy_links_ = std::move(still_busy);
  ledger_.charge(phase, 1, delivered);
}

std::uint64_t CliqueNetwork::run_until_drained(const std::string& phase) {
  std::uint64_t steps = 0;
  while (pending_ > 0) {
    step(phase);
    ++steps;
  }
  return steps;
}

std::vector<Message>& CliqueNetwork::inbox(NodeId v) {
  QCLIQUE_CHECK(v < n_, "inbox index out of range");
  return inboxes_[v];
}

const std::vector<Message>& CliqueNetwork::inbox(NodeId v) const {
  QCLIQUE_CHECK(v < n_, "inbox index out of range");
  return inboxes_[v];
}

void CliqueNetwork::clear_inboxes() {
  for (auto& box : inboxes_) box.clear();
}

std::uint64_t CliqueNetwork::max_link_load() const {
  std::uint64_t m = 0;
  for (std::size_t li : busy_links_) m = std::max<std::uint64_t>(m, links_[li].size());
  return m;
}

void CliqueNetwork::deposit(const Message& m) {
  QCLIQUE_CHECK(m.src < n_ && m.dst < n_, "deposit endpoint out of range");
  inboxes_[m.dst].push_back(m);
}

}  // namespace qclique
