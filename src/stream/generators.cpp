#include "stream/generators.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qclique {

namespace {

struct Arc {
  std::uint32_t u;
  std::uint32_t v;

  friend bool operator==(const Arc&, const Arc&) = default;
  friend auto operator<=>(const Arc&, const Arc&) = default;
};

std::vector<Arc> present_arcs(const Digraph& g) {
  std::vector<Arc> arcs;
  arcs.reserve(g.num_arcs());
  const std::uint32_t n = g.size();
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = 0; v < n; ++v) {
      if (u != v && g.has_arc(u, v)) arcs.push_back({u, v});
    }
  }
  return arcs;
}

class UniformReweightStream final : public UpdateStreamGenerator {
 public:
  std::string name() const override { return "uniform-reweight"; }
  std::string description() const override {
    return "re-draws weights of uniformly chosen existing arcs; structure "
           "fixed";
  }

  std::vector<UpdateBatch> generate(const Digraph& start,
                                    const StreamConfig& config,
                                    Rng& rng) const override {
    // Reweights never change structure, so the arc list is stable across
    // the whole stream.
    const std::vector<Arc> arcs = present_arcs(start);
    std::vector<UpdateBatch> stream;
    stream.reserve(config.batches);
    for (std::uint32_t b = 0; b < config.batches; ++b) {
      UpdateBatch batch;
      batch.seq = b;
      batch.stream = name();
      const std::size_t k =
          std::min<std::size_t>(config.batch_size, arcs.size());
      if (k > 0) {
        for (std::size_t i : rng.sample_without_replacement(arcs.size(), k)) {
          batch.updates.push_back({UpdateKind::kReweight, arcs[i].u, arcs[i].v,
                                   rng.uniform_i64(config.wmin, config.wmax)});
        }
      }
      stream.push_back(std::move(batch));
    }
    return stream;
  }
};

class HubDeleteStream final : public UpdateStreamGenerator {
 public:
  std::string name() const override { return "hub-delete"; }
  std::string description() const override {
    return "alternately deletes hub-incident arcs and re-inserts them "
           "(disconnect / reconnect churn)";
  }

  std::vector<UpdateBatch> generate(const Digraph& start,
                                    const StreamConfig& config,
                                    Rng& rng) const override {
    const std::uint32_t n = start.size();
    Digraph scratch = start;
    const std::uint32_t hub_count =
        std::max<std::uint32_t>(1, std::min(config.hubs, n));
    const std::vector<std::uint32_t> hubs = structural_hubs(start, hub_count);
    std::vector<char> is_hub(n, 0);
    for (std::uint32_t h : hubs) is_hub[h] = 1;

    std::vector<UpdateBatch> stream;
    stream.reserve(config.batches);
    std::vector<Arc> pending;  // deleted last batch, to re-insert next
    for (std::uint32_t b = 0; b < config.batches; ++b) {
      UpdateBatch batch;
      batch.seq = b;
      batch.stream = name();
      if (b % 2 == 0) {
        // Delete phase: cut up to batch_size arcs touching a hub.
        std::vector<Arc> candidates;
        for (const Arc& a : present_arcs(scratch)) {
          if (is_hub[a.u] || is_hub[a.v]) candidates.push_back(a);
        }
        const std::size_t k =
            std::min<std::size_t>(config.batch_size, candidates.size());
        pending.clear();
        if (k > 0) {
          for (std::size_t i :
               rng.sample_without_replacement(candidates.size(), k)) {
            pending.push_back(candidates[i]);
          }
          std::sort(pending.begin(), pending.end());
          for (const Arc& a : pending) {
            batch.updates.push_back({UpdateKind::kDelete, a.u, a.v, 0});
          }
        }
      } else {
        // Reconnect phase: bring last batch's arcs back with fresh weights.
        for (const Arc& a : pending) {
          batch.updates.push_back({UpdateKind::kInsert, a.u, a.v,
                                   rng.uniform_i64(config.wmin, config.wmax)});
        }
        pending.clear();
      }
      apply_batch(scratch, batch);
      stream.push_back(std::move(batch));
    }
    return stream;
  }
};

class GrowthInsertStream final : public UpdateStreamGenerator {
 public:
  std::string name() const override { return "growth-insert"; }
  std::string description() const override {
    return "inserts fresh arcs between non-adjacent vertices (densifying "
           "ingest)";
  }

  std::vector<UpdateBatch> generate(const Digraph& start,
                                    const StreamConfig& config,
                                    Rng& rng) const override {
    const std::uint32_t n = start.size();
    Digraph scratch = start;
    std::vector<UpdateBatch> stream;
    stream.reserve(config.batches);
    for (std::uint32_t b = 0; b < config.batches; ++b) {
      UpdateBatch batch;
      batch.seq = b;
      batch.stream = name();
      if (n >= 2) {
        // Rejection-sample absent arcs; near-complete graphs exhaust the
        // attempt budget and yield a short batch rather than spinning.
        std::uint32_t found = 0;
        std::uint64_t attempts =
            32ULL * config.batch_size + 64;
        while (found < config.batch_size && attempts-- > 0) {
          const auto u = static_cast<std::uint32_t>(rng.uniform_u64(n));
          const auto v = static_cast<std::uint32_t>(rng.uniform_u64(n));
          if (u == v || scratch.has_arc(u, v)) continue;
          const std::int64_t w = rng.uniform_i64(config.wmin, config.wmax);
          scratch.set_arc(u, v, w);
          batch.updates.push_back({UpdateKind::kInsert, u, v, w});
          ++found;
        }
      }
      stream.push_back(std::move(batch));
    }
    return stream;
  }
};

}  // namespace

UpdateStreamRegistry& UpdateStreamRegistry::instance() {
  // Lazily registered builtins, same reason as SolverRegistry: static
  // linking would dead-strip a self-registration TU.
  static UpdateStreamRegistry* global = [] {
    auto* r = new UpdateStreamRegistry();
    register_builtin_streams(*r);
    return r;
  }();
  return *global;
}

void UpdateStreamRegistry::add(std::unique_ptr<UpdateStreamGenerator> generator) {
  QCLIQUE_CHECK(generator != nullptr, "stream registry: null generator");
  const std::string name = generator->name();
  QCLIQUE_CHECK(!name.empty(), "stream registry: generator with empty name");
  std::lock_guard<std::mutex> lock(mu_);
  const auto pos = std::lower_bound(
      generators_.begin(), generators_.end(), name,
      [](const auto& g, const std::string& key) { return g->name() < key; });
  QCLIQUE_CHECK(pos == generators_.end() || (*pos)->name() != name,
                "stream registry: duplicate generator name '" + name + "'");
  generators_.insert(pos, std::move(generator));
}

bool UpdateStreamRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::any_of(generators_.begin(), generators_.end(),
                     [&](const auto& g) { return g->name() == name; });
}

const UpdateStreamGenerator& UpdateStreamRegistry::get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& g : generators_) {
    if (g->name() == name) return *g;
  }
  std::string known;
  for (const auto& g : generators_) {
    if (!known.empty()) known += ", ";
    known += g->name();
  }
  throw SimulationError("stream registry: unknown generator '" + name +
                        "' (known: " + known + ")");
}

std::vector<std::string> UpdateStreamRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(generators_.size());
  for (const auto& g : generators_) out.push_back(g->name());
  return out;
}

std::size_t UpdateStreamRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generators_.size();
}

void register_builtin_streams(UpdateStreamRegistry& registry) {
  registry.add(std::make_unique<UniformReweightStream>());
  registry.add(std::make_unique<HubDeleteStream>());
  registry.add(std::make_unique<GrowthInsertStream>());
}

std::vector<UpdateBatch> make_update_stream(const std::string& stream,
                                            const Digraph& start,
                                            const StreamConfig& config,
                                            Rng& rng) {
  return UpdateStreamRegistry::instance().get(stream).generate(start, config,
                                                               rng);
}

StreamConfig stream_for_family(const std::string& family,
                               const FamilyConfig& config,
                               std::uint32_t batches,
                               std::uint32_t batch_size) {
  StreamConfig sc;
  sc.batches = batches;
  sc.batch_size = batch_size;
  // Dynamic solvers require non-negative weights; track the family's range
  // clamped the same way symmetric families already clamp digraph weights.
  sc.wmin = std::max<std::int64_t>(0, config.wmin);
  sc.wmax = std::max(sc.wmin, config.wmax);
  if (family == "lambda-skew") {
    sc.hubs = config.hubs;
  } else if (family == "clustered" || family == "ring-of-cliques") {
    // One hub per community stresses the bridges between blocks.
    sc.hubs = config.clusters;
  } else if (family == "power-law") {
    sc.hubs = config.degree;
  } else {
    sc.hubs = 2;
  }
  sc.hubs = std::max<std::uint32_t>(
      1, std::min(sc.hubs, std::max<std::uint32_t>(1, config.n)));
  return sc;
}

}  // namespace qclique
