// Experiment E15: transport-layer drain throughput.
//
// Four questions, one table each:
//   1. Layout: does the flat round-bucketed message arena beat the seed's
//      per-link std::deque array on the all-to-all drain hot path? The old
//      layout is reproduced verbatim below (DequeClique) so the comparison
//      survives the seed implementation's replacement; acceptance is
//      arena >= deque throughput for every n >= 128.
//   2. Topology: what does the same all-to-all batch cost (rounds and wall
//      time) on every registered topology? Clique drains in one round;
//      sparse transports pay relaying, which is the scenario axis this PR
//      opens.
//   3. Instrumentation: the TrafficMatrix export for the clique run, next
//      to the ledger JSON, so harnesses can persist per-link load.
//   4. Routing fast paths: the same Lemma 1 batch routed as the seed
//      std::vector<Message> (materialize + profile + deposit), as a
//      struct-of-arrays MessageBatch, and counts-only through
//      route_counts. The counts path is the acceptance gate: >= 3x the
//      per-Message path at every n >= 128 (with identical ledger charges,
//      which the routing-equivalence suite pins separately).
#include <chrono>
#include <limits>
#include <deque>
#include <iostream>

#include "common/table.hpp"
#include "congest/lenzen.hpp"
#include "congest/network.hpp"
#include "congest/transport.hpp"
#include "core/round_model.hpp"

namespace qclique {
namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The seed's CliqueNetwork storage layout, kept as the bench baseline: one
/// std::deque per ordered pair plus a busy-link index. Semantically
/// identical to the arena clique (same rounds, same per-link FIFO); only
/// the memory layout differs.
class DequeClique {
 public:
  explicit DequeClique(std::uint32_t n)
      : n_(n),
        links_(static_cast<std::size_t>(n) * n),
        inboxes_(n),
        link_busy_flag_(static_cast<std::size_t>(n) * n, 0) {}

  void send(NodeId src, NodeId dst, const Payload& payload) {
    const std::size_t li = static_cast<std::size_t>(src) * n_ + dst;
    links_[li].push_back(payload);
    if (!link_busy_flag_[li]) {
      link_busy_flag_[li] = 1;
      busy_links_.push_back(li);
    }
    ++pending_;
  }

  void step() {
    std::vector<std::size_t> still_busy;
    still_busy.reserve(busy_links_.size());
    for (std::size_t li : busy_links_) {
      auto& q = links_[li];
      const NodeId src = static_cast<NodeId>(li / n_);
      const NodeId dst = static_cast<NodeId>(li % n_);
      inboxes_[dst].push_back(Message{src, dst, q.front()});
      q.pop_front();
      --pending_;
      if (!q.empty()) {
        still_busy.push_back(li);
      } else {
        link_busy_flag_[li] = 0;
      }
    }
    busy_links_ = std::move(still_busy);
  }

  std::uint64_t drain() {
    std::uint64_t rounds = 0;
    while (pending_ > 0) {
      step();
      ++rounds;
    }
    return rounds;
  }

  void clear_inboxes() {
    for (auto& box : inboxes_) box.clear();
  }

  std::uint64_t delivered() const {
    std::uint64_t d = 0;
    for (const auto& box : inboxes_) d += box.size();
    return d;
  }

 private:
  std::uint32_t n_;
  std::vector<std::deque<Payload>> links_;
  std::vector<std::vector<Message>> inboxes_;
  std::vector<std::size_t> busy_links_;
  std::vector<char> link_busy_flag_;
  std::uint64_t pending_ = 0;
};

/// One all-to-all wave: every ordered pair carries `waves` messages.
template <typename Net>
std::uint64_t send_all_to_all(Net& net, std::uint32_t n, std::uint32_t waves) {
  std::uint64_t sent = 0;
  for (std::uint32_t wave = 0; wave < waves; ++wave) {
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        if (u == v) continue;
        net.send(u, v, Payload::make(1, {static_cast<std::int64_t>(wave)}));
        ++sent;
      }
    }
  }
  return sent;
}

}  // namespace
}  // namespace qclique

int main() {
  using namespace qclique;
  std::cout << "E15: transport drain throughput (flat arena vs deque layout, "
               "per-topology)\n\n";

  // ---- 1. Layout shoot-out on the clique all-to-all drain. ------------------
  Table layout({"n", "waves", "msgs", "deque ms", "arena ms", "speedup",
                "arena wins"});
  bool arena_wins_all_large = true;
  const std::uint32_t kWaves = 4;
  const int kReps = 3;
  for (const std::uint32_t n : {32u, 64u, 128u, 192u, 256u, 384u}) {
    double deque_ms = 0.0, arena_ms = 0.0;
    std::uint64_t msgs = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      {
        DequeClique old_net(n);
        const double t0 = now_ms();
        msgs = send_all_to_all(old_net, n, kWaves);
        const std::uint64_t rounds = old_net.drain();
        deque_ms += now_ms() - t0;
        if (rounds != kWaves || old_net.delivered() != msgs) {
          std::cout << "deque layout misbehaved\n";
          return 1;
        }
        old_net.clear_inboxes();
      }
      {
        CliqueNetwork net(n);
        const double t0 = now_ms();
        send_all_to_all(net, n, kWaves);
        const std::uint64_t rounds = net.run_until_drained("drain");
        arena_ms += now_ms() - t0;
        std::uint64_t delivered = 0;
        for (NodeId v = 0; v < n; ++v) delivered += net.inbox(v).size();
        if (rounds != kWaves || delivered != msgs) {
          std::cout << "arena layout misbehaved\n";
          return 1;
        }
        net.clear_inboxes();
      }
    }
    const bool wins = arena_ms <= deque_ms;
    if (n >= 128) arena_wins_all_large = arena_wins_all_large && wins;
    layout.add_row({Table::fmt(static_cast<std::uint64_t>(n)),
                    Table::fmt(static_cast<std::uint64_t>(kWaves)),
                    Table::fmt(msgs), Table::fmt(deque_ms / kReps, 2),
                    Table::fmt(arena_ms / kReps, 2),
                    Table::fmt(deque_ms / arena_ms, 2), wins ? "yes" : "NO"});
  }
  layout.print("All-to-all drain: seed deque layout vs flat arena");

  // ---- 2. The same batch across every registered topology. ------------------
  // "model hops" is RoundModel::for_topology's transport dilation -- the
  // analytic per-message hop estimate the prediction benches scale by; the
  // measured "phys/msgs" column (average physical traversals per logical
  // message) is its empirical counterpart.
  Table topo({"topology", "n", "msgs", "rounds", "wall ms", "max link",
              "phys/msgs", "model hops"});
  for (const std::uint32_t n : {32u, 64u}) {
    for (const std::string& name : TopologyRegistry::instance().names()) {
      TransportOptions options;
      options.topology = name;
      options.record_traffic = true;
      auto net = make_network(n, options);
      const double t0 = now_ms();
      const std::uint64_t msgs = send_all_to_all(*net, n, 1);
      const std::uint64_t rounds = net->run_until_drained("drain");
      const double ms = now_ms() - t0;
      const RoundModel model = RoundModel::for_topology(name, n);
      topo.add_row({name, Table::fmt(static_cast<std::uint64_t>(n)),
                    Table::fmt(msgs), Table::fmt(rounds), Table::fmt(ms, 2),
                    Table::fmt(net->traffic()->max_load()),
                    Table::fmt(static_cast<double>(net->traffic()->total()) /
                                   static_cast<double>(msgs),
                               2),
                    Table::fmt(model.topology_dilation, 2)});
    }
  }
  topo.print("All-to-all batch per topology (1 wave)");

  // ---- 3. Instrumentation export (ledger + traffic side by side). -----------
  {
    CliqueNetwork net(16);
    net.enable_traffic_matrix();
    send_all_to_all(net, 16, 2);
    net.run_until_drained("drain");
    std::cout << "\nledger:  " << net.ledger().to_json()
              << "\ntraffic: " << net.traffic()->to_json() << "\n";
  }

  // ---- 4. Bulk routing fast paths vs the seed per-Message batch. ------------
  // The workload mirrors the pipeline's step 1 shape: every node sources
  // `waves` 3-field messages to every other node, routed under Lemma 1.
  // Timed per path: build the batch representation + route() + clear the
  // inboxes — exactly what a protocol phase pays.
  Table paths({"n", "msgs", "vector<Message> ms", "MessageBatch ms", "counts ms",
               "batch x", "counts x", "counts >= 3x"});
  bool counts_fast_everywhere = true;
  const std::uint32_t kRouteWaves = 4;
  const int kRouteReps = 3;
  // Best-of-reps per path: the gate divides sub-millisecond timings, so a
  // single scheduler stall on a shared CI runner must not flip it — the
  // minimum is robust to one-sided noise where the sum is not.
  const double kInf = std::numeric_limits<double>::infinity();
  for (const std::uint32_t n : {64u, 128u, 192u, 256u, 384u}) {
    double vec_ms = kInf, soa_ms = kInf, cnt_ms = kInf;
    std::uint64_t msgs = 0, vec_rounds = 0, soa_rounds = 0, cnt_rounds = 0;
    for (int rep = 0; rep < kRouteReps; ++rep) {
      {
        CliqueNetwork net(n);
        const double t0 = now_ms();
        std::vector<Message> batch;
        for (std::uint32_t wave = 0; wave < kRouteWaves; ++wave) {
          for (NodeId u = 0; u < n; ++u) {
            for (NodeId v = 0; v < n; ++v) {
              if (u == v) continue;
              batch.push_back(Message{
                  u, v, Payload::make(1, {wave, u, v})});
            }
          }
        }
        msgs = batch.size();
        vec_rounds = route(net, batch, "r").rounds;
        net.clear_inboxes();
        vec_ms = std::min(vec_ms, now_ms() - t0);
      }
      {
        CliqueNetwork net(n);
        const double t0 = now_ms();
        MessageBatch batch;
        batch.reserve(static_cast<std::size_t>(kRouteWaves) * n * (n - 1),
                      static_cast<std::size_t>(kRouteWaves) * n * (n - 1) * 3);
        for (std::uint32_t wave = 0; wave < kRouteWaves; ++wave) {
          for (NodeId u = 0; u < n; ++u) {
            for (NodeId v = 0; v < n; ++v) {
              if (u == v) continue;
              batch.add(u, v, 1);
              batch.field(wave);
              batch.field(u);
              batch.field(v);
            }
          }
        }
        soa_rounds = route(net, batch, "r").rounds;
        net.clear_inboxes();
        soa_ms = std::min(soa_ms, now_ms() - t0);
      }
      {
        CliqueNetwork net(n);
        const double t0 = now_ms();
        LinkCounts counts(n);
        for (std::uint32_t wave = 0; wave < kRouteWaves; ++wave) {
          for (NodeId u = 0; u < n; ++u) {
            for (NodeId v = 0; v < n; ++v) {
              if (u == v) continue;
              counts.add(u, v);
            }
          }
        }
        cnt_rounds = route_counts(net, counts, "r").rounds;
        cnt_ms = std::min(cnt_ms, now_ms() - t0);
      }
    }
    if (vec_rounds != soa_rounds || vec_rounds != cnt_rounds) {
      std::cout << "routing fast paths disagreed on rounds\n";
      return 1;
    }
    const double batch_x = vec_ms / soa_ms;
    const double counts_x = vec_ms / cnt_ms;
    const bool ok = counts_x >= 3.0;
    if (n >= 128) counts_fast_everywhere = counts_fast_everywhere && ok;
    paths.add_row({Table::fmt(static_cast<std::uint64_t>(n)), Table::fmt(msgs),
                   Table::fmt(vec_ms, 2), Table::fmt(soa_ms, 2),
                   Table::fmt(cnt_ms, 2), Table::fmt(batch_x, 2),
                   Table::fmt(counts_x, 2), ok ? "yes" : "NO"});
  }
  paths.print("Lemma 1 batch: per-Message vs MessageBatch vs counts-only");

  std::cout << "\nArena beats deque at every n >= 128: "
            << (arena_wins_all_large ? "yes" : "NO") << "\n"
            << "Counts-only path >= 3x per-Message at every n >= 128: "
            << (counts_fast_everywhere ? "yes" : "NO") << "\n";
  return (arena_wins_all_large && counts_fast_everywhere) ? 0 : 1;
}
