#!/usr/bin/env bash
# Tier-1 verification plus an API smoke run.
#
#   $ scripts/check.sh [build-dir]
#
# 1. configure + build everything (library, tests, benches, examples),
# 2. run the full ctest suite,
# 3. smoke-run examples/quickstart through the SolverRegistry, for both a
#    distributed backend and a centralized oracle (quickstart exits
#    non-zero when the solver's distances disagree with floyd-warshall),
# 4. smoke-run the BatchRunner backend matrix (exits non-zero unless all
#    registered backends agree and parallel == serial determinism holds).
# Set QCLIQUE_SANITIZE=address,undefined (any -fsanitize= value, including
# `thread` for TSan over the parallel min-plus kernel) to run the whole
# suite under sanitizers; any finding aborts (abort_on_error /
# -fno-sanitize-recover), so CI fails on the first report.
# Set QCLIQUE_KERNEL=<regex> to filter ctest down to matching suites (e.g.
# QCLIQUE_KERNEL=Kernel runs the kernel conformance + registry suites);
# QCLIQUE_FAMILY=<regex> does the same for the graph-family suites (e.g.
# QCLIQUE_FAMILY=Family runs the family conformance + registry suites), and
# QCLIQUE_SERVE=<regex> for the serving-layer suites (e.g.
# QCLIQUE_SERVE=Serve runs the snapshot/store/query-server/stress suites),
# and QCLIQUE_STREAM=<regex> for the update-stream suites (e.g.
# QCLIQUE_STREAM=Stream runs the update/generator/dynamic-conformance/
# stream-session suites), and QCLIQUE_EXEC=<regex> for the executor /
# out-of-core suites (e.g. QCLIQUE_EXEC=Exec runs the process-executor,
# page-store, and wire-codec suites), and QCLIQUE_POOL=<regex> for the
# task-pool suites (e.g. QCLIQUE_POOL=TaskPool runs the pool unit +
# schedule-independence suites).
# When several are set the filters are OR-ed. With any filter active the API
# smoke runs are skipped — that mode exists for targeted sanitizer jobs,
# not for tier-1 verification.
# Set QCLIQUE_BENCH_SMOKE=1 to append bench_pipeline_profile,
# bench_query_serving, bench_dynamic_apsp, and bench_distance_product runs
# that write the BENCH_*.json perf artifacts into the build dir (see
# docs/PERFORMANCE.md, docs/SERVING.md, docs/STREAMING.md, and
# docs/KERNELS.md), then diff them against the committed bench/baselines
# via scripts/bench_diff.py; QCLIQUE_BUILD_TYPE overrides the build type
# (default RelWithDebInfo — use Release for perf numbers).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
BUILD_TYPE="${QCLIQUE_BUILD_TYPE:-RelWithDebInfo}"
# QCLIQUE_THREADS is the library's worker-pool sizing knob
# (common/task_pool.hpp); when the caller pins it we also use it as the
# build/ctest parallelism so one variable bounds the whole run's footprint.
JOBS="${QCLIQUE_THREADS:-$(nproc)}"

CMAKE_EXTRA_ARGS=()
if [[ -n "${QCLIQUE_SANITIZE:-}" ]]; then
  SAN_FLAGS="-fsanitize=${QCLIQUE_SANITIZE} -fno-sanitize-recover=all -fno-omit-frame-pointer"
  CMAKE_EXTRA_ARGS+=("-DCMAKE_CXX_FLAGS=${SAN_FLAGS}"
                     "-DCMAKE_EXE_LINKER_FLAGS=${SAN_FLAGS}")
  export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1:detect_leaks=1}"
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
  export TSAN_OPTIONS="${TSAN_OPTIONS:-abort_on_error=1:halt_on_error=1}"
  echo "== sanitizers: ${QCLIQUE_SANITIZE} =="
fi

echo "== configure (${BUILD_TYPE}) =="
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE="${BUILD_TYPE}" "${CMAKE_EXTRA_ARGS[@]}"

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

CTEST_FILTER=""
if [[ -n "${QCLIQUE_KERNEL:-}" ]]; then
  CTEST_FILTER="${QCLIQUE_KERNEL}"
fi
if [[ -n "${QCLIQUE_FAMILY:-}" ]]; then
  CTEST_FILTER="${CTEST_FILTER:+${CTEST_FILTER}|}${QCLIQUE_FAMILY}"
fi
if [[ -n "${QCLIQUE_SERVE:-}" ]]; then
  CTEST_FILTER="${CTEST_FILTER:+${CTEST_FILTER}|}${QCLIQUE_SERVE}"
fi
if [[ -n "${QCLIQUE_STREAM:-}" ]]; then
  CTEST_FILTER="${CTEST_FILTER:+${CTEST_FILTER}|}${QCLIQUE_STREAM}"
fi
if [[ -n "${QCLIQUE_EXEC:-}" ]]; then
  CTEST_FILTER="${CTEST_FILTER:+${CTEST_FILTER}|}${QCLIQUE_EXEC}"
fi
if [[ -n "${QCLIQUE_POOL:-}" ]]; then
  CTEST_FILTER="${CTEST_FILTER:+${CTEST_FILTER}|}${QCLIQUE_POOL}"
fi

CTEST_FILTER_ARGS=()
if [[ -n "${CTEST_FILTER}" ]]; then
  # --no-tests=error: a filter that matches nothing (renamed suite, typo
  # in CI) must fail loudly, not pass vacuously.
  CTEST_FILTER_ARGS+=("-R" "${CTEST_FILTER}" "--no-tests=error")
  echo "== ctest (filtered: ${CTEST_FILTER}) =="
else
  echo "== ctest =="
fi
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" \
      "${CTEST_FILTER_ARGS[@]}"

if [[ -n "${CTEST_FILTER}" ]]; then
  echo "OK: filtered suite (${CTEST_FILTER}) passed."
  exit 0
fi

echo "== smoke: quickstart via SolverRegistry =="
"$BUILD_DIR/example_quickstart" quantum > /dev/null
"$BUILD_DIR/example_quickstart" semiring > /dev/null
"$BUILD_DIR/example_quickstart" floyd-warshall > /dev/null

echo "== smoke: BatchRunner backend matrix =="
"$BUILD_DIR/bench_backend_matrix" > /dev/null

echo "== smoke: transport layouts and topologies =="
"$BUILD_DIR/bench_transport" > /dev/null

echo "== smoke: scenario matrix (family x backend x topology x kernel) =="
"$BUILD_DIR/bench_scenario_matrix" 10 "$BUILD_DIR/scenario_matrix.json" > /dev/null

echo "== smoke: out-of-core multi-process scenario matrix =="
# 4 worker processes under an in-core budget far below the grid's total
# matrix bytes; --verify demands the merged canonical grid be byte-identical
# to a single-process unbounded rerun, and the budget must force real spills
# (both enforced in the bench exit code). See docs/EXECUTION.md.
"$BUILD_DIR/bench_scenario_matrix" 10 "$BUILD_DIR/scenario_matrix_ooc.json" \
    --workers=4 --process --budget=2K --verify > /dev/null

if [[ -n "${QCLIQUE_BENCH_SMOKE:-}" ]]; then
  echo "== smoke: pipeline profile (BENCH_pipeline.json) =="
  "$BUILD_DIR/bench_pipeline_profile" 16 "$BUILD_DIR/BENCH_pipeline.json" > /dev/null
  echo "wrote $BUILD_DIR/BENCH_pipeline.json"
  echo "== smoke: query serving (BENCH_query_serving.json) =="
  # Small n skips the 1M q/s acceptance gate (it only arms at n >= 256);
  # the run still exits non-zero on any answer mismatch.
  "$BUILD_DIR/bench_query_serving" 64 "$BUILD_DIR/BENCH_query_serving.json" > /dev/null
  echo "wrote $BUILD_DIR/BENCH_query_serving.json"
  echo "== smoke: dynamic APSP repair (BENCH_dynamic_apsp.json) =="
  # Small n skips the 4x incremental-repair and 2x parallel-repair gates
  # (they only arm at n >= 256); the run still replays the full 1/2/4
  # threads axis and exits non-zero when any batch's distances, witnesses,
  # or RepairStats counters diverge across the axis or from the recompute
  # oracle.
  "$BUILD_DIR/bench_dynamic_apsp" 64 "$BUILD_DIR/BENCH_dynamic_apsp.json" > /dev/null
  echo "wrote $BUILD_DIR/BENCH_dynamic_apsp.json"
  echo "== smoke: kernel engine sweep (BENCH_distance_product.json) =="
  # Runs at the baseline's pinned n = 512 so bench_diff has rows to compare;
  # this also arms the SIMD acceptance gate (simd >= 2x blocked, exit code)
  # whenever runtime dispatch lands on a vector tier.
  "$BUILD_DIR/bench_distance_product" 512 "$BUILD_DIR/BENCH_distance_product.json" > /dev/null
  echo "wrote $BUILD_DIR/BENCH_distance_product.json"
  echo "== smoke: scenario matrix export (BENCH_scenario_matrix.json) =="
  # Runs at the baseline's pinned n = 12 with the default exec knobs so
  # bench_diff can check both the deterministic per-cell fields (ok /
  # rounds / distances_fnv) and the wall-time envelope.
  "$BUILD_DIR/bench_scenario_matrix" 12 "$BUILD_DIR/BENCH_scenario_matrix.json" > /dev/null
  echo "wrote $BUILD_DIR/BENCH_scenario_matrix.json"
  echo "== bench_diff vs bench/baselines =="
  # Artifacts whose pinned n differs from the committed baseline are
  # skipped by bench_diff itself (wall times at different sizes are not
  # comparable); the pipeline profile runs at the baseline's n = 16.
  python3 scripts/bench_diff.py "$BUILD_DIR/BENCH_pipeline.json" \
          "$BUILD_DIR/BENCH_query_serving.json" \
          "$BUILD_DIR/BENCH_dynamic_apsp.json" \
          "$BUILD_DIR/BENCH_distance_product.json" \
          "$BUILD_DIR/BENCH_scenario_matrix.json"
fi

echo "OK: build, tests, and API smoke runs all passed."
