// Tests for Algorithm IdentifyClass (Figure 2) and Proposition 5's class
// bracketing.
#include "core/identify_class.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "congest/network.hpp"
#include "graph/generators.hpp"
#include "graph/triangles.hpp"

namespace qclique {
namespace {

std::vector<VertexPair> all_pairs(std::uint32_t n) {
  std::vector<VertexPair> s;
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) s.emplace_back(u, v);
  }
  return s;
}

TEST(DeltaExact, CountsWitnessedPairs) {
  // Triangle {0,1,2} negative; Delta for the block pair containing {0,1}
  // and the W-block containing 2 must count the pair once.
  WeightedGraph g(16);
  g.set_edge(0, 1, -5);
  g.set_edge(0, 2, 1);
  g.set_edge(1, 2, 1);
  Partitions parts(16);
  const auto s = all_pairs(16);
  const std::uint32_t ub = parts.vblock_of(0);
  const std::uint32_t vb = parts.vblock_of(1);
  const std::uint32_t wb = parts.wblock_of(2);
  EXPECT_GE(delta_exact(g, parts, s, ub, vb, wb), 1u);
  // A W-block without witnesses counts zero.
  std::uint64_t other_total = 0;
  for (std::uint32_t w = 0; w < parts.num_wblocks(); ++w) {
    if (w != wb) other_total += delta_exact(g, parts, s, ub, vb, w);
  }
  EXPECT_EQ(other_total, 0u);
}

TEST(IdentifyClass, RunsWithoutAbortAtPaperConstants) {
  Rng rng(1);
  const std::uint32_t n = 36;
  const auto g = random_weighted_graph(n, 0.5, -6, 10, rng);
  CliqueNetwork net(n);
  Partitions parts(n);
  const auto res = identify_class(net, g, parts, all_pairs(n), Constants::paper(), rng);
  EXPECT_FALSE(res.aborted);
  EXPECT_GT(res.rounds, 0u);  // the Lambda(u) broadcasts cost real rounds
}

TEST(IdentifyClass, AbortInjection) {
  // An absurd abort threshold triggers the Figure 2 abort path.
  Rng rng(2);
  const std::uint32_t n = 25;
  const auto g = random_weighted_graph(n, 0.6, -8, 4, rng);
  Constants cst = Constants::paper();
  cst.identify_abort = 1e-9;
  cst.identify_sample = 1e9;  // sample everything
  CliqueNetwork net(n);
  Partitions parts(n);
  const auto res = identify_class(net, g, parts, all_pairs(n), cst, rng);
  EXPECT_TRUE(res.aborted);
}

TEST(IdentifyClass, ClassZeroWhenNoNegativeTriangles) {
  Rng rng(3);
  const std::uint32_t n = 30;
  const auto g = random_weighted_graph(n, 0.5, 1, 9, rng);  // all positive
  CliqueNetwork net(n);
  Partitions parts(n);
  const auto res = identify_class(net, g, parts, all_pairs(n), Constants::paper(), rng);
  ASSERT_FALSE(res.aborted);
  EXPECT_EQ(res.max_alpha, 0u);
  for (const auto& row : res.classes) {
    for (std::uint32_t c : row) EXPECT_EQ(c, 0u);
  }
}

TEST(IdentifyClass, TAlphaPartitionsWBlocks) {
  Rng rng(4);
  const std::uint32_t n = 49;
  const auto g = random_weighted_graph(n, 0.6, -9, 6, rng);
  CliqueNetwork net(n);
  Partitions parts(n);
  const auto res = identify_class(net, g, parts, all_pairs(n), Constants::paper(), rng);
  ASSERT_FALSE(res.aborted);
  const std::uint32_t B = parts.num_vblocks();
  for (std::uint32_t ub = 0; ub < B; ++ub) {
    for (std::uint32_t vb = 0; vb < B; ++vb) {
      std::size_t total = 0;
      for (std::uint32_t a = 0; a <= res.max_alpha; ++a) {
        total += res.t_alpha(ub, vb, a, B).size();
      }
      EXPECT_EQ(total, parts.num_wblocks());
    }
  }
}

// Proposition 5 statistics: with full sampling (identify_sample huge), duvw
// equals |Delta| exactly, so classes must bracket |Delta| by construction;
// with the paper's sampling the bracket holds with high probability.
TEST(IdentifyClass, Prop5BracketsHoldUnderFullSampling) {
  Rng rng(5);
  const std::uint32_t n = 32;
  const auto g = random_weighted_graph(n, 0.7, -10, 4, rng);
  Constants cst = Constants::paper();
  cst.identify_sample = 1e9;   // R = S: duvw is exact
  cst.identify_abort = 1e9;    // never abort
  CliqueNetwork net(n);
  Partitions parts(n);
  const auto s = all_pairs(n);
  const auto res = identify_class(net, g, parts, s, cst, rng);
  ASSERT_FALSE(res.aborted);
  const std::uint32_t B = parts.num_vblocks();
  const double base = cst.identify_class_base * paper_log(n);
  for (std::uint32_t ub = 0; ub < B; ++ub) {
    for (std::uint32_t vb = 0; vb < B; ++vb) {
      for (std::uint32_t wb = 0; wb < parts.num_wblocks(); ++wb) {
        const std::uint64_t delta = delta_exact(g, parts, s, ub, vb, wb);
        const std::uint32_t alpha = res.alpha(ub, vb, wb, B);
        // cuvw = min{c : duvw < base * 2^c} with duvw == delta.
        EXPECT_LT(static_cast<double>(delta), base * std::pow(2.0, alpha));
        if (alpha > 0) {
          EXPECT_GE(static_cast<double>(delta), base * std::pow(2.0, alpha - 1));
        }
      }
    }
  }
}

TEST(IdentifyClass, SampledPairsTracked) {
  Rng rng(6);
  const std::uint32_t n = 40;
  const auto g = random_weighted_graph(n, 0.5, -5, 10, rng);
  CliqueNetwork net(n);
  Partitions parts(n);
  const auto res = identify_class(net, g, parts, all_pairs(n), Constants::paper(), rng);
  ASSERT_FALSE(res.aborted);
  // With p = min(1, 10 log n / n) and ~n^2/2 pairs double-sampled, R is
  // nonempty with overwhelming probability.
  EXPECT_GT(res.sampled_pairs, 0u);
}

}  // namespace
}  // namespace qclique
