// Deterministic update-stream generators: the fifth scenario axis.
//
// A static scenario is (family, solver, topology, kernel); a dynamic one
// adds *how the graph churns*. An UpdateStreamGenerator turns a starting
// graph plus a StreamConfig and an Rng into a reproducible sequence of
// UpdateBatches, and the UpdateStreamRegistry names them so harnesses can
// sweep churn patterns exactly like they sweep families. Built-ins:
//
//   * "uniform-reweight" -- every batch re-draws the weights of uniformly
//                           chosen existing arcs (structure fixed, costs
//                           moving: the classic traffic-weight churn);
//   * "hub-delete"       -- batches alternately delete arcs incident to
//                           the graph's structural hubs and re-insert
//                           them, deliberately disconnecting and
//                           reconnecting regions (the worst case for
//                           distance maintenance);
//   * "growth-insert"    -- every batch inserts fresh arcs between
//                           previously non-adjacent vertices (densifying
//                           growth, the streaming-graph ingest shape).
//
// The generator contract (tests/stream/generators_test.cpp): every update
// validates against the evolving graph (deletes target arcs that exist at
// that point in the replay, inserts target arcs that do not), batches are
// stamped seq = 0..batches-1 with the generator's name, all drawn weights
// lie in [wmin, wmax], and identical (graph, config, seed) triples produce
// bit-identical streams.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/families.hpp"
#include "stream/update.hpp"

namespace qclique {

class Rng;

/// Generation knobs shared by every stream generator. Like FamilyConfig,
/// generators ignore knobs they have no use for.
struct StreamConfig {
  /// Number of UpdateBatches to draw.
  std::uint32_t batches = 8;
  /// Target updates per batch (generators may emit fewer when the graph
  /// runs out of eligible arcs, never more).
  std::uint32_t batch_size = 16;
  /// Weight range for drawn weights (inserts and reweights). Dynamic
  /// solvers require non-negative weights, so wmin is kept >= 0 by
  /// stream_for_family; the conformance and bench streams pin wmin >= 1.
  std::int64_t wmin = 1;
  std::int64_t wmax = 9;
  /// "hub-delete": number of hub vertices to target (clamped to [1, n]).
  std::uint32_t hubs = 2;
};

/// One churn pattern. Generators are stateless across calls: all per-call
/// state lives in the arguments, so one instance serves concurrent
/// harnesses.
class UpdateStreamGenerator {
 public:
  virtual ~UpdateStreamGenerator() = default;

  /// Registry key, e.g. "hub-delete".
  virtual std::string name() const = 0;

  /// One-line human description (shown by harness listings).
  virtual std::string description() const = 0;

  /// Draws config.batches batches over `start`. The stream is
  /// self-consistent: replaying it with apply_batch from `start` keeps
  /// every update meaningful (deletes hit present arcs, inserts absent
  /// ones) -- generators track the evolving graph internally.
  virtual std::vector<UpdateBatch> generate(const Digraph& start,
                                            const StreamConfig& config,
                                            Rng& rng) const = 0;
};

/// Name -> stream-generator registry, the fifth registry alongside
/// solvers, topologies, kernels, and families. Same contract: registration
/// mutex-guarded, lookups return stable references.
class UpdateStreamRegistry {
 public:
  /// The process-wide registry, with all built-in generators registered.
  static UpdateStreamRegistry& instance();

  /// An empty registry (tests; embedding independent registries).
  UpdateStreamRegistry() = default;

  UpdateStreamRegistry(const UpdateStreamRegistry&) = delete;
  UpdateStreamRegistry& operator=(const UpdateStreamRegistry&) = delete;

  /// Registers a generator under generator->name(). Throws SimulationError
  /// on a duplicate name or a null/empty-named generator.
  void add(std::unique_ptr<UpdateStreamGenerator> generator);

  bool contains(const std::string& name) const;

  /// Looks up a generator; throws SimulationError naming the known
  /// generators when `name` is not registered.
  const UpdateStreamGenerator& get(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<UpdateStreamGenerator>> generators_;  // sorted
};

/// Registers the built-in generators listed in the header comment. Called
/// once by UpdateStreamRegistry::instance(); exposed so tests can build
/// private registries with the same population.
void register_builtin_streams(UpdateStreamRegistry& registry);

/// Convenience: one stream from the process-wide registry.
std::vector<UpdateBatch> make_update_stream(const std::string& stream,
                                            const Digraph& start,
                                            const StreamConfig& config,
                                            Rng& rng);

/// A StreamConfig sized from the family the starting graph was drawn from
/// (the dynamic-axis parallel of workload_for_family): weights track the
/// family's range clamped non-negative (dynamic solvers require
/// non-negative weights, and the symmetric families already clamp digraph
/// weights the same way), hub count tracks the family's hub/cluster
/// structure.
StreamConfig stream_for_family(const std::string& family,
                               const FamilyConfig& config,
                               std::uint32_t batches, std::uint32_t batch_size);

}  // namespace qclique
