// The partition procedure of Section 5.1: random covering sets
// Lambda_x(u, v) and the well-balancedness predicate of Lemma 2.
//
// Each node (u, v, x) keeps each pair {u, v} in P(u, v) independently with
// probability `lambda_sample * log n / sqrt(n)`. The set is well-balanced
// when no single u-row contributes more than `balance_threshold * n^{1/4} *
// log n` pairs; ComputePairs aborts otherwise (a <= 2/n probability event
// by Lemma 2), and the union over x must cover P(u, v).
#pragma once

#include <cstdint>
#include <vector>

#include "core/constants.hpp"
#include "core/partitions.hpp"

namespace qclique {

class Rng;

/// The sampled sets for one (u-block, v-block) and all x in [sqrt(n)].
struct LambdaFamily {
  /// sets[x] = pairs (u, v) of Lambda_x(u, v), in P(u, v) order.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> sets;
  /// Was every set well-balanced?
  bool well_balanced = true;
  /// Did the union of sets cover P(u, v)?
  bool covers = true;
  /// Largest per-u row load observed across sets (Lemma 2 statistic).
  std::uint64_t max_row_load = 0;
};

/// The sampling probability min(1, c log n / sqrt(n)).
double lambda_sample_probability(std::uint32_t n, const Constants& constants);

/// The well-balancedness row threshold c * n^{1/4} * log n.
double lambda_balance_threshold(std::uint32_t n, const Constants& constants);

/// Runs the partition procedure for block pair (ub, vb): constructs
/// Lambda_x(u, v) for every x, evaluates well-balancedness and coverage.
/// (Callers treat !well_balanced as the Lemma 2 abort event.)
LambdaFamily sample_lambda_family(const Partitions& parts, std::uint32_t ub,
                                  std::uint32_t vb, const Constants& constants,
                                  Rng& rng);

}  // namespace qclique
