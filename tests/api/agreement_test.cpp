// Cross-backend agreement: every registered solver must produce the
// identical distance matrix on shared inputs -- the API-level restatement
// of the repository's core invariant that all implementations solve the
// same problem exactly.
#include <gtest/gtest.h>

#include <optional>

#include "api/registry.hpp"
#include "graph/generators.hpp"

namespace qclique {
namespace {

struct AgreementCase {
  std::uint32_t n;
  double density;
  std::int64_t wmin, wmax;
  std::uint64_t seed;
};

class BackendAgreement : public ::testing::TestWithParam<AgreementCase> {};

TEST_P(BackendAgreement, AllBackendsProduceIdenticalDistances) {
  const auto& tc = GetParam();
  Rng rng(tc.seed);
  const Digraph g = random_digraph(tc.n, tc.density, tc.wmin, tc.wmax, rng);
  const bool has_negative = tc.wmin < 0;

  SolverRegistry& registry = SolverRegistry::instance();
  std::optional<ApspReport> reference;
  std::string reference_name;

  for (const std::string& name : registry.names()) {
    const ApspSolver& solver = registry.get(name);
    if (has_negative && !solver.capabilities().negative_weights) continue;
    ExecutionContext ctx(tc.seed * 1000 + 1);
    const ApspReport report = solver.solve(g, ctx);
    if (!reference.has_value()) {
      reference = report;
      reference_name = name;
      continue;
    }
    EXPECT_EQ(report.distances, reference->distances)
        << name << " vs " << reference_name << ": "
        << report.distances.first_difference(reference->distances);
  }
  ASSERT_TRUE(reference.has_value());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BackendAgreement,
    ::testing::Values(AgreementCase{6, 0.5, -3, 6, 1},
                      AgreementCase{9, 0.4, -5, 10, 2},
                      AgreementCase{12, 0.3, -2, 4, 3},
                      AgreementCase{10, 0.7, -10, 20, 4},
                      // Non-negative weights: dijkstra participates too.
                      AgreementCase{10, 0.5, 0, 9, 5},
                      AgreementCase{8, 0.8, 1, 15, 6}));

TEST(BackendAgreement, DistributedBackendsChargeRoundsOraclesDoNot) {
  Rng rng(9);
  const Digraph g = random_digraph(10, 0.5, -3, 8, rng);
  SolverRegistry& registry = SolverRegistry::instance();
  for (const std::string& name : registry.names()) {
    const ApspSolver& solver = registry.get(name);
    if (!solver.capabilities().negative_weights) continue;
    ExecutionContext ctx(10);
    const ApspReport report = solver.solve(g, ctx);
    if (solver.capabilities().distributed) {
      EXPECT_GT(report.rounds, 0u) << name;
      EXPECT_EQ(report.rounds, report.ledger.total_rounds()) << name;
    } else {
      EXPECT_EQ(report.rounds, 0u) << name;
    }
  }
}

TEST(BackendAgreement, NegativeCycleRejectedByEveryBackend) {
  Digraph g(4);
  g.set_arc(0, 1, 2);
  g.set_arc(1, 2, -5);
  g.set_arc(2, 0, 1);  // cycle weight -2
  g.set_arc(2, 3, 3);
  SolverRegistry& registry = SolverRegistry::instance();
  for (const std::string& name : registry.names()) {
    const ApspSolver& solver = registry.get(name);
    if (!solver.capabilities().negative_weights) continue;
    ExecutionContext ctx(1);
    EXPECT_THROW(solver.solve(g, ctx), SimulationError) << name;
  }
}

}  // namespace
}  // namespace qclique
