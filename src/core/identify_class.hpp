// Algorithm IdentifyClass (Figure 2) and the class structure of Section 5.2.
//
// The quantity Delta(u, v; w) -- how many S-pairs of P(u, v) close a
// negative triangle through W-block w -- controls how much traffic the
// checking procedure sends toward node (u, v, w). IdentifyClass estimates
// it for every triple by sampling a public random pair set R (each node u
// samples neighbors into Lambda(u) with prob identify_sample * log n / n
// and broadcasts them with weights), counting
//   duvw = |{ pairs of P(u, v) /\ R : some w in w closes a negative
//             triangle }|
// locally, and assigning the class index
//   cuvw = min { c >= 0 : duvw < identify_class_base * 2^c * log n }.
// Proposition 5: with probability 1 - 2/n the protocol does not abort and
// 2^{alpha-3} n <= |Delta| <= 2^{alpha+1} n for every triple in class
// alpha > 0 (and |Delta| <= 2n in class 0).
#pragma once

#include <cstdint>
#include <vector>

#include "congest/transport.hpp"
#include "core/constants.hpp"
#include "core/partitions.hpp"
#include "graph/weighted_graph.hpp"

namespace qclique {

class Rng;

/// Output of IdentifyClass: one class index per triple, encoded as
/// classes[ub][vb][wb] = alpha.
struct IdentifyClassResult {
  bool aborted = false;
  /// classes[ub * B + vb][wb] = cuvw, with B = num_vblocks.
  std::vector<std::vector<std::uint32_t>> classes;
  /// Largest class index assigned.
  std::uint32_t max_alpha = 0;
  /// |R| (diagnostic).
  std::uint64_t sampled_pairs = 0;
  std::uint64_t rounds = 0;

  std::uint32_t alpha(std::uint32_t ub, std::uint32_t vb, std::uint32_t wb,
                      std::uint32_t num_vblocks) const {
    return classes[static_cast<std::size_t>(ub) * num_vblocks + vb][wb];
  }

  /// T_alpha[u, v]: the W-blocks of class `a` for block pair (ub, vb).
  std::vector<std::uint32_t> t_alpha(std::uint32_t ub, std::uint32_t vb,
                                     std::uint32_t a,
                                     std::uint32_t num_vblocks) const;
};

/// The exact |Delta(u, v; w)| (centralized oracle used by tests and by
/// Proposition 5 validation; the protocol itself never computes it).
std::uint64_t delta_exact(const WeightedGraph& g, const Partitions& parts,
                          const std::vector<VertexPair>& s_pairs, std::uint32_t ub,
                          std::uint32_t vb, std::uint32_t wb);

/// Runs IdentifyClass on the network (rounds measured: the Lambda(u)
/// broadcast goes through real messages; duvw / cuvw are local).
/// `s_pairs` is the promise set S, sorted.
IdentifyClassResult identify_class(Network& net, const WeightedGraph& g,
                                   const Partitions& parts,
                                   const std::vector<VertexPair>& s_pairs,
                                   const Constants& constants, Rng& rng);

}  // namespace qclique
