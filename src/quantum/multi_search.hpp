// Parallel multiple quantum searches (paper Sections 4.1-4.2).
//
// A node runs m Grover searches over a common domain X in lockstep: one
// joint evaluation answers all m oracles, so a stage of j Grover iterations
// costs j joint oracle calls regardless of m. This module simulates the m
// searches *exactly* using the 2-dimensional invariant-subspace form of
// Grover's dynamics: starting from the uniform superposition, the state
// stays in span{ |psi_0>, |psi_1> } and the success amplitude after k
// iterations is sin((2k+1) * theta) with theta = asin(sqrt(M/N)). This is
// algebraically identical to the full state-vector simulation (a property
// test cross-checks the two) but runs in O(1) per search per stage, which
// is what makes simulating Theta(n log n) searches per node feasible.
//
// The typicality audit implements the substitution described in DESIGN.md:
// instead of evolving the (infeasible) joint superposition over X^m, it
// Monte-Carlo samples query tuples from the product of the per-search Born
// distributions at every BBHT stage and measures how often they leave
// Upsilon_beta(m, X) -- the congestion events Theorem 3 proves negligible.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "congest/round_ledger.hpp"
#include "quantum/distributed_search.hpp"

namespace qclique {

class Rng;

/// One search instance: the set of marked elements in [0, dim).
/// (The simulator needs the explicit set to sample measurement outcomes;
/// algorithms construct it from their semantic oracle.)
struct SearchInstance {
  std::vector<std::size_t> solutions;  // sorted, distinct, each < dim
};

/// Options controlling the lockstep BBHT schedule and the typicality audit.
struct MultiSearchOptions {
  /// Total per-search iteration budget factor (budget = factor * sqrt(dim)).
  double cutoff_factor = 9.0;
  /// If > 0, audit tuples against Upsilon_beta with this beta.
  double typicality_beta = 0.0;
  /// Joint tuples sampled per BBHT stage for the audit.
  std::size_t audit_samples_per_stage = 0;
};

/// Aggregate result of m lockstep searches.
struct MultiSearchResult {
  /// Per-search verified solution, or nullopt ("no solution" conclusion).
  std::vector<std::optional<std::size_t>> found;
  std::uint64_t stages = 0;
  /// Joint oracle calls: Grover iterations summed over stages, plus one
  /// verification call per stage (all m searches evaluated together).
  std::uint64_t joint_oracle_calls = 0;
  std::uint64_t rounds_charged = 0;
  // Typicality audit counters (zero when the audit is disabled).
  std::uint64_t audit_tuples = 0;
  std::uint64_t audit_violations = 0;
  std::uint32_t audit_max_frequency = 0;

  /// Number of searches that found a solution.
  std::size_t num_found() const;
};

/// Exact closed-form success probability of one search after k iterations
/// (identical to grover_success_probability; re-exported for clarity).
double analytic_success_probability(std::size_t dim, std::size_t solutions,
                                    std::uint64_t k);

/// Runs m lockstep BBHT searches over [0, dim), charging
/// `cost` per joint oracle call to `ledger` under `phase`.
MultiSearchResult multi_search(std::size_t dim,
                               const std::vector<SearchInstance>& searches,
                               const DistributedSearchCost& cost,
                               const MultiSearchOptions& options,
                               RoundLedger& ledger, const std::string& phase,
                               Rng& rng);

/// Convenience overload charging straight onto a transport's ledger, for
/// harnesses measuring against a live network (equivalent to passing
/// net.ledger()).
MultiSearchResult multi_search(std::size_t dim,
                               const std::vector<SearchInstance>& searches,
                               const DistributedSearchCost& cost,
                               const MultiSearchOptions& options, Network& net,
                               const std::string& phase, Rng& rng);

}  // namespace qclique
