// Negative-triangle census: the FindEdges problem (paper Section 3) on a
// graph with planted negative triangles.
//
//   $ ./example_negative_triangle_census [n] [planted]
//
// Plants `planted` disjoint negative triangles into an n-vertex background
// graph, runs the Proposition 1 + Theorem 2 pipeline, and reports the
// recovered hot pairs, the quantum search statistics, and the typicality
// audit that validates the Theorem 3 congestion assumption.
#include <cstdlib>
#include <iostream>

#include "common/rng.hpp"
#include "core/find_edges.hpp"
#include "graph/generators.hpp"
#include "graph/triangles.hpp"

int main(int argc, char** argv) {
  using namespace qclique;
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 48;
  const std::uint32_t planted =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 6;

  Rng rng(7);
  std::vector<VertexPair> truth;
  const WeightedGraph g = planted_negative_triangles(n, planted, rng, &truth);
  std::cout << "Graph: n = " << n << ", " << g.num_edges() << " edges, "
            << planted << " planted negative triangles (" << truth.size()
            << " hot pairs expected).\n\n";

  FindEdgesOptions options;
  options.compute_pairs.audit_samples_per_stage = 4;
  const FindEdgesResult result = find_edges(g, options, rng);

  std::cout << "Recovered " << result.hot_pairs.size() << " hot pairs:";
  for (const auto& pr : result.hot_pairs) {
    std::cout << " {" << pr.a << "," << pr.b << "}";
  }
  std::cout << "\nGround truth match: "
            << (result.hot_pairs == truth ? "exact" : "MISMATCH") << "\n\n";

  std::cout << "Cost: " << result.rounds << " simulated rounds, "
            << result.compute_pairs_calls << " ComputePairs call(s), "
            << result.loop_iterations << " Prop-1 sampling iteration(s), "
            << result.aborts_retried << " abort retr(ies).\n\n"
            << "Phase breakdown:\n"
            << result.ledger.report();
  return 0;
}
