#include "common/rng.hpp"

#include "common/error.hpp"

namespace qclique {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) {
  QCLIQUE_CHECK(bound >= 1, "uniform_u64 bound must be >= 1");
  // Rejection sampling on the top of the range to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) {
  QCLIQUE_CHECK(lo <= hi, "uniform_i64 requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 64-bit range.
  const std::uint64_t r = (span == 0) ? next_u64() : uniform_u64(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + r);
}

double Rng::uniform_double() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_double() < p;
}

Rng Rng::split() {
  // Use two fresh outputs to seed the child; xoshiro's jump polynomial would
  // be stronger in theory, but seeding through SplitMix64 already decorrelates
  // streams for Monte-Carlo purposes.
  std::uint64_t mix = next_u64() ^ rotl(next_u64(), 31);
  return Rng(splitmix64(mix));
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  QCLIQUE_CHECK(k <= n, "cannot sample more elements than the population");
  // Floyd's algorithm: O(k) expected inserts into a sorted vector (k is small
  // in all our uses; a hash set would be overkill).
  std::vector<std::size_t> chosen;
  chosen.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = static_cast<std::size_t>(uniform_u64(j + 1));
    bool seen = false;
    for (std::size_t c : chosen) {
      if (c == t) {
        seen = true;
        break;
      }
    }
    chosen.push_back(seen ? j : t);
  }
  return chosen;
}

}  // namespace qclique
