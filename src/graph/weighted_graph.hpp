// Undirected weighted graph G = (V, E, f), the input type of FindEdges /
// FindEdgesWithPromise (paper Section 3).
//
// Vertices are [0, n). The representation is a dense symmetric weight matrix
// with kPlusInf meaning "no edge" -- dense is the right choice here because
// CONGEST-CLIQUE inputs always have exactly one vertex per network node and
// the algorithms stream whole rows between nodes.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/math.hpp"

namespace qclique {

/// Unordered vertex pair {u, v}, normalized so first < second.
struct VertexPair {
  std::uint32_t a;
  std::uint32_t b;

  VertexPair(std::uint32_t u, std::uint32_t v) : a(u < v ? u : v), b(u < v ? v : u) {}

  friend bool operator==(const VertexPair&, const VertexPair&) = default;
  friend auto operator<=>(const VertexPair&, const VertexPair&) = default;
};

/// Undirected graph with integer edge weights (kPlusInf = absent edge).
class WeightedGraph {
 public:
  explicit WeightedGraph(std::uint32_t n);

  std::uint32_t size() const { return n_; }

  bool has_edge(std::uint32_t u, std::uint32_t v) const;

  /// Weight of {u, v}; kPlusInf if absent. weight(u, u) is kPlusInf by
  /// convention (the paper's graphs have no self-loops).
  std::int64_t weight(std::uint32_t u, std::uint32_t v) const;

  /// Zero-copy pointer to row u of the dense weight matrix (n entries,
  /// kPlusInf = absent) -- the accessor hot loops use instead of per-entry
  /// weight() index arithmetic.
  const std::int64_t* row_ptr(std::uint32_t u) const;

  /// Adds or updates the edge {u, v}. u != v required.
  void set_edge(std::uint32_t u, std::uint32_t v, std::int64_t w);

  /// Removes the edge if present.
  void remove_edge(std::uint32_t u, std::uint32_t v);

  std::uint64_t num_edges() const { return num_edges_; }

  /// All edges as normalized pairs with weights, ordered by (a, b).
  std::vector<std::pair<VertexPair, std::int64_t>> edges() const;

  /// Neighbors of u (vertices v with {u,v} in E).
  std::vector<std::uint32_t> neighbors(std::uint32_t u) const;

  /// All adjacency lists at once (the graph-induced communication links of
  /// the general-CONGEST transport; see congest/transport.hpp).
  std::vector<std::vector<std::uint32_t>> adjacency_lists() const;

  /// Keeps each edge independently with probability p (the edge-sampling
  /// step of Proposition 1). Returns the subgraph.
  WeightedGraph sample_edges(double p, class Rng& rng) const;

 private:
  std::size_t idx(std::uint32_t u, std::uint32_t v) const {
    return static_cast<std::size_t>(u) * n_ + v;
  }

  std::uint32_t n_;
  std::uint64_t num_edges_ = 0;
  std::vector<std::int64_t> w_;  // dense, symmetric, kPlusInf = absent
};

}  // namespace qclique
