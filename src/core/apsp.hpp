// Quantum distributed APSP (Theorem 1).
//
// The full pipeline of the paper:
//   APSP  --Prop 3-->  O(log n) distance products (repeated squaring)
//         --Prop 2-->  O(log M) FindEdges calls per product (binary search
//                      over the tripartite gadget)
//         --Prop 1-->  O(log n) FindEdgesWithPromise calls per FindEdges
//         --Thm 2--->  ComputePairs with O~(n^{1/4})-round quantum searches.
// Round complexity: O~(n^{1/4} log W). Setting `use_quantum = false` runs
// the identical pipeline over the classical O(sqrt n) search, giving the
// like-for-like comparison the paper draws against [4]'s O~(n^{1/3}).
#pragma once

#include <cstdint>
#include <optional>

#include "core/distance_product.hpp"
#include "graph/digraph.hpp"

namespace qclique {

/// Knobs for the APSP pipeline.
struct QuantumApspOptions {
  DistanceProductOptions product;
  /// Verify no negative cycle (negative diagonal) and throw if found.
  bool check_negative_cycles = true;
};

/// Result of the pipeline.
struct QuantumApspResult {
  DistMatrix distances;
  std::uint64_t rounds = 0;
  std::uint64_t products = 0;
  std::uint64_t find_edges_calls = 0;
  RoundLedger ledger;

  explicit QuantumApspResult(std::uint32_t n) : distances(n) {}
};

/// Solves APSP on g (directed, integer weights, no negative cycles) through
/// the full quantum reduction pipeline.
QuantumApspResult quantum_apsp(const Digraph& g, const QuantumApspOptions& options,
                               Rng& rng);

}  // namespace qclique
