#include "baseline/classical_apsp.hpp"

#include "baseline/semiring_product.hpp"
#include "common/error.hpp"
#include "congest/network.hpp"

namespace qclique {

ApspResult classical_apsp(const Digraph& g, const NetworkConfig& net_config) {
  const std::uint32_t n = g.size();
  ApspResult res(n);
  CliqueNetwork net(std::max<std::uint32_t>(n, 2), net_config);

  DistMatrix acc = g.to_dist_matrix();
  std::uint64_t covered = 1;
  while (covered < static_cast<std::uint64_t>(n > 1 ? n - 1 : 1)) {
    acc = semiring_distance_product(net, acc, acc).product;
    ++res.products;
    covered *= 2;
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    QCLIQUE_CHECK(acc.at(i, i) >= 0, "classical_apsp: negative cycle in input");
  }
  res.distances = acc;
  res.rounds = net.ledger().total_rounds();
  res.ledger = net.ledger();
  return res;
}

}  // namespace qclique
