// Tests for the Figures 4-5 evaluation procedures: answer correctness,
// measured round costs, the list-size promise audit, and the alpha > 0
// duplication scheme.
#include "core/evaluation.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "congest/network.hpp"
#include "graph/generators.hpp"
#include "graph/triangles.hpp"

namespace qclique {
namespace {

struct Fixture {
  std::uint32_t n;
  WeightedGraph g;
  Partitions parts;
  CliqueNetwork net;

  explicit Fixture(std::uint32_t n_, std::uint64_t seed, double density = 0.5)
      : n(n_), g(n_), parts(n_), net(n_) {
    Rng rng(seed);
    g = random_weighted_graph(n_, density, -8, 10, rng);
  }
};

/// All W-blocks as the search domain.
std::vector<std::uint32_t> full_domain(const Partitions& parts) {
  std::vector<std::uint32_t> t;
  for (std::uint32_t wb = 0; wb < parts.num_wblocks(); ++wb) t.push_back(wb);
  return t;
}

TEST(Evaluation, AnswersMatchSemanticOracle) {
  Fixture f(36, 1);
  const auto t = full_domain(f.parts);
  EvalQuerySet qs;
  qs.queries.resize(f.parts.num_wblocks());
  Rng rng(2);
  // Every edge in block pair (0, 0) queries a random W-block from x = 0.
  for (const auto& [u, v] : f.parts.block_pairs(0, 0)) {
    if (!f.g.has_edge(u, v)) continue;
    qs.queries[0].emplace_back(VertexPair(u, v),
                               static_cast<std::uint32_t>(rng.uniform_u64(t.size())));
  }
  const auto stats = run_evaluation(f.net, f.g, f.parts, 0, 0, /*alpha=*/0, t, qs,
                                    Constants::paper(), false);
  ASSERT_EQ(stats.answers[0].size(), qs.queries[0].size());
  for (std::size_t i = 0; i < qs.queries[0].size(); ++i) {
    const auto& [pair, wpos] = qs.queries[0][i];
    const auto ws = f.parts.wblock_vertices(t[wpos]);
    EXPECT_EQ(stats.answers[0][i],
              exists_negative_triangle_via(f.g, pair.a, pair.b, ws));
  }
}

TEST(Evaluation, RoundsMeasuredPositiveWithTraffic) {
  Fixture f(25, 3);
  const auto t = full_domain(f.parts);
  EvalQuerySet qs;
  qs.queries.resize(f.parts.num_wblocks());
  bool any = false;
  for (const auto& [u, v] : f.parts.block_pairs(0, 0)) {
    if (f.g.has_edge(u, v)) {
      qs.queries[1 % f.parts.num_wblocks()].emplace_back(VertexPair(u, v), 0u);
      any = true;
    }
  }
  ASSERT_TRUE(any);
  const auto stats = run_evaluation(f.net, f.g, f.parts, 0, 0, 0, t, qs,
                                    Constants::paper(), false);
  EXPECT_GT(stats.rounds, 0u);
  EXPECT_GT(stats.messages, 0u);
}

TEST(Evaluation, EmptyQueriesCostNothing) {
  Fixture f(16, 4);
  EvalQuerySet qs;
  qs.queries.resize(f.parts.num_wblocks());
  const auto stats = run_evaluation(f.net, f.g, f.parts, 0, 0, 0, full_domain(f.parts),
                                    qs, Constants::paper(), false);
  EXPECT_EQ(stats.rounds, 0u);
  EXPECT_EQ(stats.max_list_len, 0u);
}

TEST(Evaluation, PromiseViolationDetectedUnderTinyThreshold) {
  Fixture f(36, 5, 0.9);
  Constants cst = Constants::paper();
  cst.eval_load = 1e-9;  // any nonempty list violates
  const auto t = full_domain(f.parts);
  EvalQuerySet qs;
  qs.queries.resize(f.parts.num_wblocks());
  for (const auto& [u, v] : f.parts.block_pairs(0, 0)) {
    if (f.g.has_edge(u, v)) qs.queries[0].emplace_back(VertexPair(u, v), 0u);
  }
  const auto stats =
      run_evaluation(f.net, f.g, f.parts, 0, 0, 0, t, qs, cst, false);
  EXPECT_GT(stats.promise_violations, 0u);
}

TEST(Evaluation, DuplicationFactorFormula) {
  // Paper constants: 2^alpha / (720 log n) < 1 until alpha is large.
  EXPECT_EQ(duplication_factor(256, 0, Constants::paper()), 1u);
  EXPECT_EQ(duplication_factor(256, 5, Constants::paper()), 1u);
  // 2^13 = 8192 > 720 * 8: factor kicks in.
  EXPECT_GE(duplication_factor(256, 13, Constants::paper()), 1u);
  // Scaled constants activate duplication at small alpha.
  Constants cst = Constants::paper();
  cst.class_size = 0.25;
  EXPECT_GE(duplication_factor(256, 4, cst), 2u);
}

TEST(Evaluation, AlphaPositiveWithDuplicationStillCorrect) {
  Fixture f(49, 6, 0.7);
  Constants cst = Constants::paper();
  cst.class_size = 0.25;  // force duplication at alpha = 3
  const std::uint32_t alpha = 3;
  ASSERT_GE(duplication_factor(f.n, alpha, cst), 2u);
  const auto t = full_domain(f.parts);
  EvalQuerySet qs;
  qs.queries.resize(f.parts.num_wblocks());
  Rng rng(7);
  for (const auto& [u, v] : f.parts.block_pairs(0, 1)) {
    if (!f.g.has_edge(u, v)) continue;
    qs.queries[rng.uniform_u64(f.parts.num_wblocks())].emplace_back(
        VertexPair(u, v), static_cast<std::uint32_t>(rng.uniform_u64(t.size())));
  }
  const auto stats =
      run_evaluation(f.net, f.g, f.parts, 0, 1, alpha, t, qs, cst, true);
  EXPECT_GT(stats.duplication_rounds, 0u);
  for (std::uint32_t x = 0; x < f.parts.num_wblocks(); ++x) {
    for (std::size_t i = 0; i < qs.queries[x].size(); ++i) {
      const auto& [pair, wpos] = qs.queries[x][i];
      const auto ws = f.parts.wblock_vertices(t[wpos]);
      EXPECT_EQ(stats.answers[x][i],
                exists_negative_triangle_via(f.g, pair.a, pair.b, ws));
    }
  }
}

TEST(Evaluation, ListPromiseFormula) {
  // 800 * 2^alpha * sqrt(n) * log n.
  const double v = eval_list_promise(256, 2, Constants::paper());
  EXPECT_NEAR(v, 800.0 * 4 * 16 * 8, 1e-6);
}

TEST(Evaluation, RejectsMalformedQuerySet) {
  Fixture f(16, 8);
  EvalQuerySet qs;  // wrong arity
  EXPECT_THROW(run_evaluation(f.net, f.g, f.parts, 0, 0, 0, full_domain(f.parts),
                              qs, Constants::paper(), false),
               SimulationError);
}

TEST(Evaluation, RejectsQueryOutsideDomain) {
  Fixture f(16, 9);
  EvalQuerySet qs;
  qs.queries.resize(f.parts.num_wblocks());
  qs.queries[0].emplace_back(VertexPair(0, 1), 999u);
  EXPECT_THROW(run_evaluation(f.net, f.g, f.parts, 0, 0, 0, full_domain(f.parts),
                              qs, Constants::paper(), false),
               SimulationError);
}

}  // namespace
}  // namespace qclique
