// Experiment E8 (Lemma 2): the partition procedure's covering and
// well-balancedness guarantees.
//
// For each n, repeats the Lambda_x(u, v) sampling across seeds and reports
// the empirical probability of (i) every set well-balanced and (ii) the
// union covering P(u, v), next to the coverage probability predicted by
// Lemma 2's calculation P[pair missed] = (1 - p)^{sqrt n}. Two profiles:
//   * paper constants: p = min(1, 10 log n / sqrt n) saturates at 1 for
//     all simulable n, so balance and coverage are certain -- the regime
//     the paper actually runs in until n ~ 10^4;
//   * scaled constants: a sub-saturating p demonstrates *why* the paper
//     needs the constant 10: coverage collapses exactly as the formula
//     predicts once (1-p)^{sqrt n} stops being negligible.
#include <cmath>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/lambda_sampler.hpp"
#include "graph/families.hpp"

int main() {
  using namespace qclique;
  std::cout << "E8: Lemma 2 -- well-balancedness and covering of Lambda_x(u,v)\n";

  for (const double scale : {1.0, 0.05}) {
    const Constants cst = scale == 1.0 ? Constants::paper() : Constants::scaled(scale);
    Table table({"n", "P(sample)", "balanced%", "covers%", "predicted covers%",
                 "max row load", "threshold"});
    for (const std::uint32_t n : {64u, 144u, 256u, 400u}) {
      Partitions parts(n);
      const std::uint32_t vb = parts.num_vblocks() > 1 ? 1 : 0;
      const double p = lambda_sample_probability(n, cst);
      const double pairs =
          static_cast<double>(parts.block_pairs(0, vb).size());
      const double miss = std::pow(1.0 - p, parts.num_wblocks());
      const double predicted = std::pow(1.0 - miss, pairs);
      int balanced = 0, covers = 0;
      std::uint64_t max_load = 0;
      const int trials = 25;
      for (int t = 0; t < trials; ++t) {
        Rng rng(1000 * n + t);
        const auto fam = sample_lambda_family(parts, 0, vb, cst, rng);
        balanced += fam.well_balanced;
        covers += fam.covers;
        max_load = std::max(max_load, fam.max_row_load);
      }
      table.add_row({Table::fmt(static_cast<std::uint64_t>(n)), Table::fmt(p, 3),
                     Table::fmt(100.0 * balanced / trials, 1) + "%",
                     Table::fmt(100.0 * covers / trials, 1) + "%",
                     Table::fmt(100.0 * predicted, 1) + "%", Table::fmt(max_load),
                     Table::fmt(lambda_balance_threshold(n, cst), 0)});
    }
    table.print(scale == 1.0
                    ? "Paper constants (p saturates at 1: certain coverage)"
                    : "Scaled constants x0.05 (sub-saturating p: coverage decays "
                      "as Lemma 2 predicts)");
  }
  // --- Adversarial workload shape: the lambda-skew family. -----------------
  // sample_lambda_family spreads P(u, v) uniformly, but the *edge-backed*
  // pair mass a workload actually queries follows the graph. The
  // lambda-skew family concentrates that mass on `hubs` rows; this table
  // contrasts its per-row concentration against gnp at equal edge budget,
  // next to the Lemma 2 balance threshold the row loads are measured
  // against.
  Table skew({"n", "family", "edges", "max row pairs", "mean row pairs",
              "skew x", "threshold"});
  for (const std::uint32_t n : {64u, 144u, 256u}) {
    for (const bool adversarial : {false, true}) {
      // Equal expected edge budget: the skew family's hub rows are
      // complete, so its sparse rows get the remainder of gnp's mass.
      FamilyConfig cfg = family_config(n, adversarial ? 0.05 : 0.1, 1, 9);
      cfg.hubs = 2;
      Rng rng(31 * n + adversarial);
      const auto g = make_family_weighted(adversarial ? "lambda-skew" : "gnp",
                                          cfg, rng);
      Partitions parts(n);
      const std::uint32_t vb = parts.num_vblocks() > 1 ? 1 : 0;
      std::uint64_t max_row = 0, total = 0;
      std::uint32_t rows = 0;
      for (const std::uint32_t u : parts.vblock_vertices(0)) {
        std::uint64_t row = 0;
        for (const std::uint32_t v : parts.vblock_vertices(vb)) {
          row += (u != v && g.has_edge(u, v));
        }
        max_row = std::max(max_row, row);
        total += row;
        ++rows;
      }
      const double mean =
          rows ? static_cast<double>(total) / static_cast<double>(rows) : 0.0;
      skew.add_row({Table::fmt(static_cast<std::uint64_t>(n)),
                    adversarial ? "lambda-skew" : "gnp",
                    Table::fmt(g.num_edges()), Table::fmt(max_row),
                    Table::fmt(mean, 1),
                    Table::fmt(mean > 0 ? static_cast<double>(max_row) / mean : 0.0, 1),
                    Table::fmt(lambda_balance_threshold(n, Constants::paper()), 0)});
    }
  }
  skew.print("Edge-backed pair mass per u-row, block pair (0, vb): gnp vs "
             "lambda-skew");

  std::cout << "\nReading: empirical covers% tracks the predicted column in both\n"
               "regimes. The paper's constant 10 keeps (1-p)^{sqrt n} <= n^{-4}\n"
               "asymptotically; at simulable n that forces p = 1. The skew\n"
               "table shows why structured workloads matter: lambda-skew packs\n"
               "its hub rows to the block width (a skew factor far above gnp's),\n"
               "exactly the row concentration the Lemma 2 threshold polices.\n";
  return 0;
}
