// Internal: the shared tile skeleton behind the blocked and SIMD min-plus
// kernels (not part of the public kernel API -- include matrix/kernels.hpp).
//
// Every band implementation -- scalar, AVX2, AVX-512, NEON -- is the same
// tiled i/k/j traversal differing only in how it processes one row of one
// *clean* (sentinel-free) B tile. This header owns that traversal as the
// `banded_tiles` template plus the scalar helpers for the sentinel paths
// (-inf rows, dirty tiles, vector-remainder columns); each per-ISA
// translation unit instantiates the skeleton with its own clean-row functor
// and is compiled with only that ISA's flags (see CMakeLists.txt). Keeping
// one traversal order across tiers is what makes the kernel contract's
// bit-identical-witnesses clause hold by construction: the smallest-k
// tie-break falls out of strict-improvement updates while k ascends, and k
// ascends identically in every tier.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/math.hpp"

namespace qclique::detail {

/// Sentinel witness value duplicated from kernels.hpp (this header must not
/// include it: kernels.hpp is the public surface, this the private one).
inline constexpr std::uint32_t kBandNoWitness = 0xffffffffu;

/// Sanitizes the public block_size knob into a tile edge the loops can
/// trust: at least 1, at most the largest dimension (so tile arithmetic
/// like `cols + bs - 1` and `ii += bs` cannot wrap uint32 for any
/// representable matrix).
std::uint32_t clamp_block(std::uint32_t block, std::uint32_t rows,
                          std::uint32_t inner, std::uint32_t cols);

/// clean[k * ntiles + t] = 1 when row k of B has no sentinel inside column
/// tile t (all entries strictly between kMinusInf and kPlusInf), for tiles
/// of `bs` columns. Computed once per product and shared by every row band.
std::vector<std::uint8_t> classify_b_tiles(const std::int64_t* b, std::uint32_t inner,
                                           std::uint32_t cols, std::uint32_t bs);

/// aik = -inf: -inf + x = -inf unless x = +inf; -inf beats everything
/// except an already-recorded -inf.
inline void minus_inf_row(const std::int64_t* brow, std::int64_t* crow,
                          std::uint32_t* wrow, std::uint32_t jj, std::uint32_t jh,
                          std::uint32_t k) {
  for (std::uint32_t j = jj; j < jh; ++j) {
    if (is_plus_inf(brow[j]) || crow[j] <= kMinusInf) continue;
    crow[j] = kMinusInf;
    if (wrow) wrow[j] = k;
  }
}

/// Finite aik over a sentinel-free stretch of B row k, scalar form. The
/// loop exploits two saturation facts to drop per-element sentinel checks
/// without changing a single output bit:
///   * every stored c entry lies in [kMinusInf, kPlusInf], so a sum that
///     would saturate to +inf can never pass the `s < c` test -- sums over
///     sentinel-free stretches need no upper clamp at all;
///   * the lower clamp only matters when the raw sum already beat c, so it
///     runs on the (rare) update path, not per element.
/// This is also the remainder loop after a vector body: the SIMD tiers
/// compute exactly max(aik + b, -inf) folded into the running min, which is
/// bit-identical to this.
inline void clean_row_scalar(std::int64_t aik, const std::int64_t* brow,
                             std::int64_t* crow, std::uint32_t* wrow,
                             std::uint32_t jj, std::uint32_t jh, std::uint32_t k) {
  if (wrow == nullptr) {
    // Branchless min/max form the compiler can vectorize.
    for (std::uint32_t j = jj; j < jh; ++j) {
      const std::int64_t s = aik + brow[j];
      const std::int64_t v = s <= kMinusInf ? kMinusInf : s;
      crow[j] = v < crow[j] ? v : crow[j];
    }
    return;
  }
  for (std::uint32_t j = jj; j < jh; ++j) {
    const std::int64_t s = aik + brow[j];
    if (s < crow[j]) {
      // Clamp below only on the update path (rare), re-testing so a sum
      // under an already-stored -inf stays a no-op.
      const std::int64_t v = s <= kMinusInf ? kMinusInf : s;
      if (v < crow[j]) {
        crow[j] = v;
        wrow[j] = k;
      }
    }
  }
}

/// Finite aik over a dirty (sentinel-carrying) stretch of B row k: mirrors
/// sat_add case by case.
inline void careful_row(std::int64_t aik, const std::int64_t* brow,
                        std::int64_t* crow, std::uint32_t* wrow,
                        std::uint32_t jj, std::uint32_t jh, std::uint32_t k) {
  for (std::uint32_t j = jj; j < jh; ++j) {
    const std::int64_t bkj = brow[j];
    if (bkj >= kPlusInf) continue;  // s = +inf: never < crow[j]
    std::int64_t s;
    if (bkj <= kMinusInf) {
      s = kMinusInf;
    } else {
      s = aik + bkj;
      if (s >= kPlusInf) continue;  // saturates to +inf: never wins
      if (s <= kMinusInf) s = kMinusInf;
    }
    if (s < crow[j]) {
      crow[j] = s;
      if (wrow) wrow[j] = k;
    }
  }
}

/// The tiled i/k/j traversal over one row band [0, rows), parameterized by
/// the clean-tile row body. `clean_row(aik, brow, crow, wrow, jj, jh, k)`
/// must fold max(aik + brow[j], kMinusInf) into crow[j] under strict
/// improvement for j in [jj, jh) -- clean_row_scalar is the reference
/// implementation and the remainder loop every vector body falls back on.
/// `clean` comes from classify_b_tiles with the same `bs`.
template <typename CleanRow>
inline void banded_tiles(const std::int64_t* a, const std::int64_t* b,
                         std::int64_t* c, std::uint32_t rows, std::uint32_t inner,
                         std::uint32_t cols, std::uint32_t bs,
                         const std::uint8_t* clean, std::uint32_t* witness,
                         CleanRow&& clean_row) {
  std::fill(c, c + static_cast<std::size_t>(rows) * cols, kPlusInf);
  if (witness != nullptr) {
    std::fill(witness, witness + static_cast<std::size_t>(rows) * cols,
              kBandNoWitness);
  }
  const std::uint32_t ntiles = (cols + bs - 1) / bs;
  for (std::uint32_t ii = 0; ii < rows; ii += bs) {
    const std::uint32_t ih = std::min(rows, ii + bs);
    for (std::uint32_t kk = 0; kk < inner; kk += bs) {
      const std::uint32_t kh = std::min(inner, kk + bs);
      for (std::uint32_t jj = 0; jj < cols; jj += bs) {
        const std::uint32_t jh = std::min(cols, jj + bs);
        const std::uint32_t tile = jj / bs;
        for (std::uint32_t i = ii; i < ih; ++i) {
          const std::int64_t* arow = a + static_cast<std::size_t>(i) * inner;
          std::int64_t* crow = c + static_cast<std::size_t>(i) * cols;
          std::uint32_t* wrow =
              witness ? witness + static_cast<std::size_t>(i) * cols : nullptr;
          for (std::uint32_t k = kk; k < kh; ++k) {
            const std::int64_t aik = arow[k];
            if (is_plus_inf(aik)) continue;  // +inf sums never win
            const std::int64_t* brow = b + static_cast<std::size_t>(k) * cols;
            if (is_minus_inf(aik)) {
              minus_inf_row(brow, crow, wrow, jj, jh, k);
            } else if (clean[static_cast<std::size_t>(k) * ntiles + tile]) {
              clean_row(aik, brow, crow, wrow, jj, jh, k);
            } else {
              careful_row(aik, brow, crow, wrow, jj, jh, k);
            }
          }
        }
      }
    }
  }
}

/// The band-function signature every tier exports: one tile-traversal over
/// `rows` output rows. The "blocked"/"parallel"/"simd" kernels call these
/// per row band after classifying B's tiles once.
using BandFn = void (*)(const std::int64_t* a, const std::int64_t* b,
                        std::int64_t* c, std::uint32_t rows, std::uint32_t inner,
                        std::uint32_t cols, std::uint32_t bs,
                        const std::uint8_t* clean, std::uint32_t* witness);

/// Scalar band (kernel_scalar.cpp): banded_tiles over clean_row_scalar.
void blocked_band(const std::int64_t* a, const std::int64_t* b, std::int64_t* c,
                  std::uint32_t rows, std::uint32_t inner, std::uint32_t cols,
                  std::uint32_t bs, const std::uint8_t* clean,
                  std::uint32_t* witness);

/// Per-ISA vector bands. Each is defined in its own translation unit,
/// compiled with exactly that ISA's flags; when the toolchain cannot target
/// the ISA the TU compiles a stub that forwards to blocked_band and reports
/// compiled() = false, so the symbols always link and the runtime
/// dispatcher (kernels.cpp) never calls a stub.
void simd_band_avx2(const std::int64_t* a, const std::int64_t* b, std::int64_t* c,
                    std::uint32_t rows, std::uint32_t inner, std::uint32_t cols,
                    std::uint32_t bs, const std::uint8_t* clean,
                    std::uint32_t* witness);
void simd_band_avx512(const std::int64_t* a, const std::int64_t* b, std::int64_t* c,
                      std::uint32_t rows, std::uint32_t inner, std::uint32_t cols,
                      std::uint32_t bs, const std::uint8_t* clean,
                      std::uint32_t* witness);
void simd_band_neon(const std::int64_t* a, const std::int64_t* b, std::int64_t* c,
                    std::uint32_t rows, std::uint32_t inner, std::uint32_t cols,
                    std::uint32_t bs, const std::uint8_t* clean,
                    std::uint32_t* witness);

/// Whether the tier's TU was built with its vector instructions enabled
/// (a compile-time fact; CPU support is the dispatcher's runtime half).
bool kernel_band_avx2_compiled();
bool kernel_band_avx512_compiled();
bool kernel_band_neon_compiled();

}  // namespace qclique::detail
