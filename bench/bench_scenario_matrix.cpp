// Experiment E15: the full scenario matrix -- graph family x solver
// backend x transport topology x min-plus kernel, the four registry axes
// crossed in one BatchRunner::run_scenarios sweep.
//
//   $ ./bench_scenario_matrix [n] [json-path] [--workers=N] [--budget=BYTES]
//                             [--process] [--verify]
//
// Every registered graph family is generated once at size n and pushed
// through the distributed backends on every registered topology (and the
// centralized reference on the first), across two kernels. Per scenario,
// all successful runs must agree exactly with the floyd-warshall oracle on
// that family's graph: graph structure, like the topology and the kernel,
// changes what runs *cost*, never what they *compute*. Sparse topologies
// may reject structurally incompatible inputs (a disconnected clustered
// graph has no congest route); those scenarios report the rejection
// instead of failing the bench. The full grid is exported as one JSON
// array (scenarios_to_json) -- the artifact CI uploads.
//
// The exec knobs drive the out-of-core multi-process engine
// (docs/EXECUTION.md): --workers sets the fan-out, --process forks worker
// processes instead of threads, and --budget caps the in-core bytes
// finished distance matrices may occupy (QCLIQUE_MEMORY_BUDGET works too;
// the flag wins). Under a budget the bench additionally *requires* that
// the sweep actually spilled -- an out-of-core run that fit in core would
// gate nothing. --verify reruns the sweep single-process, single-worker,
// unbounded, and demands the merged canonical grids (timings stripped) be
// byte-identical -- the acceptance gate CI runs under a budget tight
// enough that every family's dense matrix pages through disk.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/batch_runner.hpp"
#include "common/table.hpp"
#include "exec/page_store.hpp"

int main(int argc, char** argv) {
  using namespace qclique;
  std::uint32_t n = 12;
  std::string json_path;
  unsigned workers = 0;
  std::size_t budget = 0;
  bool process_mode = false;
  bool verify = false;

  std::vector<std::string> positional;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--workers=", 0) == 0) {
      workers = static_cast<unsigned>(std::atoi(arg.c_str() + 10));
    } else if (arg.rfind("--budget=", 0) == 0) {
      budget = parse_byte_size(arg.substr(9));
    } else if (arg == "--process") {
      process_mode = true;
    } else if (arg == "--verify") {
      verify = true;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() > 0) n = static_cast<std::uint32_t>(std::atoi(positional[0].c_str()));
  if (positional.size() > 1) json_path = positional[1];
  // The env knob and the flag are the same budget; the flag wins. Folding
  // the env value in here (rather than relying on ExecutionContext picking
  // it up) keeps the spill gate armed however the budget was set.
  if (budget == 0) budget = memory_budget_from_env();

  std::cout << "E15: scenario matrix (family x backend x topology x kernel), n = "
            << n << "\n";
  std::cout << "exec: workers=" << workers << " ("
            << (process_mode ? "processes" : "threads") << "), budget="
            << budget << " bytes" << (budget == 0 ? " (in-core)" : "")
            << (verify ? ", verify vs in-process unbounded" : "") << "\n\n";

  SolverRegistry& registry = SolverRegistry::instance();
  ScenarioSpec spec;
  spec.solvers = {"quantum", "semiring", "floyd-warshall"};
  spec.kernels = {"naive", "blocked"};
  spec.config.n = n;
  spec.config.wmin = -4;
  spec.config.wmax = 9;
  spec.graph_seed = 71;
  spec.workers = workers;
  spec.process_mode = process_mode;
  spec.memory_budget = budget;

  ExecutionContext base(4200 + n);
  const BatchRunner runner(registry, base);
  const auto results = runner.run_scenarios(spec);
  const PageStore::Stats page_stats = base.page_store().stats();

  // Per family: the oracle's distances on that family's graph are the
  // reference every successful scenario must reproduce. distances() pages
  // spilled matrices back in, so the agreement check is budget-oblivious.
  Table table({"family", "scenarios", "ok", "rejected", "rounds min..max",
               "agree"});
  bool all_agree = true;
  std::size_t i = 0;
  while (i < results.size()) {
    const std::string family = results[i].family;
    DistMatrix reference(1);
    bool have_reference = false;
    std::size_t total = 0, ok = 0, rejected = 0;
    std::uint64_t rmin = ~0ull, rmax = 0;
    bool agree = true;
    for (; i < results.size() && results[i].family == family; ++i) {
      const auto& r = results[i];
      ++total;
      if (!r.ok) {
        ++rejected;
        continue;
      }
      ++ok;
      if (r.solver == "floyd-warshall" && !have_reference) {
        reference = r.distances();
        have_reference = true;
      }
      rmin = std::min(rmin, r.report->rounds);
      rmax = std::max(rmax, r.report->rounds);
    }
    // Second pass over this family's slice for agreement with the oracle.
    for (std::size_t j = i - total; j < i; ++j) {
      const auto& r = results[j];
      if (!r.ok || !have_reference) continue;
      agree = agree && r.distances() == reference;
    }
    agree = agree && have_reference && ok > 0;
    all_agree = all_agree && agree;
    table.add_row({family, Table::fmt(static_cast<std::uint64_t>(total)),
                   Table::fmt(static_cast<std::uint64_t>(ok)),
                   Table::fmt(static_cast<std::uint64_t>(rejected)),
                   Table::fmt(rmin > rmax ? 0 : rmin) + ".." + Table::fmt(rmax),
                   agree ? "yes" : "NO"});
  }
  table.print("Scenario matrix: per-family cross-backend agreement");

  // Out-of-core gate: a budgeted run that never spilled proves nothing --
  // the grid must genuinely not have fit in core.
  bool spill_gate = true;
  if (budget != 0) {
    std::cout << "\npage store: " << page_stats.spills << " spills, "
              << page_stats.faults << " faults, peak in-core "
              << page_stats.peak_in_core_bytes << " bytes (budget " << budget
              << ")\n";
    if (page_stats.spills == 0) {
      std::cout << "OUT-OF-CORE GATE FAILED: budget " << budget
                << " never forced a spill; lower it or raise n\n";
      spill_gate = false;
    }
  }

  // Byte-identity gate: the merged grid, canonical form (wall_ms and
  // profile stripped; distances covered by the distances_fnv metric), must
  // match a fresh single-worker in-process unbounded run exactly.
  bool verify_ok = true;
  if (verify) {
    ScenarioSpec ref_spec = spec;
    ref_spec.workers = 1;
    ref_spec.process_mode = false;
    ref_spec.memory_budget = 0;
    ExecutionContext ref_base(4200 + n);
    ref_base.page_store().set_budget(0);  // unbounded whatever the env says
    const auto ref_results =
        BatchRunner(registry, ref_base).run_scenarios(ref_spec);
    const std::string got = scenarios_to_json(results, /*include_timings=*/false);
    const std::string want =
        scenarios_to_json(ref_results, /*include_timings=*/false);
    verify_ok = got == want;
    std::cout << "\nverify: merged canonical grid "
              << (verify_ok ? "byte-identical to" : "DIFFERS from")
              << " in-process unbounded reference (" << got.size()
              << " bytes)\n";
    if (!verify_ok) {
      const std::size_t at =
          std::mismatch(got.begin(), got.end(), want.begin(), want.end()).first -
          got.begin();
      std::cout << "first difference at byte " << at << "\n";
    }
  }

  // Self-describing envelope around the scenario array so bench_diff (and
  // any future parser) can key on "bench" / "schema_version". v2 adds the
  // exec knobs and page-store stats next to the grid.
  const std::string json =
      "{\"bench\":\"scenario_matrix\",\"schema_version\":2,"
      "\"n\":" + std::to_string(n) +
      ",\"workers\":" + std::to_string(workers) +
      ",\"process\":" + (process_mode ? "true" : "false") +
      ",\"budget\":" + std::to_string(budget) +
      ",\"spills\":" + std::to_string(page_stats.spills) +
      ",\"faults\":" + std::to_string(page_stats.faults) +
      ",\"scenarios\":" + scenarios_to_json(results) + "}";
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json << "\n";
    std::cout << "\nscenario_matrix_json written to " << json_path << " ("
              << results.size() << " scenarios)\n";
  } else {
    std::cout << "\nscenario_matrix_json: " << json << "\n";
  }

  std::cout << "\nPer-scenario agreement across the whole grid: "
            << (all_agree ? "yes" : "NO") << "\n";
  return (all_agree && spill_gate && verify_ok) ? 0 : 1;
}
