// Exact joint simulation of m parallel Grover searches (paper Appendix A).
//
// This is the validation instrument for Theorem 3: the full tensor-product
// state over X^m is evolved twice, once with the ideal evaluation operator
// C_m (each register's phase oracle applied everywhere) and once with the
// truncated operator C~_m that behaves arbitrarily outside the typical set
// Upsilon_beta(m, X). The report exposes exactly the quantities the
// appendix's proof manipulates:
//   * the atypical mass || Pi_m |Phi_k> || at every step,
//   * the telescoping bound 2 * sum_k || Pi_m |Phi_k> || on the final
//     deviation || |Phi_k> - |Phi~_k> ||,
//   * the measured deviation and both success probabilities.
// Dimensions are dim^m, so this is only for small instances -- by design:
// it checks the *mechanism* of the proof, while multi_search.hpp scales the
// independent-register form to real sizes.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "quantum/distributed_search.hpp"

namespace qclique {

class Rng;

/// How the truncated evaluation C~_m behaves on atypical basis states.
enum class TruncationMode {
  /// Outputs all-zero answers: no phase is applied (an "error message").
  kErase,
  /// Outputs arbitrary garbage: a fixed pseudo-random phase per basis state.
  kGarbage,
};

/// Configuration of an exact joint run.
struct JointConfig {
  std::size_t dim = 2;  // |X|
  std::size_t m = 2;    // number of registers (searches)
  double beta = 1e18;   // Upsilon_beta threshold (large = everything typical)
  TruncationMode mode = TruncationMode::kErase;
};

/// Step-by-step comparison of the ideal and truncated evolutions.
struct JointReport {
  std::uint64_t iterations = 0;
  /// P[measuring a tuple in A1_1 x ... x A1_m] for each track.
  double ideal_success = 0.0;
  double truncated_success = 0.0;
  /// || |Phi_k> - |Phi~_k> || after the last iteration.
  double final_deviation = 0.0;
  /// max_k || Pi_m |Phi_k> || (atypical amplitude of the *ideal* track).
  double max_atypical_norm = 0.0;
  /// 2 * sum_k || Pi_m |Phi_k> ||: the appendix's upper bound on
  /// final_deviation; the test suite asserts final_deviation <= this.
  double telescoping_bound = 0.0;

  /// Rounds this joint run would cost under the distributed search cost
  /// model (one joint evaluation per iteration): what a transport's ledger
  /// would be charged if the run executed against a live network.
  std::uint64_t charged_rounds(const DistributedSearchCost& cost) const {
    return search_round_cost(cost, iterations);
  }
};

/// Exact joint simulator.
class JointMultiSearch {
 public:
  /// `marked[i]` is the indicator vector of A1_i over [0, dim).
  JointMultiSearch(const JointConfig& config,
                   std::vector<std::vector<bool>> marked);

  /// Evolves both tracks from the uniform superposition for `iterations`
  /// Grover steps and reports the comparison.
  JointReport run(std::uint64_t iterations);

  /// Probability mass outside Upsilon_beta for the uniform start state
  /// (the quantity Lemma 5 bounds for states of H_m).
  double uniform_atypical_mass() const;

  std::size_t joint_dim() const { return joint_dim_; }

 private:
  std::size_t marked_count(std::size_t basis) const;
  bool is_typical(std::size_t basis) const;
  void apply_ideal_oracle(std::vector<std::complex<double>>& amps) const;
  void apply_truncated_oracle(std::vector<std::complex<double>>& amps) const;
  void apply_diffusion_all_registers(std::vector<std::complex<double>>& amps) const;
  double success_mass(const std::vector<std::complex<double>>& amps) const;
  double atypical_norm(const std::vector<std::complex<double>>& amps) const;

  JointConfig config_;
  std::vector<std::vector<bool>> marked_;
  std::size_t joint_dim_;
  // Precomputed per-basis-state data.
  std::vector<std::uint8_t> typical_;       // 1 if basis tuple in Upsilon_beta
  std::vector<std::uint8_t> all_marked_;    // 1 if every register is marked
  std::vector<std::uint8_t> ideal_phase_;   // parity of marked registers
  std::vector<std::uint8_t> garbage_phase_; // arbitrary fixed phases
};

}  // namespace qclique
