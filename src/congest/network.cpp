#include "congest/network.hpp"

namespace qclique {

CliqueNetwork::CliqueNetwork(std::uint32_t n, NetworkConfig config)
    : Network(n, config), link_load_(static_cast<std::size_t>(n) * n, 0) {}

void CliqueNetwork::enqueue(NodeId src, NodeId dst, const Payload& payload) {
  const std::size_t li = link_index(src, dst);
  // The link has link_load_[li] messages ahead of this one, so it delivers
  // exactly that many rounds from now: append to that round's bucket.
  const std::uint32_t slot = link_load_[li]++;
  if (slot >= buckets_.size()) {
    if (!bucket_pool_.empty()) {
      buckets_.push_back(std::move(bucket_pool_.back()));
      bucket_pool_.pop_back();
    } else {
      buckets_.emplace_back();
    }
  }
  buckets_[slot].push_back(QueuedMessage{static_cast<std::uint32_t>(li), payload});
}

void CliqueNetwork::step(const std::string& phase) {
  ++rounds_;
  std::uint64_t delivered = 0;
  if (!buckets_.empty()) {
    std::vector<QueuedMessage>& front = buckets_.front();
    for (QueuedMessage& qm : front) {
      const NodeId src = static_cast<NodeId>(qm.link / n_);
      const NodeId dst = static_cast<NodeId>(qm.link % n_);
      record_traffic(src, dst);
      deliver_to_inbox(Message{src, dst, std::move(qm.payload)});
      --link_load_[qm.link];
      ++delivered;
      --pending_;
    }
    front.clear();
    bucket_pool_.push_back(std::move(front));
    buckets_.pop_front();
  }
  ledger_.charge(phase, 1, delivered);
}

std::uint64_t CliqueNetwork::max_link_load() const { return buckets_.size(); }

}  // namespace qclique
