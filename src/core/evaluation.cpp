#include "core/evaluation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "congest/lenzen.hpp"
#include "graph/triangles.hpp"

namespace qclique {

double eval_list_promise(std::uint32_t n, std::uint32_t alpha,
                         const Constants& constants) {
  return constants.eval_load * std::pow(2.0, alpha) *
         std::sqrt(static_cast<double>(n)) * paper_log(n);
}

std::uint32_t duplication_factor(std::uint32_t n, std::uint32_t alpha,
                                 const Constants& constants) {
  const double d = std::pow(2.0, alpha) / (constants.class_size * paper_log(n));
  return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(std::floor(d)));
}

EvalRunStats run_evaluation(Network& net, const WeightedGraph& g,
                            const Partitions& parts, std::uint32_t ub,
                            std::uint32_t vb, std::uint32_t alpha,
                            const std::vector<std::uint32_t>& t_alpha,
                            const EvalQuerySet& queries,
                            const Constants& constants, bool include_duplication) {
  const std::uint32_t n = parts.n();
  const std::uint32_t num_x = parts.num_wblocks();
  QCLIQUE_CHECK(queries.queries.size() == num_x,
                "EvalQuerySet must have one entry per x-node");
  EvalRunStats stats;
  stats.answers.assign(num_x, {});
  const std::uint64_t rounds_before = net.ledger().total_rounds();
  const std::uint32_t dup = duplication_factor(n, alpha, constants);
  const double promise = eval_list_promise(n, alpha, constants);
  const std::string phase = "eval/alpha" + std::to_string(alpha);

  // --- Figure 5 Step 0: duplicate (u, v, w) data onto helper nodes. -------
  if (include_duplication && dup > 1) {
    const std::uint64_t dup_before = net.ledger().total_rounds();
    std::vector<Message> batch;
    const auto us = parts.vblock_vertices(ub);
    const auto vs = parts.vblock_vertices(vb);
    for (std::uint32_t wb : t_alpha) {
      const NodeId src = parts.t_node(ub, vb, wb);
      const auto ws = parts.wblock_vertices(wb);
      for (std::uint32_t y = 1; y < dup; ++y) {  // y = 0 is the original
        const NodeId dst = parts.dup_node(ub, vb, wb, y, dup);
        if (dst == src) continue;
        // Ship every stored weight f(u, w') and f(w', v): 3 fields each.
        // One zero-copy weight row per w' instead of per-entry
        // has_edge/weight index arithmetic.
        for (std::uint32_t w : ws) {
          const std::int64_t* wrow = g.row_ptr(w);
          for (std::uint32_t u : us) {
            if (u == w || is_plus_inf(wrow[u])) continue;
            Message m;
            m.src = src;
            m.dst = dst;
            m.payload.tag = 50;
            m.payload.push(u);
            m.payload.push(w);
            m.payload.push(wrow[u]);
            batch.push_back(m);
          }
          for (std::uint32_t v : vs) {
            if (v == w || is_plus_inf(wrow[v])) continue;
            Message m;
            m.src = src;
            m.dst = dst;
            m.payload.tag = 50;
            m.payload.push(w);
            m.payload.push(v);
            m.payload.push(wrow[v]);
            batch.push_back(m);
          }
        }
      }
    }
    route(net, batch, phase + "/duplicate");
    net.clear_inboxes();
    stats.duplication_rounds = net.ledger().total_rounds() - dup_before;
  }

  // --- Step 1: build the lists L^k_w and ship them. ------------------------
  // Query payload: [u, v, f(u,v), slot] where slot lets the responder route
  // the answer bit back to the right search. For alpha > 0 the list toward
  // block w is split across the dup helper nodes round-robin.
  std::vector<Message> query_batch;
  // Track per (x, w) list sizes for the promise audit.
  std::vector<std::uint64_t> list_len(static_cast<std::size_t>(num_x) * t_alpha.size(),
                                      0);
  for (std::uint32_t x = 0; x < num_x; ++x) {
    const NodeId src = parts.x_node(ub, vb, x);
    for (std::uint32_t i = 0; i < queries.queries[x].size(); ++i) {
      const auto& [pair, wpos] = queries.queries[x][i];
      QCLIQUE_CHECK(wpos < t_alpha.size(), "query outside T_alpha");
      const std::uint32_t wb = t_alpha[wpos];
      const std::uint64_t len =
          ++list_len[static_cast<std::size_t>(x) * t_alpha.size() + wpos];
      const std::uint32_t y = static_cast<std::uint32_t>(len % dup);
      const NodeId dst = dup == 1 ? parts.t_node(ub, vb, wb)
                                  : parts.dup_node(ub, vb, wb, y, dup);
      Message m;
      m.src = src;
      m.dst = dst;
      m.payload.tag = 51;
      m.payload.push(pair.a);
      m.payload.push(pair.b);
      m.payload.push(g.weight(pair.a, pair.b));
      m.payload.push(static_cast<std::int64_t>(
          (static_cast<std::uint64_t>(x) << 20) | i));  // reply slot
      if (m.src == m.dst) {
        net.deposit(m);
      } else {
        query_batch.push_back(m);
      }
      ++stats.messages;
    }
  }
  for (std::uint64_t len : list_len) {
    stats.max_list_len = std::max(stats.max_list_len, len);
    if (static_cast<double>(len) > promise) ++stats.promise_violations;
  }
  route(net, query_batch, phase + "/queries");

  // --- Step 2: responders check Inequality (2) and reply. ------------------
  // Note: the paper's Figure 4 writes "min <= f(u,v)"; Definition 1 requires
  // f(u,v) + f(u,w) + f(w,v) < 0, i.e. min_{w} (f(u,w) + f(w,v)) < -f(u,v).
  // We implement the Definition 1 form (the Figure's inequality appears to
  // drop the sign flip from the distance-product gadget where f(i,j) =
  // -D[i,j]).
  std::vector<Message> reply_batch;
  // Responders need to know which W-block a query addressed; the mapping
  // (dst node, dup slot) -> wb is known from the labeling scheme, but for
  // the simulation we simply re-derive the answer from the queried block.
  // Build a reverse index: which (x, i) queried which wb.
  for (std::uint32_t x = 0; x < num_x; ++x) {
    stats.answers[x].assign(queries.queries[x].size(), false);
  }
  // Consume the delivered queries from inboxes to keep message flow honest.
  for (NodeId v = 0; v < net.size(); ++v) {
    auto& box = net.inbox(v);
    std::erase_if(box, [](const Message& m) {
      return m.payload.tag == 51 || m.payload.tag == 50;
    });
  }
  for (std::uint32_t x = 0; x < num_x; ++x) {
    const NodeId xnode = parts.x_node(ub, vb, x);
    for (std::uint32_t i = 0; i < queries.queries[x].size(); ++i) {
      const auto& [pair, wpos] = queries.queries[x][i];
      const std::uint32_t wb = t_alpha[wpos];
      const auto ws = parts.wblock_vertices(wb);
      const bool hit = exists_negative_triangle_via(g, pair.a, pair.b, ws);
      stats.answers[x][i] = hit;
      // Reply: one field (slot | bit). Same (src, dst) profile as the query,
      // reversed.
      const std::uint64_t len_slot =
          static_cast<std::size_t>(x) * t_alpha.size() + wpos;
      const std::uint32_t y = static_cast<std::uint32_t>(list_len[len_slot] % dup);
      const NodeId responder = dup == 1 ? parts.t_node(ub, vb, wb)
                                        : parts.dup_node(ub, vb, wb, y, dup);
      if (responder == xnode) continue;  // local answer
      Message m;
      m.src = responder;
      m.dst = xnode;
      m.payload.tag = 52;
      m.payload.push(static_cast<std::int64_t>(
          ((static_cast<std::uint64_t>(x) << 20) | i) << 1 | (hit ? 1 : 0)));
      reply_batch.push_back(m);
    }
  }
  route(net, reply_batch, phase + "/replies");
  for (NodeId v = 0; v < net.size(); ++v) {
    auto& box = net.inbox(v);
    std::erase_if(box, [](const Message& m) { return m.payload.tag == 52; });
  }

  stats.rounds = net.ledger().total_rounds() - rounds_before;
  return stats;
}

}  // namespace qclique
