#include "matrix/dist_matrix.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"

namespace qclique {

DistMatrix::DistMatrix(std::uint32_t n, std::int64_t fill)
    : n_(n), v_(static_cast<std::size_t>(n) * n, fill) {
  QCLIQUE_CHECK(n >= 1, "DistMatrix needs n >= 1");
}

std::int64_t* DistMatrix::row_ptr(std::uint32_t i) {
  QCLIQUE_CHECK(i < n_, "row index out of range");
  return v_.data() + static_cast<std::size_t>(i) * n_;
}

const std::int64_t* DistMatrix::row_ptr(std::uint32_t i) const {
  QCLIQUE_CHECK(i < n_, "row index out of range");
  return v_.data() + static_cast<std::size_t>(i) * n_;
}

std::vector<std::int64_t> DistMatrix::row(std::uint32_t i) const {
  const std::int64_t* r = row_ptr(i);
  return std::vector<std::int64_t>(r, r + n_);
}

void DistMatrix::fill(std::int64_t value) {
  std::fill(v_.begin(), v_.end(), value);
}

void DistMatrix::assign_row(std::uint32_t i, std::span<const std::int64_t> values) {
  QCLIQUE_CHECK(values.size() == n_, "assign_row needs exactly n entries");
  std::copy(values.begin(), values.end(), row_ptr(i));
}

void DistMatrix::assign_rows(std::uint32_t first, std::uint32_t rows,
                             std::span<const std::int64_t> values) {
  QCLIQUE_CHECK(first < n_ && rows <= n_ - first, "assign_rows range out of bounds");
  QCLIQUE_CHECK(values.size() == static_cast<std::size_t>(rows) * n_,
                "assign_rows needs exactly rows*n entries");
  std::copy(values.begin(), values.end(), row_ptr(first));
}

std::uint64_t DistMatrix::fnv1a64() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::int64_t x : v_) {
    const auto u = static_cast<std::uint64_t>(x);
    for (int byte = 0; byte < 8; ++byte) {
      h = (h ^ ((u >> (8 * byte)) & 0xffu)) * 0x100000001b3ULL;
    }
  }
  return h;
}

DistMatrix DistMatrix::identity(std::uint32_t n) {
  DistMatrix m(n, kPlusInf);
  for (std::uint32_t i = 0; i < n; ++i) m.set(i, i, 0);
  return m;
}

std::int64_t DistMatrix::max_abs_finite() const {
  std::int64_t best = 0;
  for (std::int64_t x : v_) {
    if (!is_plus_inf(x) && !is_minus_inf(x)) best = std::max(best, std::abs(x));
  }
  return best;
}

bool DistMatrix::entries_within(std::int64_t m) const {
  for (std::int64_t x : v_) {
    if (is_plus_inf(x) || is_minus_inf(x) || std::abs(x) > m) return false;
  }
  return true;
}

std::string DistMatrix::first_difference(const DistMatrix& other) const {
  if (n_ != other.n_) return "size mismatch";
  for (std::uint32_t i = 0; i < n_; ++i) {
    for (std::uint32_t j = 0; j < n_; ++j) {
      if (at(i, j) != other.at(i, j)) {
        std::ostringstream out;
        out << "(" << i << "," << j << "): " << at(i, j) << " vs " << other.at(i, j);
        return out.str();
      }
    }
  }
  return "";
}

}  // namespace qclique
