#include "matrix/min_plus.hpp"

#include "common/error.hpp"

namespace qclique {

DistMatrix distance_product_naive(const DistMatrix& a, const DistMatrix& b) {
  return KernelRegistry::instance().get("naive").product(a, b);
}

DistMatrix distance_product_with_witness(const DistMatrix& a, const DistMatrix& b,
                                         std::vector<std::uint32_t>& wit,
                                         const KernelOptions& kernel) {
  return kernel.resolve().product(a, b, kernel.config, &wit);
}

DistMatrix min_plus_power(const DistMatrix& a, std::uint64_t p, const ProductFn& product) {
  QCLIQUE_CHECK(p >= 1, "min_plus_power requires p >= 1");
  // Squaring with early fixpoint: distances stabilize once p >= n-1, and for
  // APSP inputs (0 diagonal) A^(2^k) is monotone nonincreasing in k, so
  // plain repeated squaring of A up to the next power of two >= p is exact.
  DistMatrix acc = a;
  std::uint64_t covered = 1;
  while (covered < p) {
    acc = product(acc, acc);
    covered *= 2;
  }
  return acc;
}

DistMatrix min_plus_power(const DistMatrix& a, std::uint64_t p,
                          const KernelOptions& kernel) {
  QCLIQUE_CHECK(p >= 1, "min_plus_power requires p >= 1");
  const MinPlusKernel& k = kernel.resolve();
  DistMatrix acc = a;
  std::uint64_t covered = 1;
  while (covered < p) {
    acc = k.product(acc, acc, kernel.config);
    covered *= 2;
  }
  return acc;
}

DistMatrix apsp_by_squaring(const DistMatrix& a, const KernelOptions& kernel) {
  const std::uint32_t n = a.size();
  if (n == 1) return a;
  return min_plus_power(a, n - 1, kernel);
}

std::uint32_t squaring_product_count(std::uint64_t p) {
  std::uint32_t count = 0;
  std::uint64_t covered = 1;
  while (covered < p) {
    ++count;
    covered *= 2;
  }
  return count;
}

}  // namespace qclique
