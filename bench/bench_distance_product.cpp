// Experiment E6 (Proposition 2): distance product via negative triangles,
// plus the min-plus kernel engine curve.
//
//   usage: bench_distance_product [n] [json-path]
//
// Part 1 measures the number of FindEdges calls as the entry range M grows
// (theory: ceil(log2(4M + 3)) binary-search probes), verifies the product
// against the naive oracle, and reports rounds per probe.
//
// Part 2 sweeps the kernel axis (kernel x size x threads) up to the pinned
// n (default 512): every registered min-plus kernel over growing matrix
// sizes, reporting wall time and the speedups over the "naive" oracle and
// the "blocked" production kernel, and asserting that all kernels produce
// bit-identical matrices *and witnesses*. The curve is written to
// `json-path` (default BENCH_distance_product.json) in the schema_version-
// stamped file envelope shared by the other benches; scripts/bench_diff.py
// diffs it against bench/baselines/BENCH_distance_product.json in its
// kernel-throughput mode.
//
// Doubles as the SIMD acceptance gate: at n >= 512, when runtime dispatch
// resolves to a vector tier (see QCLIQUE_KERNEL_ISA in docs/KERNELS.md),
// the "simd" kernel must beat "blocked" by >= 2x single-threaded -- the
// bench exits non-zero when the bar is missed or any kernel disagrees.
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/task_pool.hpp"
#include "congest/round_ledger.hpp"
#include "core/distance_product.hpp"
#include "matrix/kernels.hpp"
#include "matrix/min_plus.hpp"

namespace {

using namespace qclique;

DistMatrix random_matrix(std::uint32_t n, std::int64_t m, double density, Rng& rng) {
  DistMatrix a(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      if (rng.bernoulli(density)) a.set(i, j, rng.uniform_i64(-m, m));
    }
  }
  return a;
}

/// Best-of-`reps` wall time for one kernel product.
double time_product_ms(const MinPlusKernel& kernel, const DistMatrix& a,
                       const DistMatrix& b, const KernelConfig& config, int reps,
                       DistMatrix* out) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    DistMatrix c = kernel.product(a, b, config);
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(stop - start).count());
    if (out != nullptr) *out = std::move(c);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qclique;
  const std::uint32_t max_n =
      argc > 1 ? static_cast<std::uint32_t>(std::stoul(argv[1])) : 512;
  const std::string json_path = argc > 2 ? argv[2] : "BENCH_distance_product.json";
  std::cout << "E6: Proposition 2 -- distance product via FindEdges\n";

  Table table({"n", "M", "FindEdges calls", "theory ceil(log2(4M+3))", "rounds",
               "correct"});
  for (const std::uint32_t n : {6u, 10u}) {
    for (const std::int64_t m : {2ll, 8ll, 64ll, 512ll, 4096ll}) {
      Rng rng(31 * n + static_cast<std::uint64_t>(m));
      DistMatrix a(n), b(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        for (std::uint32_t j = 0; j < n; ++j) {
          if (rng.bernoulli(0.85)) a.set(i, j, rng.uniform_i64(-m, m));
          if (rng.bernoulli(0.85)) b.set(i, j, rng.uniform_i64(-m, m));
        }
      }
      DistanceProductOptions opt;
      Rng prng = rng.split();
      const auto res = distance_product_via_triangles(a, b, opt, prng);
      const auto theory = static_cast<std::uint64_t>(
          std::ceil(std::log2(4.0 * static_cast<double>(m) + 3.0)));
      table.add_row({Table::fmt(static_cast<std::uint64_t>(n)), Table::fmt(m),
                     Table::fmt(res.find_edges_calls), Table::fmt(theory),
                     Table::fmt(res.rounds),
                     res.product == distance_product_naive(a, b) ? "yes" : "NO"});
    }
  }
  table.print("Distance product: binary-search depth vs M (the log M factor)");
  std::cout << "\nThe calls column tracks ceil(log2(4M+3)): this is the log W\n"
               "factor in Theorem 1's O~(n^{1/4} log W).\n";

  // ---- Kernel engine axis: kernel x size x threads. ------------------------
  const KernelIsa isa = active_kernel_isa();
  KernelRegistry& kernels = KernelRegistry::instance();
  std::cout << "\nKernel engine sweep (dispatched ISA tier: "
            << kernel_isa_name(isa) << ")\nKernels: ";
  for (const auto& name : kernels.names()) std::cout << name << " ";
  std::cout << "\n\n";

  std::vector<std::uint32_t> sizes;
  for (const std::uint32_t n : {64u, 128u, 256u, 512u}) {
    if (n <= max_n) sizes.push_back(n);
  }
  if (sizes.empty() || sizes.back() != max_n) sizes.push_back(max_n);

  Table ktable({"n", "kernel", "threads", "wall ms", "vs naive", "vs blocked",
                "agrees"});
  std::ostringstream json;
  // pool_threads records the persistent TaskPool capacity the row-band
  // kernels drew workers from (additive to schema 1; diffs ignore it).
  json << "{\"bench\":\"distance_product\",\"schema_version\":1,\"n\":" << max_n
       << ",\"isa\":" << json_quote(kernel_isa_name(isa))
       << ",\"pool_threads\":" << resolve_task_pool_threads(0) << ",\"runs\":[";
  bool all_agree = true;
  bool json_first = true;
  double simd_vs_blocked = 0.0;
  const MinPlusKernel& naive = kernels.get("naive");
  for (const std::uint32_t n : sizes) {
    Rng rng(4096 + n);
    const DistMatrix a = random_matrix(n, 50, 0.9, rng);
    const DistMatrix b = random_matrix(n, 50, 0.9, rng);
    const int reps = n <= 128 ? 3 : n <= 256 ? 2 : 1;
    DistMatrix reference(n);
    std::vector<std::uint32_t> reference_wit;
    const double naive_ms = time_product_ms(naive, a, b, {}, reps, &reference);
    naive.product(a, b, {}, &reference_wit);
    double blocked_ms1 = 0.0;
    // "blocked" first so every later row can report its speedup over it.
    std::vector<std::string> order{"blocked"};
    for (const auto& name : kernels.names()) {
      if (name != "blocked") order.push_back(name);
    }
    for (const auto& name : order) {
      const MinPlusKernel& kernel = kernels.get(name);
      // Witness agreement once per (kernel, n): one witness-carrying run
      // against the oracle's distances *and* witnesses.
      if (name != "naive") {
        std::vector<std::uint32_t> wit;
        const DistMatrix got = kernel.product(a, b, {}, &wit);
        all_agree = all_agree && got == reference && wit == reference_wit;
      }
      // Only the row-band kernels read num_threads ("auto" supplies its
      // own plan); re-timing the others per thread row would just re-run
      // bit-identical products (naive reuses the reference timing).
      const bool thread_sensitive = name == "parallel" || name == "simd";
      double ms1 = naive_ms;
      bool agrees1 = true;
      for (const unsigned threads : {1u, 2u, 8u}) {
        KernelConfig config;
        config.num_threads = threads;
        DistMatrix got(n);
        double ms;
        bool agrees;
        if (name == "naive") {
          ms = naive_ms;
          agrees = true;
        } else if (!thread_sensitive && threads > 1) {
          ms = ms1;
          agrees = agrees1;
        } else {
          ms = time_product_ms(kernel, a, b, config, reps, &got);
          agrees = got == reference;
          if (threads == 1) {
            ms1 = ms;
            agrees1 = agrees;
          }
        }
        all_agree = all_agree && agrees;
        if (name == "blocked" && threads == 1) blocked_ms1 = ms;
        const double speedup = ms > 0 ? naive_ms / ms : 0.0;
        const double vs_blocked = ms > 0 && blocked_ms1 > 0 ? blocked_ms1 / ms : 0.0;
        if (name == "simd" && threads == 1 && n == max_n) {
          simd_vs_blocked = vs_blocked;
        }
        ktable.add_row({Table::fmt(static_cast<std::uint64_t>(n)), name,
                        Table::fmt(static_cast<std::uint64_t>(threads)),
                        Table::fmt(ms, 2), Table::fmt(speedup, 2),
                        Table::fmt(vs_blocked, 2), agrees ? "yes" : "NO"});
        json << (json_first ? "" : ",") << "{\"n\":" << n
             << ",\"kernel\":" << json_quote(name) << ",\"threads\":" << threads
             << ",\"wall_ms\":" << ms << ",\"ns_per_product\":" << ms * 1e6
             << ",\"speedup_vs_naive\":" << speedup
             << ",\"speedup_vs_blocked\":" << vs_blocked << "}";
        json_first = false;
      }
    }
  }
  json << "],\"simd_vs_blocked\":" << simd_vs_blocked
       << ",\"all_agree\":" << (all_agree ? "true" : "false") << "}";
  ktable.print("Kernel x n x threads (best-of-reps wall time, one product)");

  std::ofstream out(json_path);
  out << json.str() << "\n";
  out.close();
  std::cout << "\nwrote " << json_path << "\n";
  std::cout << "all kernels agree bit-for-bit (distances and witnesses): "
            << (all_agree ? "yes" : "NO") << "\n";

  // The SIMD acceptance gate arms at n >= 512 when dispatch resolved to a
  // vector tier; under a scalar tier "simd" *is* the blocked band, so a
  // 2x bar would be meaningless there.
  bool gate_ok = true;
  if (max_n >= 512 && isa != KernelIsa::scalar) {
    gate_ok = simd_vs_blocked >= 2.0;
    std::cout << "SIMD gate: simd vs blocked at n=" << max_n << " ("
              << kernel_isa_name(isa) << ", 1 thread): "
              << Table::fmt(simd_vs_blocked, 2)
              << "x (target 2x): " << (gate_ok ? "PASS" : "FAIL") << "\n";
  } else {
    std::cout << "SIMD gate: disarmed (n < 512 or scalar tier)\n";
  }
  return all_agree && gate_ok ? 0 : 1;
}
