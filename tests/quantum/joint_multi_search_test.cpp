// Exact joint-superposition validation of Theorem 3 (paper Appendix A).
//
// These tests run the full tensor-product simulation of m parallel Grover
// searches with both the ideal oracle C_m and the truncated oracle C~_m and
// verify the mechanism of the proof:
//   1. with everything typical, the two evolutions agree exactly;
//   2. the final deviation obeys the appendix's telescoping bound
//      || |Phi_k> - |Phi~_k> || <= 2 sum_k || Pi_m |Phi_k> ||;
//   3. when the atypical mass is small, the truncated algorithm's success
//      probability matches the ideal one;
//   4. the uniform (initial) state's atypical mass is tiny for balanced
//      instances.
#include "quantum/joint_multi_search.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "quantum/grover.hpp"
#include "quantum/typical_set.hpp"

namespace qclique {
namespace {

// m registers over [0, dim), register i marked exactly on {i mod dim}.
std::vector<std::vector<bool>> balanced_marks(std::size_t dim, std::size_t m) {
  std::vector<std::vector<bool>> marked(m, std::vector<bool>(dim, false));
  for (std::size_t i = 0; i < m; ++i) marked[i][i % dim] = true;
  return marked;
}

// All registers marked on element 0: solutions concentrate, so the solution
// tuple itself is maximally atypical.
std::vector<std::vector<bool>> concentrated_marks(std::size_t dim, std::size_t m) {
  std::vector<std::vector<bool>> marked(m, std::vector<bool>(dim, false));
  for (std::size_t i = 0; i < m; ++i) marked[i][0] = true;
  return marked;
}

TEST(JointMultiSearch, IdealTrackReproducesGroverClosedFormPerRegister) {
  // With independent registers, the joint success probability after k steps
  // is prod_i sin^2((2k+1) theta_i). Check against the closed form.
  JointConfig cfg{.dim = 4, .m = 3, .beta = 1e18, .mode = TruncationMode::kErase};
  JointMultiSearch sim(cfg, balanced_marks(4, 3));
  const auto rep = sim.run(grover_optimal_iterations(4, 1));
  const double per = grover_success_probability(4, 1, grover_optimal_iterations(4, 1));
  EXPECT_NEAR(rep.ideal_success, per * per * per, 1e-10);
}

TEST(JointMultiSearch, FullyTypicalMeansExactAgreement) {
  // beta >= m: every tuple is typical, so C~_m == C_m and the tracks match
  // to machine precision.
  JointConfig cfg{.dim = 3, .m = 5, .beta = 5.0, .mode = TruncationMode::kGarbage};
  JointMultiSearch sim(cfg, balanced_marks(3, 5));
  const auto rep = sim.run(4);
  EXPECT_NEAR(rep.final_deviation, 0.0, 1e-12);
  EXPECT_NEAR(rep.ideal_success, rep.truncated_success, 1e-12);
}

TEST(JointMultiSearch, TelescopingBoundHoldsErase) {
  for (double beta : {2.0, 3.0, 4.0}) {
    JointConfig cfg{.dim = 3, .m = 7, .beta = beta, .mode = TruncationMode::kErase};
    JointMultiSearch sim(cfg, balanced_marks(3, 7));
    const auto rep = sim.run(3);
    EXPECT_LE(rep.final_deviation, rep.telescoping_bound + 1e-9) << "beta=" << beta;
  }
}

TEST(JointMultiSearch, TelescopingBoundHoldsGarbage) {
  for (double beta : {2.0, 3.0, 4.0}) {
    JointConfig cfg{.dim = 3, .m = 7, .beta = beta, .mode = TruncationMode::kGarbage};
    JointMultiSearch sim(cfg, balanced_marks(3, 7));
    const auto rep = sim.run(3);
    EXPECT_LE(rep.final_deviation, rep.telescoping_bound + 1e-9) << "beta=" << beta;
  }
}

TEST(JointMultiSearch, SmallAtypicalMassImpliesMatchingSuccess) {
  // Balanced instance with beta comfortably above the typical frequency
  // m/|X| but below m: atypical mass is small, so the truncated success
  // probability tracks the ideal one closely.
  JointConfig cfg{.dim = 4, .m = 8, .beta = 5.0, .mode = TruncationMode::kErase};
  JointMultiSearch sim(cfg, balanced_marks(4, 8));
  // At the per-register optimum (N=4, M=1: one iteration hits probability
  // exactly 1) the joint success is the product over registers.
  const auto rep = sim.run(grover_optimal_iterations(4, 1));
  EXPECT_LT(rep.max_atypical_norm, 0.2);
  EXPECT_NEAR(rep.ideal_success, rep.truncated_success, 0.1);
  EXPECT_GT(rep.truncated_success, 0.5);
}

TEST(JointMultiSearch, ConcentratedSolutionsBreakTruncatedSearch) {
  // The negative control: solutions concentrated on one element violate the
  // theorem's premise A1_1 x ... x A1_m within Upsilon_{beta/2}. The
  // truncated oracle then diverges from the ideal one instead of agreeing.
  JointConfig cfg{.dim = 3, .m = 8, .beta = 3.0, .mode = TruncationMode::kErase};
  JointMultiSearch sim(cfg, concentrated_marks(3, 8));
  const auto rep = sim.run(grover_optimal_iterations(3, 1));
  // Ideal search still drives mass onto the (atypical) solution tuple;
  // truncated cannot, because the oracle never fires there.
  EXPECT_GT(rep.ideal_success, 0.5);
  EXPECT_LT(rep.truncated_success, rep.ideal_success - 0.3);
}

TEST(JointMultiSearch, UniformAtypicalMassSmallForModerateBeta) {
  JointConfig cfg{.dim = 4, .m = 8, .beta = 6.0, .mode = TruncationMode::kErase};
  JointMultiSearch sim(cfg, balanced_marks(4, 8));
  // P[max multiplicity of 8 iid uniform over 4 exceeds 6] is tiny.
  EXPECT_LT(sim.uniform_atypical_mass(), 0.01);
}

TEST(JointMultiSearch, UniformAtypicalMassRespectsMonotonicity) {
  // Larger beta -> smaller atypical mass.
  double prev = 1.0;
  for (double beta : {2.0, 3.0, 4.0, 5.0}) {
    JointConfig cfg{.dim = 3, .m = 6, .beta = beta, .mode = TruncationMode::kErase};
    JointMultiSearch sim(cfg, balanced_marks(3, 6));
    const double mass = sim.uniform_atypical_mass();
    EXPECT_LE(mass, prev + 1e-12);
    prev = mass;
  }
}

TEST(JointMultiSearch, RejectsOversizedJointDimension) {
  JointConfig cfg{.dim = 32, .m = 8, .beta = 100.0, .mode = TruncationMode::kErase};
  EXPECT_THROW(JointMultiSearch(cfg, balanced_marks(32, 8)), SimulationError);
}

TEST(JointMultiSearch, RejectsMalformedMarks) {
  JointConfig cfg{.dim = 3, .m = 2, .beta = 10.0, .mode = TruncationMode::kErase};
  std::vector<std::vector<bool>> bad{std::vector<bool>(3, false)};
  EXPECT_THROW(JointMultiSearch(cfg, bad), SimulationError);
}

TEST(JointMultiSearch, ChargedRoundsFollowTheSearchCostModel) {
  JointConfig config;
  config.dim = 4;
  config.m = 2;
  JointMultiSearch sim(config, {{true, false, false, false},
                                {false, true, false, false}});
  const JointReport report = sim.run(3);
  EXPECT_EQ(report.iterations, 3u);
  const DistributedSearchCost cost{.eval_rounds_per_call = 5,
                                   .compute_uncompute_factor = 2};
  // One joint evaluation per iteration, compute + uncompute, r rounds each.
  EXPECT_EQ(report.charged_rounds(cost), 3u * 2u * 5u);
  EXPECT_EQ(report.charged_rounds(cost), search_round_cost(cost, report.iterations));
}

}  // namespace
}  // namespace qclique
