#include "api/execution_context.hpp"

#include "common/task_pool.hpp"
#include "exec/page_store.hpp"
#include "matrix/autotuner.hpp"
#include "serve/snapshot_store.hpp"

namespace qclique {

ExecutionContext::ExecutionContext(std::uint64_t seed)
    : seed_(seed),
      rng_(seed),
      profiler_(std::make_shared<PhaseProfiler>()),
      // Per-context tuner (not the process instance) so tests and batch
      // harnesses get isolated caches; it still honors the
      // QCLIQUE_AUTOTUNE_CACHE warm-start via the process instance only
      // when callers opt in by pointing config.autotuner there.
      autotuner_(std::make_shared<KernelAutotuner>()),
      store_(std::make_shared<SnapshotStore>()),
      // The budget defaults from the environment (QCLIQUE_MEMORY_BUDGET)
      // so out-of-core runs need no code changes; callers can retune it
      // via page_store().set_budget().
      page_store_(std::make_shared<PageStore>(
          PageStoreOptions{.budget_bytes = memory_budget_from_env()})),
      // Per-context pool (lazy: no threads until the first parallel
      // region), sized from QCLIQUE_THREADS / hardware_concurrency.
      // Forks share it, so one batch parks one set of workers.
      task_pool_(std::make_shared<TaskPool>()) {
  transport_.profiler = profiler_;
  kernel_.config.autotuner = autotuner_.get();
  kernel_.config.task_pool = task_pool_.get();
}

void ExecutionContext::set_task_pool(std::shared_ptr<TaskPool> pool) {
  task_pool_ = std::move(pool);
  kernel_.config.task_pool = task_pool_.get();
}

}  // namespace qclique
