#include "graph/families.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace qclique {
namespace {

using Edge = std::pair<std::uint32_t, std::uint32_t>;

void validate(const FamilyConfig& config) {
  QCLIQUE_CHECK(config.n >= 1, "graph family requires n >= 1");
  QCLIQUE_CHECK(config.wmin <= config.wmax,
                "graph family requires wmin <= wmax");
}

/// Normalizes to u < v, drops self-loops, sorts, and removes duplicates --
/// structure builders may emit wraparound edges twice (a 2-row torus) or in
/// either orientation.
std::vector<Edge> canonical_edges(std::vector<Edge> edges) {
  std::vector<Edge> out;
  out.reserve(edges.size());
  for (const auto& [u, v] : edges) {
    if (u == v) continue;
    out.emplace_back(std::min(u, v), std::max(u, v));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Digraph weights on a symmetric structure must be non-negative: the arc
/// pair (u, v), (v, u) with weight w is itself a cycle of weight 2w.
std::int64_t symmetric_wmin(const FamilyConfig& config) {
  return std::max<std::int64_t>(0, config.wmin);
}

/// Shared implementation for the structural (undirected) families: a
/// subclass supplies the edge set, this base samples the weights -- clamped
/// to [max(0, wmin), wmax] in digraph form, full-range undirected.
class UndirectedFamily : public GraphFamily {
 public:
  Digraph generate(const FamilyConfig& config, Rng& rng) const final {
    validate(config);
    QCLIQUE_CHECK(config.wmax >= 0,
                  "symmetric family '" + name() +
                      "' requires wmax >= 0: negative symmetric arcs form "
                      "negative 2-cycles");
    Digraph g(config.n);
    const std::int64_t lo = symmetric_wmin(config);
    for (const auto& [u, v] : canonical_edges(edges(config, rng))) {
      const std::int64_t w = rng.uniform_i64(lo, config.wmax);
      g.set_arc(u, v, w);
      g.set_arc(v, u, w);
    }
    return g;
  }

  WeightedGraph generate_weighted(const FamilyConfig& config, Rng& rng) const final {
    validate(config);
    WeightedGraph g(config.n);
    for (const auto& [u, v] : canonical_edges(edges(config, rng))) {
      g.set_edge(u, v, rng.uniform_i64(config.wmin, config.wmax));
    }
    return g;
  }

 protected:
  /// The structure hook: the undirected edge set (self-loops and duplicates
  /// are filtered by the base).
  virtual std::vector<Edge> edges(const FamilyConfig& config, Rng& rng) const = 0;

  /// Traits every symmetric family shares; subclasses fill in the rest.
  FamilyTraits symmetric_traits() const {
    FamilyTraits t;
    t.symmetric = true;
    t.no_negative_cycles = true;   // weights are >= 0 in digraph form
    t.nonnegative_weights = true;
    return t;
  }
};

// --------------------------------------------------------------- gnp -------

class GnpFamily final : public GraphFamily {
 public:
  std::string name() const override { return "gnp"; }
  std::string description() const override {
    return "Erdos-Renyi G(n, p) digraph; potential-reweighted arcs keep "
           "every cycle non-negative when no_negative_cycles is set";
  }
  FamilyTraits traits(const FamilyConfig& config) const override {
    FamilyTraits t;
    t.no_negative_cycles = config.no_negative_cycles || config.wmin >= 0;
    t.nonnegative_weights = config.wmin >= 0;
    return t;
  }
  Digraph generate(const FamilyConfig& config, Rng& rng) const override {
    validate(config);
    return random_digraph(config.n, config.density, config.wmin, config.wmax,
                          rng, config.no_negative_cycles);
  }
  WeightedGraph generate_weighted(const FamilyConfig& config, Rng& rng) const override {
    validate(config);
    return random_weighted_graph(config.n, config.density, config.wmin,
                                 config.wmax, rng);
  }
};

// -------------------------------------------------------- grid / torus -----

/// rows = the largest divisor of n at most sqrt(n) (1 when n is prime, so
/// the grid degrades to a path and the torus to a cycle).
std::uint32_t grid_rows(std::uint32_t n) {
  auto rows = static_cast<std::uint32_t>(isqrt(n));
  while (rows > 1 && n % rows != 0) --rows;
  return std::max<std::uint32_t>(1, rows);
}

std::vector<Edge> lattice_edges(std::uint32_t n, bool torus) {
  const std::uint32_t rows = grid_rows(n);
  const std::uint32_t cols = n / rows;
  std::vector<Edge> edges;
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      const std::uint32_t v = r * cols + c;
      if (c + 1 < cols) {
        edges.emplace_back(v, v + 1);
      } else if (torus) {
        edges.emplace_back(v, r * cols);
      }
      if (r + 1 < rows) {
        edges.emplace_back(v, v + cols);
      } else if (torus) {
        edges.emplace_back(v, c);
      }
    }
  }
  return edges;
}

class GridFamily final : public UndirectedFamily {
 public:
  std::string name() const override { return "grid"; }
  std::string description() const override {
    return "2D lattice (rows x cols with rows the largest divisor of n at "
           "most sqrt n), 4-neighbor";
  }
  FamilyTraits traits(const FamilyConfig&) const override {
    FamilyTraits t = symmetric_traits();
    t.connected = true;
    t.degree_bound = 4;
    return t;
  }

 protected:
  std::vector<Edge> edges(const FamilyConfig& config, Rng&) const override {
    return lattice_edges(config.n, /*torus=*/false);
  }
};

class TorusFamily final : public UndirectedFamily {
 public:
  std::string name() const override { return "torus"; }
  std::string description() const override {
    return "2D lattice with wraparound rows and columns";
  }
  FamilyTraits traits(const FamilyConfig&) const override {
    FamilyTraits t = symmetric_traits();
    t.connected = true;
    t.degree_bound = 4;
    return t;
  }

 protected:
  std::vector<Edge> edges(const FamilyConfig& config, Rng&) const override {
    return lattice_edges(config.n, /*torus=*/true);
  }
};

// ----------------------------------------------------- ring of cliques -----

class RingOfCliquesFamily final : public UndirectedFamily {
 public:
  std::string name() const override { return "ring-of-cliques"; }
  std::string description() const override {
    return "`clusters` near-equal cliques bridged in a ring -- dense local "
           "structure, single-edge bottlenecks between blocks";
  }
  FamilyTraits traits(const FamilyConfig&) const override {
    FamilyTraits t = symmetric_traits();
    t.connected = true;
    return t;
  }

 protected:
  std::vector<Edge> edges(const FamilyConfig& config, Rng&) const override {
    const std::uint32_t k =
        std::clamp<std::uint32_t>(config.clusters, 1, config.n);
    const BlockPartition blocks(config.n, k);
    std::vector<Edge> edges;
    for (std::uint32_t b = 0; b < k; ++b) {
      const auto begin = static_cast<std::uint32_t>(blocks.block_begin(b));
      const auto end = static_cast<std::uint32_t>(blocks.block_end(b));
      for (std::uint32_t u = begin; u < end; ++u) {
        for (std::uint32_t v = u + 1; v < end; ++v) edges.emplace_back(u, v);
      }
      if (k >= 2) {
        const std::uint32_t next = (b + 1) % k;
        edges.emplace_back(end - 1,
                           static_cast<std::uint32_t>(blocks.block_begin(next)));
      }
    }
    return edges;
  }
};

// ------------------------------------------------------------ expander -----

class ExpanderFamily final : public UndirectedFamily {
 public:
  std::string name() const override { return "expander"; }
  std::string description() const override {
    return "bounded-degree circulant overlay: ring plus power-of-two "
           "chords, degree capped by `degree`";
  }
  FamilyTraits traits(const FamilyConfig& config) const override {
    FamilyTraits t = symmetric_traits();
    t.connected = true;
    t.degree_bound = 2 * std::max<std::uint32_t>(1, config.degree / 2);
    return t;
  }

 protected:
  std::vector<Edge> edges(const FamilyConfig& config, Rng&) const override {
    const std::uint32_t n = config.n;
    // Offsets past 2^30 only alias earlier ones mod n; the cap also keeps
    // the shift below overflow for absurd degree configs.
    const std::uint32_t chords =
        std::min(30u, std::max<std::uint32_t>(1, config.degree / 2));
    std::vector<Edge> edges;
    std::uint32_t offset = 1;
    for (std::uint32_t i = 0; i < chords; ++i, offset <<= 1) {
      for (std::uint32_t v = 0; v < n; ++v) {
        edges.emplace_back(v, (v + offset) % n);
      }
    }
    return edges;
  }
};

// ----------------------------------------------------------- power law -----

class PowerLawFamily final : public UndirectedFamily {
 public:
  std::string name() const override { return "power-law"; }
  std::string description() const override {
    return "preferential attachment (Barabasi-Albert): each new vertex "
           "attaches `degree` edges biased toward high-degree hubs";
  }
  FamilyTraits traits(const FamilyConfig&) const override {
    FamilyTraits t = symmetric_traits();
    t.connected = true;
    return t;
  }

 protected:
  std::vector<Edge> edges(const FamilyConfig& config, Rng& rng) const override {
    const std::uint32_t n = config.n;
    if (n == 1) return {};
    const std::uint32_t attach =
        std::clamp<std::uint32_t>(config.degree, 1, n - 1);
    const std::uint32_t seed_size = std::min(n, attach + 1);
    std::vector<Edge> edges;
    // `ends` lists every edge endpoint, so drawing a uniform index samples
    // a vertex proportionally to its current degree.
    std::vector<std::uint32_t> ends;
    for (std::uint32_t u = 0; u < seed_size; ++u) {
      for (std::uint32_t v = u + 1; v < seed_size; ++v) {
        edges.emplace_back(u, v);
        ends.push_back(u);
        ends.push_back(v);
      }
    }
    std::vector<std::uint32_t> chosen;
    for (std::uint32_t v = seed_size; v < n; ++v) {
      chosen.clear();
      const std::uint32_t want = std::min(attach, v);
      while (chosen.size() < want) {
        std::uint32_t target = 0;
        bool found = false;
        for (int attempt = 0; attempt < 64 && !found; ++attempt) {
          target = ends[static_cast<std::size_t>(rng.uniform_u64(ends.size()))];
          found = std::find(chosen.begin(), chosen.end(), target) == chosen.end();
        }
        if (!found) {
          // Degenerate fallback (tiny graphs): the smallest vertex not yet
          // attached to. Deterministic, and cannot fail since want <= v.
          for (target = 0; ; ++target) {
            if (std::find(chosen.begin(), chosen.end(), target) == chosen.end())
              break;
          }
        }
        chosen.push_back(target);
        edges.emplace_back(target, v);
      }
      for (const std::uint32_t target : chosen) {
        ends.push_back(target);
        ends.push_back(v);
      }
    }
    return edges;
  }
};

// ------------------------------------------------------------ clustered ----

class ClusteredFamily final : public UndirectedFamily {
 public:
  std::string name() const override { return "clustered"; }
  std::string description() const override {
    return "`clusters` communities, edge probability intra_density inside "
           "and inter_density across";
  }
  FamilyTraits traits(const FamilyConfig&) const override {
    // Sparse inter-community edges give no connectivity promise.
    return symmetric_traits();
  }

 protected:
  std::vector<Edge> edges(const FamilyConfig& config, Rng& rng) const override {
    const std::uint32_t k =
        std::clamp<std::uint32_t>(config.clusters, 1, config.n);
    const BlockPartition blocks(config.n, k);
    std::vector<Edge> edges;
    for (std::uint32_t u = 0; u < config.n; ++u) {
      for (std::uint32_t v = u + 1; v < config.n; ++v) {
        const double p = blocks.block_of(u) == blocks.block_of(v)
                             ? config.intra_density
                             : config.inter_density;
        if (rng.bernoulli(p)) edges.emplace_back(u, v);
      }
    }
    return edges;
  }
};

// ---------------------------------------------------------- layered DAG ----

class LayeredDagFamily final : public GraphFamily {
 public:
  std::string name() const override { return "layered-dag"; }
  std::string description() const override {
    return "`layers` ranks with density-sampled arcs from each rank to the "
           "next; acyclic, so the full weight range (negatives included) is "
           "safe";
  }
  FamilyTraits traits(const FamilyConfig&) const override {
    FamilyTraits t;
    t.acyclic = true;
    t.no_negative_cycles = true;  // no cycles at all
    return t;
  }
  Digraph generate(const FamilyConfig& config, Rng& rng) const override {
    validate(config);
    Digraph g(config.n);
    for_each_arc(config, rng, [&](std::uint32_t u, std::uint32_t v,
                                  std::int64_t w) { g.set_arc(u, v, w); });
    return g;
  }
  WeightedGraph generate_weighted(const FamilyConfig& config, Rng& rng) const override {
    validate(config);
    WeightedGraph g(config.n);
    for_each_arc(config, rng, [&](std::uint32_t u, std::uint32_t v,
                                  std::int64_t w) { g.set_edge(u, v, w); });
    return g;
  }

 private:
  template <typename Emit>
  void for_each_arc(const FamilyConfig& config, Rng& rng, Emit emit) const {
    const std::uint32_t layers =
        std::clamp<std::uint32_t>(config.layers, 1, config.n);
    const BlockPartition ranks(config.n, layers);
    for (std::uint32_t l = 0; l + 1 < layers; ++l) {
      const auto ub = static_cast<std::uint32_t>(ranks.block_begin(l));
      const auto ue = static_cast<std::uint32_t>(ranks.block_end(l));
      const auto vb = static_cast<std::uint32_t>(ranks.block_begin(l + 1));
      const auto ve = static_cast<std::uint32_t>(ranks.block_end(l + 1));
      for (std::uint32_t u = ub; u < ue; ++u) {
        for (std::uint32_t v = vb; v < ve; ++v) {
          if (!rng.bernoulli(config.density)) continue;
          emit(u, v, rng.uniform_i64(config.wmin, config.wmax));
        }
      }
    }
  }
};

// ---------------------------------------------------------- lambda skew ----

class LambdaSkewFamily final : public GraphFamily {
 public:
  std::string name() const override { return "lambda-skew"; }
  std::string description() const override {
    return "adversarial row skew: `hubs` rows carry arcs to every vertex "
           "while the rest stay density-sparse, concentrating pair mass on "
           "few rows (the Lemma 2 balance stressor)";
  }
  FamilyTraits traits(const FamilyConfig&) const override {
    FamilyTraits t;
    t.no_negative_cycles = true;
    t.connected = true;  // hub 0 is undirected-adjacent to every vertex
    return t;
  }
  Digraph generate(const FamilyConfig& config, Rng& rng) const override {
    validate(config);
    const std::uint32_t h = std::clamp<std::uint32_t>(config.hubs, 1, config.n);
    const PotentialWeights weights(config.n, config.wmin, config.wmax, rng);
    Digraph g(config.n);
    for (std::uint32_t u = 0; u < config.n; ++u) {
      for (std::uint32_t v = 0; v < config.n; ++v) {
        if (u == v) continue;
        if (u >= h && !rng.bernoulli(config.density)) continue;
        g.set_arc(u, v, weights.sample(u, v, rng));
      }
    }
    return g;
  }
  WeightedGraph generate_weighted(const FamilyConfig& config, Rng& rng) const override {
    validate(config);
    const std::uint32_t h = std::clamp<std::uint32_t>(config.hubs, 1, config.n);
    WeightedGraph g(config.n);
    for (std::uint32_t u = 0; u < config.n; ++u) {
      for (std::uint32_t v = u + 1; v < config.n; ++v) {
        if (u >= h && !rng.bernoulli(config.density)) continue;
        g.set_edge(u, v, rng.uniform_i64(config.wmin, config.wmax));
      }
    }
    return g;
  }
};

}  // namespace

GraphFamilyRegistry& GraphFamilyRegistry::instance() {
  // Builtins are registered lazily here rather than via static-initializer
  // self-registration, matching the other three registries: the library is
  // linked statically and nothing would anchor a registrar TU.
  static GraphFamilyRegistry* global = [] {
    auto* r = new GraphFamilyRegistry();
    register_builtin_families(*r);
    return r;
  }();
  return *global;
}

void GraphFamilyRegistry::add(std::unique_ptr<GraphFamily> family) {
  QCLIQUE_CHECK(family != nullptr, "family registry: null family");
  const std::string name = family->name();
  QCLIQUE_CHECK(!name.empty(), "family registry: family with empty name");
  std::lock_guard<std::mutex> lock(mu_);
  const auto pos = std::lower_bound(
      families_.begin(), families_.end(), name,
      [](const auto& f, const std::string& key) { return f->name() < key; });
  QCLIQUE_CHECK(pos == families_.end() || (*pos)->name() != name,
                "family registry: duplicate family name '" + name + "'");
  families_.insert(pos, std::move(family));
}

bool GraphFamilyRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::any_of(families_.begin(), families_.end(),
                     [&](const auto& f) { return f->name() == name; });
}

const GraphFamily& GraphFamilyRegistry::get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& f : families_) {
    if (f->name() == name) return *f;
  }
  std::string known;
  for (const auto& f : families_) {
    if (!known.empty()) known += ", ";
    known += f->name();
  }
  throw SimulationError("family registry: unknown family '" + name +
                        "' (known: " + known + ")");
}

std::vector<std::string> GraphFamilyRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(families_.size());
  for (const auto& f : families_) out.push_back(f->name());
  return out;
}

std::size_t GraphFamilyRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return families_.size();
}

void register_builtin_families(GraphFamilyRegistry& registry) {
  registry.add(std::make_unique<GnpFamily>());
  registry.add(std::make_unique<GridFamily>());
  registry.add(std::make_unique<TorusFamily>());
  registry.add(std::make_unique<RingOfCliquesFamily>());
  registry.add(std::make_unique<ExpanderFamily>());
  registry.add(std::make_unique<PowerLawFamily>());
  registry.add(std::make_unique<ClusteredFamily>());
  registry.add(std::make_unique<LayeredDagFamily>());
  registry.add(std::make_unique<LambdaSkewFamily>());
}

FamilyConfig family_config(std::uint32_t n, double density, std::int64_t wmin,
                           std::int64_t wmax) {
  FamilyConfig config;
  config.n = n;
  config.density = density;
  config.wmin = wmin;
  config.wmax = wmax;
  return config;
}

Digraph make_family_graph(const std::string& family, const FamilyConfig& config,
                          Rng& rng) {
  return GraphFamilyRegistry::instance().get(family).generate(config, rng);
}

WeightedGraph make_family_weighted(const std::string& family,
                                   const FamilyConfig& config, Rng& rng) {
  return GraphFamilyRegistry::instance().get(family).generate_weighted(config, rng);
}

std::vector<std::uint32_t> structural_hubs(const Digraph& g, std::uint32_t k) {
  const std::uint32_t n = g.size();
  if (k > n) k = n;
  // Undirected degree: count each adjacent pair once, whichever direction.
  std::vector<std::uint64_t> degree(n, 0);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) {
      if (g.has_arc(u, v) || g.has_arc(v, u)) {
        ++degree[u];
        ++degree[v];
      }
    }
  }
  std::vector<std::uint32_t> order(n);
  for (std::uint32_t v = 0; v < n; ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return degree[a] > degree[b];
                   });
  order.resize(k);
  return order;
}

}  // namespace qclique
