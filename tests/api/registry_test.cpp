// Tests for the SolverRegistry: builtin population, lookup semantics,
// duplicate rejection, and capability flags harnesses dispatch on.
#include "api/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"

namespace qclique {
namespace {

class NullSolver : public ApspSolver {
 public:
  explicit NullSolver(std::string name) : name_(std::move(name)) {}
  std::string name() const override { return name_; }
  std::string description() const override { return "test stub"; }
  SolverCapabilities capabilities() const override { return {}; }

 protected:
  ApspReport do_solve(const Digraph& g, ExecutionContext&) const override {
    return ApspReport(g.size());
  }

 private:
  std::string name_;
};

TEST(SolverRegistry, BuiltinBackendsAreRegistered) {
  SolverRegistry& r = SolverRegistry::instance();
  for (const char* name : {"quantum", "classical-search", "semiring",
                           "dense-squaring", "floyd-warshall", "johnson",
                           "bellman-ford", "dijkstra"}) {
    EXPECT_TRUE(r.contains(name)) << name;
    EXPECT_EQ(r.get(name).name(), name);
    EXPECT_FALSE(r.get(name).description().empty()) << name;
  }
  EXPECT_GE(r.size(), 8u);
}

TEST(SolverRegistry, NamesAreSortedAndMatchSize) {
  SolverRegistry& r = SolverRegistry::instance();
  const auto names = r.names();
  EXPECT_EQ(names.size(), r.size());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(SolverRegistry, UnknownNameThrowsListingKnownBackends) {
  SolverRegistry& r = SolverRegistry::instance();
  EXPECT_FALSE(r.contains("no-such-solver"));
  try {
    r.get("no-such-solver");
    FAIL() << "expected SimulationError";
  } catch (const SimulationError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-solver"), std::string::npos);
    EXPECT_NE(what.find("quantum"), std::string::npos) << "should list known names";
  }
}

TEST(SolverRegistry, DuplicateRegistrationThrows) {
  SolverRegistry r;
  r.add(std::make_unique<NullSolver>("stub"));
  EXPECT_TRUE(r.contains("stub"));
  EXPECT_THROW(r.add(std::make_unique<NullSolver>("stub")), SimulationError);
  EXPECT_EQ(r.size(), 1u);
}

TEST(SolverRegistry, NullAndEmptyNamedSolversRejected) {
  SolverRegistry r;
  EXPECT_THROW(r.add(nullptr), SimulationError);
  EXPECT_THROW(r.add(std::make_unique<NullSolver>("")), SimulationError);
}

TEST(SolverRegistry, PrivateRegistryGetsSameBuiltins) {
  SolverRegistry r;
  register_builtin_solvers(r);
  EXPECT_EQ(r.names(), SolverRegistry::instance().names());
}

TEST(SolverRegistry, CapabilityFlags) {
  SolverRegistry& r = SolverRegistry::instance();
  EXPECT_TRUE(r.get("quantum").capabilities().quantum);
  EXPECT_TRUE(r.get("quantum").capabilities().distributed);
  EXPECT_FALSE(r.get("classical-search").capabilities().quantum);
  EXPECT_TRUE(r.get("classical-search").capabilities().distributed);
  EXPECT_TRUE(r.get("semiring").capabilities().distributed);
  EXPECT_FALSE(r.get("floyd-warshall").capabilities().distributed);
  EXPECT_FALSE(r.get("dijkstra").capabilities().negative_weights);
  EXPECT_TRUE(r.get("johnson").capabilities().negative_weights);
}

TEST(SolverRegistry, NonNegativeOnlySolverRejectsNegativeArcs) {
  Digraph g(3);
  g.set_arc(0, 1, -2);
  g.set_arc(1, 2, 5);
  ExecutionContext ctx(1);
  EXPECT_THROW(SolverRegistry::instance().get("dijkstra").solve(g, ctx),
               SimulationError);
}

}  // namespace
}  // namespace qclique
