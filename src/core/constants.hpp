// The paper's numeric constants, gathered in one configurable profile.
//
// The proofs choose generous constants (10 log n sampling rates, 90 log n
// promises, thresholds like 100 n^{1/4} log n) so every Chernoff bound has
// slack at astronomically large n. At simulable sizes those constants
// degenerate: sampling probabilities cap at 1 and thresholds exceed the
// whole population, so the interesting regime (real sampling, real load
// limits) never activates. Every algorithm therefore reads its constants
// from this struct: `paper()` is the faithful default, `scaled(f)` shrinks
// the multiplicative constants by f so tests and benches can exercise the
// tail events the paper's analysis is about.
#pragma once

#include <cstdint>

namespace qclique {

/// Multiplicative constants of the paper's algorithms. Fields are named
/// after the expressions they scale.
struct Constants {
  /// Lambda_x(u,v) sampling rate: pair kept with prob c * log n / sqrt(n)
  /// (Section 5.1 partition procedure; paper c = 10).
  double lambda_sample = 10.0;

  /// Well-balancedness threshold: Lambda_x(u,v) is well-balanced if every
  /// u-row holds <= c * n^{1/4} * log n sampled pairs (Lemma 2; paper 100).
  double balance_threshold = 100.0;

  /// The FindEdgesWithPromise promise: Gamma(u,v) <= c log n (paper 90).
  double promise = 90.0;

  /// Proposition 1 edge-sampling: at loop iteration i each edge survives
  /// with prob sqrt(c * 2^i * log n / n), and the loop runs while
  /// c * 2^i * log n <= n (paper c = 60).
  double prop1_sample = 60.0;

  /// IdentifyClass R-sampling rate: c * log n / n (Figure 2; paper 10).
  double identify_sample = 10.0;

  /// IdentifyClass abort threshold: abort if |Lambda(u)| > c log n
  /// (Figure 2; paper 20).
  double identify_abort = 20.0;

  /// IdentifyClass class boundaries: cuvw = min { c >= 0 : duvw <
  /// identify_class_base * 2^c * log n } (Figure 2; paper 10).
  double identify_class_base = 10.0;

  /// Evaluation-procedure list-size promise: |L^k_w| <= c * 2^alpha *
  /// sqrt(n) * log n (Figures 4-5; paper 800).
  double eval_load = 800.0;

  /// Class-size bound |T_alpha[u,v]| <= c * sqrt(n) * log n / 2^alpha
  /// (Lemma 4; paper 720). Also sets the alpha > 0 duplication factor
  /// 2^alpha / (c * log n) of Section 5.3.2.
  double class_size = 720.0;

  /// The paper's values.
  static Constants paper() { return Constants{}; }

  /// All multiplicative constants scaled by `f` (f < 1 activates the
  /// sampling/threshold regime at small n). Values clamp below at a small
  /// positive floor so probabilities and thresholds stay meaningful.
  static Constants scaled(double f);
};

}  // namespace qclique
