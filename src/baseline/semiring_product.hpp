// Classical CONGEST-CLIQUE distance product in O~(n^{1/3}) rounds
// (Censor-Hillel, Kaski, Korhonen, Lenzen, Paz, Suomela: "Algebraic methods
// in the congested clique").
//
// Min-plus products cannot use ring-based fast matrix multiplication, so the
// best classical algorithm is the 3D ("cube") decomposition of the semiring
// product:
//   * view the n nodes as a q x q x q cube with q = ceil(n^{1/3});
//   * node (a, b, c) is responsible for the block product
//       P_abc = A[rows_a, cols_c] * B[rows_c, cols_b]
//     over blocks of n/q = n^{2/3} indices per side;
//   * each node receives 2 n^{4/3} matrix entries (O(n^{1/3}) rounds via
//     Lemma 1 routing), computes its partial block locally, and
//   * partial results are min-combined at the row owners (another n^{4/3}
//     entries per node, O(n^{1/3}) rounds).
// The implementation runs genuinely on the Network transport: all traffic
// goes through route() batches, so the reported rounds come from measured
// loads (and the Lemma 1 charge degrades to stepped delivery on non-clique
// topologies -- see congest/lenzen.hpp).
//
// This is the paper's classical comparison point: Theorem 1's O~(n^{1/4})
// quantum algorithm beats this O~(n^{1/3}) bound.
#pragma once

#include <cstdint>

#include "congest/transport.hpp"
#include "matrix/dist_matrix.hpp"
#include "matrix/kernels.hpp"

namespace qclique {

/// Result of a distributed product: the matrix plus the rounds it cost.
struct DistributedProductResult {
  DistMatrix product;
  std::uint64_t rounds = 0;

  DistributedProductResult(std::uint32_t n) : product(n) {}
};

/// Computes A * B (min-plus) on the given clique network. The network must
/// have exactly a.size() == n nodes; input distribution is the standard one
/// (node i holds row i of A and row i of B), and on return node i holds row
/// i of the product (the full matrix is also returned for convenience).
/// Rounds are charged to phase "semiring/*" on the network's ledger. The
/// cube nodes' local block products (free in the round model, the wall-time
/// hot path of the simulation) run on the selected min-plus kernel.
DistributedProductResult semiring_distance_product(Network& net,
                                                   const DistMatrix& a,
                                                   const DistMatrix& b,
                                                   const KernelOptions& kernel = {});

}  // namespace qclique
