// Experiment E18: dynamic APSP repair vs recompute-from-scratch.
//
// Replays every registered update stream over three graph families and
// races the two registered dynamic solvers on identical batches: the
// "incremental" affected-source repair against the "recompute" oracle that
// re-runs the static backend per batch. Batches are small-update streams
// (batch_size = max(1, n/16)), the regime the incremental solver is built
// for; both solvers maintain witness successors so the comparison covers
// everything a StreamSession would publish.
//
//   usage: bench_dynamic_apsp [n] [json-path]
//
// Doubles as a conformance gate: after every batch the incremental
// distances must be bit-identical to the recompute oracle's (exit non-zero
// on any mismatch), and at n >= 256 the headline acceptance bar -- every
// (family, stream) run repairs >= 5x faster than recompute -- exits
// non-zero when missed. The JSON artifact (BENCH_dynamic_apsp.json) is
// uploaded by CI; docs/STREAMING.md documents the schema.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/execution_context.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "congest/round_ledger.hpp"
#include "graph/families.hpp"
#include "stream/dynamic_solver.hpp"
#include "stream/generators.hpp"

namespace {

/// Same (graph_seed, name) folding as BatchRunner::run_streams, so the
/// bench's inputs line up with what the scenario harness would generate.
std::uint64_t fold_name(std::uint64_t seed, const std::string& name) {
  std::uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (const char ch : name) {
    h = (h ^ static_cast<unsigned char>(ch)) * 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qclique;
  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::stoul(argv[1])) : 256;
  const std::string json_path = argc > 2 ? argv[2] : "BENCH_dynamic_apsp.json";
  const std::uint32_t batch_size = std::max<std::uint32_t>(1, n / 16);
  const std::uint32_t num_batches = 8;
  std::cout << "E18: dynamic APSP repair vs recompute (n = " << n
            << ", batches = " << num_batches << " x " << batch_size << ")\n\n";

  const std::vector<std::string> families{"gnp", "power-law", "clustered"};
  const FamilyConfig cfg = family_config(n, 0.3, 1, 9);
  const std::uint64_t graph_seed = 1800 + n;

  ExecutionContext ctx(23);
  DynamicSolverOptions options;  // with_paths = true: serve-grade repair

  Table table({"family", "stream", "updates", "affected", "incr ms",
               "recomp ms", "speedup", "exact"});
  std::ostringstream json;
  json << "{\"bench\":\"dynamic_apsp\",\"schema_version\":1,\"n\":" << n
       << ",\"batches\":" << num_batches << ",\"batch_size\":" << batch_size
       << ",\"runs\":[";
  bool all_exact = true;
  bool first_run = true;
  double min_speedup = -1.0;

  for (const std::string& family : families) {
    Rng grng(fold_name(graph_seed, family));
    const Digraph start = make_family_graph(family, cfg, grng);
    const StreamConfig sc =
        stream_for_family(family, cfg, num_batches, batch_size);
    for (const std::string& stream : UpdateStreamRegistry::instance().names()) {
      Rng srng(fold_name(fold_name(graph_seed, family), stream));
      const auto batches = make_update_stream(stream, start, sc, srng);

      auto incremental = make_dynamic_solver("incremental", options);
      auto recompute = make_dynamic_solver("recompute", options);
      incremental->reset(start, ctx);
      recompute->reset(start, ctx);

      double incr_ms = 0.0, recomp_ms = 0.0;
      std::uint64_t updates = 0, affected = 0;
      bool exact = incremental->distances() == recompute->distances();
      for (const UpdateBatch& batch : batches) {
        const RepairStats is = incremental->apply(batch, ctx);
        const RepairStats rs = recompute->apply(batch, ctx);
        incr_ms += is.wall_ms;
        recomp_ms += rs.wall_ms;
        updates += is.updates;
        affected += is.affected_sources;
        exact = exact && incremental->distances() == recompute->distances();
      }
      all_exact = all_exact && exact;
      const double speedup = incr_ms > 0.0 ? recomp_ms / incr_ms : 0.0;
      if (min_speedup < 0.0 || speedup < min_speedup) min_speedup = speedup;

      table.add_row({family, stream, Table::fmt(updates), Table::fmt(affected),
                     Table::fmt(incr_ms, 2), Table::fmt(recomp_ms, 2),
                     Table::fmt(speedup, 2), exact ? "yes" : "NO"});
      if (!first_run) json << ",";
      first_run = false;
      json << "{\"family\":" << json_quote(family)
           << ",\"stream\":" << json_quote(stream) << ",\"updates\":" << updates
           << ",\"affected_sources\":" << affected
           << ",\"incremental_ms\":" << incr_ms
           << ",\"recompute_ms\":" << recomp_ms << ",\"speedup\":" << speedup
           << ",\"exact\":" << (exact ? "true" : "false") << "}";
    }
  }

  json << "],\"min_speedup\":" << min_speedup
       << ",\"all_exact\":" << (all_exact ? "true" : "false") << "}";

  table.print("Dynamic APSP: incremental repair vs per-batch recompute");

  std::ofstream out(json_path);
  out << json.str() << "\n";
  out.close();
  std::cout << "\nwrote " << json_path << "\n";
  std::cout << "incremental exact vs recompute after every batch: "
            << (all_exact ? "yes" : "NO") << "\n";

  bool gate_ok = true;
  if (n >= 256) {
    gate_ok = min_speedup >= 5.0;
    std::cout << "small-batch repair gate: min speedup "
              << Table::fmt(min_speedup, 2)
              << "x (target 5x): " << (gate_ok ? "PASS" : "FAIL") << "\n";
  }
  return all_exact && gate_ok ? 0 : 1;
}
