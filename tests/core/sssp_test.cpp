// Tests for the SSSP wrapper.
#include "core/sssp.hpp"

#include <gtest/gtest.h>

#include "baseline/shortest_paths.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace qclique {
namespace {

TEST(QuantumSssp, MatchesBellmanFord) {
  Rng rng(1);
  const auto g = random_digraph(10, 0.5, -4, 9, rng);
  QuantumApspOptions opt;
  for (std::uint32_t s : {0u, 4u, 9u}) {
    Rng child = rng.split();
    const auto res = quantum_sssp(g, s, opt, child);
    const auto bf = bellman_ford(g, s);
    ASSERT_TRUE(bf.has_value());
    EXPECT_EQ(res.distances, *bf) << "source " << s;
    EXPECT_GT(res.rounds, 0u);
  }
}

TEST(QuantumSssp, UnreachableVerticesAreInf) {
  Digraph g(5);
  g.set_arc(0, 1, 2);
  Rng rng(2);
  QuantumApspOptions opt;
  const auto res = quantum_sssp(g, 0, opt, rng);
  EXPECT_EQ(res.distances[0], 0);
  EXPECT_EQ(res.distances[1], 2);
  EXPECT_TRUE(is_plus_inf(res.distances[2]));
}

TEST(QuantumSssp, RejectsBadSource) {
  Digraph g(3);
  Rng rng(3);
  QuantumApspOptions opt;
  EXPECT_THROW(quantum_sssp(g, 3, opt, rng), SimulationError);
}

}  // namespace
}  // namespace qclique
