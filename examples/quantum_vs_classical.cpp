// Quantum vs classical round complexity -- the paper's central comparison,
// driven through the unified API.
//
//   $ ./example_quantum_vs_classical
//
// For a sweep of network sizes, a BatchRunner fans every registered backend
// out over the same random digraph (quantum Theorem 1 pipeline, its
// classical-search twin, the O~(n^{1/3}) semiring baseline, and the
// centralized oracles) and prints the measured simulated rounds side by
// side, verifying that all backends return identical distance matrices.
#include <iostream>

#include "api/batch_runner.hpp"
#include "common/table.hpp"
#include "graph/families.hpp"

int main() {
  using namespace qclique;

  SolverRegistry& registry = SolverRegistry::instance();
  Table table({"n", "solver", "rounds", "oracle calls", "wall ms", "agrees"});

  for (std::uint32_t n : {8u, 12u, 16u, 20u}) {
    Rng rng(n);
    const auto g = make_family_graph("gnp", family_config(n, 0.45, -6, 10), rng);

    ExecutionContext base(1234 + n);
    const BatchRunner runner(registry, base);
    const auto results = runner.run_all(g);

    // All backends must agree exactly; compare against the first report.
    const DistMatrix* reference = nullptr;
    for (const auto& r : results) {
      if (r.ok) {
        reference = &r.report->distances;
        break;
      }
    }
    for (const auto& r : results) {
      if (!r.ok) {
        table.add_row({Table::fmt(static_cast<std::uint64_t>(n)), r.solver,
                       "ERROR: " + r.error, "-", "-", "-"});
        continue;
      }
      const bool agrees = reference && r.report->distances == *reference;
      table.add_row({Table::fmt(static_cast<std::uint64_t>(n)), r.solver,
                     Table::fmt(r.report->rounds),
                     Table::fmt(r.report->ledger.total_oracle_calls()),
                     Table::fmt(r.report->wall_ms, 2), agrees ? "yes" : "NO"});
      if (!agrees) return 1;
    }
  }

  table.print("APSP backends on one graph (simulated rounds, BatchRunner fan-out)");
  std::cout << "\nAt these sizes the classical columns win in absolute rounds: the\n"
               "quantum algorithm pays a large constant per Grover call (BBHT\n"
               "budget x compute/uncompute), and the paper's sampling constants\n"
               "saturate below n ~ 10^4. The asymptotic separation (quantum\n"
               "~n^{1/4} vs classical ~n^{1/2} and ~n^{1/3}) shows up in the\n"
               "fitted exponents and oracle-call counts -- see\n"
               "bench_findedges_promise and bench_apsp_scaling.\n";
  return 0;
}
