// Name -> solver registry.
//
// The process-wide registry is the seam between backends and harnesses:
// backends register once (builtins at first use, external backends via
// `add`), and every bench / example / test resolves solvers by name. The
// registry owns its solvers; lookups return stable references that stay
// valid for the registry's lifetime. Registration is mutex-guarded;
// lookups after setup are safe from concurrent BatchRunner workers.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/solver.hpp"

namespace qclique {

class SolverRegistry {
 public:
  /// The process-wide registry, with all built-in backends registered.
  static SolverRegistry& instance();

  /// An empty registry (tests; embedding several independent registries).
  SolverRegistry() = default;

  SolverRegistry(const SolverRegistry&) = delete;
  SolverRegistry& operator=(const SolverRegistry&) = delete;

  /// Registers a solver under solver->name(). Throws SimulationError on a
  /// duplicate name or a null/empty-named solver.
  void add(std::unique_ptr<ApspSolver> solver);

  bool contains(const std::string& name) const;

  /// Looks up a backend; throws SimulationError naming the known backends
  /// when `name` is not registered.
  const ApspSolver& get(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ApspSolver>> solvers_;  // sorted by name
};

/// Registers every built-in backend into `registry` (quantum pipeline,
/// classical-search pipeline, semiring baseline, dense squaring oracle,
/// Floyd-Warshall, Johnson, Bellman-Ford, Dijkstra). Called once by
/// SolverRegistry::instance(); exposed so tests can build private
/// registries with the same population.
void register_builtin_solvers(SolverRegistry& registry);

}  // namespace qclique
