// End-to-end tests for Theorem 1: the full quantum APSP pipeline against
// the centralized oracles.
#include "core/apsp.hpp"

#include <gtest/gtest.h>

#include "baseline/shortest_paths.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace qclique {
namespace {

class ApspSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApspSeeds, MatchesFloydWarshallOnRandomDigraphs) {
  Rng rng(GetParam());
  const std::uint32_t n = 10;
  const auto g = random_digraph(n, 0.45, -4, 9, rng);
  const auto fw = floyd_warshall(g);
  ASSERT_TRUE(fw.has_value());
  QuantumApspOptions opt;
  const auto res = quantum_apsp(g, opt, rng);
  EXPECT_EQ(res.distances, *fw) << res.distances.first_difference(*fw);
  EXPECT_GT(res.rounds, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApspSeeds, ::testing::Values(1ull, 2ull, 3ull, 4ull));

TEST(QuantumApsp, LargerInstance) {
  Rng rng(10);
  const std::uint32_t n = 16;
  const auto g = random_digraph(n, 0.4, -5, 10, rng);
  const auto fw = floyd_warshall(g);
  ASSERT_TRUE(fw.has_value());
  QuantumApspOptions opt;
  const auto res = quantum_apsp(g, opt, rng);
  EXPECT_EQ(res.distances, *fw) << res.distances.first_difference(*fw);
}

TEST(QuantumApsp, NonNegativeWeightsMatchJohnson) {
  Rng rng(11);
  const auto g = random_digraph(12, 0.5, 0, 8, rng, false);
  const auto jo = johnson(g);
  ASSERT_TRUE(jo.has_value());
  QuantumApspOptions opt;
  const auto res = quantum_apsp(g, opt, rng);
  EXPECT_EQ(res.distances, *jo);
}

TEST(QuantumApsp, DisconnectedGraphKeepsInfinities) {
  Digraph g(6);
  g.set_arc(0, 1, 3);
  g.set_arc(1, 2, -1);
  // Vertices 3..5 isolated.
  Rng rng(12);
  QuantumApspOptions opt;
  const auto res = quantum_apsp(g, opt, rng);
  EXPECT_EQ(res.distances.at(0, 2), 2);
  EXPECT_TRUE(is_plus_inf(res.distances.at(0, 3)));
  EXPECT_TRUE(is_plus_inf(res.distances.at(3, 0)));
  EXPECT_EQ(res.distances.at(3, 3), 0);
}

TEST(QuantumApsp, SingleVertexAndTinyGraphs) {
  Rng rng(13);
  QuantumApspOptions opt;
  const auto r1 = quantum_apsp(Digraph(1), opt, rng);
  EXPECT_EQ(r1.distances.at(0, 0), 0);
  Digraph g2(2);
  g2.set_arc(0, 1, -7);
  const auto r2 = quantum_apsp(g2, opt, rng);
  EXPECT_EQ(r2.distances.at(0, 1), -7);
  EXPECT_TRUE(is_plus_inf(r2.distances.at(1, 0)));
}

TEST(QuantumApsp, NegativeCycleDetected) {
  Digraph g(3);
  g.set_arc(0, 1, -2);
  g.set_arc(1, 0, 1);
  Rng rng(14);
  QuantumApspOptions opt;
  EXPECT_THROW(quantum_apsp(g, opt, rng), SimulationError);
}

TEST(QuantumApsp, ProductCountIsCeilLog) {
  Rng rng(15);
  const auto g = random_digraph(9, 0.5, 0, 5, rng, false);
  QuantumApspOptions opt;
  const auto res = quantum_apsp(g, opt, rng);
  EXPECT_EQ(res.products, 3u);  // ceil(log2(8))
}

TEST(QuantumApsp, ClassicalStep3VariantMatches) {
  Rng rng(16);
  const auto g = random_digraph(10, 0.45, -3, 8, rng);
  const auto fw = floyd_warshall(g);
  ASSERT_TRUE(fw.has_value());
  QuantumApspOptions opt;
  opt.product.find_edges.compute_pairs.use_quantum = false;
  const auto res = quantum_apsp(g, opt, rng);
  EXPECT_EQ(res.distances, *fw);
}

TEST(QuantumApsp, PathReconstructionThroughDistances) {
  // Footnote 1: paths from the distance matrix via the standard technique.
  Rng rng(17);
  const auto g = random_digraph(10, 0.5, 1, 9, rng, false);
  QuantumApspOptions opt;
  const auto res = quantum_apsp(g, opt, rng);
  for (std::uint32_t u = 0; u < 10; u += 2) {
    for (std::uint32_t v = 1; v < 10; v += 3) {
      if (is_plus_inf(res.distances.at(u, v)) || u == v) continue;
      const auto path = reconstruct_path(g, res.distances, u, v);
      ASSERT_GE(path.size(), 2u);
      std::int64_t total = 0;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        total += g.weight(path[i], path[i + 1]);
      }
      EXPECT_EQ(total, res.distances.at(u, v));
    }
  }
}

}  // namespace
}  // namespace qclique
