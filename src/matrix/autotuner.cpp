#include "matrix/autotuner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "common/task_pool.hpp"

namespace qclique {

namespace {

/// Extracts the number following `"<field>":` inside one JSON object
/// fragment, or nullopt. Good enough for the cache files this TU itself
/// writes; anything malformed fails the whole load() instead of
/// half-parsing.
std::optional<double> field_number(const std::string& obj, const std::string& field) {
  const std::string needle = "\"" + field + "\":";
  const auto pos = obj.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  const char* start = obj.c_str() + pos + needle.size();
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return std::nullopt;
  return v;
}

/// Extracts the string following `"<field>":"` up to the closing quote.
std::optional<std::string> field_string(const std::string& obj,
                                        const std::string& field) {
  const std::string needle = "\"" + field + "\":\"";
  const auto pos = obj.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  const auto start = pos + needle.size();
  const auto close = obj.find('"', start);
  if (close == std::string::npos) return std::nullopt;
  return obj.substr(start, close - start);
}

std::string autotune_cache_path_from_env() {
  const char* path = std::getenv("QCLIQUE_AUTOTUNE_CACHE");
  return path ? path : "";
}

class AutoKernel final : public MinPlusKernel {
 public:
  std::string name() const override { return "auto"; }

  std::string description() const override {
    return "autotuned delegation: sweeps kernel x block x threads once per "
           "(shape, ISA), caches the winner";
  }

  void run(const std::int64_t* a, const std::int64_t* b, std::int64_t* c,
           std::uint32_t rows, std::uint32_t inner, std::uint32_t cols,
           const KernelConfig& config, std::uint32_t* witness) const override {
    const KernelRegistry& registry = KernelRegistry::instance();
    // Tiny products: the sweep would cost orders of magnitude more than it
    // could ever save (same threshold as the row-band single-thread cut).
    if (static_cast<std::uint64_t>(rows) * inner * cols < (1u << 15)) {
      registry.get("blocked").run(a, b, c, rows, inner, cols, config, witness);
      return;
    }
    const TuneShape shape{rows, inner, cols, active_kernel_isa()};
    KernelAutotuner& tuner =
        config.autotuner ? *config.autotuner : KernelAutotuner::process_instance();
    const TunePlan plan = tuner.plan_for(shape, [&](const TunePlan& cand) {
      // Candidates run on the real inputs into a scratch output, so the
      // sweep measures exactly the memory behavior the winner will see.
      std::vector<std::int64_t> scratch(static_cast<std::size_t>(rows) * cols);
      const KernelConfig cc = cand.config(config);
      const auto start = std::chrono::steady_clock::now();
      registry.get(cand.kernel).run(a, b, scratch.data(), rows, inner, cols, cc,
                                    nullptr);
      const auto stop = std::chrono::steady_clock::now();
      return std::chrono::duration<double, std::milli>(stop - start).count();
    });
    registry.get(plan.kernel).run(a, b, c, rows, inner, cols,
                                  plan.config(config), witness);
  }
};

}  // namespace

KernelAutotuner::KernelAutotuner(std::string cache_path)
    : cache_path_(std::move(cache_path)) {
  if (!cache_path_.empty()) load(cache_path_);
}

KernelAutotuner::Key KernelAutotuner::key_of(const TuneShape& shape) {
  return {shape.rows, shape.inner, shape.cols, static_cast<int>(shape.isa)};
}

TunePlan KernelAutotuner::plan_for(const TuneShape& shape, const Measure& measure) {
  std::lock_guard<std::mutex> lock(mu_);
  const Key key = key_of(shape);
  if (const auto it = plans_.find(key); it != plans_.end()) return it->second;
  TunePlan best;
  double best_ms = -1.0;
  for (const TunePlan& cand : candidates(shape)) {
    const double ms = measure(cand);
    // Strict improvement only: ties keep the earliest candidate, so equal
    // measurements cannot flap the winner between runs.
    if (best_ms < 0.0 || ms < best_ms) {
      best = cand;
      best_ms = ms;
    }
  }
  QCLIQUE_CHECK(best_ms >= 0.0, "autotuner: empty candidate grid");
  best.best_ms = best_ms;
  plans_[key] = best;
  ++sweeps_;
  if (!cache_path_.empty()) save_locked(cache_path_);
  return best;
}

std::optional<TunePlan> KernelAutotuner::cached(const TuneShape& shape) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = plans_.find(key_of(shape)); it != plans_.end()) {
    return it->second;
  }
  return std::nullopt;
}

void KernelAutotuner::set_plan(const TuneShape& shape, const TunePlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plans_[key_of(shape)] = plan;
}

std::size_t KernelAutotuner::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_.size();
}

std::uint64_t KernelAutotuner::sweeps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sweeps_;
}

void KernelAutotuner::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  plans_.clear();
  sweeps_ = 0;
}

bool KernelAutotuner::save(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return save_locked(path);
}

bool KernelAutotuner::save_locked(const std::string& path) const {
  std::ostringstream out;
  out << "{\"autotuner_cache\":1,\"plans\":[";
  bool first = true;
  for (const auto& [key, plan] : plans_) {
    const auto& [rows, inner, cols, isa] = key;
    if (!first) out << ",";
    first = false;
    out << "{\"rows\":" << rows << ",\"inner\":" << inner << ",\"cols\":" << cols
        << ",\"isa\":\"" << kernel_isa_name(static_cast<KernelIsa>(isa))
        << "\",\"kernel\":\"" << plan.kernel
        << "\",\"block_size\":" << plan.block_size
        << ",\"num_threads\":" << plan.num_threads
        << ",\"best_ms\":" << plan.best_ms << "}";
  }
  out << "]}\n";
  std::ofstream f(path);
  if (!f) return false;
  f << out.str();
  return static_cast<bool>(f);
}

bool KernelAutotuner::load(const std::string& path) {
  std::ifstream f(path);
  if (!f) return false;
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string text = buf.str();
  if (text.find("\"autotuner_cache\":1") == std::string::npos) return false;
  std::lock_guard<std::mutex> lock(mu_);
  // Walk the {...} objects inside "plans":[...]; each is flat (no nested
  // braces), matching what save() writes.
  auto pos = text.find("\"plans\":[");
  if (pos == std::string::npos) return false;
  pos += 9;
  const auto array_end = text.find(']', pos);
  if (array_end == std::string::npos) return false;
  while (true) {
    const auto open = text.find('{', pos);
    if (open == std::string::npos || open > array_end) break;
    const auto close = text.find('}', open);
    if (close == std::string::npos) return false;
    const std::string obj = text.substr(open, close - open + 1);
    const auto rows = field_number(obj, "rows");
    const auto inner = field_number(obj, "inner");
    const auto cols = field_number(obj, "cols");
    const auto isa = field_string(obj, "isa");
    const auto kernel = field_string(obj, "kernel");
    const auto block = field_number(obj, "block_size");
    const auto threads = field_number(obj, "num_threads");
    if (!rows || !inner || !cols || !isa || !kernel || !block || !threads) {
      return false;
    }
    TuneShape shape{static_cast<std::uint32_t>(*rows),
                    static_cast<std::uint32_t>(*inner),
                    static_cast<std::uint32_t>(*cols), parse_kernel_isa(*isa)};
    TunePlan plan;
    plan.kernel = *kernel;
    plan.block_size = static_cast<std::uint32_t>(*block);
    plan.num_threads = static_cast<unsigned>(*threads);
    plan.best_ms = field_number(obj, "best_ms").value_or(0.0);
    // In-memory plans win: they were measured in this process.
    plans_.emplace(key_of(shape), plan);
    pos = close + 1;
  }
  return true;
}

std::vector<TunePlan> KernelAutotuner::candidates(const TuneShape& shape) {
  // Pool sizing, not raw hardware_concurrency: the measured runs execute
  // on the shared TaskPool, so the candidate thread count must match what
  // the pool will actually grant (QCLIQUE_THREADS caps both).
  const unsigned hw = resolve_task_pool_threads(0);
  const std::uint32_t dim_max =
      std::max({shape.rows, shape.inner, shape.cols, 1u});
  // (kernel, threads) pairs that are genuinely distinct runs: "parallel"
  // at 1 worker is bit- and cost-identical to "blocked", and "simd" under
  // a scalar tier is "parallel", so neither appears twice.
  std::vector<std::pair<std::string, unsigned>> runs{{"blocked", 1}};
  if (hw > 1) runs.emplace_back("parallel", hw);
  if (shape.isa != KernelIsa::scalar) {
    runs.emplace_back("simd", 1);
    if (hw > 1) runs.emplace_back("simd", hw);
  }
  std::vector<TunePlan> out;
  for (const auto& [kernel, threads] : runs) {
    for (const std::uint32_t bs : {32u, 64u, 128u}) {
      if (bs > dim_max && bs != 32u) continue;  // clamped duplicates
      TunePlan plan;
      plan.kernel = kernel;
      plan.block_size = bs;
      plan.num_threads = threads;
      out.push_back(plan);
    }
  }
  return out;
}

KernelAutotuner& KernelAutotuner::process_instance() {
  static KernelAutotuner* global =
      new KernelAutotuner(autotune_cache_path_from_env());
  return *global;
}

std::unique_ptr<MinPlusKernel> make_auto_kernel() {
  return std::make_unique<AutoKernel>();
}

}  // namespace qclique
