// Tests for Algorithm ComputePairs (Theorem 2): correctness against the
// brute-force census, quantum vs classical step 3, promise handling,
// abort injection, and constants-profile behavior.
#include "core/compute_pairs.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/triangles.hpp"

namespace qclique {
namespace {

std::vector<VertexPair> all_pairs(std::uint32_t n) {
  std::vector<VertexPair> s;
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) s.emplace_back(u, v);
  }
  return s;
}

class ComputePairsSizes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ComputePairsSizes, QuantumMatchesBruteForce) {
  const std::uint32_t n = GetParam();
  Rng rng(1000 + n);
  const auto g = random_weighted_graph(n, 0.5, -6, 10, rng);
  ComputePairsOptions opt;
  const auto res = compute_pairs(g, all_pairs(n), opt, rng);
  ASSERT_FALSE(res.aborted);
  EXPECT_EQ(res.hot_pairs, edges_in_negative_triangles(g));
  EXPECT_GT(res.rounds, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ComputePairsSizes,
                         ::testing::Values(4u, 8u, 16u, 25u, 36u, 49u, 64u, 81u));

TEST(ComputePairs, ClassicalMatchesBruteForce) {
  for (std::uint32_t n : {9u, 16u, 36u}) {
    Rng rng(2000 + n);
    const auto g = random_weighted_graph(n, 0.5, -6, 10, rng);
    ComputePairsOptions opt;
    opt.use_quantum = false;
    const auto res = compute_pairs(g, all_pairs(n), opt, rng);
    ASSERT_FALSE(res.aborted);
    EXPECT_EQ(res.hot_pairs, edges_in_negative_triangles(g));
  }
}

TEST(ComputePairs, RestrictedSOnlyReportsSPairs) {
  Rng rng(3);
  const std::uint32_t n = 30;
  const auto g = random_weighted_graph(n, 0.6, -8, 8, rng);
  const auto want_all = edges_in_negative_triangles(g);
  ASSERT_GE(want_all.size(), 4u);
  // S = half of the hot pairs plus some cold pairs.
  std::vector<VertexPair> s;
  for (std::size_t i = 0; i < want_all.size(); i += 2) s.push_back(want_all[i]);
  const std::size_t hot_in_s = s.size();
  s.emplace_back(0, 1);
  s.emplace_back(2, 5);
  std::sort(s.begin(), s.end());
  s.erase(std::unique(s.begin(), s.end()), s.end());
  ComputePairsOptions opt;
  const auto res = compute_pairs(g, s, opt, rng);
  ASSERT_FALSE(res.aborted);
  // Every reported pair is in S and truly hot.
  for (const auto& pr : res.hot_pairs) {
    EXPECT_TRUE(std::binary_search(s.begin(), s.end(), pr));
    EXPECT_GT(gamma(g, pr.a, pr.b), 0u);
  }
  EXPECT_GE(res.hot_pairs.size(), hot_in_s - 1);  // quantum may miss w.s.p.
}

TEST(ComputePairs, EmptySIsTrivial) {
  Rng rng(4);
  const auto g = random_weighted_graph(20, 0.5, -6, 6, rng);
  ComputePairsOptions opt;
  const auto res = compute_pairs(g, {}, opt, rng);
  ASSERT_FALSE(res.aborted);
  EXPECT_TRUE(res.hot_pairs.empty());
  EXPECT_EQ(res.searches_total, 0u);
}

TEST(ComputePairs, NoNegativeTrianglesMeansNoOutput) {
  Rng rng(5);
  const auto g = random_weighted_graph(36, 0.6, 1, 12, rng);
  ComputePairsOptions opt;
  const auto res = compute_pairs(g, all_pairs(36), opt, rng);
  ASSERT_FALSE(res.aborted);
  EXPECT_TRUE(res.hot_pairs.empty());
}

TEST(ComputePairs, ScaledConstantsStillExact) {
  // Shrunken constants activate real sampling; the covering property can
  // fail for a few pairs, but with 0.3 scaling it holds w.h.p.
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Rng rng(seed);
    const std::uint32_t n = 49;
    const auto g = random_weighted_graph(n, 0.5, -6, 10, rng);
    ComputePairsOptions opt;
    opt.constants = Constants::scaled(0.3);
    const auto res = compute_pairs(g, all_pairs(n), opt, rng);
    if (res.aborted) continue;  // legitimate tail event under scaling
    EXPECT_EQ(res.hot_pairs, edges_in_negative_triangles(g)) << "seed " << seed;
  }
}

TEST(ComputePairs, AbortInjectionViaBalanceThreshold) {
  Rng rng(6);
  const auto g = random_weighted_graph(25, 0.5, -5, 10, rng);
  ComputePairsOptions opt;
  opt.constants.balance_threshold = 1e-9;
  const auto res = compute_pairs(g, all_pairs(25), opt, rng);
  EXPECT_TRUE(res.aborted);
  EXPECT_TRUE(res.hot_pairs.empty());
}

TEST(ComputePairs, AbortInjectionViaIdentifyClass) {
  Rng rng(7);
  const auto g = random_weighted_graph(25, 0.6, -8, 5, rng);
  ComputePairsOptions opt;
  opt.constants.identify_abort = 1e-9;
  opt.constants.identify_sample = 1e9;
  const auto res = compute_pairs(g, all_pairs(25), opt, rng);
  EXPECT_TRUE(res.aborted);
}

TEST(ComputePairs, PromiseViolationDiagnosticCounts) {
  // A dense all-negative clique wildly violates Gamma <= 90 log n... only
  // for large n; at n = 32 the bound 90*5 exceeds n, so force it by
  // shrinking the promise constant.
  WeightedGraph g(32);
  for (std::uint32_t u = 0; u < 32; ++u) {
    for (std::uint32_t v = u + 1; v < 32; ++v) g.set_edge(u, v, -1);
  }
  Rng rng(8);
  ComputePairsOptions opt;
  opt.constants.promise = 0.5;  // 0.5 * log n << n - 2 closing vertices
  const auto res = compute_pairs(g, all_pairs(32), opt, rng);
  ASSERT_FALSE(res.aborted);
  EXPECT_GT(res.input_promise_violations, 0u);
  // The algorithm still finds everything (violations only threaten the
  // paper's round bound, not our soundness).
  EXPECT_EQ(res.hot_pairs.size(), all_pairs(32).size());
}

TEST(ComputePairs, QuantumChargesOracleCalls) {
  Rng rng(9);
  std::vector<VertexPair> planted;
  const auto g = planted_negative_triangles(27, 3, rng, &planted);
  ComputePairsOptions opt;
  const auto res = compute_pairs(g, all_pairs(27), opt, rng);
  ASSERT_FALSE(res.aborted);
  EXPECT_EQ(res.hot_pairs, planted);
  EXPECT_GT(res.ledger.total_oracle_calls(), 0u);
  EXPECT_GT(res.searches_found, 0u);
}

TEST(ComputePairs, LedgerHasStepPhases) {
  Rng rng(10);
  const auto g = random_weighted_graph(36, 0.6, -6, 8, rng);
  ComputePairsOptions opt;
  const auto res = compute_pairs(g, all_pairs(36), opt, rng);
  ASSERT_FALSE(res.aborted);
  EXPECT_GT(res.ledger.phase_rounds("step1/load"), 0u);
  EXPECT_GT(res.ledger.phase_rounds("step2/load"), 0u);
  EXPECT_GT(res.ledger.phase_rounds("identify/broadcast"), 0u);
}

TEST(ComputePairs, TypicalityAuditProducesData) {
  Rng rng(11);
  const auto g = random_weighted_graph(49, 0.6, -7, 8, rng);
  ComputePairsOptions opt;
  opt.audit_samples_per_stage = 4;
  const auto res = compute_pairs(g, all_pairs(49), opt, rng);
  ASSERT_FALSE(res.aborted);
  if (res.searches_total > 0) {
    EXPECT_GT(res.audit_tuples, 0u);
    // Theorem 3 regime: violations should be rare at paper thresholds.
    EXPECT_LE(static_cast<double>(res.audit_violations),
              0.05 * static_cast<double>(res.audit_tuples) + 1.0);
  }
}

TEST(ComputePairs, RejectsUnsortedS) {
  Rng rng(12);
  const auto g = random_weighted_graph(8, 0.5, -3, 3, rng);
  std::vector<VertexPair> s{VertexPair(2, 3), VertexPair(0, 1)};
  ComputePairsOptions opt;
  EXPECT_THROW(compute_pairs(g, s, opt, rng), SimulationError);
}

}  // namespace
}  // namespace qclique
