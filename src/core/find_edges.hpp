// FindEdges via Proposition 1: the randomized reduction from the general
// problem (no promise on Gamma) to O(log n) FindEdgesWithPromise calls.
//
// Algorithm B of the paper: starting from S = P(V), repeatedly run
// ComputePairs on an edge-sampled subgraph G' whose sampling rate doubles
// each iteration -- pairs with many negative triangles survive sampling and
// are removed from S early, so by the time the full graph is used, every
// remaining pair satisfies the Gamma <= promise * log n promise.
//
// Sampling detail: the analysis treats the pair {u, v} under test as always
// present and samples only the two w-legs (E[Gamma_G'] = Gamma_G * p^2).
// We therefore keep every S-pair's own edge and sample the rest, which
// preserves soundness exactly (G' is a subgraph of G, so any triangle found
// is real) and matches the intended expectation.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/round_ledger.hpp"
#include "core/compute_pairs.hpp"

namespace qclique {

/// Knobs for FindEdges.
struct FindEdgesOptions {
  ComputePairsOptions compute_pairs;
  /// Retries per abort (Lemma 2 / IdentifyClass tail events).
  std::uint32_t max_abort_retries = 5;
};

/// Result of FindEdges.
struct FindEdgesResult {
  std::vector<VertexPair> hot_pairs;  // sorted, unique
  std::uint64_t rounds = 0;
  RoundLedger ledger;
  std::uint64_t compute_pairs_calls = 0;
  std::uint64_t loop_iterations = 0;
  std::uint64_t aborts_retried = 0;
};

/// Solves FindEdges on g: every pair of P(V) involved in a negative
/// triangle (Proposition 1 reduction over ComputePairs).
FindEdgesResult find_edges(const WeightedGraph& g, const FindEdgesOptions& options,
                           Rng& rng);

}  // namespace qclique
