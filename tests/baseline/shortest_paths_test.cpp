// Tests for the centralized shortest-path oracles, cross-validating them
// against each other and against min-plus squaring.
#include "baseline/shortest_paths.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "matrix/min_plus.hpp"

namespace qclique {
namespace {

Digraph line_graph(std::uint32_t n, std::int64_t w) {
  Digraph g(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) g.set_arc(i, i + 1, w);
  return g;
}

TEST(FloydWarshall, LineGraphDistances) {
  const auto g = line_graph(5, 2);
  const auto d = floyd_warshall(g);
  ASSERT_TRUE(d.has_value());
  for (std::uint32_t i = 0; i < 5; ++i) {
    for (std::uint32_t j = 0; j < 5; ++j) {
      if (j >= i) {
        EXPECT_EQ(d->at(i, j), 2 * (j - i));
      } else {
        EXPECT_TRUE(is_plus_inf(d->at(i, j)));
      }
    }
  }
}

TEST(FloydWarshall, NegativeEdgesNoCycle) {
  Digraph g(3);
  g.set_arc(0, 1, 5);
  g.set_arc(1, 2, -3);
  g.set_arc(0, 2, 4);
  const auto d = floyd_warshall(g);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->at(0, 2), 2);
}

TEST(FloydWarshall, DetectsNegativeCycle) {
  Digraph g(3);
  g.set_arc(0, 1, 1);
  g.set_arc(1, 0, -2);
  EXPECT_FALSE(floyd_warshall(g).has_value());
}

TEST(BellmanFord, MatchesFloydWarshallRow) {
  Rng rng(1);
  for (int trial = 0; trial < 8; ++trial) {
    const auto g = random_digraph(14, 0.4, -5, 10, rng);
    const auto fw = floyd_warshall(g);
    ASSERT_TRUE(fw.has_value());
    for (std::uint32_t s = 0; s < 14; s += 5) {
      const auto bf = bellman_ford(g, s);
      ASSERT_TRUE(bf.has_value());
      for (std::uint32_t t = 0; t < 14; ++t) EXPECT_EQ((*bf)[t], fw->at(s, t));
    }
  }
}

TEST(BellmanFord, DetectsReachableNegativeCycle) {
  Digraph g(4);
  g.set_arc(0, 1, 1);
  g.set_arc(1, 2, -5);
  g.set_arc(2, 1, 2);
  EXPECT_FALSE(bellman_ford(g, 0).has_value());
  // Unreachable negative cycle is fine for source 3.
  EXPECT_TRUE(bellman_ford(g, 3).has_value());
}

TEST(Dijkstra, RejectsNegativeWeights) {
  Digraph g(3);
  g.set_arc(0, 1, -1);
  EXPECT_THROW(dijkstra(g, 0), SimulationError);
}

TEST(Dijkstra, MatchesBellmanFordOnNonNegative) {
  Rng rng(2);
  for (int trial = 0; trial < 8; ++trial) {
    const auto g = random_digraph(16, 0.4, 0, 12, rng, false);
    for (std::uint32_t s = 0; s < 16; s += 7) {
      const auto dj = dijkstra(g, s);
      const auto bf = bellman_ford(g, s);
      ASSERT_TRUE(bf.has_value());
      EXPECT_EQ(dj, *bf);
    }
  }
}

TEST(Johnson, MatchesFloydWarshall) {
  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    const auto g = random_digraph(15, 0.35, -6, 12, rng);
    const auto fw = floyd_warshall(g);
    const auto jo = johnson(g);
    ASSERT_TRUE(fw.has_value());
    ASSERT_TRUE(jo.has_value());
    EXPECT_EQ(*fw, *jo) << fw->first_difference(*jo);
  }
}

TEST(Johnson, DetectsNegativeCycle) {
  Digraph g(3);
  g.set_arc(0, 1, -1);
  g.set_arc(1, 2, -1);
  g.set_arc(2, 0, -1);
  EXPECT_FALSE(johnson(g).has_value());
}

TEST(Oracles, AgreeWithMinPlusSquaring) {
  Rng rng(4);
  const auto g = random_digraph(12, 0.5, -4, 9, rng);
  const auto fw = floyd_warshall(g);
  ASSERT_TRUE(fw.has_value());
  EXPECT_EQ(*fw, apsp_by_squaring(g.to_dist_matrix()));
}

TEST(ReconstructPath, RecoversValidShortestPath) {
  Rng rng(5);
  for (int trial = 0; trial < 6; ++trial) {
    const auto g = random_digraph(12, 0.5, 1, 9, rng, false);
    const auto d = floyd_warshall(g);
    ASSERT_TRUE(d.has_value());
    for (std::uint32_t u = 0; u < 12; u += 3) {
      for (std::uint32_t v = 0; v < 12; v += 4) {
        const auto path = reconstruct_path(g, *d, u, v);
        if (u == v) {
          ASSERT_EQ(path.size(), 1u);
          continue;
        }
        if (is_plus_inf(d->at(u, v))) {
          EXPECT_TRUE(path.empty());
          continue;
        }
        ASSERT_GE(path.size(), 2u);
        EXPECT_EQ(path.front(), u);
        EXPECT_EQ(path.back(), v);
        std::int64_t total = 0;
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
          ASSERT_TRUE(g.has_arc(path[i], path[i + 1]));
          total += g.weight(path[i], path[i + 1]);
        }
        EXPECT_EQ(total, d->at(u, v));
      }
    }
  }
}

}  // namespace
}  // namespace qclique
