// Experiment E9 (Lemma 1): routing-layer validation.
//
// Compares the Lemma 1 charge (2 rounds per <= n-per-source/dest batch)
// with the measured cost of the stepped randomized two-phase scheme under
// benign and adversarial load patterns, plus the throughput of the direct
// link-level simulator.
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "congest/lenzen.hpp"
#include "congest/network.hpp"

int main() {
  using namespace qclique;
  std::cout << "E9: Lemma 1 routing -- charged vs measured rounds\n";

  Rng rng(11);
  Table table({"pattern", "n", "messages", "max src", "max dst", "charged",
               "two-phase measured"});

  const auto run = [&](const std::string& name, std::uint32_t n,
                       const std::vector<Message>& batch) {
    CliqueNetwork charged_net(n), stepped_net(n);
    const auto charged = route(charged_net, batch, "r");
    Rng r2 = rng.split();
    const auto measured = route_two_phase(stepped_net, batch, r2, "r");
    table.add_row({name, Table::fmt(static_cast<std::uint64_t>(n)),
                   Table::fmt(charged.messages), Table::fmt(charged.max_source_load),
                   Table::fmt(charged.max_dest_load), Table::fmt(charged.rounds),
                   Table::fmt(measured.rounds)});
  };

  for (const std::uint32_t n : {32u, 64u, 128u}) {
    // Permutation: 1 message per node.
    std::vector<Message> perm;
    for (NodeId v = 0; v < n; ++v) {
      perm.push_back(Message{v, static_cast<NodeId>((v * 7 + 3) % n),
                             Payload::make(0, {v})});
    }
    run("permutation", n, perm);

    // Full load: every node sends n-1 messages to random destinations.
    std::vector<Message> full;
    for (NodeId v = 0; v < n; ++v) {
      for (std::uint32_t j = 0; j + 1 < n; ++j) {
        full.push_back(Message{v, static_cast<NodeId>(rng.uniform_u64(n)),
                               Payload::make(0, {v})});
      }
    }
    run("random full", n, full);

    // Adversarial: everyone floods one destination (dest load = n - 1).
    std::vector<Message> hot;
    for (NodeId v = 1; v < n; ++v) hot.push_back(Message{v, 0, Payload::make(0, {v})});
    run("single sink", n, hot);

    // Overload: destination load 4n (4 Lemma-1 batches -> 8 charged rounds).
    std::vector<Message> over;
    for (int rep = 0; rep < 4; ++rep) {
      for (NodeId v = 0; v < n; ++v) {
        over.push_back(Message{v, static_cast<NodeId>(v % 2), Payload::make(0, {v})});
      }
    }
    run("2-sink x4", n, over);
  }
  table.print("Routing: Lemma 1 charge vs stepped two-phase measurement");
  std::cout << "\nReading: the charge is 2*ceil(L/n); the naive stepped scheme\n"
               "pays a small balls-into-bins factor over it (the deterministic\n"
               "Lenzen schedule would close that gap to exactly 2).\n";
  return 0;
}
