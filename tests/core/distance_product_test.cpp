// Tests for the Proposition 2 reduction: distance product via negative-
// triangle detection, validated against the naive product.
#include "core/distance_product.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "matrix/min_plus.hpp"

namespace qclique {
namespace {

DistMatrix random_matrix(std::uint32_t n, std::int64_t lo, std::int64_t hi,
                         double inf_prob, Rng& rng) {
  DistMatrix m(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      if (!rng.bernoulli(inf_prob)) m.set(i, j, rng.uniform_i64(lo, hi));
    }
  }
  return m;
}

class TriangleProductSizes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TriangleProductSizes, MatchesNaiveProduct) {
  const std::uint32_t n = GetParam();
  Rng rng(4000 + n);
  const auto a = random_matrix(n, -7, 7, 0.2, rng);
  const auto b = random_matrix(n, -7, 7, 0.2, rng);
  DistanceProductOptions opt;
  const auto res = distance_product_via_triangles(a, b, opt, rng);
  const auto want = distance_product_naive(a, b);
  EXPECT_EQ(res.product, want) << res.product.first_difference(want);
  EXPECT_GT(res.find_edges_calls, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TriangleProductSizes,
                         ::testing::Values(2u, 3u, 5u, 8u, 12u));

TEST(TriangleProduct, HandlesInfEntries) {
  Rng rng(1);
  const auto a = random_matrix(6, -4, 4, 0.5, rng);
  const auto b = random_matrix(6, -4, 4, 0.5, rng);
  DistanceProductOptions opt;
  const auto res = distance_product_via_triangles(a, b, opt, rng);
  EXPECT_EQ(res.product, distance_product_naive(a, b));
}

TEST(TriangleProduct, AllInfProducesAllInf) {
  Rng rng(2);
  DistMatrix a(4), b(4);
  DistanceProductOptions opt;
  const auto res = distance_product_via_triangles(a, b, opt, rng);
  EXPECT_EQ(res.product, DistMatrix(4));
}

TEST(TriangleProduct, ExtremeEntriesAtRangeBoundary) {
  // Entries pinned at +-M stress the binary-search bracket endpoints.
  DistMatrix a(3), b(3);
  const std::int64_t M = 5;
  for (std::uint32_t i = 0; i < 3; ++i) {
    for (std::uint32_t j = 0; j < 3; ++j) {
      a.set(i, j, (i + j) % 2 == 0 ? M : -M);
      b.set(i, j, (i * j) % 2 == 0 ? -M : M);
    }
  }
  Rng rng(3);
  DistanceProductOptions opt;
  const auto res = distance_product_via_triangles(a, b, opt, rng);
  EXPECT_EQ(res.product, distance_product_naive(a, b));
}

TEST(TriangleProduct, FindEdgesCallsScaleWithLogM) {
  Rng rng(4);
  std::uint64_t calls_small = 0, calls_large = 0;
  {
    const auto a = random_matrix(4, -2, 2, 0.0, rng);
    const auto b = random_matrix(4, -2, 2, 0.0, rng);
    DistanceProductOptions opt;
    calls_small = distance_product_via_triangles(a, b, opt, rng).find_edges_calls;
  }
  {
    const auto a = random_matrix(4, -2000, 2000, 0.0, rng);
    const auto b = random_matrix(4, -2000, 2000, 0.0, rng);
    DistanceProductOptions opt;
    calls_large = distance_product_via_triangles(a, b, opt, rng).find_edges_calls;
  }
  // log2(8*2000+) ~ 14 vs log2(8*2+) ~ 5.
  EXPECT_GT(calls_large, calls_small);
  EXPECT_LE(calls_large, 16u);
}

TEST(TriangleProduct, RejectsMinusInf) {
  DistMatrix a(2, 0), b(2, 0);
  a.set(0, 1, kMinusInf);
  Rng rng(5);
  DistanceProductOptions opt;
  EXPECT_THROW(distance_product_via_triangles(a, b, opt, rng), SimulationError);
}

TEST(TriangleProduct, IdentityNeutral) {
  Rng rng(6);
  const auto a = random_matrix(5, -6, 6, 0.2, rng);
  DistanceProductOptions opt;
  const auto res =
      distance_product_via_triangles(a, DistMatrix::identity(5), opt, rng);
  EXPECT_EQ(res.product, a) << res.product.first_difference(a);
}

}  // namespace
}  // namespace qclique
