#include "quantum/grover.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qclique {

std::uint64_t grover_optimal_iterations(std::size_t dim, std::size_t solutions) {
  QCLIQUE_CHECK(solutions >= 1 && solutions <= dim, "solution count out of range");
  if (2 * solutions >= dim) return 0;
  const double theta =
      std::asin(std::sqrt(static_cast<double>(solutions) / static_cast<double>(dim)));
  return static_cast<std::uint64_t>(std::floor(M_PI / (4.0 * theta)));
}

double grover_success_probability(std::size_t dim, std::size_t solutions,
                                  std::uint64_t k) {
  QCLIQUE_CHECK(solutions <= dim, "solution count out of range");
  if (solutions == 0) return 0.0;
  const double theta =
      std::asin(std::sqrt(static_cast<double>(solutions) / static_cast<double>(dim)));
  const double s = std::sin((2.0 * static_cast<double>(k) + 1.0) * theta);
  return s * s;
}

GroverResult search_known_count(std::size_t dim, std::size_t solutions,
                                const Oracle& oracle, Rng& rng) {
  QCLIQUE_CHECK(solutions >= 1, "search_known_count requires a solution");
  GroverResult res;
  const std::uint64_t k = grover_optimal_iterations(dim, solutions);
  // The evolved state is deterministic, so simulate the circuit once and
  // reuse it -- but each measurement attempt physically re-prepares and
  // re-runs the circuit, so every attempt is charged k iterations.
  StateVector psi = StateVector::uniform(dim);
  for (std::uint64_t i = 0; i < k; ++i) psi.apply_grover_iteration(oracle);
  for (int attempt = 0; attempt < 3; ++attempt) {
    res.iterations += k;
    res.oracle_calls += k;
    const std::size_t x = psi.measure(rng);
    ++res.measurements;
    ++res.oracle_calls;  // classical verification of the measured element
    if (oracle(x)) {
      res.found = x;
      return res;
    }
  }
  return res;
}

GroverResult search_bbht(std::size_t dim, const Oracle& oracle, Rng& rng,
                         double cutoff_factor) {
  GroverResult res;
  const double sqrt_dim = std::sqrt(static_cast<double>(dim));
  const std::uint64_t budget =
      static_cast<std::uint64_t>(std::ceil(cutoff_factor * sqrt_dim)) + 3;
  double m = 1.0;
  const double lambda = 6.0 / 5.0;
  while (res.iterations < budget) {
    const std::uint64_t j = rng.uniform_u64(static_cast<std::uint64_t>(m) + 1);
    StateVector psi = StateVector::uniform(dim);
    for (std::uint64_t t = 0; t < j; ++t) psi.apply_grover_iteration(oracle);
    res.iterations += j;
    res.oracle_calls += j;
    const std::size_t x = psi.measure(rng);
    ++res.measurements;
    ++res.oracle_calls;  // classical verification of the measured element
    if (oracle(x)) {
      res.found = x;
      return res;
    }
    m = std::min(lambda * m, sqrt_dim);
  }
  return res;  // concluded: no solution (w.h.p.)
}

}  // namespace qclique
