// Persistent work-stealing task pool shared by every parallel surface in
// the library (min-plus kernel row bands, ThreadExecutor batch fan-out,
// the autotuner sweep, incremental dynamic-graph repair).
//
// Before this pool each of those sites built its own std::vector
// of std::thread per call, paying spawn + join on every product() --
// dominant at small shapes where the work per band is microseconds. The
// pool starts its workers once (lazily, on the first parallel region),
// parks them on a condition variable between regions, and hands out work
// through parallel_for().
//
// Determinism contract (docs/PERFORMANCE.md): parallel_for splits
// [begin, end) into chunks of exactly `grain` indices (last chunk
// ragged). Chunk boundaries depend only on (begin, end, grain) -- never
// on the worker count, the pool size, or scheduling -- so a body that
// writes disjoint state per index produces bit-identical results whether
// the region ran on 1 thread or 64. Within a region, chunks are dealt to
// participants in contiguous static shares for locality; a participant
// that drains its own share steals whole chunks from the other shares
// (atomic claim), so skewed chunks rebalance without affecting *what*
// any chunk computes.
//
// The calling thread always participates (slot 0) and the call blocks
// until every chunk has run, so completion never depends on pool
// workers being awake. parallel_for degrades to a plain sequential loop
// on the caller whenever parallel execution is impossible or unsafe:
// a single chunk, an effective width of one, a nested call from inside
// a pool worker, a second concurrent region on the same pool (the
// region lock is try_lock), or a call from a forked child process whose
// inherited pool threads did not survive fork (ProcessExecutor workers).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace qclique {

/// Env var naming the process-wide default worker count. 0 / unset /
/// unparsable fall back to std::thread::hardware_concurrency().
inline constexpr const char* kTaskPoolThreadsEnv = "QCLIQUE_THREADS";

/// Resolve a requested thread count: `requested` if nonzero, else
/// QCLIQUE_THREADS if set to a positive integer, else
/// hardware_concurrency() (at least 1).
unsigned resolve_task_pool_threads(unsigned requested = 0);

class TaskPool {
 public:
  /// A chunk body: runs indices [chunk_begin, chunk_end). `slot` is the
  /// executing participant's id in [0, threads()); two chunks running
  /// concurrently always see distinct slots, so slot-indexed scratch
  /// needs no further synchronization. The body must not throw.
  using ChunkFn =
      std::function<void(std::size_t chunk_begin, std::size_t chunk_end,
                         unsigned slot)>;

  /// threads == 0 resolves via resolve_task_pool_threads(). Workers are
  /// not spawned until the first parallel region needs them.
  explicit TaskPool(unsigned threads = 0);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Maximum participants of any region on this pool (caller + persistent
  /// workers). Also the exclusive upper bound on slot ids passed to
  /// chunk bodies -- size per-slot scratch with this.
  unsigned threads() const { return threads_; }

  /// True once worker threads have actually been spawned.
  bool started() const { return started_.load(std::memory_order_acquire); }

  /// Run fn over [begin, end) in chunks of `grain` (>= 1; 0 is treated
  /// as 1). Blocks until all chunks completed. `max_workers` caps the
  /// participants for this region (0 = threads()); capping changes only
  /// concurrency, never chunk boundaries.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const ChunkFn& fn, unsigned max_workers = 0);

  /// Process-wide shared pool, sized from QCLIQUE_THREADS /
  /// hardware_concurrency on first use. Callers that have an
  /// ExecutionContext should prefer its task_pool().
  static TaskPool& instance();

 private:
  // One participant's contiguous share of the region's chunk ids.
  // `next` is claimed from by the owner and by stealers alike.
  struct Share {
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
  };

  void start_workers();
  void worker_loop(unsigned slot);
  // Claim-and-run loop for one participant: own share first, then steal.
  void participate(unsigned slot);
  std::size_t claim(unsigned share);
  void run_chunk(std::size_t chunk, unsigned slot);

  const unsigned threads_;  // participants: caller slot 0 + threads_-1 workers
  std::atomic<bool> started_{false};
  long long owner_pid_ = -1;  // pid that spawned the workers (fork detection)

  std::vector<std::thread> workers_;

  // region_mu_ serializes whole regions (one at a time per pool); all
  // region fields below are written under mu_ during setup so sleeping
  // workers always observe a consistent (epoch_, region) pair when they
  // wake under the same mutex.
  std::mutex region_mu_;
  std::mutex mu_;
  std::condition_variable cv_;       // workers park here between regions
  std::condition_variable done_cv_;  // caller waits here for region end
  std::uint64_t epoch_ = 0;          // bumped per region, under mu_
  bool stop_ = false;
  unsigned active_ = 0;  // workers currently inside participate(), under mu_

  const ChunkFn* fn_ = nullptr;
  std::size_t begin_ = 0;
  std::size_t end_ = 0;
  std::size_t grain_ = 1;
  std::size_t chunk_count_ = 0;
  unsigned slots_ = 0;       // participants in the current region
  unsigned share_cap_ = 0;   // allocated length of shares_
  std::unique_ptr<Share[]> shares_;
  std::atomic<std::size_t> completed_{0};
};

}  // namespace qclique
