#include "serve/snapshot_store.hpp"

#include <utility>

#include "common/error.hpp"

namespace qclique {

std::shared_ptr<const ApspSnapshot> SnapshotStore::publish(
    ApspSnapshot snapshot) {
  return publish(std::make_shared<ApspSnapshot>(std::move(snapshot)));
}

std::shared_ptr<const ApspSnapshot> SnapshotStore::publish(
    std::shared_ptr<ApspSnapshot> snapshot) {
  QCLIQUE_CHECK(snapshot != nullptr, "cannot publish a null snapshot");
  // Stamp before the swap: once the pointer is visible the snapshot is
  // const, and readers key caches by the version they see here.
  snapshot->meta_.version =
      version_.fetch_add(1, std::memory_order_acq_rel) + 1;
  std::shared_ptr<const ApspSnapshot> frozen = std::move(snapshot);
  // Install only if newer: two racing publishers draw ordered versions, and
  // the CAS keeps the visible snapshot monotone even when the later draw
  // lands its swap first.
  std::shared_ptr<const ApspSnapshot> expected =
      current_.load(std::memory_order_acquire);
  while (expected == nullptr || expected->version() < frozen->version()) {
    if (current_.compare_exchange_weak(expected, frozen,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      break;
    }
  }
  return frozen;
}

}  // namespace qclique
