// Message representation for the CONGEST-CLIQUE simulator.
//
// In the CONGEST-CLIQUE model each ordered pair of nodes can exchange one
// message of O(log n) bits per synchronous round. We model an O(log n)-bit
// message as a fixed small number of *fields*, where one field holds one
// logical value of O(log n + log W) bits (a vertex identifier, a weight, a
// counter). This keeps round accounting proportional to the true bit
// complexity for polynomially-bounded weights without simulating individual
// bits. The per-message field budget is configurable (see NetworkConfig);
// sends that exceed it throw BandwidthError.
#pragma once

#include <array>
#include <cstdint>

#include "common/error.hpp"

namespace qclique {

/// Index of a simulated network node, in [0, n).
using NodeId = std::uint32_t;

/// Hard upper bound on fields a single Payload can carry; the configured
/// per-round budget (NetworkConfig::fields_per_message) must be <= this.
inline constexpr std::size_t kMaxPayloadFields = 6;

/// A small fixed-capacity record transported by one message.
/// `tag` multiplexes protocol phases sharing a network.
struct Payload {
  std::uint32_t tag = 0;
  std::uint8_t size = 0;
  std::array<std::int64_t, kMaxPayloadFields> fields{};

  /// Appends one field; throws if capacity exhausted.
  void push(std::int64_t v) {
    QCLIQUE_CHECK(size < kMaxPayloadFields, "Payload field capacity exceeded");
    fields[size++] = v;
  }

  std::int64_t at(std::size_t i) const {
    QCLIQUE_CHECK(i < size, "Payload field index out of range");
    return fields[i];
  }

  static Payload make(std::uint32_t tag, std::initializer_list<std::int64_t> fs) {
    Payload p;
    p.tag = tag;
    for (auto f : fs) p.push(f);
    return p;
  }
};

/// A message in flight: source, destination, payload.
struct Message {
  NodeId src = 0;
  NodeId dst = 0;
  Payload payload;
};

}  // namespace qclique
