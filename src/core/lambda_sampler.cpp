#include "core/lambda_sampler.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/rng.hpp"

namespace qclique {

double lambda_sample_probability(std::uint32_t n, const Constants& constants) {
  const double p = constants.lambda_sample * paper_log(n) /
                   std::max(1.0, std::sqrt(static_cast<double>(n)));
  return std::min(1.0, p);
}

double lambda_balance_threshold(std::uint32_t n, const Constants& constants) {
  return constants.balance_threshold *
         static_cast<double>(iroot4_ceil(n)) * paper_log(n);
}

LambdaFamily sample_lambda_family(const Partitions& parts, std::uint32_t ub,
                                  std::uint32_t vb, const Constants& constants,
                                  Rng& rng) {
  const std::uint32_t n = parts.n();
  const double p = lambda_sample_probability(n, constants);
  const double threshold = lambda_balance_threshold(n, constants);
  const auto all_pairs = parts.block_pairs(ub, vb);
  const std::uint32_t num_x = parts.num_wblocks();

  LambdaFamily fam;
  fam.sets.resize(num_x);
  std::set<std::pair<std::uint32_t, std::uint32_t>> covered;
  for (std::uint32_t x = 0; x < num_x; ++x) {
    auto& set = fam.sets[x];
    std::map<std::uint32_t, std::uint64_t> row_load;
    for (const auto& pr : all_pairs) {
      if (!rng.bernoulli(p)) continue;
      set.push_back(pr);
      covered.insert(pr);
      const std::uint64_t load = ++row_load[pr.first];
      fam.max_row_load = std::max(fam.max_row_load, load);
    }
    for (const auto& [u, load] : row_load) {
      if (static_cast<double>(load) > threshold) fam.well_balanced = false;
    }
  }
  fam.covers = covered.size() == all_pairs.size();
  return fam;
}

}  // namespace qclique
