// Experiment E12: google-benchmark microbenchmarks of the substrates.
//
// These are simulator-performance numbers (wall-clock), not round counts:
// they document how expensive the instruments themselves are, which bounds
// the instance sizes the other benches can sweep.
#include <benchmark/benchmark.h>

#include "baseline/shortest_paths.hpp"
#include "common/rng.hpp"
#include "congest/lenzen.hpp"
#include "graph/generators.hpp"
#include "matrix/min_plus.hpp"
#include "quantum/statevector.hpp"
#include "congest/network.hpp"

namespace {

using namespace qclique;

void BM_StateVectorGroverIteration(benchmark::State& state) {
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  StateVector psi = StateVector::uniform(dim);
  const auto oracle = [dim](std::size_t i) { return i == dim / 2; };
  for (auto _ : state) {
    psi.apply_grover_iteration(oracle);
    benchmark::DoNotOptimize(psi.amp(0));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_StateVectorGroverIteration)->Arg(256)->Arg(4096)->Arg(65536);

void BM_MinPlusProduct(benchmark::State& state) {
  const std::uint32_t n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(1);
  DistMatrix a(n), b(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      a.set(i, j, rng.uniform_i64(-100, 100));
      b.set(i, j, rng.uniform_i64(-100, 100));
    }
  }
  for (auto _ : state) {
    auto c = distance_product_naive(a, b);
    benchmark::DoNotOptimize(c.at(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) * n * n);
}
BENCHMARK(BM_MinPlusProduct)->Arg(32)->Arg(64)->Arg(128);

void BM_NetworkPermutationRound(benchmark::State& state) {
  const std::uint32_t n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    CliqueNetwork net(n);
    for (NodeId v = 0; v < n; ++v) {
      net.send(v, static_cast<NodeId>((v + 1) % n), Payload::make(0, {v}));
    }
    net.run_until_drained("p");
    benchmark::DoNotOptimize(net.inbox(0).size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NetworkPermutationRound)->Arg(64)->Arg(256)->Arg(1024);

void BM_LenzenRouteFullLoad(benchmark::State& state) {
  const std::uint32_t n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(2);
  std::vector<Message> batch;
  for (NodeId u = 0; u < n; ++u) {
    for (std::uint32_t j = 0; j + 1 < n; ++j) {
      batch.push_back(
          Message{u, static_cast<NodeId>(rng.uniform_u64(n)), Payload::make(0, {u})});
    }
  }
  for (auto _ : state) {
    CliqueNetwork net(n);
    const auto st = route(net, batch, "r");
    benchmark::DoNotOptimize(st.rounds);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_LenzenRouteFullLoad)->Arg(64)->Arg(128);

void BM_FloydWarshall(benchmark::State& state) {
  const std::uint32_t n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(3);
  const auto g = random_digraph(n, 0.4, -5, 10, rng);
  for (auto _ : state) {
    auto d = floyd_warshall(g);
    benchmark::DoNotOptimize(d->at(0, 0));
  }
}
BENCHMARK(BM_FloydWarshall)->Arg(64)->Arg(128)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
