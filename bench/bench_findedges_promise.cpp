// Experiment E2 (Theorem 2): FindEdgesWithPromise round complexity vs n,
// quantum vs the classical step-3 scan.
//
// Regime note. The paper's sampling rate p = 10 log n / sqrt(n) only drops
// below 1 for n ~ 10^4+, far beyond message-level simulation; at smaller n
// the cap p = 1 puts m ~ n^{3/2} pairs on every node and the evaluation
// cost r inherits an extra sqrt(n) factor that buries the search shape.
// This bench therefore sweeps *two* profiles:
//   * paper constants (saturated regime, exact output), and
//   * a "paper-shape" profile p = 6 / sqrt(n), which reproduces the
//     m = Theta~(n) load the paper analyzes. Coverage is then only
//     probabilistic (P[pair missed] = (1-p)^{sqrt n} ~ e^{-6}), so the
//     recall column reports it -- the *rounds* columns are the deliverable.
// The headline shape: quantum oracle calls ~ n^{1/4} vs classical domain
// scans ~ n^{1/2}, with identical per-call cost r.
#include <algorithm>
#include <iostream>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/compute_pairs.hpp"
#include "graph/families.hpp"
#include "graph/triangles.hpp"

namespace {

using namespace qclique;

std::uint64_t search_rounds(const RoundLedger& ledger) {
  std::uint64_t total = 0;
  for (const auto& [name, stats] : ledger.phases()) {
    if (name.starts_with("search/")) total += stats.rounds;
  }
  return total;
}

/// The paper-shape profile: p = 6 / sqrt(n) (see header note).
Constants shape_profile(std::uint32_t n) {
  Constants cst = Constants::paper();
  cst.lambda_sample = 6.0 / paper_log(n);
  return cst;
}

void run_sweep(const std::string& title, const std::vector<std::uint32_t>& sizes,
               bool paper_profile) {
  Table table({"n", "q search rounds", "q oracle calls", "c search rounds",
               "c evals", "recall"});
  std::vector<double> ns, qr, cr, qc, cc;
  for (const std::uint32_t n : sizes) {
    Rng rng(7000 + n);
    const auto g = make_family_weighted("gnp", family_config(n, 0.4, -6, 10), rng);
    std::vector<VertexPair> s;
    for (std::uint32_t u = 0; u < n; ++u) {
      for (std::uint32_t v = u + 1; v < n; ++v) s.emplace_back(u, v);
    }
    const auto truth = edges_in_negative_triangles(g);

    ComputePairsOptions qopt;
    if (!paper_profile) qopt.constants = shape_profile(n);
    Rng r1 = rng.split();
    const auto q = compute_pairs(g, s, qopt, r1);
    ComputePairsOptions copt = qopt;
    copt.use_quantum = false;
    Rng r2 = rng.split();
    const auto c = compute_pairs(g, s, copt, r2);

    const std::uint64_t qs = std::max<std::uint64_t>(1, search_rounds(q.ledger));
    const std::uint64_t cs = std::max<std::uint64_t>(1, search_rounds(c.ledger));
    std::size_t recalled = 0;
    for (const auto& pr : q.hot_pairs) {
      recalled += std::binary_search(truth.begin(), truth.end(), pr);
    }
    const double recall =
        truth.empty() ? 1.0 : static_cast<double>(recalled) / truth.size();
    table.add_row({Table::fmt(static_cast<std::uint64_t>(n)), Table::fmt(qs),
                   Table::fmt(q.ledger.total_oracle_calls()), Table::fmt(cs),
                   Table::fmt(c.ledger.total_oracle_calls()),
                   Table::fmt(100.0 * recall, 1) + "%"});
    ns.push_back(n);
    qr.push_back(static_cast<double>(qs));
    cr.push_back(static_cast<double>(cs));
    qc.push_back(static_cast<double>(std::max<std::uint64_t>(
        1, q.ledger.total_oracle_calls())));
    cc.push_back(static_cast<double>(std::max<std::uint64_t>(
        1, c.ledger.total_oracle_calls())));
  }
  table.print(title);
  const auto qfit = fit_power_law(ns, qr);
  const auto cfit = fit_power_law(ns, cr);
  const auto qcf = fit_power_law(ns, qc);
  const auto ccf = fit_power_law(ns, cc);
  std::cout << "  search rounds:  quantum ~ n^" << Table::fmt(qfit.slope, 2)
            << ", classical ~ n^" << Table::fmt(cfit.slope, 2)
            << "  (separation " << Table::fmt(cfit.slope - qfit.slope, 2)
            << ", paper: 0.25)\n"
            << "  oracle calls:   quantum ~ n^" << Table::fmt(qcf.slope, 2)
            << " (paper: 0.25), classical ~ n^" << Table::fmt(ccf.slope, 2)
            << " (paper: 0.5)\n";
}

}  // namespace

int main() {
  std::cout << "E2: FindEdgesWithPromise scaling (Theorem 2: O~(n^{1/4}))\n";
  run_sweep("Paper constants (saturated sampling: exact, but m ~ n^{3/2})",
            {16u, 36u, 64u, 100u, 144u, 196u, 256u}, true);
  std::cout << "\n";
  run_sweep("Paper-shape profile p = 6/sqrt(n) (the m = Theta~(n) regime)",
            {64u, 100u, 144u, 196u, 256u, 324u, 400u}, false);
  std::cout << "\nReading: in the paper-shape regime the quantum oracle-call\n"
               "exponent sits near 1/4 and the classical near 1/2 -- Theorem 2's\n"
               "separation. Absolute quantum rounds carry the BBHT budget\n"
               "constant (~18x per call), so the raw-rounds crossover lies near\n"
               "n ~ 10^5, outside message-level simulation; the exponents are\n"
               "the reproducible shape.\n";
  return 0;
}
