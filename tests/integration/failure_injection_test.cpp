// Failure-injection and adversarial-input tests across module boundaries.
#include <gtest/gtest.h>

#include "baseline/tri_tri_again.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/compute_pairs.hpp"
#include "core/distance_product.hpp"
#include "core/find_edges.hpp"
#include "graph/generators.hpp"
#include "graph/triangles.hpp"
#include "matrix/min_plus.hpp"

namespace qclique {
namespace {

TEST(FailureInjection, TinyEvalLoadCountsViolationsButStaysSound) {
  // Forcing the Figures 4-5 list promise to zero floods the violation
  // counter; the simulation still answers correctly (the counter is the
  // instrument that would expose a congestion-unsound implementation).
  Rng rng(1);
  const auto g = random_weighted_graph(30, 0.6, -7, 8, rng);
  std::vector<VertexPair> s;
  for (std::uint32_t u = 0; u < 30; ++u) {
    for (std::uint32_t v = u + 1; v < 30; ++v) s.emplace_back(u, v);
  }
  ComputePairsOptions opt;
  opt.constants.eval_load = 1e-9;
  const auto res = compute_pairs(g, s, opt, rng);
  ASSERT_FALSE(res.aborted);
  EXPECT_GT(res.eval_promise_violations, 0u);
  EXPECT_EQ(res.hot_pairs, edges_in_negative_triangles(g));
}

TEST(FailureInjection, GadgetGraphsFlowThroughEverySolver) {
  // The Prop 2 gadget is itself a FindEdges instance; all three solvers
  // must agree on it (cross-module adversarial input: tripartite, negative
  // D-edges, duplicated weights).
  Rng rng(2);
  const std::uint32_t n = 7;
  DistMatrix a(n), b(n), d(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      a.set(i, j, rng.uniform_i64(-5, 5));
      b.set(i, j, rng.uniform_i64(-5, 5));
      d.set(i, j, rng.uniform_i64(-8, 8));
    }
  }
  const auto gadget = tripartite_gadget(a, b, d);
  const auto truth = edges_in_negative_triangles(gadget);
  FindEdgesOptions qopt;
  Rng r1 = rng.split();
  EXPECT_EQ(find_edges(gadget, qopt, r1).hot_pairs, truth);
  EXPECT_EQ(tri_tri_again_find_edges(gadget).hot_pairs, truth);
}

TEST(FailureInjection, ZeroWeightEdgesEverywhere) {
  // All-zero weights: no negative triangle anywhere (sum 0 is not < 0);
  // boundary case for every comparison in the pipeline.
  WeightedGraph g(18);
  for (std::uint32_t u = 0; u < 18; ++u) {
    for (std::uint32_t v = u + 1; v < 18; ++v) g.set_edge(u, v, 0);
  }
  Rng rng(3);
  FindEdgesOptions opt;
  EXPECT_TRUE(find_edges(g, opt, rng).hot_pairs.empty());
  EXPECT_TRUE(tri_tri_again_find_edges(g).hot_pairs.empty());
}

TEST(FailureInjection, SingleNegativeEdgeNeverTriggersAlone) {
  // One edge of weight -1 in a positive graph: a triangle needs the sum
  // negative, so hotness depends on its incident triangles only.
  Rng rng(4);
  auto g = random_weighted_graph(20, 0.5, 10, 20, rng);
  g.set_edge(0, 1, -100);  // beats any two positive edges <= 40 total
  const auto truth = edges_in_negative_triangles(g);
  FindEdgesOptions opt;
  Rng r1 = rng.split();
  EXPECT_EQ(find_edges(g, opt, r1).hot_pairs, truth);
  // The planted edge is hot iff it closes at least one triangle.
  const bool has_common_neighbor = gamma(g, 0, 1) > 0;
  const bool reported = std::binary_search(truth.begin(), truth.end(), VertexPair(0, 1));
  EXPECT_EQ(reported, has_common_neighbor);
}

TEST(FailureInjection, DistanceProductWithAsymmetricRanges) {
  // A in [-1000, -900], B in [900, 1000]: sums near zero exercise the
  // binary search's sign boundary.
  Rng rng(5);
  DistMatrix a(5), b(5);
  for (std::uint32_t i = 0; i < 5; ++i) {
    for (std::uint32_t j = 0; j < 5; ++j) {
      a.set(i, j, rng.uniform_i64(-1000, -900));
      b.set(i, j, rng.uniform_i64(900, 1000));
    }
  }
  DistanceProductOptions opt;
  const auto res = distance_product_via_triangles(a, b, opt, rng);
  EXPECT_EQ(res.product, distance_product_naive(a, b));
}

TEST(FailureInjection, StarGraphHasNoTriangles) {
  WeightedGraph g(16);
  for (std::uint32_t v = 1; v < 16; ++v) g.set_edge(0, v, -50);
  Rng rng(6);
  FindEdgesOptions opt;
  EXPECT_TRUE(find_edges(g, opt, rng).hot_pairs.empty());
}

TEST(FailureInjection, DeterministicGivenSeed) {
  Rng g_rng(7);
  const auto g = random_weighted_graph(24, 0.5, -6, 9, g_rng);
  ComputePairsOptions opt;
  std::vector<VertexPair> s;
  for (std::uint32_t u = 0; u < 24; ++u) {
    for (std::uint32_t v = u + 1; v < 24; ++v) s.emplace_back(u, v);
  }
  Rng r1(99), r2(99);
  const auto a = compute_pairs(g, s, opt, r1);
  const auto b = compute_pairs(g, s, opt, r2);
  EXPECT_EQ(a.hot_pairs, b.hot_pairs);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.searches_total, b.searches_total);
}

}  // namespace
}  // namespace qclique
