// Tests for the Executor layer: thread/process equivalence of merged batch
// results, worker-death attribution (a crashing job fails its cells without
// hanging or losing the others), malformed-line handling, and out-of-core
// paged runs producing the same distances as unbounded in-core runs.
#include "exec/executor.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/batch_runner.hpp"
#include "common/error.hpp"
#include "exec/page_store.hpp"
#include "exec/wire.hpp"
#include "graph/generators.hpp"
#include "serve/snapshot.hpp"
#include "serve/snapshot_store.hpp"

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace qclique {
namespace {

/// Toy hooks: job i computes i*i, encodes it as a tiny payload, and the
/// parent collects values. Lets executor mechanics be tested without
/// solver machinery in the way.
class SquareHooks : public ExecJobHooks {
 public:
  explicit SquareHooks(std::size_t count)
      : values_(count, -1), errors_(count) {}

  void run(std::size_t i) override {
    values_[i] = static_cast<long>(i) * static_cast<long>(i);
  }
  std::string encode(std::size_t i) override {
    return "{\"x\":" + std::to_string(values_[i]) + "}";
  }
  void release(std::size_t i) override { values_[i] = -1; }
  void decode(std::size_t i, std::string_view payload) override {
    WireReader r(payload);
    r.expect("{\"x\":");
    values_[i] = static_cast<long>(r.i64());
    r.expect("}");
    QCLIQUE_CHECK(r.at_end(), "trailing bytes");
  }
  void fail(std::size_t i, const std::string& message) override {
    errors_[i] = message;
  }

  const std::vector<long>& values() const { return values_; }
  const std::vector<std::string>& errors() const { return errors_; }

 protected:
  std::vector<long> values_;
  std::vector<std::string> errors_;
};

TEST(ExecExecutor, ThreadExecutorRunsEveryJob) {
  for (const unsigned workers : {1u, 4u}) {
    SquareHooks hooks(17);
    ThreadExecutor(workers).execute(17, hooks);
    for (std::size_t i = 0; i < 17; ++i) {
      EXPECT_EQ(hooks.values()[i], static_cast<long>(i * i)) << workers;
      EXPECT_TRUE(hooks.errors()[i].empty());
    }
  }
}

#if !defined(_WIN32)

TEST(ExecExecutor, ProcessExecutorMergesResultsByJobIndex) {
  for (const unsigned workers : {1u, 3u}) {
    SquareHooks hooks(17);
    ProcessExecutor(workers).execute(17, hooks);
    for (std::size_t i = 0; i < 17; ++i) {
      EXPECT_EQ(hooks.values()[i], static_cast<long>(i * i)) << workers;
      EXPECT_TRUE(hooks.errors()[i].empty()) << hooks.errors()[i];
    }
  }
}

TEST(ExecExecutor, DyingWorkerFailsExactlyItsUnreportedJobs) {
  // Job 5 kills its worker mid-batch. With 3 workers and static round-robin
  // assignment, worker 2 owns jobs {2, 5, 8, 11}; 2 completes before the
  // crash, so exactly {5, 8, 11} must be failed — and the batch must finish
  // without hanging, with every other worker's results intact.
  class CrashHooks final : public SquareHooks {
   public:
    using SquareHooks::SquareHooks;
    void run(std::size_t i) override {
      if (i == 5) _exit(42);
      SquareHooks::run(i);
    }
  };
  CrashHooks hooks(12);
  ProcessExecutor(3).execute(12, hooks);
  for (std::size_t i = 0; i < 12; ++i) {
    if (i == 5 || i == 8 || i == 11) {
      EXPECT_FALSE(hooks.errors()[i].empty()) << i;
      EXPECT_NE(hooks.errors()[i].find("status 42"), std::string::npos)
          << hooks.errors()[i];
    } else {
      EXPECT_EQ(hooks.values()[i], static_cast<long>(i * i)) << i;
      EXPECT_TRUE(hooks.errors()[i].empty()) << i << ": " << hooks.errors()[i];
    }
  }
}

TEST(ExecExecutor, MalformedResultLineFailsOnlyThatJob) {
  class GarbageHooks final : public SquareHooks {
   public:
    using SquareHooks::SquareHooks;
    std::string encode(std::size_t i) override {
      if (i == 3) return "{\"x\":not-a-number}";
      return SquareHooks::encode(i);
    }
  };
  GarbageHooks hooks(8);
  ProcessExecutor(2).execute(8, hooks);
  for (std::size_t i = 0; i < 8; ++i) {
    if (i == 3) {
      EXPECT_NE(hooks.errors()[i].find("malformed"), std::string::npos)
          << hooks.errors()[i];
    } else {
      EXPECT_EQ(hooks.values()[i], static_cast<long>(i * i)) << i;
    }
  }
}

Digraph exec_test_graph(std::uint32_t n, std::uint64_t seed) {
  Rng rng(seed);
  return random_digraph(n, 0.5, -4, 9, rng);
}

/// Thread-mode and process-mode batches over the same spec must merge to
/// the same canonical grid, byte for byte. This is the contract the
/// out-of-core CI gate enforces end-to-end via bench_scenario_matrix.
TEST(ExecExecutor, ProcessModeScenarioGridIsByteIdenticalToThreadMode) {
  ScenarioSpec spec;
  spec.families = {"gnp", "expander"};
  spec.solvers = {"floyd-warshall", "semiring"};
  spec.topologies = {"clique"};
  spec.kernels = {"naive"};
  spec.config.n = 10;
  spec.graph_seed = 77;
  spec.workers = 3;

  ExecutionContext thread_base(901);
  const auto thread_results =
      BatchRunner(SolverRegistry::instance(), thread_base).run_scenarios(spec);

  spec.process_mode = true;
  ExecutionContext process_base(901);
  const auto process_results =
      BatchRunner(SolverRegistry::instance(), process_base).run_scenarios(spec);

  ASSERT_EQ(process_results.size(), thread_results.size());
  ASSERT_GT(thread_results.size(), 0u);
  for (const auto& r : process_results) {
    EXPECT_TRUE(r.ok) << r.label << ": " << r.error;
  }
  EXPECT_EQ(scenarios_to_json(process_results, /*include_timings=*/false),
            scenarios_to_json(thread_results, /*include_timings=*/false));
  // Distances survive the wire bit-for-bit, not just their fingerprints.
  for (std::size_t i = 0; i < thread_results.size(); ++i) {
    EXPECT_EQ(process_results[i].distances(), thread_results[i].distances())
        << thread_results[i].label;
  }
}

TEST(ExecExecutor, ProcessModeStreamSweepMatchesThreadModeCounters) {
  StreamScenarioSpec spec;
  spec.families = {"gnp"};
  spec.streams = {};  // every registered stream
  spec.solvers = {};  // every registered dynamic solver
  spec.config.n = 9;
  spec.config.wmin = 0;
  spec.config.wmax = 6;
  spec.batches = 3;
  spec.batch_size = 6;
  spec.graph_seed = 5;
  spec.workers = 2;

  ExecutionContext thread_base(31);
  const auto thread_results =
      BatchRunner(SolverRegistry::instance(), thread_base).run_streams(spec);

  spec.process_mode = true;
  ExecutionContext process_base(31);
  const auto process_results =
      BatchRunner(SolverRegistry::instance(), process_base).run_streams(spec);

  ASSERT_EQ(process_results.size(), thread_results.size());
  ASSERT_GT(thread_results.size(), 0u);
  for (std::size_t i = 0; i < thread_results.size(); ++i) {
    const StreamResult& a = thread_results[i];
    const StreamResult& b = process_results[i];
    EXPECT_TRUE(b.ok) << b.family << "/" << b.stream << "/" << b.solver << ": "
                      << b.error;
    EXPECT_EQ(b.family, a.family);
    EXPECT_EQ(b.stream, a.stream);
    EXPECT_EQ(b.solver, a.solver);
    EXPECT_EQ(b.n, a.n);
    EXPECT_EQ(b.batches, a.batches);
    EXPECT_EQ(b.updates, a.updates);
    EXPECT_EQ(b.changed_arcs, a.changed_arcs);
    EXPECT_EQ(b.affected_sources, a.affected_sources);
    EXPECT_EQ(b.exact, a.exact);
    EXPECT_EQ(b.published_versions, a.published_versions);
  }
}

#endif  // !defined(_WIN32)

/// An out-of-core run (budget far below the sweep's total matrix bytes)
/// must spill yet produce exactly the distances of an unbounded run.
TEST(ExecExecutor, PagedBatchMatchesUnboundedRunBitForBit) {
  ScenarioSpec spec;
  spec.families = {"gnp", "torus"};
  spec.solvers = {"floyd-warshall", "semiring"};
  spec.topologies = {"clique"};
  spec.kernels = {"naive"};
  spec.config.n = 24;  // 8 cells x 24*24*8 = 4608 bytes each
  spec.graph_seed = 13;
  spec.workers = 2;

  ExecutionContext unbounded_base(55);
  const auto unbounded =
      BatchRunner(SolverRegistry::instance(), unbounded_base).run_scenarios(spec);

  spec.memory_budget = 6000;  // holds barely one matrix of the sweep
  ExecutionContext paged_base(55);
  const auto paged =
      BatchRunner(SolverRegistry::instance(), paged_base).run_scenarios(spec);

  ASSERT_EQ(paged.size(), unbounded.size());
  ASSERT_GT(paged.size(), 2u);
  const auto stats = paged_base.page_store().stats();
  EXPECT_GT(stats.spills, 0u);
  EXPECT_LE(stats.in_core_bytes, 6000u);
  for (std::size_t i = 0; i < paged.size(); ++i) {
    ASSERT_TRUE(paged[i].ok) << paged[i].label << ": " << paged[i].error;
    EXPECT_TRUE(paged[i].distances_paged()) << paged[i].label;
    // The placeholder matrix is tiny; the real one pages back identical.
    EXPECT_EQ(paged[i].distances(), unbounded[i].distances())
        << paged[i].label;
  }
  EXPECT_EQ(scenarios_to_json(paged, /*include_timings=*/false),
            scenarios_to_json(unbounded, /*include_timings=*/false));
}

TEST(ExecExecutor, PagedResultsPublishMaterializedSnapshots) {
  const auto g =
      std::make_shared<const Digraph>(exec_test_graph(12, 3));
  std::vector<BatchJob> jobs;
  jobs.push_back(BatchJob{.graph = g, .solver = "floyd-warshall", .kernel = "",
                          .topology = "", .family = "", .seed_salt = 0,
                          .label = "paged-publish"});
  ExecutionContext base(77);
  base.page_store().set_budget(256);  // way below 12*12*8
  const BatchRunner runner(SolverRegistry::instance(), base);
  const auto results = runner.run(jobs);
  ASSERT_TRUE(results[0].ok) << results[0].error;
  ASSERT_TRUE(results[0].distances_paged());

  SnapshotStore store;
  const auto pins = publish_scenarios(results, store);
  ASSERT_EQ(pins.size(), 1u);
  ASSERT_NE(pins[0], nullptr);
  EXPECT_EQ(pins[0]->distances(), results[0].distances());
}

}  // namespace
}  // namespace qclique
