// Synchronous CONGEST-CLIQUE network simulator.
//
// The simulator runs n logical nodes over a fully connected topology. Time
// advances in synchronous rounds; in one round each *ordered* pair (u, v)
// may carry one message of at most `fields_per_message` fields (our model of
// O(log n) bits; see message.hpp). Protocol code follows a
// queue-then-drain discipline:
//
//   1. a phase enqueues all messages it wants delivered (`send`),
//   2. `run_until_drained(phase)` advances rounds, enforcing the per-link
//      capacity, until every queue is empty, measuring the phase's true
//      round cost from the actual congestion,
//   3. nodes read their inboxes and compute locally (local computation is
//      free in the model).
//
// This measures congestion genuinely: a phase whose worst link carries k
// messages costs exactly k rounds, matching the model's definition.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "congest/message.hpp"
#include "congest/round_ledger.hpp"

namespace qclique {

/// Static configuration of a simulated clique.
struct NetworkConfig {
  /// Fields (O(log n)-bit values) one message may carry per round per link.
  std::size_t fields_per_message = 4;
  /// If true, `send` throws BandwidthError when a payload exceeds the field
  /// budget; if false the payload is silently split across rounds (the model
  /// permits this, it just costs more rounds). Protocols in this repo always
  /// size payloads to one message, so the default is strict.
  bool strict_payload = true;
};

/// The simulated fully connected network.
class CliqueNetwork {
 public:
  CliqueNetwork(std::uint32_t n, NetworkConfig config = {});

  std::uint32_t size() const { return n_; }
  const NetworkConfig& config() const { return config_; }

  /// Enqueues a message from src to dst (src != dst, both < n). The message
  /// is delivered by a later `step` / `run_until_drained` in FIFO order per
  /// link.
  void send(NodeId src, NodeId dst, Payload payload);

  /// Convenience overload.
  void send(const Message& m) { send(m.src, m.dst, m.payload); }

  /// Advances one synchronous round: every link dequeues at most one message
  /// into the destination inbox. Charges one round to `phase` on the ledger.
  void step(const std::string& phase);

  /// Steps until all link queues are empty; returns rounds run (0 if there
  /// was nothing to deliver).
  std::uint64_t run_until_drained(const std::string& phase);

  /// Messages delivered to node v and not yet consumed.
  std::vector<Message>& inbox(NodeId v);
  const std::vector<Message>& inbox(NodeId v) const;

  /// Clears all inboxes (typically at the end of a phase).
  void clear_inboxes();

  /// Total messages currently queued on links (not yet delivered).
  std::uint64_t pending_messages() const { return pending_; }

  /// Largest queue length over all links; the next drain will take exactly
  /// this many rounds.
  std::uint64_t max_link_load() const;

  /// Directly deposits a message into an inbox *without* consuming link
  /// bandwidth. Reserved for routing primitives that charge rounds through
  /// a validated cost model (see lenzen.hpp); protocol code must not use it.
  void deposit(const Message& m);

  RoundLedger& ledger() { return ledger_; }
  const RoundLedger& ledger() const { return ledger_; }

  /// Total rounds this network has stepped (all phases).
  std::uint64_t rounds() const { return rounds_; }

 private:
  std::size_t link_index(NodeId src, NodeId dst) const {
    return static_cast<std::size_t>(src) * n_ + dst;
  }

  std::uint32_t n_;
  NetworkConfig config_;
  std::vector<std::deque<Payload>> links_;  // indexed src*n + dst
  std::vector<std::vector<Message>> inboxes_;
  std::vector<std::size_t> busy_links_;  // indices with nonempty queues
  std::vector<char> link_busy_flag_;
  std::uint64_t pending_ = 0;
  std::uint64_t rounds_ = 0;
  RoundLedger ledger_;
};

}  // namespace qclique
