// Tests for the deterministic RNG: reproducibility, distribution sanity, and
// the sampling helpers protocols depend on.
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"

namespace qclique {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformBoundRespected) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.uniform_u64(17), 17u);
  }
}

TEST(Rng, UniformI64CoversRange) {
  Rng r(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.uniform_i64(-3, 3));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), -3);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng r(9);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double x = r.uniform_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliClampsOutOfRange) {
  Rng r(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(r.bernoulli(1.5));   // paper's >1 sampling rates clamp to 1
    EXPECT_FALSE(r.bernoulli(-0.5));
  }
}

TEST(Rng, BernoulliRate) {
  Rng r(13);
  int hits = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng parent(101);
  Rng c1 = parent.split();
  Rng c2 = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.next_u64() == c2.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng r(5);
  for (std::size_t n : {10u, 50u, 200u}) {
    for (std::size_t k : {0u, 1u, 5u, 10u}) {
      auto s = r.sample_without_replacement(n, k);
      ASSERT_EQ(s.size(), k);
      std::set<std::size_t> uniq(s.begin(), s.end());
      EXPECT_EQ(uniq.size(), k);
      for (std::size_t x : s) EXPECT_LT(x, n);
    }
  }
}

TEST(Rng, SampleWithoutReplacementFullPopulation) {
  Rng r(6);
  auto s = r.sample_without_replacement(8, 8);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 8u);
}

TEST(Rng, SampleRejectsOverdraw) {
  Rng r(1);
  EXPECT_THROW(r.sample_without_replacement(3, 4), SimulationError);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(21);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

}  // namespace
}  // namespace qclique
