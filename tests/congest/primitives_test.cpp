// Tests for the collective communication primitives.
#include "congest/primitives.hpp"

#include <gtest/gtest.h>

#include "common/math.hpp"
#include "congest/network.hpp"
#include "matrix/dist_matrix.hpp"

namespace qclique {
namespace {

TEST(Broadcast, EveryoneReceivesAllFieldsInOrder) {
  CliqueNetwork net(8);
  const std::vector<std::int64_t> data{10, 20, 30, 40, 50, 60, 70};
  broadcast_fields(net, 2, data, 5, "bc");
  for (NodeId v = 0; v < 8; ++v) {
    if (v == 2) continue;
    EXPECT_EQ(collect_inbox_fields(net, v, 5), data);
  }
}

TEST(Broadcast, RoundCostIsCeilFieldsOverBudget) {
  CliqueNetwork net(8, NetworkConfig{.fields_per_message = 4});
  std::vector<std::int64_t> data(10, 1);  // 10 fields -> 3 messages/link
  broadcast_fields(net, 0, data, 1, "bc");
  EXPECT_EQ(net.ledger().phase_rounds("bc"), 3u);
}

TEST(Broadcast, EmptyIsFree) {
  CliqueNetwork net(4);
  broadcast_fields(net, 0, {}, 1, "bc");
  EXPECT_EQ(net.ledger().total_rounds(), 0u);
}

TEST(Gather, CollectorReceivesEveryRow) {
  CliqueNetwork net(6);
  std::vector<std::vector<std::int64_t>> rows(6);
  for (NodeId v = 0; v < 6; ++v) rows[v] = {v * 10, v * 10 + 1};
  gather_fields(net, 3, rows, 2, "g");
  auto got = collect_inbox_fields(net, 3, 2);
  // Node 3's own row is not sent; 5 rows * 2 fields.
  EXPECT_EQ(got.size(), 10u);
}

TEST(Gather, RowProviderShipsMatrixRowsZeroCopy) {
  // The span-based overload gathers whole DistMatrix rows without the
  // per-call row copies the vector-of-vectors form requires.
  CliqueNetwork net(5);
  DistMatrix m(5, 0);
  for (std::uint32_t i = 0; i < 5; ++i) {
    for (std::uint32_t j = 0; j < 5; ++j) m.set(i, j, 10 * i + j);
  }
  gather_fields(net, 1, [&](NodeId v) { return m.row_span(v); }, 9, "g");
  // FIFO per ordered (src, dst) pair: reassembling each sender's messages
  // in arrival order recovers exactly its matrix row.
  std::vector<std::vector<std::int64_t>> per_sender(5);
  for (const Message& msg : net.inbox(1)) {
    ASSERT_EQ(msg.payload.tag, 9u);
    for (std::size_t f = 0; f < msg.payload.size; ++f) {
      per_sender[msg.src].push_back(msg.payload.fields[f]);
    }
  }
  for (NodeId v = 0; v < 5; ++v) {
    if (v == 1) {
      EXPECT_TRUE(per_sender[v].empty());  // the collector's row stays put
    } else {
      EXPECT_EQ(per_sender[v], m.row(v)) << "sender " << v;
    }
  }
}

TEST(Gather, ParallelLinksCostOnlyMaxRow) {
  CliqueNetwork net(8, NetworkConfig{.fields_per_message = 2});
  std::vector<std::vector<std::int64_t>> rows(8);
  for (NodeId v = 0; v < 8; ++v) rows[v].assign(6, v);  // 3 messages per node
  gather_fields(net, 0, rows, 1, "g");
  EXPECT_EQ(net.ledger().phase_rounds("g"), 3u);
}

TEST(Disseminate, AllNodesLearnAllFields) {
  const std::uint32_t n = 8;
  CliqueNetwork net(n);
  std::vector<std::int64_t> data;
  for (int i = 0; i < 40; ++i) data.push_back(100 + i);
  disseminate_fields(net, 1, data, 7, "d");
  for (NodeId v = 0; v < n; ++v) {
    auto got = collect_inbox_fields(net, v, 7);
    std::sort(got.begin(), got.end());
    std::vector<std::int64_t> want = data;
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "node " << v;
  }
}

TEST(Disseminate, CheaperThanNaiveBroadcastForLargeData) {
  const std::uint32_t n = 16;
  CliqueNetwork a(n), b(n);
  std::vector<std::int64_t> data(n * 4, 9);  // n*4 fields
  disseminate_fields(a, 0, data, 1, "d");
  broadcast_fields(b, 0, data, 1, "bc");
  EXPECT_LT(a.ledger().total_rounds(), b.ledger().total_rounds());
}

TEST(CollectInbox, FiltersByTagAndPreservesOthers) {
  CliqueNetwork net(4);
  net.send(0, 1, Payload::make(1, {11}));
  net.send(0, 1, Payload::make(2, {22}));
  net.send(2, 1, Payload::make(1, {33}));
  net.run_until_drained("p");
  auto got = collect_inbox_fields(net, 1, 1);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<std::int64_t>{11, 33}));
  // Tag-2 message still present.
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.inbox(1)[0].payload.tag, 2u);
}

}  // namespace
}  // namespace qclique
