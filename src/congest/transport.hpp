// The pluggable transport/topology API of the CONGEST simulator.
//
// The paper's round costs are defined by the communication model, so the
// model itself is a first-class scenario axis: every protocol layer talks to
// the abstract `Network` interface below, and concrete topologies register
// themselves in the `TopologyRegistry` (the transport-layer mirror of
// `SolverRegistry` one layer up). Built-ins:
//
//   * "clique"         -- the CONGEST-CLIQUE of the paper: every ordered
//                         pair is a direct link, one message per link per
//                         round, Lemma 1 routing valid. The default, and
//                         the implementation behind `CliqueNetwork`
//                         (congest/network.hpp).
//   * "congest"        -- general CONGEST: links exist only along the edges
//                         of a caller-supplied communication graph; messages
//                         between non-adjacent nodes are relayed hop-by-hop
//                         along shortest paths, one message per directed
//                         edge per round. This is the model the paper's
//                         CONGEST-CLIQUE results are contrasted against.
//   * "bounded-degree" -- the clique API (any node may address any other)
//                         over a degree-capped deterministic overlay (ring
//                         plus power-of-two chords), for bandwidth-restricted
//                         experiments.
//
// Every topology upholds the same cost-model contract (documented in
// docs/TRANSPORT.md and enforced by tests/congest/transport_conformance_test):
// FIFO delivery per ordered (src, dst) pair, at most one message per
// physical link per round, one ledger round charged per `step`, and
// `deposit` bypassing bandwidth for primitives that charge rounds through a
// validated cost model instead (congest/lenzen.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/profiler.hpp"
#include "congest/message.hpp"
#include "congest/round_ledger.hpp"

namespace qclique {

/// Static configuration shared by every topology: the per-message bandwidth
/// model (see message.hpp).
struct NetworkConfig {
  /// Fields (O(log n)-bit values) one message may carry per round per link.
  std::size_t fields_per_message = 4;
  /// If true, `send` throws BandwidthError when a payload exceeds the field
  /// budget; if false the payload is silently split across rounds (the model
  /// permits this, it just costs more rounds). Protocols in this repo always
  /// size payloads to one message, so the default is strict.
  bool strict_payload = true;
};

/// What a harness (or a routing primitive) may assume about a topology.
struct TransportCapabilities {
  /// Every ordered pair of nodes is a direct physical link.
  bool fully_connected = false;
  /// The Lemma 1 (Lenzen routing) charge `2 * ceil(L / n)` is a valid cost
  /// model for bulk batches; `route()` falls back to stepped delivery on
  /// topologies where it is not.
  bool lemma1_routing = false;
  /// Upper bound on a node's physical degree (n - 1 on the clique).
  std::uint32_t max_degree = 0;
};

/// Per-link traffic instrumentation. When enabled on a network, every
/// physical link traversal is counted, so benches can export the load
/// distribution next to `RoundLedger::to_json` and locate hot links.
class TrafficMatrix {
 public:
  explicit TrafficMatrix(std::uint32_t n);

  std::uint32_t size() const { return n_; }

  /// Counts one message crossing the physical link (src, dst).
  void record(NodeId src, NodeId dst);

  /// Counts a bandwidth-free deposit (charged-model delivery).
  void record_deposit(NodeId src, NodeId dst);

  /// Counts `count` bandwidth-free deposits at once (counts-only routing).
  void record_deposits(NodeId src, NodeId dst, std::uint64_t count);

  /// Messages that crossed link (src, dst).
  std::uint64_t load(NodeId src, NodeId dst) const;

  std::uint64_t total() const { return total_; }
  std::uint64_t deposits() const { return deposits_; }

  /// Heaviest per-link load (0 for an idle network).
  std::uint64_t max_load() const;

  /// Links that carried at least one message.
  std::uint64_t links_used() const;

  /// One JSON object: totals plus the heaviest link, exported alongside
  /// RoundLedger::to_json by benches that persist run costs.
  std::string to_json() const;

 private:
  std::uint32_t n_;
  std::vector<std::uint64_t> loads_;  // indexed src * n + dst
  std::uint64_t total_ = 0;
  std::uint64_t deposits_ = 0;
};

/// Abstract synchronous message-passing network. Protocol code follows the
/// queue-then-drain discipline regardless of topology:
///
///   1. a phase enqueues the messages it wants delivered (`send`),
///   2. `run_until_drained(phase)` advances rounds, enforcing each
///      topology's per-link capacity, until nothing is in flight, measuring
///      the phase's true round cost from the actual congestion,
///   3. nodes read their inboxes and compute locally (free in the model).
class Network {
 public:
  Network(std::uint32_t n, NetworkConfig config);
  virtual ~Network() = default;

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  std::uint32_t size() const { return n_; }
  const NetworkConfig& config() const { return config_; }

  /// Registry name of this topology ("clique", "congest", ...).
  virtual std::string topology() const = 0;

  virtual TransportCapabilities capabilities() const = 0;

  /// Enqueues a message from src to dst for later delivery in FIFO order
  /// per ordered (src, dst) pair. Validates src/dst bounds and src != dst
  /// (typed SimulationError) before any state is touched; oversized
  /// payloads throw BandwidthError under strict_payload and are split into
  /// budget-sized chunks otherwise.
  void send(NodeId src, NodeId dst, Payload payload);

  /// Convenience overload.
  void send(const Message& m) { send(m.src, m.dst, m.payload); }

  /// Counts-only analogue of `send`: enqueues `count` phantom messages on
  /// the (src, dst) link. Phantoms consume link capacity, advance rounds,
  /// and are recorded by the TrafficMatrix exactly like real messages, but
  /// are never delivered to an inbox — the payloadless half of the
  /// zero-materialization routing fast path (lenzen.hpp route_counts) for
  /// phases whose receivers are modeled globally and never read the data.
  void send_counts(NodeId src, NodeId dst, std::uint64_t count = 1);

  /// Advances one synchronous round: every physical link carries at most
  /// one message. Charges exactly one round to `phase` on the ledger.
  virtual void step(const std::string& phase) = 0;

  /// Steps until nothing is in flight; returns rounds run (0 if there was
  /// nothing to deliver).
  std::uint64_t run_until_drained(const std::string& phase);

  /// Messages delivered to node v and not yet consumed.
  std::vector<Message>& inbox(NodeId v);
  const std::vector<Message>& inbox(NodeId v) const;

  /// Clears all inboxes (typically at the end of a phase).
  void clear_inboxes();

  /// Messages currently queued or in flight (not yet delivered).
  std::uint64_t pending_messages() const { return pending_; }

  /// Largest queue on any physical link. On the clique the next drain takes
  /// exactly this many rounds; on multi-hop topologies it is a lower bound.
  virtual std::uint64_t max_link_load() const = 0;

  /// Directly deposits a message into an inbox *without* consuming link
  /// bandwidth. Reserved for routing primitives that charge rounds through
  /// a validated cost model (see lenzen.hpp); protocol code must not use it.
  void deposit(const Message& m);

  /// Counts-only analogue of `deposit`: records `count` charged-model
  /// deliveries on the traffic matrix without touching any inbox.
  void deposit_counts(NodeId src, NodeId dst, std::uint64_t count = 1);

  RoundLedger& ledger() { return ledger_; }
  const RoundLedger& ledger() const { return ledger_; }

  /// Total rounds this network has stepped (all phases).
  std::uint64_t rounds() const { return rounds_; }

  /// Turns on per-link load recording (off by default: the counters cost
  /// n^2 memory and one increment per delivery).
  void enable_traffic_matrix();
  const TrafficMatrix* traffic() const { return traffic_.get(); }

  /// Installs the run's wall-clock profiler (shared with the
  /// ExecutionContext that configured the transport; null disables).
  void install_profiler(std::shared_ptr<PhaseProfiler> profiler) {
    profiler_ = std::move(profiler);
  }
  PhaseProfiler* profiler() const { return profiler_.get(); }

  /// Opens a profiler span keyed by `phase` (inert when no profiler is
  /// installed, or inside an already-open span). Routing primitives call
  /// this at their entry points.
  PhaseProfiler::Span profile_phase(const std::string& phase) const {
    return profiler_ ? profiler_->span(phase) : PhaseProfiler::Span();
  }

 protected:
  /// Topology hook: queue one budget-sized message (endpoints validated).
  virtual void enqueue(NodeId src, NodeId dst, const Payload& payload) = 0;

  /// Places a delivered message into its destination inbox. Phantom
  /// (counts-only) messages are counted by the caller but never stored.
  void deliver_to_inbox(const Message& m) {
    if (m.payload.tag != kPhantomTag) inboxes_[m.dst].push_back(m);
  }

  /// Records one physical traversal of (src, dst) when instrumentation is on.
  void record_traffic(NodeId src, NodeId dst) {
    if (traffic_) traffic_->record(src, dst);
  }

  std::uint32_t n_;
  NetworkConfig config_;
  std::vector<std::vector<Message>> inboxes_;
  std::uint64_t pending_ = 0;  // send increments; topologies decrement on delivery
  std::uint64_t rounds_ = 0;
  RoundLedger ledger_;
  std::unique_ptr<TrafficMatrix> traffic_;
  std::shared_ptr<PhaseProfiler> profiler_;
};

/// Scenario knobs selecting and parameterizing a topology. This is the
/// transport analogue of picking a solver backend by name: harnesses set
/// `topology` (and the per-topology parameters below) on an
/// ExecutionContext and every network the run builds goes through
/// `make_network`.
struct TransportOptions {
  /// TopologyRegistry key. Built-ins: "clique", "congest", "bounded-degree".
  std::string topology = "clique";
  NetworkConfig config;
  /// "bounded-degree": per-node physical degree cap (>= 2; ring + chords).
  std::uint32_t degree_cap = 8;
  /// "congest": the communication graph's adjacency lists (made symmetric).
  /// When unset, protocol entry points derive it from their input graph
  /// (general CONGEST: communication network == problem graph); direct
  /// `make_network` callers get a ring.
  std::shared_ptr<const std::vector<std::vector<NodeId>>> links;
  /// Build networks with the TrafficMatrix instrumentation enabled.
  bool record_traffic = false;
  /// Wall-clock profiler installed on every network built from these
  /// options (ExecutionContext shares its own here so per-phase timings
  /// accumulate across a run; null disables profiling).
  std::shared_ptr<PhaseProfiler> profiler;
};

/// Builds a concrete network for a registered topology.
using NetworkFactory =
    std::function<std::unique_ptr<Network>(std::uint32_t n, const TransportOptions&)>;

/// One registered topology.
struct TopologyInfo {
  std::string name;
  std::string description;
  NetworkFactory factory;
  /// The topology derives its links from the input graph when the caller
  /// pins none (general CONGEST: communication network == problem graph).
  /// Protocol entry points consult this through `wants_graph_links`.
  bool graph_induced_links = false;
};

/// Name -> topology registry, mirroring SolverRegistry: topologies register
/// once, and every harness resolves them by name so benches and tests can
/// sweep communication models the same way they sweep solver backends.
class TopologyRegistry {
 public:
  /// The process-wide registry, with all built-in topologies registered.
  static TopologyRegistry& instance();

  /// An empty registry (tests; embedding independent registries).
  TopologyRegistry() = default;

  TopologyRegistry(const TopologyRegistry&) = delete;
  TopologyRegistry& operator=(const TopologyRegistry&) = delete;

  /// Registers a topology. Throws SimulationError on a duplicate or empty
  /// name or a null factory.
  void add(TopologyInfo info);

  bool contains(const std::string& name) const;

  /// Looks up a topology; throws SimulationError naming the known
  /// topologies when `name` is not registered.
  const TopologyInfo& get(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<TopologyInfo> topologies_;  // sorted by name
};

/// Registers the built-in topologies ("clique", "congest",
/// "bounded-degree"). Called once by TopologyRegistry::instance(); exposed
/// so tests can build private registries with the same population.
void register_builtin_topologies(TopologyRegistry& registry);

/// Builds a network of `n` nodes for `options.topology` through the
/// process-wide registry, applying `options.config` and per-topology
/// parameters. Throws SimulationError for an unknown topology.
std::unique_ptr<Network> make_network(std::uint32_t n, const TransportOptions& options);

/// `options` with `links` replaced by `adjacency` (helper for protocol
/// entry points deriving the general-CONGEST communication graph from
/// their input graph when the caller did not pin one).
TransportOptions with_links(const TransportOptions& options,
                            std::vector<std::vector<NodeId>> adjacency);

/// True when `options.topology` wants graph-induced links and the caller
/// has not pinned an explicit link set.
bool wants_graph_links(const TransportOptions& options);

/// `make_network`, with graph-induced links installed on demand: when
/// `wants_graph_links(options)`, `derive_links()` supplies the input
/// graph's adjacency (protocol entry points pass a lambda over their
/// graph); otherwise it is never called.
std::unique_ptr<Network> make_network_for(
    std::uint32_t n, const TransportOptions& options,
    const std::function<std::vector<std::vector<NodeId>>()>& derive_links);

}  // namespace qclique
