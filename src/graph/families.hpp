// The graph-family registry: named, config-driven workload generators.
//
// The fourth registry axis, next to SolverRegistry (which algorithm),
// TopologyRegistry (which communication model), and KernelRegistry (which
// dense product): a GraphFamily turns a FamilyConfig plus an Rng into a
// reproducible input graph with *promised structural invariants*, and the
// GraphFamilyRegistry lets every harness sweep graph structure by name the
// same way it sweeps backends, topologies, and kernels
// (BatchRunner::run_scenarios crosses all four axes). Built-ins:
//
//   * "gnp"             -- Erdos-Renyi G(n, p) digraph, subsuming the seed
//                          `random_digraph` (potential-reweighted arcs when
//                          no_negative_cycles is set);
//   * "grid"            -- rows x cols 2D lattice (rows = largest divisor
//                          of n at most sqrt(n)), 4-neighbor;
//   * "torus"           -- the grid with wraparound rows and columns;
//   * "ring-of-cliques" -- `clusters` near-equal cliques bridged in a ring;
//   * "expander"        -- bounded-degree circulant overlay (ring plus
//                          power-of-two chords, the transport layer's
//                          bounded-degree construction as a *workload*);
//   * "power-law"       -- preferential attachment (Barabasi-Albert), a few
//                          high-degree hubs and a heavy-tailed degree
//                          distribution;
//   * "layered-dag"     -- `layers` ranks with arcs only from one rank to
//                          the next (acyclic, so the full weight range is
//                          safe including negatives);
//   * "clustered"       -- `clusters` communities, dense inside
//                          (intra_density), sparse across (inter_density);
//   * "lambda-skew"     -- adversarial row skew: `hubs` rows carry arcs to
//                          every vertex while the rest stay sparse,
//                          concentrating pair mass on few rows to stress
//                          the Lemma 2 balance statistic of
//                          `sample_lambda_family`.
//
// The family contract (docs/SCENARIOS.md, enforced by
// tests/graph/families_test.cpp): generate() returns a graph with exactly
// config.n vertices whose weights and structure satisfy traits(config) --
// weight bounds, symmetry, degree bounds, acyclicity, negative-cycle
// freedom, connectivity -- and identical (config, seed) pairs produce
// bit-identical graphs.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/weighted_graph.hpp"

namespace qclique {

class Rng;

/// Generation knobs shared by every family. Families ignore knobs they have
/// no use for (the grid ignores `density`; gnp ignores `clusters`), exactly
/// like KernelConfig one registry over.
struct FamilyConfig {
  /// Vertex count. Families always produce exactly n vertices (internal
  /// block sizes are rounded, never the total).
  std::uint32_t n = 16;
  /// Weight range for sampled weights. Symmetric families draw digraph
  /// weights from [max(0, wmin), wmax]: a negative symmetric arc pair is
  /// itself a negative cycle. Their undirected output (generate_weighted)
  /// uses the full range.
  std::int64_t wmin = -4;
  std::int64_t wmax = 9;
  /// Arc/edge probability for the random families ("gnp", "layered-dag",
  /// and the non-hub rows of "lambda-skew").
  double density = 0.5;
  /// "gnp": sample arc weights through PotentialWeights so no negative
  /// cycle exists (the APSP precondition). When false and wmin < 0 the
  /// digraph may contain negative cycles.
  bool no_negative_cycles = true;
  /// "expander": per-vertex degree cap (>= 2). "power-law": edges each new
  /// vertex attaches with.
  std::uint32_t degree = 4;
  /// "ring-of-cliques" / "clustered": number of blocks (clamped to [1, n]).
  std::uint32_t clusters = 4;
  /// "clustered": edge probability inside a community.
  double intra_density = 0.9;
  /// "clustered": edge probability across communities.
  double inter_density = 0.05;
  /// "layered-dag": number of ranks (clamped to [1, n]).
  std::uint32_t layers = 4;
  /// "lambda-skew": number of full out-rows (clamped to [1, n]).
  std::uint32_t hubs = 2;
};

/// Structural invariants a family promises for its generate() output under
/// a given config. The conformance suite checks exactly these, so a trait
/// must only be set when the family guarantees it for every seed.
struct FamilyTraits {
  /// Arc (u, v) exists iff (v, u) does, with equal weight (an undirected
  /// graph in digraph form).
  bool symmetric = false;
  /// No directed cycle at all (layered DAG).
  bool acyclic = false;
  /// No negative-weight directed cycle (the APSP precondition).
  bool no_negative_cycles = true;
  /// Digraph weights are drawn from [max(0, wmin), wmax] rather than the
  /// full configured range.
  bool nonnegative_weights = false;
  /// The underlying undirected graph is connected (n >= 1).
  bool connected = false;
  /// Upper bound on any vertex's undirected degree; 0 = no promise.
  std::uint32_t degree_bound = 0;
};

/// One workload generator. Families are stateless: all per-call state lives
/// in the arguments, so one instance serves concurrent harnesses.
class GraphFamily {
 public:
  virtual ~GraphFamily() = default;

  /// Registry key, e.g. "ring-of-cliques".
  virtual std::string name() const = 0;

  /// One-line human description (shown by harness listings).
  virtual std::string description() const = 0;

  /// The invariants generate() promises under `config`.
  virtual FamilyTraits traits(const FamilyConfig& config) const = 0;

  /// Draws one digraph: the APSP input form every solver backend accepts.
  virtual Digraph generate(const FamilyConfig& config, Rng& rng) const = 0;

  /// Draws one undirected graph over the same structure: the FindEdges /
  /// negative-triangle input form. Weights span the full [wmin, wmax]
  /// (undirected graphs have no cycle constraint to respect).
  virtual WeightedGraph generate_weighted(const FamilyConfig& config,
                                          Rng& rng) const = 0;
};

/// Name -> family registry, the fourth registry alongside SolverRegistry,
/// TopologyRegistry, and KernelRegistry. Registration is mutex-guarded;
/// lookups return stable references valid for the registry's lifetime and
/// are safe from concurrent BatchRunner workers after setup.
class GraphFamilyRegistry {
 public:
  /// The process-wide registry, with all built-in families registered.
  static GraphFamilyRegistry& instance();

  /// An empty registry (tests; embedding independent registries).
  GraphFamilyRegistry() = default;

  GraphFamilyRegistry(const GraphFamilyRegistry&) = delete;
  GraphFamilyRegistry& operator=(const GraphFamilyRegistry&) = delete;

  /// Registers a family under family->name(). Throws SimulationError on a
  /// duplicate name or a null/empty-named family.
  void add(std::unique_ptr<GraphFamily> family);

  bool contains(const std::string& name) const;

  /// Looks up a family; throws SimulationError naming the known families
  /// when `name` is not registered.
  const GraphFamily& get(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<GraphFamily>> families_;  // sorted by name
};

/// Registers the built-in families listed in the header comment. Called
/// once by GraphFamilyRegistry::instance(); exposed so tests can build
/// private registries with the same population.
void register_builtin_families(GraphFamilyRegistry& registry);

/// Convenience: a FamilyConfig with the four knobs every sweep sets
/// (remaining fields keep their defaults).
FamilyConfig family_config(std::uint32_t n, double density, std::int64_t wmin,
                           std::int64_t wmax);

/// Convenience: one digraph from the process-wide registry.
Digraph make_family_graph(const std::string& family, const FamilyConfig& config,
                          Rng& rng);

/// Convenience: one undirected graph from the process-wide registry.
WeightedGraph make_family_weighted(const std::string& family,
                                   const FamilyConfig& config, Rng& rng);

/// The k highest-degree vertices of g (undirected degree: out + in arcs,
/// arc pairs counted once), ties broken toward lower index; k is clamped
/// to [0, n]. This is the structural notion of "hub" shared by the
/// lambda-skew family and the hub-targeted update streams
/// (stream/generators.hpp): on power-law or lambda-skew graphs it finds
/// the attachment hubs, on flat families it degenerates to the first k
/// vertices of maximum degree.
std::vector<std::uint32_t> structural_hubs(const Digraph& g, std::uint32_t k);

}  // namespace qclique
