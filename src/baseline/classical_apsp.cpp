#include "baseline/classical_apsp.hpp"

#include <memory>

#include "baseline/semiring_product.hpp"
#include "common/error.hpp"
#include "congest/transport.hpp"

namespace qclique {

ApspResult classical_apsp(const Digraph& g, const TransportOptions& transport,
                          const KernelOptions& kernel) {
  const std::uint32_t n = g.size();
  ApspResult res(n);
  const std::uint32_t net_n = std::max<std::uint32_t>(n, 2);
  const std::unique_ptr<Network> net_ptr = make_network_for(
      net_n, transport, [&g] { return g.symmetric_adjacency(); });
  Network& net = *net_ptr;

  DistMatrix acc = g.to_dist_matrix();
  std::uint64_t covered = 1;
  while (covered < static_cast<std::uint64_t>(n > 1 ? n - 1 : 1)) {
    acc = semiring_distance_product(net, acc, acc, kernel).product;
    ++res.products;
    covered *= 2;
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    QCLIQUE_CHECK(acc.at(i, i) >= 0, "classical_apsp: negative cycle in input");
  }
  res.distances = acc;
  res.rounds = net.ledger().total_rounds();
  res.ledger = net.ledger();
  return res;
}

ApspResult classical_apsp(const Digraph& g, const NetworkConfig& net_config) {
  TransportOptions transport;
  transport.config = net_config;
  return classical_apsp(g, transport);
}

}  // namespace qclique
