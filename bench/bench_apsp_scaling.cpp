// Experiment E1 (Theorem 1): quantum APSP round complexity vs n and W.
//
// The paper claims O~(n^{1/4} log W) rounds for APSP over directed graphs
// with weights in {-W..W}. This harness measures simulated rounds for a
// sweep of n and two weight scales, fits the n-exponent of the
// rounds-vs-n curve, and reports the W-dependence (expected: roughly
// multiplicative in log W through the binary-search depth of Prop 2).
#include <iostream>

#include "api/registry.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "graph/families.hpp"

int main() {
  using namespace qclique;
  std::cout << "E1: quantum APSP scaling (Theorem 1: O~(n^{1/4} log W) rounds)\n";

  SolverRegistry& registry = SolverRegistry::instance();
  const ApspSolver& quantum = registry.get("quantum");
  const ApspSolver& oracle_solver = registry.get("floyd-warshall");

  Table table({"n", "W", "rounds", "products", "FindEdges calls", "exact"});
  std::vector<double> ns, rounds_small_w;
  for (const std::int64_t w : {8ll, 64ll}) {
    for (const std::uint32_t n : {8u, 12u, 16u, 20u}) {
      Rng rng(1000 + n + static_cast<std::uint64_t>(w));
      const auto g = make_family_graph("gnp", family_config(n, 0.45, -w / 2, w), rng);
      ExecutionContext octx(1);
      const ApspReport oracle = oracle_solver.solve(g, octx);
      ExecutionContext ctx(2000 + n + static_cast<std::uint64_t>(w));
      const ApspReport res = quantum.solve(g, ctx);
      const bool exact = res.distances == oracle.distances;
      table.add_row({Table::fmt(static_cast<std::uint64_t>(n)), Table::fmt(w),
                     Table::fmt(res.rounds), Table::fmt(res.metrics.at("products")),
                     Table::fmt(res.metrics.at("find_edges_calls")),
                     exact ? "yes" : "NO"});
      if (w == 8) {
        ns.push_back(n);
        rounds_small_w.push_back(static_cast<double>(res.rounds));
      }
    }
  }
  table.print("Quantum APSP: measured rounds");

  const auto fit = fit_power_law(ns, rounds_small_w);
  std::cout << "\nFitted rounds ~ n^e at W=8: e = " << fit.slope
            << " (r^2 = " << fit.r_squared << ")\n"
            << "Paper shape: the *search* component scales ~n^{1/4}; at these\n"
               "sizes the polylog reduction layers (log n squarings x log M\n"
               "binary probes x per-call setup) dominate the absolute count,\n"
               "so the fitted end-to-end exponent reflects setup-heavy small-n\n"
               "behavior. bench_findedges_promise isolates the n^{1/4} layer.\n";
  return 0;
}
