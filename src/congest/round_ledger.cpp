#include "congest/round_ledger.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace qclique {

void RoundLedger::charge(const std::string& phase, std::uint64_t rounds,
                         std::uint64_t messages) {
  PhaseStats& s = phases_[phase];
  s.rounds += rounds;
  s.messages += messages;
  total_rounds_ += rounds;
  total_messages_ += messages;
}

void RoundLedger::charge_quantum(const std::string& phase, std::uint64_t rounds,
                                 std::uint64_t oracle_calls) {
  PhaseStats& s = phases_[phase];
  s.rounds += rounds;
  s.quantum_oracle_calls += oracle_calls;
  total_rounds_ += rounds;
  total_oracle_calls_ += oracle_calls;
}

std::uint64_t RoundLedger::phase_rounds(const std::string& phase) const {
  auto it = phases_.find(phase);
  return it == phases_.end() ? 0 : it->second.rounds;
}

void RoundLedger::absorb(const RoundLedger& other) {
  for (const auto& [name, s] : other.phases_) {
    PhaseStats& mine = phases_[name];
    mine.rounds += s.rounds;
    mine.messages += s.messages;
    mine.quantum_oracle_calls += s.quantum_oracle_calls;
  }
  total_rounds_ += other.total_rounds_;
  total_messages_ += other.total_messages_;
  total_oracle_calls_ += other.total_oracle_calls_;
}

void RoundLedger::reset() {
  phases_.clear();
  total_rounds_ = 0;
  total_messages_ = 0;
  total_oracle_calls_ = 0;
}

std::string RoundLedger::report() const {
  std::vector<std::pair<std::string, PhaseStats>> sorted(phases_.begin(), phases_.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second.rounds > b.second.rounds;
  });
  std::ostringstream out;
  out << "total rounds: " << total_rounds_ << "  (messages: " << total_messages_
      << ", quantum oracle calls: " << total_oracle_calls_ << ")\n";
  for (const auto& [name, s] : sorted) {
    out << "  " << name << ": " << s.rounds << " rounds";
    if (s.messages > 0) out << ", " << s.messages << " msgs";
    if (s.quantum_oracle_calls > 0) out << ", " << s.quantum_oracle_calls << " oracle calls";
    out << "\n";
  }
  return out.str();
}

std::string json_quote(const std::string& s) {
  std::ostringstream out;
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(c) << std::dec;
        } else {
          out << c;
        }
    }
  }
  out << '"';
  return out.str();
}

std::string RoundLedger::to_json() const {
  std::ostringstream out;
  out << "{\"total_rounds\":" << total_rounds_
      << ",\"total_messages\":" << total_messages_
      << ",\"total_oracle_calls\":" << total_oracle_calls_ << ",\"phases\":{";
  bool first = true;
  for (const auto& [name, s] : phases_) {
    if (!first) out << ",";
    first = false;
    out << json_quote(name) << ":{\"rounds\":" << s.rounds
        << ",\"messages\":" << s.messages
        << ",\"oracle_calls\":" << s.quantum_oracle_calls << "}";
  }
  out << "}}";
  return out.str();
}

}  // namespace qclique
