// Tests for the Dolev-Lenzen-Peled triangle listing baseline.
#include "baseline/tri_tri_again.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "graph/generators.hpp"
#include "graph/triangles.hpp"

namespace qclique {
namespace {

class TriTriSizes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TriTriSizes, HotPairsMatchBruteForce) {
  const std::uint32_t n = GetParam();
  Rng rng(500 + n);
  const auto g = random_weighted_graph(n, 0.5, -6, 10, rng);
  const auto res = tri_tri_again_find_edges(g);
  EXPECT_EQ(res.hot_pairs, edges_in_negative_triangles(g));
  EXPECT_EQ(res.negative_triangles, count_negative_triangles(g));
}

INSTANTIATE_TEST_SUITE_P(Sweep, TriTriSizes,
                         ::testing::Values(3u, 5u, 8u, 12u, 16u, 20u, 27u, 33u));

TEST(TriTriAgain, EmptyGraphHasNoPairs) {
  WeightedGraph g(10);
  const auto res = tri_tri_again_find_edges(g);
  EXPECT_TRUE(res.hot_pairs.empty());
  EXPECT_EQ(res.negative_triangles, 0u);
}

TEST(TriTriAgain, AllPositiveWeights) {
  Rng rng(2);
  const auto g = random_weighted_graph(18, 0.6, 1, 10, rng);
  const auto res = tri_tri_again_find_edges(g);
  EXPECT_TRUE(res.hot_pairs.empty());
}

TEST(TriTriAgain, PlantedTrianglesRecovered) {
  Rng rng(3);
  std::vector<VertexPair> planted;
  const auto g = planted_negative_triangles(21, 4, rng, &planted);
  const auto res = tri_tri_again_find_edges(g);
  EXPECT_EQ(res.hot_pairs, planted);
  EXPECT_EQ(res.negative_triangles, 4u);
}

TEST(TriTriAgain, RoundsScaleSubLinearly) {
  Rng rng(4);
  std::vector<double> ns, rounds;
  for (std::uint32_t n : {8u, 16u, 32u, 64u}) {
    const auto g = random_weighted_graph(n, 0.4, -5, 10, rng);
    const auto res = tri_tri_again_find_edges(g);
    ns.push_back(n);
    rounds.push_back(static_cast<double>(std::max<std::uint64_t>(res.rounds, 1)));
  }
  const auto fit = fit_power_law(ns, rounds);
  EXPECT_LT(fit.slope, 0.9);
}

TEST(TriTriAgain, DenseNegativeClique) {
  // Every triangle negative: hot pairs = all edges.
  WeightedGraph g(9);
  for (std::uint32_t u = 0; u < 9; ++u) {
    for (std::uint32_t v = u + 1; v < 9; ++v) g.set_edge(u, v, -1);
  }
  const auto res = tri_tri_again_find_edges(g);
  EXPECT_EQ(res.hot_pairs.size(), 36u);
  EXPECT_EQ(res.negative_triangles, 84u);  // C(9,3)
}

}  // namespace
}  // namespace qclique
