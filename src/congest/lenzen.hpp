// Bulk routing under Lemma 1 (Dolev, Lenzen, Peled 2012 / Lenzen 2013).
//
//   "In the CONGEST-CLIQUE model a set of messages in which no node is the
//    source of more than n messages and no node is the destination of more
//    than n messages can be delivered within two rounds if the source and
//    destination of each message is known in advance to all nodes."
//
// `route` is the primitive protocols use: it validates the load profile of a
// message batch, charges 2 * ceil(L / n) rounds (L = max per-node
// source/destination load, i.e. repeated application of Lemma 1 to n-sized
// sub-batches), and deposits the messages. The deterministic 2-round
// schedule itself (a sorting network construction) is *charged*, not
// step-simulated -- this is the one place where the simulator trusts a cost
// model rather than measuring queues; `route_two_phase` provides a genuine
// stepped randomized 2-phase implementation used by tests and bench E9 to
// validate that the charge is achievable within small constant factors.
//
// Topology awareness: Lemma 1 only holds on the fully connected clique, so
// `route` consults `Network::capabilities()`. On a transport without
// `lemma1_routing` (general CONGEST, bounded-degree overlays) the batch is
// delivered by genuine stepped hop-by-hop routing instead and the *measured*
// rounds are reported -- protocols keep working unchanged, they just pay the
// true cost of the sparser communication graph.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "congest/transport.hpp"

namespace qclique {
class Rng;

/// Outcome of a routing call.
struct RouteStats {
  std::uint64_t rounds = 0;          // rounds charged (or measured)
  std::uint64_t messages = 0;        // batch size
  std::uint64_t max_source_load = 0; // max messages sourced by one node
  std::uint64_t max_dest_load = 0;   // max messages destined to one node
};

/// Validates and delivers `batch` under the Lemma 1 cost model, charging
/// `2 * ceil(max_load / n)` rounds to `phase` on the network's ledger.
/// Every message's payload must fit the per-message field budget.
RouteStats route(Network& net, const std::vector<Message>& batch,
                 const std::string& phase);

/// Struct-of-arrays overload: identical validation, charging, delivery
/// order, and inbox contents to the per-`Message` form (the routing
/// equivalence suite holds the two bit-identical) with no per-message heap
/// object — the load profile is read straight off the batch's flat arrays.
RouteStats route(Network& net, const MessageBatch& batch,
                 const std::string& phase);

/// Counts-only routing: charges the ledger (and the traffic matrix) for a
/// batch described by per-(src, dst) message counts without constructing
/// payloads or touching inboxes. Correct for every call site that clears
/// its inboxes without reading the delivered payloads (the step 1/2
/// loads, the evaluation traffic, whole-row shipping). On the clique the
/// Lemma 1 charge is computed straight from the count profile; off the
/// clique the counts are replayed in insertion order as phantom messages
/// through the genuine stepped transport, so measured congestion stays
/// bit-identical to the per-`Message` path. The caller is responsible for
/// sizing the (never-built) payloads within the field budget.
RouteStats route_counts(Network& net, const LinkCounts& counts,
                        const std::string& phase);

/// Genuine stepped implementation: round 1 spreads each source's messages
/// over random intermediate relays, round 2 forwards relay -> destination;
/// both phases run through Network::step so collisions on a link cost
/// real rounds. Returns measured (not charged) rounds. With max loads <= n
/// the expected measured cost is O(1) rounds per phase (Theta(log n / log
/// log n) worst link in the balls-into-bins tail), which bench E9 reports
/// next to the Lemma 1 charge of 2.
RouteStats route_two_phase(Network& net, const std::vector<Message>& batch,
                           Rng& rng, const std::string& phase);

}  // namespace qclique
