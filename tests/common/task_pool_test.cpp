// TaskPool unit + schedule-independence suite (docs/PERFORMANCE.md).
//
// The unit half pins the parallel_for contract: every index of [begin, end)
// runs exactly once, chunk boundaries are multiples of `grain` regardless of
// pool size or max_workers cap, slots stay inside [0, threads()), nested and
// concurrent regions degrade to inline execution instead of deadlocking.
//
// The property half is the reason the pool may exist at all: results of the
// surfaces ported onto it -- kernel products, batch scenario grids, and
// incremental dynamic repair -- must be bit-identical across pool sizes
// {1, 2, 8}, and identical to a sequential oracle that never touches the
// pool. These run under TSan in CI (sanitize-threads job).
#include "common/task_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "api/batch_runner.hpp"
#include "api/execution_context.hpp"
#include "common/rng.hpp"
#include "graph/families.hpp"
#include "matrix/kernels.hpp"
#include "stream/dynamic_solver.hpp"
#include "stream/generators.hpp"

namespace qclique {
namespace {

// ---------------------------------------------------------------------------
// Unit contract.
// ---------------------------------------------------------------------------

TEST(TaskPoolUnit, EveryIndexRunsExactlyOnce) {
  TaskPool pool(4);
  for (const std::size_t grain : {std::size_t{1}, std::size_t{7}, std::size_t{100}}) {
    constexpr std::size_t kCount = 100;
    std::vector<std::atomic<int>> hits(kCount);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(0, kCount, grain,
                      [&](std::size_t b, std::size_t e, unsigned) {
                        for (std::size_t i = b; i < e; ++i) ++hits[i];
                      });
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " grain " << grain;
    }
  }
}

TEST(TaskPoolUnit, ChunkBoundariesDependOnlyOnGrain) {
  // Whatever runs a chunk, its begin must sit on a grain boundary and its
  // length must be exactly grain (ragged tail excepted).
  TaskPool pool(8);
  constexpr std::size_t kBegin = 3;
  constexpr std::size_t kEnd = 113;
  constexpr std::size_t kGrain = 10;
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for(kBegin, kEnd, kGrain,
                    [&](std::size_t b, std::size_t e, unsigned) {
                      std::lock_guard<std::mutex> lock(mu);
                      chunks.push_back({b, e});
                    });
  ASSERT_EQ(chunks.size(), (kEnd - kBegin + kGrain - 1) / kGrain);
  for (const auto& [b, e] : chunks) {
    EXPECT_EQ((b - kBegin) % kGrain, 0u);
    EXPECT_EQ(e, std::min(b + kGrain, kEnd));
  }
}

TEST(TaskPoolUnit, EmptyRangeRunsNothing) {
  TaskPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, 1, [&](std::size_t, std::size_t, unsigned) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_FALSE(pool.started());  // nothing to do never spawns workers
}

TEST(TaskPoolUnit, GrainZeroIsTreatedAsOne) {
  TaskPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, 6, 0, [&](std::size_t b, std::size_t e, unsigned) {
    EXPECT_EQ(e, b + 1);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 6);
}

TEST(TaskPoolUnit, SlotsStayInsideThreadsEvenWhenCapped) {
  TaskPool pool(8);
  EXPECT_EQ(pool.threads(), 8u);
  std::atomic<int> bad{0};
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(
      0, 64, 1,
      [&](std::size_t b, std::size_t e, unsigned slot) {
        if (slot >= pool.threads()) ++bad;
        for (std::size_t i = b; i < e; ++i) ++hits[i];
      },
      /*max_workers=*/2);
  EXPECT_EQ(bad.load(), 0);
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(TaskPoolUnit, SingleThreadPoolRunsInlineWithoutWorkers) {
  TaskPool pool(1);
  std::atomic<int> calls{0};
  pool.parallel_for(0, 10, 3, [&](std::size_t b, std::size_t e, unsigned slot) {
    EXPECT_EQ(slot, 0u);
    calls += static_cast<int>(e - b);
  });
  EXPECT_EQ(calls.load(), 10);
  EXPECT_FALSE(pool.started());
}

TEST(TaskPoolUnit, NestedRegionsRunInlineInsteadOfDeadlocking) {
  TaskPool pool(4);
  std::atomic<int> inner_total{0};
  pool.parallel_for(0, 8, 1, [&](std::size_t, std::size_t, unsigned) {
    // A ported surface calling another ported surface (kernel inside a
    // batch job) must make progress on the calling thread.
    pool.parallel_for(0, 4, 1, [&](std::size_t b, std::size_t e, unsigned) {
      inner_total += static_cast<int>(e - b);
    });
  });
  EXPECT_EQ(inner_total.load(), 8 * 4);
}

TEST(TaskPoolUnit, ConcurrentRegionsFromTwoThreadsBothComplete) {
  TaskPool pool(4);
  std::atomic<int> total{0};
  auto run = [&] {
    for (int rep = 0; rep < 50; ++rep) {
      pool.parallel_for(0, 32, 4, [&](std::size_t b, std::size_t e, unsigned) {
        total += static_cast<int>(e - b);
      });
    }
  };
  std::thread other(run);
  run();
  other.join();
  EXPECT_EQ(total.load(), 2 * 50 * 32);
}

TEST(TaskPoolUnit, ResolveHonorsExplicitRequestOverEnv) {
  EXPECT_EQ(resolve_task_pool_threads(5), 5u);
  EXPECT_GE(resolve_task_pool_threads(0), 1u);
}

// ---------------------------------------------------------------------------
// Schedule independence: kernel products.
// ---------------------------------------------------------------------------

DistMatrix random_matrix(std::uint32_t n, Rng& rng) {
  DistMatrix m(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      if (rng.bernoulli(0.2)) continue;  // stay +inf
      m.set(i, j, rng.uniform_i64(-30, 30));
    }
  }
  return m;
}

TEST(TaskPoolKernelSchedule, ProductsBitIdenticalAcrossPoolSizes) {
  const MinPlusKernel& kernel = KernelRegistry::instance().get("parallel");
  const MinPlusKernel& oracle = KernelRegistry::instance().get("naive");
  Rng rng(97);
  for (const std::uint32_t n : {5u, 33u, 64u}) {
    const DistMatrix a = random_matrix(n, rng);
    const DistMatrix b = random_matrix(n, rng);
    std::vector<std::uint32_t> want_wit;
    const DistMatrix want = oracle.product(a, b, {}, &want_wit);
    for (const unsigned pool_size : {1u, 2u, 8u}) {
      TaskPool pool(pool_size);
      KernelConfig config;
      config.task_pool = &pool;
      config.num_threads = pool_size;
      std::vector<std::uint32_t> wit;
      const DistMatrix got = kernel.product(a, b, config, &wit);
      EXPECT_EQ(got, want) << "n=" << n << " pool=" << pool_size << ": "
                           << got.first_difference(want);
      EXPECT_EQ(wit, want_wit) << "witness n=" << n << " pool=" << pool_size;
    }
  }
}

// ---------------------------------------------------------------------------
// Schedule independence: batch scenario grids.
// ---------------------------------------------------------------------------

TEST(TaskPoolBatchSchedule, ScenarioGridCanonicalJsonIdenticalAcrossPoolSizes) {
  ScenarioSpec spec;
  spec.families = {"gnp", "grid"};
  spec.solvers = {"floyd-warshall", "dijkstra"};
  spec.topologies = {"local"};
  spec.kernels = {"blocked"};
  spec.config = family_config(14, 0.3, 1, 9);
  // The spec's knobs are configuration and may stamp reports (threads);
  // hold them fixed and vary only the pool capacity underneath -- the
  // canonical export must not notice the difference.
  spec.workers = 2;
  spec.threads = 2;
  std::string want;
  for (const unsigned pool_size : {1u, 2u, 8u}) {
    ExecutionContext base(7);
    base.set_task_pool(std::make_shared<TaskPool>(pool_size));
    const BatchRunner runner(SolverRegistry::instance(), std::move(base));
    const auto results = runner.run_scenarios(spec);
    ASSERT_FALSE(results.empty());
    for (const auto& r : results) EXPECT_TRUE(r.ok) << r.error;
    const std::string canonical = scenarios_to_json(results, false);
    if (want.empty()) {
      want = canonical;
    } else {
      EXPECT_EQ(canonical, want) << "pool=" << pool_size;
    }
  }
}

// ---------------------------------------------------------------------------
// Schedule independence: incremental dynamic repair.
// ---------------------------------------------------------------------------

void expect_same_stats(const RepairStats& got, const RepairStats& want,
                       unsigned pool_size, std::uint64_t seq) {
  EXPECT_EQ(got.updates, want.updates) << "pool=" << pool_size << " batch=" << seq;
  EXPECT_EQ(got.changed_arcs, want.changed_arcs)
      << "pool=" << pool_size << " batch=" << seq;
  EXPECT_EQ(got.affected_sources, want.affected_sources)
      << "pool=" << pool_size << " batch=" << seq;
}

TEST(TaskPoolRepairSchedule, IncrementalRepairBitIdenticalAcrossPoolSizes) {
  // One replay per pool size in {1, 2, 8}, all compared to a recompute
  // oracle replay and to each other: distances, witnesses, and the
  // RepairStats counters must match bit-for-bit after every batch.
  Rng graph_rng(41);
  const FamilyConfig fc = family_config(24, 0.3, 1, 9);
  const Digraph start = make_family_graph("gnp", fc, graph_rng);
  const StreamConfig sc = stream_for_family("gnp", fc, /*batches=*/6,
                                            /*batch_size=*/10);
  Rng stream_rng(43);
  const auto batches = make_update_stream("hub-delete", start, sc, stream_rng);

  // The schedule-free reference: a pool of one never leaves the caller.
  ExecutionContext ref_ctx(11);
  ref_ctx.set_task_pool(std::make_shared<TaskPool>(1));
  DynamicSolverOptions options;
  options.with_paths = true;
  auto ref = make_dynamic_solver("incremental", options);
  auto oracle = make_dynamic_solver("recompute", options);
  ref->reset(start, ref_ctx);
  oracle->reset(start, ref_ctx);
  std::vector<RepairStats> ref_stats;
  for (const auto& batch : batches) {
    ref_stats.push_back(ref->apply(batch, ref_ctx));
    oracle->apply(batch, ref_ctx);
    ASSERT_EQ(ref->distances(), oracle->distances())
        << "batch " << batch.seq << ": "
        << ref->distances().first_difference(oracle->distances());
  }

  for (const unsigned pool_size : {2u, 8u}) {
    ExecutionContext ctx(11);
    ctx.set_task_pool(std::make_shared<TaskPool>(pool_size));
    ctx.set_num_threads(pool_size);
    auto solver = make_dynamic_solver("incremental", options);
    solver->reset(start, ctx);
    for (std::size_t k = 0; k < batches.size(); ++k) {
      const RepairStats stats = solver->apply(batches[k], ctx);
      expect_same_stats(stats, ref_stats[k], pool_size, batches[k].seq);
    }
    EXPECT_EQ(solver->distances(), ref->distances())
        << "pool=" << pool_size << ": "
        << solver->distances().first_difference(ref->distances());
    EXPECT_EQ(solver->successors(), ref->successors()) << "pool=" << pool_size;
  }
}

TEST(TaskPoolRepairSchedule, ResetParallelSolveMatchesSequential) {
  Rng rng(59);
  const Digraph g = make_family_graph("power-law", family_config(40, 0.3, 1, 9), rng);
  DynamicSolverOptions options;
  options.with_paths = true;

  ExecutionContext seq_ctx(13);
  seq_ctx.set_task_pool(std::make_shared<TaskPool>(1));
  auto seq = make_dynamic_solver("incremental", options);
  seq->reset(g, seq_ctx);

  ExecutionContext par_ctx(13);
  par_ctx.set_task_pool(std::make_shared<TaskPool>(8));
  par_ctx.set_num_threads(8);
  auto par = make_dynamic_solver("incremental", options);
  par->reset(g, par_ctx);

  EXPECT_EQ(par->distances(), seq->distances())
      << par->distances().first_difference(seq->distances());
  EXPECT_EQ(par->successors(), seq->successors());
}

}  // namespace
}  // namespace qclique
