#include "quantum/statevector.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qclique {

StateVector::StateVector(std::size_t dim, std::size_t i0) : amps_(dim) {
  QCLIQUE_CHECK(dim >= 1, "StateVector needs dimension >= 1");
  QCLIQUE_CHECK(i0 < dim, "initial basis state out of range");
  amps_[i0] = 1.0;
}

StateVector StateVector::uniform(std::size_t dim) {
  StateVector s(dim);
  const double a = 1.0 / std::sqrt(static_cast<double>(dim));
  for (auto& x : s.amps_) x = a;
  return s;
}

double StateVector::norm_sq() const {
  double s = 0;
  for (const auto& a : amps_) s += std::norm(a);
  return s;
}

void StateVector::normalize() {
  const double n = std::sqrt(norm_sq());
  QCLIQUE_CHECK(n > 1e-300, "cannot normalize the zero vector");
  for (auto& a : amps_) a /= n;
}

double StateVector::probability(std::size_t i) const {
  QCLIQUE_CHECK(i < amps_.size(), "basis state out of range");
  return std::norm(amps_[i]);
}

double StateVector::probability_of(const std::function<bool(std::size_t)>& pred) const {
  double p = 0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if (pred(i)) p += std::norm(amps_[i]);
  }
  return p;
}

std::size_t StateVector::measure_at(double u) const {
  // Strict-inequality accumulation over supported states only. The seed
  // implementation tested `u <= 0` after subtracting every amplitude, so a
  // quantile landing exactly on a cumulative boundary (e.g. u == 0 with
  // amps_[0] == 0) returned a basis state of probability zero -- an outcome
  // the Born rule forbids.
  std::size_t last_support = amps_.size() - 1;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    const double p = std::norm(amps_[i]);
    if (p <= 0.0) continue;
    last_support = i;
    u -= p;
    if (u < 0) return i;
  }
  // Numerical slack (u at or above the total mass) lands on the last state
  // with nonzero probability; for the zero vector this degrades to the last
  // basis state, as before.
  return last_support;
}

std::size_t StateVector::measure(Rng& rng) const {
  return measure_at(rng.uniform_double() * norm_sq());
}

void StateVector::apply_phase_oracle(const std::function<bool(std::size_t)>& marked) {
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if (marked(i)) amps_[i] = -amps_[i];
  }
}

void StateVector::apply_diffusion() {
  std::complex<double> mean = 0;
  for (const auto& a : amps_) mean += a;
  mean /= static_cast<double>(amps_.size());
  for (auto& a : amps_) a = 2.0 * mean - a;
}

void StateVector::apply_grover_iteration(const std::function<bool(std::size_t)>& marked) {
  apply_phase_oracle(marked);
  apply_diffusion();
}

double StateVector::fidelity(const StateVector& other) const {
  QCLIQUE_CHECK(dim() == other.dim(), "fidelity dimension mismatch");
  std::complex<double> ip = 0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    ip += std::conj(amps_[i]) * other.amps_[i];
  }
  return std::norm(ip);
}

double StateVector::l2_distance(const StateVector& other) const {
  QCLIQUE_CHECK(dim() == other.dim(), "l2_distance dimension mismatch");
  double s = 0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    s += std::norm(amps_[i] - other.amps_[i]);
  }
  return std::sqrt(s);
}

}  // namespace qclique
