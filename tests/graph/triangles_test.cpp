// Tests for the negative-triangle census (paper Definition 1 and the
// Gamma / Delta oracles).
#include "graph/triangles.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace qclique {
namespace {

WeightedGraph small_triangle(std::int64_t a, std::int64_t b, std::int64_t c) {
  WeightedGraph g(3);
  g.set_edge(0, 1, a);
  g.set_edge(0, 2, b);
  g.set_edge(1, 2, c);
  return g;
}

TEST(IsNegativeTriangle, SignBoundary) {
  EXPECT_TRUE(is_negative_triangle(small_triangle(-1, 0, 0), 0, 1, 2));
  EXPECT_FALSE(is_negative_triangle(small_triangle(0, 0, 0), 0, 1, 2));  // sum 0
  EXPECT_FALSE(is_negative_triangle(small_triangle(1, 1, -1), 0, 1, 2));
  EXPECT_TRUE(is_negative_triangle(small_triangle(5, 5, -11), 0, 1, 2));
}

TEST(IsNegativeTriangle, MissingEdgeMeansNoTriangle) {
  WeightedGraph g(3);
  g.set_edge(0, 1, -5);
  g.set_edge(0, 2, -5);
  EXPECT_FALSE(is_negative_triangle(g, 0, 1, 2));
}

TEST(IsNegativeTriangle, DegenerateVerticesRejected) {
  auto g = small_triangle(-1, -1, -1);
  EXPECT_FALSE(is_negative_triangle(g, 0, 0, 2));
  EXPECT_FALSE(is_negative_triangle(g, 1, 2, 2));
}

TEST(Gamma, CountsClosingVertices) {
  // K4 where all edges weigh -1: every pair has two closing vertices.
  WeightedGraph g(4);
  for (std::uint32_t u = 0; u < 4; ++u) {
    for (std::uint32_t v = u + 1; v < 4; ++v) g.set_edge(u, v, -1);
  }
  for (std::uint32_t u = 0; u < 4; ++u) {
    for (std::uint32_t v = u + 1; v < 4; ++v) EXPECT_EQ(gamma(g, u, v), 2u);
  }
}

TEST(Gamma, ZeroWithoutEdge) {
  WeightedGraph g(4);
  g.set_edge(0, 2, -9);
  g.set_edge(1, 2, -9);
  EXPECT_EQ(gamma(g, 0, 1), 0u);  // {0,1} not an edge
}

TEST(GammaAllPairs, MatchesPointwiseGamma) {
  Rng rng(5);
  const auto g = random_weighted_graph(12, 0.5, -10, 10, rng);
  const auto all = gamma_all_pairs(g);
  for (std::uint32_t u = 0; u < 12; ++u) {
    for (std::uint32_t v = 0; v < 12; ++v) {
      if (u == v) continue;
      EXPECT_EQ(all[u * 12 + v], gamma(g, u, v)) << u << "," << v;
    }
  }
}

TEST(EdgesInNegativeTriangles, PlantedGroundTruth) {
  Rng rng(7);
  std::vector<VertexPair> planted;
  const auto g = planted_negative_triangles(18, 3, rng, &planted);
  const auto found = edges_in_negative_triangles(g);
  EXPECT_EQ(found, planted);
}

TEST(EdgesInNegativeTriangles, EmptyOnAllPositive) {
  Rng rng(8);
  const auto g = random_weighted_graph(15, 0.6, 1, 20, rng);
  EXPECT_TRUE(edges_in_negative_triangles(g).empty());
}

TEST(ExistsNegativeTriangleVia, RestrictsToCandidates) {
  // Triangle {0,1,2} negative; {0,1,3} not.
  WeightedGraph g(4);
  g.set_edge(0, 1, -5);
  g.set_edge(0, 2, 1);
  g.set_edge(1, 2, 1);
  g.set_edge(0, 3, 10);
  g.set_edge(1, 3, 10);
  EXPECT_TRUE(exists_negative_triangle_via(g, 0, 1, {2}));
  EXPECT_FALSE(exists_negative_triangle_via(g, 0, 1, {3}));
  EXPECT_TRUE(exists_negative_triangle_via(g, 0, 1, {3, 2}));
  EXPECT_FALSE(exists_negative_triangle_via(g, 0, 1, {}));
}

TEST(CountNegativeTriangles, CountsEachOnce) {
  WeightedGraph g(4);
  for (std::uint32_t u = 0; u < 4; ++u) {
    for (std::uint32_t v = u + 1; v < 4; ++v) g.set_edge(u, v, -1);
  }
  EXPECT_EQ(count_negative_triangles(g), 4u);  // C(4,3)
}

TEST(CountNegativeTriangles, ConsistentWithGammaSum) {
  Rng rng(11);
  const auto g = random_weighted_graph(14, 0.5, -8, 12, rng);
  const auto all = gamma_all_pairs(g);
  std::uint64_t sum = 0;
  for (std::uint32_t u = 0; u < 14; ++u) {
    for (std::uint32_t v = u + 1; v < 14; ++v) sum += all[u * 14 + v];
  }
  // Each triangle contributes to exactly 3 pairs.
  EXPECT_EQ(sum, 3 * count_negative_triangles(g));
}

}  // namespace
}  // namespace qclique
