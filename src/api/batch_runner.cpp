#include "api/batch_runner.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/task_pool.hpp"
#include "exec/executor.hpp"
#include "exec/wire.hpp"
#include "serve/snapshot.hpp"
#include "serve/snapshot_store.hpp"
#include "stream/generators.hpp"
#include "stream/session.hpp"

namespace qclique {

namespace {

/// Picks the executor for one batch. Process mode forks even for a single
/// worker — isolation (a crashing job cannot take the harness down) is the
/// point, not just parallelism. Thread mode fans out on the base context's
/// persistent TaskPool instead of spawning a pool per batch.
void execute_jobs(std::size_t job_count, ExecJobHooks& hooks, unsigned workers,
                  bool process_mode, TaskPool& pool) {
  if (process_mode) {
    ProcessExecutor(workers).execute(job_count, hooks);
  } else {
    ThreadExecutor(workers, &pool).execute(job_count, hooks);
  }
}

/// The static-job hooks: runs one (graph, solver) job per index, pages
/// finished matrices under the context's budget, and round-trips results
/// over the wire codec in process mode.
class BatchJobHooks final : public ExecJobHooks {
 public:
  BatchJobHooks(const std::vector<BatchJob>& jobs,
                std::vector<BatchResult>& results, const SolverRegistry& registry,
                const ExecutionContext& base, unsigned workers)
      : jobs_(jobs),
        results_(results),
        registry_(registry),
        base_(base),
        workers_(workers) {}

  void run(std::size_t i) override {
    BatchResult& out = results_[i];
    out.job_index = i;
    out.solver = jobs_[i].solver;
    out.family = jobs_[i].family;
    out.label = jobs_[i].label;
    try {
      QCLIQUE_CHECK(jobs_[i].graph != nullptr, "batch job without a graph");
      const ApspSolver& solver = registry_.get(jobs_[i].solver);
      // Fork by job index so results do not depend on worker scheduling,
      // and mix the job's salt so callers can vary randomness per job.
      ExecutionContext ctx =
          base_.fork(static_cast<std::uint64_t>(i) * 0x100000001b3ULL +
                     jobs_[i].seed_salt);
      if (!jobs_[i].kernel.empty()) ctx.set_kernel(jobs_[i].kernel);
      if (!jobs_[i].topology.empty()) ctx.set_topology(jobs_[i].topology);
      // The family stamp travels through the context so ApspSolver::solve
      // writes it into the report the same way for every caller (direct
      // solves included), not as a batch-only afterthought.
      ctx.set_family(jobs_[i].family);
      // A fanned-out batch already saturates the pool with one participant
      // per job; letting every job's "parallel" kernel claim the full pool
      // on top would oversubscribe quadratically. Serialize the kernels
      // instead -- results are identical by the kernel contract, only wall
      // time changes. An explicit per-job threads knob wins over that
      // default (it also becomes the report's `threads` stamp via
      // num_threads, identically for every executor).
      if (jobs_[i].threads != 0) {
        ctx.set_num_threads(jobs_[i].threads);
        ctx.kernel_options().config.num_threads = jobs_[i].threads;
      } else if (workers_ > 1) {
        ctx.kernel_options().config.num_threads = 1;
      }
      out.report = solver.solve(*jobs_[i].graph, ctx);
      out.ok = true;
    } catch (const std::exception& e) {
      out.ok = false;
      out.error = e.what();
    }
  }

  void complete(std::size_t i) override {
    // The paging hook: once a result is final in this process (worker
    // thread after run, or the parent after decode), its matrix moves into
    // the shared PageStore when an in-core budget is set, leaving a 1x1
    // placeholder behind. The "distances_fnv" metric was stamped before.
    BatchResult& out = results_[i];
    if (!out.ok || base_.page_store().budget_bytes() == 0) return;
    out.paged_distances =
        base_.page_store().put(std::move(out.report->distances), out.label);
    out.report->distances = DistMatrix(1);
  }

  std::string encode(std::size_t i) override {
    return encode_batch_result(results_[i]);
  }

  void release(std::size_t i) override { results_[i] = BatchResult{}; }

  void decode(std::size_t i, std::string_view payload) override {
    BatchResult r = decode_batch_result(payload);
    QCLIQUE_CHECK(r.job_index == i,
                  "wire payload names a different job than its envelope");
    results_[i] = std::move(r);
  }

  void fail(std::size_t i, const std::string& message) override {
    BatchResult& out = results_[i];
    out = BatchResult{};
    out.job_index = i;
    out.solver = jobs_[i].solver;
    out.family = jobs_[i].family;
    out.label = jobs_[i].label;
    out.ok = false;
    out.error = message;
  }

 private:
  const std::vector<BatchJob>& jobs_;
  std::vector<BatchResult>& results_;
  const SolverRegistry& registry_;
  const ExecutionContext& base_;
  unsigned workers_;
};

}  // namespace

DistMatrix BatchResult::distances() const {
  QCLIQUE_CHECK(ok && report.has_value(),
                "BatchResult::distances() on a failed result");
  if (paged_distances.valid()) return paged_distances.materialize();
  return report->distances;
}

unsigned BatchRunner::resolve_workers(unsigned requested,
                                      std::size_t job_count) const {
  unsigned workers = requested != 0 ? requested : base_.num_threads();
  // 0 resolves like the pool itself: QCLIQUE_THREADS, then one per
  // hardware thread -- so the env knob caps batch fan-out too.
  if (workers == 0) workers = resolve_task_pool_threads(0);
  return static_cast<unsigned>(
      std::min<std::size_t>(workers, job_count > 0 ? job_count : 1));
}

std::vector<BatchResult> BatchRunner::run(const std::vector<BatchJob>& jobs) const {
  return run_with_workers(jobs, resolve_workers(0, jobs.size()),
                          base_.process_workers());
}

std::vector<BatchResult> BatchRunner::run_with_workers(
    const std::vector<BatchJob>& jobs, unsigned workers, bool process_mode) const {
  std::vector<BatchResult> results(jobs.size());
  BatchJobHooks hooks(jobs, results, registry_, base_, workers);
  execute_jobs(jobs.size(), hooks, workers, process_mode, base_.task_pool());

  // Workers are done (joined or reaped): aggregate per-job costs
  // single-threaded. Decoded process-mode reports carry their ledgers, so
  // the aggregate is executor-independent like everything else.
  for (const BatchResult& r : results) {
    if (r.ok) batch_ledger_.absorb(r.report->ledger);
  }
  return results;
}

std::vector<BatchResult> BatchRunner::run_all(const Digraph& g,
                                              std::vector<std::string> solvers) const {
  if (solvers.empty()) {
    const bool negative = g.has_negative_arc();
    for (const std::string& name : registry_.names()) {
      if (negative && !registry_.get(name).capabilities().negative_weights) continue;
      solvers.push_back(name);
    }
  }
  const auto shared = std::make_shared<const Digraph>(g);
  std::vector<BatchJob> jobs;
  jobs.reserve(solvers.size());
  for (const std::string& name : solvers) {
    jobs.push_back(BatchJob{.graph = shared, .solver = name, .kernel = "",
                            .topology = "", .family = "", .seed_salt = 0,
                            .label = name});
  }
  return run(jobs);
}

std::vector<BatchResult> BatchRunner::run_scenarios(const ScenarioSpec& spec) const {
  const std::vector<std::string> families =
      spec.families.empty() ? GraphFamilyRegistry::instance().names()
                            : spec.families;
  const std::vector<std::string> topologies =
      spec.topologies.empty() ? TopologyRegistry::instance().names()
                              : spec.topologies;
  const std::vector<std::string> kernels =
      spec.kernels.empty() ? KernelRegistry::instance().names() : spec.kernels;

  std::vector<BatchJob> jobs;
  for (const std::string& family : families) {
    // Key the family's graph by (graph_seed, family name) -- an FNV-1a
    // fold through splitmix64 -- so the sweep's composition never changes
    // any individual family's graph.
    std::uint64_t fseed = spec.graph_seed ^ 0xcbf29ce484222325ULL;
    for (const char ch : family) {
      fseed = (fseed ^ static_cast<unsigned char>(ch)) * 0x100000001b3ULL;
    }
    Rng rng(splitmix64(fseed));
    const auto graph = std::make_shared<const Digraph>(
        GraphFamilyRegistry::instance().get(family).generate(spec.config, rng));

    std::vector<std::string> solvers = spec.solvers;
    if (solvers.empty()) {
      const bool negative = graph->has_negative_arc();
      for (const std::string& name : registry_.names()) {
        if (negative && !registry_.get(name).capabilities().negative_weights)
          continue;
        solvers.push_back(name);
      }
    }
    for (const std::string& solver : solvers) {
      const bool distributed =
          registry_.contains(solver) &&
          registry_.get(solver).capabilities().distributed;
      for (std::size_t t = 0; t < topologies.size(); ++t) {
        // Centralized oracles never touch the transport; one topology row
        // carries all the information the grid can hold for them.
        if (!distributed && t > 0) break;
        for (const std::string& kernel : kernels) {
          jobs.push_back(BatchJob{
              .graph = graph, .solver = solver, .kernel = kernel,
              .topology = topologies[t], .family = family, .seed_salt = 0,
              .threads = spec.threads,
              .label = family + "/" + solver + "/" + topologies[t] + "/" +
                       kernel});
        }
      }
    }
  }
  if (spec.memory_budget != 0) {
    base_.page_store().set_budget(spec.memory_budget);
  }
  return run_with_workers(jobs, resolve_workers(spec.workers, jobs.size()),
                          spec.process_mode || base_.process_workers());
}

namespace {

/// One generated stream-replay job (inputs shared across the solver axis).
struct StreamJob {
  std::string family;
  std::string stream;
  std::string solver;
  std::shared_ptr<const Digraph> graph;
  std::shared_ptr<const std::vector<UpdateBatch>> batches;
};

/// The stream-replay hooks. No paging: stream results carry counters, not
/// matrices. In process mode the replay's snapshot publications stay in
/// the worker process (see StreamScenarioSpec::process_mode).
class StreamJobHooks final : public ExecJobHooks {
 public:
  StreamJobHooks(const std::vector<StreamJob>& jobs,
                 std::vector<StreamResult>& results,
                 const StreamScenarioSpec& spec, const ExecutionContext& base,
                 unsigned workers)
      : jobs_(jobs),
        results_(results),
        spec_(spec),
        base_(base),
        workers_(workers) {}

  void run(std::size_t i) override {
    const StreamJob& job = jobs_[i];
    StreamResult& out = results_[i];
    out.job_index = i;
    out.family = job.family;
    out.stream = job.stream;
    out.solver = job.solver;
    out.n = job.graph->size();
    const auto t0 = std::chrono::steady_clock::now();
    try {
      ExecutionContext ctx =
          base_.fork(static_cast<std::uint64_t>(i) * 0x100000001b3ULL);
      ctx.set_family(job.family);
      // Same oversubscription policy as the static hooks: the spec's
      // threads knob (feeding the incremental solver's parallel repair
      // and the kernels) wins; otherwise a fanned-out sweep serializes
      // each job's inner parallelism.
      if (spec_.threads != 0) {
        ctx.set_num_threads(spec_.threads);
        ctx.kernel_options().config.num_threads = spec_.threads;
      } else if (workers_ > 1) {
        ctx.set_num_threads(1);
        ctx.kernel_options().config.num_threads = 1;
      }
      StreamSessionOptions options;
      options.solver = job.solver;
      options.dynamic.backend = spec_.backend;
      options.dynamic.with_paths = spec_.with_paths;
      options.label = job.family + "/" + job.stream + "/" + job.solver;
      StreamSession session(*job.graph, ctx, std::move(options));
      ++out.published_versions;

      std::unique_ptr<DynamicApspSolver> oracle;
      if (spec_.verify && job.solver != "recompute") {
        DynamicSolverOptions oracle_options;
        oracle_options.backend = spec_.backend;
        oracle_options.with_paths = false;  // distances are what conformance compares
        oracle = make_dynamic_solver("recompute", oracle_options);
        oracle->reset(*job.graph, ctx);
      }
      for (const UpdateBatch& batch : *job.batches) {
        session.apply(batch);
        ++out.published_versions;
        ++out.batches;
        out.updates += session.last_stats().updates;
        out.changed_arcs += session.last_stats().changed_arcs;
        out.affected_sources += session.last_stats().affected_sources;
        if (oracle) {
          oracle->apply(batch, ctx);
          if (!(oracle->distances() == session.solver().distances())) {
            out.exact = false;
          }
        }
      }
      out.ok = true;
    } catch (const std::exception& e) {
      out.ok = false;
      out.error = e.what();
    }
    out.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  }

  std::string encode(std::size_t i) override {
    return encode_stream_result(results_[i]);
  }

  void release(std::size_t i) override { results_[i] = StreamResult{}; }

  void decode(std::size_t i, std::string_view payload) override {
    StreamResult r = decode_stream_result(payload);
    QCLIQUE_CHECK(r.job_index == i,
                  "wire payload names a different job than its envelope");
    results_[i] = std::move(r);
  }

  void fail(std::size_t i, const std::string& message) override {
    StreamResult& out = results_[i];
    out = StreamResult{};
    out.job_index = i;
    out.family = jobs_[i].family;
    out.stream = jobs_[i].stream;
    out.solver = jobs_[i].solver;
    out.n = jobs_[i].graph->size();
    out.ok = false;
    out.error = message;
  }

 private:
  const std::vector<StreamJob>& jobs_;
  std::vector<StreamResult>& results_;
  const StreamScenarioSpec& spec_;
  const ExecutionContext& base_;
  unsigned workers_;
};

}  // namespace

std::vector<StreamResult> BatchRunner::run_streams(
    const StreamScenarioSpec& spec) const {
  QCLIQUE_CHECK(spec.config.wmin >= 0,
                "run_streams requires non-negative family weights (dynamic "
                "solver contract)");
  const std::vector<std::string> families =
      spec.families.empty() ? GraphFamilyRegistry::instance().names()
                            : spec.families;
  const std::vector<std::string> streams =
      spec.streams.empty() ? UpdateStreamRegistry::instance().names()
                           : spec.streams;
  const std::vector<std::string> solvers =
      spec.solvers.empty() ? DynamicSolverRegistry::instance().names()
                           : spec.solvers;

  // Generate inputs up front, single-threaded: one graph per family (same
  // (graph_seed, family) keying as run_scenarios) and one stream per
  // (family, stream) shared by every solver, so the solver axis compares
  // like for like.
  std::vector<StreamJob> jobs;
  for (const std::string& family : families) {
    std::uint64_t fseed = spec.graph_seed ^ 0xcbf29ce484222325ULL;
    for (const char ch : family) {
      fseed = (fseed ^ static_cast<unsigned char>(ch)) * 0x100000001b3ULL;
    }
    Rng rng(splitmix64(fseed));
    const auto graph = std::make_shared<const Digraph>(
        GraphFamilyRegistry::instance().get(family).generate(spec.config, rng));
    const StreamConfig sc = stream_for_family(family, spec.config,
                                              spec.batches, spec.batch_size);
    for (const std::string& stream : streams) {
      std::uint64_t sseed = fseed;
      for (const char ch : stream) {
        sseed = (sseed ^ static_cast<unsigned char>(ch)) * 0x100000001b3ULL;
      }
      Rng srng(splitmix64(sseed));
      const auto batches = std::make_shared<const std::vector<UpdateBatch>>(
          make_update_stream(stream, *graph, sc, srng));
      for (const std::string& solver : solvers) {
        jobs.push_back(StreamJob{family, stream, solver, graph, batches});
      }
    }
  }

  const unsigned workers = resolve_workers(spec.workers, jobs.size());
  std::vector<StreamResult> results(jobs.size());
  StreamJobHooks hooks(jobs, results, spec, base_, workers);
  execute_jobs(jobs.size(), hooks, workers,
               spec.process_mode || base_.process_workers(),
               base_.task_pool());
  return results;
}

std::vector<BatchResult> BatchRunner::run_kernels(const Digraph& g,
                                                  const std::string& solver,
                                                  std::vector<std::string> kernels) const {
  if (kernels.empty()) kernels = KernelRegistry::instance().names();
  const auto shared = std::make_shared<const Digraph>(g);
  std::vector<BatchJob> jobs;
  jobs.reserve(kernels.size());
  for (const std::string& name : kernels) {
    jobs.push_back(BatchJob{.graph = shared, .solver = solver, .kernel = name,
                            .topology = "", .family = "", .seed_salt = 0,
                            .label = name});
  }
  // One in-process batch worker: this sweep exists to compare kernel wall
  // times, so each job must own the whole machine (a parallel batch would
  // both skew the timings and trip run()'s kernel-thread cap, silently
  // benchmarking "parallel" as "blocked"), and a fork-and-pipe round trip
  // would only add noise to what it measures.
  return run_with_workers(jobs, 1, /*process_mode=*/false);
}

std::vector<std::shared_ptr<const ApspSnapshot>> publish_scenarios(
    const std::vector<BatchResult>& results, SnapshotStore& store) {
  std::vector<std::shared_ptr<const ApspSnapshot>> pins;
  pins.reserve(results.size());
  for (const BatchResult& r : results) {
    if (!r.ok) {
      pins.push_back(nullptr);
      continue;
    }
    if (r.distances_paged()) {
      // Snapshots are in-core owners: page the matrix back in behind the
      // placeholder before publishing.
      ApspReport full = *r.report;
      full.distances = r.paged_distances.materialize();
      pins.push_back(store.publish(
          ApspSnapshot(full, /*successor=*/{}, /*label=*/r.label)));
      continue;
    }
    pins.push_back(store.publish(
        ApspSnapshot(*r.report, /*successor=*/{}, /*label=*/r.label)));
  }
  return pins;
}

std::string stream_scenarios_to_json(const std::vector<StreamResult>& results) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const StreamResult& r = results[i];
    if (i > 0) out << ",";
    out << "{\"family\":" << json_quote(r.family)
        << ",\"stream\":" << json_quote(r.stream)
        << ",\"solver\":" << json_quote(r.solver)
        << ",\"ok\":" << (r.ok ? "true" : "false");
    if (r.ok) {
      out << ",\"n\":" << r.n << ",\"batches\":" << r.batches
          << ",\"updates\":" << r.updates
          << ",\"changed_arcs\":" << r.changed_arcs
          << ",\"affected_sources\":" << r.affected_sources
          << ",\"exact\":" << (r.exact ? "true" : "false")
          << ",\"published_versions\":" << r.published_versions
          << ",\"wall_ms\":" << r.wall_ms;
    } else {
      out << ",\"error\":" << json_quote(r.error);
    }
    out << "}";
  }
  out << "]";
  return out.str();
}

std::string scenarios_to_json(const std::vector<BatchResult>& results,
                              bool include_timings) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BatchResult& r = results[i];
    if (i > 0) out << ",";
    out << "{\"label\":" << json_quote(r.label)
        << ",\"family\":" << json_quote(r.family)
        << ",\"solver\":" << json_quote(r.solver)
        << ",\"ok\":" << (r.ok ? "true" : "false");
    if (r.ok) {
      out << ",\"report\":" << r.report->to_json(include_timings);
    } else {
      out << ",\"error\":" << json_quote(r.error);
    }
    out << "}";
  }
  out << "]";
  return out.str();
}

}  // namespace qclique
