// The unified APSP solver interface.
//
// Every APSP implementation in the repository — the quantum Theorem 1
// pipeline, its classical-search twin, the Censor-Hillel semiring baseline,
// and the centralized oracles — plugs in behind one abstract ApspSolver.
// Harnesses (benches, examples, BatchRunner, tests) drive solvers only
// through this interface, so adding a backend or a scenario is a one-file
// change: implement do_solve, register the solver, and every harness can
// run it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "api/execution_context.hpp"
#include "graph/digraph.hpp"
#include "matrix/dist_matrix.hpp"

namespace qclique {

class ApspSnapshot;

/// Static properties a harness can query before dispatching a graph.
struct SolverCapabilities {
  /// Accepts negative arc weights (negative cycles are never accepted).
  bool negative_weights = true;
  /// Runs on the CONGEST-CLIQUE simulator and reports genuine round costs;
  /// false means a centralized oracle whose `rounds` is always 0.
  bool distributed = false;
  /// Uses the quantum search layer (Grover / multi-search).
  bool quantum = false;
};

/// Uniform result of one solve run, whatever the backend.
struct ApspReport {
  std::string solver;        // registry name of the backend that ran
  std::string topology;      // transport the run was measured on
  std::string kernel;        // min-plus kernel the run was configured with
  /// Graph family the input was drawn from (GraphFamilyRegistry key).
  /// Stamped by scenario harnesses (BatchRunner jobs carrying a family);
  /// empty for ad-hoc inputs.
  std::string family;
  std::uint32_t n = 0;       // input size
  /// The context's num_threads() knob at solve time: the inner-parallelism
  /// grant the run was configured with (0 = whole pool). A configuration
  /// stamp like `kernel`, not a measurement — results never depend on it —
  /// and identical across executors, so it lives in the canonical to_json.
  unsigned threads = 0;
  DistMatrix distances;      // the APSP matrix
  std::uint64_t rounds = 0;  // simulated CONGEST-CLIQUE rounds (0 = oracle)
  RoundLedger ledger;        // per-phase breakdown of `rounds`
  /// Backend-specific counters ("products", "find_edges_calls", ...) plus
  /// the canonical pair every backend gets ("messages", "oracle_calls",
  /// stamped from the ledger by ApspSolver::solve when the backend did not
  /// set them itself -- zero for centralized oracles, so the export schema
  /// is uniform across backends). Uniformly typed so tables and exports
  /// need no per-backend code.
  std::map<std::string, std::uint64_t> metrics;
  double wall_ms = 0.0;      // wall-clock time of the solve call
  /// Per-phase wall-clock profile of this run (keyed by ledger phase;
  /// delta of the context's PhaseProfiler across the solve call). Empty
  /// for centralized oracles — they build no network.
  std::map<std::string, PhaseProfiler::Timing> profile;

  explicit ApspReport(std::uint32_t n_) : n(n_), distances(n_) {}

  /// Machine-readable summary (single JSON object, ledger inlined).
  /// `include_timings = false` omits the two nondeterministic fields
  /// (wall_ms and the per-phase profile), leaving only fields that are
  /// identical across reruns, worker counts, and executors — the canonical
  /// form scenario exports diff byte-for-byte (the distance matrix itself
  /// is covered by the "distances_fnv" metric ApspSolver::solve stamps).
  std::string to_json(bool include_timings = true) const;
};

/// Knobs for ApspSolver::serve (solve + publish into the context's
/// SnapshotStore).
struct ServeOptions {
  /// Also build the witness successor matrix (core/paths.hpp) so the
  /// snapshot can answer path queries. Costs extra simulated rounds
  /// (charged to the context ledger and the "path_rounds" metric).
  bool with_paths = false;
  /// Free-form tag stamped into the snapshot metadata (scenario label,
  /// graph id).
  std::string label;
};

/// Abstract APSP backend. Implementations are stateless adapters: all
/// mutable run state lives in the ExecutionContext, so one solver instance
/// may serve many concurrent jobs as long as each has its own context.
class ApspSolver {
 public:
  virtual ~ApspSolver() = default;

  /// Registry key, e.g. "quantum" or "floyd-warshall".
  virtual std::string name() const = 0;

  /// One-line human description (shown by harness listings).
  virtual std::string description() const = 0;

  virtual SolverCapabilities capabilities() const = 0;

  /// Solves APSP on g under ctx. Non-virtual wrapper: validates the input
  /// against capabilities(), times the run, stamps the report with the
  /// solver name, and absorbs the run's ledger into ctx.ledger().
  /// Throws SimulationError on precondition violations (negative cycle,
  /// negative weights for a non-negative-only backend).
  ApspReport solve(const Digraph& g, ExecutionContext& ctx) const;

  /// The solve -> serve bridge: solves APSP on g, optionally builds the
  /// witness successor matrix for path queries, wraps the result in an
  /// immutable ApspSnapshot, and publishes it into ctx.serve(). Returns
  /// the published pin (its metadata carries the new version). Readers on
  /// other threads observe the swap atomically and are never blocked.
  std::shared_ptr<const ApspSnapshot> serve(const Digraph& g,
                                            ExecutionContext& ctx,
                                            const ServeOptions& options = {}) const;

 protected:
  /// Backend hook: fill distances / rounds / ledger / metrics.
  virtual ApspReport do_solve(const Digraph& g, ExecutionContext& ctx) const = 0;
};

}  // namespace qclique
