// Tests for the Grover drivers: the closed-form success probability, the
// optimal iteration schedule, and the BBHT unknown-count search. These
// validate the sqrt(|X|) oracle-call scaling that Theorem 2's round bound
// inherits.
#include "quantum/grover.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "quantum/statevector.hpp"

namespace qclique {
namespace {

TEST(GroverMath, OptimalIterationsMatchTextbook) {
  // N=4, M=1: theta = pi/6, pi/(4 theta) = 1.5 -> k = 1 (exact success).
  EXPECT_EQ(grover_optimal_iterations(4, 1), 1u);
  EXPECT_NEAR(grover_success_probability(4, 1, 1), 1.0, 1e-12);
  // Large N: k ~ (pi/4) sqrt(N).
  const std::uint64_t k = grover_optimal_iterations(1 << 16, 1);
  EXPECT_NEAR(static_cast<double>(k), M_PI / 4.0 * 256.0, 2.0);
}

TEST(GroverMath, ManySolutionsNeedNoIterations) {
  EXPECT_EQ(grover_optimal_iterations(8, 4), 0u);
  EXPECT_EQ(grover_optimal_iterations(8, 8), 0u);
}

TEST(GroverMath, SuccessProbabilityAtOptimalIsHigh) {
  for (std::size_t dim : {16u, 64u, 256u, 1024u}) {
    for (std::size_t m : {1u, 2u, 5u}) {
      const std::uint64_t k = grover_optimal_iterations(dim, m);
      EXPECT_GT(grover_success_probability(dim, m, k), 0.8)
          << "dim=" << dim << " m=" << m;
    }
  }
}

TEST(GroverMath, ZeroSolutionsMeansZeroProbability) {
  EXPECT_EQ(grover_success_probability(64, 0, 10), 0.0);
}

// Cross-validation: the closed form sin^2((2k+1) theta) must match the full
// state-vector simulation exactly. This is the property that justifies the
// fast analytic path in multi_search.
TEST(GroverCrossValidation, ClosedFormMatchesStateVector) {
  const std::size_t dim = 37;  // deliberately not a power of two
  const std::vector<std::size_t> marked{3, 17, 30};
  StateVector psi = StateVector::uniform(dim);
  const auto oracle = [&](std::size_t i) {
    return std::find(marked.begin(), marked.end(), i) != marked.end();
  };
  for (std::uint64_t k = 0; k <= 12; ++k) {
    const double analytic = grover_success_probability(dim, marked.size(), k);
    const double simulated = psi.probability_of(oracle);
    EXPECT_NEAR(simulated, analytic, 1e-10) << "k=" << k;
    psi.apply_grover_iteration(oracle);
  }
}

TEST(SearchKnownCount, FindsUniqueSolution) {
  Rng rng(1);
  int hits = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const auto res = search_known_count(64, 1, [](std::size_t i) { return i == 13; }, rng);
    if (res.found.has_value()) {
      EXPECT_EQ(*res.found, 13u);
      ++hits;
    }
  }
  EXPECT_GE(hits, 48);  // per-run success ~0.996 after retries
}

TEST(SearchKnownCount, IterationCountNearOptimal) {
  Rng rng(2);
  const auto res = search_known_count(1024, 1, [](std::size_t i) { return i == 5; }, rng);
  ASSERT_TRUE(res.found.has_value());
  EXPECT_LE(res.iterations, 3 * grover_optimal_iterations(1024, 1));
}

TEST(SearchBBHT, FindsSolutionWithUnknownCount) {
  Rng rng(3);
  for (std::size_t dim : {16u, 100u, 333u}) {
    int found = 0;
    for (int trial = 0; trial < 20; ++trial) {
      const auto res =
          search_bbht(dim, [dim](std::size_t i) { return i == dim / 2; }, rng);
      if (res.found.has_value()) {
        EXPECT_EQ(*res.found, dim / 2);
        ++found;
      }
    }
    EXPECT_GE(found, 19) << "dim=" << dim;
  }
}

TEST(SearchBBHT, ConcludesNoSolution) {
  Rng rng(4);
  const auto res = search_bbht(64, [](std::size_t) { return false; }, rng);
  EXPECT_FALSE(res.found.has_value());
  // Budget respected: iterations bounded by cutoff * sqrt(dim) + slack.
  EXPECT_LE(res.iterations, static_cast<std::uint64_t>(9.0 * 8.0) + 16);
}

TEST(SearchBBHT, ManySolutionsFoundQuickly) {
  Rng rng(5);
  // Half the domain marked: expected O(1) iterations.
  OnlineStats iters;
  for (int trial = 0; trial < 30; ++trial) {
    const auto res = search_bbht(256, [](std::size_t i) { return i % 2 == 0; }, rng);
    ASSERT_TRUE(res.found.has_value());
    EXPECT_EQ(*res.found % 2, 0u);
    iters.add(static_cast<double>(res.iterations));
  }
  EXPECT_LT(iters.mean(), 6.0);
}

// The sqrt scaling itself: mean BBHT oracle calls on a single-solution
// domain grow like sqrt(dim). Fit the exponent over a dim sweep.
TEST(SearchBBHT, OracleCallsScaleAsSqrtDim) {
  Rng rng(6);
  std::vector<double> dims, calls;
  for (std::size_t dim : {64u, 256u, 1024u, 4096u}) {
    OnlineStats s;
    for (int trial = 0; trial < 40; ++trial) {
      const auto res =
          search_bbht(dim, [dim](std::size_t i) { return i == dim - 1; }, rng);
      s.add(static_cast<double>(res.oracle_calls));
    }
    dims.push_back(static_cast<double>(dim));
    calls.push_back(s.mean());
  }
  const LinearFit fit = fit_power_law(dims, calls);
  EXPECT_NEAR(fit.slope, 0.5, 0.15);
}

}  // namespace
}  // namespace qclique
