#include "exec/executor.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/task_pool.hpp"
#include "exec/wire.hpp"

#if !defined(_WIN32)
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace qclique {

void ThreadExecutor::execute(std::size_t job_count, ExecJobHooks& hooks) const {
  unsigned workers = workers_;
  if (workers == 0) workers = 1;
  if (workers <= 1 || job_count <= 1) {
    for (std::size_t i = 0; i < job_count; ++i) {
      hooks.run(i);
      hooks.complete(i);
    }
    return;
  }
  // Grain 1 is the old atomic-counter behavior: jobs are coarse and
  // uneven (different solvers, families, n), so per-job claiming is the
  // load balance that matters. Merge order is up to the hooks (complete()
  // runs on the claiming participant), exactly as before.
  TaskPool& pool = pool_ ? *pool_ : TaskPool::instance();
  pool.parallel_for(
      0, job_count, 1,
      [&](std::size_t b, std::size_t e, unsigned) {
        for (std::size_t i = b; i < e; ++i) {
          hooks.run(i);
          hooks.complete(i);
        }
      },
      workers);
}

#if defined(_WIN32)

void ProcessExecutor::execute(std::size_t, ExecJobHooks&) const {
  throw SimulationError("ProcessExecutor requires a POSIX platform (fork)");
}

#else

namespace {

/// Writes the whole buffer, retrying short writes and EINTR. Returns false
/// on any hard error (e.g. the parent closed its read end).
bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t wrote = ::write(fd, data, size);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += wrote;
    size -= static_cast<std::size_t>(wrote);
  }
  return true;
}

/// The worker body: runs this worker's slice of the batch, streaming one
/// envelope line per job, then the done sentinel. Never returns normally —
/// exits via _exit so no parent-owned atexit/static state runs twice.
[[noreturn]] void worker_main(std::size_t job_count, ExecJobHooks& hooks,
                              unsigned worker, unsigned workers, int fd) {
  std::size_t reported = 0;
  for (std::size_t i = worker; i < job_count; i += workers) {
    hooks.run(i);
    std::string line = "{\"exec_proto\":" + std::to_string(kWireVersion) +
                       ",\"job\":" + std::to_string(i) +
                       ",\"payload\":" + hooks.encode(i) + "}\n";
    hooks.release(i);
    if (!write_all(fd, line.data(), line.size())) _exit(3);
    ++reported;
  }
  const std::string done = "{\"exec_proto\":" + std::to_string(kWireVersion) +
                           ",\"done\":" + std::to_string(reported) + "}\n";
  if (!write_all(fd, done.data(), done.size())) _exit(3);
  ::close(fd);
  _exit(0);
}

struct WorkerState {
  pid_t pid = -1;
  int fd = -1;           // parent's read end; -1 once EOF is seen
  std::string buffer;    // bytes read but not yet terminated by '\n'
  bool done_seen = false;
  std::size_t reported = 0;
};

std::string describe_exit(int status) {
  if (WIFEXITED(status)) {
    return "exited with status " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return "was killed by signal " + std::to_string(WTERMSIG(status));
  }
  return "stopped unexpectedly";
}

}  // namespace

void ProcessExecutor::execute(std::size_t job_count, ExecJobHooks& hooks) const {
  if (job_count == 0) return;
  unsigned workers = workers_;
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, job_count));

  // All pipes first, then all forks: after the loop the parent holds only
  // read ends, and no child holds another pipe's write end, so a worker's
  // EOF always means that worker (and only it) is gone.
  std::vector<std::array<int, 2>> pipes(workers);
  for (unsigned w = 0; w < workers; ++w) {
    QCLIQUE_CHECK(::pipe(pipes[w].data()) == 0,
                  "ProcessExecutor: pipe() failed");
  }

  std::vector<WorkerState> states(workers);
  for (unsigned w = 0; w < workers; ++w) {
    const pid_t pid = ::fork();
    QCLIQUE_CHECK(pid >= 0, "ProcessExecutor: fork() failed");
    if (pid == 0) {
      for (unsigned o = 0; o < workers; ++o) {
        ::close(pipes[o][0]);
        if (o != w) ::close(pipes[o][1]);
      }
      worker_main(job_count, hooks, w, workers, pipes[w][1]);
    }
    states[w].pid = pid;
    states[w].fd = pipes[w][0];
    ::close(pipes[w][1]);
  }

  std::vector<char> received(job_count, 0);
  const auto settle = [&](std::size_t i, const std::string& error) {
    if (received[i]) return;
    received[i] = 1;
    hooks.fail(i, error);
  };

  const auto handle_line = [&](unsigned w, std::string_view line) {
    std::size_t job = job_count;  // sentinel: "no job extracted yet"
    try {
      WireReader r(line);
      r.expect("{\"exec_proto\":" + std::to_string(kWireVersion) + ",");
      if (r.try_consume("\"done\":")) {
        states[w].done_seen = true;
        const std::uint64_t count = r.u64();
        r.expect("}");
        QCLIQUE_CHECK(r.at_end() && count == states[w].reported,
                      "worker sentinel does not match its reported jobs");
        return;
      }
      r.expect("\"job\":");
      job = r.u64();
      QCLIQUE_CHECK(job < job_count && job % workers == w && !received[job],
                    "worker reported a job it does not own");
      r.expect(",\"payload\":");
      QCLIQUE_CHECK(!line.empty() && line.back() == '}',
                    "worker line is not a closed envelope");
      hooks.decode(job, line.substr(r.pos(), line.size() - r.pos() - 1));
      received[job] = 1;
      ++states[w].reported;
      hooks.complete(job);
    } catch (const std::exception& e) {
      // A malformed line fails the job it named (when it got that far);
      // a line too corrupt to name a job is dropped here and its job is
      // attributed at worker exit instead.
      if (job < job_count) {
        settle(job, std::string("process worker sent a malformed result: ") +
                        e.what());
      }
    }
  };

  unsigned open_fds = workers;
  std::vector<pollfd> fds;
  char chunk[65536];
  while (open_fds > 0) {
    fds.clear();
    for (const WorkerState& s : states) {
      if (s.fd >= 0) fds.push_back(pollfd{s.fd, POLLIN, 0});
    }
    if (::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1) < 0) {
      if (errno == EINTR) continue;
      QCLIQUE_CHECK(false, "ProcessExecutor: poll() failed");
    }
    for (unsigned w = 0; w < workers; ++w) {
      WorkerState& s = states[w];
      if (s.fd < 0) continue;
      bool ready = false;
      for (const pollfd& p : fds) {
        if (p.fd == s.fd && (p.revents & (POLLIN | POLLHUP | POLLERR))) {
          ready = true;
          break;
        }
      }
      if (!ready) continue;
      const ssize_t got = ::read(s.fd, chunk, sizeof(chunk));
      if (got < 0) {
        if (errno == EINTR) continue;
        QCLIQUE_CHECK(false, "ProcessExecutor: read() failed");
      }
      if (got > 0) {
        s.buffer.append(chunk, static_cast<std::size_t>(got));
        std::size_t start = 0;
        for (std::size_t nl = s.buffer.find('\n', start);
             nl != std::string::npos; nl = s.buffer.find('\n', start)) {
          handle_line(w, std::string_view(s.buffer).substr(start, nl - start));
          start = nl + 1;
        }
        s.buffer.erase(0, start);
        continue;
      }
      // EOF: the worker is gone. Reap it and attribute every job it owned
      // but never reported.
      ::close(s.fd);
      s.fd = -1;
      --open_fds;
      int status = 0;
      pid_t reaped;
      do {
        reaped = ::waitpid(s.pid, &status, 0);
      } while (reaped < 0 && errno == EINTR);
      std::string why;
      if (reaped != s.pid) {
        why = "process worker " + std::to_string(w) + " could not be reaped";
      } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0 ||
                 !s.done_seen) {
        why = "process worker " + std::to_string(w) + " " +
              describe_exit(status) + " before reporting this job";
      } else {
        why = "process worker " + std::to_string(w) +
              " exited cleanly without reporting this job";
      }
      for (std::size_t i = w; i < job_count; i += workers) settle(i, why);
    }
  }
}

#endif  // !defined(_WIN32)

}  // namespace qclique
