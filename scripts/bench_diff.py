#!/usr/bin/env python3
"""Compare fresh bench JSON artifacts against the committed baselines.

    usage: bench_diff.py [options] FRESH.json [FRESH.json ...]

Each fresh artifact is matched to a baseline in --baseline-dir by its
"bench" field (every export carries one, plus a "schema_version" so this
tool can evolve without silent misparses). A comparison only runs when the
baseline and the fresh run were taken at the same pinned n -- wall times at
different sizes are not comparable -- otherwise the file is skipped with a
note.

Per bench kind:

  pipeline_profile  Per-(solver, family, phase) comparison. The default
                    "share" mode compares each phase's share of its run's
                    profiled_ms, which is robust across build types and
                    machines (an absolute-ms baseline taken on one box
                    would flag every slower box as a regression). Phases
                    below --min-share of the baseline profile are ignored
                    (tiny phases have noisy shares). --mode absolute
                    compares raw wall_ms instead, for pinned same-machine
                    trend tracking.
  query_serving     Per-(mix, threads, kind) queries/sec must not drop by
                    more than the threshold.
  dynamic_apsp      Per-(family, stream) incremental-over-recompute speedup
                    must not drop by more than the threshold.
  scenario_matrix   Per-cell (keyed by scenario label) agreement on the
                    deterministic fields -- ok, rounds, and the
                    distances_fnv fingerprint of the distance matrix. Any
                    mismatch is a correctness regression regardless of
                    threshold: the grid is bit-reproducible across reruns,
                    worker counts, and executors. On top of that the total
                    grid wall time must stay inside the threshold envelope
                    of the baseline; the envelope is skipped (with a note)
                    when the exec knobs (workers / process / budget) differ
                    between baseline and fresh, since an out-of-core or
                    multi-process run's wall time is not comparable to an
                    in-core one.
  distance_product  Per-(n, kernel, threads) kernel throughput. The default
                    --kernel-mode relative compares each kernel's speedup
                    over the same artifact's naive oracle (machine-robust,
                    like pipeline share mode); --kernel-mode absolute
                    compares raw ns/product for pinned same-machine trend
                    tracking. A drop beyond the threshold fails. When the
                    baseline and fresh runs dispatched different ISA tiers,
                    simd/auto rows are skipped (their speedups are not
                    comparable across tiers); the scalar kernels still
                    diff.

Exit status: 0 = no regressions, 1 = at least one regression, 2 = bad
invocation or unparseable input.
"""

import argparse
import json
import pathlib
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    if not isinstance(data, dict) or "bench" not in data:
        raise ValueError(f"{path}: not a bench artifact (no 'bench' field)")
    return data


def index_baselines(baseline_dir):
    """bench-name -> (path, parsed JSON) for every baseline artifact."""
    baselines = {}
    for path in sorted(pathlib.Path(baseline_dir).glob("*.json")):
        try:
            data = load(path)
        except (ValueError, json.JSONDecodeError) as e:
            print(f"bench_diff: skipping baseline {path}: {e}")
            continue
        baselines[data["bench"]] = (path, data)
    return baselines


def ratio_regressed(base, fresh, threshold):
    """True when `fresh` exceeds `base` by more than `threshold` (fraction)."""
    return base > 0 and fresh > base * (1.0 + threshold)


def drop_regressed(base, fresh, threshold):
    """True when `fresh` falls short of `base` by more than `threshold`."""
    return base > 0 and fresh < base * (1.0 - threshold)


def diff_pipeline(base, fresh, args):
    regressions = []
    base_runs = {(r["solver"], r["family"]): r for r in base.get("runs", [])}
    for run in fresh.get("runs", []):
        key = (run["solver"], run["family"])
        if key not in base_runs:
            continue
        brun = base_runs[key]
        btotal = brun.get("profiled_ms", 0.0)
        ftotal = run.get("profiled_ms", 0.0)
        for phase, timing in run.get("phases", {}).items():
            btiming = brun.get("phases", {}).get(phase)
            if btiming is None:
                continue
            if args.mode == "share":
                if btotal <= 0 or ftotal <= 0:
                    continue
                bval = btiming["wall_ms"] / btotal
                fval = timing["wall_ms"] / ftotal
                if bval < args.min_share:
                    continue
                what = "share of profiled_ms"
            else:
                bval = btiming["wall_ms"]
                fval = timing["wall_ms"]
                what = "wall_ms"
            if ratio_regressed(bval, fval, args.threshold):
                regressions.append(
                    f"{run['solver']}/{run['family']}/{phase}: {what} "
                    f"{bval:.4f} -> {fval:.4f} "
                    f"(+{100.0 * (fval / bval - 1.0):.1f}%)")
    return regressions


def diff_query_serving(base, fresh, args):
    regressions = []
    base_runs = {(r["mix"], r["threads"], r["kind"]): r
                 for r in base.get("runs", [])}
    for run in fresh.get("runs", []):
        key = (run["mix"], run["threads"], run["kind"])
        if key not in base_runs:
            continue
        bval = base_runs[key]["queries_per_sec"]
        fval = run["queries_per_sec"]
        if drop_regressed(bval, fval, args.threshold):
            regressions.append(
                f"{run['mix']}/{run['threads']}t/{run['kind']}: "
                f"queries/sec {bval:.0f} -> {fval:.0f} "
                f"(-{100.0 * (1.0 - fval / bval):.1f}%)")
    return regressions


def diff_dynamic_apsp(base, fresh, args):
    regressions = []
    # schema_version 2 keys runs by (family, stream, threads); version-1
    # baselines had no threads axis, so absent fields default to 1 and the
    # 1-thread rows still diff against an old baseline.
    base_runs = {(r["family"], r["stream"], r.get("threads", 1)): r
                 for r in base.get("runs", [])}
    for run in fresh.get("runs", []):
        key = (run["family"], run["stream"], run.get("threads", 1))
        if key not in base_runs:
            continue
        bval = base_runs[key]["speedup"]
        fval = run["speedup"]
        if drop_regressed(bval, fval, args.threshold):
            regressions.append(
                f"{run['family']}/{run['stream']}/{key[2]}t: speedup "
                f"{bval:.2f}x -> {fval:.2f}x "
                f"(-{100.0 * (1.0 - fval / bval):.1f}%)")
    return regressions


def diff_distance_product(base, fresh, args):
    regressions = []
    isa_differs = base.get("isa") != fresh.get("isa")
    if isa_differs:
        print(f"bench_diff: note: ISA tier differs (baseline "
              f"{base.get('isa')}, fresh {fresh.get('isa')}); "
              f"simd/auto rows skipped")
    base_runs = {(r["n"], r["kernel"], r["threads"]): r
                 for r in base.get("runs", [])}
    for run in fresh.get("runs", []):
        key = (run["n"], run["kernel"], run["threads"])
        if key not in base_runs:
            continue
        if run["kernel"] == "naive":
            continue  # the normalizer: its relative speedup is 1 by definition
        if isa_differs and run["kernel"] in ("simd", "auto"):
            continue
        brun = base_runs[key]
        if args.kernel_mode == "relative":
            bval = brun["speedup_vs_naive"]
            fval = run["speedup_vs_naive"]
            if drop_regressed(bval, fval, args.threshold):
                regressions.append(
                    f"{run['kernel']}/n={run['n']}/{run['threads']}t: "
                    f"throughput vs naive {bval:.2f}x -> {fval:.2f}x "
                    f"(-{100.0 * (1.0 - fval / bval):.1f}%)")
        else:
            bval = brun["ns_per_product"]
            fval = run["ns_per_product"]
            if ratio_regressed(bval, fval, args.threshold):
                regressions.append(
                    f"{run['kernel']}/n={run['n']}/{run['threads']}t: "
                    f"ns/product {bval:.0f} -> {fval:.0f} "
                    f"(+{100.0 * (fval / bval - 1.0):.1f}%)")
    return regressions


def diff_scenario_matrix(base, fresh, args):
    regressions = []
    base_cells = {c["label"]: c for c in base.get("scenarios", [])}
    base_wall = fresh_wall = 0.0
    for cell in fresh.get("scenarios", []):
        bcell = base_cells.get(cell["label"])
        if bcell is None:
            continue
        # Deterministic fields first: these are bit-reproducible, so any
        # drift is a correctness regression, not a perf one.
        if cell.get("ok") != bcell.get("ok"):
            regressions.append(
                f"{cell['label']}: ok {bcell.get('ok')} -> {cell.get('ok')}")
            continue
        if not cell.get("ok"):
            continue
        brep, frep = bcell["report"], cell["report"]
        if frep.get("rounds") != brep.get("rounds"):
            regressions.append(
                f"{cell['label']}: rounds {brep.get('rounds')} -> "
                f"{frep.get('rounds')}")
        bfnv = brep.get("metrics", {}).get("distances_fnv")
        ffnv = frep.get("metrics", {}).get("distances_fnv")
        if bfnv is not None and ffnv != bfnv:
            regressions.append(
                f"{cell['label']}: distances_fnv {bfnv} -> {ffnv}")
        base_wall += brep.get("wall_ms", 0.0)
        fresh_wall += frep.get("wall_ms", 0.0)
    exec_knobs = ("workers", "process", "budget")
    if any(base.get(k) != fresh.get(k) for k in exec_knobs):
        print("bench_diff: note: exec knobs differ "
              f"(baseline {[base.get(k) for k in exec_knobs]}, fresh "
              f"{[fresh.get(k) for k in exec_knobs]}); wall-time envelope "
              f"skipped")
    elif ratio_regressed(base_wall, fresh_wall, args.threshold):
        regressions.append(
            f"grid wall time {base_wall:.2f}ms -> {fresh_wall:.2f}ms "
            f"(+{100.0 * (fresh_wall / base_wall - 1.0):.1f}%)")
    return regressions


DIFFERS = {
    "pipeline_profile": diff_pipeline,
    "query_serving": diff_query_serving,
    "dynamic_apsp": diff_dynamic_apsp,
    "distance_product": diff_distance_product,
    "scenario_matrix": diff_scenario_matrix,
}


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("fresh", nargs="+", help="fresh bench JSON artifacts")
    parser.add_argument("--baseline-dir", default="bench/baselines",
                        help="directory of committed baseline artifacts")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="regression threshold as a fraction (default 0.25)")
    parser.add_argument("--mode", choices=["share", "absolute"], default="share",
                        help="pipeline comparison mode (default share)")
    parser.add_argument("--min-share", type=float, default=0.05,
                        help="ignore phases below this share of the baseline "
                             "profile in share mode (default 0.05)")
    parser.add_argument("--kernel-mode", choices=["relative", "absolute"],
                        default="relative",
                        help="distance_product comparison mode: speedup over "
                             "the same artifact's naive oracle, or raw "
                             "ns/product (default relative)")
    args = parser.parse_args()

    try:
        baselines = index_baselines(args.baseline_dir)
    except OSError as e:
        print(f"bench_diff: cannot read baseline dir: {e}")
        return 2

    failed = False
    for fresh_path in args.fresh:
        try:
            fresh = load(fresh_path)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"bench_diff: {e}")
            return 2
        bench = fresh["bench"]
        if bench not in baselines:
            print(f"bench_diff: {fresh_path}: no baseline for bench "
                  f"'{bench}' in {args.baseline_dir}; skipped")
            continue
        base_path, base = baselines[bench]
        if base.get("schema_version") != fresh.get("schema_version"):
            print(f"bench_diff: {fresh_path}: schema_version "
                  f"{fresh.get('schema_version')} != baseline "
                  f"{base.get('schema_version')} ({base_path}); skipped")
            continue
        if base.get("n") != fresh.get("n"):
            print(f"bench_diff: {fresh_path}: n={fresh.get('n')} does not "
                  f"match baseline n={base.get('n')} ({base_path}); skipped")
            continue
        differ = DIFFERS.get(bench)
        if differ is None:
            print(f"bench_diff: {fresh_path}: no comparator for bench "
                  f"'{bench}'; skipped")
            continue
        regressions = differ(base, fresh, args)
        if regressions:
            failed = True
            print(f"bench_diff: REGRESSION {fresh_path} vs {base_path} "
                  f"(threshold {100.0 * args.threshold:.0f}%):")
            for r in regressions:
                print(f"  {r}")
        else:
            print(f"bench_diff: OK {fresh_path} vs {base_path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
