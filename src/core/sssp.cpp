#include "core/sssp.hpp"

#include <span>

#include "common/error.hpp"

namespace qclique {

SsspResult quantum_sssp(const Digraph& g, std::uint32_t source,
                        const QuantumApspOptions& options, Rng& rng) {
  QCLIQUE_CHECK(source < g.size(), "sssp source out of range");
  const QuantumApspResult apsp = quantum_apsp(g, options, rng);
  SsspResult res;
  const std::span<const std::int64_t> row = apsp.distances.row_span(source);
  res.distances.assign(row.begin(), row.end());
  res.rounds = apsp.rounds;
  res.ledger = apsp.ledger;
  return res;
}

}  // namespace qclique
