// Property tests for the network simulator under randomized traffic:
// conservation (every sent message is delivered exactly once), per-link
// FIFO order, and round-count equivalence with the max-queue invariant.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "congest/lenzen.hpp"
#include "congest/network.hpp"

namespace qclique {
namespace {

struct TrafficCase {
  std::uint32_t n;
  std::uint32_t messages_per_node;
  std::uint64_t seed;
};

class RandomTraffic : public ::testing::TestWithParam<TrafficCase> {};

TEST_P(RandomTraffic, ConservationAndMeasuredRounds) {
  const auto& tc = GetParam();
  Rng rng(tc.seed);
  CliqueNetwork net(tc.n);
  std::map<std::pair<NodeId, NodeId>, std::uint64_t> link_count;
  std::uint64_t sent = 0;
  for (NodeId v = 0; v < tc.n; ++v) {
    for (std::uint32_t j = 0; j < tc.messages_per_node; ++j) {
      NodeId dst = static_cast<NodeId>(rng.uniform_u64(tc.n));
      if (dst == v) dst = static_cast<NodeId>((dst + 1) % tc.n);
      net.send(v, dst, Payload::make(1, {static_cast<std::int64_t>(sent)}));
      ++link_count[{v, dst}];
      ++sent;
    }
  }
  std::uint64_t max_link = 0;
  for (const auto& [link, c] : link_count) max_link = std::max(max_link, c);

  const std::uint64_t rounds = net.run_until_drained("p");
  EXPECT_EQ(rounds, max_link);  // rounds = worst link queue, exactly

  std::uint64_t received = 0;
  for (NodeId v = 0; v < tc.n; ++v) received += net.inbox(v).size();
  EXPECT_EQ(received, sent);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomTraffic,
    ::testing::Values(TrafficCase{4, 3, 1}, TrafficCase{8, 10, 2},
                      TrafficCase{16, 40, 3}, TrafficCase{32, 5, 4},
                      TrafficCase{64, 64, 5}, TrafficCase{100, 17, 6}));

TEST(NetworkStress, PerLinkFifoPreservedUnderInterleaving) {
  Rng rng(9);
  CliqueNetwork net(6);
  // Interleave sends on several links; sequence numbers must arrive in
  // order per (src, dst).
  std::map<std::pair<NodeId, NodeId>, std::int64_t> next_seq;
  for (int i = 0; i < 300; ++i) {
    const NodeId s = static_cast<NodeId>(rng.uniform_u64(6));
    NodeId d = static_cast<NodeId>(rng.uniform_u64(6));
    if (d == s) d = static_cast<NodeId>((d + 1) % 6);
    net.send(s, d, Payload::make(0, {next_seq[{s, d}]++}));
  }
  net.run_until_drained("p");
  std::map<std::pair<NodeId, NodeId>, std::int64_t> seen;
  for (NodeId v = 0; v < 6; ++v) {
    for (const auto& m : net.inbox(v)) {
      auto& expect = seen[{m.src, m.dst}];
      EXPECT_EQ(m.payload.at(0), expect) << "link " << m.src << "->" << m.dst;
      ++expect;
    }
  }
}

TEST(NetworkStress, RouteConservationAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(100 + seed);
    const std::uint32_t n = 24;
    CliqueNetwork net(n);
    std::vector<Message> batch;
    const std::size_t count = 500;
    for (std::size_t i = 0; i < count; ++i) {
      const NodeId s = static_cast<NodeId>(rng.uniform_u64(n));
      const NodeId d = static_cast<NodeId>(rng.uniform_u64(n));
      batch.push_back(Message{s, d, Payload::make(2, {static_cast<std::int64_t>(i)})});
    }
    route(net, batch, "r");
    std::size_t received = 0;
    for (NodeId v = 0; v < n; ++v) received += net.inbox(v).size();
    EXPECT_EQ(received, count) << "seed " << seed;
  }
}

TEST(NetworkStress, InterleavedPhasesKeepIndependentLedgers) {
  CliqueNetwork net(8);
  for (int round = 0; round < 5; ++round) {
    net.send(0, 1, Payload::make(0, {round}));
    net.step("a");
    net.send(2, 3, Payload::make(0, {round}));
    net.step("b");
  }
  EXPECT_EQ(net.ledger().phase_rounds("a"), 5u);
  EXPECT_EQ(net.ledger().phase_rounds("b"), 5u);
  EXPECT_EQ(net.rounds(), 10u);
}

TEST(NetworkStress, LargeCliqueConstructionAndSingleRound) {
  // n = 512: 262k links; must construct and step without trouble.
  CliqueNetwork net(512);
  for (NodeId v = 0; v < 512; ++v) {
    net.send(v, static_cast<NodeId>((v + 1) % 512), Payload::make(0, {v}));
  }
  EXPECT_EQ(net.run_until_drained("p"), 1u);
}

}  // namespace
}  // namespace qclique
