#include "matrix/kernels.hpp"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/task_pool.hpp"
#include "matrix/autotuner.hpp"
#include "matrix/kernel_band.hpp"

namespace qclique {

namespace {

/// Runs one band function over row bands on the shared TaskPool. Row i of
/// C depends only on row i of A and all of B, so disjoint row bands are
/// independent: any worker count computes the same entries in the same
/// within-row order, which is the determinism contract (the pool's chunk
/// boundaries depend only on (rows, grain), never on scheduling). The
/// B-tile classification is shared read-only by every band. Small products
/// run single-threaded regardless -- even without spawn cost, waking the
/// pool costs more than the product.
void run_banded(detail::BandFn band, const std::int64_t* a, const std::int64_t* b,
                std::int64_t* c, std::uint32_t rows, std::uint32_t inner,
                std::uint32_t cols, const KernelConfig& config,
                std::uint32_t* witness) {
  const std::uint32_t bs = detail::clamp_block(config.block_size, rows, inner, cols);
  const auto clean = detail::classify_b_tiles(b, inner, cols, bs);
  unsigned workers = resolve_task_pool_threads(config.num_threads);
  workers = static_cast<unsigned>(std::min<std::uint64_t>(workers, rows));
  if (workers <= 1 ||
      static_cast<std::uint64_t>(rows) * inner * cols < (1u << 15)) {
    band(a, b, c, rows, inner, cols, bs, clean.data(), witness);
    return;
  }
  TaskPool& pool = config.task_pool ? *config.task_pool : TaskPool::instance();
  // ~4 chunks per worker: enough slack for stealing to smooth skewed
  // bands (dirty-tile density varies by row) without shrinking bands
  // below a cache tile. The grain does not affect results.
  const std::size_t grain =
      std::max<std::size_t>(1, rows / (4ull * workers));
  pool.parallel_for(
      0, rows, grain,
      [&](std::size_t r0, std::size_t r1, unsigned) {
        band(a + r0 * inner, b, c + r0 * cols,
             static_cast<std::uint32_t>(r1 - r0), inner, cols, bs,
             clean.data(), witness ? witness + r0 * cols : nullptr);
      },
      workers);
}

/// The band function implementing one ISA tier.
detail::BandFn band_for_isa(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::avx2:
      return detail::simd_band_avx2;
    case KernelIsa::avx512:
      return detail::simd_band_avx512;
    case KernelIsa::neon:
      return detail::simd_band_neon;
    case KernelIsa::scalar:
      break;
  }
  return detail::blocked_band;
}

/// Runtime half of tier availability: what the CPU reports. The builtin
/// probes are constant-foldable on targets where the answer is static
/// (NEON on AArch64) and a cpuid read elsewhere.
bool cpu_supports(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::scalar:
      return true;
    case KernelIsa::avx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case KernelIsa::avx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
    case KernelIsa::neon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

class NaiveKernel final : public MinPlusKernel {
 public:
  std::string name() const override { return "naive"; }

  std::string description() const override {
    return "the seed triple loop (conformance oracle, out-of-line sat_add)";
  }

  void run(const std::int64_t* a, const std::int64_t* b, std::int64_t* c,
           std::uint32_t rows, std::uint32_t inner, std::uint32_t cols,
           const KernelConfig& /*config*/, std::uint32_t* witness) const override {
    std::fill(c, c + static_cast<std::size_t>(rows) * cols, kPlusInf);
    if (witness != nullptr) {
      std::fill(witness, witness + static_cast<std::size_t>(rows) * cols, kNoWitness);
    }
    for (std::uint32_t i = 0; i < rows; ++i) {
      for (std::uint32_t k = 0; k < inner; ++k) {
        const std::int64_t aik = a[static_cast<std::size_t>(i) * inner + k];
        if (is_plus_inf(aik)) continue;
        for (std::uint32_t j = 0; j < cols; ++j) {
          const std::int64_t s = sat_add(aik, b[static_cast<std::size_t>(k) * cols + j]);
          const std::size_t e = static_cast<std::size_t>(i) * cols + j;
          if (s < c[e]) {
            c[e] = s;
            if (witness) witness[e] = k;
          }
        }
      }
    }
  }
};

class BlockedKernel final : public MinPlusKernel {
 public:
  std::string name() const override { return "blocked"; }

  std::string description() const override {
    return "cache-tiled i/k/j with row pointers and inlined saturating add";
  }

  void run(const std::int64_t* a, const std::int64_t* b, std::int64_t* c,
           std::uint32_t rows, std::uint32_t inner, std::uint32_t cols,
           const KernelConfig& config, std::uint32_t* witness) const override {
    const std::uint32_t bs = detail::clamp_block(config.block_size, rows, inner, cols);
    const auto clean = detail::classify_b_tiles(b, inner, cols, bs);
    detail::blocked_band(a, b, c, rows, inner, cols, bs, clean.data(), witness);
  }
};

class ParallelKernel final : public MinPlusKernel {
 public:
  std::string name() const override { return "parallel"; }

  std::string description() const override {
    return "the blocked kernel sharded over row bands on the persistent "
           "task pool";
  }

  void run(const std::int64_t* a, const std::int64_t* b, std::int64_t* c,
           std::uint32_t rows, std::uint32_t inner, std::uint32_t cols,
           const KernelConfig& config, std::uint32_t* witness) const override {
    run_banded(detail::blocked_band, a, b, c, rows, inner, cols, config, witness);
  }
};

class SimdKernel final : public MinPlusKernel {
 public:
  std::string name() const override { return "simd"; }

  std::string description() const override {
    return "runtime-dispatched AVX2/AVX-512/NEON clean-tile loops "
           "(QCLIQUE_KERNEL_ISA forces a tier), row-band sharded";
  }

  void run(const std::int64_t* a, const std::int64_t* b, std::int64_t* c,
           std::uint32_t rows, std::uint32_t inner, std::uint32_t cols,
           const KernelConfig& config, std::uint32_t* witness) const override {
    run_banded(band_for_isa(active_kernel_isa()), a, b, c, rows, inner, cols,
               config, witness);
  }
};

}  // namespace

std::string kernel_isa_name(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::scalar:
      return "scalar";
    case KernelIsa::avx2:
      return "avx2";
    case KernelIsa::avx512:
      return "avx512";
    case KernelIsa::neon:
      return "neon";
  }
  return "scalar";
}

KernelIsa parse_kernel_isa(const std::string& name) {
  for (const KernelIsa isa : {KernelIsa::scalar, KernelIsa::avx2,
                              KernelIsa::avx512, KernelIsa::neon}) {
    if (kernel_isa_name(isa) == name) return isa;
  }
  throw SimulationError("kernel ISA: unknown tier '" + name +
                        "' (known: scalar, avx2, avx512, neon)");
}

bool kernel_isa_compiled(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::scalar:
      return true;
    case KernelIsa::avx2:
      return detail::kernel_band_avx2_compiled();
    case KernelIsa::avx512:
      return detail::kernel_band_avx512_compiled();
    case KernelIsa::neon:
      return detail::kernel_band_neon_compiled();
  }
  return false;
}

bool kernel_isa_available(KernelIsa isa) {
  return kernel_isa_compiled(isa) && cpu_supports(isa);
}

KernelIsa best_kernel_isa() {
  for (const KernelIsa isa :
       {KernelIsa::avx512, KernelIsa::avx2, KernelIsa::neon}) {
    if (kernel_isa_available(isa)) return isa;
  }
  return KernelIsa::scalar;
}

KernelIsa active_kernel_isa() {
  const char* forced = std::getenv(kKernelIsaEnv);
  if (forced == nullptr || *forced == '\0') return best_kernel_isa();
  const KernelIsa isa = parse_kernel_isa(forced);
  if (!kernel_isa_available(isa)) {
    std::string available;
    for (const KernelIsa t : {KernelIsa::scalar, KernelIsa::avx2,
                              KernelIsa::avx512, KernelIsa::neon}) {
      if (!kernel_isa_available(t)) continue;
      if (!available.empty()) available += ", ";
      available += kernel_isa_name(t);
    }
    throw SimulationError(std::string(kKernelIsaEnv) + "=" + forced +
                          " forces a tier unavailable on this host (available: " +
                          available + ")");
  }
  return isa;
}

DistMatrix MinPlusKernel::product(const DistMatrix& a, const DistMatrix& b,
                                  const KernelConfig& config,
                                  std::vector<std::uint32_t>* witness) const {
  const std::uint32_t n = a.size();
  QCLIQUE_CHECK(b.size() == n, "distance product size mismatch");
  DistMatrix c(n);
  if (witness != nullptr) {
    // Size only: run() fully overwrites both outputs.
    witness->resize(static_cast<std::size_t>(n) * n);
  }
  run(a.data(), b.data(), c.data(), n, n, n, config,
      witness ? witness->data() : nullptr);
  return c;
}

KernelRegistry& KernelRegistry::instance() {
  // Builtins are registered lazily here rather than via static-initializer
  // self-registration: the library is linked statically, and nothing would
  // anchor a registrar translation unit against linker dead-stripping.
  static KernelRegistry* global = [] {
    auto* r = new KernelRegistry();
    register_builtin_kernels(*r);
    return r;
  }();
  return *global;
}

void KernelRegistry::add(std::unique_ptr<MinPlusKernel> kernel) {
  QCLIQUE_CHECK(kernel != nullptr, "kernel registry: null kernel");
  const std::string name = kernel->name();
  QCLIQUE_CHECK(!name.empty(), "kernel registry: kernel with empty name");
  std::lock_guard<std::mutex> lock(mu_);
  const auto pos = std::lower_bound(
      kernels_.begin(), kernels_.end(), name,
      [](const auto& k, const std::string& key) { return k->name() < key; });
  QCLIQUE_CHECK(pos == kernels_.end() || (*pos)->name() != name,
                "kernel registry: duplicate kernel name '" + name + "'");
  kernels_.insert(pos, std::move(kernel));
}

bool KernelRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::any_of(kernels_.begin(), kernels_.end(),
                     [&](const auto& k) { return k->name() == name; });
}

const MinPlusKernel& KernelRegistry::get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& k : kernels_) {
    if (k->name() == name) return *k;
  }
  std::string known;
  for (const auto& k : kernels_) {
    if (!known.empty()) known += ", ";
    known += k->name();
  }
  throw SimulationError("kernel registry: unknown kernel '" + name +
                        "' (known: " + known + ")");
}

std::vector<std::string> KernelRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(kernels_.size());
  for (const auto& k : kernels_) out.push_back(k->name());
  return out;
}

std::size_t KernelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return kernels_.size();
}

void register_builtin_kernels(KernelRegistry& registry) {
  registry.add(std::make_unique<NaiveKernel>());
  registry.add(std::make_unique<BlockedKernel>());
  registry.add(std::make_unique<ParallelKernel>());
  registry.add(std::make_unique<SimdKernel>());
  registry.add(make_auto_kernel());
}

DistMatrix min_plus_product(const DistMatrix& a, const DistMatrix& b,
                            const KernelOptions& options) {
  return options.resolve().product(a, b, options.config);
}

}  // namespace qclique
