// Routing-equivalence suite for the zero-materialization fast paths.
//
// The MessageBatch and counts-only (LinkCounts / send_counts) routing
// paths exist purely for speed: they must be indistinguishable from the
// seed per-Message route() in every model-visible quantity — ledger rounds
// and messages (total and per phase), per-link traffic, RouteStats, and
// (for the delivering paths) inbox contents — across every registered
// topology. This suite pins that contract; docs/PERFORMANCE.md documents
// it.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "congest/lenzen.hpp"
#include "congest/transport.hpp"

namespace qclique {
namespace {

constexpr std::uint32_t kN = 10;

std::unique_ptr<Network> make_net(const std::string& topology) {
  TransportOptions options;
  options.topology = topology;
  options.record_traffic = true;
  return make_network(kN, options);
}

/// A deterministic batch with uneven loads: multiple messages per link,
/// several hot destinations, a couple of self-addressed messages (route()
/// deposits those without consuming bandwidth).
std::vector<Message> reference_batch() {
  std::vector<Message> batch;
  for (std::uint32_t u = 0; u < kN; ++u) {
    for (std::uint32_t r = 0; r <= u % 3; ++r) {
      for (std::uint32_t v = 0; v < kN; ++v) {
        if (v == u && v % 2 == 0) continue;  // keep a few self messages
        batch.push_back(Message{
            u, v,
            Payload::make(7, {static_cast<std::int64_t>(u),
                              static_cast<std::int64_t>(v),
                              static_cast<std::int64_t>(r)})});
      }
    }
  }
  // A hot destination: everyone also messages node 3.
  for (std::uint32_t u = 0; u < kN; ++u) {
    if (u == 3) continue;
    batch.push_back(Message{u, 3, Payload::make(9, {1, 2})});
  }
  return batch;
}

MessageBatch as_message_batch(const std::vector<Message>& batch) {
  MessageBatch out;
  out.reserve(batch.size(), batch.size() * 3);
  for (const Message& m : batch) {
    out.add(m.src, m.dst, m.payload.tag);
    for (std::size_t i = 0; i < m.payload.size; ++i) out.field(m.payload.at(i));
  }
  return out;
}

LinkCounts as_link_counts(const std::vector<Message>& batch) {
  LinkCounts out(kN);
  for (const Message& m : batch) out.add(m.src, m.dst);
  return out;
}

void expect_same_ledger(const Network& a, const Network& b) {
  EXPECT_EQ(a.ledger().total_rounds(), b.ledger().total_rounds());
  EXPECT_EQ(a.ledger().total_messages(), b.ledger().total_messages());
  EXPECT_EQ(a.rounds(), b.rounds());
  ASSERT_EQ(a.ledger().phases().size(), b.ledger().phases().size());
  for (const auto& [phase, stats] : a.ledger().phases()) {
    ASSERT_TRUE(b.ledger().phases().contains(phase)) << phase;
    const PhaseStats& other = b.ledger().phases().at(phase);
    EXPECT_EQ(stats.rounds, other.rounds) << phase;
    EXPECT_EQ(stats.messages, other.messages) << phase;
  }
}

void expect_same_traffic(const Network& a, const Network& b) {
  ASSERT_NE(a.traffic(), nullptr);
  ASSERT_NE(b.traffic(), nullptr);
  EXPECT_EQ(a.traffic()->total(), b.traffic()->total());
  EXPECT_EQ(a.traffic()->deposits(), b.traffic()->deposits());
  EXPECT_EQ(a.traffic()->max_load(), b.traffic()->max_load());
  EXPECT_EQ(a.traffic()->links_used(), b.traffic()->links_used());
  for (std::uint32_t s = 0; s < kN; ++s) {
    for (std::uint32_t d = 0; d < kN; ++d) {
      EXPECT_EQ(a.traffic()->load(s, d), b.traffic()->load(s, d))
          << "link " << s << " -> " << d;
    }
  }
}

void expect_same_stats(const RouteStats& a, const RouteStats& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.max_source_load, b.max_source_load);
  EXPECT_EQ(a.max_dest_load, b.max_dest_load);
}

class BulkRoutingEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(BulkRoutingEquivalence, MessageBatchMatchesPerMessagePathExactly) {
  const std::vector<Message> batch = reference_batch();
  auto seed_net = make_net(GetParam());
  auto soa_net = make_net(GetParam());

  const RouteStats seed_st = route(*seed_net, batch, "phase/a");
  const RouteStats soa_st = route(*soa_net, as_message_batch(batch), "phase/a");

  expect_same_stats(seed_st, soa_st);
  expect_same_ledger(*seed_net, *soa_net);
  expect_same_traffic(*seed_net, *soa_net);
  // Delivering path: inbox contents must match message for message.
  for (std::uint32_t v = 0; v < kN; ++v) {
    const auto& a = seed_net->inbox(v);
    const auto& b = soa_net->inbox(v);
    ASSERT_EQ(a.size(), b.size()) << "inbox " << v;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].src, b[i].src);
      EXPECT_EQ(a[i].dst, b[i].dst);
      EXPECT_EQ(a[i].payload.tag, b[i].payload.tag);
      ASSERT_EQ(a[i].payload.size, b[i].payload.size);
      for (std::size_t f = 0; f < a[i].payload.size; ++f) {
        EXPECT_EQ(a[i].payload.at(f), b[i].payload.at(f));
      }
    }
  }
}

TEST_P(BulkRoutingEquivalence, CountsOnlyPathMatchesLedgerAndTraffic) {
  const std::vector<Message> batch = reference_batch();
  auto seed_net = make_net(GetParam());
  auto counts_net = make_net(GetParam());

  const RouteStats seed_st = route(*seed_net, batch, "phase/b");
  const RouteStats cnt_st = route_counts(*counts_net, as_link_counts(batch), "phase/b");

  expect_same_stats(seed_st, cnt_st);
  expect_same_ledger(*seed_net, *counts_net);
  expect_same_traffic(*seed_net, *counts_net);
  // Counts-only: nothing may ever reach an inbox.
  for (std::uint32_t v = 0; v < kN; ++v) {
    EXPECT_TRUE(counts_net->inbox(v).empty()) << "inbox " << v;
  }
}

TEST_P(BulkRoutingEquivalence, PhantomSendsDrainLikeRealSends) {
  auto real_net = make_net(GetParam());
  auto phantom_net = make_net(GetParam());

  // Same per-link send sequence, stepped (not Lemma 1 charged) delivery.
  for (std::uint32_t u = 0; u < kN; ++u) {
    for (std::uint32_t v = 0; v < kN; ++v) {
      if (u == v) continue;
      for (std::uint32_t r = 0; r <= (u + v) % 2; ++r) {
        real_net->send(u, v, Payload::make(4, {static_cast<std::int64_t>(r)}));
        phantom_net->send_counts(u, v);
      }
    }
  }
  EXPECT_EQ(real_net->pending_messages(), phantom_net->pending_messages());
  const std::uint64_t real_rounds = real_net->run_until_drained("drain");
  const std::uint64_t phantom_rounds = phantom_net->run_until_drained("drain");
  EXPECT_EQ(real_rounds, phantom_rounds);
  expect_same_ledger(*real_net, *phantom_net);
  expect_same_traffic(*real_net, *phantom_net);
  for (std::uint32_t v = 0; v < kN; ++v) {
    EXPECT_TRUE(phantom_net->inbox(v).empty()) << "inbox " << v;
  }
}

TEST_P(BulkRoutingEquivalence, EmptyBatchesChargeNothing) {
  auto net = make_net(GetParam());
  const RouteStats soa = route(*net, MessageBatch{}, "p");
  const RouteStats cnt = route_counts(*net, LinkCounts(kN), "p");
  EXPECT_EQ(soa.rounds, 0u);
  EXPECT_EQ(cnt.rounds, 0u);
  EXPECT_EQ(net->ledger().total_rounds(), 0u);
  EXPECT_EQ(net->ledger().total_messages(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, BulkRoutingEquivalence,
    ::testing::ValuesIn(TopologyRegistry::instance().names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(MessageBatchTest, BuildsAndMaterializesMessages) {
  MessageBatch batch;
  batch.add(1, 2, 40);
  batch.field(10);
  batch.field(-3);
  batch.add(2, 3, 41);  // no fields
  batch.add(3, 4, 42);
  batch.field(7);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.field_count(0), 2u);
  EXPECT_EQ(batch.field_count(1), 0u);
  EXPECT_EQ(batch.field_count(2), 1u);
  const Message m0 = batch.message(0);
  EXPECT_EQ(m0.src, 1u);
  EXPECT_EQ(m0.dst, 2u);
  EXPECT_EQ(m0.payload.tag, 40u);
  ASSERT_EQ(m0.payload.size, 2u);
  EXPECT_EQ(m0.payload.at(0), 10);
  EXPECT_EQ(m0.payload.at(1), -3);
  const Message m2 = batch.message(2);
  EXPECT_EQ(m2.payload.at(0), 7);
  batch.clear();
  EXPECT_TRUE(batch.empty());
}

TEST(LinkCountsTest, TracksLoadsAndPreservesRunOrder) {
  LinkCounts counts(4);
  counts.add(0, 1);
  counts.add(0, 1, 2);  // merged into the previous run
  counts.add(2, 1);
  counts.add(0, 1);  // new run: order preserved, not merged backward
  EXPECT_EQ(counts.total(), 5u);
  EXPECT_EQ(counts.max_source_load(), 4u);  // node 0 sources 4
  EXPECT_EQ(counts.max_dest_load(), 5u);    // node 1 receives all 5
  std::vector<std::tuple<NodeId, NodeId, std::uint64_t>> runs;
  counts.for_each_run([&](NodeId s, NodeId d, std::uint64_t k) {
    runs.emplace_back(s, d, k);
  });
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0], std::make_tuple(0u, 1u, 3ull));
  EXPECT_EQ(runs[1], std::make_tuple(2u, 1u, 1ull));
  EXPECT_EQ(runs[2], std::make_tuple(0u, 1u, 1ull));
}

TEST(LinkCountsTest, RejectsOutOfRangeEndpoints) {
  LinkCounts counts(4);
  EXPECT_THROW(counts.add(0, 4), SimulationError);
  EXPECT_THROW(counts.add(5, 1), SimulationError);
}

TEST(RouteCountsTest, RejectsSizeMismatch) {
  TransportOptions options;
  auto net = make_network(8, options);
  EXPECT_THROW(route_counts(*net, LinkCounts(4), "p"), SimulationError);
}

}  // namespace
}  // namespace qclique
