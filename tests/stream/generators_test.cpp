// Update-stream generator contract: registry population, per-generator
// replay validity over the registered graph families, determinism,
// disconnect/reconnect shape of hub-delete, family-aware sizing.
#include "stream/generators.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/families.hpp"

namespace qclique {
namespace {

Digraph family_graph(const std::string& family, std::uint32_t n,
                     std::uint64_t seed) {
  Rng rng(seed);
  FamilyConfig config = family_config(n, 0.35, 1, 9);
  return make_family_graph(family, config, rng);
}

TEST(StreamGenerators, RegistryHasBuiltins) {
  auto& reg = UpdateStreamRegistry::instance();
  EXPECT_GE(reg.size(), 3u);
  EXPECT_TRUE(reg.contains("uniform-reweight"));
  EXPECT_TRUE(reg.contains("hub-delete"));
  EXPECT_TRUE(reg.contains("growth-insert"));
  const auto names = reg.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const auto& name : names) {
    EXPECT_FALSE(reg.get(name).description().empty());
  }
}

TEST(StreamGenerators, UnknownGeneratorNamesKnownOnes) {
  try {
    UpdateStreamRegistry::instance().get("no-such-stream");
    FAIL() << "expected SimulationError";
  } catch (const SimulationError& e) {
    EXPECT_NE(std::string(e.what()).find("hub-delete"), std::string::npos);
  }
}

TEST(StreamGenerators, PrivateRegistryPopulation) {
  UpdateStreamRegistry reg;
  EXPECT_EQ(reg.size(), 0u);
  register_builtin_streams(reg);
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_THROW(register_builtin_streams(reg), SimulationError);  // duplicates
}

// The central generator contract: replaying the stream from the starting
// graph keeps every update meaningful and in bounds.
TEST(StreamGenerators, StreamsReplayValidlyAcrossFamilies) {
  StreamConfig config;
  config.batches = 6;
  config.batch_size = 8;
  config.wmin = 1;
  config.wmax = 9;
  for (const std::string family : {"gnp", "power-law", "clustered", "grid"}) {
    const Digraph start = family_graph(family, 20, 7);
    for (const auto& stream : UpdateStreamRegistry::instance().names()) {
      Rng rng(11);
      const auto batches = make_update_stream(stream, start, config, rng);
      ASSERT_EQ(batches.size(), config.batches) << family << "/" << stream;
      Digraph replay = start;
      for (std::size_t b = 0; b < batches.size(); ++b) {
        EXPECT_EQ(batches[b].seq, b);
        EXPECT_EQ(batches[b].stream, stream);
        EXPECT_LE(batches[b].size(), config.batch_size);
        for (const EdgeUpdate& u : batches[b].updates) {
          switch (u.kind) {
            case UpdateKind::kDelete:
              EXPECT_TRUE(replay.has_arc(u.u, u.v))
                  << family << "/" << stream << " deletes absent arc";
              break;
            case UpdateKind::kInsert:
              EXPECT_FALSE(replay.has_arc(u.u, u.v))
                  << family << "/" << stream << " inserts present arc";
              [[fallthrough]];
            case UpdateKind::kReweight:
              if (u.kind == UpdateKind::kReweight) {
                EXPECT_TRUE(replay.has_arc(u.u, u.v))
                    << family << "/" << stream << " reweights absent arc";
              }
              EXPECT_GE(u.w, config.wmin);
              EXPECT_LE(u.w, config.wmax);
              break;
          }
          apply_update(replay, u);
        }
      }
    }
  }
}

TEST(StreamGenerators, DeterministicForFixedSeed) {
  const Digraph start = family_graph("gnp", 16, 3);
  StreamConfig config;
  config.batches = 4;
  config.batch_size = 6;
  for (const auto& stream : UpdateStreamRegistry::instance().names()) {
    Rng a(99), b(99), c(100);
    const auto first = make_update_stream(stream, start, config, a);
    const auto second = make_update_stream(stream, start, config, b);
    const auto third = make_update_stream(stream, start, config, c);
    ASSERT_EQ(first.size(), second.size());
    bool identical = true;
    bool differs_from_third = false;
    for (std::size_t i = 0; i < first.size(); ++i) {
      if (first[i].updates != second[i].updates) identical = false;
      if (i < third.size() && first[i].updates != third[i].updates) {
        differs_from_third = true;
      }
    }
    EXPECT_TRUE(identical) << stream;
    EXPECT_TRUE(differs_from_third) << stream << ": seed is not threaded";
  }
}

TEST(StreamGenerators, UniformReweightKeepsStructure) {
  const Digraph start = family_graph("gnp", 18, 5);
  StreamConfig config;
  config.batches = 5;
  config.batch_size = 10;
  Rng rng(2);
  const auto batches =
      make_update_stream("uniform-reweight", start, config, rng);
  Digraph replay = start;
  for (const auto& batch : batches) {
    for (const auto& u : batch.updates) {
      EXPECT_EQ(u.kind, UpdateKind::kReweight);
    }
    apply_batch(replay, batch);
  }
  EXPECT_EQ(replay.num_arcs(), start.num_arcs());
}

TEST(StreamGenerators, HubDeleteDisconnectsThenReconnects) {
  const Digraph start = family_graph("power-law", 20, 13);
  StreamConfig config;
  config.batches = 6;
  config.batch_size = 12;
  config.hubs = 3;
  Rng rng(4);
  const auto batches = make_update_stream("hub-delete", start, config, rng);
  Digraph replay = start;
  ASSERT_FALSE(batches[0].updates.empty());  // hubs have incident arcs
  for (std::size_t b = 0; b < batches.size(); ++b) {
    for (const auto& u : batches[b].updates) {
      EXPECT_EQ(u.kind,
                b % 2 == 0 ? UpdateKind::kDelete : UpdateKind::kInsert);
    }
    if (b % 2 == 1) {
      // Reconnect batches restore exactly what the delete batch cut.
      EXPECT_EQ(batches[b].size(), batches[b - 1].size());
    }
    apply_batch(replay, batches[b]);
    if (b % 2 == 1) {
      EXPECT_EQ(replay.num_arcs(), start.num_arcs());
    }
  }
}

TEST(StreamGenerators, GrowthInsertDensifies) {
  const Digraph start = family_graph("grid", 16, 1);
  StreamConfig config;
  config.batches = 4;
  config.batch_size = 8;
  Rng rng(6);
  const auto batches = make_update_stream("growth-insert", start, config, rng);
  Digraph replay = start;
  std::uint64_t prev = replay.num_arcs();
  for (const auto& batch : batches) {
    apply_batch(replay, batch);
    EXPECT_EQ(replay.num_arcs(), prev + batch.size());
    prev = replay.num_arcs();
  }
  EXPECT_GT(replay.num_arcs(), start.num_arcs());
}

TEST(StreamGenerators, StructuralHubsFindsSkewRows) {
  Rng rng(8);
  FamilyConfig config = family_config(24, 0.15, 1, 5);
  config.hubs = 2;
  const Digraph g = make_family_graph("lambda-skew", config, rng);
  // The lambda-skew family gives its hub rows arcs to every vertex, so the
  // top-2 structural hubs must be exactly those rows (out-degree n-1).
  const auto hubs = structural_hubs(g, 2);
  ASSERT_EQ(hubs.size(), 2u);
  for (const std::uint32_t h : hubs) {
    std::uint32_t out = 0;
    for (std::uint32_t v = 0; v < g.size(); ++v) {
      if (v != h && g.has_arc(h, v)) ++out;
    }
    EXPECT_EQ(out, g.size() - 1) << "vertex " << h << " is not a skew hub";
  }
  EXPECT_EQ(structural_hubs(g, 100).size(), g.size());  // k clamps to n
}

TEST(StreamGenerators, StreamForFamilyClampsAndSizes) {
  FamilyConfig config = family_config(32, 0.4, -4, 9);
  config.hubs = 5;
  config.clusters = 6;
  const StreamConfig skew = stream_for_family("lambda-skew", config, 7, 11);
  EXPECT_EQ(skew.batches, 7u);
  EXPECT_EQ(skew.batch_size, 11u);
  EXPECT_EQ(skew.wmin, 0);  // negative family range clamps to >= 0
  EXPECT_EQ(skew.wmax, 9);
  EXPECT_EQ(skew.hubs, 5u);
  const StreamConfig clustered = stream_for_family("clustered", config, 2, 2);
  EXPECT_EQ(clustered.hubs, 6u);
  const StreamConfig gnp = stream_for_family("gnp", config, 2, 2);
  EXPECT_EQ(gnp.hubs, 2u);
}

}  // namespace
}  // namespace qclique
