#include "common/math.hpp"

#include <bit>

#include "common/error.hpp"

namespace qclique {

std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  if (is_plus_inf(a) || is_plus_inf(b)) return kPlusInf;
  if (is_minus_inf(a) || is_minus_inf(b)) return kMinusInf;
  const std::int64_t s = a + b;  // |a|,|b| < kPlusInf <= INT64_MAX/4: no overflow
  if (s >= kPlusInf) return kPlusInf;
  if (s <= kMinusInf) return kMinusInf;
  return s;
}

int floor_log2(std::uint64_t x) {
  QCLIQUE_CHECK(x >= 1, "floor_log2 requires x >= 1");
  return 63 - std::countl_zero(x);
}

int ceil_log2(std::uint64_t x) {
  QCLIQUE_CHECK(x >= 1, "ceil_log2 requires x >= 1");
  const int f = floor_log2(x);
  return (x == (std::uint64_t{1} << f)) ? f : f + 1;
}

int paper_log(std::uint64_t n) {
  if (n <= 2) return 1;
  return ceil_log2(n);
}

std::uint64_t isqrt(std::uint64_t n) {
  if (n == 0) return 0;
  // Newton iteration from a power-of-two overestimate; converges in a few
  // steps and is exact for 64-bit inputs.
  std::uint64_t x = std::uint64_t{1} << ((floor_log2(n) / 2) + 1);
  for (;;) {
    const std::uint64_t y = (x + n / x) / 2;
    if (y >= x) break;
    x = y;
  }
  return x;
}

std::uint64_t isqrt_ceil(std::uint64_t n) {
  const std::uint64_t r = isqrt(n);
  return r * r == n ? r : r + 1;
}

namespace {
std::uint64_t iroot_ceil(std::uint64_t n, unsigned k) {
  if (n <= 1) return n;
  // Binary search over the answer; ranges are tiny (<= 2^22 for k=3).
  std::uint64_t lo = 1, hi = std::uint64_t{1} << (floor_log2(n) / k + 1);
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    // Does mid^k >= n (with overflow guard)?
    std::uint64_t p = 1;
    bool overflow = false;
    for (unsigned i = 0; i < k; ++i) {
      if (p > n / mid + 1) {
        overflow = true;
        break;
      }
      p *= mid;
    }
    if (overflow || p >= n) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}
}  // namespace

std::uint64_t iroot4_ceil(std::uint64_t n) { return iroot_ceil(n, 4); }
std::uint64_t iroot3_ceil(std::uint64_t n) { return iroot_ceil(n, 3); }

std::uint64_t ipow(std::uint64_t base, unsigned exp) {
  std::uint64_t r = 1;
  for (unsigned i = 0; i < exp; ++i) {
    QCLIQUE_CHECK(base == 0 || r <= std::numeric_limits<std::uint64_t>::max() / (base ? base : 1),
                  "ipow overflow");
    r *= base;
  }
  return r;
}

BlockPartition::BlockPartition(std::uint64_t n, std::uint64_t blocks) : n_(n) {
  QCLIQUE_CHECK(blocks >= 1 && blocks <= n, "BlockPartition requires 1 <= blocks <= n");
  starts_.reserve(blocks + 1);
  const std::uint64_t base = n / blocks;
  const std::uint64_t extra = n % blocks;  // first `extra` blocks get one more
  std::uint64_t pos = 0;
  for (std::uint64_t b = 0; b < blocks; ++b) {
    starts_.push_back(pos);
    pos += base + (b < extra ? 1 : 0);
  }
  starts_.push_back(pos);
  QCLIQUE_CHECK(pos == n, "BlockPartition sizes must sum to n");
}

std::uint64_t BlockPartition::block_of(std::uint64_t i) const {
  QCLIQUE_CHECK(i < n_, "BlockPartition::block_of out of range");
  // Sizes differ by at most one, so the block index is predictable up to +-1;
  // a small local scan after the estimate keeps this O(1).
  const std::uint64_t blocks = num_blocks();
  std::uint64_t b = i * blocks / n_;
  while (b + 1 < blocks && starts_[b + 1] <= i) ++b;
  while (b > 0 && starts_[b] > i) --b;
  return b;
}

}  // namespace qclique
