// Dynamic APSP solvers: distance maintenance under update batches.
//
// A static ApspSolver answers "what are the distances of this graph"; a
// DynamicApspSolver answers "the graph changed -- what are the distances
// *now*", amortizing work across batches. Unlike the stateless static
// backends, a dynamic solver is deliberately stateful: it owns the evolving
// graph, the current distance matrix, and (optionally) the successor
// matrix, because the whole point of incremental maintenance is reusing
// that state. One instance therefore serves one stream; spawn one per
// concurrent stream.
//
// Two builtins live in the DynamicSolverRegistry:
//
//   * "recompute"   -- applies the batch and re-runs a static backend
//                      (DynamicSolverOptions::backend, any SolverRegistry
//                      name) from scratch. Trivially correct; the oracle
//                      every other dynamic solver is conformance-tested
//                      against, and the baseline the >= 5x bench gate is
//                      measured over.
//   * "incremental" -- affected-source repair. Classifies the batch's net
//                      arc changes (stream/update.hpp canonical_changes)
//                      against the *current* distance matrix to find the
//                      sources whose rows could change, then reruns a
//                      single-source Dijkstra only from those:
//                        - weight decrease / insert (w' < w) affects s iff
//                          d(s,u) + w' < d(s,v) -- the new arc would relax
//                          something;
//                        - weight increase / delete (w' > w) affects s iff
//                          d(s,u) + w == d(s,v) -- the old arc was *tight*,
//                          i.e. on some shortest s-path (any path that got
//                          longer makes its changed arc tight, by the
//                          subpath-optimality of shortest paths).
//                      Both tests are complete (every row that changes is
//                      flagged; mixed batches decompose into a
//                      decrease-only then increase-only step, and the
//                      union of both tests covers each step), so
//                      unflagged rows keep exact distances AND valid
//                      witness successors -- a flagged-free row's
//                      successor arc stays tight because any change
//                      behind it would itself have flagged the row.
//                      Distances after apply() are bit-identical to a
//                      from-scratch solve; only wall time differs.
//
// Weight contract: the incremental solver requires non-negative weights
// (Dijkstra repair), enforced at reset() and per batch. Path maintenance
// (with_paths) is cheap per-row when all weights are strictly positive;
// graphs containing zero-weight arcs fall back to a full hop-consistent
// successor rebuild per batch (local_successors) because mixing per-row
// witness choices across zero-weight plateaus can form successor cycles.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/execution_context.hpp"
#include "graph/digraph.hpp"
#include "matrix/dist_matrix.hpp"
#include "stream/update.hpp"

namespace qclique {

/// Construction knobs for dynamic solvers (the analogue of a static
/// backend's capabilities, chosen per instance).
struct DynamicSolverOptions {
  /// Static backend "recompute" re-runs per batch (SolverRegistry name).
  /// "dijkstra" -- the fastest centralized oracle -- keeps the recompute
  /// baseline honest for the incremental speedup gate.
  std::string backend = "dijkstra";
  /// Maintain the witness successor matrix so served snapshots can answer
  /// path queries.
  bool with_paths = true;
};

/// What one apply() call did and what it cost (the per-batch analogue of
/// ApspReport's counters).
struct RepairStats {
  std::uint64_t updates = 0;           // raw updates in the batch
  std::uint64_t changed_arcs = 0;      // net arc changes after collapsing
  std::uint64_t affected_sources = 0;  // rows re-solved (n for recompute)
  double classify_ms = 0.0;            // affected-source classification
  double repair_ms = 0.0;              // row re-solves + successor repair
  double wall_ms = 0.0;                // whole apply() call
};

/// Abstract dynamic APSP solver. Stateful by design (see header comment):
/// reset() installs a starting graph and solves it from scratch, apply()
/// advances the state by one batch. Accessors expose the current state;
/// they are valid after reset() and stay bit-exact mirrors of the evolving
/// graph after every apply().
class DynamicApspSolver {
 public:
  virtual ~DynamicApspSolver() = default;

  /// Registry key, e.g. "incremental".
  virtual std::string name() const = 0;

  /// Installs `g` as the current graph and computes its distances (and
  /// successors, when configured with_paths) from scratch.
  virtual void reset(const Digraph& g, ExecutionContext& ctx) = 0;

  /// Applies one batch to the current graph and repairs distances /
  /// successors. Returns what it did; throws SimulationError (state
  /// unchanged) on invalid updates or weight-contract violations.
  virtual RepairStats apply(const UpdateBatch& batch, ExecutionContext& ctx) = 0;

  /// The current graph (all applied batches folded in).
  virtual const Digraph& graph() const = 0;

  /// Exact distances of graph().
  virtual const DistMatrix& distances() const = 0;

  /// Witness successor matrix of graph() (n*n, UINT32_MAX = no hop);
  /// empty when constructed with with_paths = false.
  virtual const std::vector<std::uint32_t>& successors() const = 0;
};

/// Builds instances of one dynamic-solver kind. Factories are what the
/// registry stores, because solver instances are stateful and per-stream.
class DynamicSolverFactory {
 public:
  virtual ~DynamicSolverFactory() = default;

  /// Registry key of the solvers this factory builds.
  virtual std::string name() const = 0;

  /// One-line human description (shown by harness listings).
  virtual std::string description() const = 0;

  virtual std::unique_ptr<DynamicApspSolver> create(
      const DynamicSolverOptions& options) const = 0;
};

/// Name -> dynamic-solver-factory registry, same contract as the other
/// registry axes: mutex-guarded registration, stable references.
class DynamicSolverRegistry {
 public:
  /// The process-wide registry, with the built-in factories registered.
  static DynamicSolverRegistry& instance();

  /// An empty registry (tests; embedding independent registries).
  DynamicSolverRegistry() = default;

  DynamicSolverRegistry(const DynamicSolverRegistry&) = delete;
  DynamicSolverRegistry& operator=(const DynamicSolverRegistry&) = delete;

  /// Registers a factory under factory->name(). Throws SimulationError on
  /// a duplicate name or a null/empty-named factory.
  void add(std::unique_ptr<DynamicSolverFactory> factory);

  bool contains(const std::string& name) const;

  /// Looks up a factory; throws SimulationError naming the known factories
  /// when `name` is not registered.
  const DynamicSolverFactory& get(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<DynamicSolverFactory>> factories_;  // sorted
};

/// Registers the built-in factories ("recompute", "incremental"). Called
/// once by DynamicSolverRegistry::instance(); exposed so tests can build
/// private registries with the same population.
void register_builtin_dynamic_solvers(DynamicSolverRegistry& registry);

/// Convenience: one solver instance from the process-wide registry.
std::unique_ptr<DynamicApspSolver> make_dynamic_solver(
    const std::string& name, const DynamicSolverOptions& options = {});

/// Centralized witness-successor construction: succ[u*n+v] = a tight
/// out-neighbor of u toward v (UINT32_MAX when unreachable or u == v),
/// chosen so successor chases always terminate. With strictly positive
/// weights any tight neighbor works (distance strictly decreases along the
/// chase) and the scan is one cheap pass; zero-weight arcs switch to the
/// hop-count construction of core/paths.hpp (minimum-hop shortest paths,
/// hop strictly decreasing) computed locally. `dist` must be the exact
/// distance matrix of g.
std::vector<std::uint32_t> local_successors(const Digraph& g,
                                            const DistMatrix& dist);

}  // namespace qclique
