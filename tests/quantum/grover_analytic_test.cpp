// Conformance of the analytic Grover fast path against the state-vector
// circuit simulation (the oracle). Two layers:
//   * exact: the closed-form distribution the sampler draws from must
//     equal the Born distribution of the evolved state, element by
//     element, for a sweep of (dim, marked set, k);
//   * statistical: sampled outcomes and full search runs must match the
//     circuit path's behavior within standard sampling tolerances.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "quantum/grover.hpp"
#include "quantum/statevector.hpp"

namespace qclique {
namespace {

bool contains(const std::vector<std::size_t>& v, std::size_t x) {
  return std::binary_search(v.begin(), v.end(), x);
}

TEST(GroverAnalytic, ClosedFormMatchesStateVectorBornDistribution) {
  struct Case {
    std::size_t dim;
    std::vector<std::size_t> marked;
    std::uint64_t k;
  };
  const std::vector<Case> cases = {
      {16, {3}, 3},      {16, {3, 7}, 2},    {25, {0, 12, 24}, 1},
      {64, {13}, 6},     {64, {1, 2, 3}, 4}, {10, {9}, 0},
      {12, {0, 1, 2, 3, 4, 5}, 1},  // M = dim/2
  };
  for (const Case& c : cases) {
    StateVector psi = StateVector::uniform(c.dim);
    const auto oracle = [&](std::size_t i) { return contains(c.marked, i); };
    for (std::uint64_t t = 0; t < c.k; ++t) psi.apply_grover_iteration(oracle);

    const double p = grover_success_probability(c.dim, c.marked.size(), c.k);
    const double per_marked = p / static_cast<double>(c.marked.size());
    const double per_unmarked =
        c.dim == c.marked.size()
            ? 0.0
            : (1.0 - p) / static_cast<double>(c.dim - c.marked.size());
    for (std::size_t i = 0; i < c.dim; ++i) {
      const double expected = contains(c.marked, i) ? per_marked : per_unmarked;
      EXPECT_NEAR(psi.probability(i), expected, 1e-9)
          << "dim=" << c.dim << " k=" << c.k << " i=" << i;
    }
  }
}

TEST(GroverAnalytic, SampledOutcomesMatchCircuitMeasurements) {
  const std::size_t dim = 32;
  const std::vector<std::size_t> marked = {5, 17, 29};
  const std::uint64_t k = 2;
  const std::size_t trials = 20000;

  StateVector psi = StateVector::uniform(dim);
  const auto oracle = [&](std::size_t i) { return contains(marked, i); };
  for (std::uint64_t t = 0; t < k; ++t) psi.apply_grover_iteration(oracle);

  Rng rng_circuit(11), rng_analytic(12);
  std::vector<std::size_t> hits_circuit(dim, 0), hits_analytic(dim, 0);
  for (std::size_t t = 0; t < trials; ++t) {
    ++hits_circuit[psi.measure(rng_circuit)];
    ++hits_analytic[sample_grover_outcome(dim, marked, k, rng_analytic)];
  }
  // Per-element frequencies agree within ~5 sigma of binomial noise.
  for (std::size_t i = 0; i < dim; ++i) {
    const double p = psi.probability(i);
    const double sigma = std::sqrt(p * (1.0 - p) * trials);
    const double diff = std::abs(static_cast<double>(hits_circuit[i]) -
                                 static_cast<double>(hits_analytic[i]));
    EXPECT_LE(diff, 5.0 * sigma + 5.0) << "element " << i;
  }
}

TEST(GroverAnalytic, KnownCountFindsAMarkedElementReliably) {
  Rng rng(21);
  const std::vector<std::size_t> marked = {13};
  int successes = 0;
  for (int t = 0; t < 50; ++t) {
    const GroverResult res = search_known_count(64, marked, rng);
    if (res.found.has_value()) {
      EXPECT_EQ(*res.found, 13u);
      ++successes;
    }
    // Same schedule as the circuit driver: k iterations per attempt.
    EXPECT_EQ(res.iterations % grover_optimal_iterations(64, 1), 0u);
  }
  EXPECT_GE(successes, 48);  // per-attempt success ~0.996 at k = 6
}

TEST(GroverAnalytic, BbhtSuccessRateMatchesCircuitPath) {
  const std::size_t dim = 64;
  const std::vector<std::size_t> marked = {7, 42};
  const auto oracle = [&](std::size_t i) { return contains(marked, i); };
  const int runs = 60;

  Rng rng_circuit(31), rng_analytic(32);
  int found_circuit = 0, found_analytic = 0;
  for (int t = 0; t < runs; ++t) {
    if (search_bbht(dim, oracle, rng_circuit).found.has_value()) ++found_circuit;
    const GroverResult res = search_bbht(dim, marked, rng_analytic);
    if (res.found.has_value()) {
      EXPECT_TRUE(contains(marked, *res.found));
      ++found_analytic;
    }
  }
  // Both paths run the w.h.p. regime: essentially every run succeeds.
  EXPECT_GE(found_circuit, runs - 2);
  EXPECT_GE(found_analytic, runs - 2);
}

TEST(GroverAnalytic, BbhtConcludesNoSolutionOnEmptyMarkedSet) {
  Rng rng(41);
  const GroverResult res = search_bbht(64, std::vector<std::size_t>{}, rng);
  EXPECT_FALSE(res.found.has_value());
  // The budget must be exhausted before concluding "no".
  EXPECT_GE(res.iterations, static_cast<std::uint64_t>(9.0 * std::sqrt(64.0)));
}

TEST(GroverAnalytic, ValidatesMarkedSetContract) {
  Rng rng(51);
  EXPECT_THROW(search_bbht(16, std::vector<std::size_t>{3, 1}, rng),
               SimulationError);
  EXPECT_THROW(search_bbht(16, std::vector<std::size_t>{16}, rng),
               SimulationError);
  EXPECT_THROW(search_known_count(16, std::vector<std::size_t>{}, rng),
               SimulationError);
}

}  // namespace
}  // namespace qclique
