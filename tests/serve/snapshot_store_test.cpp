// SnapshotStore: atomic publish, version monotonicity, pin semantics.
#include "serve/snapshot_store.hpp"

#include <gtest/gtest.h>

#include "api/registry.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/families.hpp"

namespace qclique {
namespace {

ApspSnapshot solved_snapshot(std::uint64_t graph_seed, const std::string& label) {
  Rng rng(graph_seed);
  const Digraph g = make_family_graph("gnp", family_config(8, 0.5, 1, 9), rng);
  ExecutionContext ctx(3);
  const ApspReport report =
      SolverRegistry::instance().get("floyd-warshall").solve(g, ctx);
  return ApspSnapshot(report, {}, label);
}

TEST(ServeSnapshotStore, EmptyStoreHasNothing) {
  SnapshotStore store;
  EXPECT_EQ(store.version(), 0u);
  EXPECT_EQ(store.current(), nullptr);
}

TEST(ServeSnapshotStore, PublishStampsMonotoneVersions) {
  SnapshotStore store;
  const auto first = store.publish(solved_snapshot(1, "a"));
  EXPECT_EQ(first->version(), 1u);
  EXPECT_EQ(store.version(), 1u);
  const auto second = store.publish(solved_snapshot(2, "b"));
  EXPECT_EQ(second->version(), 2u);
  EXPECT_EQ(store.version(), 2u);
  EXPECT_EQ(store.current(), second);
  EXPECT_EQ(store.current()->metadata().label, "b");
}

TEST(ServeSnapshotStore, PinnedSnapshotSurvivesRepublish) {
  SnapshotStore store;
  const auto pin = store.publish(solved_snapshot(1, "old"));
  const DistMatrix before = pin->distances();
  store.publish(solved_snapshot(2, "new"));
  // The old pin is untouched: same object, same answers, freed only when
  // the last pin drops.
  EXPECT_EQ(pin->metadata().label, "old");
  EXPECT_EQ(pin->distances(), before);
  EXPECT_NE(store.current(), pin);
}

TEST(ServeSnapshotStore, RejectsNullPublish) {
  SnapshotStore store;
  EXPECT_THROW(store.publish(std::shared_ptr<ApspSnapshot>()), SimulationError);
}

TEST(ServeSnapshotStore, PinRefreshFollowsPublishes) {
  SnapshotStore store;
  SnapshotPin pin(store);
  EXPECT_EQ(pin.refresh(), nullptr);
  EXPECT_EQ(pin.pinned(), nullptr);

  store.publish(solved_snapshot(1, "v1"));
  const ApspSnapshot* v1 = pin.refresh();
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->version(), 1u);
  // Stable until something new is published: refresh keeps the same pin.
  EXPECT_EQ(pin.refresh(), v1);
  EXPECT_EQ(pin.pinned(), v1);

  store.publish(solved_snapshot(2, "v2"));
  // pinned() never re-pins by itself; refresh() does.
  EXPECT_EQ(pin.pinned(), v1);
  const ApspSnapshot* v2 = pin.refresh();
  ASSERT_NE(v2, nullptr);
  EXPECT_EQ(v2->version(), 2u);
  EXPECT_NE(v2, v1);
}

TEST(ServeSnapshotStore, PublishPrebuiltPointer) {
  SnapshotStore store;
  auto snap = std::make_shared<ApspSnapshot>(solved_snapshot(4, "ptr"));
  const auto pin = store.publish(snap);
  EXPECT_EQ(pin->version(), 1u);
  EXPECT_EQ(store.current(), pin);
}

}  // namespace
}  // namespace qclique
