// The family-conformance property suite: every registered graph family is
// held to its own traits() -- exact vertex count, weight bounds, symmetry,
// degree bounds, acyclicity, negative-cycle freedom, connectivity -- and to
// bit-identical output for identical (config, seed) pairs. Registering a
// family is what subscribes it to these checks, the same pattern as the
// kernel and topology conformance suites.
#include "graph/families.hpp"

#include <gtest/gtest.h>

#include <queue>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "matrix/dist_matrix.hpp"

namespace qclique {
namespace {

// Bellman-Ford negative-cycle detector over all components (virtual
// source). Test oracle only.
bool has_negative_cycle(const Digraph& g) {
  const std::uint32_t n = g.size();
  std::vector<std::int64_t> dist(n, 0);
  for (std::uint32_t pass = 0; pass < n; ++pass) {
    bool changed = false;
    for (std::uint32_t u = 0; u < n; ++u) {
      for (std::uint32_t v = 0; v < n; ++v) {
        if (u == v || !g.has_arc(u, v)) continue;
        const std::int64_t cand = sat_add(dist[u], g.weight(u, v));
        if (cand < dist[v]) {
          dist[v] = cand;
          changed = true;
        }
      }
    }
    if (!changed) return false;
  }
  return true;
}

// Kahn topological check: true iff the digraph has no directed cycle.
bool is_acyclic(const Digraph& g) {
  const std::uint32_t n = g.size();
  std::vector<std::uint32_t> indeg(n, 0);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = 0; v < n; ++v) {
      if (u != v && g.has_arc(u, v)) ++indeg[v];
    }
  }
  std::queue<std::uint32_t> ready;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (indeg[v] == 0) ready.push(v);
  }
  std::uint32_t seen = 0;
  while (!ready.empty()) {
    const std::uint32_t u = ready.front();
    ready.pop();
    ++seen;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (u != v && g.has_arc(u, v) && --indeg[v] == 0) ready.push(v);
    }
  }
  return seen == n;
}

bool is_connected(const Digraph& g) {
  const auto adj = g.symmetric_adjacency();
  std::vector<bool> seen(g.size(), false);
  std::queue<std::uint32_t> bfs;
  bfs.push(0);
  seen[0] = true;
  std::uint32_t count = 1;
  while (!bfs.empty()) {
    const std::uint32_t u = bfs.front();
    bfs.pop();
    for (const std::uint32_t v : adj[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        bfs.push(v);
      }
    }
  }
  return count == g.size();
}

void check_digraph_conformance(const GraphFamily& family,
                               const FamilyConfig& config, std::uint64_t seed) {
  SCOPED_TRACE("family=" + family.name() + " n=" + std::to_string(config.n) +
               " seed=" + std::to_string(seed));
  Rng rng(seed);
  const Digraph g = family.generate(config, rng);
  const FamilyTraits traits = family.traits(config);

  ASSERT_EQ(g.size(), config.n);

  const std::int64_t lo = traits.nonnegative_weights
                              ? std::max<std::int64_t>(0, config.wmin)
                              : config.wmin;
  for (std::uint32_t u = 0; u < config.n; ++u) {
    for (std::uint32_t v = 0; v < config.n; ++v) {
      if (u == v) continue;
      if (traits.symmetric) {
        EXPECT_EQ(g.weight(u, v), g.weight(v, u)) << u << "," << v;
      }
      if (!g.has_arc(u, v)) continue;
      EXPECT_GE(g.weight(u, v), lo) << u << "," << v;
      EXPECT_LE(g.weight(u, v), config.wmax) << u << "," << v;
    }
  }
  if (traits.degree_bound > 0) {
    const auto adj = g.symmetric_adjacency();
    for (std::uint32_t u = 0; u < config.n; ++u) {
      EXPECT_LE(adj[u].size(), traits.degree_bound) << "vertex " << u;
    }
  }
  if (traits.acyclic) {
    EXPECT_TRUE(is_acyclic(g));
  }
  if (traits.no_negative_cycles) {
    EXPECT_FALSE(has_negative_cycle(g));
  }
  if (traits.connected) {
    EXPECT_TRUE(is_connected(g));
  }

  // Bit-identical regeneration from the same (config, seed).
  Rng rng2(seed);
  const Digraph g2 = family.generate(config, rng2);
  EXPECT_EQ(g.num_arcs(), g2.num_arcs());
  EXPECT_EQ(g.to_dist_matrix(), g2.to_dist_matrix());
}

void check_weighted_conformance(const GraphFamily& family,
                                const FamilyConfig& config, std::uint64_t seed) {
  SCOPED_TRACE("family=" + family.name() + " n=" + std::to_string(config.n) +
               " seed=" + std::to_string(seed) + " (weighted)");
  Rng rng(seed);
  const WeightedGraph g = family.generate_weighted(config, rng);
  ASSERT_EQ(g.size(), config.n);
  for (const auto& [pair, w] : g.edges()) {
    EXPECT_GE(w, config.wmin) << pair.a << "," << pair.b;
    EXPECT_LE(w, config.wmax) << pair.a << "," << pair.b;
  }
  Rng rng2(seed);
  const WeightedGraph g2 = family.generate_weighted(config, rng2);
  EXPECT_EQ(g.edges(), g2.edges());
}

TEST(FamilyConformance, EveryRegisteredFamilyUpholdsItsTraits) {
  const auto& registry = GraphFamilyRegistry::instance();
  ASSERT_GE(registry.size(), 7u);

  std::vector<FamilyConfig> configs;
  configs.push_back(FamilyConfig{});  // defaults: n = 16, weights [-4, 9]
  FamilyConfig wide;                  // wider symmetric range, larger n
  wide.n = 24;
  wide.wmin = -8;
  wide.wmax = 8;
  wide.density = 0.4;
  configs.push_back(wide);
  FamilyConfig prime;                 // prime n stresses block rounding
  prime.n = 13;
  prime.wmin = 0;
  prime.wmax = 5;
  prime.clusters = 3;
  prime.layers = 3;
  configs.push_back(prime);
  FamilyConfig tiny;                  // the smallest legal instance
  tiny.n = 1;
  configs.push_back(tiny);
  FamilyConfig two;
  two.n = 2;
  configs.push_back(two);

  for (const std::string& name : registry.names()) {
    const GraphFamily& family = registry.get(name);
    EXPECT_FALSE(family.description().empty()) << name;
    for (const FamilyConfig& config : configs) {
      for (const std::uint64_t seed : {1ull, 99ull}) {
        check_digraph_conformance(family, config, seed);
        check_weighted_conformance(family, config, seed);
      }
    }
  }
}

TEST(FamilyConformance, GnpWithoutCycleGuardKeepsUniformRange) {
  // no_negative_cycles = false is the one config where gnp may produce
  // negative cycles; weights must still sit in [wmin, wmax].
  FamilyConfig config;
  config.n = 18;
  config.wmin = -5;
  config.wmax = 9;
  config.no_negative_cycles = false;
  const GraphFamily& gnp = GraphFamilyRegistry::instance().get("gnp");
  EXPECT_FALSE(gnp.traits(config).no_negative_cycles);
  check_digraph_conformance(gnp, config, 7);
}

TEST(FamilyConformance, RingOfCliquesBlocksAreComplete) {
  FamilyConfig config;
  config.n = 12;
  config.clusters = 3;
  config.wmin = 1;
  config.wmax = 9;
  Rng rng(3);
  const Digraph g = make_family_graph("ring-of-cliques", config, rng);
  // Blocks of 4: {0..3}, {4..7}, {8..11} are cliques.
  for (std::uint32_t b = 0; b < 3; ++b) {
    for (std::uint32_t u = 4 * b; u < 4 * b + 4; ++u) {
      for (std::uint32_t v = u + 1; v < 4 * b + 4; ++v) {
        EXPECT_TRUE(g.has_arc(u, v)) << u << "," << v;
      }
    }
  }
}

TEST(FamilyConformance, LayeredDagArcsOnlyRunForward) {
  FamilyConfig config;
  config.n = 20;
  config.layers = 4;
  config.density = 0.8;
  Rng rng(5);
  const Digraph g = make_family_graph("layered-dag", config, rng);
  EXPECT_GT(g.num_arcs(), 0u);
  for (std::uint32_t u = 0; u < config.n; ++u) {
    for (std::uint32_t v = 0; v < config.n; ++v) {
      if (u != v && g.has_arc(u, v)) {
        EXPECT_LT(u, v);
      }
    }
  }
}

TEST(FamilyConformance, LambdaSkewConcentratesMassOnHubRows) {
  FamilyConfig config;
  config.n = 32;
  config.hubs = 2;
  config.density = 0.05;  // sparse non-hub rows
  Rng rng(11);
  const Digraph g = make_family_graph("lambda-skew", config, rng);
  std::uint64_t hub_arcs = 0;
  for (std::uint32_t u = 0; u < config.hubs; ++u) {
    for (std::uint32_t v = 0; v < config.n; ++v) {
      hub_arcs += (u != v && g.has_arc(u, v));
    }
  }
  // Hub rows are complete; with density 0.05 they dominate the arc mass.
  EXPECT_EQ(hub_arcs, 2u * (config.n - 1));
  EXPECT_GT(static_cast<double>(hub_arcs), 0.4 * static_cast<double>(g.num_arcs()));
}

TEST(FamilyConformance, PowerLawGrowsHubs) {
  FamilyConfig config;
  config.n = 128;
  config.degree = 2;
  config.wmin = 1;
  config.wmax = 9;
  Rng rng(13);
  const Digraph g = make_family_graph("power-law", config, rng);
  const auto adj = g.symmetric_adjacency();
  std::size_t max_degree = 0;
  for (const auto& nbrs : adj) max_degree = std::max(max_degree, nbrs.size());
  // Preferential attachment concentrates far above the attachment count.
  EXPECT_GE(max_degree, 8u);
}

TEST(GraphFamilyRegistryTest, BuiltinPopulationAndLookup) {
  GraphFamilyRegistry registry;
  register_builtin_families(registry);
  EXPECT_EQ(registry.size(), GraphFamilyRegistry::instance().size());
  EXPECT_GE(registry.size(), 7u);
  for (const char* name :
       {"gnp", "grid", "torus", "ring-of-cliques", "expander", "power-law",
        "clustered", "layered-dag", "lambda-skew"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_EQ(registry.get(name).name(), name);
  }
  const auto names = registry.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(GraphFamilyRegistryTest, UnknownFamilyThrowsNamingTheKnownOnes) {
  try {
    GraphFamilyRegistry::instance().get("no-such-family");
    FAIL() << "expected SimulationError";
  } catch (const SimulationError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-family"), std::string::npos);
    EXPECT_NE(what.find("gnp"), std::string::npos);
  }
}

TEST(GraphFamilyRegistryTest, DuplicateRegistrationThrows) {
  GraphFamilyRegistry registry;
  register_builtin_families(registry);
  EXPECT_THROW(register_builtin_families(registry), SimulationError);
  EXPECT_THROW(registry.add(nullptr), SimulationError);
}

TEST(GraphFamilyRegistryTest, ZeroVertexConfigRejected) {
  FamilyConfig config;
  config.n = 0;
  Rng rng(1);
  EXPECT_THROW(make_family_graph("grid", config, rng), SimulationError);
}

}  // namespace
}  // namespace qclique
