#include "core/paths.hpp"

#include <limits>
#include <memory>

#include "common/error.hpp"
#include "common/math.hpp"
#include "congest/lenzen.hpp"
#include "congest/transport.hpp"

namespace qclique {

SuccessorResult build_successors(const Digraph& g, const DistMatrix& dist,
                                 const TransportOptions& transport) {
  const std::uint32_t n = g.size();
  QCLIQUE_CHECK(dist.size() == n, "distance matrix size mismatch");
  SuccessorResult res;
  res.successor.assign(static_cast<std::size_t>(n) * n,
                       std::numeric_limits<std::uint32_t>::max());
  const std::uint32_t net_n = std::max<std::uint32_t>(n, 2);
  const std::unique_ptr<Network> net_ptr = make_network_for(
      net_n, transport, [&g] { return g.symmetric_adjacency(); });
  Network& net = *net_ptr;

  // Each node u needs row d(x, *) for every out-neighbor x. Node x owns its
  // row, so the traffic is: for every arc (u, x), n entries from x to u,
  // chunked budget - 1 entries per message (1 header field for the column
  // base; the row owner is the message source). The successor computation
  // below reads `dist` directly — no delivered payload is ever consumed —
  // so the row shipment routes as per-link counts, payload-free.
  const std::size_t budget = net.config().fields_per_message;
  QCLIQUE_CHECK(budget >= 2, "build_successors needs >= 2 fields per message");
  const std::uint32_t per_msg = static_cast<std::uint32_t>(budget - 1);
  const std::uint64_t chunks_per_row = ceil_div(n, per_msg);
  LinkCounts counts(net.size());
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t x = 0; x < n; ++x) {
      if (u == x || !g.has_arc(u, x)) continue;
      counts.add(static_cast<NodeId>(x), static_cast<NodeId>(u), chunks_per_row);
    }
  }
  route_counts(net, counts, "paths/rows");

  // Hop counts: h(u, v) = fewest edges over weight-shortest u->v paths.
  // Zero-weight arcs make "any relaxing neighbor" successor choices cyclic;
  // requiring the hop count to strictly decrease breaks every tie. h is
  // computed by value iteration over the shortest-path DAG-with-ties (at
  // most n sweeps; local computation, no extra communication beyond the
  // rows already gathered).
  constexpr std::uint32_t kUnset = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> hops(static_cast<std::size_t>(n) * n, kUnset);
  for (std::uint32_t v = 0; v < n; ++v) hops[static_cast<std::size_t>(v) * n + v] = 0;
  for (std::uint32_t sweep = 0; sweep < n; ++sweep) {
    bool changed = false;
    for (std::uint32_t u = 0; u < n; ++u) {
      for (std::uint32_t v = 0; v < n; ++v) {
        if (u == v || is_plus_inf(dist.at(u, v))) continue;
        for (std::uint32_t x = 0; x < n; ++x) {
          if (x == u || !g.has_arc(u, x)) continue;
          if (sat_add(g.weight(u, x), dist.at(x, v)) != dist.at(u, v)) continue;
          const std::uint32_t hx = hops[static_cast<std::size_t>(x) * n + v];
          if (hx == kUnset) continue;
          auto& hu = hops[static_cast<std::size_t>(u) * n + v];
          if (hu == kUnset || hx + 1 < hu) {
            hu = hx + 1;
            changed = true;
          }
        }
      }
    }
    if (!changed) break;
  }

  // succ(u, v) = a relaxing out-neighbor whose hop count strictly drops.
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = 0; v < n; ++v) {
      if (u == v || is_plus_inf(dist.at(u, v))) continue;
      const std::uint32_t hu = hops[static_cast<std::size_t>(u) * n + v];
      for (std::uint32_t x = 0; x < n; ++x) {
        if (x == u || !g.has_arc(u, x)) continue;
        if (sat_add(g.weight(u, x), dist.at(x, v)) != dist.at(u, v)) continue;
        const std::uint32_t hx = hops[static_cast<std::size_t>(x) * n + v];
        if (hu != kUnset && hx != kUnset && hx + 1 == hu) {
          res.successor[static_cast<std::size_t>(u) * n + v] = x;
          break;
        }
      }
      QCLIQUE_CHECK(res.successor[static_cast<std::size_t>(u) * n + v] != kUnset,
                    "no relaxing neighbor: dist is not a valid distance matrix");
    }
  }
  res.rounds = net.ledger().total_rounds();
  res.ledger = net.ledger();
  return res;
}

std::vector<std::uint32_t> successor_path(const SuccessorResult& succ,
                                          std::uint32_t n, std::uint32_t u,
                                          std::uint32_t v) {
  QCLIQUE_CHECK(u < n && v < n, "successor_path endpoint out of range");
  if (u == v) return {u};
  if (succ.successor[static_cast<std::size_t>(u) * n + v] ==
      std::numeric_limits<std::uint32_t>::max()) {
    return {};
  }
  std::vector<std::uint32_t> path{u};
  std::uint32_t cur = u;
  while (cur != v) {
    QCLIQUE_CHECK(path.size() <= n, "successor chain longer than n: cycle");
    cur = succ.successor[static_cast<std::size_t>(cur) * n + v];
    QCLIQUE_CHECK(cur != std::numeric_limits<std::uint32_t>::max(),
                  "successor chain broke before reaching the target");
    path.push_back(cur);
  }
  return path;
}

}  // namespace qclique
