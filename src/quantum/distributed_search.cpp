#include "quantum/distributed_search.hpp"

namespace qclique {

std::uint64_t search_round_cost(const DistributedSearchCost& cost,
                                std::uint64_t oracle_calls) {
  return oracle_calls * cost.compute_uncompute_factor * cost.eval_rounds_per_call;
}

DistributedSearchResult distributed_search(std::size_t dim, const Oracle& oracle,
                                           const DistributedSearchCost& cost,
                                           RoundLedger& ledger,
                                           const std::string& phase, Rng& rng) {
  DistributedSearchResult res;
  res.grover = search_bbht(dim, oracle, rng);
  res.rounds_charged = search_round_cost(cost, res.grover.oracle_calls);
  ledger.charge_quantum(phase, res.rounds_charged, res.grover.oracle_calls);
  return res;
}

DistributedSearchResult distributed_search(std::size_t dim, const Oracle& oracle,
                                           const DistributedSearchCost& cost,
                                           Network& net, const std::string& phase,
                                           Rng& rng) {
  return distributed_search(dim, oracle, cost, net.ledger(), phase, rng);
}

DistributedSearchResult distributed_search(std::size_t dim,
                                           const std::vector<std::size_t>& solutions,
                                           const DistributedSearchCost& cost,
                                           RoundLedger& ledger,
                                           const std::string& phase, Rng& rng) {
  DistributedSearchResult res;
  res.grover = search_bbht(dim, solutions, rng);
  res.rounds_charged = search_round_cost(cost, res.grover.oracle_calls);
  ledger.charge_quantum(phase, res.rounds_charged, res.grover.oracle_calls);
  return res;
}

}  // namespace qclique
