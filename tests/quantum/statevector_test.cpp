// Tests for the exact state-vector simulator.
#include "quantum/statevector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qclique {
namespace {

TEST(StateVectorTest, BasisStateHasUnitMass) {
  StateVector s(5, 2);
  EXPECT_NEAR(s.norm_sq(), 1.0, 1e-12);
  EXPECT_NEAR(s.probability(2), 1.0, 1e-12);
  EXPECT_NEAR(s.probability(0), 0.0, 1e-12);
}

TEST(StateVectorTest, UniformStateProbabilities) {
  StateVector s = StateVector::uniform(8);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(s.probability(i), 0.125, 1e-12);
}

TEST(StateVectorTest, PhaseOracleFlipsOnlyMarked) {
  StateVector s = StateVector::uniform(4);
  s.apply_phase_oracle([](std::size_t i) { return i == 1; });
  EXPECT_GT(s.amp(0).real(), 0);
  EXPECT_LT(s.amp(1).real(), 0);
  EXPECT_NEAR(s.norm_sq(), 1.0, 1e-12);
}

TEST(StateVectorTest, DiffusionFixesUniform) {
  StateVector s = StateVector::uniform(16);
  StateVector before = s;
  s.apply_diffusion();
  EXPECT_NEAR(s.l2_distance(before), 0.0, 1e-12);
}

TEST(StateVectorTest, DiffusionIsInvolution) {
  // D^2 = I: applying the reflection twice restores any state.
  StateVector s(8, 3);
  s.apply_phase_oracle([](std::size_t i) { return i % 2 == 0; });
  StateVector before = s;
  s.apply_diffusion();
  s.apply_diffusion();
  EXPECT_NEAR(s.l2_distance(before), 0.0, 1e-12);
}

TEST(StateVectorTest, GroverIterationPreservesNorm) {
  StateVector s = StateVector::uniform(32);
  for (int k = 0; k < 10; ++k) {
    s.apply_grover_iteration([](std::size_t i) { return i == 7; });
    EXPECT_NEAR(s.norm_sq(), 1.0, 1e-10);
  }
}

TEST(StateVectorTest, GroverAmplifiesMarked) {
  StateVector s = StateVector::uniform(64);
  const auto oracle = [](std::size_t i) { return i == 42; };
  double prev = s.probability(42);
  // First few iterations strictly increase the marked amplitude.
  for (int k = 0; k < 4; ++k) {
    s.apply_grover_iteration(oracle);
    EXPECT_GT(s.probability(42), prev);
    prev = s.probability(42);
  }
  EXPECT_GT(prev, 0.3);
}

TEST(StateVectorTest, MeasureFollowsBornRule) {
  StateVector s = StateVector::uniform(4);
  s.apply_grover_iteration([](std::size_t i) { return i == 3; });
  Rng rng(99);
  int hits = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) hits += (s.measure(rng) == 3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, s.probability(3), 0.02);
}

// Regression: the seed `measure` accumulated with `u <= 0`, so a sampled
// quantile landing exactly on a cumulative boundary (uniform_double() == 0
// with a zero leading amplitude) returned a zero-probability basis state.
TEST(StateVectorTest, MeasureAtBoundaryNeverReturnsZeroProbabilityState) {
  // measure_at works in mass space (measure scales the quantile by
  // norm_sq), so unit amplitudes give exactly representable boundaries at
  // 0, 1, and 2 -- no floating-point slack in the assertions.
  StateVector s(5);
  s.set_amp(0, {0.0, 0.0});  // leading amplitude zero
  s.set_amp(2, {1.0, 0.0});
  s.set_amp(4, {1.0, 0.0});
  EXPECT_EQ(s.measure_at(0.0), 2u);   // the seed bug: returned state 0
  EXPECT_EQ(s.measure_at(0.5), 2u);
  EXPECT_EQ(s.measure_at(1.0), 4u);   // interior boundary skips state 3
  EXPECT_EQ(s.measure_at(1.5), 4u);
  EXPECT_EQ(s.measure_at(2.0), 4u);   // top boundary: last supported state
  EXPECT_EQ(s.measure_at(3.0), 4u);   // numerical slack, same landing spot
}

TEST(StateVectorTest, MeasureNeverSamplesZeroAmplitudeStates) {
  // All mass on state 4; states 0-3 have probability exactly zero, so no
  // draw -- whatever quantile the Rng produces -- may return them.
  StateVector s(6);
  s.set_amp(0, {0.0, 0.0});
  s.set_amp(4, {1.0, 0.0});
  Rng rng(17);
  for (int t = 0; t < 2000; ++t) EXPECT_EQ(s.measure(rng), 4u);
}

TEST(StateVectorTest, ProbabilityOfPredicate) {
  StateVector s = StateVector::uniform(10);
  const double p = s.probability_of([](std::size_t i) { return i < 3; });
  EXPECT_NEAR(p, 0.3, 1e-12);
}

TEST(StateVectorTest, FidelityOfIdenticalStatesIsOne) {
  StateVector s = StateVector::uniform(6);
  EXPECT_NEAR(s.fidelity(s), 1.0, 1e-12);
}

TEST(StateVectorTest, FidelityOfOrthogonalStatesIsZero) {
  StateVector a(4, 0), b(4, 1);
  EXPECT_NEAR(a.fidelity(b), 0.0, 1e-12);
}

TEST(StateVectorTest, NormalizeRestoresUnitNorm) {
  StateVector s(3, 0);
  s.set_amp(0, {2.0, 0.0});
  s.set_amp(1, {0.0, 2.0});
  s.normalize();
  EXPECT_NEAR(s.norm_sq(), 1.0, 1e-12);
}

TEST(StateVectorTest, InvalidConstructionRejected) {
  EXPECT_THROW(StateVector(0), SimulationError);
  EXPECT_THROW(StateVector(4, 4), SimulationError);
}

TEST(StateVectorTest, DimensionMismatchRejected) {
  StateVector a(4), b(5);
  EXPECT_THROW(a.fidelity(b), SimulationError);
  EXPECT_THROW(a.l2_distance(b), SimulationError);
}

}  // namespace
}  // namespace qclique
