#include "baseline/shortest_paths.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qclique {

std::optional<DistMatrix> floyd_warshall(const Digraph& g) {
  const std::uint32_t n = g.size();
  DistMatrix d = g.to_dist_matrix();
  for (std::uint32_t k = 0; k < n; ++k) {
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::int64_t dik = d.at(i, k);
      if (is_plus_inf(dik)) continue;
      for (std::uint32_t j = 0; j < n; ++j) {
        const std::int64_t via = sat_add(dik, d.at(k, j));
        if (via < d.at(i, j)) d.set(i, j, via);
      }
    }
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    if (d.at(i, i) < 0) return std::nullopt;
  }
  return d;
}

std::optional<std::vector<std::int64_t>> bellman_ford(const Digraph& g,
                                                      std::uint32_t source) {
  const std::uint32_t n = g.size();
  QCLIQUE_CHECK(source < n, "bellman_ford source out of range");
  std::vector<std::int64_t> dist(n, kPlusInf);
  dist[source] = 0;
  for (std::uint32_t pass = 0; pass + 1 < n; ++pass) {
    bool changed = false;
    for (std::uint32_t u = 0; u < n; ++u) {
      if (is_plus_inf(dist[u])) continue;
      for (std::uint32_t v = 0; v < n; ++v) {
        if (u == v || !g.has_arc(u, v)) continue;
        const std::int64_t cand = sat_add(dist[u], g.weight(u, v));
        if (cand < dist[v]) {
          dist[v] = cand;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  // One more pass detects a reachable negative cycle.
  for (std::uint32_t u = 0; u < n; ++u) {
    if (is_plus_inf(dist[u])) continue;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (u == v || !g.has_arc(u, v)) continue;
      if (sat_add(dist[u], g.weight(u, v)) < dist[v]) return std::nullopt;
    }
  }
  return dist;
}

void DijkstraWorkspace::bind(const Digraph& g) {
  const std::uint32_t n = g.size();
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = 0; v < n; ++v) {
      if (u != v && g.has_arc(u, v)) {
        QCLIQUE_CHECK(g.weight(u, v) >= 0, "dijkstra requires non-negative weights");
      }
    }
  }
  dist_.assign(n, kPlusInf);
  settled_.assign(n, 0);
  touched_.clear();
  heap_.clear();
}

void DijkstraWorkspace::run(const Digraph& g, std::uint32_t source,
                            std::int64_t* out) {
  const std::uint32_t n = g.size();
  QCLIQUE_CHECK(source < n, "dijkstra source out of range");
  QCLIQUE_CHECK(dist_.size() == n, "DijkstraWorkspace: bind(g) before run()");
  using Entry = std::pair<std::int64_t, std::uint32_t>;
  const auto heap_less = std::greater<Entry>{};  // min-heap
  dist_[source] = 0;
  touched_.push_back(source);
  heap_.push_back({0, source});
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), heap_less);
    const auto [du, u] = heap_.back();
    heap_.pop_back();
    if (settled_[u]) continue;
    settled_[u] = 1;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (v == u || !g.has_arc(u, v)) continue;
      const std::int64_t cand = sat_add(du, g.weight(u, v));
      if (cand < dist_[v]) {
        if (is_plus_inf(dist_[v])) touched_.push_back(v);
        dist_[v] = cand;
        heap_.push_back({cand, v});
        std::push_heap(heap_.begin(), heap_.end(), heap_less);
      }
    }
  }
  std::copy(dist_.begin(), dist_.end(), out);
  // Restore the resting state by undoing only what this run touched.
  for (const std::uint32_t v : touched_) {
    dist_[v] = kPlusInf;
    settled_[v] = 0;
  }
  touched_.clear();
}

std::vector<std::int64_t> dijkstra(const Digraph& g, std::uint32_t source) {
  DijkstraWorkspace ws;
  ws.bind(g);
  std::vector<std::int64_t> dist(g.size());
  ws.run(g, source, dist.data());
  return dist;
}

std::optional<DistMatrix> johnson(const Digraph& g) {
  const std::uint32_t n = g.size();
  // Virtual source: a graph with one extra vertex and zero-weight arcs to
  // every original vertex gives the reweighting potentials h(v).
  Digraph aug(n + 1);
  for (std::uint32_t u = 0; u < n; ++u) {
    aug.set_arc(n, u, 0);
    for (std::uint32_t v = 0; v < n; ++v) {
      if (u != v && g.has_arc(u, v)) aug.set_arc(u, v, g.weight(u, v));
    }
  }
  const auto h = bellman_ford(aug, n);
  if (!h.has_value()) return std::nullopt;
  // Reweighted graph: w'(u,v) = w(u,v) + h(u) - h(v) >= 0.
  Digraph rw(n);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = 0; v < n; ++v) {
      if (u != v && g.has_arc(u, v)) {
        rw.set_arc(u, v, g.weight(u, v) + (*h)[u] - (*h)[v]);
      }
    }
  }
  DistMatrix d(n, kPlusInf);
  DijkstraWorkspace ws;
  ws.bind(rw);
  std::vector<std::int64_t> ds(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    ws.run(rw, s, ds.data());
    for (std::uint32_t t = 0; t < n; ++t) {
      if (is_plus_inf(ds[t])) continue;
      d.set(s, t, ds[t] - (*h)[s] + (*h)[t]);
    }
    d.set(s, s, std::min<std::int64_t>(d.at(s, s), 0));
  }
  return d;
}

std::vector<std::uint32_t> reconstruct_path(const Digraph& g, const DistMatrix& dist,
                                            std::uint32_t u, std::uint32_t v) {
  const std::uint32_t n = g.size();
  QCLIQUE_CHECK(u < n && v < n, "reconstruct_path endpoint out of range");
  if (u == v) return {u};
  if (is_plus_inf(dist.at(u, v))) return {};
  // Walk forward: from `cur`, pick a neighbor x with
  // dist(u,cur) + w(cur,x) + dist(x,v) == dist(u,v). Acyclic for graphs
  // without zero-weight cycles on shortest paths; bounded by n hops anyway.
  std::vector<std::uint32_t> path{u};
  std::uint32_t cur = u;
  for (std::uint32_t hops = 0; hops < n && cur != v; ++hops) {
    bool advanced = false;
    for (std::uint32_t x = 0; x < n; ++x) {
      if (x == cur || !g.has_arc(cur, x)) continue;
      const std::int64_t through =
          sat_add(sat_add(dist.at(u, cur), g.weight(cur, x)), dist.at(x, v));
      if (through == dist.at(u, v) &&
          sat_add(dist.at(u, cur), g.weight(cur, x)) == dist.at(u, x)) {
        path.push_back(x);
        cur = x;
        advanced = true;
        break;
      }
    }
    if (!advanced) break;
  }
  if (cur != v) return {};  // zero-cycle pathology; caller may fall back
  return path;
}

}  // namespace qclique
