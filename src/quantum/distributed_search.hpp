// Distributed quantum search cost model (paper Section 4.1).
//
// Le Gall-Magniez: if a node can evaluate g : X -> {0,1} with an r-round
// classical distributed procedure C, then the unitary corresponding to C can
// be implemented in O(r) rounds, and Grover search over X completes in
// O~(r * sqrt(|X|)) rounds. This wrapper runs the *exact* Grover simulation
// (grover.hpp) and charges rounds on a ledger: every oracle invocation costs
// `eval_rounds_per_call` rounds for the evaluation circuit plus the same
// again for uncomputation, and each diffusion is local (free). The
// evaluation cost itself is *measured* by the caller, who runs the classical
// evaluation procedure through a `Network` transport once (any registered
// topology -- the measured r already reflects the communication model) and
// passes the observed round count.
#pragma once

#include <cstdint>
#include <string>

#include "congest/round_ledger.hpp"
#include "congest/transport.hpp"
#include "quantum/grover.hpp"

namespace qclique {

/// Cost-model parameters for one distributed search.
struct DistributedSearchCost {
  /// Measured rounds of one batched evaluation of the classical procedure.
  std::uint64_t eval_rounds_per_call = 1;
  /// Multiplier covering compute + uncompute of the evaluation circuit.
  std::uint64_t compute_uncompute_factor = 2;
};

/// Result of a distributed search: the Grover outcome plus charged rounds.
struct DistributedSearchResult {
  GroverResult grover;
  std::uint64_t rounds_charged = 0;
};

/// Runs BBHT Grover search over [0, dim) with the given semantic oracle,
/// charging `cost` per oracle call to `ledger` under `phase`.
DistributedSearchResult distributed_search(std::size_t dim, const Oracle& oracle,
                                           const DistributedSearchCost& cost,
                                           RoundLedger& ledger,
                                           const std::string& phase, Rng& rng);

/// Convenience overload charging the rounds straight onto a transport's
/// ledger, for harnesses that measure a search against a live network
/// (equivalent to passing net.ledger()).
DistributedSearchResult distributed_search(std::size_t dim, const Oracle& oracle,
                                           const DistributedSearchCost& cost,
                                           Network& net, const std::string& phase,
                                           Rng& rng);

/// Known-marked-set overload: runs the analytic BBHT fast path (no state
/// vector; see grover.hpp) with identical schedule, accounting, and round
/// charging. Callers that construct the marked set from their semantic
/// oracle anyway (the simulator's algorithms do) should prefer this form —
/// it is O(1) per attempt instead of O(dim) per Grover iteration.
DistributedSearchResult distributed_search(std::size_t dim,
                                           const std::vector<std::size_t>& solutions,
                                           const DistributedSearchCost& cost,
                                           RoundLedger& ledger,
                                           const std::string& phase, Rng& rng);

/// Rounds one search with `oracle_calls` oracle invocations costs under the
/// model: oracle_calls * compute_uncompute_factor * eval_rounds_per_call.
std::uint64_t search_round_cost(const DistributedSearchCost& cost,
                                std::uint64_t oracle_calls);

}  // namespace qclique
