#include "quantum/grover.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qclique {

std::uint64_t grover_optimal_iterations(std::size_t dim, std::size_t solutions) {
  QCLIQUE_CHECK(solutions >= 1 && solutions <= dim, "solution count out of range");
  if (2 * solutions >= dim) return 0;
  const double theta =
      std::asin(std::sqrt(static_cast<double>(solutions) / static_cast<double>(dim)));
  return static_cast<std::uint64_t>(std::floor(M_PI / (4.0 * theta)));
}

double grover_success_probability(std::size_t dim, std::size_t solutions,
                                  std::uint64_t k) {
  QCLIQUE_CHECK(solutions <= dim, "solution count out of range");
  if (solutions == 0) return 0.0;
  const double theta =
      std::asin(std::sqrt(static_cast<double>(solutions) / static_cast<double>(dim)));
  const double s = std::sin((2.0 * static_cast<double>(k) + 1.0) * theta);
  return s * s;
}

GroverResult search_known_count(std::size_t dim, std::size_t solutions,
                                const Oracle& oracle, Rng& rng) {
  QCLIQUE_CHECK(solutions >= 1, "search_known_count requires a solution");
  GroverResult res;
  const std::uint64_t k = grover_optimal_iterations(dim, solutions);
  // The evolved state is deterministic, so simulate the circuit once and
  // reuse it -- but each measurement attempt physically re-prepares and
  // re-runs the circuit, so every attempt is charged k iterations.
  StateVector psi = StateVector::uniform(dim);
  for (std::uint64_t i = 0; i < k; ++i) psi.apply_grover_iteration(oracle);
  for (int attempt = 0; attempt < 3; ++attempt) {
    res.iterations += k;
    res.oracle_calls += k;
    const std::size_t x = psi.measure(rng);
    ++res.measurements;
    ++res.oracle_calls;  // classical verification of the measured element
    if (oracle(x)) {
      res.found = x;
      return res;
    }
  }
  return res;
}

GroverResult search_bbht(std::size_t dim, const Oracle& oracle, Rng& rng,
                         double cutoff_factor) {
  GroverResult res;
  const double sqrt_dim = std::sqrt(static_cast<double>(dim));
  const std::uint64_t budget =
      static_cast<std::uint64_t>(std::ceil(cutoff_factor * sqrt_dim)) + 3;
  double m = 1.0;
  const double lambda = 6.0 / 5.0;
  while (res.iterations < budget) {
    const std::uint64_t j = rng.uniform_u64(static_cast<std::uint64_t>(m) + 1);
    StateVector psi = StateVector::uniform(dim);
    for (std::uint64_t t = 0; t < j; ++t) psi.apply_grover_iteration(oracle);
    res.iterations += j;
    res.oracle_calls += j;
    const std::size_t x = psi.measure(rng);
    ++res.measurements;
    ++res.oracle_calls;  // classical verification of the measured element
    if (oracle(x)) {
      res.found = x;
      return res;
    }
    m = std::min(lambda * m, sqrt_dim);
  }
  return res;  // concluded: no solution (w.h.p.)
}

// --- Analytic fast path ----------------------------------------------------

std::size_t sample_grover_outcome(std::size_t dim,
                                  const std::vector<std::size_t>& solutions,
                                  std::uint64_t k, Rng& rng) {
  const std::size_t M = solutions.size();
  if (M == 0) {
    // No marked element: the state never moves off uniform.
    return rng.uniform_u64(dim);
  }
  const double p = grover_success_probability(dim, M, k);
  if (rng.bernoulli(p)) {
    return solutions[rng.uniform_u64(M)];
  }
  // Uniform over unmarked elements (solutions are sorted: skip over them).
  const std::size_t unmarked = dim - M;
  if (unmarked == 0) return solutions[rng.uniform_u64(M)];
  std::size_t r = rng.uniform_u64(unmarked);
  // Map r into [0, dim) \ solutions.
  for (std::size_t s : solutions) {
    if (r >= s) ++r;  // works because solutions are sorted ascending
  }
  return r;
}

namespace {

void validate_marked_set(std::size_t dim, const std::vector<std::size_t>& solutions) {
  QCLIQUE_CHECK(std::is_sorted(solutions.begin(), solutions.end()),
                "marked set must be sorted");
  QCLIQUE_CHECK(solutions.empty() || solutions.back() < dim,
                "marked element outside domain");
}

bool is_marked(const std::vector<std::size_t>& solutions, std::size_t x) {
  return std::binary_search(solutions.begin(), solutions.end(), x);
}

}  // namespace

GroverResult search_known_count(std::size_t dim,
                                const std::vector<std::size_t>& solutions,
                                Rng& rng) {
  QCLIQUE_CHECK(!solutions.empty(), "search_known_count requires a solution");
  validate_marked_set(dim, solutions);
  GroverResult res;
  const std::uint64_t k = grover_optimal_iterations(dim, solutions.size());
  // Same accounting as the circuit driver: every measurement attempt
  // physically re-prepares and re-runs the circuit, so each is charged k
  // iterations (here the re-run costs nothing to simulate).
  for (int attempt = 0; attempt < 3; ++attempt) {
    res.iterations += k;
    res.oracle_calls += k;
    const std::size_t x = sample_grover_outcome(dim, solutions, k, rng);
    ++res.measurements;
    ++res.oracle_calls;  // classical verification of the measured element
    if (is_marked(solutions, x)) {
      res.found = x;
      return res;
    }
  }
  return res;
}

GroverResult search_bbht(std::size_t dim,
                         const std::vector<std::size_t>& solutions, Rng& rng,
                         double cutoff_factor) {
  validate_marked_set(dim, solutions);
  GroverResult res;
  const double sqrt_dim = std::sqrt(static_cast<double>(dim));
  const std::uint64_t budget =
      static_cast<std::uint64_t>(std::ceil(cutoff_factor * sqrt_dim)) + 3;
  double m = 1.0;
  const double lambda = 6.0 / 5.0;
  while (res.iterations < budget) {
    const std::uint64_t j = rng.uniform_u64(static_cast<std::uint64_t>(m) + 1);
    res.iterations += j;
    res.oracle_calls += j;
    const std::size_t x = sample_grover_outcome(dim, solutions, j, rng);
    ++res.measurements;
    ++res.oracle_calls;  // classical verification of the measured element
    if (is_marked(solutions, x)) {
      res.found = x;
      return res;
    }
    m = std::min(lambda * m, sqrt_dim);
  }
  return res;  // concluded: no solution (w.h.p.)
}

}  // namespace qclique
