// Round accounting for simulated protocols.
//
// The reproduction's headline numbers are *round counts*, so every cost in
// the system flows through one ledger: synchronous message rounds measured
// by the network, routing rounds charged under Lemma 1, and quantum rounds
// charged per Grover oracle invocation (Le Gall-Magniez conversion: an
// r-round classical evaluation costs O(r) rounds per quantum query).
// Phases are named so benches can break totals down by algorithm step.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qclique {

/// Quotes and escapes a string as a JSON string literal (backslash, quote,
/// and control characters). Shared by the ledger/report JSON exports.
std::string json_quote(const std::string& s);

/// Per-phase round/message/traffic statistics.
struct PhaseStats {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t quantum_oracle_calls = 0;
};

/// Accumulates rounds across named phases; thread-compatible (single-owner).
class RoundLedger {
 public:
  /// Adds `rounds` rounds (and optionally message traffic) to `phase`.
  void charge(const std::string& phase, std::uint64_t rounds,
              std::uint64_t messages = 0);

  /// Records a quantum oracle invocation costing `rounds` rounds.
  void charge_quantum(const std::string& phase, std::uint64_t rounds,
                      std::uint64_t oracle_calls = 1);

  std::uint64_t total_rounds() const { return total_rounds_; }
  std::uint64_t total_messages() const { return total_messages_; }
  std::uint64_t total_oracle_calls() const { return total_oracle_calls_; }

  /// Rounds charged to a single phase (0 if the phase never ran).
  std::uint64_t phase_rounds(const std::string& phase) const;

  const std::map<std::string, PhaseStats>& phases() const { return phases_; }

  /// Merges another ledger's phases into this one (used when a sub-protocol
  /// runs on its own ledger and the parent absorbs the cost).
  void absorb(const RoundLedger& other);

  void reset();

  /// Multi-line human-readable report sorted by descending rounds.
  std::string report() const;

  /// Machine-readable export: one JSON object with totals and a "phases"
  /// map, for harnesses that persist run costs (ApspReport, check scripts).
  std::string to_json() const;

 private:
  std::map<std::string, PhaseStats> phases_;
  std::uint64_t total_rounds_ = 0;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_oracle_calls_ = 0;
};

}  // namespace qclique
