// Unit tests for common/math.hpp: saturating min-plus arithmetic, integer
// logs/roots, and the balanced block partition used by the paper's V / V'
// vertex partitions.
#include "common/math.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace qclique {
namespace {

TEST(SatAdd, FiniteValues) {
  EXPECT_EQ(sat_add(3, 4), 7);
  EXPECT_EQ(sat_add(-10, 4), -6);
  EXPECT_EQ(sat_add(0, 0), 0);
}

TEST(SatAdd, PlusInfAbsorbs) {
  EXPECT_TRUE(is_plus_inf(sat_add(kPlusInf, 5)));
  EXPECT_TRUE(is_plus_inf(sat_add(5, kPlusInf)));
  EXPECT_TRUE(is_plus_inf(sat_add(kPlusInf, kPlusInf)));
}

TEST(SatAdd, MinusInfAbsorbs) {
  EXPECT_TRUE(is_minus_inf(sat_add(kMinusInf, 5)));
  EXPECT_TRUE(is_minus_inf(sat_add(5, kMinusInf)));
}

TEST(SatAdd, PlusInfDominatesWhenMixed) {
  // Convention: +inf wins over -inf (matches the distance-product use where
  // +inf means "no edge", and no-edge annihilates a path).
  EXPECT_TRUE(is_plus_inf(sat_add(kPlusInf, kMinusInf)));
}

TEST(SatAdd, SaturatesNearSentinels) {
  EXPECT_TRUE(is_plus_inf(sat_add(kPlusInf - 1, kPlusInf - 1)));
  EXPECT_TRUE(is_minus_inf(sat_add(kMinusInf + 1, kMinusInf + 1)));
}

TEST(Log2, FloorAndCeil) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(Log2, PaperLogNeverZero) {
  EXPECT_EQ(paper_log(1), 1);
  EXPECT_EQ(paper_log(2), 1);
  EXPECT_EQ(paper_log(3), 2);
  EXPECT_EQ(paper_log(256), 8);
}

TEST(Isqrt, ExactSquaresAndBetween) {
  for (std::uint64_t r = 0; r < 2000; ++r) {
    EXPECT_EQ(isqrt(r * r), r);
    if (r > 0) EXPECT_EQ(isqrt(r * r + 1), r);
  }
  EXPECT_EQ(isqrt(0), 0u);
  EXPECT_EQ(isqrt(15), 3u);
  EXPECT_EQ(isqrt(16), 4u);
  EXPECT_EQ(isqrt(17), 4u);
}

TEST(Isqrt, CeilVariant) {
  EXPECT_EQ(isqrt_ceil(16), 4u);
  EXPECT_EQ(isqrt_ceil(17), 5u);
  EXPECT_EQ(isqrt_ceil(1), 1u);
}

TEST(Iroot, FourthRoot) {
  EXPECT_EQ(iroot4_ceil(16), 2u);
  EXPECT_EQ(iroot4_ceil(17), 3u);
  EXPECT_EQ(iroot4_ceil(81), 3u);
  EXPECT_EQ(iroot4_ceil(256), 4u);
  EXPECT_EQ(iroot4_ceil(1), 1u);
  EXPECT_EQ(iroot4_ceil(0), 0u);
}

TEST(Iroot, CubeRoot) {
  EXPECT_EQ(iroot3_ceil(27), 3u);
  EXPECT_EQ(iroot3_ceil(28), 4u);
  EXPECT_EQ(iroot3_ceil(64), 4u);
}

TEST(Iroot, AgreesWithFloatingPointOnSweep) {
  for (std::uint64_t n = 1; n <= 100000; n += 37) {
    const auto r4 = iroot4_ceil(n);
    EXPECT_GE(static_cast<double>(r4 * r4) * static_cast<double>(r4 * r4),
              static_cast<double>(n));
    if (r4 > 1) {
      const auto s = r4 - 1;
      EXPECT_LT(static_cast<double>(s * s) * static_cast<double>(s * s),
                static_cast<double>(n));
    }
  }
}

TEST(BlockPartition, SizesDifferByAtMostOne) {
  for (std::uint64_t n : {7u, 16u, 100u, 101u}) {
    for (std::uint64_t b = 1; b <= n; b += 3) {
      BlockPartition part(n, b);
      ASSERT_EQ(part.num_blocks(), b);
      std::uint64_t lo = n, hi = 0, total = 0;
      for (std::uint64_t i = 0; i < b; ++i) {
        lo = std::min(lo, part.block_size(i));
        hi = std::max(hi, part.block_size(i));
        total += part.block_size(i);
      }
      EXPECT_EQ(total, n);
      EXPECT_LE(hi - lo, 1u);
    }
  }
}

TEST(BlockPartition, BlockOfIsConsistent) {
  BlockPartition part(101, 7);
  for (std::uint64_t i = 0; i < 101; ++i) {
    const std::uint64_t b = part.block_of(i);
    EXPECT_GE(i, part.block_begin(b));
    EXPECT_LT(i, part.block_end(b));
  }
}

TEST(BlockPartition, RejectsBadArguments) {
  EXPECT_THROW(BlockPartition(5, 0), SimulationError);
  EXPECT_THROW(BlockPartition(5, 6), SimulationError);
}

TEST(Ipow, SmallCases) {
  EXPECT_EQ(ipow(2, 10), 1024u);
  EXPECT_EQ(ipow(3, 0), 1u);
  EXPECT_EQ(ipow(10, 6), 1000000u);
}

}  // namespace
}  // namespace qclique
