// Tests for repetition amplification.
#include "quantum/amplify.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qclique {
namespace {

TEST(RepetitionsForTarget, Arithmetic) {
  // 0.5 failure, 1/1024 target: 10 repetitions.
  EXPECT_EQ(repetitions_for_target(0.5, 1.0 / 1024.0), 10u);
  // Already below target: one run.
  EXPECT_EQ(repetitions_for_target(0.001, 0.01), 1u);
  EXPECT_EQ(repetitions_for_target(0.9, 0.5), 7u);  // ceil(ln .5 / ln .9)
}

TEST(RepetitionsForTarget, RejectsDegenerate) {
  EXPECT_THROW(repetitions_for_target(0.0, 0.1), SimulationError);
  EXPECT_THROW(repetitions_for_target(1.0, 0.1), SimulationError);
  EXPECT_THROW(repetitions_for_target(0.5, 0.0), SimulationError);
}

TEST(AmplifiedSearch, StopsAtFirstHit) {
  Rng rng(1);
  RoundLedger ledger;
  const auto res = amplified_search(256, [](std::size_t x) { return x == 7; },
                                    DistributedSearchCost{}, 5, ledger, "a", rng);
  ASSERT_TRUE(res.grover.found.has_value());
  EXPECT_EQ(*res.grover.found, 7u);
  EXPECT_LE(res.repetitions, 5u);
  EXPECT_GT(res.rounds_charged, 0u);
  EXPECT_EQ(ledger.total_rounds(), res.rounds_charged);
}

TEST(AmplifiedSearch, ExhaustsRepetitionsOnEmptyDomain) {
  Rng rng(2);
  RoundLedger ledger;
  const auto res = amplified_search(64, [](std::size_t) { return false; },
                                    DistributedSearchCost{}, 3, ledger, "a", rng);
  EXPECT_FALSE(res.grover.found.has_value());
  EXPECT_EQ(res.repetitions, 3u);
}

TEST(AmplifiedSearch, SuccessRateAtOrAboveSingleRun) {
  // With 3 repetitions over a hard instance the empirical success rate must
  // beat a single run's (both are ~1 here, so compare against an absolute
  // floor).
  Rng rng(3);
  RoundLedger ledger;
  int hits = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    const auto res = amplified_search(512, [](std::size_t x) { return x == 100; },
                                      DistributedSearchCost{}, 3, ledger, "a", rng);
    hits += res.grover.found.has_value();
  }
  EXPECT_GE(hits, trials - 1);
}

TEST(AmplifiedSearch, RejectsZeroRepetitions) {
  Rng rng(4);
  RoundLedger ledger;
  EXPECT_THROW(amplified_search(8, [](std::size_t) { return true; },
                                DistributedSearchCost{}, 0, ledger, "a", rng),
               SimulationError);
}

}  // namespace
}  // namespace qclique
