#include "congest/primitives.hpp"

#include <algorithm>

#include "common/math.hpp"
#include "congest/lenzen.hpp"

namespace qclique {

void broadcast_fields(Network& net, NodeId src,
                      std::span<const std::int64_t> fields, std::uint32_t tag,
                      const std::string& phase) {
  const std::size_t budget = net.config().fields_per_message;
  for (std::size_t base = 0; base < fields.size(); base += budget) {
    Payload p;
    p.tag = tag;
    for (std::size_t i = base; i < std::min(fields.size(), base + budget); ++i) {
      p.push(fields[i]);
    }
    for (NodeId v = 0; v < net.size(); ++v) {
      if (v != src) net.send(src, v, p);
    }
  }
  net.run_until_drained(phase);
  if (fields.empty()) return;
}

void gather_fields(Network& net, NodeId collector, const RowProvider& row_of,
                   std::uint32_t tag, const std::string& phase) {
  const std::size_t budget = net.config().fields_per_message;
  for (NodeId v = 0; v < net.size(); ++v) {
    if (v == collector) continue;
    const std::span<const std::int64_t> row = row_of(v);
    for (std::size_t base = 0; base < row.size(); base += budget) {
      Payload p;
      p.tag = tag;
      for (std::size_t i = base; i < std::min(row.size(), base + budget); ++i) {
        p.push(row[i]);
      }
      net.send(v, collector, p);
    }
  }
  net.run_until_drained(phase);
}

void gather_fields(Network& net, NodeId collector,
                   const std::vector<std::vector<std::int64_t>>& fields_per_node,
                   std::uint32_t tag, const std::string& phase) {
  QCLIQUE_CHECK(fields_per_node.size() == net.size(),
                "gather_fields: one row per node required");
  gather_fields(net, collector,
                [&](NodeId v) { return std::span<const std::int64_t>(fields_per_node[v]); },
                tag, phase);
}

void disseminate_fields(Network& net, NodeId src,
                        std::span<const std::int64_t> fields, std::uint32_t tag,
                        const std::string& phase) {
  if (fields.empty()) return;
  const std::uint32_t n = net.size();
  const std::size_t budget = net.config().fields_per_message;

  // Stage 1: chop `fields` into n chunks; ship chunk v to node v via route().
  // Each chunk is <= ceil(|fields|/n) fields; message counts obey Lemma 1's
  // per-source bound in batches.
  const std::size_t chunk = ceil_div(fields.size(), n);
  MessageBatch batch;  // flat struct-of-arrays batch, one shared arena
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::size_t lo = std::min(fields.size(), static_cast<std::size_t>(v) * chunk);
    const std::size_t hi = std::min(fields.size(), lo + chunk);
    for (std::size_t base = lo; base < hi; base += budget) {
      batch.add(src, v, tag);
      for (std::size_t i = base; i < std::min(hi, base + budget); ++i) {
        batch.field(fields[i]);
      }
    }
  }
  route(net, batch, phase);

  // Stage 2: every node rebroadcasts its chunk. Chunk order equals node id,
  // and within a chunk message order is preserved, so receivers can
  // reassemble by (src, arrival order).
  MessageBatch rebatch;
  for (std::uint32_t v = 0; v < n; ++v) {
    // Gather what v just received with our tag.
    std::vector<Payload> mine;
    auto& box = net.inbox(v);
    auto it = std::stable_partition(box.begin(), box.end(), [&](const Message& m) {
      return m.payload.tag != tag;
    });
    for (auto jt = it; jt != box.end(); ++jt) mine.push_back(jt->payload);
    box.erase(it, box.end());
    for (const Payload& p : mine) {
      for (std::uint32_t w = 0; w < n; ++w) {
        rebatch.add(v, w, p.tag);
        for (std::size_t i = 0; i < p.size; ++i) rebatch.field(p.fields[i]);
      }
    }
  }
  route(net, rebatch, phase);
}

std::vector<std::int64_t> collect_inbox_fields(Network& net, NodeId v,
                                               std::uint32_t tag) {
  std::vector<std::int64_t> out;
  auto& box = net.inbox(v);
  auto it = std::stable_partition(box.begin(), box.end(), [&](const Message& m) {
    return m.payload.tag != tag;
  });
  for (auto jt = it; jt != box.end(); ++jt) {
    for (std::size_t i = 0; i < jt->payload.size; ++i) {
      out.push_back(jt->payload.fields[i]);
    }
  }
  box.erase(it, box.end());
  return out;
}

}  // namespace qclique
