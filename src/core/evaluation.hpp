// The checking (evaluation) procedures of Figures 4 and 5.
//
// During Step 3 of ComputePairs each node (u, v, x) runs m parallel Grover
// searches over T_alpha[u, v]; each Grover iteration needs one *joint
// evaluation*: every search ships its queried W-block a message ("does some
// w in this block close a negative triangle over my pair?") and receives
// one bit back. Figure 4 (alpha = 0) sends list L^k_w directly to node
// (u, v, w); Figure 5 (alpha > 0) first duplicates each (u, v, w) node's
// Step 1 data onto 2^alpha / (class_size * log n) helper nodes (u, v, w, y)
// and splits the lists across them, which restores O~(1)-round checking
// despite the 2^alpha-fold heavier lists.
//
// In the simulation the evaluation runs once per (block pair, alpha) with
// queries *sampled* from the searches' current Born distributions: the
// measured round cost of that run is the `r` charged per oracle call by
// the quantum cost model (Le Gall-Magniez conversion), and the run also
// audits the |L^k_w| <= eval_load * 2^alpha * sqrt(n) * log n promise that
// Theorem 3's typical-input machinery guarantees.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/transport.hpp"
#include "core/constants.hpp"
#include "core/partitions.hpp"
#include "graph/weighted_graph.hpp"

namespace qclique {

/// One sampled joint query set for a block pair: for every x-node, the
/// W-block position (index into t_alpha) each active search queries, and
/// the pair it is searching for.
struct EvalQuerySet {
  /// queries[x] = list of (pair, queried index into t_alpha).
  std::vector<std::vector<std::pair<VertexPair, std::uint32_t>>> queries;
};

/// Outcome of one evaluation run.
struct EvalRunStats {
  std::uint64_t rounds = 0;             // measured message rounds
  std::uint64_t duplication_rounds = 0; // Figure 5 step 0 (included in rounds)
  std::uint64_t messages = 0;
  std::uint64_t max_list_len = 0;       // max |L^k_w| observed
  std::uint64_t promise_violations = 0; // lists exceeding the promise
  /// answers[x][i] = evaluation bit for queries.queries[x][i].
  std::vector<std::vector<bool>> answers;
};

/// The list-size promise threshold eval_load * 2^alpha * sqrt(n) * log n.
double eval_list_promise(std::uint32_t n, std::uint32_t alpha,
                         const Constants& constants);

/// The Figure 5 duplication factor max(1, floor(2^alpha / (class_size *
/// log n))) (1 means no duplication, which also covers Figure 4).
std::uint32_t duplication_factor(std::uint32_t n, std::uint32_t alpha,
                                 const Constants& constants);

/// Executes the evaluation procedure for block pair (ub, vb) and class
/// alpha over domain `t_alpha` (list of W-block ids). Queries follow
/// `queries`; answers are computed from g. `include_duplication` runs the
/// Figure 5 step 0 broadcast (callers set it for the first evaluation of a
/// given alpha only -- the duplicated data persists).
EvalRunStats run_evaluation(Network& net, const WeightedGraph& g,
                            const Partitions& parts, std::uint32_t ub,
                            std::uint32_t vb, std::uint32_t alpha,
                            const std::vector<std::uint32_t>& t_alpha,
                            const EvalQuerySet& queries,
                            const Constants& constants, bool include_duplication);

}  // namespace qclique
