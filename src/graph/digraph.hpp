// Directed weighted graph, the input type of the APSP problem (Theorem 1):
// integer weights in {-W, ..., W}, no self-loops, and (for well-posed
// shortest paths) no negative cycles.
#pragma once

#include <cstdint>
#include <vector>

#include "common/math.hpp"

namespace qclique {

class DistMatrix;

/// Directed graph with integer arc weights (kPlusInf = absent arc).
class Digraph {
 public:
  explicit Digraph(std::uint32_t n);

  std::uint32_t size() const { return n_; }

  bool has_arc(std::uint32_t u, std::uint32_t v) const;

  /// Weight of arc (u, v); kPlusInf if absent.
  std::int64_t weight(std::uint32_t u, std::uint32_t v) const;

  void set_arc(std::uint32_t u, std::uint32_t v, std::int64_t w);
  void remove_arc(std::uint32_t u, std::uint32_t v);

  std::uint64_t num_arcs() const { return num_arcs_; }

  /// Largest |w| over present arcs (the paper's W); 0 for an arc-less graph.
  std::int64_t max_abs_weight() const;

  /// True if any arc has negative weight (solver capability dispatch).
  bool has_negative_arc() const;

  /// Undirected adjacency: u and v are adjacent when either arc exists
  /// (the graph-induced communication links of the general-CONGEST
  /// transport; see congest/transport.hpp).
  std::vector<std::vector<std::uint32_t>> symmetric_adjacency() const;

  /// The matrix A_G of the paper (Section 3): A[i][i] = 0, A[i][j] = w(i,j)
  /// for arcs, +inf otherwise. Its n-th min-plus power is the APSP matrix.
  DistMatrix to_dist_matrix() const;

 private:
  std::size_t idx(std::uint32_t u, std::uint32_t v) const {
    return static_cast<std::size_t>(u) * n_ + v;
  }

  std::uint32_t n_;
  std::uint64_t num_arcs_ = 0;
  std::vector<std::int64_t> w_;
};

}  // namespace qclique
