// QueryServer: every answer bit-identical to direct snapshot lookups,
// across cache hits, evictions, and republishes.
#include "serve/query_server.hpp"

#include <gtest/gtest.h>

#include "api/registry.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/families.hpp"

namespace qclique {
namespace {

struct Served {
  Digraph graph;
  ExecutionContext ctx;
  std::shared_ptr<const ApspSnapshot> snapshot;
};

Served serve_graph(std::uint64_t graph_seed, bool with_paths,
                   std::uint32_t n = 12) {
  Rng rng(graph_seed);
  Served s{make_family_graph("gnp", family_config(n, 0.4, -3, 9), rng),
           ExecutionContext(21), nullptr};
  s.ctx.set_family("gnp");
  s.snapshot = SolverRegistry::instance().get("floyd-warshall").serve(
      s.graph, s.ctx, {.with_paths = with_paths, .label = "qs"});
  return s;
}

TEST(ServeQueryServer, DistancesBitIdenticalToSnapshot) {
  Served s = serve_graph(1, false);
  QueryServer server(s.ctx.serve());
  auto session = server.session();
  const std::uint32_t n = s.graph.size();
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = 0; v < n; ++v) {
      EXPECT_EQ(session.distance(u, v), s.snapshot->distance(u, v))
          << u << "->" << v;
    }
  }
}

TEST(ServeQueryServer, BatchAnswersMatchSinglesAgainstOnePin) {
  Served s = serve_graph(2, false);
  QueryServer server(s.ctx.serve());
  auto session = server.session();
  std::vector<PairQuery> queries;
  const std::uint32_t n = s.graph.size();
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = 0; v < n; ++v) queries.push_back({u, v});
  }
  const std::vector<std::int64_t> out = session.distance_batch(queries);
  ASSERT_EQ(out.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(out[i], s.snapshot->distance(queries[i].u, queries[i].v));
  }
}

TEST(ServeQueryServer, PathAnswersMatchDirectRealizationAndCacheHits) {
  Served s = serve_graph(3, true);
  QueryServer server(s.ctx.serve());
  auto session = server.session();
  const std::uint32_t n = s.graph.size();
  for (int pass = 0; pass < 2; ++pass) {  // second pass = all cache hits
    for (std::uint32_t u = 0; u < n; ++u) {
      for (std::uint32_t v = 0; v < n; ++v) {
        const PathAnswer a = session.path(u, v);
        EXPECT_EQ(a.distance, s.snapshot->distance(u, v));
        EXPECT_EQ(a.nodes, s.snapshot->path(u, v)) << u << "->" << v;
      }
    }
  }
  session.flush_stats();
  const QueryServerStats stats = server.stats();
  EXPECT_EQ(stats.path_queries, 2ull * n * n);
  // Every second-pass query hits (capacity default >> n^2); misses are
  // bounded by the distinct pair count.
  EXPECT_EQ(stats.cache_misses, 1ull * n * n);
  EXPECT_EQ(stats.cache_hits, 1ull * n * n);
}

TEST(ServeQueryServer, TinyCacheEvictsButNeverLies) {
  Served s = serve_graph(4, true);
  // One shard, one way, four sets: nearly every query evicts.
  QueryServer server(s.ctx.serve(),
                     {.cache_capacity = 4, .cache_shards = 1, .cache_ways = 1});
  auto session = server.session();
  const std::uint32_t n = s.graph.size();
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint32_t u = 0; u < n; ++u) {
      for (std::uint32_t v = 0; v < n; ++v) {
        const PathAnswer a = session.path(u, v);
        EXPECT_EQ(a.distance, s.snapshot->distance(u, v));
        EXPECT_EQ(a.nodes, s.snapshot->path(u, v));
      }
    }
  }
}

TEST(ServeQueryServer, RepublishServesTheNewSnapshotImmediately) {
  Served s = serve_graph(5, true);
  QueryServer server(s.ctx.serve());
  auto session = server.session();
  (void)session.path(0, 1);
  ASSERT_EQ(session.pinned()->version(), 1u);

  // Publish a different graph through the same context/store.
  Rng rng(99);
  const Digraph g2 =
      make_family_graph("gnp", family_config(12, 0.7, 1, 5), rng);
  const auto snap2 = SolverRegistry::instance().get("floyd-warshall").serve(
      g2, s.ctx, {.with_paths = true, .label = "second"});
  ASSERT_EQ(snap2->version(), 2u);

  const std::uint32_t n = g2.size();
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = 0; v < n; ++v) {
      EXPECT_EQ(session.distance(u, v), snap2->distance(u, v));
      const PathAnswer a = session.path(u, v);
      EXPECT_EQ(a.distance, snap2->distance(u, v));
      EXPECT_EQ(a.nodes, snap2->path(u, v));
    }
  }
  EXPECT_EQ(session.pinned()->version(), 2u);
  session.flush_stats();
  EXPECT_GE(server.stats().repins, 2u);  // initial pin + the republish
}

TEST(ServeQueryServer, ValidationErrors) {
  SnapshotStore empty;
  QueryServer server(empty);
  auto session = server.session();
  EXPECT_THROW(session.distance(0, 1), SimulationError);
  EXPECT_THROW(session.path(0, 1), SimulationError);

  Served s = serve_graph(6, false);
  QueryServer server2(s.ctx.serve());
  auto session2 = server2.session();
  const std::uint32_t n = s.graph.size();
  EXPECT_THROW(session2.distance(0, n), SimulationError);
  EXPECT_THROW(session2.distance(n, 0), SimulationError);
  EXPECT_THROW(session2.path(0, 1), SimulationError);  // distance-only snapshot

  std::vector<PairQuery> queries{{0, 1}};
  std::vector<std::int64_t> out(2);
  EXPECT_THROW(session2.distance_batch(queries, out), SimulationError);
}

TEST(ServeQueryServer, StatsFlushOnSessionDestruction) {
  Served s = serve_graph(7, true);
  QueryServer server(s.ctx.serve());
  {
    auto session = server.session();
    (void)session.distance(0, 1);
    (void)session.distance(1, 2);
    (void)session.distance_batch(std::vector<PairQuery>{{0, 1}, {2, 3}});
    (void)session.path(0, 2);
    // Nothing flushed yet: the hot path never touches shared counters.
    EXPECT_EQ(server.stats().distance_queries, 0u);
  }
  const QueryServerStats stats = server.stats();
  EXPECT_EQ(stats.distance_queries, 2u);
  EXPECT_EQ(stats.batch_entries, 2u);
  EXPECT_EQ(stats.path_queries, 1u);
}

}  // namespace
}  // namespace qclique
