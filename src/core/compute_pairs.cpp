#include "core/compute_pairs.hpp"

#include <algorithm>
#include <memory>

#include "common/rng.hpp"
#include "congest/lenzen.hpp"
#include "congest/transport.hpp"
#include "core/evaluation.hpp"
#include "core/identify_class.hpp"
#include "core/lambda_sampler.hpp"
#include "core/partitions.hpp"
#include "graph/triangles.hpp"
#include "quantum/multi_search.hpp"

namespace qclique {

namespace {

/// Builds the run's network from the transport options (graph-induced
/// links derived from g when the topology wants them).
std::unique_ptr<Network> network_for(const WeightedGraph& g,
                                     const TransportOptions& options) {
  return make_network_for(g.size(), options, [&g] { return g.adjacency_lists(); });
}

/// Step 1 of ComputePairs: ship f(u, w') / f(w', v) for every triple to its
/// t-node through one measured routing batch. The receivers' data is
/// modeled through the semantic oracle below (the seed path routed the
/// payloads and immediately cleared every inbox), so the O(n^2 sqrt n)
/// batch is described as per-link counts and routed payload-free:
/// identical rounds/messages/traffic, zero materialization.
void step1_load_weights(Network& net, const WeightedGraph& g,
                        const Partitions& parts) {
  // Counts-only routing never sees a payload, so the field-budget guard
  // route() ran per message moves here: every step 1 message carries
  // 3 fields ([u, w', f]).
  QCLIQUE_CHECK(net.config().fields_per_message >= 3,
                "step1/load needs >= 3 fields per message");
  LinkCounts counts(net.size());
  const std::uint32_t B = parts.num_vblocks();
  const std::uint32_t Wb = parts.num_wblocks();
  for (std::uint32_t ub = 0; ub < B; ++ub) {
    const auto us = parts.vblock_vertices(ub);
    for (std::uint32_t vb = 0; vb < B; ++vb) {
      const auto vs = parts.vblock_vertices(vb);
      for (std::uint32_t wb = 0; wb < Wb; ++wb) {
        const NodeId dst = parts.t_node(ub, vb, wb);
        const auto ws = parts.wblock_vertices(wb);
        // One zero-copy weight row per w instead of per-entry
        // has_edge/weight index arithmetic (this triple loop touches every
        // (u, w') and (w', v) pair once per cube cell).
        for (std::uint32_t w : ws) {
          const std::int64_t* wrow = g.row_ptr(w);
          for (std::uint32_t u : us) {
            // Message [u, w, f(u, w)] from u to the t-node.
            if (u == w || is_plus_inf(wrow[u]) || u == dst) continue;
            counts.add(static_cast<NodeId>(u), dst);
          }
          for (std::uint32_t v : vs) {
            // Message [w, v, f(w, v)] from w to the t-node.
            if (v == w || is_plus_inf(wrow[v]) || w == dst) continue;
            counts.add(static_cast<NodeId>(w), dst);
          }
        }
      }
    }
  }
  route_counts(net, counts, "step1/load");
}

/// Step 2 weight/S loading for the sampled Lambda families (measured,
/// counts-only: one message [u, v, f(u, v), in_S] per family edge, whose
/// payload — like step 1's — is modeled globally and never read).
void step2_load_lambda(Network& net, const WeightedGraph& g,
                       const Partitions& parts,
                       const std::vector<std::vector<LambdaFamily>>& families) {
  // Counts-only budget guard (see step 1): 4 fields ([u, v, f, in_S]).
  QCLIQUE_CHECK(net.config().fields_per_message >= 4,
                "step2/load needs >= 4 fields per message");
  LinkCounts counts(net.size());
  const std::uint32_t B = parts.num_vblocks();
  for (std::uint32_t ub = 0; ub < B; ++ub) {
    for (std::uint32_t vb = 0; vb < B; ++vb) {
      const auto& fam = families[ub][vb];
      for (std::uint32_t x = 0; x < fam.sets.size(); ++x) {
        const NodeId dst = parts.x_node(ub, vb, x);
        for (const auto& [u, v] : fam.sets[x]) {
          if (!g.has_edge(u, v)) continue;  // non-edges carry no weight
          if (u == dst) continue;
          counts.add(static_cast<NodeId>(u), dst);
        }
      }
    }
  }
  route_counts(net, counts, "step2/load");
}

}  // namespace

ComputePairsResult compute_pairs(const WeightedGraph& g,
                                 const std::vector<VertexPair>& s_pairs,
                                 const ComputePairsOptions& options, Rng& rng) {
  const std::uint32_t n = g.size();
  QCLIQUE_CHECK(n >= 2, "compute_pairs needs at least two vertices");
  QCLIQUE_CHECK(std::is_sorted(s_pairs.begin(), s_pairs.end()),
                "s_pairs must be sorted");
  ComputePairsResult res;
  const Constants& cst = options.constants;
  const Partitions parts(n);
  const std::unique_ptr<Network> net_ptr = network_for(g, options.transport);
  Network& net = *net_ptr;
  // S membership is answered by binary search on the (already sorted,
  // checked above) input vector — no std::set copy of the hot lookup set.
  const auto in_s = [&s_pairs](const VertexPair& pr) {
    return std::binary_search(s_pairs.begin(), s_pairs.end(), pr);
  };

  // Input-promise diagnostic (Gamma(u,v) <= promise * log n for S pairs).
  {
    const double limit = cst.promise * paper_log(n);
    for (const auto& pr : s_pairs) {
      if (static_cast<double>(gamma(g, pr.a, pr.b)) > limit) {
        ++res.input_promise_violations;
      }
    }
  }

  // ---- Step 1 -------------------------------------------------------------
  step1_load_weights(net, g, parts);

  // ---- Step 2 -------------------------------------------------------------
  const std::uint32_t B = parts.num_vblocks();
  std::vector<std::vector<LambdaFamily>> families(B);
  for (std::uint32_t ub = 0; ub < B; ++ub) {
    families[ub].reserve(B);
    for (std::uint32_t vb = 0; vb < B; ++vb) {
      Rng child = rng.split();
      families[ub].push_back(sample_lambda_family(parts, ub, vb, cst, child));
      if (!families[ub][vb].well_balanced) {
        res.aborted = true;
        res.rounds = net.ledger().total_rounds();
        res.ledger = net.ledger();
        return res;
      }
    }
  }
  step2_load_lambda(net, g, parts, families);

  // ---- Step 3.1: IdentifyClass. --------------------------------------------
  Rng ic_rng = rng.split();
  const IdentifyClassResult classes =
      identify_class(net, g, parts, s_pairs, cst, ic_rng);
  if (classes.aborted) {
    res.aborted = true;
    res.rounds = net.ledger().total_rounds();
    res.ledger = net.ledger();
    return res;
  }
  res.max_alpha = classes.max_alpha;

  // ---- Step 3.2: searches per alpha and block pair. ------------------------
  // The alpha values are processed sequentially (Figure 3's "for each
  // alpha"), but all (u, v) block-pair groups run concurrently: the third
  // labeling assigns each group its own x-nodes and each evaluation its own
  // t-nodes, so a round of one group is a round of every group. Each
  // group's cost is therefore measured on an isolated scratch network and
  // the *maximum* over groups is charged per alpha. (With inexact roots the
  // labelings wrap and a little cross-group sharing exists; the paper
  // assumes exact sizes, and we document the approximation in DESIGN.md.)
  //
  // One scratch network serves every group (the seed built a fresh one per
  // (ub, vb) pair): group costs are ledger *deltas*, so reuse changes no
  // measurement, and off-clique topologies skip rebuilding their O(n^2)
  // next-hop tables per group. Built lazily — most aborted runs never get
  // here.
  std::unique_ptr<Network> scratch_ptr;
  std::vector<VertexPair> hot;
  for (std::uint32_t alpha = 0; alpha <= classes.max_alpha; ++alpha) {
    std::uint64_t alpha_max_rounds = 0;
    std::uint64_t alpha_oracle_calls = 0;
    for (std::uint32_t ub = 0; ub < B; ++ub) {
      for (std::uint32_t vb = 0; vb < B; ++vb) {
        const auto t_alpha = classes.t_alpha(ub, vb, alpha, B);
        if (t_alpha.empty()) continue;

        // Active searches: for every x-node, its Lambda_x /\ S /\ E pairs.
        // The same pair may appear under several x (Lambda is a covering,
        // not a partition), so solution sets are computed once per distinct
        // candidate pair into a sorted flat table and looked up by binary
        // search — the seed's std::map cache re-copied the cached vector by
        // value on every hit.
        const auto& fam = families[ub][vb];
        std::vector<VertexPair> cand;
        for (const auto& set : fam.sets) {
          for (const auto& [u, v] : set) {
            const VertexPair pr(u, v);
            if (g.has_edge(u, v) && in_s(pr)) cand.push_back(pr);
          }
        }
        std::sort(cand.begin(), cand.end());
        cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
        std::vector<std::vector<std::size_t>> cand_sols(cand.size());
        for (std::size_t c = 0; c < cand.size(); ++c) {
          for (std::size_t pos = 0; pos < t_alpha.size(); ++pos) {
            const auto ws = parts.wblock_vertices(t_alpha[pos]);
            if (exists_negative_triangle_via(g, cand[c].a, cand[c].b, ws)) {
              cand_sols[c].push_back(pos);
            }
          }
        }
        const auto solutions_of =
            [&](const VertexPair& pr) -> const std::vector<std::size_t>& {
          const auto it = std::lower_bound(cand.begin(), cand.end(), pr);
          QCLIQUE_CHECK(it != cand.end() && *it == pr,
                        "solution lookup for a pair outside the candidate set");
          return cand_sols[static_cast<std::size_t>(it - cand.begin())];
        };

        std::vector<SearchInstance> searches;
        std::vector<VertexPair> search_pairs;
        EvalQuerySet queries;
        queries.queries.resize(parts.num_wblocks());
        Rng qrng = rng.split();
        for (std::uint32_t x = 0; x < fam.sets.size(); ++x) {
          for (const auto& [u, v] : fam.sets[x]) {
            const VertexPair pr(u, v);
            if (!g.has_edge(u, v) || !in_s(pr)) continue;
            SearchInstance inst;
            inst.solutions = solutions_of(pr);
            searches.push_back(std::move(inst));
            search_pairs.push_back(pr);
            // Sampled query for the cost-measuring evaluation run: uniform
            // over the domain (the searches start in uniform superposition).
            queries.queries[x].emplace_back(
                pr, static_cast<std::uint32_t>(qrng.uniform_u64(t_alpha.size())));
          }
        }
        if (searches.empty()) continue;
        res.searches_total += searches.size();

        // Measure the evaluation procedure's round cost r (Figures 4-5) on
        // the pooled scratch network: this group's nodes are its own.
        if (!scratch_ptr) scratch_ptr = network_for(g, options.transport);
        const EvalRunStats eval = run_evaluation(*scratch_ptr, g, parts, ub, vb, alpha,
                                                 t_alpha, queries, cst,
                                                 /*include_duplication=*/true);
        res.eval_promise_violations += eval.promise_violations;
        const std::uint64_t r_eval =
            std::max<std::uint64_t>(1, eval.rounds - eval.duplication_rounds);
        const DistributedSearchCost cost{.eval_rounds_per_call = r_eval,
                                         .compute_uncompute_factor = 2};

        std::uint64_t group_rounds = eval.duplication_rounds;  // Fig 5 step 0
        if (options.use_quantum) {
          MultiSearchOptions mso;
          mso.cutoff_factor = options.search_cutoff_factor;
          mso.typicality_beta = eval_list_promise(n, alpha, cst);
          mso.audit_samples_per_stage = options.audit_samples_per_stage;
          Rng srng = rng.split();
          RoundLedger group_ledger;
          // Tight span around the searches themselves: the evaluation
          // phases above record under their own keys.
          PhaseProfiler::Span search_span = net.profile_phase(
              "search/alpha" + std::to_string(alpha) + "/q");
          const MultiSearchResult ms = multi_search(
              t_alpha.size(), searches, cost, mso, group_ledger, "g", srng);
          search_span = PhaseProfiler::Span();
          group_rounds += ms.rounds_charged;
          alpha_oracle_calls = std::max(alpha_oracle_calls, ms.joint_oracle_calls);
          res.audit_tuples += ms.audit_tuples;
          res.audit_violations += ms.audit_violations;
          for (std::size_t i = 0; i < searches.size(); ++i) {
            if (ms.found[i].has_value()) {
              hot.push_back(search_pairs[i]);
              ++res.searches_found;
            }
          }
        } else {
          // Classical scan: every W-block of the domain is checked once; all
          // m searches share each joint evaluation, so the cost is
          // |T_alpha| * r rounds and the outcome is exact.
          group_rounds += t_alpha.size() * r_eval;
          alpha_oracle_calls = std::max<std::uint64_t>(alpha_oracle_calls,
                                                       t_alpha.size());
          for (std::size_t i = 0; i < searches.size(); ++i) {
            if (!searches[i].solutions.empty()) {
              hot.push_back(search_pairs[i]);
              ++res.searches_found;
            }
          }
        }
        alpha_max_rounds = std::max(alpha_max_rounds, group_rounds);
      }
    }
    if (alpha_max_rounds > 0) {
      net.ledger().charge_quantum(
          "search/alpha" + std::to_string(alpha) + (options.use_quantum ? "/q" : "/c"),
          alpha_max_rounds, alpha_oracle_calls);
    }
  }

  // The same pair may be found under several (alpha, x): sort + unique
  // replaces the seed's std::set accumulator.
  std::sort(hot.begin(), hot.end());
  hot.erase(std::unique(hot.begin(), hot.end()), hot.end());
  res.hot_pairs = std::move(hot);
  res.rounds = net.ledger().total_rounds();
  res.ledger = net.ledger();
  return res;
}

}  // namespace qclique
