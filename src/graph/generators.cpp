#include "graph/generators.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/triangles.hpp"
#include "matrix/dist_matrix.hpp"

namespace qclique {

PotentialWeights::PotentialWeights(std::uint32_t n, std::int64_t wmin,
                                   std::int64_t wmax, Rng& rng)
    : wmin_(wmin), wmax_(wmax), pot_(n, 0) {
  QCLIQUE_CHECK(wmin <= wmax, "PotentialWeights requires wmin <= wmax");
  if (wmin >= 0) return;  // all-positive weights need no potentials
  QCLIQUE_CHECK(wmax >= 0,
                "PotentialWeights requires wmax >= 0 when wmin < 0: an "
                "all-negative range puts a negative cycle on any cycle");
  // p(u) - p(v) stays in [-h, h] with h <= min(wmax, -wmin), so the base-cost
  // interval of sample() is never empty and w = c + p(u) - p(v) >= -h >= wmin.
  const std::int64_t h = std::min(wmax, -wmin);
  for (auto& p : pot_) p = rng.uniform_i64(0, h);
}

std::int64_t PotentialWeights::sample(std::uint32_t u, std::uint32_t v,
                                      Rng& rng) const {
  const std::int64_t delta = pot_[u] - pot_[v];
  const std::int64_t c =
      rng.uniform_i64(std::max<std::int64_t>(0, wmin_ - delta), wmax_ - delta);
  return c + delta;
}

Digraph random_digraph(std::uint32_t n, double density, std::int64_t wmin,
                       std::int64_t wmax, Rng& rng, bool no_negative_cycles) {
  QCLIQUE_CHECK(wmin <= wmax, "random_digraph requires wmin <= wmax");
  Digraph g(n);
  if (!no_negative_cycles) {
    for (std::uint32_t u = 0; u < n; ++u) {
      for (std::uint32_t v = 0; v < n; ++v) {
        if (u != v && rng.bernoulli(density)) {
          g.set_arc(u, v, rng.uniform_i64(wmin, wmax));
        }
      }
    }
    return g;
  }
  // Potential trick: base costs c >= 0 reweighted by a random potential give
  // arcs w(u,v) = c(u,v) + p(u) - p(v) with possibly-negative weights but no
  // negative cycle (cycle weights telescope to the sum of the c's >= 0).
  // PotentialWeights sizes the potentials and per-arc base-cost intervals so
  // every weight lands in [wmin, wmax] exactly -- no clamping, which used to
  // let arcs exceed wmax when c + p(u) - p(v) overflowed the range.
  const PotentialWeights weights(n, wmin, wmax, rng);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = 0; v < n; ++v) {
      if (u == v || !rng.bernoulli(density)) continue;
      g.set_arc(u, v, weights.sample(u, v, rng));
    }
  }
  return g;
}

WeightedGraph random_weighted_graph(std::uint32_t n, double density,
                                    std::int64_t wmin, std::int64_t wmax, Rng& rng) {
  QCLIQUE_CHECK(wmin <= wmax, "random_weighted_graph requires wmin <= wmax");
  WeightedGraph g(n);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) {
      if (rng.bernoulli(density)) g.set_edge(u, v, rng.uniform_i64(wmin, wmax));
    }
  }
  return g;
}

WeightedGraph planted_negative_triangles(std::uint32_t n, std::uint32_t planted,
                                         Rng& rng, std::vector<VertexPair>* out_pairs) {
  QCLIQUE_CHECK(n >= 3, "need at least 3 vertices to plant a triangle");
  WeightedGraph g(n);
  // Background: a moderately dense graph with strongly positive weights, so
  // no accidental negative triangle can arise from background edges alone.
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) {
      if (rng.bernoulli(0.4)) g.set_edge(u, v, rng.uniform_i64(100, 200));
    }
  }
  // Planted triangles: overwrite three edges with weights summing well below
  // zero. Mixing one planted edge with background edges keeps the sum
  // positive (-350*2 + ... no: planted edges are -150 each, two planted plus
  // one background >= -300 + 100 = -200 < 0!) -- so planted edges must be
  // rare enough not to combine. We pick disjoint vertex triples to guarantee
  // that two planted edges never share a triangle with a background edge.
  QCLIQUE_CHECK(3ull * planted <= n, "planted triangles must fit disjointly");
  std::vector<std::uint32_t> verts(n);
  for (std::uint32_t i = 0; i < n; ++i) verts[i] = i;
  rng.shuffle(verts);
  for (std::uint32_t t = 0; t < planted; ++t) {
    const std::uint32_t a = verts[3 * t], b = verts[3 * t + 1], c = verts[3 * t + 2];
    // Each planted edge is -10: triangle sum -30 < 0, but any triangle with
    // at most two planted edges has sum >= -20 + 100 > 0.
    g.set_edge(a, b, -10);
    g.set_edge(a, c, -10);
    g.set_edge(b, c, -10);
    if (out_pairs) {
      out_pairs->emplace_back(a, b);
      out_pairs->emplace_back(a, c);
      out_pairs->emplace_back(b, c);
    }
  }
  if (out_pairs) std::sort(out_pairs->begin(), out_pairs->end());
  return g;
}

WeightedGraph tripartite_gadget(const DistMatrix& a, const DistMatrix& b,
                                const DistMatrix& d) {
  const std::uint32_t n = a.size();
  QCLIQUE_CHECK(b.size() == n && d.size() == n, "matrix sizes must agree");
  WeightedGraph g(3 * n);
  const auto I = [](std::uint32_t i) { return i; };
  const auto J = [n](std::uint32_t j) { return n + j; };
  const auto K = [n](std::uint32_t k) { return 2 * n + k; };
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::int64_t* arow = a.row_ptr(i);
    for (std::uint32_t k = 0; k < n; ++k) {
      if (!is_plus_inf(arow[k])) g.set_edge(I(i), K(k), arow[k]);
    }
  }
  for (std::uint32_t k = 0; k < n; ++k) {
    const std::int64_t* brow = b.row_ptr(k);
    for (std::uint32_t j = 0; j < n; ++j) {
      if (!is_plus_inf(brow[j])) g.set_edge(J(j), K(k), brow[j]);
    }
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::int64_t* drow = d.row_ptr(i);
    for (std::uint32_t j = 0; j < n; ++j) {
      if (!is_plus_inf(drow[j])) g.set_edge(I(i), J(j), -drow[j]);
    }
  }
  return g;
}

std::pair<int, std::uint32_t> tripartite_decode(std::uint32_t vertex, std::uint32_t n) {
  QCLIQUE_CHECK(vertex < 3 * n, "tripartite vertex out of range");
  return {static_cast<int>(vertex / n), vertex % n};
}

}  // namespace qclique
