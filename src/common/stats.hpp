// Small statistics toolkit used by tests and the benchmark harness:
// online moments, histograms, and log-log regression for exponent fitting
// (the reproduction's headline numbers are fitted exponents of
// rounds-vs-n curves).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace qclique {

/// Welford online accumulator for mean/variance/min/max.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Least-squares fit of y = a + b*x. Used through log-log transforms to
/// estimate scaling exponents: log(rounds) = log(c) + e*log(n).
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};

/// Fits y ~ a + b x. Requires xs.size() == ys.size() >= 2 and non-constant x.
LinearFit fit_linear(const std::vector<double>& xs, const std::vector<double>& ys);

/// Fits y ~ c * x^e by regressing log y on log x. All inputs must be > 0.
/// Returns {log c, e, r^2}.
LinearFit fit_power_law(const std::vector<double>& xs, const std::vector<double>& ys);

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// end buckets. Used to report load distributions (|L^k_w| etc.).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t total() const { return total_; }
  const std::vector<std::size_t>& buckets() const { return counts_; }
  double bucket_lo(std::size_t b) const;
  double bucket_hi(std::size_t b) const;
  /// Smallest x such that at least `q` fraction of the mass is <= x
  /// (bucket-upper-bound resolution).
  double quantile(double q) const;
  std::string to_string(std::size_t max_width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace qclique
