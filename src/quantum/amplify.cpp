#include "quantum/amplify.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qclique {

std::uint32_t repetitions_for_target(double p_fail, double target) {
  QCLIQUE_CHECK(p_fail > 0.0 && p_fail < 1.0, "p_fail must be in (0, 1)");
  QCLIQUE_CHECK(target > 0.0 && target < 1.0, "target must be in (0, 1)");
  if (target >= p_fail) return 1;
  const double r = std::ceil(std::log(target) / std::log(p_fail));
  return static_cast<std::uint32_t>(std::max(1.0, r));
}

AmplifiedSearchResult amplified_search(std::size_t dim, const Oracle& oracle,
                                       const DistributedSearchCost& cost,
                                       std::uint32_t max_repetitions,
                                       RoundLedger& ledger, const std::string& phase,
                                       Rng& rng) {
  QCLIQUE_CHECK(max_repetitions >= 1, "need at least one repetition");
  AmplifiedSearchResult res;
  for (std::uint32_t rep = 0; rep < max_repetitions; ++rep) {
    Rng child = rng.split();
    const DistributedSearchResult run =
        distributed_search(dim, oracle, cost, ledger, phase, child);
    ++res.repetitions;
    res.rounds_charged += run.rounds_charged;
    res.grover = run.grover;
    if (run.grover.found.has_value()) break;
  }
  return res;
}

}  // namespace qclique
