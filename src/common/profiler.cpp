#include "common/profiler.hpp"

#include <sstream>
#include <utility>

#include "congest/round_ledger.hpp"  // json_quote

namespace qclique {

PhaseProfiler::Span::Span(PhaseProfiler* owner, std::string phase)
    : owner_(owner),
      phase_(std::move(phase)),
      start_(std::chrono::steady_clock::now()) {}

PhaseProfiler::Span& PhaseProfiler::Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    finish();
    owner_ = std::exchange(other.owner_, nullptr);
    phase_ = std::move(other.phase_);
    messages_ = other.messages_;
    start_ = other.start_;
  }
  return *this;
}

void PhaseProfiler::Span::finish() {
  if (!owner_) return;
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
  std::exchange(owner_, nullptr)->close_span(phase_, ms, messages_);
}

PhaseProfiler::Span::~Span() { finish(); }

PhaseProfiler::Span PhaseProfiler::span(const std::string& phase) {
  if (span_open_) return Span();
  span_open_ = true;
  return Span(this, phase);
}

void PhaseProfiler::record(const std::string& phase, double wall_ms,
                           std::uint64_t messages) {
  Timing& t = phases_[phase];
  t.wall_ms += wall_ms;
  ++t.calls;
  t.messages += messages;
}

void PhaseProfiler::close_span(const std::string& phase, double wall_ms,
                               std::uint64_t messages) {
  record(phase, wall_ms, messages);
  span_open_ = false;
}

void PhaseProfiler::reset() {
  phases_.clear();
  span_open_ = false;
}

std::map<std::string, PhaseProfiler::Timing> PhaseProfiler::delta_since(
    const std::map<std::string, Timing>& before) const {
  std::map<std::string, Timing> out;
  for (const auto& [phase, t] : phases_) {
    Timing d = t;
    if (auto it = before.find(phase); it != before.end()) {
      d.wall_ms -= it->second.wall_ms;
      d.calls -= it->second.calls;
      d.messages -= it->second.messages;
    }
    if (d.calls > 0 || d.wall_ms > 0.0 || d.messages > 0) out.emplace(phase, d);
  }
  return out;
}

std::string profile_to_json(
    const std::map<std::string, PhaseProfiler::Timing>& phases) {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [phase, t] : phases) {
    if (!first) out << ",";
    first = false;
    out << json_quote(phase) << ":{\"wall_ms\":" << t.wall_ms
        << ",\"calls\":" << t.calls << ",\"messages\":" << t.messages << "}";
  }
  out << "}";
  return out.str();
}

std::string PhaseProfiler::to_json() const { return profile_to_json(phases_); }

}  // namespace qclique
