// Atomic publish / pin-free-read snapshot exchange.
//
// One SnapshotStore is the serving surface of one ExecutionContext: solvers
// publish freshly solved ApspSnapshots into it, reader threads pin the
// current snapshot and answer queries against the pin. The concurrency
// contract:
//
//   * publish() is wait-free for readers: it stamps the snapshot's version,
//     then swaps the current shared_ptr with one atomic store. Publishers
//     never block readers and never mutate a published snapshot.
//   * The read path takes no locks. SnapshotPin keeps a shared_ptr pin plus
//     the pinned version; its steady-state refresh() is a single relaxed-
//     acquire load of the store's version counter -- only when the counter
//     moved does it re-load the shared_ptr (an atomic<shared_ptr> load, the
//     "shared_ptr swap" of the design). A pinned snapshot stays valid and
//     bit-identical however many publishes happen behind it; it is freed
//     when the last pin drops.
//
// The version counter and the pointer are separate atomics, so a reader
// can observe the counter move before the pointer swap lands; SnapshotPin
// therefore records the version *of the snapshot it actually loaded* and
// simply retries on the next refresh. Readers converge within one query of
// a publish, which is exactly the freshness a serving layer promises.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "serve/snapshot.hpp"

namespace qclique {

class SnapshotStore {
 public:
  SnapshotStore() = default;
  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// Publishes `snapshot` as the new current snapshot: assigns the next
  /// version stamp (1, 2, ...), freezes it behind a const pointer, and
  /// swaps it in. Returns the published pin. Thread-safe against concurrent
  /// publishers and readers.
  std::shared_ptr<const ApspSnapshot> publish(ApspSnapshot snapshot);

  /// Pre-built pin form (callers that assembled the shared_ptr themselves).
  /// The snapshot must not be shared with a mutator; its version is stamped
  /// through the non-const pointer before the swap.
  std::shared_ptr<const ApspSnapshot> publish(
      std::shared_ptr<ApspSnapshot> snapshot);

  /// Pins the current snapshot (nullptr when nothing was published yet).
  /// One atomic shared_ptr load; hot readers should hold a SnapshotPin and
  /// refresh() instead of calling this per query.
  std::shared_ptr<const ApspSnapshot> current() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Version of the latest publish (0 = empty store). Monotone; the cheap
  /// staleness probe behind SnapshotPin::refresh.
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::uint64_t> version_{0};
  std::atomic<std::shared_ptr<const ApspSnapshot>> current_{nullptr};
};

/// A reader's pin on the store's current snapshot. One per reader thread
/// (it is a plain struct with no synchronization of its own); QueryServer
/// sessions embed one. refresh() is the lock-free fast path described in
/// the header comment.
class SnapshotPin {
 public:
  explicit SnapshotPin(const SnapshotStore& store) : store_(&store) {}

  /// Re-pins if the store has published since the last refresh; returns the
  /// pinned snapshot (nullptr while the store is empty). Steady state costs
  /// one atomic version load.
  const ApspSnapshot* refresh() {
    const std::uint64_t v = store_->version();
    if (v != seen_version_) {
      pinned_ = store_->current();
      // Record the version of the snapshot actually loaded: the counter
      // can run ahead of the pointer swap, in which case the next refresh
      // retries the load instead of serving the stale pin as fresh.
      seen_version_ = pinned_ ? pinned_->version() : 0;
    }
    return pinned_.get();
  }

  /// The current pin without checking for a newer publish (what the last
  /// query answered against); nullptr before the first refresh.
  const ApspSnapshot* pinned() const { return pinned_.get(); }

  /// Shares the pin (callers that need the snapshot to outlive the pin).
  const std::shared_ptr<const ApspSnapshot>& pinned_ref() const {
    return pinned_;
  }

 private:
  const SnapshotStore* store_;
  std::shared_ptr<const ApspSnapshot> pinned_;
  std::uint64_t seen_version_ = 0;
};

}  // namespace qclique
