// Topology conformance suite: every topology registered in the
// TopologyRegistry must uphold the transport cost-model contract
// (docs/TRANSPORT.md) that protocol layers rely on:
//   * send validates endpoints (typed SimulationError) and bandwidth
//     (BandwidthError) before touching queue state;
//   * FIFO delivery per ordered (src, dst) pair;
//   * per-link capacity: one message per physical link per round, so k
//     messages on one logical link cost at least k rounds;
//   * round charging: every step charges exactly one round to the phase;
//   * conservation: every sent message is delivered exactly once;
//   * deposit bypasses bandwidth (no pending message, no rounds);
//   * max_link_load lower-bounds the drain cost;
//   * the TrafficMatrix hook observes deliveries when enabled.
#include <gtest/gtest.h>

#include <map>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "congest/transport.hpp"

namespace qclique {
namespace {

class TopologyConformance : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Network> make(std::uint32_t n, NetworkConfig config = {}) const {
    TransportOptions options;
    options.topology = GetParam();
    options.config = config;
    return make_network(n, options);
  }
};

TEST_P(TopologyConformance, ReportsItsRegistryNameAndCapabilities) {
  auto net = make(8);
  EXPECT_EQ(net->topology(), GetParam());
  EXPECT_GE(net->capabilities().max_degree, 1u);
  EXPECT_EQ(net->size(), 8u);
}

TEST_P(TopologyConformance, DeliversAMessageIntact) {
  auto net = make(8);
  net->send(0, 5, Payload::make(7, {42, -3}));
  const std::uint64_t rounds = net->run_until_drained("p");
  EXPECT_GE(rounds, 1u);
  ASSERT_EQ(net->inbox(5).size(), 1u);
  EXPECT_EQ(net->inbox(5)[0].src, 0u);
  EXPECT_EQ(net->inbox(5)[0].dst, 5u);
  EXPECT_EQ(net->inbox(5)[0].payload.tag, 7u);
  EXPECT_EQ(net->inbox(5)[0].payload.at(0), 42);
  EXPECT_EQ(net->inbox(5)[0].payload.at(1), -3);
}

TEST_P(TopologyConformance, SendValidatesEndpointsWithTypedErrors) {
  auto net = make(4);
  EXPECT_THROW(net->send(0, 4, Payload::make(0, {1})), SimulationError);
  EXPECT_THROW(net->send(9, 1, Payload::make(0, {1})), SimulationError);
  EXPECT_THROW(net->send(2, 2, Payload::make(0, {1})), SimulationError);
  // Nothing was enqueued by the rejected sends.
  EXPECT_EQ(net->pending_messages(), 0u);
  EXPECT_EQ(net->run_until_drained("p"), 0u);
}

TEST_P(TopologyConformance, StrictPayloadBudgetEnforced) {
  auto net = make(4, NetworkConfig{.fields_per_message = 2, .strict_payload = true});
  EXPECT_THROW(net->send(0, 1, Payload::make(0, {1, 2, 3})), BandwidthError);
  EXPECT_EQ(net->pending_messages(), 0u);
}

TEST_P(TopologyConformance, NonStrictSplitDeliversEveryFieldInOrder) {
  auto net = make(4, NetworkConfig{.fields_per_message = 2, .strict_payload = false});
  net->send(0, 1, Payload::make(9, {10, 11, 12, 13, 14}));
  EXPECT_EQ(net->pending_messages(), 3u);  // ceil(5/2) chunks
  net->run_until_drained("p");
  std::vector<std::int64_t> fields;
  for (const Message& m : net->inbox(1)) {
    EXPECT_EQ(m.payload.tag, 9u);
    for (std::size_t i = 0; i < m.payload.size; ++i) fields.push_back(m.payload.at(i));
  }
  EXPECT_EQ(fields, (std::vector<std::int64_t>{10, 11, 12, 13, 14}));
}

TEST_P(TopologyConformance, FifoPerOrderedPair) {
  auto net = make(6);
  Rng rng(21);
  std::map<std::pair<NodeId, NodeId>, std::int64_t> next_seq;
  for (int i = 0; i < 200; ++i) {
    const NodeId s = static_cast<NodeId>(rng.uniform_u64(6));
    NodeId d = static_cast<NodeId>(rng.uniform_u64(6));
    if (d == s) d = static_cast<NodeId>((d + 1) % 6);
    net->send(s, d, Payload::make(0, {next_seq[{s, d}]++}));
  }
  net->run_until_drained("p");
  std::map<std::pair<NodeId, NodeId>, std::int64_t> seen;
  for (NodeId v = 0; v < 6; ++v) {
    for (const auto& m : net->inbox(v)) {
      auto& expect = seen[{m.src, m.dst}];
      EXPECT_EQ(m.payload.at(0), expect) << "pair " << m.src << "->" << m.dst;
      ++expect;
    }
  }
}

TEST_P(TopologyConformance, CongestedLinkCostsAtLeastItsQueueLength) {
  auto net = make(4);
  for (int i = 0; i < 5; ++i) net->send(2, 3, Payload::make(0, {i}));
  EXPECT_GE(net->max_link_load(), 1u);
  const std::uint64_t load = net->max_link_load();
  const std::uint64_t rounds = net->run_until_drained("p");
  EXPECT_GE(rounds, 5u);    // one message per link per round
  EXPECT_GE(rounds, load);  // max_link_load lower-bounds the drain
  EXPECT_EQ(net->inbox(3).size(), 5u);
}

TEST_P(TopologyConformance, EveryStepChargesExactlyOneRound) {
  auto net = make(8);
  for (NodeId v = 1; v < 8; ++v) net->send(0, v, Payload::make(0, {v}));
  const std::uint64_t steps = net->run_until_drained("phase");
  EXPECT_EQ(net->ledger().phase_rounds("phase"), steps);
  EXPECT_EQ(net->rounds(), steps);
}

TEST_P(TopologyConformance, ConservationUnderRandomTraffic) {
  const std::uint32_t n = 16;
  auto net = make(n);
  Rng rng(5);
  std::uint64_t sent = 0;
  for (NodeId v = 0; v < n; ++v) {
    for (int j = 0; j < 20; ++j) {
      NodeId dst = static_cast<NodeId>(rng.uniform_u64(n));
      if (dst == v) dst = static_cast<NodeId>((dst + 1) % n);
      net->send(v, dst, Payload::make(1, {static_cast<std::int64_t>(sent)}));
      ++sent;
    }
  }
  EXPECT_EQ(net->pending_messages(), sent);
  net->run_until_drained("p");
  EXPECT_EQ(net->pending_messages(), 0u);
  std::uint64_t received = 0;
  for (NodeId v = 0; v < n; ++v) received += net->inbox(v).size();
  EXPECT_EQ(received, sent);
  EXPECT_EQ(net->ledger().total_messages(), sent);
}

TEST_P(TopologyConformance, DepositBypassesBandwidth) {
  auto net = make(4);
  net->deposit(Message{0, 2, Payload::make(3, {77})});
  // Deposits never enter the queues: nothing pending, no rounds charged.
  EXPECT_EQ(net->pending_messages(), 0u);
  EXPECT_EQ(net->run_until_drained("p"), 0u);
  EXPECT_EQ(net->ledger().total_rounds(), 0u);
  ASSERT_EQ(net->inbox(2).size(), 1u);
  EXPECT_EQ(net->inbox(2)[0].payload.at(0), 77);
  EXPECT_THROW(net->deposit(Message{0, 9, Payload::make(0, {1})}), SimulationError);
}

TEST_P(TopologyConformance, TrafficMatrixObservesDeliveries) {
  auto net = make(8);
  net->enable_traffic_matrix();
  for (NodeId v = 1; v < 8; ++v) net->send(0, v, Payload::make(0, {v}));
  net->deposit(Message{3, 4, Payload::make(0, {9})});
  net->run_until_drained("p");
  ASSERT_NE(net->traffic(), nullptr);
  // Every sent message crossed at least one physical link (multi-hop
  // topologies cross several), plus the one deposit.
  EXPECT_GE(net->traffic()->total(), 8u);
  EXPECT_EQ(net->traffic()->deposits(), 1u);
  EXPECT_GE(net->traffic()->max_load(), 1u);
  EXPECT_GE(net->traffic()->links_used(), 2u);
  EXPECT_FALSE(net->traffic()->to_json().empty());
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, TopologyConformance,
                         ::testing::ValuesIn(TopologyRegistry::instance().names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(TopologyRegistry, BuiltinsRegisteredAndSorted) {
  auto& reg = TopologyRegistry::instance();
  EXPECT_GE(reg.size(), 3u);
  EXPECT_TRUE(reg.contains("clique"));
  EXPECT_TRUE(reg.contains("congest"));
  EXPECT_TRUE(reg.contains("bounded-degree"));
  const auto names = reg.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_FALSE(reg.get("clique").description.empty());
}

TEST(TopologyRegistry, UnknownTopologyThrowsNamingKnownOnes) {
  try {
    make_network(4, TransportOptions{.topology = "torus"});
    FAIL() << "expected SimulationError";
  } catch (const SimulationError& e) {
    EXPECT_NE(std::string(e.what()).find("clique"), std::string::npos);
  }
}

TEST(TopologyRegistry, DuplicateAndInvalidRegistrationThrow) {
  TopologyRegistry reg;
  register_builtin_topologies(reg);
  EXPECT_EQ(reg.size(), TopologyRegistry::instance().size());
  EXPECT_THROW(reg.add(TopologyInfo{"clique", "dup", nullptr}), SimulationError);
  EXPECT_THROW(
      reg.add(TopologyInfo{"", "anon",
                           [](std::uint32_t, const TransportOptions&)
                               -> std::unique_ptr<Network> { return nullptr; }}),
      SimulationError);
}

TEST(BoundedDegreeTopology, RespectsTheDegreeCap) {
  TransportOptions options;
  options.topology = "bounded-degree";
  options.degree_cap = 4;
  auto net = make_network(64, options);
  EXPECT_LE(net->capabilities().max_degree, 4u);
  EXPECT_FALSE(net->capabilities().fully_connected);
  EXPECT_FALSE(net->capabilities().lemma1_routing);
  // Any-to-any addressing still works (clique API over the overlay).
  net->send(0, 37, Payload::make(0, {1}));
  net->run_until_drained("p");
  ASSERT_EQ(net->inbox(37).size(), 1u);
  EXPECT_EQ(net->inbox(37)[0].src, 0u);
}

TEST(CongestTopology, RoutesOnlyAlongSuppliedLinks) {
  // Path graph 0-1-2-3: a message 0 -> 3 must take 3 rounds (3 hops, no
  // shortcut links exist).
  TransportOptions options;
  options.topology = "congest";
  options.links = std::make_shared<const std::vector<std::vector<NodeId>>>(
      std::vector<std::vector<NodeId>>{{1}, {2}, {3}, {}});
  auto net = make_network(4, options);
  net->send(0, 3, Payload::make(0, {5}));
  EXPECT_EQ(net->run_until_drained("p"), 3u);
  ASSERT_EQ(net->inbox(3).size(), 1u);
  EXPECT_EQ(net->inbox(3)[0].src, 0u);  // original source, not the last relay
}

TEST(CongestTopology, DisconnectedEndpointsThrowNoRoute) {
  TransportOptions options;
  options.topology = "congest";
  options.links = std::make_shared<const std::vector<std::vector<NodeId>>>(
      std::vector<std::vector<NodeId>>{{1}, {}, {3}, {}});
  auto net = make_network(4, options);
  EXPECT_THROW(net->send(0, 2, Payload::make(0, {1})), SimulationError);
  net->send(0, 1, Payload::make(0, {2}));  // within the component: fine
  EXPECT_EQ(net->run_until_drained("p"), 1u);
}

TEST(CongestTopology, EdgeCapacityCongestsSharedBottlenecks) {
  // Star around node 0 (links 1-0, 2-0, 3-0): messages 1->2 and 3->2 share
  // the directed edge 0->2 on their second hop, so the drain needs 3
  // rounds, not 2.
  TransportOptions options;
  options.topology = "congest";
  options.links = std::make_shared<const std::vector<std::vector<NodeId>>>(
      std::vector<std::vector<NodeId>>{{1, 2, 3}, {}, {}, {}});
  auto net = make_network(4, options);
  net->send(1, 2, Payload::make(0, {1}));
  net->send(3, 2, Payload::make(0, {2}));
  EXPECT_EQ(net->run_until_drained("p"), 3u);
  EXPECT_EQ(net->inbox(2).size(), 2u);
}

}  // namespace
}  // namespace qclique
