// Experiment E17: distance-query serving throughput.
//
// Solves one clustered-family graph, publishes it with witness paths into
// a SnapshotStore, and measures sustained queries/second through
// QueryServer sessions across reader-thread counts and workload mixes
// (uniform / zipf / locality, all from serve/workload.hpp). Distance
// throughput runs the batch API over pre-generated workloads; path
// throughput runs smaller volumes through the hot-pair cache.
//
//   usage: bench_query_serving [n] [json-path]
//
// Doubles as a conformance gate: every mix's answers are sampled against
// the solved distance matrix (exit non-zero on any mismatch), and the
// headline acceptance bar -- >= 1M distance queries/sec aggregate on the
// zipf mix with >= 4 reader threads at n >= 256 -- exits non-zero when
// missed. The JSON artifact (BENCH_query_serving.json) is uploaded by CI;
// docs/SERVING.md documents the schema.
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "api/registry.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "congest/round_ledger.hpp"
#include "graph/families.hpp"
#include "serve/query_server.hpp"
#include "serve/snapshot.hpp"
#include "serve/snapshot_store.hpp"
#include "serve/workload.hpp"

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qclique;
  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::stoul(argv[1])) : 256;
  const std::string json_path = argc > 2 ? argv[2] : "BENCH_query_serving.json";
  std::cout << "E17: distance-query serving throughput (n = " << n << ")\n\n";

  const std::string family = "clustered";
  const FamilyConfig cfg = family_config(n, 0.4, 1, 9);
  Rng grng(1700 + n);
  const Digraph g = make_family_graph(family, cfg, grng);

  ExecutionContext ctx(17);
  ctx.set_family(family);
  const auto snapshot = SolverRegistry::instance().get("floyd-warshall").serve(
      g, ctx, {.with_paths = true, .label = "bench"});
  QueryServer server(ctx.serve());

  const std::vector<QueryMix> mixes{QueryMix::kUniform, QueryMix::kZipf,
                                    QueryMix::kLocality};
  const std::vector<unsigned> thread_counts{1, 2, 4, 8};
  // Per-thread volumes: distance queries replay the workload through the
  // batch API; path queries run a smaller volume through the cache.
  const std::size_t workload_size = 1u << 14;
  const std::size_t distance_reps = 64;   // 64 * 16384 = ~1M queries/thread
  const std::size_t path_reps = 4;        // ~64k path queries/thread

  bool all_exact = true;
  double zipf_gate_qps = 0.0;
  Table table({"mix", "threads", "kind", "queries", "wall ms", "queries/s"});
  std::ostringstream json;
  json << "{\"bench\":\"query_serving\",\"schema_version\":1,\"n\":" << n
       << ",\"family\":" << json_quote(family)
       << ",\"solver\":\"floyd-warshall\",\"runs\":[";
  bool first_run = true;

  for (const QueryMix mix : mixes) {
    WorkloadOptions wo = workload_for_family(family, cfg, mix, workload_size);
    Rng wrng(42 + static_cast<std::uint64_t>(mix));
    const std::vector<PairQuery> workload = make_workload(wo, wrng);

    // Conformance sample: one session's answers vs the solved matrix.
    {
      auto session = server.session();
      const std::size_t sample = std::min<std::size_t>(workload.size(), 2048);
      for (std::size_t i = 0; i < sample; ++i) {
        const PairQuery& q = workload[i];
        if (session.distance(q.u, q.v) != snapshot->distance(q.u, q.v)) {
          std::cerr << "MISMATCH " << query_mix_name(mix) << " " << q.u << "->"
                    << q.v << "\n";
          all_exact = false;
        }
        const PathAnswer a = session.path(q.u, q.v);
        if (a.distance != snapshot->distance(q.u, q.v) ||
            a.nodes != snapshot->path(q.u, q.v)) {
          std::cerr << "PATH MISMATCH " << query_mix_name(mix) << " " << q.u
                    << "->" << q.v << "\n";
          all_exact = false;
        }
      }
    }

    for (const unsigned threads : thread_counts) {
      for (const bool paths : {false, true}) {
        const std::size_t reps = paths ? path_reps : distance_reps;
        const std::uint64_t total =
            static_cast<std::uint64_t>(threads) * reps * workload.size();
        std::atomic<std::int64_t> sink{0};  // keeps the lookups observable

        const double start = now_ms();
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t) {
          pool.emplace_back([&] {
            auto session = server.session();
            std::int64_t fold = 0;
            if (paths) {
              for (std::size_t rep = 0; rep < reps; ++rep) {
                for (const PairQuery& q : workload) {
                  fold ^= session.path(q.u, q.v).distance;
                }
              }
            } else {
              std::vector<std::int64_t> out(workload.size());
              for (std::size_t rep = 0; rep < reps; ++rep) {
                session.distance_batch(workload, out);
                fold ^= out[rep % out.size()];
              }
            }
            sink.fetch_add(fold, std::memory_order_relaxed);
          });
        }
        for (auto& t : pool) t.join();
        const double wall_ms = now_ms() - start;

        const double qps = wall_ms > 0.0 ? 1000.0 * static_cast<double>(total) /
                                               wall_ms
                                         : 0.0;
        const char* kind = paths ? "path" : "distance";
        if (!paths && mix == QueryMix::kZipf && threads >= 4) {
          zipf_gate_qps = std::max(zipf_gate_qps, qps);
        }
        table.add_row({query_mix_name(mix),
                       Table::fmt(static_cast<std::uint64_t>(threads)), kind,
                       Table::fmt(total), Table::fmt(wall_ms, 2),
                       Table::fmt(qps, 0)});
        if (!first_run) json << ",";
        first_run = false;
        json << "{\"mix\":" << json_quote(query_mix_name(mix))
             << ",\"threads\":" << threads << ",\"kind\":\"" << kind
             << "\",\"queries\":" << total << ",\"wall_ms\":" << wall_ms
             << ",\"queries_per_sec\":" << qps << "}";
      }
    }
  }

  const QueryServerStats stats = server.stats();
  json << "],\"totals\":{\"distance_queries\":" << stats.distance_queries
       << ",\"batch_entries\":" << stats.batch_entries
       << ",\"path_queries\":" << stats.path_queries
       << ",\"cache_hits\":" << stats.cache_hits
       << ",\"cache_misses\":" << stats.cache_misses
       << ",\"repins\":" << stats.repins
       << "},\"zipf_gate_queries_per_sec\":" << zipf_gate_qps
       << ",\"all_exact\":" << (all_exact ? "true" : "false") << "}";

  table.print("Query serving throughput (aggregate across reader threads)");
  std::cout << "\ncache: " << stats.cache_hits << " hits / "
            << stats.cache_misses << " misses over " << stats.path_queries
            << " path queries\n";

  std::ofstream out(json_path);
  out << json.str() << "\n";
  out.close();
  std::cout << "wrote " << json_path << "\n";
  std::cout << "answers exact vs solved matrix: " << (all_exact ? "yes" : "NO")
            << "\n";

  bool gate_ok = true;
  if (n >= 256) {
    gate_ok = zipf_gate_qps >= 1e6;
    std::cout << "zipf distance gate (>= 4 threads): "
              << Table::fmt(zipf_gate_qps, 0)
              << " queries/s (target 1e6): " << (gate_ok ? "PASS" : "FAIL")
              << "\n";
  }
  return all_exact && gate_ok ? 0 : 1;
}
