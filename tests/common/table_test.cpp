// Tests for the console table printer used by the bench harness.
#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace qclique {
namespace {

TEST(TableTest, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, ColumnsAlign) {
  Table t({"x", "longheader"});
  t.add_row({"longvalue", "1"});
  const std::string s = t.to_string();
  // Every line has the same length (trailing alignment).
  std::size_t prev = std::string::npos;
  std::size_t pos = 0;
  int lines = 0;
  while (pos < s.size()) {
    const std::size_t eol = s.find('\n', pos);
    const std::size_t len = eol - pos;
    if (lines == 0) prev = len;
    // Header and data lines must agree (the rule line may differ slightly).
    if (lines == 0 || lines == 2) EXPECT_EQ(len, prev);
    pos = eol + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 3);
}

TEST(TableTest, ArityEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), SimulationError);
  EXPECT_THROW(Table({}), SimulationError);
}

TEST(TableTest, NumberFormatting) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::fmt(std::int64_t{-7}), "-7");
  EXPECT_EQ(Table::fmt(0.5, 0), "0");  // rounds
}

}  // namespace
}  // namespace qclique
