#include "core/evaluation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "congest/lenzen.hpp"
#include "graph/triangles.hpp"

namespace qclique {

double eval_list_promise(std::uint32_t n, std::uint32_t alpha,
                         const Constants& constants) {
  return constants.eval_load * std::pow(2.0, alpha) *
         std::sqrt(static_cast<double>(n)) * paper_log(n);
}

std::uint32_t duplication_factor(std::uint32_t n, std::uint32_t alpha,
                                 const Constants& constants) {
  const double d = std::pow(2.0, alpha) / (constants.class_size * paper_log(n));
  return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(std::floor(d)));
}

EvalRunStats run_evaluation(Network& net, const WeightedGraph& g,
                            const Partitions& parts, std::uint32_t ub,
                            std::uint32_t vb, std::uint32_t alpha,
                            const std::vector<std::uint32_t>& t_alpha,
                            const EvalQuerySet& queries,
                            const Constants& constants, bool include_duplication) {
  const std::uint32_t n = parts.n();
  const std::uint32_t num_x = parts.num_wblocks();
  QCLIQUE_CHECK(queries.queries.size() == num_x,
                "EvalQuerySet must have one entry per x-node");
  EvalRunStats stats;
  stats.answers.assign(num_x, {});
  // Counts-only routing never sees a payload, so the field-budget guard
  // route() ran per message moves here: the widest message of the
  // procedure is the 4-field query ([u, v, f(u,v), slot]); duplication
  // messages carry 3 fields, replies 1.
  QCLIQUE_CHECK(net.config().fields_per_message >= 4,
                "run_evaluation needs >= 4 fields per message");
  const std::uint64_t rounds_before = net.ledger().total_rounds();
  const std::uint32_t dup = duplication_factor(n, alpha, constants);
  const double promise = eval_list_promise(n, alpha, constants);
  const std::string phase = "eval/alpha" + std::to_string(alpha);

  // --- Figure 5 Step 0: duplicate (u, v, w) data onto helper nodes. -------
  // The receivers never read the shipped weights (the answers below are
  // re-derived from the graph), so the whole batch is described as
  // per-link counts and routed payload-free: identical rounds, messages,
  // and traffic, zero materialization.
  if (include_duplication && dup > 1) {
    const std::uint64_t dup_before = net.ledger().total_rounds();
    LinkCounts counts(net.size());
    const auto us = parts.vblock_vertices(ub);
    const auto vs = parts.vblock_vertices(vb);
    for (std::uint32_t wb : t_alpha) {
      const NodeId src = parts.t_node(ub, vb, wb);
      const auto ws = parts.wblock_vertices(wb);
      for (std::uint32_t y = 1; y < dup; ++y) {  // y = 0 is the original
        const NodeId dst = parts.dup_node(ub, vb, wb, y, dup);
        if (dst == src) continue;
        // One message per stored weight f(u, w') and f(w', v).
        for (std::uint32_t w : ws) {
          const std::int64_t* wrow = g.row_ptr(w);
          for (std::uint32_t u : us) {
            if (u == w || is_plus_inf(wrow[u])) continue;
            counts.add(src, dst);
          }
          for (std::uint32_t v : vs) {
            if (v == w || is_plus_inf(wrow[v])) continue;
            counts.add(src, dst);
          }
        }
      }
    }
    route_counts(net, counts, phase + "/duplicate");
    stats.duplication_rounds = net.ledger().total_rounds() - dup_before;
  }

  // --- Step 1: build the lists L^k_w and ship them. ------------------------
  // A query message carries [u, v, f(u,v), slot]; the responder's answer is
  // re-derived from the queried block below, so no payload is ever read —
  // queries route as per-link counts. For alpha > 0 the list toward block w
  // is split across the dup helper nodes round-robin.
  LinkCounts query_counts(net.size());
  // Track per (x, w) list sizes for the promise audit.
  std::vector<std::uint64_t> list_len(static_cast<std::size_t>(num_x) * t_alpha.size(),
                                      0);
  for (std::uint32_t x = 0; x < num_x; ++x) {
    const NodeId src = parts.x_node(ub, vb, x);
    for (std::uint32_t i = 0; i < queries.queries[x].size(); ++i) {
      const auto& [pair, wpos] = queries.queries[x][i];
      QCLIQUE_CHECK(wpos < t_alpha.size(), "query outside T_alpha");
      const std::uint32_t wb = t_alpha[wpos];
      const std::uint64_t len =
          ++list_len[static_cast<std::size_t>(x) * t_alpha.size() + wpos];
      const std::uint32_t y = static_cast<std::uint32_t>(len % dup);
      const NodeId dst = dup == 1 ? parts.t_node(ub, vb, wb)
                                  : parts.dup_node(ub, vb, wb, y, dup);
      if (src == dst) {
        net.deposit_counts(src, dst);
      } else {
        query_counts.add(src, dst);
      }
      ++stats.messages;
    }
  }
  for (std::uint64_t len : list_len) {
    stats.max_list_len = std::max(stats.max_list_len, len);
    if (static_cast<double>(len) > promise) ++stats.promise_violations;
  }
  route_counts(net, query_counts, phase + "/queries");

  // --- Step 2: responders check Inequality (2) and reply. ------------------
  // Note: the paper's Figure 4 writes "min <= f(u,v)"; Definition 1 requires
  // f(u,v) + f(u,w) + f(w,v) < 0, i.e. min_{w} (f(u,w) + f(w,v)) < -f(u,v).
  // We implement the Definition 1 form (the Figure's inequality appears to
  // drop the sign flip from the distance-product gadget where f(i,j) =
  // -D[i,j]).
  LinkCounts reply_counts(net.size());
  // Responders need to know which W-block a query addressed; the mapping
  // (dst node, dup slot) -> wb is known from the labeling scheme, but for
  // the simulation we simply re-derive the answer from the queried block
  // (which is also why the counts-only routing above loses nothing: no
  // delivered payload is ever read).
  for (std::uint32_t x = 0; x < num_x; ++x) {
    stats.answers[x].assign(queries.queries[x].size(), false);
  }
  for (std::uint32_t x = 0; x < num_x; ++x) {
    const NodeId xnode = parts.x_node(ub, vb, x);
    for (std::uint32_t i = 0; i < queries.queries[x].size(); ++i) {
      const auto& [pair, wpos] = queries.queries[x][i];
      const std::uint32_t wb = t_alpha[wpos];
      const auto ws = parts.wblock_vertices(wb);
      const bool hit = exists_negative_triangle_via(g, pair.a, pair.b, ws);
      stats.answers[x][i] = hit;
      // Reply: one field (slot | bit). Same (src, dst) profile as the query,
      // reversed.
      const std::uint64_t len_slot =
          static_cast<std::size_t>(x) * t_alpha.size() + wpos;
      const std::uint32_t y = static_cast<std::uint32_t>(list_len[len_slot] % dup);
      const NodeId responder = dup == 1 ? parts.t_node(ub, vb, wb)
                                        : parts.dup_node(ub, vb, wb, y, dup);
      if (responder == xnode) continue;  // local answer
      reply_counts.add(responder, xnode);  // one field: (slot | bit)
    }
  }
  route_counts(net, reply_counts, phase + "/replies");

  stats.rounds = net.ledger().total_rounds() - rounds_before;
  return stats;
}

}  // namespace qclique
