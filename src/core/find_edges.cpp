#include "core/find_edges.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qclique {

namespace {

/// Runs ComputePairs with abort retries (fresh randomness each time).
ComputePairsResult run_with_retries(const WeightedGraph& g,
                                    const std::vector<VertexPair>& s,
                                    const FindEdgesOptions& options, Rng& rng,
                                    FindEdgesResult& agg) {
  for (std::uint32_t attempt = 0;; ++attempt) {
    Rng child = rng.split();
    ComputePairsResult r = compute_pairs(g, s, options.compute_pairs, child);
    ++agg.compute_pairs_calls;
    agg.ledger.absorb(r.ledger);
    if (!r.aborted) return r;
    ++agg.aborts_retried;
    QCLIQUE_CHECK(attempt < options.max_abort_retries,
                  "compute_pairs aborted too many times");
  }
}

}  // namespace

FindEdgesResult find_edges(const WeightedGraph& g, const FindEdgesOptions& options,
                           Rng& rng) {
  const std::uint32_t n = g.size();
  FindEdgesResult res;
  const Constants& cst = options.compute_pairs.constants;

  // The communication topology is a property of the run, not of the sampled
  // subgraphs: for graph-induced links, pin the *input* graph's edges once
  // so every ComputePairs call (including the edge-sampled ones) runs on
  // the same communication network.
  FindEdgesOptions run_options = options;
  if (wants_graph_links(run_options.compute_pairs.transport)) {
    run_options.compute_pairs.transport =
        with_links(run_options.compute_pairs.transport, g.adjacency_lists());
  }
  const FindEdgesOptions& opts = run_options;

  // S <- P(V); M <- empty.
  std::vector<VertexPair> s;
  s.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) s.emplace_back(u, v);
  }
  std::set<VertexPair> m_found;

  // While c * 2^i * log n <= n: sample, solve, peel off the found pairs.
  const double logn = paper_log(n);
  for (std::uint32_t i = 0; cst.prop1_sample * std::pow(2.0, i) * logn <=
                            static_cast<double>(n);
       ++i) {
    ++res.loop_iterations;
    const double p =
        std::sqrt(cst.prop1_sample * std::pow(2.0, i) * logn / static_cast<double>(n));
    Rng grng = rng.split();
    WeightedGraph gs = g.sample_edges(std::min(1.0, p), grng);
    // Keep every S-pair's own edge (see header note).
    for (const auto& pr : s) {
      if (g.has_edge(pr.a, pr.b)) gs.set_edge(pr.a, pr.b, g.weight(pr.a, pr.b));
    }
    const ComputePairsResult step = run_with_retries(gs, s, opts, rng, res);
    if (!step.hot_pairs.empty()) {
      for (const auto& pr : step.hot_pairs) m_found.insert(pr);
      std::vector<VertexPair> remaining;
      remaining.reserve(s.size());
      std::set_difference(s.begin(), s.end(), step.hot_pairs.begin(),
                          step.hot_pairs.end(), std::back_inserter(remaining));
      s = std::move(remaining);
    }
  }

  // Final call on the full graph.
  const ComputePairsResult last = run_with_retries(g, s, opts, rng, res);
  for (const auto& pr : last.hot_pairs) m_found.insert(pr);

  res.hot_pairs.assign(m_found.begin(), m_found.end());
  std::sort(res.hot_pairs.begin(), res.hot_pairs.end());
  res.rounds = res.ledger.total_rounds();
  return res;
}

}  // namespace qclique
