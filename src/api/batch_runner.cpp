#include "api/batch_runner.hpp"

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "serve/snapshot.hpp"
#include "serve/snapshot_store.hpp"
#include "stream/generators.hpp"
#include "stream/session.hpp"

namespace qclique {

std::vector<BatchResult> BatchRunner::run(const std::vector<BatchJob>& jobs) const {
  unsigned workers = base_.num_threads();
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, jobs.size() > 0 ? jobs.size() : 1));
  return run_with_workers(jobs, workers);
}

std::vector<BatchResult> BatchRunner::run_with_workers(
    const std::vector<BatchJob>& jobs, unsigned workers) const {
  std::vector<BatchResult> results(jobs.size());

  const auto run_one = [&](std::size_t i) {
    BatchResult& out = results[i];
    out.job_index = i;
    out.solver = jobs[i].solver;
    out.family = jobs[i].family;
    out.label = jobs[i].label;
    try {
      QCLIQUE_CHECK(jobs[i].graph != nullptr, "batch job without a graph");
      const ApspSolver& solver = registry_.get(jobs[i].solver);
      // Fork by job index so results do not depend on worker scheduling,
      // and mix the job's salt so callers can vary randomness per job.
      ExecutionContext ctx =
          base_.fork(static_cast<std::uint64_t>(i) * 0x100000001b3ULL +
                     jobs[i].seed_salt);
      if (!jobs[i].kernel.empty()) ctx.set_kernel(jobs[i].kernel);
      if (!jobs[i].topology.empty()) ctx.set_topology(jobs[i].topology);
      // The family stamp travels through the context so ApspSolver::solve
      // writes it into the report the same way for every caller (direct
      // solves included), not as a batch-only afterthought.
      ctx.set_family(jobs[i].family);
      // A fanned-out batch already saturates the machine with one worker
      // per hardware thread; letting every job's "parallel" kernel spawn
      // its own full thread pool on top would oversubscribe quadratically.
      // Serialize the kernels instead -- results are identical by the
      // kernel contract, only wall time changes.
      if (workers > 1) ctx.kernel_options().config.num_threads = 1;
      out.report = solver.solve(*jobs[i].graph, ctx);
      out.ok = true;
    } catch (const std::exception& e) {
      out.ok = false;
      out.error = e.what();
    }
  };

  if (workers <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) run_one(i);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < jobs.size();
             i = next.fetch_add(1)) {
          run_one(i);
        }
      });
    }
    for (auto& t : pool) t.join();
  }

  // Workers have joined: aggregate per-job costs single-threaded.
  for (const BatchResult& r : results) {
    if (r.ok) batch_ledger_.absorb(r.report->ledger);
  }
  return results;
}

std::vector<BatchResult> BatchRunner::run_all(const Digraph& g,
                                              std::vector<std::string> solvers) const {
  if (solvers.empty()) {
    const bool negative = g.has_negative_arc();
    for (const std::string& name : registry_.names()) {
      if (negative && !registry_.get(name).capabilities().negative_weights) continue;
      solvers.push_back(name);
    }
  }
  const auto shared = std::make_shared<const Digraph>(g);
  std::vector<BatchJob> jobs;
  jobs.reserve(solvers.size());
  for (const std::string& name : solvers) {
    jobs.push_back(BatchJob{.graph = shared, .solver = name, .kernel = "",
                            .topology = "", .family = "", .seed_salt = 0,
                            .label = name});
  }
  return run(jobs);
}

std::vector<BatchResult> BatchRunner::run_scenarios(const ScenarioSpec& spec) const {
  const std::vector<std::string> families =
      spec.families.empty() ? GraphFamilyRegistry::instance().names()
                            : spec.families;
  const std::vector<std::string> topologies =
      spec.topologies.empty() ? TopologyRegistry::instance().names()
                              : spec.topologies;
  const std::vector<std::string> kernels =
      spec.kernels.empty() ? KernelRegistry::instance().names() : spec.kernels;

  std::vector<BatchJob> jobs;
  for (const std::string& family : families) {
    // Key the family's graph by (graph_seed, family name) -- an FNV-1a
    // fold through splitmix64 -- so the sweep's composition never changes
    // any individual family's graph.
    std::uint64_t fseed = spec.graph_seed ^ 0xcbf29ce484222325ULL;
    for (const char ch : family) {
      fseed = (fseed ^ static_cast<unsigned char>(ch)) * 0x100000001b3ULL;
    }
    Rng rng(splitmix64(fseed));
    const auto graph = std::make_shared<const Digraph>(
        GraphFamilyRegistry::instance().get(family).generate(spec.config, rng));

    std::vector<std::string> solvers = spec.solvers;
    if (solvers.empty()) {
      const bool negative = graph->has_negative_arc();
      for (const std::string& name : registry_.names()) {
        if (negative && !registry_.get(name).capabilities().negative_weights)
          continue;
        solvers.push_back(name);
      }
    }
    for (const std::string& solver : solvers) {
      const bool distributed =
          registry_.contains(solver) &&
          registry_.get(solver).capabilities().distributed;
      for (std::size_t t = 0; t < topologies.size(); ++t) {
        // Centralized oracles never touch the transport; one topology row
        // carries all the information the grid can hold for them.
        if (!distributed && t > 0) break;
        for (const std::string& kernel : kernels) {
          jobs.push_back(BatchJob{
              .graph = graph, .solver = solver, .kernel = kernel,
              .topology = topologies[t], .family = family, .seed_salt = 0,
              .label = family + "/" + solver + "/" + topologies[t] + "/" +
                       kernel});
        }
      }
    }
  }
  return run(jobs);
}

std::vector<StreamResult> BatchRunner::run_streams(
    const StreamScenarioSpec& spec) const {
  QCLIQUE_CHECK(spec.config.wmin >= 0,
                "run_streams requires non-negative family weights (dynamic "
                "solver contract)");
  const std::vector<std::string> families =
      spec.families.empty() ? GraphFamilyRegistry::instance().names()
                            : spec.families;
  const std::vector<std::string> streams =
      spec.streams.empty() ? UpdateStreamRegistry::instance().names()
                           : spec.streams;
  const std::vector<std::string> solvers =
      spec.solvers.empty() ? DynamicSolverRegistry::instance().names()
                           : spec.solvers;

  struct StreamJob {
    std::string family;
    std::string stream;
    std::string solver;
    std::shared_ptr<const Digraph> graph;
    std::shared_ptr<const std::vector<UpdateBatch>> batches;
  };

  // Generate inputs up front, single-threaded: one graph per family (same
  // (graph_seed, family) keying as run_scenarios) and one stream per
  // (family, stream) shared by every solver, so the solver axis compares
  // like for like.
  std::vector<StreamJob> jobs;
  for (const std::string& family : families) {
    std::uint64_t fseed = spec.graph_seed ^ 0xcbf29ce484222325ULL;
    for (const char ch : family) {
      fseed = (fseed ^ static_cast<unsigned char>(ch)) * 0x100000001b3ULL;
    }
    Rng rng(splitmix64(fseed));
    const auto graph = std::make_shared<const Digraph>(
        GraphFamilyRegistry::instance().get(family).generate(spec.config, rng));
    const StreamConfig sc = stream_for_family(family, spec.config,
                                              spec.batches, spec.batch_size);
    for (const std::string& stream : streams) {
      std::uint64_t sseed = fseed;
      for (const char ch : stream) {
        sseed = (sseed ^ static_cast<unsigned char>(ch)) * 0x100000001b3ULL;
      }
      Rng srng(splitmix64(sseed));
      const auto batches = std::make_shared<const std::vector<UpdateBatch>>(
          make_update_stream(stream, *graph, sc, srng));
      for (const std::string& solver : solvers) {
        jobs.push_back(StreamJob{family, stream, solver, graph, batches});
      }
    }
  }

  unsigned workers = base_.num_threads();
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, jobs.size() > 0 ? jobs.size() : 1));

  std::vector<StreamResult> results(jobs.size());
  const auto run_one = [&](std::size_t i) {
    const StreamJob& job = jobs[i];
    StreamResult& out = results[i];
    out.job_index = i;
    out.family = job.family;
    out.stream = job.stream;
    out.solver = job.solver;
    out.n = job.graph->size();
    const auto t0 = std::chrono::steady_clock::now();
    try {
      ExecutionContext ctx =
          base_.fork(static_cast<std::uint64_t>(i) * 0x100000001b3ULL);
      ctx.set_family(job.family);
      if (workers > 1) ctx.kernel_options().config.num_threads = 1;
      StreamSessionOptions options;
      options.solver = job.solver;
      options.dynamic.backend = spec.backend;
      options.dynamic.with_paths = spec.with_paths;
      options.label = job.family + "/" + job.stream + "/" + job.solver;
      StreamSession session(*job.graph, ctx, std::move(options));
      ++out.published_versions;

      std::unique_ptr<DynamicApspSolver> oracle;
      if (spec.verify && job.solver != "recompute") {
        DynamicSolverOptions oracle_options;
        oracle_options.backend = spec.backend;
        oracle_options.with_paths = false;  // distances are what conformance compares
        oracle = make_dynamic_solver("recompute", oracle_options);
        oracle->reset(*job.graph, ctx);
      }
      for (const UpdateBatch& batch : *job.batches) {
        session.apply(batch);
        ++out.published_versions;
        ++out.batches;
        out.updates += session.last_stats().updates;
        out.changed_arcs += session.last_stats().changed_arcs;
        out.affected_sources += session.last_stats().affected_sources;
        if (oracle) {
          oracle->apply(batch, ctx);
          if (!(oracle->distances() == session.solver().distances())) {
            out.exact = false;
          }
        }
      }
      out.ok = true;
    } catch (const std::exception& e) {
      out.ok = false;
      out.error = e.what();
    }
    out.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  };

  if (workers <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) run_one(i);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < jobs.size();
             i = next.fetch_add(1)) {
          run_one(i);
        }
      });
    }
    for (auto& t : pool) t.join();
  }
  return results;
}

std::vector<BatchResult> BatchRunner::run_kernels(const Digraph& g,
                                                  const std::string& solver,
                                                  std::vector<std::string> kernels) const {
  if (kernels.empty()) kernels = KernelRegistry::instance().names();
  const auto shared = std::make_shared<const Digraph>(g);
  std::vector<BatchJob> jobs;
  jobs.reserve(kernels.size());
  for (const std::string& name : kernels) {
    jobs.push_back(BatchJob{.graph = shared, .solver = solver, .kernel = name,
                            .topology = "", .family = "", .seed_salt = 0,
                            .label = name});
  }
  // One batch worker: this sweep exists to compare kernel wall times, so
  // each job must own the whole machine (a parallel batch would both skew
  // the timings and trip run()'s kernel-thread cap, silently benchmarking
  // "parallel" as "blocked").
  return run_with_workers(jobs, 1);
}

std::vector<std::shared_ptr<const ApspSnapshot>> publish_scenarios(
    const std::vector<BatchResult>& results, SnapshotStore& store) {
  std::vector<std::shared_ptr<const ApspSnapshot>> pins;
  pins.reserve(results.size());
  for (const BatchResult& r : results) {
    if (!r.ok) {
      pins.push_back(nullptr);
      continue;
    }
    pins.push_back(store.publish(
        ApspSnapshot(*r.report, /*successor=*/{}, /*label=*/r.label)));
  }
  return pins;
}

std::string stream_scenarios_to_json(const std::vector<StreamResult>& results) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const StreamResult& r = results[i];
    if (i > 0) out << ",";
    out << "{\"family\":" << json_quote(r.family)
        << ",\"stream\":" << json_quote(r.stream)
        << ",\"solver\":" << json_quote(r.solver)
        << ",\"ok\":" << (r.ok ? "true" : "false");
    if (r.ok) {
      out << ",\"n\":" << r.n << ",\"batches\":" << r.batches
          << ",\"updates\":" << r.updates
          << ",\"changed_arcs\":" << r.changed_arcs
          << ",\"affected_sources\":" << r.affected_sources
          << ",\"exact\":" << (r.exact ? "true" : "false")
          << ",\"published_versions\":" << r.published_versions
          << ",\"wall_ms\":" << r.wall_ms;
    } else {
      out << ",\"error\":" << json_quote(r.error);
    }
    out << "}";
  }
  out << "]";
  return out.str();
}

std::string scenarios_to_json(const std::vector<BatchResult>& results) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BatchResult& r = results[i];
    if (i > 0) out << ",";
    out << "{\"label\":" << json_quote(r.label)
        << ",\"family\":" << json_quote(r.family)
        << ",\"solver\":" << json_quote(r.solver)
        << ",\"ok\":" << (r.ok ? "true" : "false");
    if (r.ok) {
      out << ",\"report\":" << r.report->to_json();
    } else {
      out << ",\"error\":" << json_quote(r.error);
    }
    out << "}";
  }
  out << "]";
  return out.str();
}

}  // namespace qclique
