// Message representation for the CONGEST-CLIQUE simulator.
//
// In the CONGEST-CLIQUE model each ordered pair of nodes can exchange one
// message of O(log n) bits per synchronous round. We model an O(log n)-bit
// message as a fixed small number of *fields*, where one field holds one
// logical value of O(log n + log W) bits (a vertex identifier, a weight, a
// counter). This keeps round accounting proportional to the true bit
// complexity for polynomially-bounded weights without simulating individual
// bits. The per-message field budget is configurable (see NetworkConfig);
// sends that exceed it throw BandwidthError.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace qclique {

/// Index of a simulated network node, in [0, n).
using NodeId = std::uint32_t;

/// Hard upper bound on fields a single Payload can carry; the configured
/// per-round budget (NetworkConfig::fields_per_message) must be <= this.
inline constexpr std::size_t kMaxPayloadFields = 6;

/// A small fixed-capacity record transported by one message.
/// `tag` multiplexes protocol phases sharing a network.
struct Payload {
  std::uint32_t tag = 0;
  std::uint8_t size = 0;
  std::array<std::int64_t, kMaxPayloadFields> fields{};

  /// Appends one field; throws if capacity exhausted.
  void push(std::int64_t v) {
    QCLIQUE_CHECK(size < kMaxPayloadFields, "Payload field capacity exceeded");
    fields[size++] = v;
  }

  std::int64_t at(std::size_t i) const {
    QCLIQUE_CHECK(i < size, "Payload field index out of range");
    return fields[i];
  }

  static Payload make(std::uint32_t tag, std::initializer_list<std::int64_t> fs) {
    Payload p;
    p.tag = tag;
    for (auto f : fs) p.push(f);
    return p;
  }
};

/// A message in flight: source, destination, payload.
struct Message {
  NodeId src = 0;
  NodeId dst = 0;
  Payload payload;
};

/// Reserved tag marking counts-only (phantom) traffic: a phantom message
/// consumes link capacity, advances rounds, and is counted by the
/// TrafficMatrix exactly like a real message, but is never delivered to an
/// inbox (Network::deliver_to_inbox drops it). Protocol payloads must not
/// use this tag.
inline constexpr std::uint32_t kPhantomTag = 0xffffffffu;

/// Struct-of-arrays batch of messages sharing one payload arena.
///
/// The per-`Message` batch representation costs ~64 bytes per message and
/// one copy per hop (producer vector -> inbox); at the pipeline's
/// O(n^2 sqrt n) batch sizes that materialization dominates the simulated
/// hot path. A MessageBatch keeps sources, destinations, and tags in flat
/// arrays and all payload fields in one shared arena, so producers append
/// with no per-message allocation and `route(Network&, const MessageBatch&,
/// phase)` reads the load profile straight off the arrays. Semantically a
/// MessageBatch is exactly the sequence of messages it was built from, in
/// insertion order — the routing-equivalence suite holds the two batch
/// forms bit-identical in every model-visible quantity.
class MessageBatch {
 public:
  MessageBatch() = default;

  std::size_t size() const { return src_.size(); }
  bool empty() const { return src_.empty(); }

  /// Pre-sizes the arrays: `messages` entries, `total_fields` payload
  /// fields across the whole batch (reserve once, append forever).
  void reserve(std::size_t messages, std::size_t total_fields) {
    src_.reserve(messages);
    dst_.reserve(messages);
    tag_.reserve(messages);
    offset_.reserve(messages);
    fields_.reserve(total_fields);
  }

  /// Starts a new message; subsequent `field` calls append its payload.
  void add(NodeId src, NodeId dst, std::uint32_t tag) {
    QCLIQUE_CHECK(fields_.size() <= UINT32_MAX,
                  "MessageBatch payload arena exceeds 2^32 fields");
    src_.push_back(src);
    dst_.push_back(dst);
    tag_.push_back(tag);
    offset_.push_back(static_cast<std::uint32_t>(fields_.size()));
  }

  /// Appends one payload field to the message opened by the last `add`.
  void field(std::int64_t v) {
    QCLIQUE_CHECK(!src_.empty(), "MessageBatch::field before add");
    fields_.push_back(v);
  }

  NodeId src(std::size_t i) const { return src_[i]; }
  NodeId dst(std::size_t i) const { return dst_[i]; }
  std::uint32_t tag(std::size_t i) const { return tag_[i]; }

  std::size_t field_count(std::size_t i) const { return field_end(i) - offset_[i]; }

  /// Materializes message i (inbox delivery; the one place the AoS form
  /// is still needed).
  Message message(std::size_t i) const {
    Message m;
    m.src = src_[i];
    m.dst = dst_[i];
    m.payload.tag = tag_[i];
    for (std::size_t f = offset_[i]; f < field_end(i); ++f) {
      m.payload.push(fields_[f]);
    }
    return m;
  }

  void clear() {
    src_.clear();
    dst_.clear();
    tag_.clear();
    offset_.clear();
    fields_.clear();
  }

 private:
  std::size_t field_end(std::size_t i) const {
    return i + 1 < offset_.size() ? offset_[i + 1] : fields_.size();
  }

  std::vector<NodeId> src_, dst_;
  std::vector<std::uint32_t> tag_;
  std::vector<std::uint32_t> offset_;  // first arena index of message i
  std::vector<std::int64_t> fields_;   // shared payload arena
};

/// Per-(src, dst) message-count profile for counts-only routing.
///
/// Call sites whose receivers never read the delivered payloads (the next
/// statement clears the inboxes — the step 1/2 loads, the evaluation
/// traffic, whole-row shipping) describe their batch as counts and
/// `route_counts` charges identical rounds, messages, and per-link traffic
/// without constructing a single payload. Insertion order is preserved as
/// run-length-encoded (link, count) runs because hop-by-hop topologies'
/// measured congestion depends on enqueue order; the clique fast path only
/// reads the aggregate load profile.
class LinkCounts {
 public:
  explicit LinkCounts(std::uint32_t n)
      : n_(n), src_load_(n, 0), dst_load_(n, 0) {}

  std::uint32_t nodes() const { return n_; }

  /// Counts `count` messages src -> dst. src == dst models a
  /// bandwidth-free self-delivery, mirroring route()'s deposit of
  /// self-addressed messages (it still counts toward the batch size and
  /// the load profile, as route()'s profile pass does).
  void add(NodeId src, NodeId dst, std::uint64_t count = 1) {
    QCLIQUE_CHECK(src < n_ && dst < n_, "LinkCounts endpoint out of range");
    if (count == 0) return;
    const std::uint64_t link = static_cast<std::uint64_t>(src) * n_ + dst;
    if (!runs_.empty() && runs_.back().link == link) {
      runs_.back().count += count;
    } else {
      runs_.push_back(Run{link, count});
    }
    src_load_[src] += count;
    dst_load_[dst] += count;
    total_ += count;
  }

  std::uint64_t total() const { return total_; }
  bool empty() const { return total_ == 0; }

  std::uint64_t max_source_load() const {
    std::uint64_t m = 0;
    for (std::uint64_t l : src_load_) m = std::max(m, l);
    return m;
  }

  std::uint64_t max_dest_load() const {
    std::uint64_t m = 0;
    for (std::uint64_t l : dst_load_) m = std::max(m, l);
    return m;
  }

  /// Replays the counted messages in insertion order, one call per run of
  /// consecutive same-link messages.
  template <typename Fn>  // void(NodeId src, NodeId dst, std::uint64_t count)
  void for_each_run(Fn&& fn) const {
    for (const Run& r : runs_) {
      fn(static_cast<NodeId>(r.link / n_), static_cast<NodeId>(r.link % n_),
         r.count);
    }
  }

 private:
  struct Run {
    std::uint64_t link;  // src * n + dst
    std::uint64_t count;
  };

  std::uint32_t n_;
  std::vector<Run> runs_;
  std::vector<std::uint64_t> src_load_, dst_load_;
  std::uint64_t total_ = 0;
};

}  // namespace qclique
