// The NEON tier: 2 x i64 lanes over the clean-tile inner loop.
//
// NEON is baseline on AArch64, so this TU needs no extra compile flags
// there; on other targets the stub keeps the symbol linkable and the tier
// out of dispatch. Like AVX2, NEON has no packed 64-bit min/max, so both
// are a signed compare (cmgt) feeding a bitwise select (bsl). Two lanes is
// a modest width, but the win over the scalar tier on AArch64 comes from
// the same place as on x86: the compare/select pair replaces the
// branchless-but-serial scalar min with straight-line vector ops.
#include "matrix/kernel_band.hpp"

#if defined(__aarch64__) || defined(__ARM_NEON)

#include <arm_neon.h>

namespace qclique::detail {

namespace {

inline void clean_row_neon(std::int64_t aik, const std::int64_t* brow,
                           std::int64_t* crow, std::uint32_t* wrow,
                           std::uint32_t jj, std::uint32_t jh, std::uint32_t k) {
  const int64x2_t vaik = vdupq_n_s64(aik);
  const int64x2_t vminf = vdupq_n_s64(kMinusInf);
  std::uint32_t j = jj;
  if (wrow == nullptr) {
    for (; j + 2 <= jh; j += 2) {
      const int64x2_t s = vaddq_s64(vaik, vld1q_s64(brow + j));
      // v = max(s, -inf).
      const int64x2_t v = vbslq_s64(vcgtq_s64(s, vminf), s, vminf);
      const int64x2_t vc = vld1q_s64(crow + j);
      // c = min(c, v).
      vst1q_s64(crow + j, vbslq_s64(vcgtq_s64(vc, v), v, vc));
    }
  } else {
    for (; j + 2 <= jh; j += 2) {
      const int64x2_t s = vaddq_s64(vaik, vld1q_s64(brow + j));
      const int64x2_t v = vbslq_s64(vcgtq_s64(s, vminf), s, vminf);
      const int64x2_t vc = vld1q_s64(crow + j);
      const uint64x2_t imp = vcgtq_s64(vc, v);
      vst1q_s64(crow + j, vbslq_s64(imp, v, vc));
      if (vgetq_lane_u64(imp, 0)) wrow[j] = k;
      if (vgetq_lane_u64(imp, 1)) wrow[j + 1] = k;
    }
  }
  clean_row_scalar(aik, brow, crow, wrow, j, jh, k);
}

}  // namespace

void simd_band_neon(const std::int64_t* a, const std::int64_t* b, std::int64_t* c,
                    std::uint32_t rows, std::uint32_t inner, std::uint32_t cols,
                    std::uint32_t bs, const std::uint8_t* clean,
                    std::uint32_t* witness) {
  banded_tiles(a, b, c, rows, inner, cols, bs, clean, witness, clean_row_neon);
}

bool kernel_band_neon_compiled() { return true; }

}  // namespace qclique::detail

#else  // !NEON

namespace qclique::detail {

void simd_band_neon(const std::int64_t* a, const std::int64_t* b, std::int64_t* c,
                    std::uint32_t rows, std::uint32_t inner, std::uint32_t cols,
                    std::uint32_t bs, const std::uint8_t* clean,
                    std::uint32_t* witness) {
  blocked_band(a, b, c, rows, inner, cols, bs, clean, witness);
}

bool kernel_band_neon_compiled() { return false; }

}  // namespace qclique::detail

#endif
