// Integer math helpers shared by the simulator and the algorithms.
//
// The paper freely writes n^{1/4}, sqrt(n), n^{3/4} and assumes they are
// integers ("otherwise we can simply round them to the next integers and
// slightly adjust the sizes of the sets"). The block-size helpers here
// implement exactly that rounding so partition code stays uncluttered.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace qclique {

/// Saturating "infinity" for min-plus arithmetic. Chosen well below
/// INT64_MAX so that INF + INF does not overflow before saturation.
inline constexpr std::int64_t kPlusInf = std::numeric_limits<std::int64_t>::max() / 4;
inline constexpr std::int64_t kMinusInf = -kPlusInf;

/// True if `w` represents +infinity (no path / no edge).
constexpr bool is_plus_inf(std::int64_t w) { return w >= kPlusInf; }
/// True if `w` represents -infinity.
constexpr bool is_minus_inf(std::int64_t w) { return w <= kMinusInf; }

/// Min-plus-safe addition: inf + x = inf, and finite sums saturate at the
/// sentinels instead of overflowing.
std::int64_t sat_add(std::int64_t a, std::int64_t b);

/// ceil(a / b) for positive integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// floor(log2(x)) for x >= 1.
int floor_log2(std::uint64_t x);

/// ceil(log2(x)) for x >= 1 (ceil_log2(1) == 0).
int ceil_log2(std::uint64_t x);

/// The paper's "log n": ceil(log2(n)), but at least 1 so that constants like
/// "10 log n" never vanish at tiny n.
int paper_log(std::uint64_t n);

/// floor(sqrt(n)).
std::uint64_t isqrt(std::uint64_t n);

/// ceil(sqrt(n)).
std::uint64_t isqrt_ceil(std::uint64_t n);

/// ceil(n^{1/4}).
std::uint64_t iroot4_ceil(std::uint64_t n);

/// ceil(n^{1/3}).
std::uint64_t iroot3_ceil(std::uint64_t n);

/// Integer power with overflow check (throws SimulationError on overflow).
std::uint64_t ipow(std::uint64_t base, unsigned exp);

/// Splits the range [0, n) into `blocks` contiguous blocks whose sizes differ
/// by at most one. Block b is [block_begin(b), block_end(b)).
/// Requires 1 <= blocks <= n.
class BlockPartition {
 public:
  BlockPartition(std::uint64_t n, std::uint64_t blocks);

  std::uint64_t n() const { return n_; }
  std::uint64_t num_blocks() const { return starts_.size() - 1; }
  std::uint64_t block_of(std::uint64_t i) const;
  std::uint64_t block_begin(std::uint64_t b) const { return starts_[b]; }
  std::uint64_t block_end(std::uint64_t b) const { return starts_[b + 1]; }
  std::uint64_t block_size(std::uint64_t b) const {
    return starts_[b + 1] - starts_[b];
  }

 private:
  std::uint64_t n_;
  std::vector<std::uint64_t> starts_;
};

}  // namespace qclique
