// Distributed shortest-path reconstruction (the paper's footnote 1).
//
// The APSP pipeline returns distances; "using standard techniques ... the
// approach can be adapted to return the shortest paths as well, at a cost
// of increasing the complexity only by a polylogarithmic factor." The
// standard technique implemented here: once every node u holds its distance
// row d(u, *), a successor matrix is computable with one round of
// neighbor-row exchange -- succ(u, v) is any neighbor x of u with
// w(u, x) + d(x, v) = d(u, v). Each node needs d(x, *) for its
// out-neighbors x, which is one n-word row per neighbor, delivered by
// Lemma 1 routing in O(ceil(deg / 1)) batched rounds; paths are then read
// off by successor chasing with no further communication.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/round_ledger.hpp"
#include "congest/transport.hpp"
#include "graph/digraph.hpp"
#include "matrix/dist_matrix.hpp"

namespace qclique {

/// Successor matrix plus the rounds its construction cost.
struct SuccessorResult {
  /// succ[u*n + v] = next hop on a shortest u->v path; UINT32_MAX when
  /// v is unreachable from u (or u == v).
  std::vector<std::uint32_t> successor;
  std::uint64_t rounds = 0;
  RoundLedger ledger;
};

/// Builds the successor matrix on a simulated network built from
/// `transport` (graph-induced links for "congest"): node u gathers the
/// distance rows of its out-neighbors and resolves succ(u, v) locally.
/// `dist` must be the exact distance matrix of g (e.g. from quantum_apsp).
SuccessorResult build_successors(const Digraph& g, const DistMatrix& dist,
                                 const TransportOptions& transport = {});

/// Extracts the path u -> v from a successor matrix. Empty when v is
/// unreachable; {u} when u == v. Throws if the successor matrix is
/// inconsistent (cycle longer than n).
std::vector<std::uint32_t> successor_path(const SuccessorResult& succ,
                                          std::uint32_t n, std::uint32_t u,
                                          std::uint32_t v);

}  // namespace qclique
