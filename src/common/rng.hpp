// Deterministic, splittable pseudo-random number generation.
//
// Every randomized component in qclique takes an explicit Rng (or a seed) so
// that simulations are exactly reproducible. The generator is xoshiro256**
// seeded through SplitMix64, which is both fast and statistically strong
// enough for Monte-Carlo use. `split()` derives an independent child stream,
// which lets a protocol hand distinct streams to each of the n simulated
// nodes without correlation.
#pragma once

#include <cstdint>
#include <vector>

namespace qclique {

/// SplitMix64 step; used for seeding and for cheap stateless hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed (expanded via SplitMix64).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) for bound >= 1 (unbiased, via rejection).
  std::uint64_t uniform_u64(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform_double();

  /// Bernoulli trial; probabilities outside [0,1] are clamped (the paper's
  /// sampling rates such as 10 log n / sqrt(n) exceed 1 at small n).
  bool bernoulli(double p);

  /// Derives an independent child generator. The child stream is decorrelated
  /// from the parent and from siblings produced by later calls.
  Rng split();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_u64(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (Floyd's algorithm; output
  /// order unspecified but deterministic for a given state).
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

 private:
  std::uint64_t s_[4];
};

}  // namespace qclique
