#include "graph/triangles.hpp"

#include "common/error.hpp"

namespace qclique {

bool is_negative_triangle(const WeightedGraph& g, std::uint32_t u, std::uint32_t v,
                          std::uint32_t w) {
  if (u == v || u == w || v == w) return false;
  const std::int64_t fuv = g.weight(u, v);
  if (is_plus_inf(fuv)) return false;
  const std::int64_t fuw = g.weight(u, w);
  if (is_plus_inf(fuw)) return false;
  const std::int64_t fvw = g.weight(v, w);
  if (is_plus_inf(fvw)) return false;
  return sat_add(sat_add(fuv, fuw), fvw) < 0;
}

std::uint32_t gamma(const WeightedGraph& g, std::uint32_t u, std::uint32_t v) {
  if (!g.has_edge(u, v)) return 0;
  std::uint32_t count = 0;
  for (std::uint32_t w = 0; w < g.size(); ++w) {
    if (is_negative_triangle(g, u, v, w)) ++count;
  }
  return count;
}

std::vector<std::uint32_t> gamma_all_pairs(const WeightedGraph& g) {
  const std::uint32_t n = g.size();
  std::vector<std::uint32_t> out(static_cast<std::size_t>(n) * n, 0);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) {
      if (!g.has_edge(u, v)) continue;
      const std::uint32_t c = gamma(g, u, v);
      out[static_cast<std::size_t>(u) * n + v] = c;
      out[static_cast<std::size_t>(v) * n + u] = c;
    }
  }
  return out;
}

std::vector<VertexPair> edges_in_negative_triangles(const WeightedGraph& g) {
  std::vector<VertexPair> out;
  for (std::uint32_t u = 0; u < g.size(); ++u) {
    for (std::uint32_t v = u + 1; v < g.size(); ++v) {
      if (g.has_edge(u, v) && gamma(g, u, v) > 0) out.emplace_back(u, v);
    }
  }
  return out;
}

bool exists_negative_triangle_via(const WeightedGraph& g, std::uint32_t u,
                                  std::uint32_t v,
                                  const std::vector<std::uint32_t>& candidates) {
  if (!g.has_edge(u, v)) return false;
  // Zero-copy row scan: this is the solution oracle ComputePairs evaluates
  // once per (pair, W-block), so the candidate sweep reads the two incident
  // weight rows directly instead of paying weight()'s per-call index math.
  const std::uint32_t n = g.size();
  const std::int64_t fuv = g.weight(u, v);
  const std::int64_t* urow = g.row_ptr(u);
  const std::int64_t* vrow = g.row_ptr(v);
  for (std::uint32_t w : candidates) {
    QCLIQUE_CHECK(w < n, "candidate vertex out of range");
    if (w == u || w == v) continue;
    const std::int64_t fuw = urow[w];
    if (is_plus_inf(fuw)) continue;
    const std::int64_t fvw = vrow[w];
    if (is_plus_inf(fvw)) continue;
    if (sat_add(sat_add(fuv, fuw), fvw) < 0) return true;
  }
  return false;
}

std::uint64_t count_negative_triangles(const WeightedGraph& g) {
  std::uint64_t count = 0;
  for (std::uint32_t u = 0; u < g.size(); ++u) {
    for (std::uint32_t v = u + 1; v < g.size(); ++v) {
      if (!g.has_edge(u, v)) continue;
      for (std::uint32_t w = v + 1; w < g.size(); ++w) {
        if (is_negative_triangle(g, u, v, w)) ++count;
      }
    }
  }
  return count;
}

}  // namespace qclique
