#include "quantum/typical_set.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qclique {

FrequencyProfile frequency_profile(const std::vector<std::size_t>& tuple,
                                   std::size_t dim) {
  FrequencyProfile p;
  p.counts.assign(dim, 0);
  for (std::size_t x : tuple) {
    QCLIQUE_CHECK(x < dim, "tuple element outside domain");
    ++p.counts[x];
    p.max_frequency = std::max(p.max_frequency, p.counts[x]);
  }
  return p;
}

bool in_typical_set(const std::vector<std::size_t>& tuple, std::size_t dim,
                    double beta) {
  return frequency_profile(tuple, dim).within(beta);
}

double lemma5_atypical_mass_bound(std::size_t dim, std::size_t m) {
  QCLIQUE_CHECK(dim >= 1 && m >= 1, "lemma5 bound needs dim, m >= 1");
  return static_cast<double>(dim) *
         std::exp(-2.0 * static_cast<double>(m) / (9.0 * static_cast<double>(dim)));
}

bool theorem3_preconditions_hold(std::size_t dim, std::size_t m, double beta) {
  if (m < 2) return false;
  const double log_m = std::log2(static_cast<double>(m));
  if (!(static_cast<double>(dim) < static_cast<double>(m) / (36.0 * log_m))) {
    return false;
  }
  return beta > 8.0 * static_cast<double>(m) / static_cast<double>(dim);
}

}  // namespace qclique
