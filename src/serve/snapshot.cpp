#include "serve/snapshot.hpp"

#include <limits>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "congest/round_ledger.hpp"  // json_quote

namespace qclique {

ApspSnapshot::ApspSnapshot(const ApspReport& report,
                           std::vector<std::uint32_t> successor,
                           std::string label)
    : dist_(report.distances), successor_(std::move(successor)) {
  QCLIQUE_CHECK(successor_.empty() ||
                    successor_.size() ==
                        static_cast<std::size_t>(report.n) * report.n,
                "successor matrix size mismatch");
  meta_.solver = report.solver;
  meta_.topology = report.topology;
  meta_.kernel = report.kernel;
  meta_.family = report.family;
  meta_.label = std::move(label);
  meta_.n = report.n;
  meta_.rounds = report.rounds;
  meta_.solve_wall_ms = report.wall_ms;
  meta_.has_paths = !successor_.empty();
  meta_.metrics = report.metrics;
}

ApspSnapshot::ApspSnapshot(DistMatrix distances, SnapshotMetadata meta,
                           std::vector<std::uint32_t> successor)
    : dist_(std::move(distances)),
      successor_(std::move(successor)),
      meta_(std::move(meta)) {
  QCLIQUE_CHECK(successor_.empty() ||
                    successor_.size() ==
                        static_cast<std::size_t>(dist_.size()) * dist_.size(),
                "successor matrix size mismatch");
  meta_.n = dist_.size();
  meta_.has_paths = !successor_.empty();
}

std::vector<std::uint32_t> ApspSnapshot::path(std::uint32_t u,
                                              std::uint32_t v) const {
  const std::uint32_t n = size();
  QCLIQUE_CHECK(u < n && v < n, "snapshot path endpoint out of range");
  QCLIQUE_CHECK(has_paths(), "snapshot carries no successor matrix");
  if (u == v) return {u};
  constexpr std::uint32_t kUnset = std::numeric_limits<std::uint32_t>::max();
  if (successor(u, v) == kUnset) return {};
  std::vector<std::uint32_t> nodes{u};
  std::uint32_t cur = u;
  while (cur != v) {
    QCLIQUE_CHECK(nodes.size() <= n, "successor chain longer than n: cycle");
    cur = successor(cur, v);
    QCLIQUE_CHECK(cur != kUnset,
                  "successor chain broke before reaching the target");
    nodes.push_back(cur);
  }
  return nodes;
}

std::string SnapshotMetadata::to_json() const {
  std::ostringstream out;
  out << "{\"version\":" << version << ",\"solver\":" << json_quote(solver)
      << ",\"topology\":" << json_quote(topology)
      << ",\"kernel\":" << json_quote(kernel)
      << ",\"family\":" << json_quote(family)
      << ",\"label\":" << json_quote(label) << ",\"n\":" << n
      << ",\"rounds\":" << rounds << ",\"solve_wall_ms\":" << solve_wall_ms
      << ",\"has_paths\":" << (has_paths ? "true" : "false") << ",\"metrics\":{";
  bool first = true;
  for (const auto& [key, value] : metrics) {
    if (!first) out << ",";
    first = false;
    out << json_quote(key) << ":" << value;
  }
  out << "}}";
  return out.str();
}

}  // namespace qclique
