// Kernel conformance suite: every kernel registered in the KernelRegistry
// must produce results bit-for-bit identical to the "naive" oracle --
// distances *and* witnesses -- on any input (docs/KERNELS.md):
//   * +-inf sentinels and negative entries handled exactly like sat_add;
//   * results independent of the block size;
//   * results independent of the thread count (1, 2, and 8 workers);
//   * the witness is the smallest k attaining each minimum, kNoWitness for
//     +inf entries;
//   * the rectangular raw-buffer form agrees on non-square shapes.
// This is the transport_conformance_test of the third registry axis: it is
// what lets every consumer (squaring oracle, semiring block products,
// triangle pruning) switch kernels without changing what it computes.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "matrix/kernels.hpp"
#include "matrix/min_plus.hpp"

namespace qclique {
namespace {

/// Random matrix mixing finite entries (negative included), +inf holes, and
/// occasional raw -inf sentinels -- the full entry domain of the contract.
DistMatrix random_matrix(std::uint32_t n, std::int64_t lo, std::int64_t hi,
                         double inf_prob, double minus_inf_prob, Rng& rng) {
  DistMatrix m(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      if (rng.bernoulli(inf_prob)) continue;  // stay +inf
      if (rng.bernoulli(minus_inf_prob)) {
        m.set(i, j, kMinusInf);
      } else {
        m.set(i, j, rng.uniform_i64(lo, hi));
      }
    }
  }
  return m;
}

class KernelConformance : public ::testing::TestWithParam<std::string> {
 protected:
  const MinPlusKernel& kernel() const {
    return KernelRegistry::instance().get(GetParam());
  }
  const MinPlusKernel& oracle() const {
    return KernelRegistry::instance().get("naive");
  }
};

TEST_P(KernelConformance, ReportsItsRegistryName) {
  EXPECT_EQ(kernel().name(), GetParam());
  EXPECT_FALSE(kernel().description().empty());
}

// The core contract: distances and witnesses agree bit-for-bit with the
// naive oracle on random matrices with +-inf sentinels and negative
// entries, for n in {1, 2, 3, 17, 64}, at 1, 2, and 8 threads.
TEST_P(KernelConformance, AgreesWithNaiveIncludingSentinelsAndThreads) {
  Rng rng(1234);
  for (const std::uint32_t n : {1u, 2u, 3u, 17u, 64u}) {
    const auto a = random_matrix(n, -40, 40, 0.25, 0.05, rng);
    const auto b = random_matrix(n, -40, 40, 0.25, 0.05, rng);
    std::vector<std::uint32_t> want_wit;
    const DistMatrix want = oracle().product(a, b, {}, &want_wit);
    for (const unsigned threads : {1u, 2u, 8u}) {
      KernelConfig config;
      config.num_threads = threads;
      std::vector<std::uint32_t> wit;
      const DistMatrix got = kernel().product(a, b, config, &wit);
      EXPECT_EQ(got, want) << GetParam() << " n=" << n << " threads=" << threads
                           << ": " << got.first_difference(want);
      EXPECT_EQ(wit, want_wit)
          << GetParam() << " witness mismatch at n=" << n << " threads=" << threads;
    }
  }
}

// Tiling must never change results: sweep block sizes from degenerate (1)
// through "one tile covers everything".
TEST_P(KernelConformance, ResultsIndependentOfBlockSize) {
  Rng rng(77);
  const auto a = random_matrix(33, -9, 9, 0.3, 0.02, rng);
  const auto b = random_matrix(33, -9, 9, 0.3, 0.02, rng);
  std::vector<std::uint32_t> want_wit;
  const DistMatrix want = oracle().product(a, b, {}, &want_wit);
  // 0 and UINT32_MAX probe the clamp: degenerate and wrap-prone tile
  // edges must behave like sane ones.
  for (const std::uint32_t bs : {0u, 1u, 3u, 16u, 64u, 1024u, 0xffffffffu}) {
    KernelConfig config;
    config.block_size = bs;
    config.num_threads = 2;
    std::vector<std::uint32_t> wit;
    const DistMatrix got = kernel().product(a, b, config, &wit);
    EXPECT_EQ(got, want) << GetParam() << " block_size=" << bs << ": "
                         << got.first_difference(want);
    EXPECT_EQ(wit, want_wit) << GetParam() << " witness, block_size=" << bs;
  }
}

// All-sentinel corner cases: the annihilator (+inf everywhere), a -inf
// row/column, and entries whose sums saturate at the sentinels.
TEST_P(KernelConformance, SentinelCornerCases) {
  const std::uint32_t n = 5;
  DistMatrix all_inf(n);  // default fill: +inf
  DistMatrix mixed(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    mixed.set(i, i, 0);
    mixed.set(i, (i + 1) % n, -3);
    mixed.set((i + 2) % n, i, kMinusInf);
  }
  // Near-saturation entries: sums must clamp exactly like sat_add.
  DistMatrix hot(n, kPlusInf - 1);
  hot.set(0, 0, -(kPlusInf - 1));
  for (const auto* a : {&all_inf, &mixed, &hot}) {
    for (const auto* b : {&all_inf, &mixed, &hot}) {
      std::vector<std::uint32_t> want_wit, wit;
      const DistMatrix want = oracle().product(*a, *b, {}, &want_wit);
      const DistMatrix got = kernel().product(*a, *b, {}, &wit);
      EXPECT_EQ(got, want) << GetParam() << ": " << got.first_difference(want);
      EXPECT_EQ(wit, want_wit) << GetParam() << " witness";
    }
  }
}

// The rectangular raw-buffer form (what the semiring baseline's cube cells
// and tri_tri_again's local views call) agrees with the oracle on
// non-square shapes.
TEST_P(KernelConformance, RectangularRawFormAgreesWithOracle) {
  Rng rng(5);
  const std::uint32_t rows = 7, inner = 13, cols = 4;
  std::vector<std::int64_t> a(static_cast<std::size_t>(rows) * inner);
  std::vector<std::int64_t> b(static_cast<std::size_t>(inner) * cols);
  for (auto& x : a) {
    x = rng.bernoulli(0.2) ? kPlusInf : rng.uniform_i64(-20, 20);
  }
  for (auto& x : b) {
    x = rng.bernoulli(0.2) ? kPlusInf : rng.uniform_i64(-20, 20);
  }
  std::vector<std::int64_t> want(static_cast<std::size_t>(rows) * cols);
  std::vector<std::int64_t> got(want.size());
  std::vector<std::uint32_t> want_wit(want.size()), wit(want.size());
  oracle().run(a.data(), b.data(), want.data(), rows, inner, cols, {},
               want_wit.data());
  KernelConfig config;
  config.block_size = 5;  // force ragged tiles
  config.num_threads = 3;
  kernel().run(a.data(), b.data(), got.data(), rows, inner, cols, config, wit.data());
  EXPECT_EQ(got, want) << GetParam();
  EXPECT_EQ(wit, want_wit) << GetParam();
}

// Witness semantics: smallest k attaining the minimum; kNoWitness iff the
// entry is +inf; the witnessed sum realizes the product entry.
TEST_P(KernelConformance, WitnessRealizesTheMinimum) {
  Rng rng(9);
  const std::uint32_t n = 17;
  const auto a = random_matrix(n, -15, 15, 0.35, 0.0, rng);
  const auto b = random_matrix(n, -15, 15, 0.35, 0.0, rng);
  std::vector<std::uint32_t> wit;
  const DistMatrix c = kernel().product(a, b, {}, &wit);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      const std::uint32_t k = wit[static_cast<std::size_t>(i) * n + j];
      if (is_plus_inf(c.at(i, j))) {
        EXPECT_EQ(k, kNoWitness);
        continue;
      }
      ASSERT_LT(k, n);
      EXPECT_EQ(sat_add(a.at(i, k), b.at(k, j)), c.at(i, j));
      // Minimality: no smaller k attains the same value.
      for (std::uint32_t k2 = 0; k2 < k; ++k2) {
        EXPECT_GT(sat_add(a.at(i, k2), b.at(k2, j)), c.at(i, j));
      }
    }
  }
}

// Two identical calls (same config) are bit-identical -- kernels are
// stateless and deterministic.
TEST_P(KernelConformance, RepeatedCallsAreDeterministic) {
  Rng rng(31);
  const auto a = random_matrix(29, -10, 10, 0.3, 0.03, rng);
  const auto b = random_matrix(29, -10, 10, 0.3, 0.03, rng);
  KernelConfig config;
  config.num_threads = 4;
  std::vector<std::uint32_t> w1, w2;
  EXPECT_EQ(kernel().product(a, b, config, &w1), kernel().product(a, b, config, &w2));
  EXPECT_EQ(w1, w2);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelConformance,
                         ::testing::ValuesIn(KernelRegistry::instance().names()));

TEST(KernelRegistry, BuiltinsRegisteredAndSorted) {
  auto& reg = KernelRegistry::instance();
  EXPECT_GE(reg.size(), 3u);
  EXPECT_TRUE(reg.contains("naive"));
  EXPECT_TRUE(reg.contains("blocked"));
  EXPECT_TRUE(reg.contains("parallel"));
  const auto names = reg.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_FALSE(reg.get("blocked").description().empty());
}

TEST(KernelRegistry, UnknownKernelThrowsNamingKnownOnes) {
  try {
    KernelRegistry::instance().get("simd");
    FAIL() << "expected SimulationError";
  } catch (const SimulationError& e) {
    EXPECT_NE(std::string(e.what()).find("blocked"), std::string::npos);
  }
}

TEST(KernelRegistry, DuplicateAndInvalidRegistrationThrow) {
  KernelRegistry reg;
  register_builtin_kernels(reg);
  EXPECT_EQ(reg.size(), KernelRegistry::instance().size());
  EXPECT_THROW(register_builtin_kernels(reg), SimulationError);  // duplicates
  EXPECT_THROW(reg.add(nullptr), SimulationError);
}

TEST(KernelOptions, ResolvesThroughTheProcessRegistry) {
  KernelOptions options;  // default: the production kernel
  EXPECT_EQ(options.resolve().name(), options.name);
  options.name = "naive";
  EXPECT_EQ(options.resolve().name(), "naive");
  options.name = "no-such-kernel";
  EXPECT_THROW(options.resolve(), SimulationError);
}

TEST(MinPlusProduct, ConvenienceMatchesNaive) {
  Rng rng(8);
  const auto a = random_matrix(12, -6, 6, 0.3, 0.0, rng);
  const auto b = random_matrix(12, -6, 6, 0.3, 0.0, rng);
  EXPECT_EQ(min_plus_product(a, b), distance_product_naive(a, b));
  EXPECT_EQ(min_plus_product(a, b, {.name = "parallel", .config = {.num_threads = 8}}),
            distance_product_naive(a, b));
}

}  // namespace
}  // namespace qclique
